# Pre-merge gate and convenience targets. `make check` is the gate:
# vet plus the full test suite under the race detector (the update
# processor serves queries concurrently with background rebuilds, so
# -race is not optional here).

GO ?= go

.PHONY: check build test race vet bench

check: vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
