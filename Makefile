# Pre-merge gate and convenience targets. `make check` is the gate:
# vet, the elsivet house-rule linters, and the full test suite under
# the race detector (the update processor serves queries concurrently
# with background rebuilds, so -race is not optional here).

GO ?= go

.PHONY: check build test race vet lint bench microbench serve serve-durable loadtest loadtest-shards loadtest-adaptive shard-race persist-race adaptive-race

check: lint race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet is kept as a standalone alias; `make lint` runs it too, so the
# pre-merge gate needs only one lint entry point.
vet:
	$(GO) vet ./...

# lint runs go vet plus cmd/elsivet, the eight-analyzer house-rule
# suite (lockedcall, atomicfield, floateq, detrand, ctxprop, gorolife,
# lockorder, noalloc — see DESIGN.md §7 and §12).
#
# There is no auto-fixer: a finding is resolved by fixing the code, by
# marking the enforced surface with a directive (`//elsi:noalloc` on a
# function, `//elsi:lockorder [before=field,...]` on a mutex field —
# grammar in DESIGN.md §12), or, for a deliberate exception, by
# `//lint:ignore <analyzer> <reason>` on the flagged line. Reasons are
# mandatory, and ignores that no longer suppress anything are
# themselves reported.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/elsivet ./...

# bench writes the machine-readable build/query medians (serial vs
# parallel workers, plus window/kNN latency, allocations per point
# query, and batched throughput) consumed by README's Performance and
# Query performance sections.
bench:
	$(GO) run ./cmd/elsibench -json -n 50000 -queries 300 -epochs 40 > BENCH_pr5.json

microbench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# serve runs the long-running server (HTTP+JSON on :8080, binary
# protocol on :9090) over a generated uniform data set. Ctrl-C drains
# in-flight requests before exiting.
serve:
	$(GO) run ./cmd/elsid -http 127.0.0.1:8080 -tcp 127.0.0.1:9090 -n 100000

# serve-durable adds the persistence layer: updates are WAL-logged
# before acknowledgement and the trained index is snapshotted on every
# rebuild swap and on clean shutdown. Kill it and run it again — the
# second boot recovers from elsid-data/ without training a model.
serve-durable:
	$(GO) run ./cmd/elsid -http 127.0.0.1:8080 -tcp 127.0.0.1:9090 -n 100000 -data elsid-data -fsync always

# loadtest stands up the full serving stack in-process and drives both
# transports with seeded open-loop Poisson arrivals, writing the
# p50/p99/p999 latency report consumed by README's Serving section.
loadtest:
	$(GO) run ./cmd/elsiload -inproc -n 50000 -rate 2000 -duration 3s -conns 64 -o BENCH_pr6.json

# loadtest-shards sweeps the spatial shard count at the loadtest
# workload — one in-proc TCP run per S, directly comparable rows —
# writing the report consumed by README's Sharding section. Pin
# GOMAXPROCS >= 4 so the per-shard parallelism is real.
loadtest-shards:
	GOMAXPROCS=4 $(GO) run ./cmd/elsiload -sweep-shards 1,4,16 -n 50000 -rate 2000 -duration 3s -conns 64 -o BENCH_pr8.json

# loadtest-adaptive is the cache off/on comparison on the Zipf-skewed
# read-heavy workload: identical stack and request stream in both
# runs, the generation-stamped result cache the only variable. The
# report (consumed by README's Adaptivity section) carries the cache
# hit-rate and the per-shard workload monitor/profile breakdown.
loadtest-adaptive:
	GOMAXPROCS=4 $(GO) run ./cmd/elsiload -sweep-cache -adaptive -n 50000 -rate 2000 -duration 4s -warmup 1s -conns 64 -zipf 1.5 -hotspots 128 -mix 60:15:10:10:5 -o BENCH_pr10.json

# adaptive-race is the focused adaptivity gate: the workload monitor,
# the result cache (model fuzz + raced oracle), the engine's cached
# serving paths, and the rebuild-time resample loop under the race
# detector, plus the house linters over the new packages (the noalloc
# annotations on the monitor and cache hot paths are load-bearing).
adaptive-race:
	$(GO) test -race -short ./internal/monitor/ ./internal/qcache/ ./internal/engine/ ./internal/rebuild/
	$(GO) vet ./internal/monitor/ ./internal/qcache/
	$(GO) run ./cmd/elsivet ./internal/monitor/ ./internal/qcache/ ./internal/engine/

# shard-race is the focused sharding gate: the sharded-vs-unsharded
# equivalence suite and the sharded server e2e under the race
# detector, plus the house linters over the router.
shard-race:
	$(GO) test -race -short ./internal/shard/ ./internal/server/ ./internal/engine/
	$(GO) vet ./internal/shard/
	$(GO) run ./cmd/elsivet ./internal/shard/

# persist-race is the durability gate: the WAL, snapshot, and
# crash-recovery suites (every registered crash point × shard counts,
# byte-identical recovery, zero trainings) under the race detector.
persist-race:
	$(GO) test -race -short ./internal/wal/ ./internal/snapshot/ ./internal/persist/
	$(GO) vet ./internal/wal/ ./internal/snapshot/ ./internal/persist/
	$(GO) run ./cmd/elsivet ./internal/wal/ ./internal/snapshot/ ./internal/persist/
