// Command elsid is the long-running ELSI server: it builds a learned
// index over a generated data set, wraps it in the update processor
// (learned rebuild trigger, background rebuilds) and the batching
// serving engine, and exposes point/window/kNN queries plus
// insert/delete over two transports at once — an HTTP+JSON API and
// the compact binary TCP protocol (internal/protocol). GET /stats
// reports the engine and rebuild counters.
//
// Usage:
//
//	elsid -http 127.0.0.1:8080 -tcp 127.0.0.1:9090 -n 100000
//	curl -s localhost:8080/query/knn -d '{"x":0.5,"y":0.5,"k":3}'
//
// SIGINT/SIGTERM shut down gracefully: listeners stop, in-flight
// requests drain through the engine's shutdown flush, and the process
// exits once every admitted request has been answered.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/monitor"
	"elsi/internal/persist"
	"elsi/internal/qcache"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
	"elsi/internal/server"
	"elsi/internal/shard"
	"elsi/internal/wal"
	"elsi/internal/zm"
)

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8080", "HTTP listen address (empty disables)")
		tcpAddr  = flag.String("tcp", "127.0.0.1:9090", "binary-protocol listen address (empty disables)")
		family   = flag.String("index", "zm", "index family: zm or brute")
		data     = flag.String("dataset", dataset.Uniform, "initial data set")
		n        = flag.Int("n", 100000, "initial cardinality")
		seed     = flag.Int64("seed", 1, "random seed")
		fu       = flag.Int("fu", 0, "rebuild-predictor check frequency in updates (0 = n/10)")
		shards   = flag.Int("shards", 1, "spatial shard count (1 = unsharded)")
		workers  = flag.Int("workers", 0, "query workers per batch (0 = GOMAXPROCS)")
		maxBatch = flag.Int("max-batch", 64, "flush a batch at this size")
		flush    = flag.Duration("flush", 200*time.Microsecond, "flush a batch after this deadline")
		inflight = flag.Int("max-inflight", 4096, "admitted in-flight request bound")
		dataDir  = flag.String("data", "", "durable data directory: WAL + snapshots (empty = in-memory only)")
		fsync    = flag.String("fsync", "always", "WAL fsync policy: always, none, or a group-commit interval like 5ms")
		cache    = flag.Bool("cache", false, "enable the hot-region result cache for point and small-window queries")
		adaptive = flag.Bool("adaptive", false, "monitor live traffic per shard and re-select index methods on background rebuilds (zm only)")
	)
	flag.Parse()

	cfg := engine.Config{
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		FlushInterval: *flush,
		MaxInFlight:   *inflight,
	}
	if *cache {
		cfg.Cache = &qcache.Config{}
	}
	if err := run(*httpAddr, *tcpAddr, *family, *data, *dataDir, *fsync, *n, *seed, *fu, *shards, *adaptive, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "elsid:", err)
		os.Exit(1)
	}
}

func run(httpAddr, tcpAddr, family, data, dataDir, fsync string, n int, seed int64, fu, shards int, adaptive bool, cfg engine.Config) error {
	log.SetPrefix("elsid: ")
	log.SetFlags(log.Ltime)

	// With a data directory that already holds a store, the initial
	// data set comes off disk, not the generator.
	var pts []geo.Point
	if dataDir == "" || !persist.Exists(dataDir) {
		var err error
		pts, err = dataset.Generate(data, n, seed)
		if err != nil {
			return err
		}
	}
	if fu <= 0 {
		fu = n / 10
	}

	be, closeBE, err := buildBackend(family, pts, seed, fu, shards, cfg.Workers, dataDir, fsync, adaptive)
	if err != nil {
		return err
	}
	if adaptive {
		log.Printf("adaptive selection on: per-shard monitors feed the ELSI scorer at every rebuild")
	}
	if cfg.Cache != nil {
		log.Printf("result cache on: generation-stamped, point + small-window queries")
	}
	eng := engine.NewWithBackend(be, nil, cfg)
	srv := server.New(eng)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Start(ctx, httpAddr, tcpAddr); err != nil {
		return err
	}
	if a := srv.HTTPAddr(); a != "" {
		log.Printf("HTTP on http://%s (POST /query/{point,window,knn}, /insert, /delete; GET /stats)", a)
	}
	if a := srv.TCPAddr(); a != "" {
		log.Printf("binary protocol on %s", a)
	}
	if st := be.BackendStats(); len(st.Shards) > 1 {
		log.Printf("serving %d %s points over %s across %d shards", st.Len, data, family, len(st.Shards))
	} else {
		log.Printf("serving %d %s points over %s", st.Len, data, family)
	}

	<-ctx.Done()
	stop()
	log.Printf("shutdown signal: draining...")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	st := eng.Stats()
	log.Printf("drained: %d point, %d window, %d kNN queries, %d inserts, %d deletes, %d rebuilds, %d batches",
		st.PointQueries, st.WindowQueries, st.KNNQueries, st.Inserts, st.Deletes, st.Rebuilds, st.Batches)
	if closeBE != nil {
		t0 := time.Now()
		if err := closeBE(); err != nil {
			return err
		}
		log.Printf("persisted: clean-shutdown snapshot + wal close in %v", time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// buildBackend assembles the serving backend: for shards <= 1 a single
// update processor, otherwise a Hilbert-partitioned router of shard
// processors sharing one trained rebuild predictor. The per-shard
// predictor check frequency is fu divided across the shards, keeping
// the fleet-wide check cadence of the unsharded configuration.
//
// With a data directory the backend is the durable persist.Store —
// recovered from disk when the directory already holds one (pts is
// ignored), created and snapshotted otherwise. The returned closer is
// non-nil exactly in the durable case; run calls it after the drain so
// the clean-shutdown snapshot covers every acknowledged update.
//
// With adaptive, each shard processor gets a workload monitor and its
// own ELSI System (learned selection over a shared heuristic-trained
// scorer): the traffic observed since the last rebuild re-scores the
// method pool at the next one. Wired through configure so it applies
// identically to in-memory, created, and recovered durable backends.
func buildBackend(family string, pts []geo.Point, seed int64, fu, shards, workers int, dataDir, fsync string, adaptive bool) (engine.Backend, func() error, error) {
	pred, err := rebuild.TrainPredictor(
		rebuild.HeuristicSamples(rand.New(rand.NewSource(seed)), 1000),
		rebuild.PredictorConfig{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	factory, mapKey, err := familyStack(family)
	if err != nil {
		return nil, nil, err
	}
	configure := func(p *rebuild.Processor) {
		p.Retry = &rebuild.RetryPolicy{}
	}
	if adaptive {
		if family != "zm" {
			return nil, nil, fmt.Errorf("-adaptive needs a model-built family (zm), not %q", family)
		}
		sc, err := scorer.Train(scorer.HeuristicSamples(), scorer.Config{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		configure = func(p *rebuild.Processor) {
			p.Retry = &rebuild.RetryPolicy{}
			sys, err := core.NewSystem(core.Config{
				Trainer:  rmi.PiecewiseTrainer(1.0 / 256),
				Selector: core.SelectorLearned,
				Scorer:   sc,
			})
			if err != nil {
				log.Printf("adaptive wiring failed, shard stays static: %v", err)
				return
			}
			mon := monitor.New(geo.UnitRect)
			p.Monitor = mon
			p.Workload = &rebuild.WorkloadAdapter{Mon: mon, Sys: sys}
			p.Factory = func() rebuild.Rebuildable {
				return zm.New(zm.Config{Space: geo.UnitRect, Builder: sys, Fanout: 8})
			}
		}
	}
	sfu := fu
	if shards > 1 {
		sfu = max(1, fu/shards)
	}

	if dataDir != "" {
		pol, interval, err := wal.ParsePolicy(fsync)
		if err != nil {
			return nil, nil, err
		}
		pcfg := persist.Config{
			Dir:       dataDir,
			WAL:       wal.Options{Policy: pol, Interval: interval},
			Shards:    shards,
			Space:     geo.UnitRect,
			Router:    shard.Config{Workers: workers},
			Factory:   factory,
			MapKey:    mapKey,
			Pred:      pred,
			Fu:        sfu,
			Configure: configure,
		}
		if persist.Exists(dataDir) {
			store, err := persist.Open(pcfg)
			if err != nil {
				return nil, nil, err
			}
			rec := store.Recovery()
			for _, sr := range rec.Shards {
				torn := ""
				if sr.TornTail {
					torn = ", torn wal tail truncated"
				}
				log.Printf("recovered shard %d: snapshot @ LSN %d (%d bytes) in %v, %d wal records replayed in %v%s",
					sr.Shard, sr.SnapshotLSN, sr.SnapshotBytes, sr.Load.Round(time.Microsecond),
					sr.WALRecords, sr.Replay.Round(time.Microsecond), torn)
			}
			log.Printf("recovery complete: %d shards, no model training, %v total", len(rec.Shards), rec.Total.Round(time.Millisecond))
			return store, store.Close, nil
		}
		store, err := persist.Create(pcfg, pts)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("created durable store in %s (%d shards, fsync=%s)", dataDir, store.Router().NumShards(), fsync)
		return store, store.Close, nil
	}

	mk := func(sub []geo.Point) (*rebuild.Processor, error) {
		proc, err := rebuild.NewProcessor(factory(), pred, sub, mapKey, sfu)
		if err != nil {
			return nil, err
		}
		proc.Factory = factory
		configure(proc)
		return proc, nil
	}
	if shards <= 1 {
		proc, err := mk(pts)
		if err != nil {
			return nil, nil, err
		}
		return engine.NewSingle(proc, workers), nil, nil
	}
	r, err := shard.New(pts, geo.UnitRect, shard.Config{Shards: shards, Workers: workers}, mk)
	if err != nil {
		return nil, nil, err
	}
	return r, nil, nil
}

// familyStack returns the index factory and sort-key extractor of an
// index family.
func familyStack(family string) (func() rebuild.Rebuildable, func(geo.Point) float64, error) {
	switch family {
	case "zm":
		factory := func() rebuild.Rebuildable {
			return zm.New(zm.Config{
				Space:   geo.UnitRect,
				Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
				Fanout:  8,
			})
		}
		return factory, factory().(*zm.Index).MapKey, nil
	case "brute":
		factory := func() rebuild.Rebuildable { return index.NewBruteForce() }
		return factory, func(p geo.Point) float64 { return p.X }, nil
	default:
		return nil, nil, fmt.Errorf("unknown index family %q (want zm or brute)", family)
	}
}
