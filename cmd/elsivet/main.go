// Command elsivet is the repository's house-rule multichecker: it
// loads the packages matched by its arguments (default ./...) and runs
// the eight custom analyzers from internal/analysis over them.
//
//	elsivet ./...            # lint the whole module (what `make lint` does)
//	elsivet -list            # describe the analyzers
//	elsivet -run floateq ./internal/geo/...
//	elsivet -json ./...      # machine-readable findings (one JSON object)
//
// A finding can be suppressed at a specific line with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is mandatory.
// Ignore directives that no longer suppress anything are listed as
// dead after a clean run so they can be deleted; they never affect the
// exit status.
//
// Exit status: 0 when the tree is clean, 1 when findings remain, 2
// when the packages could not be loaded or an analyzer failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"elsi/internal/analysis"
	"elsi/internal/analysis/atomicfield"
	"elsi/internal/analysis/ctxprop"
	"elsi/internal/analysis/detrand"
	"elsi/internal/analysis/floateq"
	"elsi/internal/analysis/gorolife"
	"elsi/internal/analysis/lockedcall"
	"elsi/internal/analysis/lockorder"
	"elsi/internal/analysis/noalloc"
)

var all = []*analysis.Analyzer{
	atomicfield.Analyzer,
	ctxprop.Analyzer,
	detrand.Analyzer,
	floateq.Analyzer,
	gorolife.Analyzer,
	lockedcall.Analyzer,
	lockorder.Analyzer,
	noalloc.Analyzer,
}

// jsonFinding is the machine-readable shape of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonIgnore is the machine-readable shape of one ignore directive's
// usage record.
type jsonIgnore struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Used     bool   `json:"used"`
}

type jsonOutput struct {
	Findings []jsonFinding `json:"findings"`
	Ignores  []jsonIgnore  `json:"ignores"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings and ignore usage as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: elsivet [-list] [-json] [-run analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "elsivet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elsivet: %v\n", err)
		os.Exit(2)
	}
	res, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elsivet: %v\n", err)
		os.Exit(2)
	}

	dead := res.DeadIgnores(analyzers)
	if *jsonOut {
		out := jsonOutput{Findings: []jsonFinding{}, Ignores: []jsonIgnore{}}
		for _, f := range res.Findings {
			out.Findings = append(out.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		for _, ig := range res.Ignores {
			out.Ignores = append(out.Ignores, jsonIgnore{
				Analyzer: ig.Analyzer,
				File:     ig.Pos.Filename,
				Line:     ig.Pos.Line,
				Used:     ig.Used,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "elsivet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		for _, ig := range dead {
			fmt.Fprintf(os.Stderr, "elsivet: dead //lint:ignore %s at %s:%d: suppresses nothing, delete it\n",
				ig.Analyzer, ig.Pos.Filename, ig.Pos.Line)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "elsivet: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}
