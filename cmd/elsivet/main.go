// Command elsivet is the repository's house-rule multichecker: it
// loads the packages matched by its arguments (default ./...) and runs
// the four custom analyzers from internal/analysis over them.
//
//	elsivet ./...            # lint the whole module (what `make lint` does)
//	elsivet -list            # describe the analyzers
//	elsivet -run floateq ./internal/geo/...
//
// A finding can be suppressed at a specific line with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is mandatory.
// Exit status is 1 when findings remain, 2 on a driver error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elsi/internal/analysis"
	"elsi/internal/analysis/atomicfield"
	"elsi/internal/analysis/detrand"
	"elsi/internal/analysis/floateq"
	"elsi/internal/analysis/lockedcall"
)

var all = []*analysis.Analyzer{
	atomicfield.Analyzer,
	detrand.Analyzer,
	floateq.Analyzer,
	lockedcall.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: elsivet [-list] [-run analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "elsivet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elsivet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elsivet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "elsivet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
