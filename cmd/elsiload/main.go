// Command elsiload is the open-loop load generator for elsid: it
// fires requests at the server with seeded Poisson arrivals (the
// inter-arrival gaps are Exp(rate) draws from a deterministic
// generator — wall-clock time is used only to measure latency, never
// as a randomness source) and reports client-observed p50/p99/p999
// latency per operation, overall throughput, and the server's own
// /stats counters.
//
// Open loop means arrivals do not wait for completions: when the
// server falls behind, requests queue and the measured latency grows —
// the honest failure mode closed-loop generators hide.
//
// Usage:
//
//	elsiload -target tcp://127.0.0.1:9090 -rate 2000 -duration 10s
//	elsiload -target http://127.0.0.1:8080 -rate 500 -duration 5s
//	elsiload -inproc -rate 3000 -duration 3s -o BENCH_pr6.json
//	elsiload -inproc -zipf 1.2 -mix 60:15:10:10:5 -sweep-cache -o BENCH_pr10.json
//
// With -inproc, elsiload stands up the full elsid stack in-process on
// ephemeral localhost ports and drives both transports back to back —
// the one-command, no-daemon way to produce the serving benchmark
// artifact.
//
// The workload shape is controlled by -mix (operation ratios) and
// -zipf (query skew): with -zipf s > 1, query centers are drawn
// Zipf(s) from a pool of -hotspots actual data points instead of
// uniformly, reproducing the hot-spotted read traffic of real spatial
// decision workloads. Identical hot queries repeat exactly, so the
// result cache (-cache, or the off/on comparison -sweep-cache) has
// something to hit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"elsi/internal/base"
	"elsi/internal/client"
	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/monitor"
	"elsi/internal/qcache"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
	"elsi/internal/server"
	"elsi/internal/shard"
	"elsi/internal/zm"
)

// apiClient is the operation surface both transports expose.
type apiClient interface {
	PointQuery(pt geo.Point) (bool, error)
	WindowQuery(win geo.Rect) ([]geo.Point, error)
	KNN(q geo.Point, k int) ([]geo.Point, error)
	Insert(pt geo.Point) (bool, error)
	Delete(pt geo.Point) (bool, error)
	Stats() (engine.Stats, error)
}

func main() {
	var (
		target   = flag.String("target", "", "server address: tcp://host:port or http://host:port (empty requires -inproc)")
		inproc   = flag.Bool("inproc", false, "stand up the serving stack in-process and drive both transports")
		rate     = flag.Float64("rate", 1000, "offered load in requests/second")
		duration = flag.Duration("duration", 5*time.Second, "measured load duration per run")
		warmup   = flag.Duration("warmup", 0, "run the stream this long before measuring; warmup samples are excluded from the latency percentiles and throughput")
		conns    = flag.Int("conns", 16, "connection pool size (TCP conns / HTTP concurrency bound)")
		seed     = flag.Int64("seed", 1, "random seed for arrivals and the op mix")
		n        = flag.Int("n", 50000, "in-process data set cardinality (-inproc)")
		shards   = flag.Int("shards", 1, "in-process spatial shard count (-inproc)")
		sweep    = flag.String("sweep-shards", "", "comma-separated shard counts: one in-proc TCP run per count (e.g. 1,4,16)")
		mix      = flag.String("mix", "40:10:15:20:15", "operation ratios point:window:knn[:insert:delete] (3 parts = read-only)")
		zipfS    = flag.Float64("zipf", 0, "query-center skew: Zipf exponent over the hotspot pool (> 1 enables, 0 = uniform centers)")
		hotspots = flag.Int("hotspots", 128, "hotspot pool size for -zipf (drawn from the data set prefix)")
		cache    = flag.Bool("cache", false, "enable the in-process result cache (-inproc)")
		adaptive = flag.Bool("adaptive", false, "enable in-process workload monitoring + adaptive method selection (-inproc)")
		sweepC   = flag.Bool("sweep-cache", false, "two in-proc TCP runs, cache off then on, same workload")
		out      = flag.String("o", "-", "output path for the JSON report (- = stdout)")
	)
	flag.Parse()

	mx, err := newMixer(*mix, *zipfS, *hotspots, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsiload:", err)
		os.Exit(1)
	}
	opts := inprocOpts{n: *n, shards: *shards, cache: *cache, adaptive: *adaptive}
	if err := run(*target, *inproc, *rate, *duration, *warmup, *conns, *seed, opts, *sweep, *sweepC, mx, *mix, *zipfS, *out); err != nil {
		fmt.Fprintln(os.Stderr, "elsiload:", err)
		os.Exit(1)
	}
}

// inprocOpts shapes the in-process serving stack.
type inprocOpts struct {
	n        int
	shards   int
	cache    bool
	adaptive bool
}

func run(target string, inproc bool, rate float64, duration, warmup time.Duration, conns int, seed int64, opts inprocOpts, sweep string, sweepCache bool, mx *mixer, mixSpec string, zipfS float64, out string) error {
	report := benchReport{
		Name:     "serving-loadtest",
		Seed:     seed,
		RateRPS:  rate,
		Duration: duration.String(),
		Conns:    conns,
		Mix:      mixSpec,
	}
	if zipfS > 0 {
		report.Zipf = zipfS
		report.Hotspots = len(mx.hot)
	}
	if warmup > 0 {
		report.Warmup = warmup.String()
	}
	shards := opts.shards

	if sweepCache {
		// cache off/on comparison: identical workload, identical stack,
		// the cache is the only variable — the PR10 benchmark artifact.
		for _, on := range []bool{false, true} {
			o := opts
			o.cache = on
			srv, cleanup, err := startInproc(seed, o)
			if err != nil {
				return err
			}
			res, err := runLoad("tcp://"+srv.TCPAddr(), rate, duration, warmup, conns, seed, mx)
			cleanup()
			if err != nil {
				return err
			}
			res.Shards = shards
			res.CacheOn = on
			report.Runs = append(report.Runs, res)
		}
	} else if sweep != "" {
		// shard-count sweep: one in-proc TCP run per count, same
		// workload, so the per-S rows are directly comparable
		for _, f := range strings.Split(sweep, ",") {
			s, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || s < 1 {
				return fmt.Errorf("bad -sweep-shards entry %q", f)
			}
			o := opts
			o.shards = s
			srv, cleanup, err := startInproc(seed, o)
			if err != nil {
				return err
			}
			res, err := runLoad("tcp://"+srv.TCPAddr(), rate, duration, warmup, conns, seed, mx)
			cleanup()
			if err != nil {
				return err
			}
			res.Shards = s
			report.Runs = append(report.Runs, res)
		}
	} else if inproc {
		srv, cleanup, err := startInproc(seed, opts)
		if err != nil {
			return err
		}
		defer cleanup()
		for _, tr := range []string{"tcp", "http"} {
			addr := "tcp://" + srv.TCPAddr()
			if tr == "http" {
				addr = "http://" + srv.HTTPAddr()
			}
			res, err := runLoad(addr, rate, duration, warmup, conns, seed, mx)
			if err != nil {
				return err
			}
			res.Shards = shards
			res.CacheOn = opts.cache
			report.Runs = append(report.Runs, res)
		}
	} else {
		if target == "" {
			return fmt.Errorf("need -target or -inproc")
		}
		res, err := runLoad(target, rate, duration, warmup, conns, seed, mx)
		if err != nil {
			return err
		}
		report.Runs = append(report.Runs, res)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// startInproc builds the elsid stack on ephemeral localhost ports:
// unsharded for shards <= 1, a Hilbert-partitioned router otherwise.
// With opts.adaptive, every shard gets its own workload monitor and
// ELSI System (learned selection over a shared heuristic-trained
// scorer), so background rebuilds re-score the method pool against the
// traffic the shard actually saw; with opts.cache the engine answers
// repeated hot queries from the generation-stamped result cache.
func startInproc(seed int64, opts inprocOpts) (*server.Server, func(), error) {
	n, shards := opts.n, opts.shards
	pts := dataset.MustGenerate(dataset.Uniform, n, seed)
	pred, err := rebuild.TrainPredictor(
		rebuild.HeuristicSamples(rand.New(rand.NewSource(seed)), 1000),
		rebuild.PredictorConfig{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	var sc *scorer.Scorer
	if opts.adaptive {
		if sc, err = scorer.Train(scorer.HeuristicSamples(), scorer.Config{Seed: seed}); err != nil {
			return nil, nil, err
		}
	}
	factory := func() rebuild.Rebuildable {
		return zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
			Fanout:  8,
		})
	}
	mapKey := factory().(*zm.Index).MapKey
	fu := n / 10
	if shards > 1 {
		fu = max(1, fu/shards)
	}
	mk := func(sub []geo.Point) (*rebuild.Processor, error) {
		proc, err := rebuild.NewProcessor(factory(), pred, sub, mapKey, fu)
		if err != nil {
			return nil, err
		}
		proc.Factory = factory
		proc.Retry = &rebuild.RetryPolicy{}
		if opts.adaptive {
			if err := adaptShard(proc, sc); err != nil {
				return nil, err
			}
		}
		return proc, nil
	}
	var be engine.Backend
	if shards <= 1 {
		proc, err := mk(pts)
		if err != nil {
			return nil, nil, err
		}
		be = engine.NewSingle(proc, 0)
	} else {
		r, err := shard.New(pts, geo.UnitRect, shard.Config{Shards: shards}, mk)
		if err != nil {
			return nil, nil, err
		}
		be = r
	}
	ecfg := engine.Config{}
	if opts.cache {
		ecfg.Cache = &qcache.Config{}
	}
	eng := engine.NewWithBackend(be, nil, ecfg)
	srv := server.New(eng)
	if err := srv.Start(context.Background(), "127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return nil, nil, err
	}
	return srv, func() { srv.Close() }, nil
}

// adaptShard wires the monitoring → re-selection loop onto one shard:
// a fresh per-shard System (each shard adapts to its own traffic) over
// the shared scorer, a monitor, and a rebuild factory that builds its
// models through the System so re-ranks take effect on the next swap.
func adaptShard(proc *rebuild.Processor, sc *scorer.Scorer) error {
	sys, err := core.NewSystem(core.Config{
		Trainer:  rmi.PiecewiseTrainer(1.0 / 256),
		Selector: core.SelectorLearned,
		Scorer:   sc,
	})
	if err != nil {
		return err
	}
	mon := monitor.New(geo.UnitRect)
	proc.Monitor = mon
	proc.Workload = &rebuild.WorkloadAdapter{Mon: mon, Sys: sys}
	proc.Factory = func() rebuild.Rebuildable {
		return zm.New(zm.Config{Space: geo.UnitRect, Builder: sys, Fanout: 8})
	}
	return nil
}

// dialPool builds the bounded client pool for a target URL.
func dialPool(target string, conns int) (chan apiClient, string, func(), error) {
	pool := make(chan apiClient, conns)
	switch {
	case strings.HasPrefix(target, "tcp://"):
		addr := strings.TrimPrefix(target, "tcp://")
		var opened []*client.TCP
		for i := 0; i < conns; i++ {
			c, err := client.DialTCP(addr)
			if err != nil {
				for _, o := range opened {
					o.Close()
				}
				return nil, "", nil, err
			}
			opened = append(opened, c)
			pool <- c
		}
		return pool, "tcp", func() {
			for _, o := range opened {
				o.Close()
			}
		}, nil
	case strings.HasPrefix(target, "http://"):
		hc := &client.HTTP{Base: target, C: &http.Client{
			Transport: &http.Transport{MaxIdleConns: conns, MaxIdleConnsPerHost: conns},
		}}
		// one shared HTTP client; the pool's slots bound the concurrency
		for i := 0; i < conns; i++ {
			pool <- hc
		}
		return pool, "http", func() {}, nil
	default:
		return nil, "", nil, fmt.Errorf("target %q: want tcp://host:port or http://host:port", target)
	}
}

// sample is one completed request. warm marks arrivals inside the
// warmup window; they drive load but never reach the summaries.
type sample struct {
	op   string
	lat  time.Duration
	err  error
	warm bool
}

// runLoad fires the Poisson-arrival request stream at target. The
// stream runs for warmup+duration; samples whose arrival falls inside
// the warmup window are discarded before summarizing, so connection
// setup, server JIT effects, and cold caches don't pollute the
// percentiles.
func runLoad(target string, rate float64, duration, warmup time.Duration, conns int, seed int64, mx *mixer) (runResult, error) {
	pool, transport, cleanup, err := dialPool(target, conns)
	if err != nil {
		return runResult{}, err
	}
	defer cleanup()

	rng := rand.New(rand.NewSource(seed))
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	start := time.Now()
	next := start
	for {
		// Exp(rate) inter-arrival gap from the seeded generator
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.Sub(start) > warmup+duration {
			break
		}
		op, call := mx.nextOp(rng)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		arrival := next // latency includes any queueing for a pool slot
		warm := arrival.Sub(start) < warmup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := <-pool
			err := call(c)
			pool <- c
			record(sample{op: op, lat: time.Since(arrival), err: err, warm: warm})
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) - warmup

	measured := samples[:0]
	for _, s := range samples {
		if !s.warm {
			measured = append(measured, s)
		}
	}
	res := summarize(measured, elapsed)
	res.Transport = transport
	res.Target = target

	// the server's own view of the run
	c := <-pool
	if st, err := c.Stats(); err == nil {
		res.ServerStats = &st
		if st.Cache != nil {
			res.CacheHitRate = st.Cache.HitRate
		}
	}
	pool <- c
	return res, nil
}

// mixer draws operations from the configured ratio and, with -zipf,
// their centers Zipf-skewed from a pool of actual data points. Hot
// point queries are the pool points themselves and hot windows are
// fixed per-hotspot rects, so the same query repeats byte-identically
// — the access pattern a result cache exists for. Inserts and deletes
// always use uniform fresh coordinates: writes are not hot-spotted,
// and a delete of a random coordinate is the (almost always) no-op it
// was before this flag existed.
type mixer struct {
	cum  [5]float64 // cumulative point, window, knn, insert, delete
	zipf *rand.Zipf // nil = uniform centers
	hot  []geo.Point
}

// windowSizes are the per-hotspot window half-sizes; all four keep the
// area under qcache's default small-window bound.
var windowSizes = [4]float64{0.004, 0.008, 0.012, 0.016}

// newMixer parses "p:w:k" or "p:w:k:i:d" ratios and, for s > 1, seeds
// the Zipf hotspot pool with the first `hotspots` points of the
// uniform data set — the same prefix startInproc serves, so hot point
// queries are guaranteed members.
func newMixer(mix string, s float64, hotspots int, seed int64) (*mixer, error) {
	parts := strings.Split(mix, ":")
	if len(parts) != 3 && len(parts) != 5 {
		return nil, fmt.Errorf("bad -mix %q: want point:window:knn or point:window:knn:insert:delete", mix)
	}
	m := &mixer{}
	total := 0.0
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix entry %q", p)
		}
		total += w
		m.cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("bad -mix %q: all weights zero", mix)
	}
	for i := range m.cum {
		if i >= len(parts) {
			m.cum[i] = total // absent write weights: never drawn
		}
		m.cum[i] /= total
	}
	//lint:ignore floateq 0 is the documented -zipf off sentinel, compared exactly
	if s != 0 {
		if s <= 1 {
			return nil, fmt.Errorf("bad -zipf %v: want an exponent > 1 (0 disables)", s)
		}
		if hotspots < 1 {
			return nil, fmt.Errorf("bad -hotspots %d", hotspots)
		}
		m.hot = dataset.MustGenerate(dataset.Uniform, hotspots, seed)
		m.zipf = rand.NewZipf(rand.New(rand.NewSource(seed+1)), s, 1, uint64(hotspots-1))
	}
	return m, nil
}

// center draws a query center: the i-th hottest pool point under the
// Zipf law, or a fresh uniform point.
func (m *mixer) center(rng *rand.Rand) (geo.Point, int) {
	if m.zipf == nil {
		return geo.Point{X: rng.Float64(), Y: rng.Float64()}, -1
	}
	i := int(m.zipf.Uint64())
	return m.hot[i], i
}

// nextOp draws one operation from the mix.
func (m *mixer) nextOp(rng *rand.Rand) (string, func(apiClient) error) {
	r := rng.Float64()
	if r >= m.cum[2] { // writes: always uniform fresh coordinates
		q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		if r < m.cum[3] {
			return "insert", func(c apiClient) error { _, err := c.Insert(q); return err }
		}
		return "delete", func(c apiClient) error { _, err := c.Delete(q); return err }
	}
	q, hi := m.center(rng)
	switch {
	case r < m.cum[0]:
		return "point", func(c apiClient) error { _, err := c.PointQuery(q); return err }
	case r < m.cum[1]:
		hs := 0.02
		if hi >= 0 {
			hs = windowSizes[hi%len(windowSizes)] // fixed per hotspot → exact repeats
		}
		win := geo.Rect{MinX: q.X, MinY: q.Y, MaxX: q.X + hs, MaxY: q.Y + hs}
		return "window", func(c apiClient) error { _, err := c.WindowQuery(win); return err }
	default:
		k := 1 + rng.Intn(16)
		return "knn", func(c apiClient) error { _, err := c.KNN(q, k); return err }
	}
}

// --- reporting ----------------------------------------------------------

type latencySummary struct {
	Count      int     `json:"count"`
	Errors     int     `json:"errors"`
	Overloaded int     `json:"overloaded"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	MaxMs      float64 `json:"max_ms"`
}

type runResult struct {
	Transport    string                    `json:"transport"`
	Target       string                    `json:"target"`
	Shards       int                       `json:"shards,omitempty"`
	CacheOn      bool                      `json:"cache_on,omitempty"`
	CacheHitRate float64                   `json:"cache_hit_rate,omitempty"`
	AchievedRPS  float64                   `json:"achieved_rps"`
	Overall      latencySummary            `json:"overall"`
	PerOp        map[string]latencySummary `json:"per_op"`
	// ServerStats is the server's own view, including the result-cache
	// counters and the per-shard workload monitor/profile breakdown.
	ServerStats *engine.Stats `json:"server_stats,omitempty"`
}

type benchReport struct {
	Name     string      `json:"name"`
	Seed     int64       `json:"seed"`
	RateRPS  float64     `json:"rate_rps"`
	Duration string      `json:"duration"`
	Warmup   string      `json:"warmup,omitempty"`
	Conns    int         `json:"conns"`
	Mix      string      `json:"mix,omitempty"`
	Zipf     float64     `json:"zipf,omitempty"`
	Hotspots int         `json:"hotspots,omitempty"`
	Runs     []runResult `json:"runs"`
}

func summarize(samples []sample, elapsed time.Duration) runResult {
	res := runResult{
		AchievedRPS: float64(len(samples)) / elapsed.Seconds(),
		Overall:     summarizeOp(samples),
		PerOp:       map[string]latencySummary{},
	}
	byOp := map[string][]sample{}
	for _, s := range samples {
		byOp[s.op] = append(byOp[s.op], s)
	}
	for op, ss := range byOp {
		res.PerOp[op] = summarizeOp(ss)
	}
	return res
}

func summarizeOp(samples []sample) latencySummary {
	sum := latencySummary{Count: len(samples)}
	lats := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.err != nil {
			if errors.Is(s.err, engine.ErrOverloaded) {
				sum.Overloaded++
			} else {
				sum.Errors++
			}
			continue
		}
		lats = append(lats, float64(s.lat)/float64(time.Millisecond))
	}
	sort.Float64s(lats)
	sum.P50Ms = percentile(lats, 0.50)
	sum.P90Ms = percentile(lats, 0.90)
	sum.P99Ms = percentile(lats, 0.99)
	sum.P999Ms = percentile(lats, 0.999)
	if len(lats) > 0 {
		sum.MaxMs = lats[len(lats)-1]
	}
	return sum
}

// percentile returns the q-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
