// Command elsiload is the open-loop load generator for elsid: it
// fires requests at the server with seeded Poisson arrivals (the
// inter-arrival gaps are Exp(rate) draws from a deterministic
// generator — wall-clock time is used only to measure latency, never
// as a randomness source) and reports client-observed p50/p99/p999
// latency per operation, overall throughput, and the server's own
// /stats counters.
//
// Open loop means arrivals do not wait for completions: when the
// server falls behind, requests queue and the measured latency grows —
// the honest failure mode closed-loop generators hide.
//
// Usage:
//
//	elsiload -target tcp://127.0.0.1:9090 -rate 2000 -duration 10s
//	elsiload -target http://127.0.0.1:8080 -rate 500 -duration 5s
//	elsiload -inproc -rate 3000 -duration 3s -o BENCH_pr6.json
//
// With -inproc, elsiload stands up the full elsid stack in-process on
// ephemeral localhost ports and drives both transports back to back —
// the one-command, no-daemon way to produce the serving benchmark
// artifact.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"elsi/internal/base"
	"elsi/internal/client"
	"elsi/internal/dataset"
	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/server"
	"elsi/internal/shard"
	"elsi/internal/zm"
)

// apiClient is the operation surface both transports expose.
type apiClient interface {
	PointQuery(pt geo.Point) (bool, error)
	WindowQuery(win geo.Rect) ([]geo.Point, error)
	KNN(q geo.Point, k int) ([]geo.Point, error)
	Insert(pt geo.Point) (bool, error)
	Delete(pt geo.Point) (bool, error)
	Stats() (engine.Stats, error)
}

func main() {
	var (
		target   = flag.String("target", "", "server address: tcp://host:port or http://host:port (empty requires -inproc)")
		inproc   = flag.Bool("inproc", false, "stand up the serving stack in-process and drive both transports")
		rate     = flag.Float64("rate", 1000, "offered load in requests/second")
		duration = flag.Duration("duration", 5*time.Second, "measured load duration per run")
		warmup   = flag.Duration("warmup", 0, "run the stream this long before measuring; warmup samples are excluded from the latency percentiles and throughput")
		conns    = flag.Int("conns", 16, "connection pool size (TCP conns / HTTP concurrency bound)")
		seed     = flag.Int64("seed", 1, "random seed for arrivals and the op mix")
		n        = flag.Int("n", 50000, "in-process data set cardinality (-inproc)")
		shards   = flag.Int("shards", 1, "in-process spatial shard count (-inproc)")
		sweep    = flag.String("sweep-shards", "", "comma-separated shard counts: one in-proc TCP run per count (e.g. 1,4,16)")
		out      = flag.String("o", "-", "output path for the JSON report (- = stdout)")
	)
	flag.Parse()

	if err := run(*target, *inproc, *rate, *duration, *warmup, *conns, *seed, *n, *shards, *sweep, *out); err != nil {
		fmt.Fprintln(os.Stderr, "elsiload:", err)
		os.Exit(1)
	}
}

func run(target string, inproc bool, rate float64, duration, warmup time.Duration, conns int, seed int64, n, shards int, sweep, out string) error {
	report := benchReport{
		Name:     "serving-loadtest",
		Seed:     seed,
		RateRPS:  rate,
		Duration: duration.String(),
		Conns:    conns,
	}
	if warmup > 0 {
		report.Warmup = warmup.String()
	}

	if sweep != "" {
		// shard-count sweep: one in-proc TCP run per count, same
		// workload, so the per-S rows are directly comparable
		for _, f := range strings.Split(sweep, ",") {
			s, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || s < 1 {
				return fmt.Errorf("bad -sweep-shards entry %q", f)
			}
			srv, cleanup, err := startInproc(n, seed, s)
			if err != nil {
				return err
			}
			res, err := runLoad("tcp://"+srv.TCPAddr(), rate, duration, warmup, conns, seed)
			cleanup()
			if err != nil {
				return err
			}
			res.Shards = s
			report.Runs = append(report.Runs, res)
		}
	} else if inproc {
		srv, cleanup, err := startInproc(n, seed, shards)
		if err != nil {
			return err
		}
		defer cleanup()
		for _, tr := range []string{"tcp", "http"} {
			addr := "tcp://" + srv.TCPAddr()
			if tr == "http" {
				addr = "http://" + srv.HTTPAddr()
			}
			res, err := runLoad(addr, rate, duration, warmup, conns, seed)
			if err != nil {
				return err
			}
			res.Shards = shards
			report.Runs = append(report.Runs, res)
		}
	} else {
		if target == "" {
			return fmt.Errorf("need -target or -inproc")
		}
		res, err := runLoad(target, rate, duration, warmup, conns, seed)
		if err != nil {
			return err
		}
		report.Runs = append(report.Runs, res)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// startInproc builds the elsid stack on ephemeral localhost ports:
// unsharded for shards <= 1, a Hilbert-partitioned router otherwise.
func startInproc(n int, seed int64, shards int) (*server.Server, func(), error) {
	pts := dataset.MustGenerate(dataset.Uniform, n, seed)
	pred, err := rebuild.TrainPredictor(
		rebuild.HeuristicSamples(rand.New(rand.NewSource(seed)), 1000),
		rebuild.PredictorConfig{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	factory := func() rebuild.Rebuildable {
		return zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
			Fanout:  8,
		})
	}
	mapKey := factory().(*zm.Index).MapKey
	fu := n / 10
	if shards > 1 {
		fu = max(1, fu/shards)
	}
	mk := func(sub []geo.Point) (*rebuild.Processor, error) {
		proc, err := rebuild.NewProcessor(factory(), pred, sub, mapKey, fu)
		if err != nil {
			return nil, err
		}
		proc.Factory = factory
		proc.Retry = &rebuild.RetryPolicy{}
		return proc, nil
	}
	var be engine.Backend
	if shards <= 1 {
		proc, err := mk(pts)
		if err != nil {
			return nil, nil, err
		}
		be = engine.NewSingle(proc, 0)
	} else {
		r, err := shard.New(pts, geo.UnitRect, shard.Config{Shards: shards}, mk)
		if err != nil {
			return nil, nil, err
		}
		be = r
	}
	eng := engine.NewWithBackend(be, nil, engine.Config{})
	srv := server.New(eng)
	if err := srv.Start(context.Background(), "127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return nil, nil, err
	}
	return srv, func() { srv.Close() }, nil
}

// dialPool builds the bounded client pool for a target URL.
func dialPool(target string, conns int) (chan apiClient, string, func(), error) {
	pool := make(chan apiClient, conns)
	switch {
	case strings.HasPrefix(target, "tcp://"):
		addr := strings.TrimPrefix(target, "tcp://")
		var opened []*client.TCP
		for i := 0; i < conns; i++ {
			c, err := client.DialTCP(addr)
			if err != nil {
				for _, o := range opened {
					o.Close()
				}
				return nil, "", nil, err
			}
			opened = append(opened, c)
			pool <- c
		}
		return pool, "tcp", func() {
			for _, o := range opened {
				o.Close()
			}
		}, nil
	case strings.HasPrefix(target, "http://"):
		hc := &client.HTTP{Base: target, C: &http.Client{
			Transport: &http.Transport{MaxIdleConns: conns, MaxIdleConnsPerHost: conns},
		}}
		// one shared HTTP client; the pool's slots bound the concurrency
		for i := 0; i < conns; i++ {
			pool <- hc
		}
		return pool, "http", func() {}, nil
	default:
		return nil, "", nil, fmt.Errorf("target %q: want tcp://host:port or http://host:port", target)
	}
}

// sample is one completed request. warm marks arrivals inside the
// warmup window; they drive load but never reach the summaries.
type sample struct {
	op   string
	lat  time.Duration
	err  error
	warm bool
}

// runLoad fires the Poisson-arrival request stream at target. The
// stream runs for warmup+duration; samples whose arrival falls inside
// the warmup window are discarded before summarizing, so connection
// setup, server JIT effects, and cold caches don't pollute the
// percentiles.
func runLoad(target string, rate float64, duration, warmup time.Duration, conns int, seed int64) (runResult, error) {
	pool, transport, cleanup, err := dialPool(target, conns)
	if err != nil {
		return runResult{}, err
	}
	defer cleanup()

	rng := rand.New(rand.NewSource(seed))
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	start := time.Now()
	next := start
	for {
		// Exp(rate) inter-arrival gap from the seeded generator
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.Sub(start) > warmup+duration {
			break
		}
		op, call := nextOp(rng)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		arrival := next // latency includes any queueing for a pool slot
		warm := arrival.Sub(start) < warmup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := <-pool
			err := call(c)
			pool <- c
			record(sample{op: op, lat: time.Since(arrival), err: err, warm: warm})
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) - warmup

	measured := samples[:0]
	for _, s := range samples {
		if !s.warm {
			measured = append(measured, s)
		}
	}
	res := summarize(measured, elapsed)
	res.Transport = transport
	res.Target = target

	// the server's own view of the run
	c := <-pool
	if st, err := c.Stats(); err == nil {
		res.ServerStats = &st
	}
	pool <- c
	return res, nil
}

// nextOp draws one operation from the fixed mix: 40% point query,
// 15% kNN, 10% window, 20% insert, 15% delete.
func nextOp(rng *rand.Rand) (string, func(apiClient) error) {
	q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
	switch r := rng.Float64(); {
	case r < 0.40:
		return "point", func(c apiClient) error { _, err := c.PointQuery(q); return err }
	case r < 0.55:
		k := 1 + rng.Intn(16)
		return "knn", func(c apiClient) error { _, err := c.KNN(q, k); return err }
	case r < 0.65:
		win := geo.Rect{MinX: q.X, MinY: q.Y, MaxX: q.X + 0.02, MaxY: q.Y + 0.02}
		return "window", func(c apiClient) error { _, err := c.WindowQuery(win); return err }
	case r < 0.85:
		return "insert", func(c apiClient) error { _, err := c.Insert(q); return err }
	default:
		return "delete", func(c apiClient) error { _, err := c.Delete(q); return err }
	}
}

// --- reporting ----------------------------------------------------------

type latencySummary struct {
	Count      int     `json:"count"`
	Errors     int     `json:"errors"`
	Overloaded int     `json:"overloaded"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	MaxMs      float64 `json:"max_ms"`
}

type runResult struct {
	Transport   string                    `json:"transport"`
	Target      string                    `json:"target"`
	Shards      int                       `json:"shards,omitempty"`
	AchievedRPS float64                   `json:"achieved_rps"`
	Overall     latencySummary            `json:"overall"`
	PerOp       map[string]latencySummary `json:"per_op"`
	ServerStats *engine.Stats             `json:"server_stats,omitempty"`
}

type benchReport struct {
	Name     string      `json:"name"`
	Seed     int64       `json:"seed"`
	RateRPS  float64     `json:"rate_rps"`
	Duration string      `json:"duration"`
	Warmup   string      `json:"warmup,omitempty"`
	Conns    int         `json:"conns"`
	Runs     []runResult `json:"runs"`
}

func summarize(samples []sample, elapsed time.Duration) runResult {
	res := runResult{
		AchievedRPS: float64(len(samples)) / elapsed.Seconds(),
		Overall:     summarizeOp(samples),
		PerOp:       map[string]latencySummary{},
	}
	byOp := map[string][]sample{}
	for _, s := range samples {
		byOp[s.op] = append(byOp[s.op], s)
	}
	for op, ss := range byOp {
		res.PerOp[op] = summarizeOp(ss)
	}
	return res
}

func summarizeOp(samples []sample) latencySummary {
	sum := latencySummary{Count: len(samples)}
	lats := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.err != nil {
			if errors.Is(s.err, engine.ErrOverloaded) {
				sum.Overloaded++
			} else {
				sum.Errors++
			}
			continue
		}
		lats = append(lats, float64(s.lat)/float64(time.Millisecond))
	}
	sort.Float64s(lats)
	sum.P50Ms = percentile(lats, 0.50)
	sum.P90Ms = percentile(lats, 0.90)
	sum.P99Ms = percentile(lats, 0.99)
	sum.P999Ms = percentile(lats, 0.999)
	if len(lats) > 0 {
		sum.MaxMs = lats[len(lats)-1]
	}
	return sum
}

// percentile returns the q-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
