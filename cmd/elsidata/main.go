// Command elsidata emits the synthetic surrogate data sets to disk for
// inspection or external use. Points are written as CSV (x,y) or as a
// little-endian binary stream of float64 pairs.
//
// Usage:
//
//	elsidata -dataset osm1 -n 1000000 -o osm1.csv
//	elsidata -dataset nyc -n 500000 -format bin -o nyc.bin
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"elsi/internal/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "osm1", "data set name (uniform, skewed, osm1, osm2, tpch, nyc)")
		n      = flag.Int("n", 100000, "number of points")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "csv", "output format: csv or bin")
		out    = flag.String("o", "-", "output path (- for stdout)")
	)
	flag.Parse()

	pts, err := dataset.Generate(*name, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsidata:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elsidata:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch *format {
	case "csv":
		fmt.Fprintln(bw, "x,y")
		for _, p := range pts {
			fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y)
		}
	case "bin":
		buf := make([]byte, 16)
		for _, p := range pts {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(p.X))
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(p.Y))
			if _, err := bw.Write(buf); err != nil {
				fmt.Fprintln(os.Stderr, "elsidata:", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "elsidata: unknown format %q\n", *format)
		os.Exit(1)
	}
}
