// Command elsibench regenerates the tables and figures of the ELSI
// paper's evaluation (Section VII) on the scaled surrogate data sets.
//
// Usage:
//
//	elsibench -exp table2 -n 200000 -queries 1000
//	elsibench -exp all
//	elsibench -list
//
// The -exp flag names the paper artifact (fig6a..fig16, table1,
// table2, or all). The environment preparation (method scorer and
// rebuild predictor training) runs once per invocation and its cost is
// reported separately, mirroring the paper's offline one-off
// preparation.
//
// With -json, elsibench instead emits a machine-readable build/query
// benchmark (medians per learned index at serial and parallel worker
// counts) to stdout and skips the experiment drivers:
//
//	elsibench -json -n 50000 -queries 300 > BENCH.json
//
// With -faults, elsibench arms deterministic fault injection before
// running — chaos testing the degradation ladder under a real
// workload (see the "Chaos testing" section of the README):
//
//	elsibench -faults 'build/SP:panic;bounds/scan:error:2' -exp table2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"elsi/internal/bench"
	"elsi/internal/faults"

	// Registered for their fault-injection points (wal/*, snapshot/*,
	// recover/*), so -faults list covers the durability layer too.
	_ "elsi/internal/persist"
)

func main() {
	var (
		exp     = flag.String("exp", "table2", "experiment id (figNN, tableN, or \"all\")")
		n       = flag.Int("n", 200000, "data set cardinality")
		queries = flag.Int("queries", 1000, "queries per measurement")
		seed    = flag.Int64("seed", 1, "random seed")
		epochs  = flag.Int("epochs", 60, "FFN training epochs for the base indices")
		cache   = flag.String("prep-cache", "", "path prefix for caching the offline preparation")
		list    = flag.Bool("list", false, "list experiments and exit")
		asJSON  = flag.Bool("json", false, "emit the machine-readable build/query benchmark as JSON and exit")
		reps    = flag.Int("reps", 3, "repetitions per median with -json")
		chaos   = flag.String("faults", "", "chaos spec: ';'-separated <point>:<mode>[:<times>] entries (mode: error, panic, budget, delay=<dur>); \"list\" prints the registered points")
	)
	flag.Parse()

	if *chaos == "list" {
		pts := faults.Points()
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(pts); err != nil {
				fmt.Fprintln(os.Stderr, "elsibench:", err)
				os.Exit(1)
			}
			return
		}
		for _, p := range pts {
			fmt.Printf("%-20s %s\n", p.Name, p.Desc)
		}
		return
	}

	if *chaos != "" {
		if err := faults.ParseSpec(*chaos); err != nil {
			fmt.Fprintln(os.Stderr, "elsibench: -faults:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "chaos mode: faults armed at %v\n", faults.Armed())
		defer func() {
			for _, p := range faults.Armed() {
				fmt.Fprintf(os.Stderr, "chaos: %s fired %d times\n", p, faults.Hits(p))
			}
			faults.Reset()
		}()
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *asJSON {
		err := bench.RunJSON(os.Stdout, bench.JSONOptions{
			N:       *n,
			Queries: *queries,
			Seed:    *seed,
			Epochs:  *epochs,
			Reps:    *reps,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "elsibench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "preparing environment (n=%d, seed=%d)...\n", *n, *seed)
	env, err := bench.NewEnv(bench.Options{
		N:         *n,
		Queries:   *queries,
		Seed:      *seed,
		FFNEpochs: *epochs,
		CachePath: *cache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsibench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scorer preparation took %v (%d ground-truth samples)\n",
		env.ScorerPrepTime.Round(1e6), len(env.ScorerSamples))

	if err := bench.Run(*exp, os.Stdout, env); err != nil {
		fmt.Fprintln(os.Stderr, "elsibench:", err)
		os.Exit(1)
	}
}
