// Quickstart: build a learned spatial index with ELSI and compare its
// build time and query behaviour against the same index trained the
// original way (OG, full-data training).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"elsi/internal/base"
	"elsi/internal/bench"
	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
	"elsi/internal/zm"
)

func main() {
	const n = 100000
	fmt.Printf("generating %d OSM-like points...\n", n)
	pts := dataset.MustGenerate(dataset.OSM1, n, 1)

	// The base index's model family: a small FFN, as in the paper.
	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 60, Seed: 1})

	// Offline, one-off ELSI preparation: train the method scorer on a
	// small grid of synthetic data sets.
	fmt.Println("training the ELSI method scorer (offline preparation)...")
	gen := scorer.GenConfig{
		Cardinalities: []int{1000, 5000, 25000},
		Dists:         []float64{0, 0.3, 0.6, 0.9},
		Trainer:       trainer,
		Queries:       100,
		Seed:          1,
	}
	sc, _, err := core.TrainScorer(gen, scorer.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// ELSI as a drop-in model builder for the ZM index.
	elsi := core.MustNewSystem(core.Config{
		Trainer:  trainer,
		Lambda:   0.8, // prioritize build time, the paper's default
		WQ:       1,
		Selector: core.SelectorLearned,
		Scorer:   sc,
		Seed:     1,
	})

	build := func(name string, builder base.ModelBuilder) *zm.Index {
		ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: builder, Fanout: 4})
		t0 := time.Now()
		if err := ix.Build(pts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s build: %8v", name, time.Since(t0).Round(time.Millisecond))
		q := bench.PointQueryTime(ix, pts, 500, 7)
		fmt.Printf("   point query: %v\n", q.Round(time.Nanosecond))
		return ix
	}

	fmt.Println("\nbuilding the ZM index twice:")
	og := build("OG", &base.Direct{Trainer: trainer})
	fast := build("ELSI", elsi)

	fmt.Printf("\nELSI chose methods: %v\n", elsi.Selections())

	// Queries behave identically (point and window queries are exact).
	q := pts[42]
	fmt.Printf("\npoint query %v: OG=%v ELSI=%v\n", q, og.PointQuery(q), fast.PointQuery(q))
	win := geo.Rect{MinX: q.X - 0.01, MinY: q.Y - 0.01, MaxX: q.X + 0.01, MaxY: q.Y + 0.01}
	fmt.Printf("window %v: OG=%d points, ELSI=%d points\n", win, len(og.WindowQuery(win)), len(fast.WindowQuery(win)))
	knn := fast.KNN(q, 5)
	fmt.Printf("5 nearest neighbours of %v:\n", q)
	for _, p := range knn {
		fmt.Printf("  %v (dist %.5f)\n", p, p.Dist(q))
	}
}
