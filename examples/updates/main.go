// Updates: the rebuild story of Figures 15 and 16 — a check-in stream
// skews the data distribution until the learned index degrades, and
// ELSI's update processor decides, with the learned rebuild predictor,
// when a full rebuild pays off. The example prints the CDF drift
// sim(D', D), the query latency, and the rebuild decisions as the
// stream progresses.
//
// Run with:
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"elsi/internal/base"
	"elsi/internal/bench"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

func main() {
	const n = 50000
	fmt.Printf("building ZM on %d uniform points, then streaming skewed check-ins...\n\n", n)
	pts := dataset.MustGenerate(dataset.Uniform, n, 5)

	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 40, Seed: 5})
	ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: &base.Direct{Trainer: trainer}, Fanout: 4})

	// rebuild predictor trained on the qualitative ground truth
	pred, err := rebuild.TrainPredictor(
		rebuild.HeuristicSamples(rand.New(rand.NewSource(5)), 1000),
		rebuild.PredictorConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	proc, err := rebuild.NewProcessor(ix, pred, pts, ix.MapKey, n/10)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(6))
	fmt.Printf("%8s  %10s  %8s  %12s  %s\n", "inserted", "sim(D',D)", "rebuilds", "point query", "pending")
	report := func(inserted int) {
		all := make([]geo.Point, 0, proc.Len())
		q := bench.PointQueryTime(proc, append(all, pts...), 300, 9)
		fmt.Printf("%8d  %10.4f  %8d  %12v  %d\n",
			inserted, proc.CurrentSim(), proc.Rebuilds(), q.Round(time.Nanosecond), proc.PendingUpdates())
	}
	report(0)
	total := 0
	for _, batch := range []int{n / 10, n / 4, n / 2, n} {
		for i := 0; i < batch; i++ {
			// check-ins from one hot neighbourhood: maximal drift
			proc.Insert(geo.Point{X: rng.Float64() * 0.05, Y: rng.Float64() * 0.05})
			total++
		}
		report(total)
	}
	fmt.Printf("\nfinal state: %d points, %d full rebuilds, sim(D',D)=%.4f\n",
		proc.Len(), proc.Rebuilds(), proc.CurrentSim())
}
