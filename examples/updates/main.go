// Updates: the rebuild story of Figures 15 and 16 — a check-in stream
// skews the data distribution until the learned index degrades, and
// ELSI's update processor decides, with the learned rebuild predictor,
// when a full rebuild pays off. The example prints the CDF drift
// sim(D', D), the query latency, and the rebuild decisions as the
// stream progresses.
//
// The second part demonstrates the concurrent update processor: with a
// Factory set, rebuilds run on a background goroutine against a frozen
// snapshot while writer goroutines keep streaming check-ins and the
// main goroutine keeps querying — the rebuild never blocks either.
//
// Run with:
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"elsi/internal/base"
	"elsi/internal/bench"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

func main() {
	const n = 50000
	fmt.Printf("building ZM on %d uniform points, then streaming skewed check-ins...\n\n", n)
	pts := dataset.MustGenerate(dataset.Uniform, n, 5)

	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 40, Seed: 5})
	ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: &base.Direct{Trainer: trainer}, Fanout: 4})

	// rebuild predictor trained on the qualitative ground truth
	pred, err := rebuild.TrainPredictor(
		rebuild.HeuristicSamples(rand.New(rand.NewSource(5)), 1000),
		rebuild.PredictorConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	proc, err := rebuild.NewProcessor(ix, pred, pts, ix.MapKey, n/10)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(6))
	fmt.Printf("%8s  %10s  %8s  %12s  %s\n", "inserted", "sim(D',D)", "rebuilds", "point query", "pending")
	report := func(inserted int) {
		all := make([]geo.Point, 0, proc.Len())
		q := bench.PointQueryTime(proc, append(all, pts...), 300, 9)
		fmt.Printf("%8d  %10.4f  %8d  %12v  %d\n",
			inserted, proc.CurrentSim(), proc.Rebuilds(), q.Round(time.Nanosecond), proc.PendingUpdates())
	}
	report(0)
	total := 0
	for _, batch := range []int{n / 10, n / 4, n / 2, n} {
		for i := 0; i < batch; i++ {
			// check-ins from one hot neighbourhood: maximal drift
			proc.Insert(geo.Point{X: rng.Float64() * 0.05, Y: rng.Float64() * 0.05})
			total++
		}
		report(total)
	}
	fmt.Printf("\nfinal state: %d points, %d full rebuilds, sim(D',D)=%.4f\n",
		proc.Len(), proc.Rebuilds(), proc.CurrentSim())

	concurrentDemo(n)
}

// concurrentDemo runs the same skewed check-in stream under concurrent
// load: two writer goroutines insert while the main goroutine queries,
// and a background rebuild is swapped in without blocking either side.
func concurrentDemo(n int) {
	fmt.Printf("\n--- concurrent update processor ---\n")
	fmt.Printf("rebuilding in the background under live insert + query load...\n\n")
	pts := dataset.MustGenerate(dataset.Uniform, n, 5)
	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 40, Seed: 5})
	newIndex := func() rebuild.Rebuildable {
		return zm.New(zm.Config{Space: geo.UnitRect, Builder: &base.Direct{Trainer: trainer}, Fanout: 4})
	}
	serving := newIndex().(*zm.Index)
	proc, err := rebuild.NewProcessor(serving, nil, pts, serving.MapKey, n/10)
	if err != nil {
		log.Fatal(err)
	}
	proc.Factory = newIndex

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				proc.Insert(geo.Point{X: rng.Float64() * 0.05, Y: rng.Float64() * 0.05})
				time.Sleep(20 * time.Microsecond) // ~50k check-ins/s per writer
			}
		}(int64(7 + w))
	}

	proc.Rebuild() // background: returns immediately
	fmt.Printf("rebuild in flight: %v\n", proc.Rebuilding())

	// query the whole time the rebuild runs; the processor serves from
	// the old index plus the frozen delta view and the live overlay
	rng := rand.New(rand.NewSource(9))
	var lat []time.Duration
	for proc.Rebuilding() {
		q := pts[rng.Intn(len(pts))]
		t0 := time.Now()
		proc.PointQuery(q)
		lat = append(lat, time.Since(t0))
	}
	proc.WaitRebuild()
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	fmt.Printf("%d point queries answered during the in-flight rebuild\n", len(lat))
	fmt.Printf("latency while rebuilding: p50=%v  p99=%v  max=%v\n",
		pct(0.50).Round(time.Nanosecond), pct(0.99).Round(time.Nanosecond), pct(1.0).Round(time.Nanosecond))
	fmt.Printf("after swap: %d points, %d rebuilds, %d updates pending in the overlay\n",
		proc.Len(), proc.Rebuilds(), proc.PendingUpdates())
}
