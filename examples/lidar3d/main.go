// LiDAR 3-D: the d-dimensional generalization in action. The paper
// defines ELSI for d >= 2; this example indexes a synthetic 3-D LiDAR
// point cloud (terrain surface + building boxes) with the
// d-dimensional Morton-mapped learned index, comparing OG full-data
// training against RS-reduced training (Algorithm 2 with 2^3 = 8-way
// splits) on build time, training-set size, and query agreement.
//
// Run with:
//
//	go run ./examples/lidar3d
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"elsi/internal/ndim"
	"elsi/internal/rmi"
)

// lidarCloud synthesizes a LiDAR-like scene: ground returns on a
// rolling terrain surface plus dense vertical clusters (buildings).
func lidarCloud(rng *rand.Rand, n int) []ndim.Point {
	pts := make([]ndim.Point, n)
	for i := range pts {
		x, y := rng.Float64(), rng.Float64()
		ground := 0.1 + 0.05*(math.Sin(8*x)+math.Cos(6*y))
		var z float64
		switch {
		case rng.Float64() < 0.7: // ground return
			z = ground + rng.NormFloat64()*0.002
		default: // building facade: vertical stripe above ground
			bx := math.Floor(x*10) / 10
			by := math.Floor(y*10) / 10
			z = ground + rng.Float64()*0.3
			x = bx + rng.Float64()*0.02
			y = by + rng.Float64()*0.02
		}
		if z < 0 {
			z = 0
		}
		if z > 1 {
			z = 1
		}
		pts[i] = ndim.Point{x, y, z}
	}
	return pts
}

func main() {
	const n = 200000
	rng := rand.New(rand.NewSource(1))
	fmt.Printf("synthesizing %d 3-D LiDAR returns...\n", n)
	pts := lidarCloud(rng, n)
	space := ndim.UnitCube(3)
	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 60, Seed: 1})

	build := func(name string, rsBeta int) *ndim.Index {
		ix := ndim.NewIndex(space, trainer, rsBeta)
		t0 := time.Now()
		if err := ix.Build(pts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s build %8v   |train set| %7d   |error| %d\n",
			name, time.Since(t0).Round(time.Millisecond), ix.TrainSetSize(), ix.ErrWidth())
		return ix
	}
	fmt.Println("\nbuilding the 3-D learned index twice:")
	og := build("OG", 0)
	rs := build("ELSI/RS", 400)

	// a volumetric query: everything inside one building block
	win := ndim.Rect{
		Min: ndim.Point{0.30, 0.30, 0.12},
		Max: ndim.Point{0.34, 0.34, 0.45},
	}
	a, b := og.WindowQuery(win), rs.WindowQuery(win)
	fmt.Printf("\nvolumetric query %v..%v: OG=%d points, RS=%d points (both exact)\n",
		win.Min, win.Max, len(a), len(b))

	// nearest returns to a sensor position
	q := ndim.Point{0.5, 0.5, 0.2}
	t0 := time.Now()
	nn := rs.KNN(q, 5)
	fmt.Printf("\n5 nearest returns to sensor %v (%v):\n", q, time.Since(t0).Round(time.Microsecond))
	for _, p := range nn {
		fmt.Printf("  %v  dist %.5f\n", p, math.Sqrt(p.Dist2(q)))
	}
}
