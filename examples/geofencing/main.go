// Geofencing: the window-query workload the paper's introduction
// motivates — find all points of interest inside the region a user's
// screen covers. This example indexes heavily skewed NYC-like check-in
// data with RSMI built through ELSI and evaluates a set of geofences,
// reporting per-fence hit counts and the recall of the approximate
// window queries against exact ground truth.
//
// Run with:
//
//	go run ./examples/geofencing
package main

import (
	"fmt"
	"log"
	"time"

	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rmi"
	"elsi/internal/rsmi"
	"elsi/internal/scorer"
)

func main() {
	const n = 100000
	fmt.Printf("indexing %d NYC-like check-ins with RSMI + ELSI...\n", n)
	pts := dataset.MustGenerate(dataset.NYC, n, 2)

	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 50, Seed: 2})
	sc, _, err := core.TrainScorer(scorer.GenConfig{
		Cardinalities: []int{1000, 10000},
		Dists:         []float64{0, 0.4, 0.8},
		Trainer:       trainer,
		Queries:       100,
		Seed:          2,
	}, scorer.Config{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	elsi := core.MustNewSystem(core.Config{
		Trainer: trainer, Lambda: 0.8, WQ: 1,
		Selector: core.SelectorLearned, Scorer: sc, Seed: 2,
	})

	ix := rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: elsi, Fanout: 8, LeafCap: 5000})
	t0 := time.Now()
	if err := ix.Build(pts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built in %v (%d models, depth %d, methods %v)\n",
		time.Since(t0).Round(time.Millisecond), ix.NumModels(), ix.Depth(), elsi.Selections())

	// ground truth for recall
	truth := index.NewBruteForce()
	truth.Build(pts)

	// a few Manhattan-ish geofences: a midtown block, a park, a river edge
	fences := map[string]geo.Rect{
		"midtown block": {MinX: 0.49, MinY: 0.55, MaxX: 0.51, MaxY: 0.58},
		"downtown core": {MinX: 0.45, MinY: 0.33, MaxX: 0.50, MaxY: 0.40},
		"uptown strip":  {MinX: 0.47, MinY: 0.70, MaxX: 0.53, MaxY: 0.78},
		"west edge":     {MinX: 0.42, MinY: 0.40, MaxX: 0.44, MaxY: 0.60},
	}
	fmt.Println("\ngeofence evaluation:")
	for name, fence := range fences {
		t0 := time.Now()
		got := ix.WindowQuery(fence)
		elapsed := time.Since(t0)
		want := truth.WindowQuery(fence)
		recall := index.Recall(got, want)
		fmt.Printf("  %-14s %6d check-ins  (%v, recall %.3f)\n", name, len(got), elapsed.Round(time.Microsecond), recall)
	}
}
