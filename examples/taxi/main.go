// Taxi dispatch: the kNN workload of Section VII-G3 on NYC-taxi-like
// pickup points — "find the k nearest available pickups to a rider".
// The example builds LISA through ELSI (with the LISA-restricted
// method pool: CL and RL do not apply) and serves k-nearest queries,
// then demonstrates LISA's built-in insertion path as new pickups
// stream in.
//
// Run with:
//
//	go run ./examples/taxi
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/lisa"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
)

func main() {
	const n = 150000
	fmt.Printf("indexing %d taxi pickups with LISA + ELSI...\n", n)
	pts := dataset.MustGenerate(dataset.NYC, n, 3)

	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 50, Seed: 3})
	sc, _, err := core.TrainScorer(scorer.GenConfig{
		Cardinalities: []int{1000, 10000},
		Dists:         []float64{0, 0.4, 0.8},
		Trainer:       trainer,
		Queries:       100,
		Seed:          3,
	}, scorer.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	elsi := core.MustNewSystem(core.Config{
		Trainer: trainer, Lambda: 0.8, WQ: 1,
		Selector: core.SelectorLearned, Scorer: sc, Seed: 3,
		Pool: core.PoolForIndex("LISA"), // CL and RL are inapplicable
	})

	ix := lisa.New(lisa.Config{Space: geo.UnitRect, Builder: elsi})
	t0 := time.Now()
	if err := ix.Build(pts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built in %v over %d pages (method: %v)\n",
		time.Since(t0).Round(time.Millisecond), ix.Pages(), elsi.Selections())

	// serve some rider requests
	riders := []geo.Point{
		{X: 0.50, Y: 0.55}, // midtown
		{X: 0.46, Y: 0.35}, // downtown
		{X: 0.52, Y: 0.75}, // uptown
	}
	const k = 5
	fmt.Printf("\nnearest %d pickups per rider:\n", k)
	for _, r := range riders {
		t0 := time.Now()
		nearest := ix.KNN(r, k)
		fmt.Printf("  rider at %v (%v):\n", r, time.Since(t0).Round(time.Microsecond))
		for _, p := range nearest {
			fmt.Printf("    pickup %v  dist %.5f\n", p, p.Dist(r))
		}
	}

	// new pickups stream in through LISA's built-in insertion
	fmt.Println("\nstreaming 10,000 new pickups...")
	rng := rand.New(rand.NewSource(4))
	fresh := dataset.NYCPoints(rng, 10000)
	t0 = time.Now()
	for _, p := range fresh {
		ix.Insert(p)
	}
	fmt.Printf("inserted in %v (now %d points, %d pages, max shard %d entries)\n",
		time.Since(t0).Round(time.Millisecond), ix.Len(), ix.Pages(), ix.MaxShardLen())
}
