package elsi

// The benchmarks below regenerate the paper's evaluation artifacts,
// one testing.B benchmark per table and figure (Benchmark{Fig,Table}*)
// plus the ablation benches DESIGN.md calls out. Each driver benchmark
// executes the full experiment once per iteration at a reduced scale —
// run with
//
//	go test -bench=. -benchmem
//
// and use cmd/elsibench for the full-scale, human-readable rows.

import (
	"io"
	"os"
	"sync"
	"testing"

	"elsi/internal/base"
	"elsi/internal/bench"
	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/methods"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

var (
	envOnce  sync.Once
	benchEnv *bench.Env
)

// sharedEnv prepares one small environment for all driver benchmarks.
func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		e, err := bench.NewEnv(bench.Options{
			N:           4000,
			Queries:     60,
			Seed:        1,
			FFNEpochs:   12,
			ScorerCards: []int{400, 2000},
			ScorerDists: []float64{0, 0.4, 0.8},
		})
		if err != nil {
			panic(err)
		}
		benchEnv = e
	})
	return benchEnv
}

// runExperiment benchmarks one full experiment driver.
func runExperiment(b *testing.B, id string) {
	e := sharedEnv(b)
	out := io.Discard
	if testing.Verbose() {
		out = os.Stdout
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, out, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6a(b *testing.B)  { runExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { runExperiment(b, "fig6b") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }

// --- focused micro-benchmarks: the headline build-time contrast ------

func buildBench(b *testing.B, builder base.ModelBuilder) {
	pts := dataset.MustGenerate(dataset.OSM1, 20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: builder, Fanout: 2})
		if err := ix.Build(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildZMOG is the original full-data training path.
func BenchmarkBuildZMOG(b *testing.B) {
	buildBench(b, &base.Direct{Trainer: rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 30, Seed: 1})})
}

// BenchmarkBuildZMELSI is the same index built through ELSI (fixed RS,
// the query-optimized proposed method).
func BenchmarkBuildZMELSI(b *testing.B) {
	tr := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: 30, Seed: 1})
	buildBench(b, &methods.RS{Beta: 10000, TargetLeaves: 500, Trainer: tr})
}

// --- ablation benches (DESIGN.md section 5) ---------------------------

// BenchmarkAblationSelectorLearnedVsRandom contrasts the learned
// selector against the Table II "Rand" ablation on build cost.
func BenchmarkAblationSelectorLearnedVsRandom(b *testing.B) {
	e := sharedEnv(b)
	pts := dataset.MustGenerate(dataset.OSM1, 8000, 1)
	for _, kind := range []struct {
		name string
		k    core.SelectorKind
	}{{"learned", core.SelectorLearned}, {"random", core.SelectorRandom}} {
		kind := kind
		b.Run(kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: e.System("ZM", 0.8, kind.k, ""), Fanout: 2})
				if err := ix.Build(pts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSPvsRSP contrasts systematic vs random sampling
// (Figure 7's RSP comparison) at equal rate.
func BenchmarkAblationSPvsRSP(b *testing.B) {
	pts := dataset.MustGenerate(dataset.Skewed, 50000, 1)
	tr := rmi.PiecewiseTrainer(1.0 / 256)
	d := prepareZ(pts)
	b.Run("SP", func(b *testing.B) {
		m := &methods.SP{Rho: 0.01, Trainer: tr}
		for i := 0; i < b.N; i++ {
			m.BuildModel(d)
		}
	})
	b.Run("RSP", func(b *testing.B) {
		m := &methods.RSP{Rho: 0.01, Trainer: tr, Seed: 1}
		for i := 0; i < b.N; i++ {
			m.BuildModel(d)
		}
	})
}

func prepareZ(pts []geo.Point) *base.SortedData {
	ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: &base.Direct{Trainer: rmi.LinearTrainer()}})
	return base.Prepare(pts, geo.UnitRect, ix.MapKey)
}
