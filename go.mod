module elsi

go 1.22
