package kstest_test

import (
	"fmt"

	"elsi/internal/kstest"
)

// The KS distance of Definition 2 quantifies how well a reduced
// training set Ds preserves the key distribution of D.
func ExampleDistance() {
	d := make([]float64, 1000)
	for i := range d {
		d[i] = float64(i) / 1000
	}
	// systematic 1% sample: nearly distribution-identical
	var ds []float64
	for i := 0; i < len(d); i += 100 {
		ds = append(ds, d[i])
	}
	fmt.Printf("systematic sample: %.2f\n", kstest.Distance(ds, d))
	// a sample from only the first decile: very dissimilar
	fmt.Printf("biased sample:     %.2f\n", kstest.Distance(d[:10], d))
	// Output:
	// systematic sample: 0.10
	// biased sample:     0.99
}

func ExampleDistanceToUniform() {
	// dist(D_U, D) — the distribution summary the method scorer uses
	uniform := make([]float64, 1000)
	skewed := make([]float64, 1000)
	for i := range uniform {
		u := (float64(i) + 0.5) / 1000
		uniform[i] = u
		skewed[i] = u * u * u * u
	}
	fmt.Printf("uniform: %.2f\n", kstest.DistanceToUniform(uniform, 0, 1))
	fmt.Printf("skewed:  %.2f\n", kstest.DistanceToUniform(skewed, 0, 1))
	// Output:
	// uniform: 0.00
	// skewed:  0.47
}
