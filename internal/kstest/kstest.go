// Package kstest implements the data-set similarity measure of
// Definition 2 in the ELSI paper: 1 minus the Kolmogorov-Smirnov
// distance between the empirical CDFs of two key-value sets.
//
// Two algorithms are provided. Distance implements the O(ns·log n)
// binary-search variant the paper proposes (scan only the small set,
// binary-search each element's rank in the large set). DistanceMerge is
// the textbook O(ns+n) merge scan used as a correctness and ablation
// baseline.
package kstest

import (
	"math"
	"sort"

	"elsi/internal/floats"
)

// Distance returns the KS distance between the empirical CDFs of the
// small sorted set ds and the large sorted set d:
//
//	sup_x |cdf_ds(x) - cdf_d(x)|
//
// Both slices must be sorted ascending. It runs in O(len(ds)·log len(d))
// by binary-searching the rank of each small-set element in d, per
// Section III of the paper. The result is in [0, 1].
func Distance(ds, d []float64) float64 {
	ns, n := len(ds), len(d)
	if ns == 0 || n == 0 {
		if ns == 0 && n == 0 {
			return 0
		}
		return 1
	}
	maxGap := 0.0
	for i, v := range ds {
		// A tied block of ds is a single CDF jump: handle it once, at
		// its first element (later elements would fabricate phantom
		// intermediate CDF levels).
		if i > 0 && floats.Eq(ds[i-1], v) {
			continue
		}
		// j = number of elements of d strictly below v; the CDF of d
		// jumps from j/n to jHi/n across the tied block at v.
		j := sort.SearchFloat64s(d, v)
		jHi := j
		for jHi < n && floats.Eq(d[jHi], v) {
			jHi++
		}
		// CDF of ds just below v is i/ns; at v it is iHi/ns where iHi
		// counts through the tied block in ds. Checking both sides of
		// each jump captures the supremum exactly.
		iHi := i + 1
		for iHi < ns && floats.Eq(ds[iHi], v) {
			iHi++
		}
		lo := math.Abs(float64(i)/float64(ns) - float64(j)/float64(n))
		hi := math.Abs(float64(iHi)/float64(ns) - float64(jHi)/float64(n))
		if lo > maxGap {
			maxGap = lo
		}
		if hi > maxGap {
			maxGap = hi
		}
	}
	return clamp01(maxGap)
}

// DistanceMerge computes the same KS distance with a single merge scan
// over both sorted inputs in O(len(ds)+len(d)) time. Used to verify
// Distance and as an ablation baseline.
func DistanceMerge(ds, d []float64) float64 {
	ns, n := len(ds), len(d)
	if ns == 0 || n == 0 {
		if ns == 0 && n == 0 {
			return 0
		}
		return 1
	}
	i, j := 0, 0
	maxGap := 0.0
	for i < ns || j < n {
		var x float64
		switch {
		case i >= ns:
			x = d[j]
		case j >= n:
			x = ds[i]
		case ds[i] <= d[j]:
			x = ds[i]
		default:
			x = d[j]
		}
		for i < ns && ds[i] <= x {
			i++
		}
		for j < n && d[j] <= x {
			j++
		}
		gap := math.Abs(float64(i)/float64(ns) - float64(j)/float64(n))
		if gap > maxGap {
			maxGap = gap
		}
	}
	return clamp01(maxGap)
}

// Sim returns the similarity of Definition 2: 1 - Distance(ds, d).
func Sim(ds, d []float64) float64 {
	return 1 - Distance(ds, d)
}

// DistanceToUniform returns the KS distance between the empirical CDF
// of the sorted keys and the CDF of the uniform distribution over
// [lo, hi]. The paper uses dist(D_U, D) — the distance between a data
// set and a uniform set of the same size — to summarize a data set's
// distribution for the method scorer; comparing against the continuous
// uniform CDF computes the same quantity in O(n) without materializing
// D_U.
func DistanceToUniform(keys []float64, lo, hi float64) float64 {
	n := len(keys)
	if n == 0 || hi <= lo {
		return 0
	}
	span := hi - lo
	maxGap := 0.0
	for i, v := range keys {
		u := (v - lo) / span
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		// The empirical CDF jumps from i/n to (i+1)/n at v.
		if g := math.Abs(float64(i)/float64(n) - u); g > maxGap {
			maxGap = g
		}
		if g := math.Abs(float64(i+1)/float64(n) - u); g > maxGap {
			maxGap = g
		}
	}
	return clamp01(maxGap)
}

// CDF is an empirical cumulative distribution function stored as a
// sorted sample of key values. The update processor keeps one CDF per
// built index and compares it with the CDF of the updated data set to
// quantify drift (Section IV-B2).
type CDF struct {
	keys []float64 // sorted ascending
}

// NewCDF builds a CDF from keys. The slice is copied and sorted.
func NewCDF(keys []float64) *CDF {
	cp := make([]float64, len(keys))
	copy(cp, keys)
	sort.Float64s(cp)
	return &CDF{keys: cp}
}

// NewCDFSorted builds a CDF that takes ownership of an already-sorted
// slice without copying.
func NewCDFSorted(sorted []float64) *CDF {
	return &CDF{keys: sorted}
}

// At evaluates the empirical CDF at x: the fraction of keys <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.keys) == 0 {
		return 0
	}
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] > x })
	return float64(i) / float64(len(c.keys))
}

// Len returns the sample size backing the CDF.
func (c *CDF) Len() int { return len(c.keys) }

// Keys exposes the sorted backing sample (read-only by convention).
func (c *CDF) Keys() []float64 { return c.keys }

// DistanceTo returns the KS distance between c and other, scanning the
// smaller of the two samples.
func (c *CDF) DistanceTo(other *CDF) float64 {
	if c.Len() <= other.Len() {
		return Distance(c.keys, other.keys)
	}
	return Distance(other.keys, c.keys)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
