package kstest

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedUniform(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	sort.Float64s(v)
	return v
}

func TestDistanceIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := sortedUniform(rng, 1000)
	if got := Distance(d, d); got != 0 {
		t.Errorf("Distance(d,d) = %v, want 0", got)
	}
	if got := Sim(d, d); got != 1 {
		t.Errorf("Sim(d,d) = %v, want 1", got)
	}
}

func TestDistanceDisjoint(t *testing.T) {
	a := []float64{0, 0.1, 0.2}
	b := []float64{10, 11, 12}
	if got := Distance(a, b); got != 1 {
		t.Errorf("Distance of disjoint supports = %v, want 1", got)
	}
}

func TestDistanceEmpty(t *testing.T) {
	if got := Distance(nil, nil); got != 0 {
		t.Errorf("Distance(nil,nil) = %v, want 0", got)
	}
	if got := Distance(nil, []float64{1}); got != 1 {
		t.Errorf("Distance(nil, x) = %v, want 1", got)
	}
}

func TestDistanceKnown(t *testing.T) {
	// ds = {0.5}: its CDF is a step at 0.5. d = {0,1}: CDF steps of 1/2
	// at 0 and 1. At x just below 0.5: |0 - 0.5| = 0.5. At 0.5: |1 - 0.5|
	// = 0.5. KS distance is 0.5.
	ds := []float64{0.5}
	d := []float64{0, 1}
	if got := Distance(ds, d); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Distance = %v, want 0.5", got)
	}
}

func TestDistanceMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		ns := 1 + rng.Intn(50)
		n := 1 + rng.Intn(500)
		ds := sortedUniform(rng, ns)
		d := sortedUniform(rng, n)
		a := Distance(ds, d)
		b := DistanceMerge(ds, d)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("trial %d: Distance=%v DistanceMerge=%v", trial, a, b)
		}
	}
}

func TestDistanceWithTies(t *testing.T) {
	ds := []float64{1, 1, 1, 2}
	d := []float64{1, 2, 2, 2}
	a := Distance(ds, d)
	b := DistanceMerge(ds, d)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("tied values: Distance=%v DistanceMerge=%v", a, b)
	}
	// CDFs: ds jumps to 3/4 at 1 and 1 at 2; d jumps to 1/4 at 1 and 1
	// at 2. Max gap = |3/4 - 1/4| = 0.5.
	if math.Abs(a-0.5) > 1e-12 {
		t.Errorf("tied Distance = %v, want 0.5", a)
	}
}

func TestQuickDistanceSymmetryAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		ds := sortedUniform(rng, 1+rng.Intn(30))
		d := sortedUniform(rng, 1+rng.Intn(300))
		v := Distance(ds, d)
		if v < 0 || v > 1 {
			return false
		}
		// KS distance is symmetric in its arguments.
		return math.Abs(v-DistanceMerge(d, ds)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistanceToUniform(t *testing.T) {
	// A perfectly regular grid over [0,1) is as uniform as a sample can
	// be: distance should be about 1/n.
	n := 1000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = (float64(i) + 0.5) / float64(n)
	}
	if got := DistanceToUniform(keys, 0, 1); got > 2.0/float64(n) {
		t.Errorf("uniform grid DistanceToUniform = %v, want <= %v", got, 2.0/float64(n))
	}
	// A point mass at 0 has distance ~1.
	mass := make([]float64, n)
	if got := DistanceToUniform(mass, 0, 1); got < 0.99 {
		t.Errorf("point-mass DistanceToUniform = %v, want ~1", got)
	}
}

func TestDistanceToUniformSkew(t *testing.T) {
	// keys = u^4 concentrates near 0: sup |F_emp - u| is attained where
	// x = u^4 -> F_emp(x) = x^(1/4); gap g(u) = u^(1/4) - u maximized at
	// u = (1/4)^(4/3) ~ 0.157 -> g ~ 0.47.
	n := 20000
	keys := make([]float64, n)
	for i := range keys {
		u := (float64(i) + 0.5) / float64(n)
		keys[i] = u * u * u * u
	}
	got := DistanceToUniform(keys, 0, 1)
	if math.Abs(got-0.4724) > 0.01 {
		t.Errorf("skewed DistanceToUniform = %v, want ~0.472", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFDistanceTo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewCDF(sortedUniform(rng, 100))
	b := NewCDF(sortedUniform(rng, 1000))
	d1 := a.DistanceTo(b)
	d2 := b.DistanceTo(a)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("DistanceTo not symmetric: %v vs %v", d1, d2)
	}
	if got := a.DistanceTo(a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestNewCDFSortedNoCopy(t *testing.T) {
	keys := []float64{1, 2, 3}
	c := NewCDFSorted(keys)
	if &c.Keys()[0] != &keys[0] {
		t.Error("NewCDFSorted copied the slice")
	}
}

func BenchmarkDistanceBinarySearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := sortedUniform(rng, 1000)
	d := sortedUniform(rng, 1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(ds, d)
	}
}

func BenchmarkDistanceMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := sortedUniform(rng, 1000)
	d := sortedUniform(rng, 1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistanceMerge(ds, d)
	}
}
