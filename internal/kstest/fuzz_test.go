package kstest

import (
	"math"
	"sort"
	"testing"
)

// FuzzDistanceConsistency checks the O(ns log n) binary-search KS
// distance against the O(ns+n) merge baseline on arbitrary inputs.
func FuzzDistanceConsistency(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6, 7})
	f.Add([]byte{0, 0, 0}, []byte{0})
	f.Add([]byte{255}, []byte{1, 1, 2, 2, 3})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ds := bytesToSorted(a)
		d := bytesToSorted(b)
		if len(ds) == 0 || len(d) == 0 {
			return
		}
		fast := Distance(ds, d)
		slow := DistanceMerge(ds, d)
		if math.Abs(fast-slow) > 1e-12 {
			t.Fatalf("Distance %v != DistanceMerge %v for %v vs %v", fast, slow, ds, d)
		}
		if fast < 0 || fast > 1 {
			t.Fatalf("Distance %v out of [0,1]", fast)
		}
	})
}

func bytesToSorted(bs []byte) []float64 {
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = float64(b) / 255
	}
	sort.Float64s(out)
	return out
}
