package shard

import (
	"sync"
	"sync/atomic"

	"elsi/internal/curve"
	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/pqueue"
	"elsi/internal/qserve"
	"elsi/internal/rebuild"
)

const (
	defaultSampleCap  = 4096
	defaultRangeDepth = 8
	defaultMBRDepth   = 8
)

// Config sizes the router. The zero value selects the defaults.
type Config struct {
	// Shards is the desired shard count S (default 1). Skewed data may
	// yield fewer effective shards: split keys that collide in the
	// sample are dropped rather than creating empty partitions.
	Shards int
	// Workers bounds the per-batch parallelism, exactly like
	// engine.Config.Workers (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// SampleCap bounds the number of build points sampled to place the
	// equal-mass split keys (default 4096).
	SampleCap int
	// RangeDepth caps the Hilbert decomposition depth used to prune
	// window scatter (default 8). Deeper decompositions prune more
	// precisely at a higher per-query cost.
	RangeDepth int
	// MBRDepth caps the quadrant recursion computing each shard's
	// key-range MBR for kNN pruning (default 8).
	MBRDepth int
	// MaxConcurrentBuilds bounds how many shards may run their
	// background rebuild at once (default ⌈S/4⌉), staggering the fleet
	// so a drift wave does not stall every shard simultaneously.
	MaxConcurrentBuilds int
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.SampleCap <= 0 {
		c.SampleCap = defaultSampleCap
	}
	if c.RangeDepth <= 0 {
		c.RangeDepth = defaultRangeDepth
	}
	if c.MBRDepth <= 0 {
		c.MBRDepth = defaultMBRDepth
	}
	if c.MaxConcurrentBuilds <= 0 {
		c.MaxConcurrentBuilds = (c.Shards + 3) / 4
	}
	return c
}

// counters tracks the traffic routed to (or pruned away from) one
// shard. All fields are atomics: queries from concurrent batches touch
// them without any shared lock.
type counters struct {
	points, windows, knns atomic.Int64
	inserts, deletes      atomic.Int64
	winSkips, knnSkips    atomic.Int64
}

// shardState is one shard: a processor over the points whose Hilbert
// keys fall in rng, its batch engine, and its pruning geometry.
type shardState struct {
	proc *rebuild.Processor
	qe   *qserve.Engine
	rng  curve.KeyRange
	// mbr covers every cell with a key in rng, inflated by one grid
	// cell so quantization rounding can never push a stored point
	// outside it; MINDIST through it lower-bounds the distance to any
	// point the shard can hold.
	mbr geo.Rect
	c   counters
}

// Router scatters the engine's queries across Hilbert-partitioned
// shards and gathers deterministic results. It implements
// engine.Backend (batched surface) and qserve.Source plus the append
// forms (serial surface), so it can sit behind the engine's
// accumulators and be queried directly in tests. All methods are safe
// for concurrent use.
type Router struct {
	space      geo.Rect
	shards     []shardState
	selfQE     *qserve.Engine
	rangeDepth int
	buildSem   chan struct{}

	winScratch sync.Pool // *winScratch
	knnScratch sync.Pool // *knnScratch
	ptScratch  sync.Pool // *pointScatter
}

// winScratch carries one window query's decomposition buffer.
type winScratch struct {
	ranges []curve.KeyRange
}

// knnScratch carries one kNN query's shard ordering and heaps.
type knnScratch struct {
	order  []int
	dist   []float64
	pts    []geo.Point
	local  pqueue.KBest
	global pqueue.KBest
}

// MakeProcessor builds the processor stack of one shard over the
// partition's build points. Callers configure Factory, Retry, and the
// rest exactly as for an unsharded processor; the router installs its
// own BuildGate afterwards.
type MakeProcessor func(pts []geo.Point) (*rebuild.Processor, error)

// New partitions pts across cfg.Shards shards of space and builds one
// processor per partition via mk.
func New(pts []geo.Point, space geo.Rect, cfg Config, mk MakeProcessor) (*Router, error) {
	cfg = cfg.withDefaults()
	ranges := partition(pts, space, cfg.Shards, cfg.SampleCap)
	groups := split(pts, space, ranges)

	r := &Router{
		space:      space,
		shards:     make([]shardState, len(ranges)),
		rangeDepth: cfg.RangeDepth,
		buildSem:   make(chan struct{}, cfg.MaxConcurrentBuilds),
	}
	r.winScratch.New = func() any { return new(winScratch) }
	r.knnScratch.New = func() any { return new(knnScratch) }
	r.ptScratch.New = func() any { return new(pointScatter) }

	const cells = 1 << curve.Order
	cw := space.Width() / cells
	ch := space.Height() / cells
	for i, rng := range ranges {
		proc, err := mk(groups[i])
		if err != nil {
			return nil, err
		}
		proc.BuildGate = r.gate
		mbr := curve.HRangeMBR(rng, space, cfg.MBRDepth)
		mbr.MinX -= cw
		mbr.MinY -= ch
		mbr.MaxX += cw
		mbr.MaxY += ch
		r.shards[i] = shardState{
			proc: proc,
			qe:   qserve.New(proc, cfg.Workers),
			rng:  rng,
			mbr:  mbr,
		}
	}
	r.selfQE = qserve.New(r, cfg.Workers)
	return r, nil
}

// gate is the shared BuildGate: a semaphore bounding concurrent
// background builds across the fleet.
func (r *Router) gate() (release func()) {
	r.buildSem <- struct{}{}
	return func() { <-r.buildSem }
}

// shardIndex returns the shard holding the given Hilbert key.
//
//elsi:noalloc
func (r *Router) shardIndex(key uint64) int {
	lo, hi := 0, len(r.shards)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if r.shards[mid].rng.Hi < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

//elsi:noalloc
func (r *Router) shardOf(p geo.Point) *shardState {
	return &r.shards[r.shardIndex(curve.HEncode(p, r.space))]
}

// NumShards returns the effective shard count (≤ Config.Shards when
// split keys collided).
func (r *Router) NumShards() int { return len(r.shards) }

// Len returns the stored point count across all shards.
func (r *Router) Len() int {
	n := 0
	for i := range r.shards {
		n += r.shards[i].proc.Len()
	}
	return n
}

// WaitRebuild blocks until no shard has a background rebuild in
// flight.
func (r *Router) WaitRebuild() {
	for i := range r.shards {
		r.shards[i].proc.WaitRebuild()
	}
}

// Quiesce settles every shard: in-flight rebuilds finish and pending
// retries are cancelled.
func (r *Router) Quiesce() {
	for i := range r.shards {
		r.shards[i].proc.Quiesce()
	}
}

// --- serial surface (qserve.Source + append forms) ----------------------

// PointQuery routes to exactly one shard.
func (r *Router) PointQuery(p geo.Point) bool {
	s := r.shardOf(p)
	s.c.points.Add(1)
	return s.proc.PointQuery(p)
}

// Insert routes to exactly one shard and reports whether it triggered
// a rebuild there.
func (r *Router) Insert(p geo.Point) bool {
	s := r.shardOf(p)
	s.c.inserts.Add(1)
	return s.proc.Insert(p)
}

// Delete routes to exactly one shard and reports whether it triggered
// a rebuild there.
func (r *Router) Delete(p geo.Point) bool {
	s := r.shardOf(p)
	s.c.deletes.Add(1)
	return s.proc.Delete(p)
}

// PointGen implements engine.Backend: the update generation of the
// shard that owns p's location. Point-query cache entries stamped with
// it survive updates on other shards — only the owner's mutations
// invalidate them.
//
//elsi:noalloc
func (r *Router) PointGen(p geo.Point) uint64 {
	return r.shardOf(p).proc.UpdateGen()
}

// GlobalGen implements engine.Backend: the sum of every shard's update
// generation. Each is monotone and bumped only with a visible
// mutation, so equal sums mean no shard changed in between — exactly
// the invariant window-query cache entries need.
//
//elsi:noalloc
func (r *Router) GlobalGen() uint64 {
	var g uint64
	for i := range r.shards {
		g += r.shards[i].proc.UpdateGen()
	}
	return g
}

// WindowQuery returns the points inside win, in canonical (X, Y)
// order.
func (r *Router) WindowQuery(win geo.Rect) []geo.Point {
	return r.WindowQueryAppend(win, nil)
}

// WindowQueryAppend scatters win to the shards whose Hilbert key
// ranges intersect the window's range decomposition — a shard whose
// range misses every decomposed range cannot hold a point inside win,
// because the decomposition covers every grid cell the window touches.
// The gathered result is sorted into canonical (X, Y) order, making it
// identical for every shard count.
func (r *Router) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	start := len(out)
	if len(r.shards) == 1 {
		s := &r.shards[0]
		s.c.windows.Add(1)
		out = s.proc.WindowQueryAppend(win, out)
		SortPointsXY(out[start:])
		return out
	}
	ws := r.winScratch.Get().(*winScratch)
	ws.ranges = curve.HRangesAppend(win, r.space, r.rangeDepth, ws.ranges[:0])
	for i := range r.shards {
		s := &r.shards[i]
		if !overlapsAny(ws.ranges, s.rng.Lo, s.rng.Hi) {
			s.c.winSkips.Add(1)
			continue
		}
		s.c.windows.Add(1)
		out = s.proc.WindowQueryAppend(win, out)
	}
	r.winScratch.Put(ws)
	SortPointsXY(out[start:])
	return out
}

// KNN returns the k nearest stored points to q in ascending distance
// order.
func (r *Router) KNN(q geo.Point, k int) []geo.Point {
	return r.KNNAppend(q, k, nil)
}

// KNNAppend searches the shards best-first by MINDIST from q to each
// shard's key-range MBR. Once k candidates are held, a shard whose
// MINDIST is not below the current k-th best distance is pruned — and
// so is every shard after it in the MINDIST order. Per-shard results
// are folded into the global k-best through pqueue.KBest.MergeAppend;
// the result is appended in ascending distance order.
func (r *Router) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	if k <= 0 {
		return out
	}
	ks := r.knnScratch.Get().(*knnScratch)
	ks.order = ks.order[:0]
	ks.dist = ks.dist[:0]
	for i := range r.shards {
		ks.order = append(ks.order, i)
		ks.dist = append(ks.dist, r.shards[i].mbr.Dist2(q))
	}
	// insertion sort by MINDIST; strict comparison keeps equal-distance
	// shards in index order, so the visit order is deterministic
	for i := 1; i < len(ks.order); i++ {
		for j := i; j > 0 && ks.dist[j] < ks.dist[j-1]; j-- {
			ks.dist[j], ks.dist[j-1] = ks.dist[j-1], ks.dist[j]
			ks.order[j], ks.order[j-1] = ks.order[j-1], ks.order[j]
		}
	}
	ks.global.Reset(k)
	for n, i := range ks.order {
		if ks.global.Full() && ks.dist[n] >= ks.global.Worst() {
			// no shard from here on can beat the k-th best: the
			// remaining MINDISTs are at least this one
			for _, j := range ks.order[n:] {
				r.shards[j].c.knnSkips.Add(1)
			}
			break
		}
		s := &r.shards[i]
		s.c.knns.Add(1)
		ks.pts = s.proc.KNNAppend(q, k, ks.pts[:0])
		ks.local.Reset(k)
		for _, p := range ks.pts {
			ks.local.Offer(p, q.Dist2(p))
		}
		ks.global.MergeAppend(&ks.local)
	}
	out = ks.global.AppendPoints(out)
	r.knnScratch.Put(ks)
	return out
}

// --- stats ---------------------------------------------------------------

// BackendStats snapshots every shard — data and rebuild state, routed
// traffic, and the scatter-prune counters — plus the aggregate.
func (r *Router) BackendStats() engine.BackendStats {
	shards := make([]engine.ShardStats, len(r.shards))
	for i := range r.shards {
		s := &r.shards[i]
		st := engine.ProcStats(s.proc)
		st.KeyLo, st.KeyHi = s.rng.Lo, s.rng.Hi
		st.PointQueries = s.c.points.Load()
		st.WindowQueries = s.c.windows.Load()
		st.KNNQueries = s.c.knns.Load()
		st.Inserts = s.c.inserts.Load()
		st.Deletes = s.c.deletes.Load()
		st.WindowsPruned = s.c.winSkips.Load()
		st.KNNsPruned = s.c.knnSkips.Load()
		shards[i] = st
	}
	return engine.AggregateShards(shards)
}

var _ engine.Backend = (*Router)(nil)
var _ qserve.Source = (*Router)(nil)
