package shard

import (
	"elsi/internal/geo"
)

// SortPointsXY sorts pts into canonical order: ascending X, ties by
// ascending Y. The router gathers window results from shards in
// partition order, which varies with the shard count; the canonical
// sort makes the gathered result a pure function of the stored set, so
// every shard count returns byte-identical windows. In-place heapsort:
// no allocation, no closures, and — since (X, Y) is a total order with
// only exact duplicates tied — a deterministic result for every input
// permutation.
//
//elsi:noalloc
func SortPointsXY(pts []geo.Point) {
	n := len(pts)
	for i := n/2 - 1; i >= 0; i-- {
		siftXY(pts, i, n)
	}
	for end := n - 1; end > 0; end-- {
		pts[0], pts[end] = pts[end], pts[0]
		siftXY(pts, 0, end)
	}
}

//elsi:noalloc
func siftXY(pts []geo.Point, i, n int) {
	for {
		l, rt := 2*i+1, 2*i+2
		m := i
		if l < n && lessXY(pts[m], pts[l]) {
			m = l
		}
		if rt < n && lessXY(pts[m], pts[rt]) {
			m = rt
		}
		if m == i {
			return
		}
		pts[i], pts[m] = pts[m], pts[i]
		i = m
	}
}

// lessXY orders points by (X, Y) without any float equality test.
//
//elsi:noalloc
func lessXY(a, b geo.Point) bool {
	if a.X < b.X {
		return true
	}
	if b.X < a.X {
		return false
	}
	return a.Y < b.Y
}
