package shard

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

func xKey(p geo.Point) float64 { return p.X }

// bruteMaker builds a brute-force shard processor that never triggers
// rebuilds on its own.
func bruteMaker(pts []geo.Point) (*rebuild.Processor, error) {
	p, err := rebuild.NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		return nil, err
	}
	p.Factory = func() rebuild.Rebuildable { return index.NewBruteForce() }
	return p, nil
}

// zmMaker builds a learned-index (ZM) shard processor.
func zmMaker(pts []geo.Point) (*rebuild.Processor, error) {
	factory := func() rebuild.Rebuildable {
		return zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
			Fanout:  8,
		})
	}
	mapKey := factory().(*zm.Index).MapKey
	p, err := rebuild.NewProcessor(factory(), nil, pts, mapKey, 1<<30)
	if err != nil {
		return nil, err
	}
	p.Factory = factory
	return p, nil
}

func samePoints(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// canonWindow canonicalizes an unsharded window answer into the
// router's (X, Y) gather order.
func canonWindow(pts []geo.Point) []geo.Point {
	out := append([]geo.Point(nil), pts...)
	SortPointsXY(out)
	return out
}

func randWindow(rng *rand.Rand, maxSide float64) geo.Rect {
	x, y := rng.Float64(), rng.Float64()
	return geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*maxSide, MaxY: y + rng.Float64()*maxSide}
}

// checkEquivalence runs a deterministic mixed workload against the
// router and a mirrored unsharded processor and fails on the first
// divergence. Updates are applied to both sides in the same order.
func checkEquivalence(t *testing.T, r *Router, base *rebuild.Processor, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < ops; op++ {
		switch rng.Intn(6) {
		case 0:
			p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			if got, want := r.PointQuery(p), base.PointQuery(p); got != want {
				t.Fatalf("op %d: PointQuery(%v) = %v, want %v", op, p, got, want)
			}
		case 1:
			win := randWindow(rng, 0.25)
			got := r.WindowQuery(win)
			want := canonWindow(base.WindowQuery(win))
			if !samePoints(got, want) {
				t.Fatalf("op %d: WindowQuery(%v) diverged: %d pts vs %d", op, win, len(got), len(want))
			}
		case 2:
			q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			k := 1 + rng.Intn(12)
			got := r.KNN(q, k)
			want := base.KNN(q, k)
			if !samePoints(got, want) {
				t.Fatalf("op %d: KNN(%v, %d) diverged:\n got %v\nwant %v", op, q, k, got, want)
			}
		case 3:
			p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			r.Insert(p)
			base.Insert(p)
		case 4:
			// delete a point that likely exists: re-derive from a past seed
			p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			r.Delete(p)
			base.Delete(p)
		default:
			// point query at a stored location after its insert
			p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			r.Insert(p)
			base.Insert(p)
			if got, want := r.PointQuery(p), base.PointQuery(p); got != want {
				t.Fatalf("op %d: PointQuery of fresh insert = %v, want %v", op, got, want)
			}
		}
	}
}

// TestRouterMatchesUnsharded is the core equivalence suite: for each
// shard count the router must answer a mixed workload of queries and
// updates exactly like a single unsharded processor over the same
// data, with deletions of stored points mixed in.
func TestRouterMatchesUnsharded(t *testing.T) {
	for _, s := range []int{1, 2, 7, 16} {
		t.Run("", func(t *testing.T) {
			pts := dataset.MustGenerate(dataset.Uniform, 3000, 31)
			baseProc, err := bruteMaker(append([]geo.Point(nil), pts...))
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(pts, geo.UnitRect, Config{Shards: s, Workers: 1}, bruteMaker)
			if err != nil {
				t.Fatal(err)
			}
			// delete a slice of genuinely stored points on both sides
			for i := 0; i < len(pts); i += 17 {
				r.Delete(pts[i])
				baseProc.Delete(pts[i])
			}
			if r.Len() != baseProc.Len() {
				t.Fatalf("Len = %d, want %d", r.Len(), baseProc.Len())
			}
			checkEquivalence(t, r, baseProc, int64(1000+s), 400)
		})
	}
}

// TestRouterMatchesUnshardedZM repeats the equivalence check with the
// learned ZM index behind every shard.
func TestRouterMatchesUnshardedZM(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 4000, 33)
	baseProc, err := zmMaker(append([]geo.Point(nil), pts...))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(pts, geo.UnitRect, Config{Shards: 4, Workers: 1}, zmMaker)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, r, baseProc, 77, 300)
}

// TestRouterDeterministicAcrossShardCounts asserts raw byte-identity
// of every query answer across shard counts and worker counts: the
// partitioning and the scatter width are invisible in the results.
func TestRouterDeterministicAcrossShardCounts(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 5000, 35)
	type variant struct {
		r *Router
		s int
		w int
	}
	var vs []variant
	for _, s := range []int{1, 2, 7, 16} {
		for _, w := range []int{1, 4} {
			r, err := New(pts, geo.UnitRect, Config{Shards: s, Workers: w}, bruteMaker)
			if err != nil {
				t.Fatal(err)
			}
			vs = append(vs, variant{r, s, w})
		}
	}
	rng := rand.New(rand.NewSource(99))
	wins := make([]geo.Rect, 40)
	qs := make([]geo.Point, 40)
	ks := make([]int, 40)
	for i := range wins {
		wins[i] = randWindow(rng, 0.2)
		qs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
		ks[i] = 1 + rng.Intn(10)
	}
	wantWin := vs[0].r.WindowBatch(wins, nil)
	wantKNN := vs[0].r.KNNVarBatch(qs, ks, nil)
	for _, v := range vs[1:] {
		gotWin := v.r.WindowBatch(wins, nil)
		gotKNN := v.r.KNNVarBatch(qs, ks, nil)
		for i := range wins {
			if !samePoints(gotWin[i], wantWin[i]) {
				t.Fatalf("S=%d W=%d: window %d diverged from S=1", v.s, v.w, i)
			}
			if !samePoints(gotKNN[i], wantKNN[i]) {
				t.Fatalf("S=%d W=%d: kNN %d diverged from S=1", v.s, v.w, i)
			}
		}
	}
}

// TestBatchedMatchesSerial pins the Backend batch surface to the
// serial scatter-gather paths for several worker counts.
func TestBatchedMatchesSerial(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 4000, 37)
	for _, w := range []int{1, 4} {
		r, err := New(pts, geo.UnitRect, Config{Shards: 7, Workers: w}, bruteMaker)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		probes := make([]geo.Point, 200)
		for i := range probes {
			if i%2 == 0 {
				probes[i] = pts[rng.Intn(len(pts))]
			} else {
				probes[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
			}
		}
		got := r.PointBatch(probes, nil)
		for i, p := range probes {
			if got[i] != r.PointQuery(p) {
				t.Fatalf("W=%d: PointBatch[%d] = %v, serial disagrees", w, i, got[i])
			}
		}
		wins := make([]geo.Rect, 50)
		for i := range wins {
			wins[i] = randWindow(rng, 0.3)
		}
		gotWins := r.WindowBatch(wins, nil)
		for i, win := range wins {
			if !samePoints(gotWins[i], r.WindowQuery(win)) {
				t.Fatalf("W=%d: WindowBatch[%d] diverged from serial", w, i)
			}
		}
		qs := make([]geo.Point, 50)
		ks := make([]int, 50)
		for i := range qs {
			qs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
			ks[i] = 1 + rng.Intn(8)
		}
		gotKNN := r.KNNVarBatch(qs, ks, nil)
		for i := range qs {
			if !samePoints(gotKNN[i], r.KNN(qs[i], ks[i])) {
				t.Fatalf("W=%d: KNNVarBatch[%d] diverged from serial", w, i)
			}
		}
	}
}

// TestWindowScatterPrunes asserts the acceptance property directly: a
// small window visits only the shards whose Hilbert key ranges
// intersect its decomposition, and the skipped scatters land in the
// per-shard prune counters.
func TestWindowScatterPrunes(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 20000, 41)
	r, err := New(pts, geo.UnitRect, Config{Shards: 16, Workers: 1}, bruteMaker)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() < 8 {
		t.Fatalf("uniform data split into only %d shards", r.NumShards())
	}
	win := geo.Rect{MinX: 0.01, MinY: 0.01, MaxX: 0.06, MaxY: 0.06}
	got := r.WindowQuery(win)
	// correctness first: the pruned scatter still finds every point
	want := 0
	for _, p := range pts {
		if win.Contains(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("pruned scatter returned %d points, want %d", len(got), want)
	}
	st := r.BackendStats()
	visited, skipped := 0, 0
	for _, s := range st.Shards {
		if s.WindowQueries > 0 {
			visited++
		}
		skipped += int(s.WindowsPruned)
	}
	if visited == r.NumShards() {
		t.Fatalf("small window visited all %d shards: no pruning", visited)
	}
	if visited+skipped != r.NumShards() {
		t.Fatalf("visited %d + pruned %d != %d shards", visited, skipped, r.NumShards())
	}
	// the exact pruning predicate: a visited shard's range intersects
	// the decomposition, a skipped one's does not
	ranges := curve.HRanges(win, geo.UnitRect, defaultRangeDepth)
	for i, s := range st.Shards {
		overlap := overlapsAny(ranges, s.KeyLo, s.KeyHi)
		if overlap != (s.WindowQueries > 0) {
			t.Fatalf("shard %d: range overlap %v but visited=%v", i, overlap, s.WindowQueries > 0)
		}
	}
}

// TestKNNScatterPrunes asserts MINDIST pruning: a corner query with a
// small k must cut off the far shards, and the result still matches
// the unsharded answer.
func TestKNNScatterPrunes(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 20000, 43)
	baseProc, err := bruteMaker(append([]geo.Point(nil), pts...))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(pts, geo.UnitRect, Config{Shards: 16, Workers: 1}, bruteMaker)
	if err != nil {
		t.Fatal(err)
	}
	q := geo.Point{X: 0.02, Y: 0.02}
	got := r.KNN(q, 5)
	if !samePoints(got, baseProc.KNN(q, 5)) {
		t.Fatalf("pruned kNN diverged from unsharded")
	}
	st := r.BackendStats()
	visited, skipped := 0, 0
	for _, s := range st.Shards {
		visited += int(s.KNNQueries)
		skipped += int(s.KNNsPruned)
	}
	if skipped == 0 {
		t.Fatalf("corner kNN visited all %d shards: no MINDIST pruning", visited)
	}
	if visited+skipped != r.NumShards() {
		t.Fatalf("visited %d + pruned %d != %d shards", visited, skipped, r.NumShards())
	}
}

// gatedIndex blocks its Build until the gate closes, holding one
// shard's background rebuild in flight.
type gatedIndex struct {
	index.BruteForce
	gate <-chan struct{}
}

func (g *gatedIndex) Build(pts []geo.Point) error {
	<-g.gate
	return g.BruteForce.Build(pts)
}

// TestEquivalenceDuringGatedRebuild holds a background rebuild in
// flight on one shard and checks that queries and updates — including
// ones routed to the rebuilding shard — still match the unsharded
// processor, before and after the build completes.
func TestEquivalenceDuringGatedRebuild(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 3000, 47)
	baseProc, err := bruteMaker(append([]geo.Point(nil), pts...))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(pts, geo.UnitRect, Config{Shards: 4, Workers: 1}, bruteMaker)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	target := &r.shards[0].proc
	(*target).Factory = func() rebuild.Rebuildable { return &gatedIndex{gate: gate} }
	(*target).Rebuild()
	deadline := time.Now().Add(5 * time.Second)
	for !(*target).Rebuilding() {
		if time.Now().After(deadline) {
			t.Fatal("rebuild never started")
		}
		time.Sleep(time.Millisecond)
	}

	checkEquivalence(t, r, baseProc, 51, 300)

	close(gate)
	(*target).WaitRebuild()
	if err := (*target).RebuildErr(); err != nil {
		t.Fatalf("gated rebuild failed: %v", err)
	}
	checkEquivalence(t, r, baseProc, 53, 300)
}

// TestRebuildStaggerCap bounds concurrent background builds across the
// fleet: with MaxConcurrentBuilds=1 and every shard rebuilding at
// once, no two builds may overlap.
func TestRebuildStaggerCap(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 4000, 57)
	var mu sync.Mutex
	cur, peak := 0, 0
	slowMaker := func(pts []geo.Point) (*rebuild.Processor, error) {
		p, err := bruteMaker(pts)
		if err != nil {
			return nil, err
		}
		p.Factory = func() rebuild.Rebuildable {
			return &countingIndex{enter: func() {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				time.Sleep(20 * time.Millisecond)
				mu.Lock()
				cur--
				mu.Unlock()
			}}
		}
		return p, nil
	}
	r, err := New(pts, geo.UnitRect, Config{Shards: 6, Workers: 1, MaxConcurrentBuilds: 1}, slowMaker)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.shards {
		r.shards[i].proc.Rebuild()
	}
	r.WaitRebuild()
	mu.Lock()
	defer mu.Unlock()
	if peak != 1 {
		t.Fatalf("peak concurrent builds = %d, want 1", peak)
	}
}

type countingIndex struct {
	index.BruteForce
	enter func()
}

func (c *countingIndex) Build(pts []geo.Point) error {
	c.enter()
	return c.BruteForce.Build(pts)
}

// TestConcurrentBatchesAndUpdates hammers the Backend surface from
// many goroutines while updates churn, for the race detector; results
// are spot-checked against the serial surface afterwards.
func TestConcurrentBatchesAndUpdates(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 3000, 61)
	r, err := New(pts, geo.UnitRect, Config{Shards: 4}, bruteMaker)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			probes := make([]geo.Point, 32)
			wins := make([]geo.Rect, 8)
			qs := make([]geo.Point, 8)
			ks := make([]int, 8)
			for it := 0; it < 30; it++ {
				for i := range probes {
					probes[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
				}
				for i := range wins {
					wins[i] = randWindow(rng, 0.1)
					qs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
					ks[i] = 1 + rng.Intn(5)
				}
				r.PointBatch(probes, nil)
				r.WindowBatch(wins, nil)
				r.KNNVarBatch(qs, ks, nil)
				if g%2 == 0 {
					r.Insert(geo.Point{X: rng.Float64(), Y: rng.Float64()})
				} else {
					r.Delete(pts[rng.Intn(len(pts))])
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.BackendStats()
	if st.Len != r.Len() {
		t.Fatalf("stats Len %d != router Len %d", st.Len, r.Len())
	}
}

// TestPartitionCoversKeySpace checks the partition invariants:
// contiguous, non-empty, sorted ranges covering [0, MaxKey], never
// more than requested.
func TestPartitionCoversKeySpace(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		want := 1 + rng.Intn(20)
		pts := dataset.MustGenerate(dataset.Uniform, n, int64(trial))
		ranges := partition(pts, geo.UnitRect, want, 1024)
		if len(ranges) > want {
			t.Fatalf("trial %d: %d ranges for S=%d", trial, len(ranges), want)
		}
		if ranges[0].Lo != 0 || ranges[len(ranges)-1].Hi != curve.MaxKey {
			t.Fatalf("trial %d: ranges do not span the key space: %v", trial, ranges)
		}
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo != ranges[i-1].Hi+1 {
				t.Fatalf("trial %d: gap between ranges %d and %d: %v", trial, i-1, i, ranges)
			}
		}
	}
}

// TestPartitionSkewCollapses puts every point in one cell: colliding
// split keys must collapse to a single full-range shard instead of
// creating empty partitions.
func TestPartitionSkewCollapses(t *testing.T) {
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Point{X: 0.5, Y: 0.5}
	}
	ranges := partition(pts, geo.UnitRect, 8, 1024)
	if len(ranges) != 1 {
		t.Fatalf("skewed data produced %d ranges, want 1: %v", len(ranges), ranges)
	}
}
