package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"elsi/internal/dataset"
	"elsi/internal/geo"
)

// The scatter benchmarks show the pruning at work: a small window or a
// local kNN visits only the shards whose Hilbert ranges it can touch,
// so per-query work shrinks as S grows even on one core.

func BenchmarkWindowScatter(b *testing.B) {
	pts := dataset.MustGenerate(dataset.Uniform, 50000, 3)
	rng := rand.New(rand.NewSource(1))
	wins := make([]geo.Rect, 256)
	for i := range wins {
		x, y := rng.Float64()*0.95, rng.Float64()*0.95
		wins[i] = geo.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05}
	}
	for _, s := range []int{1, 4, 16} {
		r, err := New(pts, geo.UnitRect, Config{Shards: s, Workers: 1}, bruteMaker)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			var out []geo.Point
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = r.WindowQueryAppend(wins[i%len(wins)], out[:0])
			}
		})
	}
}

func BenchmarkKNNScatter(b *testing.B) {
	pts := dataset.MustGenerate(dataset.Uniform, 50000, 5)
	rng := rand.New(rand.NewSource(2))
	qs := make([]geo.Point, 256)
	for i := range qs {
		qs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	for _, s := range []int{1, 4, 16} {
		r, err := New(pts, geo.UnitRect, Config{Shards: s, Workers: 1}, bruteMaker)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			var out []geo.Point
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = r.KNNAppend(qs[i%len(qs)], 10, out[:0])
			}
		})
	}
}
