package shard

import (
	"elsi/internal/curve"
	"elsi/internal/geo"
	"elsi/internal/parallel"
	"elsi/internal/qserve"
)

// pointScatter carries one point batch's re-sharding buffers: the
// per-shard sub-batches, the original position of each routed query,
// and the per-shard answers.
type pointScatter struct {
	sub  [][]geo.Point
	pos  [][]int
	outs [][]bool
	fns  []func()
}

func (sc *pointScatter) grow(n int) {
	for len(sc.sub) < n {
		sc.sub = append(sc.sub, nil)
		sc.pos = append(sc.pos, nil)
		sc.outs = append(sc.outs, nil)
	}
	for i := 0; i < n; i++ {
		sc.sub[i] = sc.sub[i][:0]
		sc.pos[i] = sc.pos[i][:0]
	}
}

// PointBatch re-shards the batch: each query joins its home shard's
// sub-batch, the sub-batches run through the per-shard qserve engines
// concurrently, and every answer is written back at its query's input
// position — so the output order is the input order regardless of the
// partitioning.
func (r *Router) PointBatch(pts []geo.Point, out []bool) []bool {
	out = qserve.GrowBools(out, len(pts))
	if len(r.shards) == 1 {
		s := &r.shards[0]
		s.c.points.Add(int64(len(pts)))
		return s.qe.PointBatch(pts, out)
	}
	sc := r.ptScratch.Get().(*pointScatter)
	sc.grow(len(r.shards))
	for i, p := range pts {
		si := r.shardIndex(curve.HEncode(p, r.space))
		sc.sub[si] = append(sc.sub[si], p)
		sc.pos[si] = append(sc.pos[si], i)
	}
	sc.fns = sc.fns[:0]
	for si := range r.shards {
		if len(sc.sub[si]) == 0 {
			continue
		}
		si := si
		s := &r.shards[si]
		s.c.points.Add(int64(len(sc.sub[si])))
		sc.fns = append(sc.fns, func() {
			sc.outs[si] = s.qe.PointBatch(sc.sub[si], sc.outs[si])
		})
	}
	parallel.Do(sc.fns...)
	for si := range r.shards {
		for j, pos := range sc.pos[si] {
			out[pos] = sc.outs[si][j]
		}
	}
	r.ptScratch.Put(sc)
	return out
}

// WindowBatch runs the queries concurrently, each one a serial
// scatter-gather with Hilbert-range pruning. Answers land at their
// input positions via the router's own qserve engine.
func (r *Router) WindowBatch(wins []geo.Rect, out [][]geo.Point) [][]geo.Point {
	return r.selfQE.WindowBatch(wins, out)
}

// KNNVarBatch runs the queries concurrently, each one a serial
// best-first search over the shards.
func (r *Router) KNNVarBatch(qs []geo.Point, ks []int, out [][]geo.Point) [][]geo.Point {
	return r.selfQE.KNNVarBatch(qs, ks, out)
}
