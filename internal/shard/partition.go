// Package shard partitions the data space across independent update
// processors along the Hilbert curve and serves the fleet behind the
// engine's Backend seam. Point queries and updates route to exactly
// one shard; window queries scatter only to shards whose Hilbert key
// ranges intersect the window's range decomposition; kNN searches the
// shards best-first by MINDIST to each shard's key-range MBR, pruning
// against the current k-th best distance. Results are deterministic:
// identical for every shard count and worker count.
package shard

import (
	"sort"

	"elsi/internal/curve"
	"elsi/internal/geo"
)

// partition computes the inclusive Hilbert key ranges of up to want
// shards from a sample of the build points: equal-mass split keys are
// read off the sorted sample at evenly spaced ranks, duplicate or
// colliding split keys are dropped (so heavily skewed data may yield
// fewer, never empty, partitions), and the ranges are padded to cover
// the whole key space [0, MaxKey]. sampleCap bounds the sample size;
// the sample is a deterministic stride over pts, so the same inputs
// always produce the same partitioning.
func partition(pts []geo.Point, space geo.Rect, want, sampleCap int) []curve.KeyRange {
	if want < 1 {
		want = 1
	}
	if want == 1 || len(pts) == 0 {
		return []curve.KeyRange{{Lo: 0, Hi: curve.MaxKey}}
	}
	if sampleCap <= 0 {
		sampleCap = defaultSampleCap
	}
	stride := (len(pts) + sampleCap - 1) / sampleCap
	if stride < 1 {
		stride = 1
	}
	keys := make([]uint64, 0, (len(pts)+stride-1)/stride)
	for i := 0; i < len(pts); i += stride {
		keys = append(keys, curve.HEncode(pts[i], space))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// bounds[j] is the first key of partition j+1. Kept strictly
	// increasing and above the smallest sample key, every partition
	// holds at least one sample point: the segment below a bound
	// contains the previous bound's rank key (or keys[0] for the
	// first), the segment above contains the bound's own.
	bounds := make([]uint64, 0, want-1)
	for j := 1; j < want; j++ {
		b := keys[j*len(keys)/want]
		if b <= keys[0] || (len(bounds) > 0 && b <= bounds[len(bounds)-1]) {
			continue
		}
		bounds = append(bounds, b)
	}
	ranges := make([]curve.KeyRange, 0, len(bounds)+1)
	lo := uint64(0)
	for _, b := range bounds {
		ranges = append(ranges, curve.KeyRange{Lo: lo, Hi: b - 1})
		lo = b
	}
	return append(ranges, curve.KeyRange{Lo: lo, Hi: curve.MaxKey})
}

// split partitions pts into one group per range by Hilbert key. The
// groups reference fresh storage, not pts.
func split(pts []geo.Point, space geo.Rect, ranges []curve.KeyRange) [][]geo.Point {
	groups := make([][]geo.Point, len(ranges))
	for _, p := range pts {
		i := rangeOf(ranges, curve.HEncode(p, space))
		groups[i] = append(groups[i], p)
	}
	return groups
}

// rangeOf returns the index of the range holding key. ranges must be
// sorted, contiguous, and cover the full key space.
//
//elsi:noalloc
func rangeOf(ranges []curve.KeyRange, key uint64) int {
	lo, hi := 0, len(ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ranges[mid].Hi < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// overlapsAny reports whether [lo, hi] intersects any of the sorted,
// non-overlapping ranges rs.
//
//elsi:noalloc
func overlapsAny(rs []curve.KeyRange, lo, hi uint64) bool {
	// binary search for the first range ending at or after lo
	a, b := 0, len(rs)
	for a < b {
		mid := (a + b) / 2
		if rs[mid].Hi < lo {
			a = mid + 1
		} else {
			b = mid
		}
	}
	return a < len(rs) && rs[a].Lo <= hi
}
