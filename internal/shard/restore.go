package shard

import (
	"fmt"

	"elsi/internal/curve"
	"elsi/internal/geo"
	"elsi/internal/qserve"
	"elsi/internal/rebuild"
)

// Ranges returns the shards' inclusive Hilbert key ranges in shard
// order. The persistence layer records them in its manifest so a
// recovered router partitions the key space exactly as the original.
func (r *Router) Ranges() []curve.KeyRange {
	out := make([]curve.KeyRange, len(r.shards))
	for i := range r.shards {
		out[i] = r.shards[i].rng
	}
	return out
}

// Processor returns shard i's update processor.
func (r *Router) Processor(i int) *rebuild.Processor {
	return r.shards[i].proc
}

// ShardIndexOf returns the index of the shard that stores (and whose
// write-ahead log must record) updates to p.
//
//elsi:noalloc
func (r *Router) ShardIndexOf(p geo.Point) int {
	return r.shardIndex(curve.HEncode(p, r.space))
}

// NewFromShards reassembles a Router around recovered processors, one
// per key range, without re-partitioning or rebuilding anything: the
// ranges come from the persisted manifest and each processor was
// restored from its shard's snapshot + WAL. The ranges must be the
// sorted, contiguous, space-covering partition the original router
// produced.
func NewFromShards(procs []*rebuild.Processor, ranges []curve.KeyRange, space geo.Rect, cfg Config) (*Router, error) {
	if len(procs) == 0 || len(procs) != len(ranges) {
		return nil, fmt.Errorf("shard: %d processors for %d ranges", len(procs), len(ranges))
	}
	if ranges[0].Lo != 0 || ranges[len(ranges)-1].Hi != curve.MaxKey {
		return nil, fmt.Errorf("shard: ranges do not cover the key space")
	}
	for i, rng := range ranges {
		if rng.Lo > rng.Hi {
			return nil, fmt.Errorf("shard: range %d inverted", i)
		}
		if i > 0 && rng.Lo != ranges[i-1].Hi+1 {
			return nil, fmt.Errorf("shard: ranges not contiguous at %d", i)
		}
	}
	cfg = cfg.withDefaults()
	r := &Router{
		space:      space,
		shards:     make([]shardState, len(ranges)),
		rangeDepth: cfg.RangeDepth,
		buildSem:   make(chan struct{}, cfg.MaxConcurrentBuilds),
	}
	r.winScratch.New = func() any { return new(winScratch) }
	r.knnScratch.New = func() any { return new(knnScratch) }
	r.ptScratch.New = func() any { return new(pointScatter) }

	const cells = 1 << curve.Order
	cw := space.Width() / cells
	ch := space.Height() / cells
	for i, rng := range ranges {
		procs[i].BuildGate = r.gate
		mbr := curve.HRangeMBR(rng, space, cfg.MBRDepth)
		mbr.MinX -= cw
		mbr.MinY -= ch
		mbr.MaxX += cw
		mbr.MaxY += ch
		r.shards[i] = shardState{
			proc: procs[i],
			qe:   qserve.New(procs[i], cfg.Workers),
			rng:  rng,
			mbr:  mbr,
		}
	}
	r.selfQE = qserve.New(r, cfg.Workers)
	return r, nil
}
