package indextest

import (
	"math/rand"
	"testing"

	"elsi/internal/geo"
	"elsi/internal/index"
)

// Conformance runs the standard correctness suite against idx built on
// pts: every stored point must be found by PointQuery, window queries
// must reach minWindowRecall against brute force (1.0 for exact
// indices), and kNN must reach minKNNRecall. Approximate indices pass
// lower thresholds matching the paper's reported recall floors.
func Conformance(t *testing.T, idx index.Index, pts []geo.Point, seed int64, minWindowRecall, minKNNRecall float64) {
	t.Helper()
	if err := idx.Build(pts); err != nil {
		t.Fatalf("%s: Build: %v", idx.Name(), err)
	}
	if idx.Len() != len(pts) {
		t.Fatalf("%s: Len = %d, want %d", idx.Name(), idx.Len(), len(pts))
	}
	bf := index.NewBruteForce()
	bf.Build(pts)
	rng := rand.New(rand.NewSource(seed))

	// point queries: every stored point is found
	for trial := 0; trial < 200; trial++ {
		p := pts[rng.Intn(len(pts))]
		if !idx.PointQuery(p) {
			t.Fatalf("%s: stored point %v not found", idx.Name(), p)
		}
	}
	// absent points are not found
	for trial := 0; trial < 50; trial++ {
		p := geo.Point{X: rng.Float64()*2 + 1.5, Y: rng.Float64()*2 + 1.5}
		if idx.PointQuery(p) {
			t.Fatalf("%s: phantom point %v found", idx.Name(), p)
		}
	}

	// window queries
	sumRecall, windows := 0.0, 0
	for trial := 0; trial < 25; trial++ {
		c := pts[rng.Intn(len(pts))]
		half := 0.01 + rng.Float64()*0.05
		win := geo.Rect{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half}
		got := idx.WindowQuery(win)
		want := bf.WindowQuery(win)
		for _, p := range got {
			if !win.Contains(p) {
				t.Fatalf("%s: window result %v outside %v", idx.Name(), p, win)
			}
		}
		if len(got) > len(want) {
			t.Fatalf("%s: window returned %d results but only %d points lie inside (duplicates)", idx.Name(), len(got), len(want))
		}
		if len(want) == 0 {
			continue
		}
		sumRecall += index.Recall(got, want)
		windows++
	}
	if windows > 0 {
		if avg := sumRecall / float64(windows); avg < minWindowRecall {
			t.Fatalf("%s: window recall %.3f < %.3f", idx.Name(), avg, minWindowRecall)
		}
	}

	// kNN
	sumRecall, queries := 0.0, 0
	for trial := 0; trial < 20; trial++ {
		q := pts[rng.Intn(len(pts))]
		k := 1 + rng.Intn(25)
		got := idx.KNN(q, k)
		want := bf.KNN(q, k)
		if len(want) > 0 {
			sumRecall += index.KNNRecall(got, want, q)
			queries++
		}
	}
	if queries > 0 {
		if avg := sumRecall / float64(queries); avg < minKNNRecall {
			t.Fatalf("%s: kNN recall %.3f < %.3f", idx.Name(), avg, minKNNRecall)
		}
	}
}
