package indextest

import (
	"math/rand"
	"runtime"
	"testing"

	"elsi/internal/geo"
	"elsi/internal/index"
)

// AppendEquivalence asserts that idx's append-style query entry points
// return exactly the same points in the same order as the allocating
// ones, and that an existing out prefix is preserved. idx must already
// be built on pts.
func AppendEquivalence(t *testing.T, idx index.Index, pts []geo.Point, seed int64) {
	t.Helper()
	wa, isWA := idx.(index.WindowAppender)
	ka, isKA := idx.(index.KNNAppender)
	if !isWA {
		t.Fatalf("%s: no WindowQueryAppend", idx.Name())
	}
	if !isKA {
		t.Fatalf("%s: no KNNAppend", idx.Name())
	}
	rng := rand.New(rand.NewSource(seed))
	sentinel := geo.Point{X: -12345, Y: -54321}
	var buf []geo.Point
	for trial := 0; trial < 30; trial++ {
		c := pts[rng.Intn(len(pts))]
		half := 0.005 + rng.Float64()*0.06
		win := geo.Rect{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half}
		want := idx.WindowQuery(win)
		buf = append(buf[:0], sentinel)
		got := wa.WindowQueryAppend(win, buf)
		if len(got) < 1 || got[0] != sentinel {
			t.Fatalf("%s: WindowQueryAppend clobbered the out prefix", idx.Name())
		}
		assertSamePoints(t, idx.Name(), "WindowQueryAppend", got[1:], want)
		buf = got
	}
	for trial := 0; trial < 20; trial++ {
		q := pts[rng.Intn(len(pts))]
		k := 1 + rng.Intn(25)
		want := idx.KNN(q, k)
		buf = append(buf[:0], sentinel)
		got := ka.KNNAppend(q, k, buf)
		if len(got) < 1 || got[0] != sentinel {
			t.Fatalf("%s: KNNAppend clobbered the out prefix", idx.Name())
		}
		assertSamePoints(t, idx.Name(), "KNNAppend", got[1:], want)
		buf = got
	}
}

func assertSamePoints(t *testing.T, name, api string, got, want []geo.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s returned %d points, serial path %d", name, api, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: %s result %d = %v, serial path %v", name, api, i, got[i], want[i])
		}
	}
}

// AssertZeroAllocs asserts fn performs no heap allocations per run.
// It skips under the race detector, whose instrumentation allocates.
func AssertZeroAllocs(t *testing.T, what string, fn func()) {
	t.Helper()
	if RaceEnabled {
		t.Skipf("%s: alloc accounting is unreliable under -race", what)
	}
	fn() // warm pools and buffers outside the measured runs
	// A GC cycle demotes pool contents to the victim cache; running one
	// here plus a re-warm keeps a mid-measurement GC from showing up as
	// a spurious pool refill.
	runtime.GC()
	fn()
	if allocs := testing.AllocsPerRun(100, fn); allocs > 0 {
		t.Fatalf("%s: %.1f allocs/op, want 0", what, allocs)
	}
}

// Conformance runs the standard correctness suite against idx built on
// pts: every stored point must be found by PointQuery, window queries
// must reach minWindowRecall against brute force (1.0 for exact
// indices), and kNN must reach minKNNRecall. Approximate indices pass
// lower thresholds matching the paper's reported recall floors.
func Conformance(t *testing.T, idx index.Index, pts []geo.Point, seed int64, minWindowRecall, minKNNRecall float64) {
	t.Helper()
	if err := idx.Build(pts); err != nil {
		t.Fatalf("%s: Build: %v", idx.Name(), err)
	}
	if idx.Len() != len(pts) {
		t.Fatalf("%s: Len = %d, want %d", idx.Name(), idx.Len(), len(pts))
	}
	bf := index.NewBruteForce()
	bf.Build(pts)
	rng := rand.New(rand.NewSource(seed))

	// point queries: every stored point is found
	for trial := 0; trial < 200; trial++ {
		p := pts[rng.Intn(len(pts))]
		if !idx.PointQuery(p) {
			t.Fatalf("%s: stored point %v not found", idx.Name(), p)
		}
	}
	// absent points are not found
	for trial := 0; trial < 50; trial++ {
		p := geo.Point{X: rng.Float64()*2 + 1.5, Y: rng.Float64()*2 + 1.5}
		if idx.PointQuery(p) {
			t.Fatalf("%s: phantom point %v found", idx.Name(), p)
		}
	}

	// window queries
	sumRecall, windows := 0.0, 0
	for trial := 0; trial < 25; trial++ {
		c := pts[rng.Intn(len(pts))]
		half := 0.01 + rng.Float64()*0.05
		win := geo.Rect{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half}
		got := idx.WindowQuery(win)
		want := bf.WindowQuery(win)
		for _, p := range got {
			if !win.Contains(p) {
				t.Fatalf("%s: window result %v outside %v", idx.Name(), p, win)
			}
		}
		if len(got) > len(want) {
			t.Fatalf("%s: window returned %d results but only %d points lie inside (duplicates)", idx.Name(), len(got), len(want))
		}
		if len(want) == 0 {
			continue
		}
		sumRecall += index.Recall(got, want)
		windows++
	}
	if windows > 0 {
		if avg := sumRecall / float64(windows); avg < minWindowRecall {
			t.Fatalf("%s: window recall %.3f < %.3f", idx.Name(), avg, minWindowRecall)
		}
	}

	// kNN
	sumRecall, queries := 0.0, 0
	for trial := 0; trial < 20; trial++ {
		q := pts[rng.Intn(len(pts))]
		k := 1 + rng.Intn(25)
		got := idx.KNN(q, k)
		want := bf.KNN(q, k)
		if len(want) > 0 {
			sumRecall += index.KNNRecall(got, want, q)
			queries++
		}
	}
	if queries > 0 {
		if avg := sumRecall / float64(queries); avg < minKNNRecall {
			t.Fatalf("%s: kNN recall %.3f < %.3f", idx.Name(), avg, minKNNRecall)
		}
	}
}
