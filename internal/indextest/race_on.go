//go:build race

package indextest

// RaceEnabled reports whether the race detector is compiled in; alloc
// guards skip under it because instrumentation allocates.
const RaceEnabled = true
