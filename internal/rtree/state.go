package rtree

import (
	"fmt"

	"elsi/internal/snapshot"
)

// stateVersion is the on-disk version of the R-tree state encoding.
const stateVersion = 1

// maxDecodeDepth caps the recursive node decode against hostile
// snapshots; with fanout 16 a depth-64 tree is unconstructible.
const maxDecodeDepth = 64

// StateAppend implements snapshot.Stater: the node hierarchy. The
// tree's name, space, and build mode come from its constructor
// (NewHRR/NewRRStar), not the snapshot.
func (t *Tree) StateAppend(b []byte) ([]byte, error) {
	b = snapshot.AppendU8(b, stateVersion)
	b = snapshot.AppendInt(b, t.size)
	b = snapshot.AppendBool(b, t.root != nil)
	if t.root != nil {
		b = appendNode(b, t.root)
	}
	return b, nil
}

func appendNode(b []byte, n *node) []byte {
	b = snapshot.AppendRect(b, n.mbr)
	b = snapshot.AppendBool(b, n.leaf)
	if n.leaf {
		return snapshot.AppendPoints(b, n.pts)
	}
	b = snapshot.AppendUvarint(b, uint64(len(n.children)))
	for _, c := range n.children {
		b = appendNode(b, c)
	}
	return b
}

// RestoreState implements snapshot.Stater; the decoded tree's total
// leaf cardinality must match the recorded size.
func (t *Tree) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("rtree: unsupported state version %d", v)
	}
	size := d.Int()
	hasRoot := d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("rtree: decode state: %w", err)
	}
	if size < 0 {
		return fmt.Errorf("rtree: negative size %d", size)
	}
	var root *node
	total := 0
	if hasRoot {
		var err error
		root, err = decodeNode(d, 0, &total)
		if err != nil {
			return err
		}
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("rtree: decode state: %w", err)
	}
	if total != size {
		return fmt.Errorf("rtree: size %d does not match leaf total %d", size, total)
	}
	if size > 0 && root == nil {
		return fmt.Errorf("rtree: %d entries without a root", size)
	}
	t.root = root
	t.size = size
	return nil
}

func decodeNode(d *snapshot.Dec, depth int, total *int) (*node, error) {
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("rtree: node tree deeper than %d", maxDecodeDepth)
	}
	n := &node{mbr: d.Rect()}
	n.leaf = d.Bool()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("rtree: decode node: %w", err)
	}
	if n.leaf {
		n.pts = d.Points()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("rtree: decode leaf: %w", err)
		}
		*total += len(n.pts)
		return n, nil
	}
	childN := d.Count(1)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("rtree: decode node: %w", err)
	}
	if childN == 0 {
		return nil, fmt.Errorf("rtree: internal node without children")
	}
	n.children = make([]*node, childN)
	for i := range n.children {
		c, err := decodeNode(d, depth+1, total)
		if err != nil {
			return nil, err
		}
		n.children[i] = c
	}
	return n, nil
}
