package rtree

import (
	"testing"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/indextest"
)

func TestHRRConformance(t *testing.T) {
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			indextest.Conformance(t, NewHRR(geo.UnitRect), pts, 42, 1.0, 1.0)
		})
	}
}

func TestRRStarConformance(t *testing.T) {
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			indextest.Conformance(t, NewRRStar(geo.UnitRect), pts, 42, 1.0, 1.0)
		})
	}
}

func TestInvariantsAfterBuild(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM1, 5000, 2)
	hrr := NewHRR(geo.UnitRect)
	hrr.Build(pts)
	if !hrr.checkInvariants() {
		t.Error("HRR MBR invariants violated")
	}
	rr := NewRRStar(geo.UnitRect)
	rr.Build(pts)
	if !rr.checkInvariants() {
		t.Error("RR* MBR invariants violated")
	}
}

func TestRRStarInsertDelete(t *testing.T) {
	rr := NewRRStar(geo.UnitRect)
	rr.Build(dataset.MustGenerate(dataset.Uniform, 1000, 3))
	p := geo.Point{X: 0.123, Y: 0.987}
	rr.Insert(p)
	if !rr.checkInvariants() {
		t.Error("invariants violated after insert")
	}
	if !rr.PointQuery(p) {
		t.Error("inserted point not found")
	}
	if !rr.Delete(p) {
		t.Error("Delete failed")
	}
	if rr.PointQuery(p) {
		t.Error("deleted point found")
	}
	if rr.Delete(geo.Point{X: 5, Y: 5}) {
		t.Error("Delete of absent point returned true")
	}
}

func TestHRRDepthShallow(t *testing.T) {
	// Bulk loading packs nodes full; with 100-point leaves and
	// fanout-16 internals, 100k points need height 4 at most.
	hrr := NewHRR(geo.UnitRect)
	hrr.Build(dataset.MustGenerate(dataset.Uniform, 100000, 4))
	if d := hrr.Depth(); d > 4 {
		t.Errorf("HRR depth = %d, want <= 4", d)
	}
}

func TestEmptyTrees(t *testing.T) {
	for _, tr := range []*Tree{NewHRR(geo.UnitRect), NewRRStar(geo.UnitRect)} {
		tr.Build(nil)
		if tr.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
			t.Errorf("%s: phantom point", tr.Name())
		}
		if got := tr.WindowQuery(geo.UnitRect); len(got) != 0 {
			t.Errorf("%s: empty window returned %d", tr.Name(), len(got))
		}
		if got := tr.KNN(geo.Point{}, 3); got != nil {
			t.Errorf("%s: empty KNN = %v", tr.Name(), got)
		}
	}
}

func TestNames(t *testing.T) {
	if NewHRR(geo.UnitRect).Name() != "HRR" {
		t.Error("HRR name")
	}
	if NewRRStar(geo.UnitRect).Name() != "RR*" {
		t.Error("RR* name")
	}
}

func TestRRStarQueryAfterHeavyInsertion(t *testing.T) {
	rr := NewRRStar(geo.UnitRect)
	rr.Build(nil)
	pts := dataset.MustGenerate(dataset.NYC, 5000, 5)
	for _, p := range pts {
		rr.Insert(p)
	}
	if rr.Len() != 5000 {
		t.Fatalf("Len = %d", rr.Len())
	}
	if !rr.checkInvariants() {
		t.Fatal("invariants violated after 5000 skewed inserts")
	}
	for _, p := range pts[:200] {
		if !rr.PointQuery(p) {
			t.Fatalf("point %v lost", p)
		}
	}
}

func BenchmarkHRRBuild100k(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewHRR(geo.UnitRect)
		tr.Build(pts)
	}
}

func BenchmarkRRStarBuild100k(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewRRStar(geo.UnitRect)
		tr.Build(pts)
	}
}

func BenchmarkRRStarPointQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	tr := NewRRStar(geo.UnitRect)
	tr.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PointQuery(pts[i%len(pts)])
	}
}
