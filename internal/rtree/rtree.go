// Package rtree implements the two R-tree baselines of the paper's
// experiments: HRR, an R-tree bulk-loaded in Hilbert-curve order with
// rank-space packing (Qi et al. 2018), and RR*, an insertion-built
// R*-style tree with the revised split heuristics (Beckmann & Seeger
// 2009). Both are exact for point, window, and kNN queries.
package rtree

import (
	"sort"
	"sync"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/floats"
	"elsi/internal/geo"
	"elsi/internal/pqueue"
	"elsi/internal/store"
)

// fanout is the maximum number of child entries of an internal node.
const fanout = 16

// Tree is an R-tree for points. Leaves hold up to store.BlockSize
// points; internal nodes hold up to fanout children.
type Tree struct {
	name  string
	space geo.Rect
	root  *node
	size  int
	bulk  bool // true = Hilbert bulk load (HRR), false = R* insertion
}

type node struct {
	mbr      geo.Rect
	children []*node     // internal
	pts      []geo.Point // leaf
	leaf     bool
}

// NewHRR returns an empty HRR tree over space; Build bulk-loads it.
func NewHRR(space geo.Rect) *Tree {
	return &Tree{name: "HRR", space: space, bulk: true}
}

// NewRRStar returns an empty RR* tree over space; Build inserts each
// point through the R* insertion path.
func NewRRStar(space geo.Rect) *Tree {
	return &Tree{name: "RR*", space: space, bulk: false}
}

// Name implements index.Index.
func (t *Tree) Name() string { return t.name }

// Len implements index.Index.
func (t *Tree) Len() int { return t.size }

// Build implements index.Index.
func (t *Tree) Build(pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	t.root = nil
	t.size = 0
	if t.bulk {
		t.bulkLoad(pts)
		return nil
	}
	for _, p := range pts {
		t.Insert(p)
	}
	return nil
}

// bulkLoad packs the points in Hilbert order into leaves, then packs
// the leaves level by level until a single root remains.
func (t *Tree) bulkLoad(pts []geo.Point) {
	t.size = len(pts)
	if len(pts) == 0 {
		t.root = &node{leaf: true, mbr: geo.EmptyRect()}
		return
	}
	type keyed struct {
		key uint64
		p   geo.Point
	}
	ks := make([]keyed, len(pts))
	for i, p := range pts {
		ks[i] = keyed{curve.HEncode(p, t.space), p}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	var level []*node
	for start := 0; start < len(ks); start += store.BlockSize {
		end := start + store.BlockSize
		if end > len(ks) {
			end = len(ks)
		}
		leaf := &node{leaf: true, mbr: geo.EmptyRect()}
		for _, kp := range ks[start:end] {
			leaf.pts = append(leaf.pts, kp.p)
			leaf.mbr = leaf.mbr.Extend(kp.p)
		}
		level = append(level, leaf)
	}
	for len(level) > 1 {
		var next []*node
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			parent := &node{mbr: geo.EmptyRect()}
			for _, c := range level[start:end] {
				parent.children = append(parent.children, c)
				parent.mbr = parent.mbr.Union(c.mbr)
			}
			next = append(next, parent)
		}
		level = next
	}
	t.root = level[0]
}

// Insert implements index.Inserter with the R* insertion path:
// choose-subtree by minimum overlap enlargement at the leaf level and
// minimum area enlargement above, then split overflowing nodes with
// the margin-then-overlap R* heuristic.
func (t *Tree) Insert(p geo.Point) {
	if t.root == nil {
		t.root = &node{leaf: true, mbr: geo.EmptyRect()}
	}
	t.size++
	split := t.insert(t.root, p)
	if split != nil {
		// grow the tree: new root with two children
		old := t.root
		t.root = &node{
			children: []*node{old, split},
			mbr:      old.mbr.Union(split.mbr),
		}
	}
}

// insert adds p under n, returning a sibling node if n split.
func (t *Tree) insert(n *node, p geo.Point) *node {
	n.mbr = n.mbr.Extend(p)
	if n.leaf {
		n.pts = append(n.pts, p)
		if len(n.pts) > store.BlockSize {
			return splitLeaf(n)
		}
		return nil
	}
	child := chooseSubtree(n, p)
	split := t.insert(child, p)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > fanout {
			return splitInternal(n)
		}
	}
	return nil
}

// chooseSubtree picks the child of n for point p: minimum overlap
// enlargement when the children are leaves (the R* refinement),
// minimum area enlargement otherwise, with ties broken by area.
func chooseSubtree(n *node, p geo.Point) *node {
	pr := geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	childrenAreLeaves := len(n.children) > 0 && n.children[0].leaf
	best := n.children[0]
	bestPrimary, bestArea := 1e308, 1e308
	for _, c := range n.children {
		enlarged := c.mbr.Union(pr)
		var primary float64
		if childrenAreLeaves {
			// overlap enlargement against the other children
			for _, o := range n.children {
				if o == c {
					continue
				}
				primary += enlarged.OverlapArea(o.mbr) - c.mbr.OverlapArea(o.mbr)
			}
		} else {
			primary = c.mbr.EnlargementArea(pr)
		}
		area := c.mbr.Area()
		if primary < bestPrimary || (floats.Eq(primary, bestPrimary) && area < bestArea) {
			best, bestPrimary, bestArea = c, primary, area
		}
	}
	return best
}

// splitLeaf performs the R* split on an overflowing leaf and returns
// the new sibling.
func splitLeaf(n *node) *node {
	pts := n.pts
	axis, splitAt := chooseSplit(len(pts), func(axis int) {
		if axis == 0 {
			sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		} else {
			sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
		}
	}, func(i int) geo.Rect {
		return geo.Rect{MinX: pts[i].X, MinY: pts[i].Y, MaxX: pts[i].X, MaxY: pts[i].Y}
	}, store.BlockSize)
	// re-sort on the chosen axis (chooseSplit leaves the last-sorted
	// axis in place, which may be the other one)
	if axis == 0 {
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	} else {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
	}
	sib := &node{leaf: true}
	sib.pts = append([]geo.Point(nil), pts[splitAt:]...)
	n.pts = pts[:splitAt]
	n.mbr = geo.BoundingRect(n.pts)
	sib.mbr = geo.BoundingRect(sib.pts)
	return sib
}

// splitInternal performs the R* split on an overflowing internal node.
func splitInternal(n *node) *node {
	cs := n.children
	axis, splitAt := chooseSplit(len(cs), func(axis int) {
		if axis == 0 {
			sort.Slice(cs, func(i, j int) bool { return cs[i].mbr.MinX < cs[j].mbr.MinX })
		} else {
			sort.Slice(cs, func(i, j int) bool { return cs[i].mbr.MinY < cs[j].mbr.MinY })
		}
	}, func(i int) geo.Rect { return cs[i].mbr }, fanout)
	if axis == 0 {
		sort.Slice(cs, func(i, j int) bool { return cs[i].mbr.MinX < cs[j].mbr.MinX })
	} else {
		sort.Slice(cs, func(i, j int) bool { return cs[i].mbr.MinY < cs[j].mbr.MinY })
	}
	sib := &node{}
	sib.children = append([]*node(nil), cs[splitAt:]...)
	n.children = cs[:splitAt]
	n.mbr = unionOf(n.children)
	sib.mbr = unionOf(sib.children)
	return sib
}

func unionOf(cs []*node) geo.Rect {
	r := geo.EmptyRect()
	for _, c := range cs {
		r = r.Union(c.mbr)
	}
	return r
}

// chooseSplit implements the R* axis and index selection: for each
// axis, sort the entries, evaluate every legal split position, sum the
// margins to pick the axis, then pick the position with minimum
// overlap (ties by area). sortBy(axis) must sort the backing storage;
// rectAt(i) returns the i-th entry's rectangle under the current sort.
// cap is the node capacity; legal positions keep both sides >= minimum
// fill. It returns the chosen axis and split position.
func chooseSplit(n int, sortBy func(axis int), rectAt func(i int) geo.Rect, capacity int) (axis, splitAt int) {
	minEntries := capacity * 2 / 5
	if minEntries < 1 {
		minEntries = 1
	}
	bestAxis, bestPos := 0, n/2
	bestMargin := 1e308
	for ax := 0; ax < 2; ax++ {
		sortBy(ax)
		// prefix and suffix MBRs
		prefix := make([]geo.Rect, n+1)
		suffix := make([]geo.Rect, n+1)
		prefix[0] = geo.EmptyRect()
		suffix[n] = geo.EmptyRect()
		for i := 0; i < n; i++ {
			prefix[i+1] = prefix[i].Union(rectAt(i))
		}
		for i := n - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(rectAt(i))
		}
		marginSum := 0.0
		type cand struct {
			pos           int
			overlap, area float64
		}
		var cands []cand
		for pos := minEntries; pos <= n-minEntries; pos++ {
			l, r := prefix[pos], suffix[pos]
			marginSum += l.Margin() + r.Margin()
			cands = append(cands, cand{pos, l.OverlapArea(r), l.Area() + r.Area()})
		}
		if len(cands) == 0 {
			cands = append(cands, cand{n / 2, prefix[n/2].OverlapArea(suffix[n/2]), 0})
		}
		if marginSum < bestMargin {
			bestMargin = marginSum
			bestAxis = ax
			// choose position on this axis
			bp := cands[0]
			for _, c := range cands[1:] {
				if c.overlap < bp.overlap || (floats.Eq(c.overlap, bp.overlap) && c.area < bp.area) {
					bp = c
				}
			}
			bestPos = bp.pos
		}
	}
	return bestAxis, bestPos
}

// PointQuery implements index.Index with a closure-free recursive
// descent: the query point rides the call stack, so the walk performs
// no closure-context allocation.
//
//elsi:noalloc
func (t *Tree) PointQuery(p geo.Point) bool {
	if t.root == nil {
		return false
	}
	return findPointNode(t.root, p)
}

//elsi:noalloc
func findPointNode(n *node, p geo.Point) bool {
	if !n.mbr.Contains(p) {
		return false
	}
	if n.leaf {
		for _, q := range n.pts {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if findPointNode(c, p) {
			return true
		}
	}
	return false
}

// Delete implements index.Deleter (simple variant: remove in place
// without tree condensation; MBRs are left conservative).
func (t *Tree) Delete(p geo.Point) bool {
	if t.root == nil {
		return false
	}
	var walk func(*node) bool
	walk = func(n *node) bool {
		if !n.mbr.Contains(p) {
			return false
		}
		if n.leaf {
			for i, q := range n.pts {
				if q == p {
					n.pts[i] = n.pts[len(n.pts)-1]
					n.pts = n.pts[:len(n.pts)-1]
					n.mbr = geo.BoundingRect(n.pts)
					return true
				}
			}
			return false
		}
		for _, c := range n.children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	if walk(t.root) {
		t.size--
		return true
	}
	return false
}

// WindowQuery implements index.Index (exact).
func (t *Tree) WindowQuery(win geo.Rect) []geo.Point {
	return t.WindowQueryAppend(win, nil)
}

// WindowQueryAppend implements index.WindowAppender with a closure-free
// recursive walk threading out through the recursion.
//
//elsi:noalloc
func (t *Tree) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if t.root == nil {
		return out
	}
	return windowNode(t.root, win, out)
}

//elsi:noalloc
func windowNode(n *node, win geo.Rect, out []geo.Point) []geo.Point {
	if !n.mbr.Intersects(win) {
		return out
	}
	if n.leaf {
		for _, p := range n.pts {
			if win.Contains(p) {
				out = append(out, p)
			}
		}
		return out
	}
	for _, c := range n.children {
		out = windowNode(c, win, out)
	}
	return out
}

// knnScratch pairs the traversal min-heap with the k-best candidate
// heap; pooled so repeated kNN searches reuse both backing arrays.
type knnScratch struct {
	pq   pqueue.Min
	best pqueue.KBest
}

var knnScratchPool = sync.Pool{New: func() interface{} { return new(knnScratch) }}

// KNN implements index.Index with best-first MINDIST search.
func (t *Tree) KNN(q geo.Point, k int) []geo.Point {
	return t.KNNAppend(q, k, nil)
}

// KNNAppend implements index.KNNAppender; KNN delegates here, so both
// entry points return identical answers.
//
//elsi:noalloc
func (t *Tree) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	if t.root == nil || k <= 0 || t.size == 0 {
		return out
	}
	s := knnScratchPool.Get().(*knnScratch)
	defer knnScratchPool.Put(s)
	s.pq.Reset()
	s.best.Reset(k)
	s.pq.Push(t.root, t.root.mbr.Dist2(q))
	for s.pq.Len() > 0 {
		it := s.pq.Pop()
		if s.best.Full() && it.Dist > s.best.Worst() {
			break
		}
		n := it.Value.(*node)
		if n.leaf {
			for _, p := range n.pts {
				s.best.Offer(p, p.Dist2(q))
			}
			continue
		}
		for _, c := range n.children {
			s.pq.Push(c, c.mbr.Dist2(q))
		}
	}
	return s.best.AppendPoints(out)
}

// Depth returns the tree height.
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return d
}

// checkInvariants verifies MBR containment throughout the tree; used
// by tests.
func (t *Tree) checkInvariants() bool {
	if t.root == nil {
		return true
	}
	var walk func(*node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for _, p := range n.pts {
				if !n.mbr.Contains(p) {
					return false
				}
			}
			return true
		}
		if len(n.children) == 0 {
			return false
		}
		for _, c := range n.children {
			if !n.mbr.ContainsRect(c.mbr) {
				return false
			}
			if !walk(c) {
				return false
			}
		}
		return true
	}
	return walk(t.root)
}
