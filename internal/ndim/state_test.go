package ndim

import (
	"bytes"
	"math/rand"
	"testing"

	"elsi/internal/rmi"
)

func stateIndex() *Index {
	return NewIndex(UnitCube(3), rmi.PiecewiseTrainer(1.0/64), 4)
}

func statePoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, 3)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestStateRoundtrip(t *testing.T) {
	pts := statePoints(2000, 5)
	orig := stateIndex()
	if err := orig.Build(pts); err != nil {
		t.Fatal(err)
	}
	blob, err := orig.StateAppend(nil)
	if err != nil {
		t.Fatal(err)
	}

	restored := stateIndex()
	before := rmi.Trainings()
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if got := rmi.Trainings(); got != before {
		t.Fatalf("restore trained %d models", got-before)
	}
	blob2, err := restored.StateAppend(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded state differs")
	}
	for i, p := range pts[:100] {
		if !restored.PointQuery(p) {
			t.Fatalf("stored point %d missing after restore", i)
		}
	}
	for i, q := range statePoints(20, 9) {
		a, b := orig.KNN(q, 5), restored.KNN(q, 5)
		if len(a) != len(b) {
			t.Fatalf("kNN %d length differs", i)
		}
		for j := range a {
			for c := range a[j] {
				if a[j][c] != b[j][c] {
					t.Fatalf("kNN %d differs after restore", i)
				}
			}
		}
	}
}

func TestStateHostileInput(t *testing.T) {
	pts := statePoints(500, 3)
	orig := stateIndex()
	if err := orig.Build(pts); err != nil {
		t.Fatal(err)
	}
	blob, err := orig.StateAppend(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
		if err := stateIndex().RestoreState(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Dimensionality mismatch is structural, not silent.
	other := NewIndex(UnitCube(2), rmi.PiecewiseTrainer(1.0/64), 4)
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("3-D state accepted by 2-D index")
	}
	step := len(blob)/61 + 1
	for off := 0; off < len(blob); off += step {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x08
		_ = stateIndex().RestoreState(mut)
	}
}
