// Package ndim generalizes the spatial substrate to d >= 2 dimensions,
// matching the paper's problem definition ("a set D of n points in
// d-dimensional Euclidean space, d >= 2"): d-dimensional points and
// boxes, a d-dimensional Morton (Z-order) mapping, the recursive 2^d
// partitioning of Algorithm 2, and a predict-and-scan learned index
// built through any base.ModelBuilder-style trainer. The 2-D packages
// stay specialized for performance; this package demonstrates that
// every ELSI mechanism carries over unchanged to higher dimensions.
package ndim

import (
	"fmt"
	"math"

	"elsi/internal/floats"
)

// Point is a point in d-dimensional space.
type Point []float64

// Dim returns the dimensionality.
func (p Point) Dim() int { return len(p) }

// Dist2 returns the squared Euclidean distance to q.
func (p Point) Dist2(q Point) float64 {
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Equal reports coordinate-wise equality.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !floats.Eq(p[i], q[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Point) Clone() Point {
	return append(Point(nil), p...)
}

// Rect is an axis-aligned box [Min[i], Max[i]] per dimension.
type Rect struct {
	Min, Max Point
}

// UnitCube returns the unit hypercube of dimension d.
func UnitCube(d int) Rect {
	r := Rect{Min: make(Point, d), Max: make(Point, d)}
	for i := 0; i < d; i++ {
		r.Max[i] = 1
	}
	return r
}

// Dim returns the box dimensionality.
func (r Rect) Dim() int { return len(r.Min) }

// Contains reports whether p lies inside r (boundaries included).
func (r Rect) Contains(p Point) bool {
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Volume returns the d-dimensional volume of r.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Min {
		side := r.Max[i] - r.Min[i]
		if side < 0 {
			return 0
		}
		v *= side
	}
	return v
}

// Child returns the quad/oct-ant child box selected by the bit mask
// (bit i set = upper half in dimension i) — the 2^d partitioning of
// Algorithm 2.
func (r Rect) Child(mask int) Rect {
	out := Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
	for i := range r.Min {
		mid := (r.Min[i] + r.Max[i]) / 2
		if mask&(1<<i) == 0 {
			out.Max[i] = mid
		} else {
			out.Min[i] = mid
		}
	}
	return out
}

// ChildOf returns the child mask of p relative to r's center.
func (r Rect) ChildOf(p Point) int {
	mask := 0
	for i := range p {
		if p[i] >= (r.Min[i]+r.Max[i])/2 {
			mask |= 1 << i
		}
	}
	return mask
}

// BoundingRect returns the minimal box covering pts.
func BoundingRect(pts []Point) (Rect, error) {
	if len(pts) == 0 {
		return Rect{}, fmt.Errorf("ndim: empty point set")
	}
	d := pts[0].Dim()
	r := Rect{Min: pts[0].Clone(), Max: pts[0].Clone()}
	for _, p := range pts[1:] {
		if p.Dim() != d {
			return Rect{}, fmt.Errorf("ndim: mixed dimensionalities %d and %d", d, p.Dim())
		}
		for i := range p {
			if p[i] < r.Min[i] {
				r.Min[i] = p[i]
			}
			if p[i] > r.Max[i] {
				r.Max[i] = p[i]
			}
		}
	}
	return r, nil
}

// --- d-dimensional Morton mapping --------------------------------------

// BitsFor returns the per-dimension bit budget for a d-dimensional
// Morton code: the full key uses at most 52 bits so that it remains
// exactly representable as a float64 integer, the form the rank
// models consume.
func BitsFor(d int) int {
	if d < 1 {
		return 0
	}
	return 52 / d
}

// ZEncode maps p, relative to space, to its d-dimensional Morton key
// (bit-interleaved across dimensions, most significant level first).
func ZEncode(p Point, space Rect) uint64 {
	d := p.Dim()
	bits := BitsFor(d)
	cells := uint64(1) << bits
	// d <= 52 (BitsFor needs at least one bit per dimension), so the
	// cell coordinates fit a stack array — no allocation per encode.
	var csArr [52]uint64
	cs := csArr[:d]
	for i := 0; i < d; i++ {
		cs[i] = quantize(p[i], space.Min[i], space.Max[i], cells)
	}
	var key uint64
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < d; i++ {
			key = key<<1 | (cs[i] >> uint(b) & 1)
		}
	}
	return key
}

func quantize(v, lo, hi float64, cells uint64) uint64 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return cells - 1
	}
	c := uint64(f * float64(cells))
	if c >= cells {
		c = cells - 1
	}
	return c
}

// ZKey returns the Morton key as a float64 (exact for the bit budgets
// above), the form the rank models consume.
func ZKey(p Point, space Rect) float64 {
	return float64(ZEncode(p, space))
}

// MinMaxKeys returns the Morton keys of a box's corners: every point
// inside the box has its key within [min, max] (each coordinate's bits
// are bounded by the corners' bits), which gives the conservative scan
// range of the d-dimensional window query.
func MinMaxKeys(win, space Rect) (float64, float64) {
	lo := win.Min.Clone()
	hi := win.Max.Clone()
	for i := range lo {
		lo[i] = math.Max(lo[i], space.Min[i])
		hi[i] = math.Min(hi[i], space.Max[i])
	}
	return ZKey(lo, space), ZKey(hi, space)
}
