package ndim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"elsi/internal/rmi"
)

func randPoints(rng *rand.Rand, n, d int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// skewPoints concentrates the last dimension near zero (the d-dim
// analogue of the paper's Skewed set).
func skewPoints(rng *rand.Rand, n, d int) []Point {
	pts := randPoints(rng, n, d)
	for _, p := range pts {
		v := p[d-1]
		p[d-1] = v * v * v * v
	}
	return pts
}

func TestPointRectBasics(t *testing.T) {
	r := UnitCube(3)
	if r.Dim() != 3 {
		t.Fatalf("Dim = %d", r.Dim())
	}
	if !r.Contains(Point{0.5, 0.5, 0.5}) {
		t.Error("center not contained")
	}
	if r.Contains(Point{0.5, 1.5, 0.5}) {
		t.Error("outside point contained")
	}
	if got := r.Volume(); got != 1 {
		t.Errorf("Volume = %v", got)
	}
	c := r.Center()
	for i := 0; i < 3; i++ {
		if c[i] != 0.5 {
			t.Errorf("Center[%d] = %v", i, c[i])
		}
	}
	p, q := Point{0, 0, 0}, Point{1, 2, 2}
	if p.Dist2(q) != 9 {
		t.Errorf("Dist2 = %v", p.Dist2(q))
	}
	if !p.Equal(p.Clone()) || p.Equal(q) || p.Equal(Point{0, 0}) {
		t.Error("Equal misbehaves")
	}
}

func TestChildPartitioning(t *testing.T) {
	r := UnitCube(3)
	// the 8 children partition the cube: volumes sum to 1, each point
	// routes to the child that contains it
	total := 0.0
	for m := 0; m < 8; m++ {
		total += r.Child(m).Volume()
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("child volumes sum to %v", total)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := randPoints(rng, 1, 3)[0]
		m := r.ChildOf(p)
		if !r.Child(m).Contains(p) {
			t.Fatalf("point %v routed to child %d not containing it", p, m)
		}
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{1, 5, 0}, {-1, 2, 3}, {0, 0, 1}}
	r, err := BoundingRect(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("%v outside bounding box", p)
		}
	}
	if _, err := BoundingRect(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := BoundingRect([]Point{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("mixed dimensionality accepted")
	}
}

func TestZEncodeMonotoneUnderDomination(t *testing.T) {
	// the conservative window-scan correctness rests on this: if p <= q
	// coordinate-wise, then ZKey(p) <= ZKey(q)
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{2, 3, 4} {
		space := UnitCube(d)
		for trial := 0; trial < 500; trial++ {
			p := randPoints(rng, 1, d)[0]
			q := p.Clone()
			for i := range q {
				q[i] += rng.Float64() * (1 - q[i])
			}
			if ZKey(p, space) > ZKey(q, space) {
				t.Fatalf("d=%d: ZKey not monotone: %v > %v", d, p, q)
			}
		}
	}
}

func TestQuickZKeyExactFloat(t *testing.T) {
	// keys must survive the float64 round trip exactly
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			if v != v || v < 0 {
				return 0
			}
			if v > 1 {
				return 1
			}
			return v
		}
		p := Point{clamp(a), clamp(b), clamp(c)}
		k := ZEncode(p, UnitCube(3))
		return uint64(float64(k)) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRepresentativeKeysShrinkAndPreserve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{2, 3} {
		pts := skewPoints(rng, 5000, d)
		space := UnitCube(d)
		keys := RepresentativeKeys(pts, space, 200)
		if len(keys) >= len(pts)/4 {
			t.Errorf("d=%d: |Ds| = %d not much smaller than n", d, len(keys))
		}
		if len(keys) < 5000/200 {
			t.Errorf("d=%d: |Ds| = %d too small", d, len(keys))
		}
		if !sort.Float64sAreSorted(keys) {
			t.Fatalf("d=%d: keys not sorted", d)
		}
	}
}

func TestRepresentativeKeysDuplicates(t *testing.T) {
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{0.5, 0.5, 0.5}
	}
	keys := RepresentativeKeys(pts, UnitCube(3), 10)
	if len(keys) == 0 {
		t.Fatal("no representatives for duplicate cloud")
	}
}

func testIndexQueries(t *testing.T, d int, rsBeta int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(4 + d)))
	pts := skewPoints(rng, 3000, d)
	space := UnitCube(d)
	ix := NewIndex(space, rmi.PiecewiseTrainer(1.0/256), rsBeta)
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	// exact point queries
	for _, p := range pts[:300] {
		if !ix.PointQuery(p) {
			t.Fatalf("d=%d: stored point %v not found", d, p)
		}
	}
	off := make(Point, d)
	for i := range off {
		off[i] = 2
	}
	if ix.PointQuery(off) {
		t.Error("phantom point found")
	}
	// exact windows vs brute force
	for trial := 0; trial < 20; trial++ {
		c := pts[rng.Intn(len(pts))]
		win := Rect{Min: make(Point, d), Max: make(Point, d)}
		for i := 0; i < d; i++ {
			win.Min[i] = c[i] - 0.1
			win.Max[i] = c[i] + 0.1
		}
		got := ix.WindowQuery(win)
		want := 0
		for _, p := range pts {
			if win.Contains(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("d=%d: window got %d want %d", d, len(got), want)
		}
	}
	// exact kNN vs brute force (distance-tolerant)
	for trial := 0; trial < 10; trial++ {
		q := pts[rng.Intn(len(pts))]
		got := ix.KNN(q, 10)
		if len(got) != 10 {
			t.Fatalf("d=%d: KNN returned %d", d, len(got))
		}
		// brute force k-th distance
		ds := make([]float64, len(pts))
		for i, p := range pts {
			ds[i] = p.Dist2(q)
		}
		sort.Float64s(ds)
		kth := ds[9]
		for _, p := range got {
			if p.Dist2(q) > kth+1e-12 {
				t.Fatalf("d=%d: kNN result %v farther than true k-th", d, p)
			}
		}
	}
}

func TestIndex3DOG(t *testing.T) { testIndexQueries(t, 3, 0) }
func TestIndex3DRS(t *testing.T) { testIndexQueries(t, 3, 200) }
func TestIndex4DRS(t *testing.T) { testIndexQueries(t, 4, 200) }
func TestIndex2DOG(t *testing.T) { testIndexQueries(t, 2, 0) }

func TestRSReductionShrinksTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := skewPoints(rng, 8000, 3)
	space := UnitCube(3)
	og := NewIndex(space, rmi.PiecewiseTrainer(1.0/256), 0)
	rs := NewIndex(space, rmi.PiecewiseTrainer(1.0/256), 400)
	og.Build(pts)
	rs.Build(pts)
	if og.TrainSetSize() != 8000 {
		t.Errorf("OG train size = %d", og.TrainSetSize())
	}
	if rs.TrainSetSize() >= og.TrainSetSize()/4 {
		t.Errorf("RS train size = %d not << %d", rs.TrainSetSize(), og.TrainSetSize())
	}
	if rs.ErrWidth() <= 0 && og.ErrWidth() <= 0 {
		t.Log("both models fit perfectly (acceptable at this scale)")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex(UnitCube(3), rmi.LinearTrainer(), 0)
	ix.Build(nil)
	if ix.PointQuery(Point{0.5, 0.5, 0.5}) {
		t.Error("phantom in empty index")
	}
	if got := ix.KNN(Point{0, 0, 0}, 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
	if got := ix.WindowQuery(UnitCube(3)); len(got) != 0 {
		t.Errorf("empty window = %d", len(got))
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{2: 26, 3: 17, 4: 13, 0: 0}
	for d, want := range cases {
		if got := BitsFor(d); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", d, got, want)
		}
	}
	// total bits never exceed float64's exact-integer range
	for d := 2; d <= 10; d++ {
		if BitsFor(d)*d > 52 {
			t.Errorf("d=%d: %d total bits exceed 52", d, BitsFor(d)*d)
		}
	}
}

// TestIndexDegenerateData covers the historically fragile inputs for
// the d-dimensional index: empty, single-point, and all-duplicate
// builds, on both the OG and RS-reduced training paths.
func TestIndexDegenerateData(t *testing.T) {
	dup := make([]Point, 64)
	for i := range dup {
		dup[i] = Point{0.25, 0.75, 0.5}
	}
	sets := map[string][]Point{
		"empty":      nil,
		"single":     {{0.5, 0.5, 0.5}},
		"duplicates": dup,
	}
	for _, rsBeta := range []int{0, 10} {
		for name, pts := range sets {
			t.Run(fmt.Sprintf("beta%d/%s", rsBeta, name), func(t *testing.T) {
				ix := NewIndex(UnitCube(3), rmi.PiecewiseTrainer(1.0/256), rsBeta)
				if err := ix.Build(pts); err != nil {
					t.Fatalf("Build(%s): %v", name, err)
				}
				if ix.Len() != len(pts) {
					t.Fatalf("Len = %d, want %d", ix.Len(), len(pts))
				}
				if ix.PointQuery(Point{0.987, 0.123, 0.555}) {
					t.Error("phantom point found")
				}
				win := Rect{Min: Point{0, 0, 0}, Max: Point{1, 1, 1}}
				got := ix.WindowQuery(win)
				if len(pts) == 0 {
					if len(got) != 0 {
						t.Errorf("empty build returned %d window results", len(got))
					}
					if knn := ix.KNN(Point{0.5, 0.5, 0.5}, 3); len(knn) != 0 {
						t.Errorf("empty build returned %d kNN results", len(knn))
					}
					return
				}
				if !ix.PointQuery(pts[0]) {
					t.Fatalf("stored point %v not found", pts[0])
				}
				if len(got) != len(pts) {
					t.Errorf("full-space window returned %d of %d points", len(got), len(pts))
				}
				knn := ix.KNN(pts[0], 1)
				if len(knn) != 1 || !knn[0].Equal(pts[0]) {
					t.Errorf("KNN(stored, 1) = %v", knn)
				}
			})
		}
	}
}

// TestIndexBuildRejectsInvalidPoints pins the input-validation
// contract: NaN/±Inf coordinates are rejected before any key mapping.
func TestIndexBuildRejectsInvalidPoints(t *testing.T) {
	nan := math.NaN()
	bad := [][]Point{
		{{nan, 0.5, 0.5}},
		{{0.5, math.Inf(1), 0.5}},
		{{0.1, 0.1, 0.1}, {0.5, 0.5, math.Inf(-1)}},
	}
	for i, pts := range bad {
		ix := NewIndex(UnitCube(3), rmi.PiecewiseTrainer(1.0/256), 0)
		if err := ix.Build(pts); err == nil {
			t.Errorf("case %d: Build accepted invalid point", i)
		}
	}
}
