package ndim

import (
	"fmt"

	"elsi/internal/rmi"
	"elsi/internal/snapshot"
)

// stateVersion is the on-disk version of the ndim state encoding.
const stateVersion = 1

// StateAppend implements snapshot.Stater: the sorted key column, the
// flattened point coordinates, and the trained model. The space,
// trainer, and reduction config come from the constructor; the encoded
// dimensionality is checked against the space on restore.
func (ix *Index) StateAppend(b []byte) ([]byte, error) {
	d := ix.space.Dim()
	b = snapshot.AppendU8(b, stateVersion)
	b = snapshot.AppendUvarint(b, uint64(d))
	b = snapshot.AppendInt(b, ix.trainSize)
	b = snapshot.AppendF64s(b, ix.keys)
	b = snapshot.AppendUvarint(b, uint64(len(ix.pts)))
	for _, p := range ix.pts {
		if len(p) != d {
			return nil, fmt.Errorf("ndim: %d-dim point in %d-dim index", len(p), d)
		}
		for _, c := range p {
			b = snapshot.AppendF64(b, c)
		}
	}
	return rmi.AppendBounded(b, ix.model)
}

// RestoreState implements snapshot.Stater, validating the parallel
// key/point columns (equal lengths, ascending keys, uniform
// dimensionality matching the index's space) before mutating anything.
func (ix *Index) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("ndim: unsupported state version %d", v)
	}
	dim := int(d.Uvarint())
	trainSize := d.Int()
	keys := d.F64s()
	if err := d.Err(); err != nil {
		return fmt.Errorf("ndim: decode state: %w", err)
	}
	if dim != ix.space.Dim() {
		return fmt.Errorf("ndim: state is %d-dimensional, index space is %d-dimensional", dim, ix.space.Dim())
	}
	if trainSize < 0 {
		return fmt.Errorf("ndim: negative train-set size %d", trainSize)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return fmt.Errorf("ndim: keys not sorted at %d", i)
		}
	}
	n := d.Count(dim * 8)
	if err := d.Err(); err != nil {
		return fmt.Errorf("ndim: decode state: %w", err)
	}
	if n != len(keys) {
		return fmt.Errorf("ndim: key/point columns mismatch: %d vs %d", len(keys), n)
	}
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for j := range p {
			p[j] = d.F64()
		}
		pts[i] = p
	}
	model, err := rmi.DecodeBounded(d)
	if err != nil {
		return fmt.Errorf("ndim: decode model: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("ndim: decode state: %w", err)
	}
	if model == nil && len(keys) > 0 {
		return fmt.Errorf("ndim: %d entries without a model", len(keys))
	}
	ix.keys = keys
	ix.pts = pts
	ix.model = model
	ix.trainSize = trainSize
	return nil
}
