package ndim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"elsi/internal/parallel"
	"elsi/internal/rmi"
)

// RepresentativeKeys is Algorithm 2 (get_RS) in d dimensions: the box
// is split recursively into 2^d children until every cell holds at
// most beta points; the median point (by mapped key) of each non-empty
// cell represents it. The returned keys are sorted — the reduced
// training set Ds of the RS method.
func RepresentativeKeys(pts []Point, space Rect, beta int) []float64 {
	if beta < 1 {
		beta = 1
	}
	var keys []float64
	var rec func(pts []Point, box Rect, depth int)
	rec = func(pts []Point, box Rect, depth int) {
		if len(pts) == 0 {
			return
		}
		// depth cap guards duplicate-heavy inputs
		if len(pts) <= beta || depth >= 48 {
			keys = append(keys, medianKey(pts, space))
			return
		}
		d := box.Dim()
		children := make([][]Point, 1<<d)
		for _, p := range pts {
			m := box.ChildOf(p)
			children[m] = append(children[m], p)
		}
		for m, child := range children {
			rec(child, box.Child(m), depth+1)
		}
	}
	rec(pts, space, 0)
	parallel.SortFloat64s(keys, 0)
	return keys
}

func medianKey(pts []Point, space Rect) float64 {
	ks := make([]float64, len(pts))
	for i, p := range pts {
		ks[i] = ZKey(p, space)
	}
	sort.Float64s(ks)
	return ks[len(ks)/2]
}

// Index is a d-dimensional predict-and-scan learned index: points are
// mapped to their d-dimensional Morton keys, sorted, and a rank model
// trained (on the full set or on an RS-reduced set) with empirical
// error bounds. Point queries are exact; window queries scan the
// conservative corner-key range and filter; kNN expands a box.
type Index struct {
	space   Rect
	trainer rmi.Trainer
	// RSBeta > 0 builds the model on the RS-reduced set (the ELSI
	// path); 0 trains on the full key set (OG).
	rsBeta int
	// workers bounds the parallel key mapping, sorting, and error-bound
	// scan of Build (0 = GOMAXPROCS, 1 = serial).
	workers int

	keys      []float64
	pts       []Point
	model     *rmi.Bounded
	trainSize int
}

// NewIndex returns an unbuilt d-dimensional index. rsBeta > 0 enables
// RS-reduced training with the given cell capacity.
func NewIndex(space Rect, trainer rmi.Trainer, rsBeta int) *Index {
	return NewIndexWorkers(space, trainer, rsBeta, 0)
}

// NewIndexWorkers is NewIndex with an explicit worker count for the
// parallel build stages (0 = GOMAXPROCS, 1 = serial). Builds are
// bit-identical across worker counts.
func NewIndexWorkers(space Rect, trainer rmi.Trainer, rsBeta, workers int) *Index {
	return &Index{space: space, trainer: trainer, rsBeta: rsBeta, workers: workers}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// TrainSetSize returns the size of the model's training set (|Ds|
// when RS reduction is enabled, n otherwise).
func (ix *Index) TrainSetSize() int { return ix.trainSize }

// validatePoints rejects NaN/±Inf coordinates: they have no Morton key
// and would poison the sort order and training targets downstream.
func validatePoints(pts []Point) error {
	for i, p := range pts {
		for _, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("ndim: invalid coordinate in point %d: %v", i, p)
			}
		}
	}
	return nil
}

// Build maps, sorts, reduces (optionally), trains, and bounds. Key
// mapping is chunked across workers and the key/point pairs are
// co-sorted with the deterministic stable parallel merge sort.
func (ix *Index) Build(pts []Point) error {
	return ix.BuildCtx(context.Background(), pts)
}

// BuildCtx is Build with cooperative cancellation: training and the
// error-bound scan abort when ctx is done and return its error. A
// failed build leaves the index unusable; callers must discard it.
func (ix *Index) BuildCtx(ctx context.Context, pts []Point) error {
	if err := validatePoints(pts); err != nil {
		return err
	}
	ix.keys = make([]float64, len(pts))
	ix.pts = make([]Point, len(pts))
	copy(ix.pts, pts)
	parallel.For(len(pts), ix.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ix.keys[i] = ZKey(ix.pts[i], ix.space)
		}
	})
	parallel.SortPairs(ix.keys, ix.pts, ix.workers)
	if len(pts) == 0 {
		ix.model = &rmi.Bounded{Model: rmi.ConstModel(0), N: 0}
		ix.trainSize = 0
		return nil
	}
	train := ix.keys
	if ix.rsBeta > 0 {
		train = RepresentativeKeys(ix.pts, ix.space, ix.rsBeta)
	}
	ix.trainSize = len(train)
	model, err := rmi.NewBoundedCtx(ctx, ix.trainer, train, ix.keys, ix.workers)
	if err != nil {
		return err
	}
	ix.model = model
	return nil
}

// PointQuery reports whether p is stored (exact).
func (ix *Index) PointQuery(p Point) bool {
	if len(ix.pts) == 0 {
		return false
	}
	lo, hi := ix.model.SearchRange(ZKey(p, ix.space))
	for i := lo; i < hi; i++ {
		if ix.pts[i].Equal(p) {
			return true
		}
	}
	return false
}

// WindowQuery returns the stored points inside win (exact): the
// corner keys bound every inside point's key, and the boundaries are
// located exactly by binary search seeded at the model prediction.
func (ix *Index) WindowQuery(win Rect) []Point {
	return ix.WindowQueryAppend(win, nil)
}

// WindowQueryAppend is WindowQuery appending matches to out and
// returning the extended slice, for callers reusing result buffers.
func (ix *Index) WindowQueryAppend(win Rect, out []Point) []Point {
	if len(ix.pts) == 0 {
		return out
	}
	loKey, hiKey := MinMaxKeys(win, ix.space)
	lo := sort.SearchFloat64s(ix.keys, loKey)
	hi := searchGTKeys(ix.keys, hiKey)
	for i := lo; i < hi; i++ {
		if win.Contains(ix.pts[i]) {
			out = append(out, ix.pts[i])
		}
	}
	return out
}

// searchGTKeys returns the first index whose key exceeds k — the
// closure-free equivalent of sort.Search over a sorted key column.
func searchGTKeys(keys []float64, k float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// KNN returns the k nearest stored points to q by expanding a box
// until the k-th candidate lies within the box radius (exact).
func (ix *Index) KNN(q Point, k int) []Point {
	return ix.KNNAppend(q, k, nil)
}

// knnScratch holds the expanding-window candidate set and its distance
// column; pooled so repeated kNN queries reuse one working set.
type knnScratch struct {
	cand []Point
	dist []float64
	win  Rect
}

func (s *knnScratch) Len() int           { return len(s.cand) }
func (s *knnScratch) Less(i, j int) bool { return s.dist[i] < s.dist[j] }
func (s *knnScratch) Swap(i, j int) {
	s.cand[i], s.cand[j] = s.cand[j], s.cand[i]
	s.dist[i], s.dist[j] = s.dist[j], s.dist[i]
}

var knnScratchPool = sync.Pool{New: func() interface{} { return new(knnScratch) }}

// KNNAppend is KNN appending the answer to out and returning the
// extended slice; both entry points share one implementation, so their
// results are identical (including tie order).
func (ix *Index) KNNAppend(q Point, k int, out []Point) []Point {
	n := len(ix.pts)
	if k <= 0 || n == 0 {
		return out
	}
	if k > n {
		k = n
	}
	d := ix.space.Dim()
	// initial radius from expected density
	r := 0.01
	if vol := ix.space.Volume(); vol > 0 {
		r = rootD(float64(4*k)/float64(n)*vol, d)
	}
	maxR := 0.0
	for i := 0; i < d; i++ {
		if side := ix.space.Max[i] - ix.space.Min[i]; side > maxR {
			maxR = side
		}
	}
	s := knnScratchPool.Get().(*knnScratch)
	defer knnScratchPool.Put(s)
	if len(s.win.Min) != d {
		s.win = Rect{Min: make(Point, d), Max: make(Point, d)}
	}
	for {
		for i := 0; i < d; i++ {
			s.win.Min[i] = q[i] - r
			s.win.Max[i] = q[i] + r
		}
		s.cand = ix.WindowQueryAppend(s.win, s.cand[:0])
		if len(s.cand) >= k {
			s.sortByDist(q)
			if s.dist[k-1] <= r*r || r >= maxR {
				return append(out, s.cand[:k]...)
			}
		} else if r >= maxR {
			s.sortByDist(q)
			return append(out, s.cand[:min(k, len(s.cand))]...)
		}
		r *= 2
	}
}

// sortByDist orders the candidate column by ascending squared distance
// to q, computing each distance once.
func (s *knnScratch) sortByDist(q Point) {
	s.dist = s.dist[:0]
	for _, p := range s.cand {
		s.dist = append(s.dist, p.Dist2(q))
	}
	sort.Sort(s)
}

// ErrWidth exposes the model's err_l + err_u.
func (ix *Index) ErrWidth() int { return ix.model.ErrBoundsWidth() }

// rootD returns v^(1/d).
func rootD(v float64, d int) float64 {
	if v <= 0 || d < 1 {
		return 0
	}
	return math.Pow(v, 1/float64(d))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
