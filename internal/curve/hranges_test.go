package curve

import (
	"math/rand"
	"testing"

	"elsi/internal/geo"
)

// cellWindow returns the float window spanning cells [cx1, cx2] x
// [cy1, cy2] of the unit square, shrunk inward by a quarter cell so it
// touches exactly those cells (closed-rect intersection would otherwise
// pull in the neighbouring row and column).
func cellWindow(cx1, cy1, cx2, cy2 uint32) geo.Rect {
	const cw = 1.0 / cells
	return geo.Rect{
		MinX: float64(cx1)*cw + cw/4, MinY: float64(cy1)*cw + cw/4,
		MaxX: float64(cx2+1)*cw - cw/4, MaxY: float64(cy2+1)*cw - cw/4,
	}
}

// TestHRangesExactCoverFullDepth checks the exact-cover property at
// full depth on small cell-aligned windows: the decomposed ranges
// contain the key of every cell intersecting the window, and nothing
// else (total range length equals the window's cell count).
func TestHRangesExactCoverFullDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		cx := uint32(rng.Intn(cells - 70))
		cy := uint32(rng.Intn(cells - 70))
		w := uint32(rng.Intn(24))
		h := uint32(rng.Intn(24))
		win := cellWindow(cx, cy, cx+w, cy+h)
		ranges := HRanges(win, geo.UnitRect, Order)

		var total uint64
		for _, r := range ranges {
			total += r.Hi - r.Lo + 1
		}
		want := uint64(w+1) * uint64(h+1)
		if total != want {
			t.Fatalf("trial %d: ranges cover %d keys, want exactly %d (window %v)", trial, total, want, win)
		}
		for x := cx; x <= cx+w; x++ {
			for y := cy; y <= cy+h; y++ {
				if !rangesCover(ranges, HEncodeCell(x, y)) {
					t.Fatalf("trial %d: cell (%d,%d) in window not covered", trial, x, y)
				}
			}
		}
	}
}

// TestHRangesDepthCappedCoverage checks the safe direction of the
// depth-capped decomposition: over-approximation is allowed, missing a
// window point's key is not.
func TestHRangesDepthCappedCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		x, y := rng.Float64(), rng.Float64()
		win := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*0.3, MaxY: y + rng.Float64()*0.3}
		ranges := HRanges(win, geo.UnitRect, 8)
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo <= ranges[i-1].Hi {
				t.Fatalf("trial %d: overlapping/unsorted ranges %v", trial, ranges)
			}
		}
		for probe := 0; probe < 20; probe++ {
			p := geo.Point{
				X: win.MinX + rng.Float64()*(win.MaxX-win.MinX),
				Y: win.MinY + rng.Float64()*(win.MaxY-win.MinY),
			}
			if !win.Contains(p) {
				continue
			}
			if !rangesCover(ranges, HEncode(p, geo.UnitRect)) {
				t.Fatalf("trial %d: key of window point %v not covered", trial, p)
			}
		}
	}
}

// TestHRangesAppendPreservesPrefix checks the append contract: leading
// entries stay untouched and the decomposition lands after them.
func TestHRangesAppendPreservesPrefix(t *testing.T) {
	prefix := KeyRange{Lo: 1, Hi: 2}
	win := geo.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}
	out := HRangesAppend(win, geo.UnitRect, 6, []KeyRange{prefix})
	if len(out) < 2 || out[0] != prefix {
		t.Fatalf("prefix clobbered: %v", out)
	}
	want := HRanges(win, geo.UnitRect, 6)
	got := out[1:]
	if len(got) != len(want) {
		t.Fatalf("append form diverged: %d ranges vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("append form diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestHRangeMBRContainsRangeCells samples keys from random ranges and
// checks their cells' rectangles lie inside the computed MBR.
func TestHRangeMBRContainsRangeCells(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		lo := rng.Uint64() % MaxKey
		hi := lo + rng.Uint64()%(MaxKey-lo+1)
		r := KeyRange{Lo: lo, Hi: hi}
		mbr := HRangeMBR(r, geo.UnitRect, 8)
		for probe := 0; probe < 50; probe++ {
			k := lo + rng.Uint64()%(hi-lo+1)
			cx, cy := HDecodeCell(k)
			cellRect := geo.Rect{
				MinX: dequantize(cx, 0, 1), MinY: dequantize(cy, 0, 1),
				MaxX: dequantize(cx+1, 0, 1), MaxY: dequantize(cy+1, 0, 1),
			}
			if !mbr.ContainsRect(cellRect) {
				t.Fatalf("trial %d: cell of key %d (%v) outside MBR %v of range [%d,%d]",
					trial, k, cellRect, mbr, lo, hi)
			}
		}
	}
}

// TestHRangeMBRFullRange sanity-checks the extremes: the full key range
// covers the space, an empty-ish single-key range covers one cell.
func TestHRangeMBRFullRange(t *testing.T) {
	full := HRangeMBR(KeyRange{Lo: 0, Hi: MaxKey}, geo.UnitRect, 6)
	if !full.ContainsRect(geo.UnitRect) {
		t.Fatalf("full-range MBR %v does not cover the space", full)
	}
	one := HRangeMBR(KeyRange{Lo: 12345, Hi: 12345}, geo.UnitRect, Order)
	cx, cy := HDecodeCell(12345)
	p := geo.Point{X: dequantize(cx, 0, 1), Y: dequantize(cy, 0, 1)}
	if !one.Contains(p) {
		t.Fatalf("single-key MBR %v misses its cell corner %v", one, p)
	}
	if one.Width() > 2.0/cells || one.Height() > 2.0/cells {
		t.Fatalf("single-key MBR %v wider than one cell", one)
	}
}

// FuzzHRangesCoverage is the satellite fuzz property: on cell-aligned
// windows small enough to enumerate, the full-depth decomposition
// covers exactly the window's cells — every intersecting cell's key is
// in some range and the total range length equals the cell count.
func FuzzHRangesCoverage(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(5), uint32(5))
	f.Add(uint32(cells-8), uint32(cells-8), uint32(7), uint32(7))
	f.Add(uint32(12345), uint32(54321), uint32(0), uint32(31))
	f.Fuzz(func(t *testing.T, cx, cy, w, h uint32) {
		w %= 32
		h %= 32
		cx %= cells - w - 1
		cy %= cells - h - 1
		win := cellWindow(cx, cy, cx+w, cy+h)
		ranges := HRanges(win, geo.UnitRect, Order)

		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo <= ranges[i-1].Hi {
				t.Fatalf("overlapping/unsorted ranges: %v", ranges)
			}
		}
		var total uint64
		for _, r := range ranges {
			total += r.Hi - r.Lo + 1
		}
		if want := uint64(w+1) * uint64(h+1); total != want {
			t.Fatalf("ranges cover %d keys, want exactly %d (cells [%d,%d]x[%d,%d])",
				total, want, cx, cx+w, cy, cy+h)
		}
		for x := cx; x <= cx+w; x++ {
			for y := cy; y <= cy+h; y++ {
				if !rangesCover(ranges, HEncodeCell(x, y)) {
					t.Fatalf("cell (%d,%d) not covered", x, y)
				}
			}
		}
	})
}
