package curve

import (
	"math/rand"
	"testing"
)

// inBox reports whether key's cell lies inside the cell box spanned by
// zmin and zmax (per-dimension comparison).
func inBox(key, zmin, zmax uint64) bool {
	kx, ky := ZDecodeCell(key)
	lx, ly := ZDecodeCell(zmin)
	hx, hy := ZDecodeCell(zmax)
	return kx >= lx && kx <= hx && ky >= ly && ky <= hy
}

// bruteBigMin scans keys upward — only viable on tiny grids.
func bruteBigMin(z, zmin, zmax uint64) uint64 {
	for k := z + 1; k <= zmax; k++ {
		if inBox(k, zmin, zmax) {
			return k
		}
	}
	return zmax + 1
}

func TestBigMinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		// random box inside a 32x32 sub-grid (keys stay tiny so the
		// brute force is cheap)
		lx, ly := uint32(rng.Intn(28)), uint32(rng.Intn(28))
		hx := lx + uint32(rng.Intn(int(32-lx)))
		hy := ly + uint32(rng.Intn(int(32-ly)))
		zmin := ZEncodeCell(lx, ly)
		zmax := ZEncodeCell(hx, hy)
		if zmin > zmax {
			t.Fatalf("corner keys out of order: %d > %d", zmin, zmax)
		}
		for q := 0; q < 30; q++ {
			z := zmin + uint64(rng.Int63n(int64(zmax-zmin+1)))
			if inBox(z, zmin, zmax) {
				continue // BigMin is defined for out-of-box keys
			}
			got := BigMin(z, zmin, zmax)
			want := bruteBigMin(z, zmin, zmax)
			if got != want {
				t.Fatalf("box (%d,%d)-(%d,%d), z=%d: BigMin=%d want %d",
					lx, ly, hx, hy, z, got, want)
			}
		}
	}
}

func TestBigMinResultInsideBox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		// larger boxes at full order: can't brute force, but the
		// result must be in the box and > z
		lx, ly := rng.Uint32()%cells, rng.Uint32()%cells
		w := rng.Uint32() % 1024
		h := rng.Uint32() % 1024
		hx, hy := lx+w, ly+h
		if hx >= cells {
			hx = cells - 1
		}
		if hy >= cells {
			hy = cells - 1
		}
		if hx < lx || hy < ly {
			continue
		}
		zmin := ZEncodeCell(lx, ly)
		zmax := ZEncodeCell(hx, hy)
		z := zmin + uint64(rng.Int63n(int64(zmax-zmin+1)))
		if inBox(z, zmin, zmax) {
			continue
		}
		got := BigMin(z, zmin, zmax)
		if got <= z {
			t.Fatalf("BigMin %d <= z %d", got, z)
		}
		if got <= zmax && !inBox(got, zmin, zmax) {
			t.Fatalf("BigMin %d not inside box", got)
		}
	}
}

func TestBigMinNoGreaterKey(t *testing.T) {
	// box = single cell; z just above it -> zmax+1 sentinel. Construct
	// z > zmax is invalid (z must be <= zmax), so use a box where the
	// last in-box key equals zmax and pick the largest out-of-box key
	// below it.
	zmin := ZEncodeCell(2, 2)
	zmax := ZEncodeCell(3, 3)
	// keys 12..15 cover cells (2,2),(3,2),(2,3),(3,3): all inside —
	// use a thin box instead: (2,2)-(2,3) = keys 12 and 14; key 13 is
	// outside, key 15 > zmax.
	zmin = ZEncodeCell(2, 2) // 12
	zmax = ZEncodeCell(2, 3) // 14
	if got := BigMin(13, zmin, zmax); got != 14 {
		t.Fatalf("BigMin(13) = %d, want 14", got)
	}
}

func BenchmarkBigMin(b *testing.B) {
	zmin := ZEncodeCell(1000, 2000)
	zmax := ZEncodeCell(9000, 7000)
	z := (zmin + zmax) / 2
	for inBox(z, zmin, zmax) {
		z++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BigMin(z, zmin, zmax)
	}
}
