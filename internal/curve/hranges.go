package curve

import (
	"elsi/internal/geo"
)

// HRanges decomposes a query window into Hilbert-key ranges that
// together cover every grid cell intersecting the window, mirroring
// ZRanges for the Hilbert curve. It subdivides the space quadrant by
// quadrant; a quadrant fully inside the window is emitted as one range,
// and recursion stops at maxDepth by over-approximating with the
// quadrant's full range. The returned ranges are sorted and merged.
//
// The sharded router uses the decomposition to prune window scatter:
// a shard whose key range intersects none of the window's ranges
// cannot hold a point inside the window.
func HRanges(window geo.Rect, space geo.Rect, maxDepth int) []KeyRange {
	return HRangesAppend(window, space, maxDepth, nil)
}

// HRangesAppend is HRanges writing into out (which may hold unrelated
// leading entries) and returning the extended slice. Query hot paths
// pass a reused buffer so the decomposition allocates nothing once the
// buffer has warmed up.
//
//elsi:noalloc
func HRangesAppend(window geo.Rect, space geo.Rect, maxDepth int, out []KeyRange) []KeyRange {
	if !window.Intersects(space) {
		return out
	}
	if maxDepth > Order {
		maxDepth = Order
	}
	h := hranger{window: window, maxDepth: maxDepth, out: out}
	start := len(out)
	h.rec(0, 0, 0, space)
	merged := MergeRanges(h.out[start:])
	return h.out[:start+len(merged)]
}

// hranger carries the recursion state of the Hilbert decomposition; a
// struct keeps the recursion allocation-free (see zranger).
type hranger struct {
	window   geo.Rect
	maxDepth int
	out      []KeyRange
}

// rec visits the quadrant with coordinates (cx, cy) at the given
// level. The Hilbert curve visits every aligned quadrant contiguously,
// so the quadrant's keys are the aligned block of 4^(Order-level) keys
// containing the key of any of its cells — no rotation bookkeeping is
// needed, one HEncodeCell call per emitted quadrant suffices. Unlike
// the Z curve the block's base is not a simple bit prefix of the cell
// coordinates, so the emitted ranges arrive out of key order and the
// MergeRanges sort above is essential, not defensive.
//
//elsi:noalloc
func (h *hranger) rec(cx, cy uint32, level int, cell geo.Rect) {
	if !h.window.Intersects(cell) {
		return
	}
	if h.window.ContainsRect(cell) || level >= h.maxDepth {
		shift := uint(2 * (Order - level))
		span := uint64(1)<<shift - 1
		lo := HEncodeCell(cx<<(Order-level), cy<<(Order-level)) &^ span
		h.out = append(h.out, KeyRange{lo, lo + span})
		return
	}
	mx := (cell.MinX + cell.MaxX) / 2
	my := (cell.MinY + cell.MaxY) / 2
	h.rec(cx*2, cy*2, level+1, geo.Rect{MinX: cell.MinX, MinY: cell.MinY, MaxX: mx, MaxY: my})
	h.rec(cx*2+1, cy*2, level+1, geo.Rect{MinX: mx, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: my})
	h.rec(cx*2, cy*2+1, level+1, geo.Rect{MinX: cell.MinX, MinY: my, MaxX: mx, MaxY: cell.MaxY})
	h.rec(cx*2+1, cy*2+1, level+1, geo.Rect{MinX: mx, MinY: my, MaxX: cell.MaxX, MaxY: cell.MaxY})
}

// HRangeMBR returns a rectangle covering every grid cell whose Hilbert
// key lies in r, by descending the quadrant tree and unioning the
// quadrants whose key blocks intersect r; recursion stops at maxDepth,
// over-approximating with the whole quadrant. The result is an outer
// bound of the key range's region — safe for MINDIST pruning, which
// only ever under-estimates distances through it.
func HRangeMBR(r KeyRange, space geo.Rect, maxDepth int) geo.Rect {
	if maxDepth > Order {
		maxDepth = Order
	}
	m := geo.EmptyRect()
	hrangeMBR(&m, r, 0, 0, 0, space, maxDepth)
	return m
}

func hrangeMBR(acc *geo.Rect, r KeyRange, cx, cy uint32, level int, cell geo.Rect, maxDepth int) {
	shift := uint(2 * (Order - level))
	span := uint64(1)<<shift - 1
	lo := HEncodeCell(cx<<(Order-level), cy<<(Order-level)) &^ span
	hi := lo + span
	if hi < r.Lo || lo > r.Hi {
		return
	}
	if (lo >= r.Lo && hi <= r.Hi) || level >= maxDepth {
		*acc = acc.Union(cell)
		return
	}
	mx := (cell.MinX + cell.MaxX) / 2
	my := (cell.MinY + cell.MaxY) / 2
	hrangeMBR(acc, r, cx*2, cy*2, level+1, geo.Rect{MinX: cell.MinX, MinY: cell.MinY, MaxX: mx, MaxY: my}, maxDepth)
	hrangeMBR(acc, r, cx*2+1, cy*2, level+1, geo.Rect{MinX: mx, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: my}, maxDepth)
	hrangeMBR(acc, r, cx*2, cy*2+1, level+1, geo.Rect{MinX: cell.MinX, MinY: my, MaxX: mx, MaxY: cell.MaxY}, maxDepth)
	hrangeMBR(acc, r, cx*2+1, cy*2+1, level+1, geo.Rect{MinX: mx, MinY: my, MaxX: cell.MaxX, MaxY: cell.MaxY}, maxDepth)
}
