package curve

// This file implements the BIGMIN operation of Tropf & Herzog (1981)
// for the 2-D Morton curve: given a query box's Morton-key range
// [zmin, zmax] and a key z inside that range whose cell lies OUTSIDE
// the box, BigMin returns the smallest key > z whose cell is inside
// the box. A window scan can then skip the out-of-box runs between
// Z-curve visits instead of filtering through them — the "skip-scan"
// alternative to the recursive range decomposition of ZRanges.

// BigMin returns the smallest Morton key greater than z that lies
// inside the box whose minimum and maximum cells encode to zmin and
// zmax. It requires zmin <= z <= zmax; when no key inside the box is
// greater than z it returns zmax+1 (one past the end).
//
//elsi:noalloc
func BigMin(z, zmin, zmax uint64) uint64 {
	var bigmin uint64
	haveBigmin := false
	for p := 2*Order - 1; p >= 0; p-- {
		zb := z >> uint(p) & 1
		minb := zmin >> uint(p) & 1
		maxb := zmax >> uint(p) & 1
		switch {
		case zb == 0 && minb == 0 && maxb == 0:
			// all agree: continue
		case zb == 0 && minb == 0 && maxb == 1:
			// the box spans both halves of this dimension's split:
			// remember the best candidate in the upper half, restrict
			// the search to the lower half
			bigmin = withOneZerosBelow(zmin, p)
			haveBigmin = true
			zmax = withZeroOnesBelow(zmax, p)
		case zb == 0 && minb == 1:
			// everything in the box is greater than z
			return zmin
		case zb == 1 && maxb == 0:
			// everything in the box is smaller than z
			if haveBigmin {
				return bigmin
			}
			return zmax + 1
		case zb == 1 && minb == 0 && maxb == 1:
			// z is in the upper half: the lower half is all < z
			zmin = withOneZerosBelow(zmin, p)
		case zb == 1 && minb == 1 && maxb == 1:
			// all agree: continue
		default:
			// minb == 1 && maxb == 0 would mean zmin > zmax
			panic("curve: BigMin requires zmin <= zmax")
		}
	}
	// z itself is inside the box; the next inside key is z+1 if still
	// within range
	if haveBigmin {
		return bigmin
	}
	return zmax + 1
}

// sameDimBelow returns the mask of bit positions below p belonging to
// the same dimension as p (Morton bits alternate dimensions, so same-
// dimension bits are at p-2, p-4, ...).
//
//elsi:noalloc
func sameDimBelow(p int) uint64 {
	// 0x5555... has bits at even positions; shift to align with p's parity
	mask := uint64(0x5555555555555555)
	if p&1 == 1 {
		mask <<= 1
	}
	// keep only bits strictly below p
	return mask & (uint64(1)<<uint(p) - 1)
}

// withOneZerosBelow returns v with bit p set to 1 and the same-
// dimension bits below p cleared ("LOAD 1000..." of the paper).
//
//elsi:noalloc
func withOneZerosBelow(v uint64, p int) uint64 {
	return (v | uint64(1)<<uint(p)) &^ sameDimBelow(p)
}

// withZeroOnesBelow returns v with bit p cleared and the same-
// dimension bits below p set ("LOAD 0111...").
//
//elsi:noalloc
func withZeroOnesBelow(v uint64, p int) uint64 {
	return (v &^ (uint64(1) << uint(p))) | sameDimBelow(p)
}

// ZCellInBox reports whether key's cell lies inside the cell box
// spanned per dimension by the corner keys zmin and zmax.
//
//elsi:noalloc
func ZCellInBox(key, zmin, zmax uint64) bool {
	kx, ky := ZDecodeCell(key)
	lx, ly := ZDecodeCell(zmin)
	hx, hy := ZDecodeCell(zmax)
	return kx >= lx && kx <= hx && ky >= ly && ky <= hy
}
