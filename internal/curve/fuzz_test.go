package curve

import (
	"testing"

	"elsi/internal/geo"
)

func FuzzZRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(cells-1), uint32(cells-1))
	f.Add(uint32(12345), uint32(54321))
	f.Fuzz(func(t *testing.T, x, y uint32) {
		x %= cells
		y %= cells
		gx, gy := ZDecodeCell(ZEncodeCell(x, y))
		if gx != x || gy != y {
			t.Fatalf("Z round trip (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	})
}

func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(cells-1), uint32(0))
	f.Add(uint32(7), uint32(1023))
	f.Fuzz(func(t *testing.T, x, y uint32) {
		x %= cells
		y %= cells
		gx, gy := HDecodeCell(HEncodeCell(x, y))
		if gx != x || gy != y {
			t.Fatalf("Hilbert round trip (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	})
}

func FuzzZRangesCoverage(f *testing.F) {
	f.Add(0.1, 0.1, 0.3, 0.3, 0.15, 0.15)
	f.Add(0.0, 0.0, 1.0, 1.0, 0.5, 0.5)
	f.Add(0.9, 0.9, 0.95, 0.95, 0.91, 0.94)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, px, py float64) {
		clamp := func(v float64) float64 {
			if v != v || v < 0 { // NaN or negative
				return 0
			}
			if v > 1 {
				return 1
			}
			return v
		}
		x1, y1, x2, y2 = clamp(x1), clamp(y1), clamp(x2), clamp(y2)
		px, py = clamp(px), clamp(py)
		win := geo.Rect{
			MinX: min64(x1, x2), MinY: min64(y1, y2),
			MaxX: max64(x1, x2), MaxY: max64(y1, y2),
		}
		p := geo.Point{X: px, Y: py}
		ranges := ZRanges(win, geo.UnitRect, 8)
		if win.Contains(p) {
			k := ZEncode(p, geo.UnitRect)
			if !rangesCover(ranges, k) {
				t.Fatalf("window %v: key of %v not covered", win, p)
			}
		}
		// ranges are sorted and disjoint
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo <= ranges[i-1].Hi {
				t.Fatalf("overlapping ranges: %v", ranges)
			}
		}
	})
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
