package curve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elsi/internal/geo"
)

func TestZEncodeCellRoundTrip(t *testing.T) {
	cases := []struct{ x, y uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {cells - 1, cells - 1}, {12345, 54321},
	}
	for _, c := range cases {
		k := ZEncodeCell(c.x, c.y)
		gx, gy := ZDecodeCell(k)
		if gx != c.x || gy != c.y {
			t.Errorf("ZDecodeCell(ZEncodeCell(%d,%d)) = (%d,%d)", c.x, c.y, gx, gy)
		}
	}
}

func TestZEncodeKnown(t *testing.T) {
	// Interleaving (x=1, y=0) puts the bit in position 0; (x=0, y=1) in position 1.
	if k := ZEncodeCell(1, 0); k != 1 {
		t.Errorf("ZEncodeCell(1,0) = %d, want 1", k)
	}
	if k := ZEncodeCell(0, 1); k != 2 {
		t.Errorf("ZEncodeCell(0,1) = %d, want 2", k)
	}
	if k := ZEncodeCell(1, 1); k != 3 {
		t.Errorf("ZEncodeCell(1,1) = %d, want 3", k)
	}
}

func TestQuickZRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x %= cells
		y %= cells
		gx, gy := ZDecodeCell(ZEncodeCell(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHilbertRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x %= cells
		y %= cells
		gx, gy := HDecodeCell(HEncodeCell(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHilbertBijective(t *testing.T) {
	// On a tiny sub-grid, successive Hilbert indices must be unique.
	seen := map[uint64]bool{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			d := HEncodeCell(x, y)
			if seen[d] {
				t.Fatalf("duplicate Hilbert index %d at (%d,%d)", d, x, y)
			}
			seen[d] = true
		}
	}
}

func TestHilbertLocality(t *testing.T) {
	// Adjacent cells along the curve must be adjacent in the grid
	// (the defining property of the Hilbert curve). Verify along a
	// stretch of the curve at full order by decoding consecutive keys.
	prevX, prevY := HDecodeCell(0)
	for d := uint64(1); d < 4096; d++ {
		x, y := HDecodeCell(d)
		dx := int64(x) - int64(prevX)
		dy := int64(y) - int64(prevY)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("Hilbert step %d jumps from (%d,%d) to (%d,%d)", d, prevX, prevY, x, y)
		}
		prevX, prevY = x, y
	}
}

func TestZEncodeMonotoneInSpace(t *testing.T) {
	space := geo.UnitRect
	// A point and the same point shifted by a full cell in x must map
	// to different keys; identical points map to identical keys.
	p := geo.Point{X: 0.25, Y: 0.75}
	if ZEncode(p, space) != ZEncode(p, space) {
		t.Error("ZEncode not deterministic")
	}
	q := geo.Point{X: 0.25 + 2.0/cells, Y: 0.75}
	if ZEncode(p, space) == ZEncode(q, space) {
		t.Error("distinct cells map to the same Z key")
	}
}

func TestZEncodeClamps(t *testing.T) {
	space := geo.UnitRect
	k := ZEncode(geo.Point{X: -5, Y: -5}, space)
	if k != 0 {
		t.Errorf("below-space point key = %d, want 0", k)
	}
	k = ZEncode(geo.Point{X: 5, Y: 5}, space)
	if k != MaxKey {
		t.Errorf("above-space point key = %d, want MaxKey", k)
	}
}

func TestZDecodeInSpace(t *testing.T) {
	space := geo.Rect{MinX: -3, MinY: 2, MaxX: 7, MaxY: 12}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := geo.Point{
			X: space.MinX + rng.Float64()*space.Width(),
			Y: space.MinY + rng.Float64()*space.Height(),
		}
		k := ZEncode(p, space)
		q := ZDecode(k, space)
		cellW := space.Width() / cells
		cellH := space.Height() / cells
		if q.X > p.X || p.X-q.X > cellW*1.0001 {
			t.Fatalf("decode X off: p=%v q=%v", p, q)
		}
		if q.Y > p.Y || p.Y-q.Y > cellH*1.0001 {
			t.Fatalf("decode Y off: p=%v q=%v", p, q)
		}
	}
}

func TestZRangesCoverWindow(t *testing.T) {
	space := geo.UnitRect
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		cx, cy := rng.Float64(), rng.Float64()
		w := rng.Float64() * 0.2
		win := geo.Rect{MinX: cx - w, MinY: cy - w, MaxX: cx + w, MaxY: cy + w}
		ranges := ZRanges(win, space, 8)
		if len(ranges) == 0 {
			t.Fatalf("no ranges for window %v", win)
		}
		// every point in the window must have its key covered
		for i := 0; i < 100; i++ {
			p := geo.Point{
				X: win.MinX + rng.Float64()*win.Width(),
				Y: win.MinY + rng.Float64()*win.Height(),
			}
			if !space.Contains(p) {
				continue
			}
			k := ZEncode(p, space)
			if !rangesCover(ranges, k) {
				t.Fatalf("key %d of %v not covered by %d ranges", k, p, len(ranges))
			}
		}
		// ranges must be sorted and non-overlapping
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo <= ranges[i-1].Hi {
				t.Fatalf("ranges overlap: %v", ranges)
			}
		}
	}
}

func TestZRangesDisjointWindow(t *testing.T) {
	win := geo.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}
	if got := ZRanges(win, geo.UnitRect, 8); got != nil {
		t.Errorf("disjoint window produced ranges: %v", got)
	}
}

func TestMergeRanges(t *testing.T) {
	in := []KeyRange{{10, 20}, {0, 5}, {6, 9}, {30, 40}, {35, 50}}
	got := MergeRanges(in)
	want := []KeyRange{{0, 20}, {30, 50}}
	if len(got) != len(want) {
		t.Fatalf("MergeRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeRanges = %v, want %v", got, want)
		}
	}
}

func rangesCover(rs []KeyRange, k uint64) bool {
	for _, r := range rs {
		if k >= r.Lo && k <= r.Hi {
			return true
		}
	}
	return false
}

func BenchmarkZEncode(b *testing.B) {
	space := geo.UnitRect
	p := geo.Point{X: 0.37, Y: 0.61}
	for i := 0; i < b.N; i++ {
		_ = ZEncode(p, space)
	}
}

func BenchmarkHEncode(b *testing.B) {
	space := geo.UnitRect
	p := geo.Point{X: 0.37, Y: 0.61}
	for i := 0; i < b.N; i++ {
		_ = HEncode(p, space)
	}
}

func TestMergeRangesOverflowGuard(t *testing.T) {
	// a range ending at MaxUint64 must not wrap when merging
	in := []KeyRange{{0, ^uint64(0)}, {5, 10}}
	got := MergeRanges(in)
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != ^uint64(0) {
		t.Errorf("MergeRanges with MaxUint64 = %v", got)
	}
}

func TestZCellInBox(t *testing.T) {
	zmin := ZEncodeCell(2, 3)
	zmax := ZEncodeCell(6, 8)
	if !ZCellInBox(ZEncodeCell(4, 5), zmin, zmax) {
		t.Error("inside cell reported outside")
	}
	if ZCellInBox(ZEncodeCell(1, 5), zmin, zmax) {
		t.Error("x-outside cell reported inside")
	}
	if ZCellInBox(ZEncodeCell(4, 9), zmin, zmax) {
		t.Error("y-outside cell reported inside")
	}
	if !ZCellInBox(zmin, zmin, zmax) || !ZCellInBox(zmax, zmin, zmax) {
		t.Error("corners must be inside")
	}
}
