// Package curve implements the space-filling curves used by the
// map-and-sort indices: the Z-order (Morton) curve used by ZM and RSMI
// and the Hilbert curve used by the HRR bulk-loaded R-tree. Both curves
// map a 2-dimensional point in a reference rectangle to a one-dimensional
// uint64 key; sorting by the key yields the storage order the learned
// index models are trained on.
package curve

import (
	"elsi/internal/geo"
)

// Order is the number of bits used per dimension. 2*Order bits of key
// are produced, so Order must be at most 31 to fit a uint64 with room
// for arithmetic.
const Order = 20

// cells is the number of grid cells per dimension at the chosen order.
const cells = 1 << Order

// MaxKey is the largest key either curve can produce.
const MaxKey = uint64(cells)*uint64(cells) - 1

// quantize maps v in [lo, hi] to an integer cell in [0, cells-1].
//
//elsi:noalloc
func quantize(v, lo, hi float64) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return cells - 1
	}
	c := uint32(f * cells)
	if c >= cells {
		c = cells - 1
	}
	return c
}

// dequantize returns the low edge of cell c mapped back into [lo, hi].
func dequantize(c uint32, lo, hi float64) float64 {
	return lo + (float64(c)/float64(cells))*(hi-lo)
}

// interleave spreads the low Order bits of v so that there is a zero
// bit between every pair of consecutive bits.
//
//elsi:noalloc
func interleave(v uint32) uint64 {
	x := uint64(v) & 0x00000000ffffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// deinterleave compacts every other bit of x back into a uint32.
//
//elsi:noalloc
func deinterleave(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// ZEncodeCell packs integer grid coordinates into a Morton key.
//
//elsi:noalloc
func ZEncodeCell(cx, cy uint32) uint64 {
	return interleave(cx) | interleave(cy)<<1
}

// ZDecodeCell unpacks a Morton key into grid coordinates.
//
//elsi:noalloc
func ZDecodeCell(key uint64) (cx, cy uint32) {
	return deinterleave(key), deinterleave(key >> 1)
}

// ZEncode maps p, interpreted relative to the data-space rectangle
// space, to its Z-order key.
//
//elsi:noalloc
func ZEncode(p geo.Point, space geo.Rect) uint64 {
	cx := quantize(p.X, space.MinX, space.MaxX)
	cy := quantize(p.Y, space.MinY, space.MaxY)
	return ZEncodeCell(cx, cy)
}

// ZDecode maps a Z-order key back to the low corner of its grid cell.
func ZDecode(key uint64, space geo.Rect) geo.Point {
	cx, cy := ZDecodeCell(key)
	return geo.Point{
		X: dequantize(cx, space.MinX, space.MaxX),
		Y: dequantize(cy, space.MinY, space.MaxY),
	}
}

// HEncode maps p to its Hilbert-curve key relative to space. The
// Hilbert curve preserves locality better than the Z curve and is used
// for bulk-loading the HRR R-tree and for routing points to shards.
//
//elsi:noalloc
func HEncode(p geo.Point, space geo.Rect) uint64 {
	cx := quantize(p.X, space.MinX, space.MaxX)
	cy := quantize(p.Y, space.MinY, space.MaxY)
	return HEncodeCell(cx, cy)
}

// HEncodeCell converts integer grid coordinates to the Hilbert index
// using the classical rotate-and-fold construction.
//
//elsi:noalloc
func HEncodeCell(cx, cy uint32) uint64 {
	x, y := uint64(cx), uint64(cy)
	var rx, ry, d uint64
	for s := uint64(cells / 2); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += s * s * ((3 * rx) ^ ry)
		// rotate
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HDecodeCell converts a Hilbert index back to grid coordinates.
func HDecodeCell(d uint64) (cx, cy uint32) {
	var x, y uint64
	t := d
	for s := uint64(1); s < cells; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		// rotate
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return uint32(x), uint32(y)
}

// KeyRange is a contiguous, inclusive range [Lo, Hi] of curve keys.
type KeyRange struct {
	Lo, Hi uint64
}

// ZRanges decomposes a query window into a small set of Z-key ranges
// that together cover every grid cell intersecting the window. It
// recursively subdivides the key space quadrant by quadrant, emitting a
// whole subtree as one range when its cell region is fully inside the
// window, and stopping at maxDepth by over-approximating with the
// subtree's full range. The returned ranges are sorted and merged.
//
// Predict-and-scan indices use the ranges to restrict the portion of
// the sorted array a window query must visit.
func ZRanges(window geo.Rect, space geo.Rect, maxDepth int) []KeyRange {
	return ZRangesAppend(window, space, maxDepth, nil)
}

// ZRangesAppend is ZRanges writing into out (which may hold unrelated
// leading entries) and returning the extended slice. Query hot paths
// pass a reused buffer so the decomposition allocates nothing once the
// buffer has warmed up.
//
//elsi:noalloc
func ZRangesAppend(window geo.Rect, space geo.Rect, maxDepth int, out []KeyRange) []KeyRange {
	if !window.Intersects(space) {
		return out
	}
	if maxDepth > Order {
		maxDepth = Order
	}
	z := zranger{window: window, maxDepth: maxDepth, out: out}
	start := len(out)
	z.rec(0, 0, 0, space)
	merged := MergeRanges(z.out[start:])
	return z.out[:start+len(merged)]
}

// zranger carries the recursion state of the Z-range decomposition; a
// value receiver closure would force the output slice to escape on
// every call, a struct keeps the recursion allocation-free.
type zranger struct {
	window   geo.Rect
	maxDepth int
	out      []KeyRange
}

//elsi:noalloc
func (z *zranger) rec(cx, cy uint32, level int, cell geo.Rect) {
	if !z.window.Intersects(cell) {
		return
	}
	// Keys of the subtree rooted at this cell: the cell coordinates
	// fix the top 2*level bits of the key.
	shift := uint(2 * (Order - level))
	base := ZEncodeCell(cx<<(Order-level), cy<<(Order-level))
	span := uint64(1)<<shift - 1
	if z.window.ContainsRect(cell) || level >= z.maxDepth {
		z.out = append(z.out, KeyRange{base, base + span})
		return
	}
	mx := (cell.MinX + cell.MaxX) / 2
	my := (cell.MinY + cell.MaxY) / 2
	z.rec(cx*2, cy*2, level+1, geo.Rect{MinX: cell.MinX, MinY: cell.MinY, MaxX: mx, MaxY: my})
	z.rec(cx*2+1, cy*2, level+1, geo.Rect{MinX: mx, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: my})
	z.rec(cx*2, cy*2+1, level+1, geo.Rect{MinX: cell.MinX, MinY: my, MaxX: mx, MaxY: cell.MaxY})
	z.rec(cx*2+1, cy*2+1, level+1, geo.Rect{MinX: mx, MinY: my, MaxX: cell.MaxX, MaxY: cell.MaxY})
}

// MergeRanges sorts ranges by Lo and merges adjacent or overlapping
// entries. The input slice is modified in place.
//
//elsi:noalloc
func MergeRanges(rs []KeyRange) []KeyRange {
	if len(rs) <= 1 {
		return rs
	}
	// Ranges produced by the recursive decomposition above arrive in
	// key order already, but sort defensively for other callers.
	sortRanges(rs)
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		// a range ending at MaxUint64 covers every later range
		if last.Hi == ^uint64(0) || r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

//elsi:noalloc
func sortRanges(rs []KeyRange) {
	// insertion sort: range lists are short (tens of entries).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Lo < rs[j-1].Lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
