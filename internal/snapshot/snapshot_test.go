package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"elsi/internal/faults"
)

func TestWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, Name(42))
	payload := []byte("the learned index state")
	if err := Write(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), Name(1))
	if err := Write(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("payload %q, want empty", got)
	}
}

func TestTruncatedFileIsFormatError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, Name(1))
	if err := Write(path, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, headerSize, len(data) - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Read(path)
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncate to %d: want *FormatError, got %v", cut, err)
		}
	}
}

func TestBitFlipIsFormatError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, Name(1))
	if err := Write(path, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit and one trailer bit; both must be caught.
	for _, off := range []int{headerSize + 5, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Read(path)
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("flip at %d: want *FormatError, got %v", off, err)
		}
	}
}

func TestForeignVersionIsVersionError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, Name(1))
	if err := Write(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version field and fix the checksum so only the version
	// check can object.
	binary.LittleEndian.PutUint16(data[len(magic):], Version+1)
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, castagnoli))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Read(path)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("version error %+v", ve)
	}
}

func TestBadMagicIsFormatError(t *testing.T) {
	path := filepath.Join(t.TempDir(), Name(1))
	junk := append([]byte("NOTASNAP"), make([]byte, 32)...)
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Read(path)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FormatError, got %v", err)
	}
}

func TestLatestGCAndList(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: %v", err)
	}
	for _, lsn := range []uint64{3, 10, 7} {
		if err := Write(filepath.Join(dir, Name(lsn)), []byte{byte(lsn)}); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file (crashed write) must be invisible to Latest.
	if err := os.WriteFile(filepath.Join(dir, Name(99)+tmpSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, lsn, err := Latest(dir)
	if err != nil || lsn != 10 {
		t.Fatalf("Latest: %q %d %v", path, lsn, err)
	}
	if err := GC(dir, 10); err != nil {
		t.Fatal(err)
	}
	lsns, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 1 || lsns[0] != 10 {
		t.Fatalf("after GC: %v", lsns)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != Name(10) {
			t.Fatalf("GC left %s", e.Name())
		}
	}
}

func TestCrashPointWriteLeavesTargetUntouched(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, Name(5))
	if err := Write(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	faults.Enable("snapshot/write", faults.Fault{Mode: faults.ModeError})
	if err := Write(path, []byte("new")); err == nil {
		t.Fatal("write survived injected crash")
	}
	faults.Reset()
	got, err := Read(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("target damaged: %q %v", got, err)
	}
	// The half-written temp file is the expected crash debris; GC
	// sweeps it.
	if _, err := os.Stat(path + tmpSuffix); err != nil {
		t.Fatalf("expected crash debris: %v", err)
	}
	if err := GC(dir, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + tmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("GC left temp file: %v", err)
	}
}

func TestCrashPointRenameKeepsPrevious(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	old := filepath.Join(dir, Name(5))
	if err := Write(old, []byte("old")); err != nil {
		t.Fatal(err)
	}
	faults.Enable("snapshot/rename", faults.Fault{Mode: faults.ModeError})
	next := filepath.Join(dir, Name(9))
	if err := Write(next, []byte("new")); err == nil {
		t.Fatal("write survived injected crash")
	}
	faults.Reset()
	// The new snapshot was never installed: Latest still serves the old.
	path, lsn, err := Latest(dir)
	if err != nil || lsn != 5 {
		t.Fatalf("Latest after crashed rename: %q %d %v", path, lsn, err)
	}
	got, err := Read(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("previous snapshot damaged: %q %v", got, err)
	}
}
