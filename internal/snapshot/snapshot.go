// Package snapshot persists the trained state of a learned index: the
// store's SoA key/point columns plus the model parameters of whichever
// family built them, wrapped in a versioned, self-checksummed
// container. A snapshot plus the WAL tail after it is a complete
// recovery recipe that performs zero model training — the whole point
// of ELSI's cheap-rebuild premise is that restart cost is IO, not
// retraining.
//
// Container layout (little-endian):
//
//	8 bytes  magic "ELSISNAP"
//	u16      format version (currently 1)
//	u64      payload length
//	payload  (family-specific, see the Enc/Dec primitives)
//	u32      CRC32C over everything above
//
// Files are written to a temp name in the same directory, fsynced,
// atomically renamed into place, and the directory fsynced — a reader
// never observes a half-written snapshot, and a crash at any point
// leaves either the old snapshot or the new one, never neither.
// Snapshot files are named by the last LSN they cover
// ("snap-%016x.snap"); WAL segments at or below that LSN are garbage
// only after the rename is durable.
//
// Damage is classified with typed errors: *FormatError for a
// truncated, misframed, or bit-flipped container, *VersionError for a
// container written by a different format version. Crash points
// "snapshot/write" (truncated temp file) and "snapshot/rename"
// (complete temp file, never installed) simulate kills at the two
// interesting instants.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"elsi/internal/faults"
)

func init() {
	faults.Register("snapshot/write", "snapshot temp-file write: crash leaves a truncated temp file")
	faults.Register("snapshot/rename", "snapshot rename: crash leaves a complete temp file, old snapshot still live")
}

const (
	magic = "ELSISNAP"
	// Version is the current container format version.
	Version    = 1
	headerSize = len(magic) + 2 + 8
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FormatError reports a container that is not a valid snapshot:
// truncated, bad magic, misframed, or checksum mismatch.
type FormatError struct {
	// Path is the offending file.
	Path string
	// Reason says what check failed.
	Reason string
}

// Error implements error.
func (e *FormatError) Error() string {
	return fmt.Sprintf("snapshot: %s: %s", e.Path, e.Reason)
}

// VersionError reports a structurally valid container written by a
// different format version — distinguishable from corruption so
// operators see "upgrade needed", not "disk is bad".
type VersionError struct {
	// Path is the offending file.
	Path string
	// Got and Want are the container's and this build's versions.
	Got, Want uint16
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: %s: format version %d (this build reads %d)", e.Path, e.Got, e.Want)
}

// ErrNoSnapshot is returned by Latest when the directory holds no
// installed snapshot.
var ErrNoSnapshot = errors.New("snapshot: no snapshot found")

// Name returns the snapshot filename covering lsn.
func Name(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

func parseName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Write persists payload to path atomically: temp file in the same
// directory, write, fsync, rename, directory fsync. On any error the
// target is untouched (a crashed write can leave a stray temp file,
// which readers ignore and GC removes).
func Write(path string, payload []byte) error {
	buf := make([]byte, 0, headerSize+len(payload)+4)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := faults.Hit("snapshot/write"); err != nil {
		// Simulate a kill mid-write: half the container reaches the
		// temp file, the rename never happens.
		f.Write(buf[:len(buf)/2])
		f.Close()
		return fmt.Errorf("snapshot: crashed writing %s: %w", tmp, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := faults.Hit("snapshot/rename"); err != nil {
		// Simulate a kill between fsync and rename: the temp file is
		// complete and durable but never installed; the previous
		// snapshot remains the live one.
		return fmt.Errorf("snapshot: crashed before renaming %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// Read loads and verifies the container at path, returning its
// payload. Damage yields a *FormatError; a foreign format version a
// *VersionError.
func Read(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize+4 {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes", len(data))}
	}
	if string(data[:len(magic)]) != magic {
		return nil, &FormatError{Path: path, Reason: "bad magic"}
	}
	ver := binary.LittleEndian.Uint16(data[len(magic):])
	if ver != Version {
		return nil, &VersionError{Path: path, Got: ver, Want: Version}
	}
	plen := binary.LittleEndian.Uint64(data[len(magic)+2:])
	if plen != uint64(len(data)-headerSize-4) {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("payload length %d does not match file size %d", plen, len(data))}
	}
	body := data[:len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, &FormatError{Path: path, Reason: "checksum mismatch"}
	}
	payload := make([]byte, plen)
	copy(payload, data[headerSize:len(data)-4])
	return payload, nil
}

// Latest returns the path and covered LSN of the newest installed
// snapshot in dir (highest LSN in the filename). Temp files are
// ignored. ErrNoSnapshot when none exist.
func Latest(dir string) (string, uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	best := uint64(0)
	found := false
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseName(e.Name()); ok && (!found || lsn > best) {
			best = lsn
			found = true
		}
	}
	if !found {
		return "", 0, ErrNoSnapshot
	}
	return filepath.Join(dir, Name(best)), best, nil
}

// GC removes installed snapshots older than keepLSN and any stray
// temp files. Called only after the snapshot covering keepLSN is
// durable.
func GC(dir string, keepLSN uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			continue
		}
		if lsn, ok := parseName(name); ok && lsn < keepLSN {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}

// List returns the covered LSNs of installed snapshots in dir, sorted
// ascending.
func List(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
