package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"

	"elsi/internal/geo"
)

// Binary encode/decode primitives shared by every persisted structure:
// append-style writers over a []byte and a sticky-error reader. The
// encoding is little-endian, with uvarint counts and raw IEEE-754 bits
// for floats (bit-exact roundtrips, NaN and signed zero included —
// "byte-identical recovery" depends on it).
//
// The decoder is written for hostile input: every count is bounds-
// checked against the bytes actually remaining BEFORE any allocation,
// so a bit-flipped length cannot OOM the process or panic a slice
// index; it records the first failure and turns every later call into
// a no-op returning zero values.

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendU32 appends a fixed-width little-endian uint32.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendU64 appends a fixed-width little-endian uint64.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendUvarint appends an unsigned varint (counts, sizes).
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends a zig-zag signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendInt appends an int as a signed varint.
func AppendInt(b []byte, v int) []byte { return AppendVarint(b, int64(v)) }

// AppendF64 appends the raw IEEE-754 bits of v.
func AppendF64(b []byte, v float64) []byte {
	return AppendU64(b, math.Float64bits(v))
}

// AppendF64s appends a uvarint count followed by the raw bits of each
// element.
func AppendF64s(b []byte, vs []float64) []byte {
	b = AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendF64(b, v)
	}
	return b
}

// AppendInts appends a uvarint count followed by signed varints.
func AppendInts(b []byte, vs []int) []byte {
	b = AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendInt(b, v)
	}
	return b
}

// AppendPoint appends a point as two raw float64s.
func AppendPoint(b []byte, p geo.Point) []byte {
	b = AppendF64(b, p.X)
	return AppendF64(b, p.Y)
}

// AppendPoints appends a uvarint count followed by the points.
func AppendPoints(b []byte, ps []geo.Point) []byte {
	b = AppendUvarint(b, uint64(len(ps)))
	for _, p := range ps {
		b = AppendPoint(b, p)
	}
	return b
}

// AppendRect appends a rectangle as four raw float64s.
func AppendRect(b []byte, r geo.Rect) []byte {
	b = AppendF64(b, r.MinX)
	b = AppendF64(b, r.MinY)
	b = AppendF64(b, r.MaxX)
	return AppendF64(b, r.MaxY)
}

// AppendBytes appends a uvarint length followed by the bytes.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends a uvarint length followed by the string bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Dec is a sticky-error decoder over an encoded buffer. After the
// first failure every method returns a zero value and Err reports the
// failure, so decode paths read linearly without per-call checks.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b. The decoder does not copy b;
// decoded []byte/[]float64 values are freshly allocated, never views.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode failure, nil if none.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// Close fails the decode if trailing garbage remains, catching
// truncated-then-padded or misframed inputs.
func (d *Dec) Close() error {
	if d.err == nil && d.off != len(d.b) {
		d.failf("%d trailing bytes", len(d.b)-d.off)
	}
	return d.err
}

func (d *Dec) failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: decode at offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// need reports whether n more bytes are available, failing the decoder
// if not.
func (d *Dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.Remaining() < n {
		d.failf("need %d bytes, have %d", n, d.Remaining())
		return false
	}
	return true
}

// U8 decodes one byte.
func (d *Dec) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Bool decodes a one-byte bool, rejecting values other than 0/1.
func (d *Dec) Bool() bool {
	v := d.U8()
	if d.err == nil && v > 1 {
		d.failf("bad bool %d", v)
		return false
	}
	return v == 1
}

// U32 decodes a fixed-width little-endian uint32.
func (d *Dec) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

// U64 decodes a fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// Uvarint decodes an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.failf("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint decodes a zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.failf("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int decodes a signed varint into an int, rejecting values that do
// not fit.
func (d *Dec) Int() int {
	v := d.Varint()
	if d.err == nil && int64(int(v)) != v {
		d.failf("varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Count decodes a uvarint count of elements each occupying at least
// elemSize encoded bytes, bounds-checking against the remaining input
// before the caller allocates.
func (d *Dec) Count(elemSize int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if v > uint64(d.Remaining()/elemSize) {
		d.failf("count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

// F64 decodes raw IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// F64s decodes a counted []float64.
func (d *Dec) F64s() []float64 {
	n := d.Count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.F64()
	}
	return vs
}

// Ints decodes a counted []int.
func (d *Dec) Ints() []int {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// Point decodes a point.
func (d *Dec) Point() geo.Point {
	x := d.F64()
	y := d.F64()
	return geo.Point{X: x, Y: y}
}

// Points decodes a counted []geo.Point.
func (d *Dec) Points() []geo.Point {
	n := d.Count(16)
	if d.err != nil || n == 0 {
		return nil
	}
	ps := make([]geo.Point, n)
	for i := range ps {
		ps[i] = d.Point()
	}
	return ps
}

// Rect decodes a rectangle.
func (d *Dec) Rect() geo.Rect {
	minX := d.F64()
	minY := d.F64()
	maxX := d.F64()
	maxY := d.F64()
	return geo.Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// Bytes decodes a counted []byte (a fresh copy, not a view).
func (d *Dec) Bytes() []byte {
	n := d.Count(1)
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[d.off:d.off+n])
	d.off += n
	return p
}

// String decodes a counted string.
func (d *Dec) String() string {
	n := d.Count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
