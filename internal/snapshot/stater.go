package snapshot

// Stater is implemented by every index family that can round-trip its
// trained state through a snapshot. StateAppend serializes the
// family's full post-build state — SoA columns, trained model
// parameters, build stats — onto b using this package's Append
// primitives; RestoreState rebuilds that state on a freshly
// constructed (same-configuration) instance WITHOUT any training.
//
// The configuration itself (space, builders, fanout — anything that
// holds functions) is never serialized: restore goes through the same
// factory that built the original, then overlays the trained state.
// RestoreState must validate hostile input: any structural
// inconsistency returns an error and leaves the receiver unusable
// rather than silently wrong.
type Stater interface {
	StateAppend(b []byte) ([]byte, error)
	RestoreState(data []byte) error
}
