// Package engine is the transport-agnostic serving facade over the
// update processor (rebuild.Processor) and the batched query engine
// (qserve). Network handlers — HTTP, the binary TCP protocol, or an
// in-process client — call its per-request methods concurrently; the
// engine funnels concurrently arriving queries of the same kind into
// one qserve batch via a small accumulator that flushes when the
// batch fills or a deadline expires, whichever comes first. Updates
// go straight to the processor (its write lock serializes them; there
// is nothing to amortize).
//
// The engine also owns the serving-side operational concerns the
// transports share: admission control (a bounded in-flight request
// count; excess requests are rejected with ErrOverloaded rather than
// queued without bound), graceful shutdown (Close rejects new
// requests, flushes the accumulated batches, and waits for every
// admitted request to finish), and a Stats snapshot combining the
// processor's rebuild/fault counters with the serve-side ones.
package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/qcache"
	"elsi/internal/rebuild"
)

func init() {
	faults.Register("qcache/invalidate", "advisory cache drop after an update (losing it leaves invalidation to the generation check)")
}

// ErrOverloaded rejects a request when the bounded in-flight count is
// exhausted. Transports map it to their backpressure signal (HTTP 429,
// the protocol's overloaded status byte); clients may retry later.
var ErrOverloaded = errors.New("engine: overloaded")

// ErrClosed rejects requests arriving after Close began.
var ErrClosed = errors.New("engine: closed")

// Config sizes the engine. The zero value selects the defaults.
type Config struct {
	// Workers bounds the qserve worker count per batch
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// MaxBatch flushes an accumulating batch when it reaches this many
	// queries (default 64).
	MaxBatch int
	// FlushInterval flushes a non-empty batch this long after its
	// first query arrived (default 200µs), bounding the latency cost
	// of batching under low concurrency.
	FlushInterval time.Duration
	// MaxInFlight bounds the admitted-but-unfinished request count
	// across all operations (default 4096). Beyond it, requests fail
	// with ErrOverloaded.
	MaxInFlight int
	// Cache, when non-nil, enables the hot-region result cache for
	// point and small-window queries (see qcache): hits are answered
	// before the batching accumulator, turning repeated reads on
	// skewed traffic into nanosecond lookups. Invalidation is by the
	// backend's update generations — stale entries are never served.
	// The zero qcache.Config selects its defaults.
	Cache *qcache.Config
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	return c
}

// knnReq carries one kNN request through the accumulator: unlike
// points and windows, each kNN query brings its own k.
type knnReq struct {
	q geo.Point
	k int
}

// Engine is the serving facade. All methods are safe for concurrent
// use. Create with New or NewWithBackend; the zero value is not
// usable.
type Engine struct {
	be  Backend
	sys *core.System // optional: selector counters for Stats
	cfg Config

	cache *qcache.Cache // nil = caching off

	// mu guards admission state and the accumulators. It is a leaf
	// lock on the engine's fast path: enqueue and flush release it
	// before blocking on batch results or downstream locks.
	//
	//elsi:lockorder
	mu       sync.Mutex
	closed   bool
	inFlight int
	wg       sync.WaitGroup // one unit per admitted request

	// Lock-free mirrors of the admission/accumulator gauges, written
	// under mu and read by Stats, so /stats polling never contends
	// with the flush path (scraping under load used to show up as
	// p999 spikes).
	inFlightA atomic.Int64
	closedA   atomic.Bool

	points  acc[geo.Point, bool]
	windows acc[geo.Rect, []geo.Point]
	knns    acc[knnReq, []geo.Point]

	// serve counters (monotonic; read without the lock by Stats)
	cPoints, cWindows, cKNNs  atomic.Int64
	cInserts, cDeletes        atomic.Int64
	cBatches, cBatchedQueries atomic.Int64
	cFlushSize, cFlushTimer   atomic.Int64
	cFlushClose               atomic.Int64
	cOverloads                atomic.Int64
}

// New wraps proc in a Single backend. sys, when non-nil, is the
// builder behind the processor's index family; its selection and
// fallback counters are surfaced through Stats.
func New(proc *rebuild.Processor, sys *core.System, cfg Config) *Engine {
	return NewWithBackend(NewSingle(proc, cfg.Workers), sys, cfg)
}

// NewWithBackend serves an arbitrary backend — a Single processor or
// the sharded router — behind the same accumulator and admission
// machinery.
func NewWithBackend(be Backend, sys *core.System, cfg Config) *Engine {
	e := &Engine{be: be, sys: sys, cfg: cfg.withDefaults()}
	if cfg.Cache != nil {
		e.cache = qcache.New(*cfg.Cache)
	}
	e.points.init(e, func(qs []geo.Point) []bool { return e.be.PointBatch(qs, nil) })
	e.windows.init(e, func(qs []geo.Rect) [][]geo.Point { return e.be.WindowBatch(qs, nil) })
	e.knns.init(e, func(reqs []knnReq) [][]geo.Point {
		qs := make([]geo.Point, len(reqs))
		ks := make([]int, len(reqs))
		for i, r := range reqs {
			qs[i], ks[i] = r.q, r.k
		}
		return e.be.KNNVarBatch(qs, ks, nil)
	})
	return e
}

// Backend exposes the storage side the engine serves.
func (e *Engine) Backend() Backend { return e.be }

// Processor exposes the update processor behind a Single backend (for
// transports that need to reach past the facade, e.g. a warmup path).
// It returns nil when the engine serves a sharded backend.
func (e *Engine) Processor() *rebuild.Processor {
	if s, ok := e.be.(*Single); ok {
		return s.Processor()
	}
	return nil
}

// --- admission ----------------------------------------------------------

// admit reserves an in-flight slot. Every admitted request must call
// release exactly once. Admission and Close share the mutex, so after
// Close marks the engine closed no request can add to the WaitGroup it
// is about to wait on.
func (e *Engine) admit() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.inFlight >= e.cfg.MaxInFlight {
		e.cOverloads.Add(1)
		return ErrOverloaded
	}
	e.inFlight++
	e.inFlightA.Store(int64(e.inFlight))
	e.wg.Add(1)
	return nil
}

func (e *Engine) release() {
	e.mu.Lock()
	e.inFlight--
	e.inFlightA.Store(int64(e.inFlight))
	e.mu.Unlock()
	e.wg.Done()
}

// --- queries ------------------------------------------------------------

// PointQuery reports whether pt is currently stored.
//
// With the result cache on, the lookup happens before the batching
// accumulator: a hit costs two atomic loads and one shard read-lock
// instead of a batch round-trip. The generation is read BEFORE the
// uncached answer is computed, so a mutation racing the fill only ever
// invalidates the entry (see qcache's package comment).
func (e *Engine) PointQuery(pt geo.Point) (bool, error) {
	if err := e.admit(); err != nil {
		return false, err
	}
	defer e.release()
	e.cPoints.Add(1)
	if e.cache == nil {
		return e.points.enqueue(pt), nil
	}
	k := qcache.PointKey(pt)
	gen := e.be.PointGen(pt)
	if v, ok := e.cache.GetPoint(k, gen); ok {
		return v, nil
	}
	v := e.points.enqueue(pt)
	e.cache.PutPoint(k, gen, v)
	return v, nil
}

// WindowQuery returns the points inside win. The returned slice is
// owned by the caller.
//
// Small windows (qcache.Config.MaxWindowArea) go through the result
// cache; their entries are stamped with the backend's global
// generation, so any update anywhere invalidates them — coarser than
// the per-shard point stamps, but window keys cannot name their owning
// shards without decomposing the window on every lookup.
func (e *Engine) WindowQuery(win geo.Rect) ([]geo.Point, error) {
	if err := e.admit(); err != nil {
		return nil, err
	}
	defer e.release()
	e.cWindows.Add(1)
	if e.cache == nil || !e.cache.Cacheable(win) {
		return e.windows.enqueue(win), nil
	}
	k := qcache.WindowKey(win)
	gen := e.be.GlobalGen()
	if out, ok := e.cache.GetWindowAppend(k, gen, nil); ok {
		return out, nil
	}
	res := e.windows.enqueue(win)
	e.cache.PutWindow(k, gen, res)
	return res, nil
}

// KNN returns the k nearest stored points to q (fewer when fewer are
// stored, none for k <= 0). The returned slice is owned by the caller.
func (e *Engine) KNN(q geo.Point, k int) ([]geo.Point, error) {
	if err := e.admit(); err != nil {
		return nil, err
	}
	defer e.release()
	e.cKNNs.Add(1)
	return e.knns.enqueue(knnReq{q: q, k: k}), nil
}

// --- updates ------------------------------------------------------------

// Insert adds pt (a no-op if it is already stored; the processor keeps
// set semantics). It reports whether the update triggered a rebuild.
func (e *Engine) Insert(pt geo.Point) (bool, error) {
	if err := e.admit(); err != nil {
		return false, err
	}
	defer e.release()
	e.cInserts.Add(1)
	reb := e.be.Insert(pt)
	e.dropCached(pt)
	return reb, nil
}

// dropCached eagerly frees the cache slot of a just-updated point.
// Advisory only — the generation bump that happened inside the backend
// already makes any entry for pt unservable, so the injected loss of
// this signal ("qcache/invalidate") must never produce a stale read;
// the chaos suite asserts exactly that.
func (e *Engine) dropCached(pt geo.Point) {
	if e.cache == nil {
		return
	}
	if err := faults.Hit("qcache/invalidate"); err != nil {
		return // invalidation signal dropped/delayed: generations cover us
	}
	e.cache.Drop(qcache.PointKey(pt))
}

// Delete removes pt by value. It reports whether the update triggered
// a rebuild.
func (e *Engine) Delete(pt geo.Point) (bool, error) {
	if err := e.admit(); err != nil {
		return false, err
	}
	defer e.release()
	e.cDeletes.Add(1)
	reb := e.be.Delete(pt)
	e.dropCached(pt)
	return reb, nil
}

// --- shutdown -----------------------------------------------------------

// Close drains the engine: new requests are rejected with ErrClosed,
// the batches accumulated so far are flushed immediately, and Close
// blocks until every admitted request has finished. Safe to call more
// than once. The underlying processor stays usable (a background
// rebuild in flight is not interrupted — callers that need it settled
// use Processor().WaitRebuild()).
func (e *Engine) Close() {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.closedA.Store(true)
	pb := e.points.detachLocked()
	wb := e.windows.detachLocked()
	kb := e.knns.detachLocked()
	e.mu.Unlock()
	if !already {
		for _, flushed := range []bool{e.points.runIf(pb), e.windows.runIf(wb), e.knns.runIf(kb)} {
			if flushed {
				e.cFlushClose.Add(1)
			}
		}
	}
	e.wg.Wait()
}

// --- stats --------------------------------------------------------------

// Stats is a point-in-time snapshot of the engine and the processor
// behind it, shaped for a /stats endpoint (JSON-encodable).
type Stats struct {
	// index/data state
	Len                 int  // stored points
	PendingUpdates      int  // delta records across both layers
	Rebuilding          bool // background rebuild in flight
	Rebuilds            int  // completed full rebuilds
	RebuildFailures     int
	RebuildRetries      int
	ConsecutiveFailures int
	BreakerOpen         bool

	// request counters
	PointQueries  int64
	WindowQueries int64
	KNNQueries    int64
	Inserts       int64
	Deletes       int64

	// batching behaviour
	Batches        int64 // qserve batches executed
	BatchedQueries int64 // queries carried by those batches
	FlushBySize    int64 // batches flushed because they filled
	FlushByTimer   int64 // batches flushed by the deadline
	FlushByClose   int64 // batches flushed during Close
	Queued         int   // queries sitting in accumulators right now
	InFlight       int   // admitted, unfinished requests
	Overloads      int64 // requests rejected with ErrOverloaded
	Closed         bool

	// model-build cost decomposition of the current index, when the
	// family records it (ZM, MLI, LISA, RSMI)
	BuildStats []base.BuildStats `json:",omitempty"`
	// selector counters, when the engine was given a core.System
	Selections map[string]int `json:",omitempty"`
	Fallbacks  map[string]int `json:",omitempty"`

	// result cache counters, when the cache is enabled
	Cache *qcache.Stats `json:",omitempty"`

	// per-shard breakdown: one entry for a Single backend, one per
	// shard for the sharded router (including its scatter/prune
	// counters)
	Shards []ShardStats `json:",omitempty"`
}

// Stats snapshots the counters. It is safe to call while requests are
// blocked inside queries, and takes no engine lock at all: every gauge
// has a lock-free mirror, so a /stats scrape never contends with the
// admission or accumulator-flush paths (the mutex here was visible as
// p999 spikes when polling during load).
func (e *Engine) Stats() Stats {
	st := Stats{
		Queued:   int(e.points.queued.Load() + e.windows.queued.Load() + e.knns.queued.Load()),
		InFlight: int(e.inFlightA.Load()),
		Closed:   e.closedA.Load(),
	}

	st.PointQueries = e.cPoints.Load()
	st.WindowQueries = e.cWindows.Load()
	st.KNNQueries = e.cKNNs.Load()
	st.Inserts = e.cInserts.Load()
	st.Deletes = e.cDeletes.Load()
	st.Batches = e.cBatches.Load()
	st.BatchedQueries = e.cBatchedQueries.Load()
	st.FlushBySize = e.cFlushSize.Load()
	st.FlushByTimer = e.cFlushTimer.Load()
	st.FlushByClose = e.cFlushClose.Load()
	st.Overloads = e.cOverloads.Load()

	bs := e.be.BackendStats()
	st.Len = bs.Len
	st.PendingUpdates = bs.PendingUpdates
	st.Rebuilding = bs.Rebuilding
	st.Rebuilds = bs.Rebuilds
	st.RebuildFailures = bs.RebuildFailures
	st.RebuildRetries = bs.RebuildRetries
	st.ConsecutiveFailures = bs.ConsecutiveFailures
	st.BreakerOpen = bs.BreakerOpen
	st.BuildStats = bs.BuildStats
	st.Shards = bs.Shards

	if e.sys != nil {
		st.Selections = e.sys.Selections()
		st.Fallbacks = e.sys.Fallbacks()
	}
	if e.cache != nil {
		cs := e.cache.CacheStats()
		st.Cache = &cs
	}
	return st
}

// --- batching accumulator -----------------------------------------------

// batch is one accumulating group of same-kind queries. The goroutine
// that flushes it runs the whole batch and closes done; every waiter
// then reads its answer at its enqueue position.
type batch[Q, R any] struct {
	qs    []Q
	out   []R
	timer *time.Timer
	done  chan struct{}
}

// acc accumulates queries of one kind. All fields are guarded by the
// owning engine's mutex except run, set once at init, and queued, a
// lock-free mirror of the accumulating batch's length (written under
// the mutex, read by Stats without it).
type acc[Q, R any] struct {
	e      *Engine
	run    func([]Q) []R
	cur    *batch[Q, R]
	queued atomic.Int64
}

func (a *acc[Q, R]) init(e *Engine, run func([]Q) []R) {
	a.e = e
	a.run = run
}

// enqueue adds q to the current batch — creating one and arming its
// deadline if the accumulator is empty — and blocks until the batch
// runs, returning this query's answer. The batch that fills to
// MaxBatch is flushed immediately by the filling goroutine.
func (a *acc[Q, R]) enqueue(q Q) R {
	a.e.mu.Lock()
	b := a.cur
	if b == nil {
		b = &batch[Q, R]{done: make(chan struct{})}
		a.cur = b
		b.timer = time.AfterFunc(a.e.cfg.FlushInterval, func() { a.flushDeadline(b) })
	}
	i := len(b.qs)
	b.qs = append(b.qs, q)
	full := len(b.qs) >= a.e.cfg.MaxBatch
	if full {
		a.detachBatchLocked(b)
	} else {
		a.queued.Store(int64(len(b.qs)))
	}
	a.e.mu.Unlock()
	if full {
		a.e.cFlushSize.Add(1)
		a.runBatch(b)
	}
	<-b.done
	return b.out[i]
}

// flushDeadline is the timer callback: flush b if it is still the
// accumulating batch (a size flush or Close may have beaten the timer).
func (a *acc[Q, R]) flushDeadline(b *batch[Q, R]) {
	a.e.mu.Lock()
	mine := a.cur == b
	if mine {
		a.detachBatchLocked(b)
	}
	a.e.mu.Unlock()
	if !mine {
		return // a size flush or Close beat the timer
	}
	a.e.cFlushTimer.Add(1)
	a.runBatch(b)
}

// detachLocked removes and returns the accumulating batch, if any.
// Called with the engine mutex held.
func (a *acc[Q, R]) detachLocked() *batch[Q, R] {
	b := a.cur
	if b != nil {
		a.detachBatchLocked(b)
	}
	return b
}

func (a *acc[Q, R]) detachBatchLocked(b *batch[Q, R]) {
	a.cur = nil
	a.queued.Store(0)
	if b.timer != nil {
		b.timer.Stop()
	}
}

// runIf runs a detached batch, reporting whether there was one.
func (a *acc[Q, R]) runIf(b *batch[Q, R]) bool {
	if b == nil {
		return false
	}
	a.runBatch(b)
	return true
}

// runBatch executes a detached batch and releases its waiters.
func (a *acc[Q, R]) runBatch(b *batch[Q, R]) {
	b.out = a.run(b.qs)
	a.e.cBatches.Add(1)
	a.e.cBatchedQueries.Add(int64(len(b.qs)))
	close(b.done)
}

