package engine

import (
	"sync/atomic"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/geo"
	"elsi/internal/monitor"
	"elsi/internal/qserve"
	"elsi/internal/rebuild"
)

// Backend is the storage side of the engine: the batched query surface
// plus updates and a stats snapshot. The engine's accumulators flush
// into it; transports never see it directly. Two implementations
// exist — Single (one rebuild.Processor behind a qserve batch engine)
// and the sharded router in internal/shard, which scatters each batch
// across many processors. Batch methods must write answer i at input
// position i so the engine's waiters can pick their results by enqueue
// index, and must be safe for concurrent use.
type Backend interface {
	PointBatch(pts []geo.Point, out []bool) []bool
	WindowBatch(wins []geo.Rect, out [][]geo.Point) [][]geo.Point
	KNNVarBatch(qs []geo.Point, ks []int, out [][]geo.Point) [][]geo.Point
	// Insert and Delete report whether the update triggered a rebuild
	// (on any shard).
	Insert(p geo.Point) bool
	Delete(p geo.Point) bool
	// PointGen returns the update generation of the processor that owns
	// p's location, and GlobalGen a monotone aggregate over all owned
	// processors (equal values ⟺ no visible mutation in between). The
	// result cache stamps entries with them; see rebuild.UpdateGen for
	// the protocol. Both must be cheap, lock-free, and allocation-free.
	PointGen(p geo.Point) uint64
	GlobalGen() uint64
	BackendStats() BackendStats
}

// ShardStats describes one processor behind a backend: its data and
// rebuild state plus the traffic the backend routed to it. A single
// backend reports exactly one entry; the sharded router reports one
// per shard, where the query counters expose the scatter behaviour —
// WindowQueries counts the window scatters that visited the shard and
// WindowsPruned the ones the Hilbert-range overlap test skipped, and
// likewise for kNN and its MINDIST bound.
type ShardStats struct {
	// KeyLo and KeyHi are the shard's Hilbert key range under the
	// router's partitioning; absent for a single backend.
	KeyLo uint64 `json:",omitempty"`
	KeyHi uint64 `json:",omitempty"`

	Len                 int
	PendingUpdates      int
	Rebuilding          bool
	Rebuilds            int
	RebuildFailures     int
	RebuildRetries      int
	ConsecutiveFailures int
	BreakerOpen         bool

	PointQueries  int64
	WindowQueries int64
	KNNQueries    int64
	Inserts       int64
	Deletes       int64
	WindowsPruned int64
	KNNsPruned    int64

	BuildStats []base.BuildStats `json:",omitempty"`

	// Monitor is the shard's live workload snapshot, present when a
	// monitor.Stats is installed on the processor. Note it observes the
	// traffic that reaches the index — with the result cache on, cache
	// hits are answered above it by design (the index should be tuned
	// for the queries it actually serves).
	Monitor *monitor.Snapshot `json:",omitempty"`
	// Workload is the adopted per-shard profile driving method
	// re-selection, when the adapter has one; WorkloadSampled and
	// WorkloadApplied count its resamples and adoptions.
	Workload        *core.WorkloadProfile `json:",omitempty"`
	WorkloadSampled int                   `json:",omitempty"`
	WorkloadApplied int                   `json:",omitempty"`
}

// ProcStats fills the processor-derived fields of a ShardStats; the
// caller adds its own routing counters on top.
func ProcStats(p *rebuild.Processor) ShardStats {
	st := ShardStats{
		Len:                 p.Len(),
		PendingUpdates:      p.PendingUpdates(),
		Rebuilding:          p.Rebuilding(),
		Rebuilds:            p.Rebuilds(),
		RebuildFailures:     p.Failures(),
		RebuildRetries:      p.Retries(),
		ConsecutiveFailures: p.ConsecutiveFailures(),
		BreakerOpen:         p.BreakerOpen(),
	}
	if bs, ok := p.Index().(interface{ Stats() []base.BuildStats }); ok {
		st.BuildStats = bs.Stats()
	}
	if p.Monitor != nil {
		snap := p.Monitor.Snapshot()
		st.Monitor = &snap
	}
	if p.Workload != nil {
		st.WorkloadSampled, st.WorkloadApplied = p.Workload.Counts()
		if prof := p.Workload.Current(); prof.Derived {
			st.Workload = &prof
		}
	}
	return st
}

// BackendStats is the backend half of the engine's Stats snapshot: the
// per-shard breakdown plus aggregates over it. Counter-like fields sum
// across shards; Rebuilding and BreakerOpen report whether any shard
// is in that state; ConsecutiveFailures is the worst shard's streak.
type BackendStats struct {
	Len                 int
	PendingUpdates      int
	Rebuilding          bool
	Rebuilds            int
	RebuildFailures     int
	RebuildRetries      int
	ConsecutiveFailures int
	BreakerOpen         bool

	BuildStats []base.BuildStats `json:",omitempty"`
	Shards     []ShardStats      `json:",omitempty"`
}

// AggregateShards folds per-shard stats into a BackendStats, keeping
// the breakdown attached. With exactly one shard the aggregate also
// adopts its BuildStats (the flat legacy shape of /stats); with many,
// build stats stay per-shard.
func AggregateShards(shards []ShardStats) BackendStats {
	bs := BackendStats{Shards: shards}
	for i := range shards {
		s := &shards[i]
		bs.Len += s.Len
		bs.PendingUpdates += s.PendingUpdates
		bs.Rebuilding = bs.Rebuilding || s.Rebuilding
		bs.Rebuilds += s.Rebuilds
		bs.RebuildFailures += s.RebuildFailures
		bs.RebuildRetries += s.RebuildRetries
		if s.ConsecutiveFailures > bs.ConsecutiveFailures {
			bs.ConsecutiveFailures = s.ConsecutiveFailures
		}
		bs.BreakerOpen = bs.BreakerOpen || s.BreakerOpen
	}
	if len(shards) == 1 {
		bs.BuildStats = shards[0].BuildStats
	}
	return bs
}

// opCounters tracks the per-shard traffic a backend routed somewhere.
type opCounters struct {
	points, windows, knns   atomic.Int64
	inserts, deletes        atomic.Int64
	windowSkips, knnsSkips  atomic.Int64
}

//elsi:noalloc
func (c *opCounters) fill(st *ShardStats) {
	st.PointQueries = c.points.Load()
	st.WindowQueries = c.windows.Load()
	st.KNNQueries = c.knns.Load()
	st.Inserts = c.inserts.Load()
	st.Deletes = c.deletes.Load()
	st.WindowsPruned = c.windowSkips.Load()
	st.KNNsPruned = c.knnsSkips.Load()
}

// Single is the unsharded backend: one rebuild.Processor served
// through a qserve batch engine. New wires it by default.
type Single struct {
	proc *rebuild.Processor
	qe   *qserve.Engine
	c    opCounters
}

// NewSingle wraps proc with the given qserve worker bound
// (0 = GOMAXPROCS, 1 = serial).
func NewSingle(proc *rebuild.Processor, workers int) *Single {
	return &Single{proc: proc, qe: qserve.New(proc, workers)}
}

// Processor exposes the wrapped update processor.
func (s *Single) Processor() *rebuild.Processor { return s.proc }

func (s *Single) PointBatch(pts []geo.Point, out []bool) []bool {
	s.c.points.Add(int64(len(pts)))
	return s.qe.PointBatch(pts, out)
}

func (s *Single) WindowBatch(wins []geo.Rect, out [][]geo.Point) [][]geo.Point {
	s.c.windows.Add(int64(len(wins)))
	return s.qe.WindowBatch(wins, out)
}

func (s *Single) KNNVarBatch(qs []geo.Point, ks []int, out [][]geo.Point) [][]geo.Point {
	s.c.knns.Add(int64(len(qs)))
	return s.qe.KNNVarBatch(qs, ks, out)
}

func (s *Single) Insert(p geo.Point) bool {
	s.c.inserts.Add(1)
	return s.proc.Insert(p)
}

func (s *Single) Delete(p geo.Point) bool {
	s.c.deletes.Add(1)
	return s.proc.Delete(p)
}

// PointGen implements Backend: one processor owns everything.
//
//elsi:noalloc
func (s *Single) PointGen(geo.Point) uint64 { return s.proc.UpdateGen() }

// GlobalGen implements Backend.
//
//elsi:noalloc
func (s *Single) GlobalGen() uint64 { return s.proc.UpdateGen() }

func (s *Single) BackendStats() BackendStats {
	st := ProcStats(s.proc)
	s.c.fill(&st)
	return AggregateShards([]ShardStats{st})
}
