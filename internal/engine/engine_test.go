package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rebuild"
)

func xKey(p geo.Point) float64 { return p.X }

// newTestProcessor builds a processor with pending overlay state, so
// engine queries exercise the layered merge/filter paths.
func newTestProcessor(t *testing.T, n int, seed int64) *rebuild.Processor {
	t.Helper()
	pts := dataset.MustGenerate(dataset.Uniform, n, seed)
	proc, err := rebuild.NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && i*11 < n; i++ {
		proc.Delete(pts[i*11])
		proc.Insert(geo.Point{X: float64(i) / 40, Y: 0.015})
	}
	return proc
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineMatchesSerial floods the engine from many goroutines and
// checks every batched answer against its serial processor counterpart,
// then audits the counters. A small MaxBatch and a short deadline make
// both flush paths fire.
func TestEngineMatchesSerial(t *testing.T) {
	proc := newTestProcessor(t, 1500, 7)
	e := New(proc, nil, Config{MaxBatch: 4, FlushInterval: time.Millisecond})

	const goroutines = 8
	const perG = 60
	type queryCase struct {
		kind int // 0 point, 1 window, 2 knn
		pt   geo.Point
		win  geo.Rect
		k    int
	}
	// one deterministic query tape per goroutine, answered serially first
	tapes := make([][]queryCase, goroutines)
	wantBool := make([][]bool, goroutines)
	wantPts := make([][][]geo.Point, goroutines)
	for g := range tapes {
		rng := rand.New(rand.NewSource(int64(100 + g)))
		tapes[g] = make([]queryCase, perG)
		wantBool[g] = make([]bool, perG)
		wantPts[g] = make([][]geo.Point, perG)
		for i := range tapes[g] {
			qc := queryCase{kind: rng.Intn(3)}
			switch qc.kind {
			case 0:
				qc.pt = geo.Point{X: rng.Float64(), Y: rng.Float64()}
				wantBool[g][i] = proc.PointQuery(qc.pt)
			case 1:
				x, y := rng.Float64(), rng.Float64()
				qc.win = geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*0.3, MaxY: y + rng.Float64()*0.3}
				wantPts[g][i] = append([]geo.Point(nil), proc.WindowQuery(qc.win)...)
			default:
				qc.pt = geo.Point{X: rng.Float64(), Y: rng.Float64()}
				qc.k = rng.Intn(20) - 2 // includes k <= 0
				wantPts[g][i] = append([]geo.Point(nil), proc.KNN(qc.pt, qc.k)...)
			}
			tapes[g][i] = qc
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, qc := range tapes[g] {
				switch qc.kind {
				case 0:
					got, err := e.PointQuery(qc.pt)
					if err != nil {
						t.Errorf("g%d q%d: PointQuery: %v", g, i, err)
					} else if got != wantBool[g][i] {
						t.Errorf("g%d q%d: PointQuery = %v, want %v", g, i, got, wantBool[g][i])
					}
				case 1:
					got, err := e.WindowQuery(qc.win)
					if err != nil {
						t.Errorf("g%d q%d: WindowQuery: %v", g, i, err)
					} else if !samePoints(got, wantPts[g][i]) {
						t.Errorf("g%d q%d: WindowQuery diverged: got %d pts, want %d", g, i, len(got), len(wantPts[g][i]))
					}
				default:
					got, err := e.KNN(qc.pt, qc.k)
					if err != nil {
						t.Errorf("g%d q%d: KNN: %v", g, i, err)
					} else if !samePoints(got, wantPts[g][i]) {
						t.Errorf("g%d q%d: KNN diverged: got %d pts, want %d", g, i, len(got), len(wantPts[g][i]))
					}
				}
			}
		}()
	}
	wg.Wait()
	e.Close()

	st := e.Stats()
	total := st.PointQueries + st.WindowQueries + st.KNNQueries
	if total != goroutines*perG {
		t.Errorf("query counters sum to %d, want %d", total, goroutines*perG)
	}
	if st.BatchedQueries != total {
		t.Errorf("BatchedQueries = %d, want %d", st.BatchedQueries, total)
	}
	if st.Batches == 0 || st.Batches > st.BatchedQueries {
		t.Errorf("implausible batch count %d for %d queries", st.Batches, st.BatchedQueries)
	}
	if got := st.FlushBySize + st.FlushByTimer + st.FlushByClose; got != st.Batches {
		t.Errorf("flush counters sum to %d, want Batches = %d", got, st.Batches)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("after drain: InFlight = %d, Queued = %d, want 0, 0", st.InFlight, st.Queued)
	}
	if !st.Closed {
		t.Error("Stats().Closed = false after Close")
	}
}

func samePoints(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDeadlineFlush pins the latency bound: a lone query in a huge
// batch must still be answered by the deadline flush.
func TestDeadlineFlush(t *testing.T) {
	proc := newTestProcessor(t, 200, 9)
	e := New(proc, nil, Config{MaxBatch: 1 << 20, FlushInterval: 2 * time.Millisecond})
	defer e.Close()

	got, err := e.PointQuery(geo.Point{X: 0.5, Y: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if want := proc.PointQuery(geo.Point{X: 0.5, Y: 0.5}); got != want {
		t.Errorf("PointQuery = %v, want %v", got, want)
	}
	st := e.Stats()
	if st.FlushByTimer != 1 || st.FlushBySize != 0 {
		t.Errorf("FlushByTimer = %d, FlushBySize = %d, want 1, 0", st.FlushByTimer, st.FlushBySize)
	}
}

// gatedBrute blocks point queries on a gate, so tests can hold
// requests in flight deterministically.
type gatedBrute struct {
	*index.BruteForce
	gate chan struct{}
}

func (g *gatedBrute) PointQuery(p geo.Point) bool {
	<-g.gate
	return g.BruteForce.PointQuery(p)
}

// TestOverload fills MaxInFlight with gated requests and checks the
// next one is rejected with ErrOverloaded, not queued.
func TestOverload(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 100, 11)
	gate := make(chan struct{})
	gb := &gatedBrute{BruteForce: index.NewBruteForce(), gate: gate}
	proc, err := rebuild.NewProcessor(gb, nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	e := New(proc, nil, Config{MaxBatch: 1, MaxInFlight: 2})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.PointQuery(geo.Point{X: 0.5, Y: 0.5}); err != nil {
				t.Errorf("gated PointQuery: %v", err)
			}
		}()
	}
	waitUntil(t, "2 requests in flight", func() bool { return e.Stats().InFlight == 2 })

	if _, err := e.PointQuery(geo.Point{X: 0.1, Y: 0.1}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overloaded PointQuery error = %v, want ErrOverloaded", err)
	}
	if st := e.Stats(); st.Overloads != 1 {
		t.Errorf("Overloads = %d, want 1", st.Overloads)
	}

	close(gate)
	wg.Wait()
	e.Close()
	if st := e.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight = %d after drain, want 0", st.InFlight)
	}
}

// TestCloseDrainsQueued parks queries in an accumulator with a far-off
// deadline and checks Close answers them by flushing the batch itself
// (FlushByClose, not FlushByTimer), then rejects new requests.
func TestCloseDrainsQueued(t *testing.T) {
	proc := newTestProcessor(t, 300, 13)
	e := New(proc, nil, Config{MaxBatch: 100, FlushInterval: time.Minute})

	win := geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}
	want := append([]geo.Point(nil), proc.WindowQuery(win)...)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.WindowQuery(win)
			if err != nil {
				t.Errorf("queued WindowQuery: %v", err)
			} else if !samePoints(got, want) {
				t.Errorf("queued WindowQuery diverged: got %d pts, want %d", len(got), len(want))
			}
		}()
	}
	waitUntil(t, "3 queries queued", func() bool { return e.Stats().Queued == 3 })

	e.Close()
	wg.Wait()

	st := e.Stats()
	if st.FlushByClose != 1 || st.FlushByTimer != 0 {
		t.Errorf("FlushByClose = %d, FlushByTimer = %d, want 1, 0", st.FlushByClose, st.FlushByTimer)
	}
	if _, err := e.PointQuery(geo.Point{}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close PointQuery error = %v, want ErrClosed", err)
	}
	if _, err := e.Insert(geo.Point{}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close Insert error = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// TestConcurrentUpdatesAndRebuild runs mixed queries and updates
// through the engine while background rebuilds come and go — the
// -race run checks the locking of the whole stack.
func TestConcurrentUpdatesAndRebuild(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 17)
	proc, err := rebuild.NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	proc.Factory = func() rebuild.Rebuildable { return index.NewBruteForce() }
	e := New(proc, nil, Config{MaxBatch: 8, FlushInterval: 500 * time.Microsecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
				switch rng.Intn(4) {
				case 0:
					if _, err := e.PointQuery(q); err != nil {
						t.Errorf("PointQuery: %v", err)
						return
					}
				case 1:
					if _, err := e.WindowQuery(geo.Rect{MinX: q.X, MinY: q.Y, MaxX: q.X + 0.2, MaxY: q.Y + 0.2}); err != nil {
						t.Errorf("WindowQuery: %v", err)
						return
					}
				case 2:
					if _, err := e.KNN(q, rng.Intn(8)); err != nil {
						t.Errorf("KNN: %v", err)
						return
					}
				default:
					if rng.Intn(2) == 0 {
						if _, err := e.Insert(q); err != nil {
							t.Errorf("Insert: %v", err)
							return
						}
					} else if _, err := e.Delete(pts[rng.Intn(len(pts))]); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		proc.Rebuild()
		time.Sleep(5 * time.Millisecond)
		proc.WaitRebuild()
	}
	close(stop)
	wg.Wait()
	e.Close()

	st := e.Stats()
	if got := st.FlushBySize + st.FlushByTimer + st.FlushByClose; got != st.Batches {
		t.Errorf("flush counters sum to %d, want Batches = %d", got, st.Batches)
	}
	if st.BatchedQueries != st.PointQueries+st.WindowQueries+st.KNNQueries {
		t.Errorf("BatchedQueries = %d, want %d", st.BatchedQueries, st.PointQueries+st.WindowQueries+st.KNNQueries)
	}
	if st.Rebuilds < 3 {
		t.Errorf("Rebuilds = %d, want >= 3", st.Rebuilds)
	}
}

// TestCloseRacesStatsAndFlushes slams Close into the middle of a live
// request stream while Stats readers hammer the counters — the -race
// run checks that shutdown, the in-flight accounting, and the batch
// flush paths compose. After Close returns, every admitted request
// must have been answered: no waiter may be left blocked on a batch
// that never runs.
func TestCloseRacesStatsAndFlushes(t *testing.T) {
	proc := newTestProcessor(t, 800, 19)
	// A small batch and a long deadline force Close itself to flush
	// whatever was accumulating when it hit.
	e := New(proc, nil, Config{MaxBatch: 4, FlushInterval: 50 * time.Millisecond})

	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		answered int64 // requests that returned nil error
		mu       sync.Mutex
	)
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
				var err error
				switch rng.Intn(5) {
				case 0:
					_, err = e.PointQuery(q)
				case 1:
					_, err = e.WindowQuery(geo.Rect{MinX: q.X, MinY: q.Y, MaxX: q.X + 0.1, MaxY: q.Y + 0.1})
				case 2:
					_, err = e.KNN(q, 1+rng.Intn(4))
				case 3:
					_, err = e.Insert(q)
				default:
					_, err = e.Delete(q)
				}
				switch {
				case err == nil:
					mu.Lock()
					answered++
					mu.Unlock()
				case errors.Is(err, ErrClosed):
					return // shutdown reached this goroutine
				case errors.Is(err, ErrOverloaded):
					// acceptable under load; keep going
				default:
					t.Errorf("unexpected request error: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := e.Stats()
				if st.InFlight < 0 || st.Queued < 0 {
					t.Errorf("negative accounting: InFlight=%d Queued=%d", st.InFlight, st.Queued)
					return
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // let the stream build up
	var cwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cwg.Add(1)
		go func() { defer cwg.Done(); e.Close() }() // concurrent idempotent Close
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	st := e.Stats()
	if !st.Closed {
		t.Error("Stats().Closed false after Close")
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("after Close: InFlight=%d Queued=%d, want 0, 0", st.InFlight, st.Queued)
	}
	mu.Lock()
	got := answered
	mu.Unlock()
	if total := st.PointQueries + st.WindowQueries + st.KNNQueries + st.Inserts + st.Deletes; total != got {
		t.Errorf("admitted %d requests, %d answered", total, got)
	}
	if st.BatchedQueries != st.PointQueries+st.WindowQueries+st.KNNQueries {
		t.Errorf("BatchedQueries = %d, want %d: a Close-time flush dropped waiters",
			st.BatchedQueries, st.PointQueries+st.WindowQueries+st.KNNQueries)
	}
}
