package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"elsi/internal/dataset"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/indextest"
	"elsi/internal/qcache"
	"elsi/internal/rebuild"
)

// cachedEngine builds a cache-on engine over a fresh rebuildable
// processor and returns both ends.
func cachedEngine(t *testing.T, n int, seed int64, cfg Config) (*Engine, *rebuild.Processor) {
	t.Helper()
	pts := dataset.MustGenerate(dataset.Uniform, n, seed)
	proc, err := rebuild.NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	proc.Factory = func() rebuild.Rebuildable { return index.NewBruteForce() }
	if cfg.Cache == nil {
		cfg.Cache = &qcache.Config{}
	}
	return New(proc, nil, cfg), proc
}

// TestCachedEquivalenceRaced checks the acceptance bar for the result
// cache: under a raced mixed read/write workload — with a background
// rebuild parked in flight at its BuildGate for part of the run —
// cached answers are byte-identical to what the processor computes
// directly. The compare uses the generation protocol itself: a reader
// records the owning generation before the engine call and after the
// direct oracle call; if the two match, no mutation was visible in
// between, so the answers were computed over the same state and must
// agree. Mismatched spans are skipped (the race only costs a miss).
func TestCachedEquivalenceRaced(t *testing.T) {
	e, proc := cachedEngine(t, 3000, 21, Config{MaxBatch: 8, FlushInterval: 200 * time.Microsecond})
	defer e.Close()
	be := e.Backend()

	// Park a background rebuild mid-build: the workload below runs
	// against the frozen view + delta overlay until hold is released.
	hold := make(chan struct{})
	proc.BuildGate = func() func() {
		<-hold
		return func() {}
	}
	proc.Rebuild()

	pts := dataset.MustGenerate(dataset.Uniform, 3000, 21)
	hot := pts[:48] // small hot set so repeats actually hit the cache

	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		writers.Add(1)
		go func() {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			// Bounded: with the rebuild parked every mutation lands in
			// the delta overlay, and an unthrottled writer would make
			// each query scan an ever-growing pending set.
			for i := 0; i < 4000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(2) == 0 {
					if _, err := e.Insert(geo.Point{X: rng.Float64(), Y: 5 + rng.Float64()}); err != nil {
						t.Errorf("Insert: %v", err)
						return
					}
				} else if _, err := e.Delete(pts[1000+rng.Intn(2000)]); err != nil {
					t.Errorf("Delete: %v", err)
					return
				}
			}
		}()
	}

	var compared, skipped int64
	var cmpMu sync.Mutex
	for g := 0; g < 4; g++ {
		g := g
		readers.Add(1)
		go func() {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			var nCmp, nSkip int64
			for i := 0; i < 2500; i++ {
				if i == 1250 && g == 0 {
					close(hold) // un-park the rebuild mid-run
				}
				pt := hot[rng.Intn(len(hot))]
				if rng.Intn(4) == 0 {
					// Small window around a hot point, stamped with the
					// global generation inside the engine.
					win := geo.Rect{MinX: pt.X, MinY: pt.Y, MaxX: pt.X + 0.02, MaxY: pt.Y + 0.02}
					g0 := be.GlobalGen()
					got, err := e.WindowQuery(win)
					if err != nil {
						t.Errorf("WindowQuery: %v", err)
						return
					}
					want := proc.WindowQuery(win)
					if be.GlobalGen() != g0 {
						nSkip++
						continue // mutation raced the span; no verdict
					}
					nCmp++
					if !samePoints(got, want) {
						t.Errorf("window %v: cached %v, direct %v", win, got, want)
						return
					}
					continue
				}
				g0 := be.PointGen(pt)
				got, err := e.PointQuery(pt)
				if err != nil {
					t.Errorf("PointQuery: %v", err)
					return
				}
				want := proc.PointQuery(pt)
				if be.PointGen(pt) != g0 {
					nSkip++
					continue
				}
				nCmp++
				if got != want {
					t.Errorf("point %v: cached %v, direct %v", pt, got, want)
					return
				}
			}
			cmpMu.Lock()
			compared += nCmp
			skipped += nSkip
			cmpMu.Unlock()
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	proc.WaitRebuild()

	if compared < 1000 {
		t.Fatalf("only %d quiescent comparisons (%d skipped); the test lost its teeth", compared, skipped)
	}
	st := e.Stats()
	if st.Cache == nil {
		t.Fatal("Stats.Cache missing with the cache enabled")
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hits across the hot set: %+v", *st.Cache)
	}
	if st.Rebuilds < 1 {
		t.Fatalf("the gated rebuild never completed: %+v", st)
	}
}

// TestCacheStaleNeverServedUnderFault arms qcache/invalidate so the
// advisory Drop after every update is lost, then flips membership of a
// small key set and re-reads after each flip. With eager invalidation
// gone, only the generation stamp stands between the cache and a stale
// answer — every re-read must still see the flip.
func TestCacheStaleNeverServedUnderFault(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	faults.Enable("qcache/invalidate", faults.Fault{Mode: faults.ModeError})

	e, proc := cachedEngine(t, 500, 31, Config{MaxBatch: 4, FlushInterval: 100 * time.Microsecond})
	defer e.Close()

	pts := dataset.MustGenerate(dataset.Uniform, 500, 31)
	hot := pts[:16]
	for i := 0; i < 400; i++ {
		pt := hot[i%len(hot)]
		v1, err := e.PointQuery(pt)
		if err != nil {
			t.Fatal(err)
		}
		// Re-read without a mutation in between: a cache hit, same answer.
		if v2, _ := e.PointQuery(pt); v2 != v1 {
			t.Fatalf("step %d: repeated read flipped %v → %v with no mutation", i, v1, v2)
		}
		if v1 {
			if _, err := e.Delete(pt); err != nil {
				t.Fatal(err)
			}
		} else if _, err := e.Insert(pt); err != nil {
			t.Fatal(err)
		}
		v3, err := e.PointQuery(pt)
		if err != nil {
			t.Fatal(err)
		}
		if v3 == v1 {
			t.Fatalf("step %d: stale read: membership flipped but the cache still answered %v", i, v1)
		}
		if i == 200 {
			// A rebuild swap must invalidate too (its gen bump is the
			// only signal — swaps never issue advisory drops at all).
			proc.Rebuild()
			proc.WaitRebuild()
		}
	}

	// Windows rely on the generation check alone even without the
	// fault (updates never drop window keys): fill, mutate inside the
	// window, re-read — the new point must appear.
	win := geo.Rect{MinX: 2, MinY: 2, MaxX: 2.02, MaxY: 2.02}
	got, err := e.WindowQuery(win)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty region returned %v", got)
	}
	inside := geo.Point{X: 2.01, Y: 2.01}
	if _, err := e.Insert(inside); err != nil {
		t.Fatal(err)
	}
	got, err = e.WindowQuery(win)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != inside {
		t.Fatalf("window after insert = %v, want [%v]", got, inside)
	}

	st := e.Stats()
	if st.Cache.Hits == 0 || st.Cache.Stale == 0 {
		t.Fatalf("the fault run exercised neither hits nor stale drops: %+v", *st.Cache)
	}
	if st.Cache.Drops != 0 {
		t.Fatalf("advisory drops = %d with qcache/invalidate armed, want 0", st.Cache.Drops)
	}
}

// TestCachedPointQueryZeroAllocs pins the whole engine hit path —
// admission, key derivation, generation read, cache lookup — at zero
// allocations per query.
func TestCachedPointQueryZeroAllocs(t *testing.T) {
	e, _ := cachedEngine(t, 200, 41, Config{})
	defer e.Close()

	pt := geo.Point{X: 0.25, Y: 0.75}
	if _, err := e.Insert(pt); err != nil {
		t.Fatal(err)
	}
	if v, err := e.PointQuery(pt); err != nil || !v {
		t.Fatalf("warm query = %v, %v", v, err)
	}
	indextest.AssertZeroAllocs(t, "engine cached point query", func() {
		v, err := e.PointQuery(pt)
		if err != nil || !v {
			t.Fatalf("hit path returned %v, %v", v, err)
		}
	})

	st := e.Stats()
	if st.Cache.Hits < 100 {
		t.Fatalf("measured path was not the hit path: %+v", *st.Cache)
	}
}

// TestCacheOffStatsOmitted checks the cache field stays absent when
// caching is off, so /stats keeps its old shape for existing scrapers.
func TestCacheOffStatsOmitted(t *testing.T) {
	proc := newTestProcessor(t, 100, 3)
	e := New(proc, nil, Config{})
	defer e.Close()
	if _, err := e.PointQuery(geo.Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Cache != nil {
		t.Fatalf("Stats.Cache = %+v without a cache", *st.Cache)
	}
}
