package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyEnv builds a fast environment for driver smoke tests.
func tinyEnv(t testing.TB) *Env {
	t.Helper()
	e, err := NewEnv(Options{
		N:           2000,
		Queries:     40,
		Seed:        1,
		FFNEpochs:   10,
		ScorerCards: []int{300, 1500},
		ScorerDists: []float64{0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvDefaults(t *testing.T) {
	e := tinyEnv(t)
	if e.Scorer == nil || e.Predictor == nil {
		t.Fatal("env missing trained components")
	}
	if len(e.ScorerSamples) == 0 {
		t.Fatal("no scorer samples recorded")
	}
	if e.ScorerPrepTime <= 0 {
		t.Error("prep time not recorded")
	}
}

func TestScaledCards(t *testing.T) {
	cards := scaledCards(200000)
	if len(cards) != 5 {
		t.Fatalf("got %d cards", len(cards))
	}
	for i := 1; i < len(cards); i++ {
		if cards[i] <= cards[i-1] {
			t.Fatalf("cards not ascending: %v", cards)
		}
	}
	if cards[len(cards)-1] != 100000 {
		t.Errorf("top card = %d, want N/2", cards[len(cards)-1])
	}
}

func TestIndexFactories(t *testing.T) {
	for _, name := range TraditionalNames() {
		if _, err := NewTraditional(name); err != nil {
			t.Errorf("NewTraditional(%s): %v", name, err)
		}
	}
	if _, err := NewTraditional("nope"); err == nil {
		t.Error("unknown traditional accepted")
	}
	e := tinyEnv(t)
	for _, name := range append(LearnedNames(), NameZM) {
		if _, err := NewLearned(name, e.ogBuilder(), 1000); err != nil {
			t.Errorf("NewLearned(%s): %v", name, err)
		}
	}
	if _, err := NewLearned("nope", e.ogBuilder(), 1000); err == nil {
		t.Error("unknown learned accepted")
	}
}

// TestAllExperimentsRun smoke-tests every driver at tiny scale: each
// must complete and emit a non-trivial table.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("drivers are slow")
	}
	e := tinyEnv(t)
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(&buf, e); err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			lines := strings.Count(buf.String(), "\n")
			if lines < 3 {
				t.Errorf("%s emitted only %d lines:\n%s", exp.ID, lines, buf.String())
			}
		})
	}
}

func TestRunDispatch(t *testing.T) {
	e := tinyEnv(t)
	var buf bytes.Buffer
	if err := Run("table1", &buf, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OG") {
		t.Errorf("table1 output missing OG row:\n%s", buf.String())
	}
	if err := Run("nope", &buf, e); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestTable2Shape verifies the headline result at test scale: ELSI
// builds faster than OG for every learned index.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := tinyEnv(t)
	var buf bytes.Buffer
	if err := Table2(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NA") {
		t.Errorf("Table II should mark CL/RL as NA for LISA:\n%s", out)
	}
	for _, in := range []string{"ZM", "RSMI", "ML", "LISA"} {
		if !strings.Contains(out, in) {
			t.Errorf("missing index %s", in)
		}
	}
}

func TestEnvPrepCache(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		N: 1000, Queries: 20, Seed: 1, FFNEpochs: 5,
		ScorerCards: []int{200}, ScorerDists: []float64{0, 0.5},
		CachePath: dir + "/prep",
	}
	e1, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.ScorerSamples) != len(e1.ScorerSamples) {
		t.Errorf("cached samples differ: %d vs %d", len(e2.ScorerSamples), len(e1.ScorerSamples))
	}
	// cached load must reproduce the scorer's predictions exactly
	b1, q1 := e1.Scorer.PredictSpeedups("SP", 5000, 0.3)
	b2, q2 := e2.Scorer.PredictSpeedups("SP", 5000, 0.3)
	if b1 != b2 || q1 != q2 {
		t.Error("cached scorer predictions differ")
	}
	if e2.ScorerPrepTime >= e1.ScorerPrepTime {
		t.Logf("note: cache load (%v) not faster than generation (%v)", e2.ScorerPrepTime, e1.ScorerPrepTime)
	}
}

func TestPerIndexScorer(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := tinyEnv(t)
	sc, samples, err := e.TrainPerIndexScorer("LISA", []int{300, 1200}, []float64{0, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if sc == nil {
		t.Fatal("nil scorer")
	}
	// LISA's pool excludes CL and RL, so no samples for them
	for _, s := range samples {
		if s.Method == "CL" || s.Method == "RL" {
			t.Fatalf("inapplicable method %s measured for LISA", s.Method)
		}
	}
	if len(samples) != 2*2*4 { // 2 cards x 2 dists x 4 applicable methods
		t.Errorf("got %d samples", len(samples))
	}
}
