package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a named driver reproducing one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, e *Env) error
}

// Experiments returns the full driver catalog keyed by experiment ID.
func Experiments() []Experiment {
	return []Experiment{
		{"fig6a", "Figure 6(a): selector accuracy vs preparation scale u", Fig6a},
		{"fig6b", "Figure 6(b): selector accuracy vs lambda (FFN vs RF/DT)", Fig6b},
		{"fig7", "Figure 7: build-method Pareto sweep on OSM1", Fig7},
		{"table1", "Table I: build cost decomposition on OSM1 + ZM", Table1},
		{"table2", "Table II: ELSI vs Rand vs fixed methods", Table2},
		{"fig8", "Figure 8: build time vs data distribution", Fig8},
		{"fig9", "Figure 9: build time vs lambda", Fig9},
		{"fig10", "Figure 10: point query time vs data distribution", Fig10},
		{"fig11", "Figure 11: point query time vs lambda", Fig11},
		{"fig12", "Figure 12: window query time and recall vs distribution", Fig12},
		{"fig13", "Figure 13: window query time vs lambda and window size", Fig13},
		{"fig14", "Figure 14: kNN query time and recall (k=25)", Fig14},
		{"fig15", "Figure 15: insertion and point query times under skewed inserts", Fig15},
		{"fig16", "Figure 16: window query time and recall under skewed inserts", Fig16},
		{"ext-delete", "Extension: deletion workloads through the update processor", ExtDelete},
		{"ext-concurrent", "Extension: query tail latency during an in-flight rebuild (blocking vs background)", ExtConcurrent},
		{"ext-parallel", "Extension: parallel leaf-model bulk building", ExtParallel},
		{"ext-theory", "Extension: theoretical (PGM-style) vs empirical error bounds", ExtTheory},
		{"ext-window", "Extension: window-aware method scorer (Sec. IV-B1 remark)", ExtWindow},
		{"ext-latency", "Extension: point-query tail latencies (P50/P95/P99)", ExtLatency},
		{"ext-perindex", "Extension: per-index scorer ground truth (Sec. VII-B2)", ExtPerIndex},
		{"ext-3d", "Extension: d=3 build study (OG vs RS-reduced training)", Ext3D},
		{"ext-sharded", "Extension: Hilbert-sharded scatter-gather query routing (S=1/4/16)", ExtSharded},
	}
}

// Run executes the experiment with the given ID ("all" runs every
// driver in order).
func Run(id string, w io.Writer, e *Env) error {
	if id == "all" {
		for _, exp := range Experiments() {
			fmt.Fprintf(w, "\n=== %s — %s ===\n", exp.ID, exp.Title)
			if err := exp.Run(w, e); err != nil {
				return fmt.Errorf("%s: %w", exp.ID, err)
			}
		}
		return nil
	}
	for _, exp := range Experiments() {
		if exp.ID == id {
			fmt.Fprintf(w, "=== %s — %s ===\n", exp.ID, exp.Title)
			return exp.Run(w, e)
		}
	}
	ids := make([]string, 0, len(Experiments()))
	for _, exp := range Experiments() {
		ids = append(ids, exp.ID)
	}
	sort.Strings(ids)
	return fmt.Errorf("bench: unknown experiment %q (known: %v, plus \"all\")", id, ids)
}
