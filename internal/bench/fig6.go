package bench

import (
	"fmt"
	"io"
	"time"

	"elsi/internal/rmi"
	"elsi/internal/scorer"
)

// Fig6a reproduces Figure 6(a): method selector accuracy as the
// preparation scale u grows. The paper sweeps the maximum training
// cardinality 10^u for u in 4..8; at the harness scale u maps onto a
// geometric ladder of maximum cardinalities (see DESIGN.md).
func Fig6a(w io.Writer, e *Env) error {
	tw := table(w)
	defer tw.Flush()
	row(tw, "u", "max_cardinality", "prep_time", "accuracy(lambda=0.8)")
	for u := 4; u <= 8; u++ {
		maxCard := e.N / 2 >> (2 * (8 - u)) // each u step quarters the scale
		if maxCard < 200 {
			maxCard = 200
		}
		cards := []int{maxCard / 16, maxCard / 8, maxCard / 4, maxCard / 2, maxCard}
		for i := range cards {
			if cards[i] < 100 {
				cards[i] = 100
			}
		}
		t0 := time.Now()
		gen := scorer.GenConfig{
			Cardinalities: cards,
			Dists:         []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
			Trainer:       fastPrepTrainer(e),
			Queries:       100,
			Seed:          e.Seed,
		}
		samples := scorer.GenerateSamples(gen)
		sc, err := scorer.Train(samples, scorer.Config{Hidden: 24, Epochs: 300, Seed: e.Seed})
		if err != nil {
			return err
		}
		prep := time.Since(t0)
		sel := &scorer.Selector{Scorer: sc, Lambda: 0.8, WQ: 1}
		acc := scorer.Accuracy(sel, samples, 0.8, 1)
		row(tw, u, maxCard, secs(prep), fmt.Sprintf("%.3f", acc))
	}
	return nil
}

// fastPrepTrainer returns a reduced-epoch FFN trainer for the
// preparation sweeps, whose cost the paper amortizes offline.
func fastPrepTrainer(e *Env) rmi.Trainer {
	return rmi.FFNTrainer(rmi.FFNConfig{Hidden: 8, Epochs: 15, Seed: e.Seed})
}

// Fig6b reproduces Figure 6(b): selector accuracy vs lambda for the
// FFN scorer and the four tree-based comparators (RFR, RFC, DTR, DTC).
func Fig6b(w io.Writer, e *Env) error {
	samples := e.ScorerSamples
	if len(samples) == 0 {
		return fmt.Errorf("bench: environment has no scorer samples")
	}
	// Hold out 30% of the data-set groups: without a split, the tree
	// learners memorize the preparation grid and the comparison says
	// nothing about generalization.
	train, test := scorer.SplitSamples(samples, 0.3, e.Seed)
	if len(test) == 0 {
		train, test = samples, samples
	}
	ffn, err := scorer.Train(train, scorer.Config{Hidden: 24, Epochs: 300, Seed: e.Seed})
	if err != nil {
		return err
	}
	tw := table(w)
	defer tw.Flush()
	row(tw, "lambda", "FFN", "RFR", "RFC", "DTR", "DTC")
	for _, lambda := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		ffnSel := &scorer.Selector{Scorer: ffn, Lambda: lambda, WQ: 1}
		cells := []interface{}{fmt.Sprintf("%.1f", lambda),
			fmt.Sprintf("%.3f", scorer.Accuracy(ffnSel, test, lambda, 1))}
		for _, fam := range []scorer.Family{scorer.FamilyRFR, scorer.FamilyRFC, scorer.FamilyDTR, scorer.FamilyDTC} {
			sel := scorer.TrainComparator(fam, train, lambda, 1, e.Seed)
			cells = append(cells, fmt.Sprintf("%.3f", scorer.Accuracy(sel, test, lambda, 1)))
		}
		row(tw, cells...)
	}
	return nil
}
