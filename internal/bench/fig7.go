package bench

import (
	"fmt"
	"io"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/methods"
)

// sweepPoint is one parameter setting of a build method in the Pareto
// sweep of Figure 7.
type sweepPoint struct {
	method string
	param  string
	build  func(e *Env) base.ModelBuilder
}

// fig7Sweeps enumerates the method-specific parameter grids of Figure
// 7: rho for SP/RSP, C for CL, epsilon for MR, beta for RS, eta for
// RL, plus the OG reference.
func fig7Sweeps(e *Env) []sweepPoint {
	var sweeps []sweepPoint
	for _, rho := range []float64{0.0001, 0.001, 0.01} {
		rho := rho
		sweeps = append(sweeps, sweepPoint{methods.NameSP, fmt.Sprintf("rho=%g", rho), func(e *Env) base.ModelBuilder {
			return &methods.SP{Rho: rho, Trainer: e.Trainer}
		}})
		sweeps = append(sweeps, sweepPoint{methods.NameRSP, fmt.Sprintf("rho=%g", rho), func(e *Env) base.ModelBuilder {
			return &methods.RSP{Rho: rho, Trainer: e.Trainer, Seed: e.Seed}
		}})
	}
	for _, c := range []int{100, 1000, 10000} {
		c := c
		sweeps = append(sweeps, sweepPoint{methods.NameCL, fmt.Sprintf("C=%d", c), func(e *Env) base.ModelBuilder {
			return &methods.CL{C: c, Iterations: 10, Trainer: e.Trainer, Seed: e.Seed}
		}})
	}
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		eps := eps
		sweeps = append(sweeps, sweepPoint{methods.NameMR, fmt.Sprintf("eps=%g", eps), func(e *Env) base.ModelBuilder {
			return &methods.MR{Epsilon: eps, SynthSize: 2000, Trainer: e.Trainer, Seed: e.Seed}
		}})
	}
	for _, beta := range []int{10000, 1000, 100} {
		beta := beta
		sweeps = append(sweeps, sweepPoint{methods.NameRS, fmt.Sprintf("beta=%d", beta), func(e *Env) base.ModelBuilder {
			return &methods.RS{Beta: beta, Trainer: e.Trainer}
		}})
	}
	for _, eta := range []int{8, 16, 32} {
		eta := eta
		sweeps = append(sweeps, sweepPoint{methods.NameRL, fmt.Sprintf("eta=%d", eta), func(e *Env) base.ModelBuilder {
			return &methods.RLM{Eta: eta, Steps: 1000, Trainer: e.Trainer, Seed: e.Seed}
		}})
	}
	sweeps = append(sweeps, sweepPoint{methods.NameOG, "full", func(e *Env) base.ModelBuilder {
		return &base.Direct{Trainer: e.Trainer}
	}})
	return sweeps
}

// Fig7 reproduces Figure 7: the build-time / point-query-time Pareto
// positions of every build method under its parameter sweep, on the
// OSM1 surrogate, for all four base indices.
func Fig7(w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	tw := table(w)
	defer tw.Flush()
	row(tw, "index", "method", "param", "build_time", "point_query")
	for _, indexName := range []string{NameZM, NameML, NameRSMI, NameLISA} {
		for _, sp := range fig7Sweeps(e) {
			// CL and RL do not apply to LISA (Section VII-A)
			if indexName == NameLISA && (sp.method == methods.NameCL || sp.method == methods.NameRL) {
				continue
			}
			ix, err := NewLearned(indexName, sp.build(e), e.N)
			if err != nil {
				return err
			}
			buildTime, err := BuildTimed(ix, pts)
			if err != nil {
				return err
			}
			q := PointQueryTime(ix, pts, e.Queries, e.Seed+7)
			row(tw, indexName, sp.method, sp.param, secs(buildTime), micros(q))
		}
	}
	return nil
}
