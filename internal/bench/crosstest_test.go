package bench

import (
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
)

// TestExactIndicesAgree builds every exact index on the same data and
// cross-checks their window and kNN answers against each other — a
// differential test that catches errors no single-oracle test can.
func TestExactIndicesAgree(t *testing.T) {
	e := tinyEnv(t)
	pts := dataset.MustGenerate(dataset.OSM1, 3000, 21)
	rng := rand.New(rand.NewSource(22))

	// exact indices: the four traditional ones plus ZM and ML
	var names []string
	var idxs []index.Index
	for _, name := range TraditionalNames() {
		ix, err := NewTraditional(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(pts); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		idxs = append(idxs, ix)
	}
	for _, name := range []string{NameZM, NameML} {
		ix, err := NewLearned(name, e.ogBuilder(), len(pts))
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(pts); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		idxs = append(idxs, ix)
	}

	canonical := func(ps []geo.Point) []geo.Point {
		out := append([]geo.Point(nil), ps...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].X != out[j].X {
				return out[i].X < out[j].X
			}
			return out[i].Y < out[j].Y
		})
		return out
	}

	for trial := 0; trial < 25; trial++ {
		c := pts[rng.Intn(len(pts))]
		half := 0.005 + rng.Float64()*0.08
		win := geo.Rect{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half}
		ref := canonical(idxs[0].WindowQuery(win))
		for i := 1; i < len(idxs); i++ {
			got := canonical(idxs[i].WindowQuery(win))
			if len(got) != len(ref) {
				t.Fatalf("window %v: %s returned %d, %s returned %d",
					win, names[i], len(got), names[0], len(ref))
			}
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("window %v: %s and %s disagree at result %d", win, names[i], names[0], j)
				}
			}
		}
	}

	// kNN: the k-th distance must agree across all exact indices
	for trial := 0; trial < 15; trial++ {
		q := pts[rng.Intn(len(pts))]
		k := 1 + rng.Intn(20)
		ref := idxs[0].KNN(q, k)
		refKth := ref[len(ref)-1].Dist2(q)
		for i := 1; i < len(idxs); i++ {
			got := idxs[i].KNN(q, k)
			if len(got) != len(ref) {
				t.Fatalf("kNN k=%d: %s returned %d, want %d", k, names[i], len(got), len(ref))
			}
			kth := got[len(got)-1].Dist2(q)
			if kth > refKth+1e-12 || kth < refKth-1e-12 {
				t.Fatalf("kNN k=%d: %s k-th dist2 %v vs %s %v", k, names[i], kth, names[0], refKth)
			}
		}
	}
}

// TestAllIndicesCountConsistency asserts that for any index (exact or
// approximate), a window covering the whole space returns at most n
// points and every returned point is stored.
func TestAllIndicesCountConsistency(t *testing.T) {
	e := tinyEnv(t)
	pts := dataset.MustGenerate(dataset.Skewed, 2000, 23)
	stored := map[geo.Point]int{}
	for _, p := range pts {
		stored[p]++
	}
	check := func(name string, ix index.Index) {
		got := ix.WindowQuery(geo.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2})
		if len(got) > len(pts) {
			t.Fatalf("%s: full-space window returned %d > n=%d", name, len(got), len(pts))
		}
		seen := map[geo.Point]int{}
		for _, p := range got {
			seen[p]++
			if seen[p] > stored[p] {
				t.Fatalf("%s: returned %v more times than stored", name, p)
			}
		}
	}
	for _, name := range TraditionalNames() {
		ix, _ := NewTraditional(name)
		ix.Build(pts)
		check(name, ix)
	}
	for _, name := range append(LearnedNames(), NameZM) {
		ix, err := NewLearned(name, e.ogBuilder(), len(pts))
		if err != nil {
			t.Fatal(err)
		}
		ix.Build(pts)
		check(name, ix)
	}
}
