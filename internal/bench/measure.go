package bench

import (
	"math/rand"
	"time"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/kdb"
	"elsi/internal/stats"
)

// BuildTimed builds idx on pts and returns the wall-clock build time.
func BuildTimed(idx index.Index, pts []geo.Point) (time.Duration, error) {
	t0 := time.Now()
	err := idx.Build(pts)
	return time.Since(t0), err
}

// Querier is anything answering the three query types (an index or a
// rebuild.Processor).
type Querier interface {
	PointQuery(p geo.Point) bool
	WindowQuery(win geo.Rect) []geo.Point
	KNN(q geo.Point, k int) []geo.Point
}

// PointQueryTime measures the average point-query latency over queries
// drawn from the data distribution (the paper queries every indexed
// point; the sample keeps the harness fast at large scale).
func PointQueryTime(q Querier, pts []geo.Point, queries int, seed int64) time.Duration {
	if len(pts) == 0 || queries <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	qs := dataset.QueriesFromData(rng, pts, queries)
	t0 := time.Now()
	for _, p := range qs {
		q.PointQuery(p)
	}
	return time.Since(t0) / time.Duration(len(qs))
}

// WindowResult aggregates a window-query measurement.
type WindowResult struct {
	AvgTime time.Duration
	Recall  float64
}

// WindowQueryTime measures average window-query latency and recall
// (vs. brute force) for windows following the data distribution
// covering areaFrac of the space.
func WindowQueryTime(q Querier, pts []geo.Point, queries int, areaFrac float64, seed int64) WindowResult {
	if len(pts) == 0 || queries <= 0 {
		return WindowResult{Recall: 1}
	}
	rng := rand.New(rand.NewSource(seed))
	wins := dataset.WindowsFromData(rng, pts, geo.UnitRect, queries, areaFrac)
	t0 := time.Now()
	results := make([][]geo.Point, len(wins))
	for i, w := range wins {
		results[i] = q.WindowQuery(w)
	}
	avg := time.Since(t0) / time.Duration(len(wins))
	truth := exactIndex(pts)
	sum, cnt := 0.0, 0
	for i, w := range wins {
		want := truth.WindowQuery(w)
		if len(want) == 0 {
			continue
		}
		sum += index.Recall(results[i], want)
		cnt++
	}
	recall := 1.0
	if cnt > 0 {
		recall = sum / float64(cnt)
	}
	return WindowResult{AvgTime: avg, Recall: recall}
}

// exactIndex builds the exact ground-truth index used for recall
// computation (a KDB-tree: exact and fast at harness scale).
func exactIndex(pts []geo.Point) index.Index {
	t := kdb.New(geo.UnitRect)
	t.Build(pts)
	return t
}

// KNNQueryTime measures average kNN latency and recall for k-NN
// queries following the data distribution.
func KNNQueryTime(q Querier, pts []geo.Point, queries, k int, seed int64) WindowResult {
	if len(pts) == 0 || queries <= 0 {
		return WindowResult{Recall: 1}
	}
	rng := rand.New(rand.NewSource(seed))
	qs := dataset.QueriesFromData(rng, pts, queries)
	t0 := time.Now()
	results := make([][]geo.Point, len(qs))
	for i, p := range qs {
		results[i] = q.KNN(p, k)
	}
	avg := time.Since(t0) / time.Duration(len(qs))
	truth := exactIndex(pts)
	sum := 0.0
	for i, p := range qs {
		want := truth.KNN(p, k)
		sum += index.KNNRecall(results[i], want, p)
	}
	return WindowResult{AvgTime: avg, Recall: sum / float64(len(qs))}
}

// PointQueryLatencies measures per-query latencies and returns their
// full summary — tail behaviour (P95/P99) exposes the regions where a
// model's error bounds blow up, which averages hide.
func PointQueryLatencies(q Querier, pts []geo.Point, queries int, seed int64) stats.Summary {
	if len(pts) == 0 || queries <= 0 {
		return stats.Summary{}
	}
	rng := rand.New(rand.NewSource(seed))
	qs := dataset.QueriesFromData(rng, pts, queries)
	samples := make([]time.Duration, len(qs))
	for i, p := range qs {
		t0 := time.Now()
		q.PointQuery(p)
		samples[i] = time.Since(t0)
	}
	return stats.Summarize(samples)
}
