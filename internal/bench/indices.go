package bench

import (
	"fmt"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/grid"
	"elsi/internal/index"
	"elsi/internal/kdb"
	"elsi/internal/lisa"
	"elsi/internal/mlindex"
	"elsi/internal/rsmi"
	"elsi/internal/rtree"
	"elsi/internal/zm"
)

// Index names used across the experiment tables. The "-F" suffix marks
// an ELSI-built variant, following the paper's notation.
const (
	NameGrid = "Grid"
	NameKDB  = "KDB"
	NameHRR  = "HRR"
	NameRR   = "RR*"
	NameZM   = "ZM"
	NameML   = "ML"
	NameRSMI = "RSMI"
	NameLISA = "LISA"
)

// TraditionalNames lists the four traditional baselines.
func TraditionalNames() []string {
	return []string{NameGrid, NameKDB, NameHRR, NameRR}
}

// LearnedNames lists the learned base indices in the experiments'
// order (ZM only appears in the method studies, per Section VII-A).
func LearnedNames() []string {
	return []string{NameML, NameLISA, NameRSMI}
}

// NewTraditional constructs a traditional index by name.
func NewTraditional(name string) (index.Index, error) {
	switch name {
	case NameGrid:
		return grid.New(geo.UnitRect), nil
	case NameKDB:
		return kdb.New(geo.UnitRect), nil
	case NameHRR:
		return rtree.NewHRR(geo.UnitRect), nil
	case NameRR:
		return rtree.NewRRStar(geo.UnitRect), nil
	}
	return nil, fmt.Errorf("bench: unknown traditional index %q", name)
}

// StatsIndex is a learned index exposing its per-model build stats.
type StatsIndex interface {
	index.Index
	Stats() []base.BuildStats
}

// NewLearned constructs a learned index by name wired to a model
// builder (OG or an ELSI system). Structural parameters are scaled to
// the working cardinality n; the parallel build stages use the default
// worker count (GOMAXPROCS).
func NewLearned(name string, builder base.ModelBuilder, n int) (StatsIndex, error) {
	return NewLearnedWorkers(name, builder, n, 0)
}

// NewLearnedWorkers is NewLearned with an explicit worker count for the
// index's parallel build stages (0 = GOMAXPROCS, 1 = serial). Builds
// are bit-identical across worker counts.
func NewLearnedWorkers(name string, builder base.ModelBuilder, n, workers int) (StatsIndex, error) {
	fanout := n / 25000
	if fanout < 1 {
		fanout = 1
	}
	if fanout > 32 {
		fanout = 32
	}
	switch name {
	case NameZM:
		return zm.New(zm.Config{Space: geo.UnitRect, Builder: builder, Fanout: fanout, Workers: workers}), nil
	case NameML:
		return mlindex.New(mlindex.Config{Space: geo.UnitRect, Builder: builder, Refs: 16, Fanout: fanout, Seed: 1, Workers: workers}), nil
	case NameRSMI:
		leafCap := n / 16
		if leafCap < 500 {
			leafCap = 500
		}
		if leafCap > 25000 {
			leafCap = 25000
		}
		return rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: builder, Fanout: 8, LeafCap: leafCap, Workers: workers}), nil
	case NameLISA:
		return lisa.New(lisa.Config{Space: geo.UnitRect, Builder: builder, Workers: workers}), nil
	}
	return nil, fmt.Errorf("bench: unknown learned index %q", name)
}
