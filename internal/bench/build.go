package bench

import (
	"fmt"
	"io"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/dataset"
)

// ogBuilder returns the OG builder for a base index.
func (e *Env) ogBuilder() base.ModelBuilder {
	return &base.Direct{Trainer: e.Trainer}
}

// Fig8 reproduces Figure 8: index build times across the six data
// sets for the traditional indices, the learned indices without ELSI,
// and the ELSI-built variants (ML-F, RSMI-F, LISA-F) at lambda = 0.8.
func Fig8(w io.Writer, e *Env) error {
	tw := table(w)
	defer tw.Flush()
	row(tw, "dataset", "index", "build_time")
	for _, ds := range dataset.All() {
		pts := dataset.MustGenerate(ds, e.N, e.Seed)
		for _, name := range TraditionalNames() {
			ix, err := NewTraditional(name)
			if err != nil {
				return err
			}
			bt, err := BuildTimed(ix, pts)
			if err != nil {
				return err
			}
			row(tw, ds, name, secs(bt))
		}
		for _, name := range LearnedNames() {
			// without ELSI
			ix, err := NewLearned(name, e.ogBuilder(), e.N)
			if err != nil {
				return err
			}
			bt, err := BuildTimed(ix, pts)
			if err != nil {
				return err
			}
			row(tw, ds, name, secs(bt))
			// with ELSI
			fix, err := NewLearned(name, e.System(name, 0.8, core.SelectorLearned, ""), e.N)
			if err != nil {
				return err
			}
			bt, err = BuildTimed(fix, pts)
			if err != nil {
				return err
			}
			row(tw, ds, name+"-F", secs(bt))
		}
	}
	return nil
}

// Fig9 reproduces Figure 9: ELSI-built index build times as lambda
// varies, on Skewed and OSM1, with RR* and RSMI (no ELSI) as fixed
// reference lines.
func Fig9(w io.Writer, e *Env) error {
	tw := table(w)
	defer tw.Flush()
	row(tw, "dataset", "index", "lambda", "build_time")
	for _, ds := range []string{dataset.Skewed, dataset.OSM1} {
		pts := dataset.MustGenerate(ds, e.N, e.Seed)
		// reference lines
		rr, err := NewTraditional(NameRR)
		if err != nil {
			return err
		}
		bt, err := BuildTimed(rr, pts)
		if err != nil {
			return err
		}
		row(tw, ds, NameRR, "-", secs(bt))
		rsmiOG, err := NewLearned(NameRSMI, e.ogBuilder(), e.N)
		if err != nil {
			return err
		}
		bt, err = BuildTimed(rsmiOG, pts)
		if err != nil {
			return err
		}
		row(tw, ds, NameRSMI, "-", secs(bt))
		for _, lambda := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
			for _, name := range LearnedNames() {
				ix, err := NewLearned(name, e.System(name, lambda, core.SelectorLearned, ""), e.N)
				if err != nil {
					return err
				}
				bt, err := BuildTimed(ix, pts)
				if err != nil {
					return err
				}
				row(tw, ds, name+"-F", fmt.Sprintf("%.1f", lambda), secs(bt))
			}
		}
	}
	return nil
}
