package bench

import (
	"fmt"
	"io"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/shard"
	"elsi/internal/zm"
)

// ExtSharded measures the Hilbert-sharded router against the same
// index unsharded: one ZM processor fleet per shard count, the three
// query types routed through the scatter-gather surface. The scatter
// columns report how much of the fleet each query actually touched —
// window queries visit only shards whose Hilbert ranges intersect the
// window's range decomposition, kNN prunes shards whose key-range MBR
// lies beyond the current k-th best — so per-query work shrinks as S
// grows even on one core.
func ExtSharded(w io.Writer, e *Env) error {
	n0 := e.N / 2
	if n0 < 2000 {
		n0 = 2000
	}
	pts := dataset.MustGenerate(dataset.OSM1, n0, e.Seed)

	factory := func() rebuild.Rebuildable {
		return zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
			Fanout:  8,
		})
	}
	mapKey := factory().(*zm.Index).MapKey

	tw := table(w)
	defer tw.Flush()
	row(tw, "shards", "point_query", "window_query", "w_recall", "knn_query", "k_recall", "w_visited", "k_visited")
	for _, s := range []int{1, 4, 16} {
		mk := func(sub []geo.Point) (*rebuild.Processor, error) {
			proc, err := rebuild.NewProcessor(factory(), e.Predictor, sub, mapKey, len(sub)/8+1)
			if err != nil {
				return nil, err
			}
			proc.Factory = factory
			return proc, nil
		}
		r, err := shard.New(pts, geo.UnitRect, shard.Config{Shards: s, Workers: 1}, mk)
		if err != nil {
			return err
		}
		pq := PointQueryTime(r, pts, e.Queries/2, e.Seed+301)
		wq := WindowQueryTime(r, pts, e.Queries/8+5, 0.0001, e.Seed+303)
		kq := KNNQueryTime(r, pts, e.Queries/8+5, 25, e.Seed+305)
		var wVisited, wPruned, kVisited, kPruned int64
		for _, ss := range r.BackendStats().Shards {
			wVisited += ss.WindowQueries
			wPruned += ss.WindowsPruned
			kVisited += ss.KNNQueries
			kPruned += ss.KNNsPruned
		}
		row(tw, r.NumShards(),
			micros(pq), micros(wq.AvgTime), fmt.Sprintf("%.3f", wq.Recall),
			micros(kq.AvgTime), fmt.Sprintf("%.3f", kq.Recall),
			visitedFrac(wVisited, wPruned),
			visitedFrac(kVisited, kPruned))
	}
	return nil
}

// visitedFrac formats the fraction of candidate shard visits that
// actually ran: the aggregate counters sum per-shard visits and
// per-shard pruned visits, so visits/(visits+pruned) is the share of
// the fleet the average query touched.
func visitedFrac(visited, pruned int64) string {
	total := visited + pruned
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(visited)/float64(total))
}
