package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/stats"
	"elsi/internal/zm"
)

// updateRun drives the Figure 15/16 workload for one index variant:
// build on 10% of OSM1, insert Skewed points, and measure at every
// 2^i% checkpoint.
type updateRun struct {
	name string
	proc *rebuild.Processor
}

// updateCheckpoint is one measurement row of the insertion studies.
type updateCheckpoint struct {
	InsertRatio float64 // inserted / initial, in percent
	AvgInsert   time.Duration
	PointQuery  time.Duration
	WindowQuery time.Duration
	Recall      float64
	Rebuilds    int
}

// runUpdates performs the insertion workload and returns one row per
// 2^i% checkpoint up to maxRatio (512% in the paper).
func (e *Env) runUpdates(run *updateRun, initial, inserts []geo.Point, maxRatio int, withWindows bool) ([]updateCheckpoint, error) {
	n0 := len(initial)
	var rows []updateCheckpoint
	inserted := 0
	for ratio := 1; ratio <= maxRatio; ratio *= 2 {
		target := n0 * ratio / 100
		t0 := time.Now()
		count := 0
		for inserted < target && inserted < len(inserts) {
			run.proc.Insert(inserts[inserted])
			inserted++
			count++
		}
		var avgIns time.Duration
		if count > 0 {
			avgIns = time.Since(t0) / time.Duration(count)
		}
		all := append(append([]geo.Point(nil), initial...), inserts[:inserted]...)
		cp := updateCheckpoint{
			InsertRatio: float64(ratio),
			AvgInsert:   avgIns,
			PointQuery:  PointQueryTime(run.proc, all, e.Queries, e.Seed+41),
			Rebuilds:    run.proc.Rebuilds(),
		}
		if withWindows {
			wq := e.Queries / 4
			if wq < 10 {
				wq = 10
			}
			r := WindowQueryTime(run.proc, all, wq, 0.0001, e.Seed+43)
			cp.WindowQuery = r.AvgTime
			cp.Recall = r.Recall
		}
		rows = append(rows, cp)
	}
	return rows, nil
}

// updateVariants builds the Figure 15 comparison set: RR* (traditional
// reference), and each learned index with ELSI, without global
// rebuilds ("-F") and with the rebuild predictor ("-R").
func (e *Env) updateVariants(initial []geo.Point) ([]*updateRun, error) {
	var runs []*updateRun
	// RR*: self-balancing insertions, no rebuilds
	rr, err := NewTraditional(NameRR)
	if err != nil {
		return nil, err
	}
	rrProc, err := rebuild.NewProcessor(asRebuildable(rr), nil, initial, func(p geo.Point) float64 { return p.X }, 1<<30)
	if err != nil {
		return nil, err
	}
	rrProc.UseBuiltin = true
	runs = append(runs, &updateRun{NameRR, rrProc})

	fu := len(initial) / 8
	if fu < 64 {
		fu = 64
	}
	for _, name := range LearnedNames() {
		for _, mode := range []string{"-F", "-R"} {
			ix, err := NewLearned(name, e.System(name, 0.8, core.SelectorLearned, ""), len(initial))
			if err != nil {
				return nil, err
			}
			var pred *rebuild.Predictor
			if mode == "-R" {
				pred = e.Predictor
			}
			proc, err := rebuild.NewProcessor(asRebuildable(ix), pred, initial, mapKeyOf(ix), fu)
			if err != nil {
				return nil, err
			}
			proc.UseBuiltin = true // RSMI and LISA use built-in inserts; ML falls back to the delta list
			runs = append(runs, &updateRun{name + mode, proc})
		}
	}
	return runs, nil
}

// mapKeyOf extracts an index's key mapping for CDF maintenance; it
// falls back to the x coordinate (a valid 1-D summary) when the index
// exposes none.
func mapKeyOf(ix interface{}) func(geo.Point) float64 {
	if m, ok := ix.(interface{ MapKey(geo.Point) float64 }); ok {
		return m.MapKey
	}
	return func(p geo.Point) float64 { return p.X }
}

// asRebuildable adapts any built index to rebuild.Rebuildable (every
// index.Index already satisfies it; this is a type bridge).
func asRebuildable(ix interface{}) rebuild.Rebuildable {
	return ix.(rebuild.Rebuildable)
}

// Fig15 reproduces Figure 15: average insertion time (a) and point
// query time (b) as skewed insertions grow from 1% to 512% of the
// initial data, for RR* and the ELSI-built indices with ("-R") and
// without ("-F") global rebuilds.
func Fig15(w io.Writer, e *Env) error {
	return e.updateStudy(w, false)
}

// Fig16 reproduces Figure 16: window query time (a) and recall (b)
// under the same skewed-insertion workload.
func Fig16(w io.Writer, e *Env) error {
	return e.updateStudy(w, true)
}

// sampleLatenciesWhile issues point queries one at a time, recording
// each latency, until cond turns false or max samples are taken. It is
// how the concurrent study measures the tail *during* an in-flight
// rebuild rather than only at steady state.
func sampleLatenciesWhile(proc *rebuild.Processor, qs []geo.Point, cond func() bool, max int) []time.Duration {
	out := make([]time.Duration, 0, max)
	for i := 0; len(out) < max && cond(); i++ {
		q := qs[i%len(qs)]
		t0 := time.Now()
		proc.PointQuery(q)
		out = append(out, time.Since(t0))
	}
	return out
}

// ExtConcurrent measures point-query tail latency while a rebuild is
// in flight under concurrent insert load, contrasting the blocking
// rebuild path (no Factory: the build holds the write lock and every
// reader stalls) with the background path (Factory set: build on a
// goroutine against a frozen snapshot, atomic swap, queries served
// from the old index + delta view throughout). The background rows
// should show a flat tail; the blocking rows show the build time
// leaking into P99/max.
// ExtConcurrentCtx is the cancellable form.
func ExtConcurrent(w io.Writer, e *Env) error {
	return ExtConcurrentCtx(context.Background(), w, e)
}

// ExtConcurrentCtx is ExtConcurrent with cancellation: an expired ctx
// stops the insert writer between updates, so the study unwinds
// instead of hammering the processor until the rebuild lands.
func ExtConcurrentCtx(ctx context.Context, w io.Writer, e *Env) error {
	n0 := e.N / 4
	if n0 < 2000 {
		n0 = 2000
	}
	initial := dataset.MustGenerate(dataset.OSM1, n0, e.Seed)
	rng := rand.New(rand.NewSource(e.Seed + 331))
	qs := dataset.QueriesFromData(rng, initial, maxI(e.Queries, 200))
	inserts := dataset.SkewedPoints(rng, n0, 4)
	// the during-rebuild phase samples until the rebuild completes; the
	// cap only bounds memory if a build drags on for many seconds
	maxSamples := 200000

	tw := table(w)
	defer tw.Flush()
	row(tw, "variant", "phase", "samples", "mean", "p50", "p99", "max", "rebuilds", "pending")

	for _, variant := range []string{"blocking", "background"} {
		// one System per variant: it is safe for concurrent builds and
		// constructing it (MR pool warm-up) is too costly per rebuild
		system := e.System(NameZM, 0.8, core.SelectorLearned, "")
		newIndex := func() rebuild.Rebuildable {
			return zm.New(zm.Config{
				Space:   geo.UnitRect,
				Builder: system,
				Fanout:  4,
			})
		}
		serving := newIndex().(*zm.Index)
		proc, err := rebuild.NewProcessor(serving, nil, initial, serving.MapKey, 1<<30)
		if err != nil {
			return err
		}
		if variant == "background" {
			proc.Factory = newIndex
		}

		report := func(phase string, samples []time.Duration) {
			s := stats.Summarize(samples)
			row(tw, variant, phase, s.Count, micros(s.Mean), micros(s.P50), micros(s.P99), micros(s.Max),
				proc.Rebuilds(), proc.PendingUpdates())
		}

		// steady state before any update pressure
		report("steady", sampleLatenciesWhile(proc, qs, func() bool { return true }, maxI(e.Queries, 200)))

		// concurrent load: a writer streams skewed inserts while the
		// rebuild runs and the main goroutine keeps querying
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				proc.Insert(inserts[i%len(inserts)])
			}
		}()

		rebuildDone := make(chan struct{})
		go func() {
			defer close(rebuildDone)
			proc.Rebuild() // blocking variant stalls here; background returns at once
			proc.WaitRebuild()
		}()
		inFlight := func() bool {
			select {
			case <-rebuildDone:
				return false
			default:
				return true
			}
		}
		during := sampleLatenciesWhile(proc, qs, inFlight, maxSamples)
		close(stop)
		writerWG.Wait()
		<-rebuildDone
		report("during-rebuild", during)

		// steady state again, on the rebuilt index
		report("after-swap", sampleLatenciesWhile(proc, qs, func() bool { return true }, maxI(e.Queries, 200)))
	}
	return nil
}

func (e *Env) updateStudy(w io.Writer, withWindows bool) error {
	n0 := e.N / 10
	if n0 < 500 {
		n0 = 500
	}
	initial := dataset.MustGenerate(dataset.OSM1, n0, e.Seed)
	rng := rand.New(rand.NewSource(e.Seed + 101))
	inserts := dataset.SkewedPoints(rng, n0*512/100+1, 4)
	runs, err := e.updateVariants(initial)
	if err != nil {
		return err
	}
	tw := table(w)
	defer tw.Flush()
	if withWindows {
		row(tw, "index", "insert_ratio%", "window_query", "recall", "rebuilds")
	} else {
		row(tw, "index", "insert_ratio%", "avg_insert", "point_query", "rebuilds")
	}
	for _, run := range runs {
		rows, err := e.runUpdates(run, initial, inserts, 512, withWindows)
		if err != nil {
			return err
		}
		for _, cp := range rows {
			if withWindows {
				row(tw, run.name, fmt.Sprintf("%.0f", cp.InsertRatio), micros(cp.WindowQuery),
					fmt.Sprintf("%.3f", cp.Recall), cp.Rebuilds)
			} else {
				row(tw, run.name, fmt.Sprintf("%.0f", cp.InsertRatio), micros(cp.AvgInsert),
					micros(cp.PointQuery), cp.Rebuilds)
			}
		}
	}
	return nil
}
