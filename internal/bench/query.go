package bench

import (
	"fmt"
	"io"

	"elsi/internal/core"
	"elsi/internal/dataset"
)

// variantSet builds the comparison set of the query experiments on a
// data set: the four traditional baselines, the learned indices
// without ELSI, and their ELSI variants (lambda 0.8).
func (e *Env) variantSet(ds string, n int, seed int64) ([]string, []Querier, error) {
	pts := dataset.MustGenerate(ds, n, seed)
	var names []string
	var qs []Querier
	for _, name := range TraditionalNames() {
		ix, err := NewTraditional(name)
		if err != nil {
			return nil, nil, err
		}
		if err := ix.Build(pts); err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		qs = append(qs, ix)
	}
	for _, name := range LearnedNames() {
		ix, err := NewLearned(name, e.ogBuilder(), n)
		if err != nil {
			return nil, nil, err
		}
		if err := ix.Build(pts); err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		qs = append(qs, ix)

		fix, err := NewLearned(name, e.System(name, 0.8, core.SelectorLearned, ""), n)
		if err != nil {
			return nil, nil, err
		}
		if err := fix.Build(pts); err != nil {
			return nil, nil, err
		}
		names = append(names, name+"-F")
		qs = append(qs, fix)
	}
	return names, qs, nil
}

// Fig10 reproduces Figure 10: point query times across data sets for
// all indices, with and without ELSI.
func Fig10(w io.Writer, e *Env) error {
	tw := table(w)
	defer tw.Flush()
	row(tw, "dataset", "index", "point_query")
	for _, ds := range dataset.All() {
		pts := dataset.MustGenerate(ds, e.N, e.Seed)
		names, qs, err := e.variantSet(ds, e.N, e.Seed)
		if err != nil {
			return err
		}
		for i, name := range names {
			row(tw, ds, name, micros(PointQueryTime(qs[i], pts, e.Queries, e.Seed+17)))
		}
	}
	return nil
}

// Fig11 reproduces Figure 11: point query times vs lambda on OSM1 and
// TPC-H, with RR* and RSMI references.
func Fig11(w io.Writer, e *Env) error {
	tw := table(w)
	defer tw.Flush()
	row(tw, "dataset", "index", "lambda", "point_query")
	for _, ds := range []string{dataset.OSM1, dataset.TPCH} {
		pts := dataset.MustGenerate(ds, e.N, e.Seed)
		rr, err := NewTraditional(NameRR)
		if err != nil {
			return err
		}
		rr.Build(pts)
		row(tw, ds, NameRR, "-", micros(PointQueryTime(rr, pts, e.Queries, e.Seed+19)))
		rsmiOG, err := NewLearned(NameRSMI, e.ogBuilder(), e.N)
		if err != nil {
			return err
		}
		rsmiOG.Build(pts)
		row(tw, ds, NameRSMI, "-", micros(PointQueryTime(rsmiOG, pts, e.Queries, e.Seed+19)))
		for _, lambda := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
			for _, name := range LearnedNames() {
				ix, err := NewLearned(name, e.System(name, lambda, core.SelectorLearned, ""), e.N)
				if err != nil {
					return err
				}
				if err := ix.Build(pts); err != nil {
					return err
				}
				row(tw, ds, name+"-F", fmt.Sprintf("%.1f", lambda),
					micros(PointQueryTime(ix, pts, e.Queries, e.Seed+19)))
			}
		}
	}
	return nil
}

// Fig12 reproduces Figure 12: window query times (a) and recall (b)
// across data sets at window size 0.01% of the space.
func Fig12(w io.Writer, e *Env) error {
	tw := table(w)
	defer tw.Flush()
	row(tw, "dataset", "index", "window_query", "recall")
	wq := e.Queries / 4
	if wq < 10 {
		wq = 10
	}
	for _, ds := range dataset.All() {
		pts := dataset.MustGenerate(ds, e.N, e.Seed)
		names, qs, err := e.variantSet(ds, e.N, e.Seed)
		if err != nil {
			return err
		}
		for i, name := range names {
			r := WindowQueryTime(qs[i], pts, wq, 0.0001, e.Seed+23)
			row(tw, ds, name, micros(r.AvgTime), fmt.Sprintf("%.3f", r.Recall))
		}
	}
	return nil
}

// Fig13 reproduces Figure 13: window query time vs lambda on OSM1 (a)
// and vs window size (b).
func Fig13(w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	wq := e.Queries / 4
	if wq < 10 {
		wq = 10
	}
	tw := table(w)
	row(tw, "part", "index", "x", "window_query", "recall")
	// (a) vs lambda
	for _, lambda := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		for _, name := range LearnedNames() {
			ix, err := NewLearned(name, e.System(name, lambda, core.SelectorLearned, ""), e.N)
			if err != nil {
				return err
			}
			if err := ix.Build(pts); err != nil {
				return err
			}
			r := WindowQueryTime(ix, pts, wq, 0.0001, e.Seed+29)
			row(tw, "a:lambda", name+"-F", fmt.Sprintf("%.1f", lambda), micros(r.AvgTime), fmt.Sprintf("%.3f", r.Recall))
		}
	}
	// (b) vs window size, fixed lambda 0.8, with RR* and RSMI refs
	names, qs, err := e.variantSet(dataset.OSM1, e.N, e.Seed)
	if err != nil {
		return err
	}
	for _, frac := range []float64{0.000006, 0.000025, 0.0001, 0.0004, 0.0016} {
		for i, name := range names {
			r := WindowQueryTime(qs[i], pts, wq, frac, e.Seed+31)
			row(tw, "b:size", name, fmt.Sprintf("%.4f%%", frac*100), micros(r.AvgTime), fmt.Sprintf("%.3f", r.Recall))
		}
	}
	tw.Flush()
	return nil
}

// Fig14 reproduces Figure 14: kNN query times (a) and recall (b)
// across data sets at k = 25.
func Fig14(w io.Writer, e *Env) error {
	tw := table(w)
	defer tw.Flush()
	row(tw, "dataset", "index", "knn_query", "recall")
	kq := e.Queries / 4
	if kq < 10 {
		kq = 10
	}
	for _, ds := range dataset.All() {
		pts := dataset.MustGenerate(ds, e.N, e.Seed)
		names, qs, err := e.variantSet(ds, e.N, e.Seed)
		if err != nil {
			return err
		}
		for i, name := range names {
			r := KNNQueryTime(qs[i], pts, kq, 25, e.Seed+37)
			row(tw, ds, name, micros(r.AvgTime), fmt.Sprintf("%.3f", r.Recall))
		}
	}
	return nil
}
