package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/ndim"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
	"elsi/internal/zm"
)

// This file holds experiments beyond the paper's evaluation: deletion
// workloads (the paper covers insertions only "due to the space
// limit"), parallel bulk building, the PGM-style theoretical bounds
// the paper lists as future work, and the window-aware method scorer
// of Section IV-B1's "other query types" remark.

// ExtDelete studies mixed insert/delete workloads through the update
// processor: deletions are the paper's untested half of the update
// path.
func ExtDelete(w io.Writer, e *Env) error {
	n0 := e.N / 10
	if n0 < 500 {
		n0 = 500
	}
	initial := dataset.MustGenerate(dataset.OSM1, n0, e.Seed)
	rng := rand.New(rand.NewSource(e.Seed + 201))

	tw := table(w)
	defer tw.Flush()
	row(tw, "index", "deleted%", "point_query", "window_query", "pending", "rebuilds")
	for _, name := range LearnedNames() {
		ix, err := NewLearned(name, e.System(name, 0.8, core.SelectorLearned, ""), n0)
		if err != nil {
			return err
		}
		proc, err := rebuild.NewProcessor(asRebuildable(ix), e.Predictor, initial, mapKeyOf(ix), n0/8)
		if err != nil {
			return err
		}
		remaining := append([]geo.Point(nil), initial...)
		deleted := 0
		for _, pct := range []int{5, 10, 20, 40} {
			target := n0 * pct / 100
			for deleted < target && len(remaining) > 1 {
				i := rng.Intn(len(remaining))
				proc.Delete(remaining[i])
				remaining[i] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
				deleted++
			}
			pq := PointQueryTime(proc, remaining, e.Queries/2, e.Seed+77)
			wq := WindowQueryTime(proc, remaining, e.Queries/8+5, 0.0001, e.Seed+79)
			row(tw, name+"-R", fmt.Sprintf("%d", pct), micros(pq), micros(wq.AvgTime), proc.PendingUpdates(), proc.Rebuilds())
		}
	}
	return nil
}

// ExtParallel measures parallel leaf-model building: the per-partition
// models are independent, so the map-and-sort bulk load parallelizes.
func ExtParallel(w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	fanout := 16
	tw := table(w)
	defer tw.Flush()
	row(tw, "workers", "build_time", "speedup")
	var base1 time.Duration
	maxWorkers := runtime.GOMAXPROCS(0)
	if maxWorkers > 8 {
		maxWorkers = 8
	}
	if maxWorkers < 4 {
		// still exercise the concurrent path (no speedup expected on a
		// starved machine, but correctness and overhead are visible)
		maxWorkers = 4
	}
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		ix := zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: e.ogBuilder(),
			Fanout:  fanout,
			Workers: workers,
		})
		bt, err := BuildTimed(ix, pts)
		if err != nil {
			return err
		}
		if workers == 1 {
			base1 = bt
		}
		speedup := float64(base1) / float64(bt)
		row(tw, workers, secs(bt), fmt.Sprintf("%.2fx", speedup))
	}
	return nil
}

// ExtTheory contrasts the empirical error bounds of Algorithm 1
// (model-dependent M(n) pass) with the PGM-style theoretical bounds
// derived from the piecewise trainer's eps guarantee — the future-work
// direction of Section IV-A.
func ExtTheory(w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: e.ogBuilder()})
	d := base.Prepare(pts, geo.UnitRect, ix.MapKey)

	tw := table(w)
	defer tw.Flush()
	row(tw, "variant", "eps", "build_time", "|error|", "guaranteed")
	for _, eps := range []float64{1.0 / 64, 1.0 / 256, 1.0 / 1024} {
		t0 := time.Now()
		theo := rmi.NewBoundedTheoretical(d.Keys, eps)
		theoTime := time.Since(t0)
		row(tw, "theoretical", fmt.Sprintf("1/%d", int(1/eps)), secs(theoTime), theo.ErrBoundsWidth(), "yes")

		t0 = time.Now()
		emp := rmi.NewBounded(rmi.PiecewiseTrainer(eps), d.Keys, d.Keys)
		empTime := time.Since(t0)
		row(tw, "empirical", fmt.Sprintf("1/%d", int(1/eps)), secs(empTime), emp.ErrBoundsWidth(), "no (measured)")
	}
	return nil
}

// ExtWindow evaluates the window-aware scorer: the method chosen for a
// window-heavy workload can differ from the point-query choice.
func ExtWindow(w io.Writer, e *Env) error {
	cards := scaledCards(e.N)
	gen := scorer.GenConfig{
		Cardinalities: cards[:2],
		Dists:         []float64{0, 0.3, 0.6, 0.9},
		Trainer:       fastPrepTrainer(e),
		Queries:       100,
		Seed:          e.Seed,
	}
	samples := scorer.GenerateWindowSamples(gen, 0.0001)
	ws, err := scorer.TrainWithWindow(samples, scorer.Config{Hidden: 24, Epochs: 300, Seed: e.Seed})
	if err != nil {
		return err
	}
	tw := table(w)
	defer tw.Flush()
	row(tw, "n", "dist", "point_choice", "window_choice(f=1)", "mixed_choice(f=0.5)")
	for _, n := range gen.Cardinalities {
		for _, dist := range gen.Dists {
			p := ws.SelectMixed(nil, n, dist, 0.5, 1, 0)
			win := ws.SelectMixed(nil, n, dist, 0.5, 1, 1)
			mix := ws.SelectMixed(nil, n, dist, 0.5, 1, 0.5)
			row(tw, n, fmt.Sprintf("%.1f", dist), p, win, mix)
		}
	}
	return nil
}

// ExtLatency reports point-query tail latencies (P50/P95/P99) per
// index on the OSM1 surrogate — averages hide the scan-window blowups
// that error-bound-based indices exhibit on sparse regions.
func ExtLatency(w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	names, qs, err := e.variantSet(dataset.OSM1, e.N, e.Seed)
	if err != nil {
		return err
	}
	tw := table(w)
	defer tw.Flush()
	row(tw, "index", "mean", "p50", "p95", "p99", "max")
	for i, name := range names {
		s := PointQueryLatencies(qs[i], pts, e.Queries, e.Seed+83)
		row(tw, name, micros(s.Mean), micros(s.P50), micros(s.P95), micros(s.P99), micros(s.Max))
	}
	return nil
}

// ExtPerIndex contrasts the generic (surrogate-measured) scorer with a
// scorer whose ground truth was measured on the target index itself,
// as Section VII-B2 prescribes ("When integrated with a base index,
// we use every applicable method ... to build an index"). LISA is the
// index whose mapping strays farthest from the surrogate.
func ExtPerIndex(w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	tw := table(w)
	defer tw.Flush()
	row(tw, "index", "scorer", "chosen", "build_time", "point_query")
	for _, name := range []string{NameLISA, NameML} {
		perIdx, _, err := e.TrainPerIndexScorer(name, nil, nil)
		if err != nil {
			return err
		}
		for _, variant := range []struct {
			label string
			sc    *scorer.Scorer
		}{{"generic", e.Scorer}, {"per-index", perIdx}} {
			sys := core.MustNewSystem(core.Config{
				Trainer:  e.Trainer,
				Lambda:   0.8,
				WQ:       1,
				Pool:     core.PoolForIndex(name),
				Selector: core.SelectorLearned,
				Scorer:   variant.sc,
				Seed:     e.Seed,
			})
			ix, err := NewLearned(name, sys, e.N)
			if err != nil {
				return err
			}
			bt, err := BuildTimed(ix, pts)
			if err != nil {
				return err
			}
			q := PointQueryTime(ix, pts, e.Queries, e.Seed+91)
			chosen := ""
			for m, c := range sys.Selections() {
				if chosen != "" {
					chosen += "+"
				}
				chosen += fmt.Sprintf("%s:%d", m, c)
			}
			row(tw, name, variant.label, chosen, secs(bt), micros(q))
		}
	}
	return nil
}

// Ext3D runs the d-dimensional build study: OG vs RS-reduced training
// of the 3-D Morton-mapped learned index (Definition 1 is
// d-dimensional; the 2-D experiments are the paper's evaluation
// setting, this driver shows the mechanisms carry over).
func Ext3D(w io.Writer, e *Env) error {
	rng := rand.New(rand.NewSource(e.Seed + 301))
	pts := make([]ndim.Point, e.N)
	for i := range pts {
		// skewed 3-D cloud: dense floor plus sparse volume
		z := rng.Float64()
		z = z * z * z
		pts[i] = ndim.Point{rng.Float64(), rng.Float64(), z}
	}
	space := ndim.UnitCube(3)
	tw := table(w)
	defer tw.Flush()
	row(tw, "variant", "build_time", "|train set|", "|error|", "point_query")
	for _, v := range []struct {
		name   string
		rsBeta int
	}{{"OG", 0}, {"ELSI/RS", 400}} {
		ix := ndim.NewIndex(space, e.Trainer, v.rsBeta)
		t0 := time.Now()
		if err := ix.Build(pts); err != nil {
			return err
		}
		bt := time.Since(t0)
		qs := make([]ndim.Point, e.Queries)
		for i := range qs {
			qs[i] = pts[rng.Intn(len(pts))]
		}
		t0 = time.Now()
		for _, q := range qs {
			if !ix.PointQuery(q) {
				return fmt.Errorf("ext-3d: stored point lost under %s", v.name)
			}
		}
		q := time.Since(t0) / time.Duration(len(qs))
		row(tw, v.name, secs(bt), ix.TrainSetSize(), ix.ErrWidth(), micros(q))
	}
	return nil
}
