package bench

import (
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/qserve"
	"elsi/internal/rmi"
)

// JSONOptions tunes the machine-readable build/query benchmark.
type JSONOptions struct {
	N       int
	Queries int
	Seed    int64
	Epochs  int
	// Reps is the number of repetitions the medians are taken over.
	Reps int
	// Workers lists the worker counts to measure (default {1, 0}, i.e.
	// serial and GOMAXPROCS — the before/after of the parallel build
	// pipeline).
	Workers []int
}

// JSONResult is one per-index, per-worker-count row.
type JSONResult struct {
	Index string `json:"index"`
	// Workers is the configured worker count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// BuildMedianMS is the median wall-clock build time over Reps runs.
	BuildMedianMS float64 `json:"build_median_ms"`
	// QueryMedianUS is the median (over Reps runs) of the average
	// point-query latency.
	QueryMedianUS float64 `json:"query_median_us"`
	// PointQPS is point-query throughput derived from QueryMedianUS.
	PointQPS float64 `json:"point_qps"`
	// WindowMedianUS is the median average window-query latency using
	// the zero-allocation append path with a reused result buffer.
	WindowMedianUS float64 `json:"window_median_us"`
	// KNNMedianUS is the median average k=10 kNN latency through the
	// append path with a reused result buffer.
	KNNMedianUS float64 `json:"knn_median_us"`
	// PointAllocs is the measured allocations per point query in the
	// steady state (0 for the learned families).
	PointAllocs float64 `json:"point_allocs_per_op"`
	// BatchedPointQPS is point-query throughput through the qserve
	// batched engine at the same worker count.
	BatchedPointQPS float64 `json:"batched_point_qps"`
}

// JSONReport is the full output of RunJSON.
type JSONReport struct {
	N          int          `json:"n"`
	Queries    int          `json:"queries"`
	Seed       int64        `json:"seed"`
	Epochs     int          `json:"epochs"`
	Reps       int          `json:"reps"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Results    []JSONResult `json:"results"`
}

// RunJSON measures build and point-query medians for every learned
// base index with the OG (direct-training) builder at each requested
// worker count and writes one JSON document to w. It is the
// machine-readable counterpart of the text experiments, sized for CI
// and for the before/after numbers in README's Performance section.
func RunJSON(w io.Writer, opts JSONOptions) error {
	if opts.N <= 0 {
		opts.N = 50000
	}
	if opts.Queries <= 0 {
		opts.Queries = 300
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 40
	}
	if opts.Reps <= 0 {
		opts.Reps = 3
	}
	if len(opts.Workers) == 0 {
		opts.Workers = []int{1, 0}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pts := dataset.PointsWithUniformDistance(rng, opts.N, 0.3)
	queries := dataset.QueriesFromData(rng, pts, opts.Queries)
	windows := dataset.WindowsFromData(rng, pts, geo.UnitRect, opts.Queries, 0.0001)

	report := JSONReport{
		N:          opts.N,
		Queries:    opts.Queries,
		Seed:       opts.Seed,
		Epochs:     opts.Epochs,
		Reps:       opts.Reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	names := append([]string{NameZM}, LearnedNames()...)
	for _, name := range names {
		for _, workers := range opts.Workers {
			trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: opts.Epochs, Seed: opts.Seed})
			builder := &base.Direct{Trainer: trainer, Workers: workers}
			buildMS := make([]float64, 0, opts.Reps)
			queryUS := make([]float64, 0, opts.Reps)
			windowUS := make([]float64, 0, opts.Reps)
			knnUS := make([]float64, 0, opts.Reps)
			batchedQPS := make([]float64, 0, opts.Reps)
			pointAllocs := 0.0
			for rep := 0; rep < opts.Reps; rep++ {
				ix, err := NewLearnedWorkers(name, builder, opts.N, workers)
				if err != nil {
					return err
				}
				t0 := time.Now()
				if err := ix.Build(pts); err != nil {
					return err
				}
				buildMS = append(buildMS, float64(time.Since(t0).Nanoseconds())/1e6)
				t0 = time.Now()
				for _, q := range queries {
					ix.PointQuery(q)
				}
				queryUS = append(queryUS, float64(time.Since(t0).Nanoseconds())/1e3/float64(len(queries)))

				var buf []geo.Point
				t0 = time.Now()
				for _, win := range windows {
					buf = index.AppendWindow(ix, win, buf[:0])
				}
				windowUS = append(windowUS, float64(time.Since(t0).Nanoseconds())/1e3/float64(len(windows)))
				t0 = time.Now()
				for _, q := range queries {
					buf = index.AppendKNN(ix, q, 10, buf[:0])
				}
				knnUS = append(knnUS, float64(time.Since(t0).Nanoseconds())/1e3/float64(len(queries)))

				eng := qserve.New(ix, workers)
				outs := eng.PointBatch(queries, nil) // warm the shard buffers
				t0 = time.Now()
				outs = eng.PointBatch(queries, outs)
				if el := time.Since(t0).Seconds(); el > 0 {
					batchedQPS = append(batchedQPS, float64(len(queries))/el)
				}
				_ = outs
				if rep == 0 {
					qi := 0
					pointAllocs = allocsPerOp(200, func() {
						ix.PointQuery(queries[qi%len(queries)])
						qi++
					})
				}
			}
			report.Results = append(report.Results, JSONResult{
				Index:           name,
				Workers:         workers,
				BuildMedianMS:   median(buildMS),
				QueryMedianUS:   median(queryUS),
				PointQPS:        qpsFromUS(median(queryUS)),
				WindowMedianUS:  median(windowUS),
				KNNMedianUS:     median(knnUS),
				PointAllocs:     pointAllocs,
				BatchedPointQPS: median(batchedQPS),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// qpsFromUS converts an average per-query latency in microseconds to
// queries per second.
func qpsFromUS(us float64) float64 {
	if us <= 0 {
		return 0
	}
	return 1e6 / us
}

// allocsPerOp measures the average heap allocations per call of fn
// over runs calls, after one warm-up call — the benchmark-binary
// counterpart of testing.AllocsPerRun.
func allocsPerOp(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm pools and buffers
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// median returns the middle value of xs (mean of the middle two for
// even lengths). xs is sorted in place.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}
