package bench

import (
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/rmi"
)

// JSONOptions tunes the machine-readable build/query benchmark.
type JSONOptions struct {
	N       int
	Queries int
	Seed    int64
	Epochs  int
	// Reps is the number of repetitions the medians are taken over.
	Reps int
	// Workers lists the worker counts to measure (default {1, 0}, i.e.
	// serial and GOMAXPROCS — the before/after of the parallel build
	// pipeline).
	Workers []int
}

// JSONResult is one per-index, per-worker-count row.
type JSONResult struct {
	Index string `json:"index"`
	// Workers is the configured worker count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// BuildMedianMS is the median wall-clock build time over Reps runs.
	BuildMedianMS float64 `json:"build_median_ms"`
	// QueryMedianUS is the median (over Reps runs) of the average
	// point-query latency.
	QueryMedianUS float64 `json:"query_median_us"`
}

// JSONReport is the full output of RunJSON.
type JSONReport struct {
	N          int          `json:"n"`
	Queries    int          `json:"queries"`
	Seed       int64        `json:"seed"`
	Epochs     int          `json:"epochs"`
	Reps       int          `json:"reps"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Results    []JSONResult `json:"results"`
}

// RunJSON measures build and point-query medians for every learned
// base index with the OG (direct-training) builder at each requested
// worker count and writes one JSON document to w. It is the
// machine-readable counterpart of the text experiments, sized for CI
// and for the before/after numbers in README's Performance section.
func RunJSON(w io.Writer, opts JSONOptions) error {
	if opts.N <= 0 {
		opts.N = 50000
	}
	if opts.Queries <= 0 {
		opts.Queries = 300
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 40
	}
	if opts.Reps <= 0 {
		opts.Reps = 3
	}
	if len(opts.Workers) == 0 {
		opts.Workers = []int{1, 0}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pts := dataset.PointsWithUniformDistance(rng, opts.N, 0.3)
	queries := dataset.QueriesFromData(rng, pts, opts.Queries)

	report := JSONReport{
		N:          opts.N,
		Queries:    opts.Queries,
		Seed:       opts.Seed,
		Epochs:     opts.Epochs,
		Reps:       opts.Reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	names := append([]string{NameZM}, LearnedNames()...)
	for _, name := range names {
		for _, workers := range opts.Workers {
			trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: opts.Epochs, Seed: opts.Seed})
			builder := &base.Direct{Trainer: trainer, Workers: workers}
			buildMS := make([]float64, 0, opts.Reps)
			queryUS := make([]float64, 0, opts.Reps)
			for rep := 0; rep < opts.Reps; rep++ {
				ix, err := NewLearnedWorkers(name, builder, opts.N, workers)
				if err != nil {
					return err
				}
				t0 := time.Now()
				if err := ix.Build(pts); err != nil {
					return err
				}
				buildMS = append(buildMS, float64(time.Since(t0).Nanoseconds())/1e6)
				t0 = time.Now()
				for _, q := range queries {
					ix.PointQuery(q)
				}
				queryUS = append(queryUS, float64(time.Since(t0).Nanoseconds())/1e3/float64(len(queries)))
			}
			report.Results = append(report.Results, JSONResult{
				Index:         name,
				Workers:       workers,
				BuildMedianMS: median(buildMS),
				QueryMedianUS: median(queryUS),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// median returns the middle value of xs (mean of the middle two for
// even lengths). xs is sorted in place.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}
