package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/methods"
	"elsi/internal/scorer"
)

// Table1 reproduces Table I: the build-cost decomposition (training
// time, method-specific extra time, |error| bounds) of every pool
// method on the OSM1 surrogate with ZM as the base index, plus the
// shared map-and-sort data preparation cost.
// Table1Ctx is the cancellable form.
func Table1(w io.Writer, e *Env) error {
	return Table1Ctx(context.Background(), w, e)
}

// Table1Ctx is Table1 with build cancellation: ctx is threaded into
// every pool-method build.
func Table1Ctx(ctx context.Context, w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	t0 := time.Now()
	d := base.Prepare(pts, geo.UnitRect, func(p geo.Point) float64 {
		return float64(curve.ZEncode(p, geo.UnitRect))
	})
	prep := time.Since(t0)
	fmt.Fprintf(w, "shared map-and-sort data preparation: %s (n=%d)\n", secs(prep), d.Len())

	tw := table(w)
	defer tw.Flush()
	row(tw, "method", "|Ds|", "train_time", "extra_time", "bounds_time(M(n))", "|error|")
	builders := scorer.PoolBuilders(e.Trainer, e.Seed)
	for _, name := range methods.PoolNames() {
		b := builders[name]
		if mr, ok := b.(interface{ Prepare() }); ok {
			mr.Prepare() // MR's pool pre-training is offline (Sec. VII-B2)
		}
		_, stats, err := base.BuildModelCtx(ctx, b, d)
		if err != nil {
			// chaos mode: a failed method reports NA instead of a row
			row(tw, name, "NA", "NA", "NA", "NA", "NA")
			continue
		}
		row(tw, stats.Method, stats.TrainSetSize, secs(stats.TrainTime), secs(stats.ReduceTime), secs(stats.BoundsTime), stats.ErrWidth)
	}
	return nil
}

// Table2 reproduces Table II: build times and point query times of
// every base index under the full ELSI system, the random selector
// ablation ("Rand"), every fixed single method, and OG — at the
// default lambda = 0.8. Inapplicable combinations print NA.
func Table2(w io.Writer, e *Env) error {
	pts := dataset.MustGenerate(dataset.OSM1, e.N, e.Seed)
	type variant struct {
		name string
		mk   func(indexName string) base.ModelBuilder
	}
	variants := []variant{
		{"ELSI", func(in string) base.ModelBuilder { return e.System(in, 0.8, core.SelectorLearned, "") }},
		{"Rand", func(in string) base.ModelBuilder { return e.System(in, 0.8, core.SelectorRandom, "") }},
	}
	for _, m := range methods.PoolNames() {
		m := m
		variants = append(variants, variant{m, func(in string) base.ModelBuilder {
			if !applicable(in, m) {
				return nil
			}
			return e.System(in, 0.8, core.SelectorFixed, m)
		}})
	}
	indexNames := []string{NameZM, NameRSMI, NameML, NameLISA}

	tw := table(w)
	defer tw.Flush()
	header := []interface{}{"metric", "index"}
	for _, v := range variants {
		header = append(header, v.name)
	}
	row(tw, header...)

	type cellPair struct{ build, query string }
	results := map[string]map[string]cellPair{}
	for _, in := range indexNames {
		results[in] = map[string]cellPair{}
		for _, v := range variants {
			b := v.mk(in)
			if b == nil {
				results[in][v.name] = cellPair{"NA", "NA"}
				continue
			}
			ix, err := NewLearned(in, b, e.N)
			if err != nil {
				return err
			}
			buildTime, err := BuildTimed(ix, pts)
			if err != nil {
				return err
			}
			q := PointQueryTime(ix, pts, e.Queries, e.Seed+13)
			results[in][v.name] = cellPair{secs(buildTime), micros(q)}
		}
	}
	for _, in := range indexNames {
		cells := []interface{}{"build", in}
		for _, v := range variants {
			cells = append(cells, results[in][v.name].build)
		}
		row(tw, cells...)
	}
	for _, in := range indexNames {
		cells := []interface{}{"point_query", in}
		for _, v := range variants {
			cells = append(cells, results[in][v.name].query)
		}
		row(tw, cells...)
	}
	return nil
}

// applicable reports whether a fixed method applies to an index.
func applicable(indexName, method string) bool {
	for _, m := range core.PoolForIndex(indexName) {
		if m == method {
			return true
		}
	}
	return false
}
