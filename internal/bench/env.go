// Package bench is the experiment harness: one driver per table and
// figure of Section VII. Every driver prints the same rows or series
// the paper reports, over the scaled surrogate data sets of
// internal/dataset, so EXPERIMENTS.md can record paper-vs-measured
// shape for each artifact.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
)

// Env bundles everything the experiment drivers share: the data scale,
// the model family, and the offline-trained ELSI components.
type Env struct {
	// N is the data set cardinality (the paper uses 100M+; the default
	// CLI scale is 200k, tests use less — see DESIGN.md substitutions).
	N int
	// Queries is the number of queries per measurement.
	Queries int
	// Seed drives all data generation.
	Seed int64
	// Trainer is the model family of the base indices (FFN, as in the
	// paper).
	Trainer rmi.Trainer
	// Scorer is the trained method scorer; nil until TrainScorer.
	Scorer *scorer.Scorer
	// ScorerSamples is the ground truth the scorer was trained on.
	ScorerSamples []scorer.Sample
	// Predictor is the trained rebuild predictor.
	Predictor *rebuild.Predictor
	// ScorerPrepTime records the offline preparation cost.
	ScorerPrepTime time.Duration
}

// Options tunes the environment construction.
type Options struct {
	N         int
	Queries   int
	Seed      int64
	FFNEpochs int
	// ScorerCards / ScorerDists define the preparation grid; empty
	// means the defaults scaled to N.
	ScorerCards []int
	ScorerDists []float64
	// CachePath, when set, persists and reuses the scorer and its
	// ground-truth samples across runs (files <CachePath>.scorer and
	// <CachePath>.samples) — the preparation is a one-off offline task.
	CachePath string
}

// NewEnv constructs an environment and trains the ELSI components
// (the offline one-off preparation of Section VII-B2).
func NewEnv(opts Options) (*Env, error) {
	if opts.N <= 0 {
		opts.N = 200000
	}
	if opts.Queries <= 0 {
		opts.Queries = 1000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.FFNEpochs <= 0 {
		opts.FFNEpochs = 60
	}
	e := &Env{
		N:       opts.N,
		Queries: opts.Queries,
		Seed:    opts.Seed,
		Trainer: rmi.FFNTrainer(rmi.FFNConfig{Hidden: 16, Epochs: opts.FFNEpochs, Seed: opts.Seed}),
	}
	cards := opts.ScorerCards
	if len(cards) == 0 {
		cards = scaledCards(opts.N)
	}
	dists := opts.ScorerDists
	if len(dists) == 0 {
		dists = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	t0 := time.Now()
	if opts.CachePath != "" {
		if sc, err := scorer.Load(opts.CachePath + ".scorer"); err == nil {
			if samples, err := scorer.LoadSamples(opts.CachePath + ".samples"); err == nil {
				e.Scorer = sc
				e.ScorerSamples = samples
			}
		}
	}
	if e.Scorer == nil {
		gen := scorer.GenConfig{
			Cardinalities: cards,
			Dists:         dists,
			Trainer:       e.Trainer,
			Queries:       200,
			Seed:          opts.Seed,
		}
		sc, samples, err := core.TrainScorer(gen, scorer.Config{Hidden: 24, Epochs: 300, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		e.Scorer = sc
		e.ScorerSamples = samples
		if opts.CachePath != "" {
			if err := sc.Save(opts.CachePath + ".scorer"); err != nil {
				return nil, err
			}
			if err := scorer.SaveSamples(opts.CachePath+".samples", samples); err != nil {
				return nil, err
			}
		}
	}
	e.ScorerPrepTime = time.Since(t0)
	rng := rand.New(rand.NewSource(opts.Seed))
	pred, err := rebuild.TrainPredictor(rebuild.HeuristicSamples(rng, 1000), rebuild.PredictorConfig{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	e.Predictor = pred
	return e, nil
}

// scaledCards maps the paper's 10^4..10^8 preparation grid onto the
// working scale: five cardinalities log-spaced up to N/2.
func scaledCards(n int) []int {
	top := n / 2
	if top < 1000 {
		top = 1000
	}
	cards := make([]int, 0, 5)
	c := top
	for i := 0; i < 5; i++ {
		cards = append(cards, c)
		c = c * 10 / 32 // ~half a decade per step
		if c < 100 {
			c = 100
		}
	}
	// ascending
	for i, j := 0, len(cards)-1; i < j; i, j = i+1, j-1 {
		cards[i], cards[j] = cards[j], cards[i]
	}
	return cards
}

// System builds an ELSI build processor for a base index (by name,
// for pool restrictions) at the given lambda.
func (e *Env) System(indexName string, lambda float64, kind core.SelectorKind, fixed string) *core.System {
	return core.MustNewSystem(core.Config{
		Trainer: e.Trainer,
		// the sweeps pass λ = 0 deliberately (Fig. 9/11/13): mark it
		// explicit so NewSystem does not substitute the 0.8 default
		Lambda:    lambda,
		LambdaSet: true,
		WQ:        1,
		Pool:      core.PoolForIndex(indexName),
		Selector:  kind,
		Fixed:     fixed,
		Scorer:    e.Scorer,
		Seed:      e.Seed,
	})
}

// table starts a tab-aligned output table.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// row writes one tab-separated row.
func row(w io.Writer, cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// secs formats a duration as seconds with 3 decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// micros formats a per-query duration in microseconds.
func micros(d time.Duration) string { return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3) }

// TrainPerIndexScorer measures ground truth by building the named base
// index itself (Section VII-B2: "When integrated with a base index, we
// use every applicable method in the method pool to build an index for
// each generated data set") and trains a scorer dedicated to it. The
// generic environment scorer measures on a single-model ZM surrogate;
// per-index scorers are more faithful and noticeably better for LISA,
// whose mapping differs most from the surrogate's.
func (e *Env) TrainPerIndexScorer(indexName string, cards []int, dists []float64) (*scorer.Scorer, []scorer.Sample, error) {
	if len(cards) == 0 {
		cards = scaledCards(e.N)[:3]
	}
	if len(dists) == 0 {
		dists = []float64{0, 0.3, 0.6, 0.9}
	}
	gen := scorer.GenConfig{
		Cardinalities: cards,
		Dists:         dists,
		Trainer:       e.Trainer,
		Queries:       200,
		Seed:          e.Seed,
	}
	measure := func(b base.ModelBuilder, pts []geo.Point, queries []geo.Point) (float64, float64, error) {
		ix, err := NewLearned(indexName, b, len(pts))
		if err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		if err := ix.Build(pts); err != nil {
			return 0, 0, err
		}
		buildSec := time.Since(t0).Seconds()
		t0 = time.Now()
		for _, q := range queries {
			ix.PointQuery(q)
		}
		querySec := time.Since(t0).Seconds() / float64(maxI(len(queries), 1))
		return buildSec, querySec, nil
	}
	samples, err := scorer.GenerateSamplesMeasured(gen, core.PoolForIndex(indexName), measure)
	if err != nil {
		return nil, nil, err
	}
	sc, err := scorer.Train(samples, scorer.Config{Hidden: 24, Epochs: 300, Seed: e.Seed})
	if err != nil {
		return nil, nil, err
	}
	return sc, samples, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
