// Package lisa implements LISA (Li et al. 2020): the space is
// partitioned into columns by the x-quantiles of the data, every point
// maps to column index + normalized y (the "weighted aggregation of
// coordinates" mapping simplified to two dimensions), and a learned
// shard-prediction function maps keys to shards of data pages. Points
// are stored shard-wise; insertions go to the predicted shard and
// create new pages as needed — the mechanism that skews LISA's
// structure under updates (Section II). As in the paper's
// implementation, using an FFN for the shard function breaks its
// monotonicity, making window queries approximate (Section VII-B1).
//
// Because the column boundaries are the data's own quantiles, building
// methods that synthesize points not in the data set (CL, RL) do not
// apply to LISA (Section VII-A).
package lisa

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/parallel"
	"elsi/internal/rmi"
	"elsi/internal/store"
	"elsi/internal/zm"
)

// Config controls index construction.
type Config struct {
	Space geo.Rect
	// Builder builds the shard-prediction model.
	Builder base.ModelBuilder
	// Columns is the number of x-quantile columns; 0 derives it from
	// the cardinality as sqrt(n/B).
	Columns int
	// Workers bounds the parallel build stages — the x-quantile sort,
	// key mapping, and the key/point sort (0 = GOMAXPROCS, 1 = serial).
	// Builds are bit-identical across worker counts.
	Workers int
	// BuildTimeout, when positive, bounds each Build call: BuildCtx
	// runs under a context that expires after it, and the build
	// returns the context error. Zero means unbounded.
	BuildTimeout time.Duration
}

// Index is the LISA index.
type Index struct {
	cfg       Config
	colBounds []float64 // ascending x boundaries, len = columns-1
	model     *rmi.Bounded
	// Shards are parallel key/point columns per shard id, key-sorted
	// within each shard. A fresh build aliases contiguous sub-ranges of
	// the prepared columns (full-capacity slices, so an insert's append
	// reallocates instead of clobbering the neighbouring shard).
	shardKeys   [][]float64
	shardPts    [][]geo.Point
	size        int
	stats       []base.BuildStats
	invocations atomic.Int64
	scanned     atomic.Int64
}

// New returns an unbuilt LISA index.
func New(cfg Config) *Index {
	return &Index{cfg: cfg}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "LISA" }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.size }

// columnOf returns the column index of x.
//
//elsi:noalloc
func (ix *Index) columnOf(x float64) int {
	return sort.SearchFloat64s(ix.colBounds, x)
}

// MapKey is LISA's grid mapping: column index plus the normalized y
// offset, so keys order column-major.
//
//elsi:noalloc
func (ix *Index) MapKey(p geo.Point) float64 {
	col := ix.columnOf(p.X)
	ny := (p.Y - ix.cfg.Space.MinY) / ix.cfg.Space.Height()
	if ny < 0 {
		ny = 0
	}
	if ny > 0.999999 {
		ny = 0.999999
	}
	return float64(col) + ny
}

// Build implements index.Index. It runs BuildCtx under a background
// context, bounded by Config.BuildTimeout when set.
func (ix *Index) Build(pts []geo.Point) error {
	return ix.BuildCtx(context.Background(), pts)
}

// BuildCtx is Build with cooperative cancellation: the build aborts
// between stages when ctx is done (or the per-build timeout expires)
// and returns the context's error. A failed build leaves the index
// unusable; callers must discard it or rebuild.
func (ix *Index) BuildCtx(ctx context.Context, pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	if ix.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ix.cfg.BuildTimeout)
		defer cancel()
	}
	ix.stats = ix.stats[:0]
	ix.size = len(pts)
	cols := ix.cfg.Columns
	if cols <= 0 {
		cols = sqrtInt(len(pts) / store.BlockSize)
		if cols < 1 {
			cols = 1
		}
	}
	// column boundaries = x-quantiles of the data
	xs := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
	}
	parallel.SortFloat64s(xs, ix.cfg.Workers)
	ix.colBounds = ix.colBounds[:0]
	for c := 1; c < cols; c++ {
		ix.colBounds = append(ix.colBounds, xs[c*len(xs)/cols])
	}
	d := base.PrepareWorkers(pts, ix.cfg.Space, ix.MapKey, ix.cfg.Workers)
	if d.Len() == 0 {
		ix.model = &rmi.Bounded{Model: rmi.ConstModel(0), N: 0}
		ix.shardKeys = [][]float64{nil}
		ix.shardPts = [][]geo.Point{nil}
		return nil
	}
	m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, d)
	if err != nil {
		return err
	}
	ix.model = m
	ix.stats = append(ix.stats, st)
	// Shard-wise storage: rank i lands in shard i/B. Shards are
	// contiguous rank ranges, so they alias the prepared columns
	// directly instead of copying entry by entry; the three-index
	// slices pin each shard's capacity to its length so a later append
	// cannot write into the next shard's range.
	numShards := (d.Len() + store.BlockSize - 1) / store.BlockSize
	ix.shardKeys = make([][]float64, numShards)
	ix.shardPts = make([][]geo.Point, numShards)
	for s := 0; s < numShards; s++ {
		lo := s * store.BlockSize
		hi := lo + store.BlockSize
		if hi > d.Len() {
			hi = d.Len()
		}
		ix.shardKeys[s] = d.Keys[lo:hi:hi]
		ix.shardPts[s] = d.Pts[lo:hi:hi]
	}
	return nil
}

// shardSpan converts the model's rank window for key into a shard
// index window [sLo, sHi].
//
//elsi:noalloc
func (ix *Index) shardSpan(key float64) (int, int) {
	ix.invocations.Add(1)
	rLo, rHi := ix.model.SearchRange(key)
	if rHi > 0 {
		rHi--
	}
	sLo := rLo / store.BlockSize
	sHi := rHi / store.BlockSize
	if sLo < 0 {
		sLo = 0
	}
	if sHi >= len(ix.shardKeys) {
		sHi = len(ix.shardKeys) - 1
	}
	return sLo, sHi
}

// predictShard returns the single shard an insertion of key targets.
//
//elsi:noalloc
func (ix *Index) predictShard(key float64) int {
	ix.invocations.Add(1)
	s := ix.model.PredictRank(key) / store.BlockSize
	if s < 0 {
		s = 0
	}
	if s >= len(ix.shardKeys) {
		s = len(ix.shardKeys) - 1
	}
	return s
}

// findInShards scans shards [sLo, sHi] for p, charging the entries
// visited to the scan counter with a single atomic add.
//
//elsi:noalloc
func (ix *Index) findInShards(sLo, sHi int, p geo.Point) bool {
	visited := int64(0)
	for s := sLo; s <= sHi && s < len(ix.shardPts); s++ {
		for j, q := range ix.shardPts[s] {
			if q == p {
				ix.scanned.Add(visited + int64(j+1))
				return true
			}
		}
		visited += int64(len(ix.shardPts[s]))
	}
	ix.scanned.Add(visited)
	return false
}

// collectWindowShards appends to out the points of shards [sLo, sHi]
// whose keys lie in [loKey, hiKey] and which fall inside win, charging
// the visited entries with a single atomic add.
//
//elsi:noalloc
func (ix *Index) collectWindowShards(sLo, sHi int, loKey, hiKey float64, win geo.Rect, out []geo.Point) []geo.Point {
	visited := int64(0)
	for s := sLo; s <= sHi && s < len(ix.shardKeys); s++ {
		ks, ps := ix.shardKeys[s], ix.shardPts[s]
		for j, k := range ks {
			if k >= loKey && k <= hiKey && win.Contains(ps[j]) {
				out = append(out, ps[j])
			}
		}
		visited += int64(len(ks))
	}
	ix.scanned.Add(visited)
	return out
}

// PointQuery implements index.Index (exact): a stored point's key
// always predicts into the shard window that holds it — bounds cover
// built keys, and inserted points were placed by the same prediction.
//
//elsi:noalloc
func (ix *Index) PointQuery(p geo.Point) bool {
	if ix.size == 0 || ix.model == nil {
		return false
	}
	key := ix.MapKey(p)
	sLo, sHi := ix.shardSpan(key)
	// inserted entries may sit in the single predicted shard even if
	// the bounds window is narrower
	ps := ix.predictShard(key)
	if ps < sLo {
		sLo = ps
	}
	if ps > sHi {
		sHi = ps
	}
	return ix.findInShards(sLo, sHi, p)
}

// WindowQuery implements index.Index (approximate when the shard model
// is a non-monotone FFN): one key interval per overlapping column.
func (ix *Index) WindowQuery(win geo.Rect) []geo.Point {
	return ix.WindowQueryAppend(win, nil)
}

// WindowQueryAppend implements index.WindowAppender.
//
//elsi:noalloc
func (ix *Index) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if ix.size == 0 || ix.model == nil {
		return out
	}
	cLo := ix.columnOf(win.MinX)
	cHi := ix.columnOf(win.MaxX)
	nyLo := (win.MinY - ix.cfg.Space.MinY) / ix.cfg.Space.Height()
	nyHi := (win.MaxY - ix.cfg.Space.MinY) / ix.cfg.Space.Height()
	if nyLo < 0 {
		nyLo = 0
	}
	if nyHi > 0.999999 {
		nyHi = 0.999999
	}
	if nyHi < nyLo {
		return out
	}
	for c := cLo; c <= cHi; c++ {
		loKey := float64(c) + nyLo
		hiKey := float64(c) + nyHi
		sLo, _ := ix.shardSpan(loKey)
		_, sHi := ix.shardSpan(hiKey)
		if sHi < sLo {
			sLo, sHi = sHi, sLo
		}
		out = ix.collectWindowShards(sLo, sHi, loKey, hiKey, win, out)
	}
	return out
}

// KNN implements index.Index via expanding windows (approximate).
func (ix *Index) KNN(q geo.Point, k int) []geo.Point {
	return zm.WindowKNN(ix, ix.cfg.Space, ix.size, q, k)
}

// KNNAppend implements index.KNNAppender via the shared expanding-
// window append path.
//
//elsi:noalloc
func (ix *Index) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	return zm.WindowKNNAppend(ix, ix.cfg.Space, ix.size, q, k, out)
}

// Insert implements index.Inserter: the point goes to its predicted
// shard (LISA's built-in insertion procedure); shards grow page by
// page, so skewed insertions bloat individual shards.
func (ix *Index) Insert(p geo.Point) {
	if ix.model == nil {
		ix.Build(nil)
	}
	key := ix.MapKey(p)
	s := ix.predictShard(key)
	ks, ps := ix.shardKeys[s], ix.shardPts[s]
	pos := sort.SearchFloat64s(ks, key)
	// The append reallocates on a freshly built shard (capacity pinned
	// to length), detaching it from the shared build columns.
	ks = append(ks, 0)
	ps = append(ps, geo.Point{})
	copy(ks[pos+1:], ks[pos:])
	copy(ps[pos+1:], ps[pos:])
	ks[pos] = key
	ps[pos] = p
	ix.shardKeys[s] = ks
	ix.shardPts[s] = ps
	ix.size++
}

// Delete implements index.Deleter through the same prediction path as
// PointQuery.
func (ix *Index) Delete(p geo.Point) bool {
	if ix.size == 0 || ix.model == nil {
		return false
	}
	key := ix.MapKey(p)
	sLo, sHi := ix.shardSpan(key)
	ps := ix.predictShard(key)
	if ps < sLo {
		sLo = ps
	}
	if ps > sHi {
		sHi = ps
	}
	for s := sLo; s <= sHi && s < len(ix.shardPts); s++ {
		for i, q := range ix.shardPts[s] {
			if q == p {
				ks, pts := ix.shardKeys[s], ix.shardPts[s]
				copy(ks[i:], ks[i+1:])
				copy(pts[i:], pts[i+1:])
				ix.shardKeys[s] = ks[:len(ks)-1]
				ix.shardPts[s] = pts[:len(pts)-1]
				ix.size--
				return true
			}
		}
	}
	return false
}

// Stats returns per-model build statistics.
func (ix *Index) Stats() []base.BuildStats { return ix.stats }

// ModelInvocations returns the model-invocation counter.
func (ix *Index) ModelInvocations() int64 { return ix.invocations.Load() }

// Scanned returns the cumulative scanned entries.
func (ix *Index) Scanned() int64 { return ix.scanned.Load() }

// ResetCounters zeroes the counters.
func (ix *Index) ResetCounters() {
	ix.invocations.Store(0)
	ix.scanned.Store(0)
}

// Pages returns the total data-page count (ceil(len/B) per shard), the
// skew indicator the insertion experiments track.
func (ix *Index) Pages() int {
	pages := 0
	for _, ks := range ix.shardKeys {
		pages += (len(ks) + store.BlockSize - 1) / store.BlockSize
	}
	return pages
}

// MaxShardLen returns the largest shard's entry count (skew metric).
func (ix *Index) MaxShardLen() int {
	max := 0
	for _, ks := range ix.shardKeys {
		if len(ks) > max {
			max = len(ks)
		}
	}
	return max
}

// sqrtInt returns the integer square root of v.
func sqrtInt(v int) int {
	if v <= 0 {
		return 0
	}
	x := v
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + v/x) / 2
	}
	return x
}
