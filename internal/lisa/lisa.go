// Package lisa implements LISA (Li et al. 2020): the space is
// partitioned into columns by the x-quantiles of the data, every point
// maps to column index + normalized y (the "weighted aggregation of
// coordinates" mapping simplified to two dimensions), and a learned
// shard-prediction function maps keys to shards of data pages. Points
// are stored shard-wise; insertions go to the predicted shard and
// create new pages as needed — the mechanism that skews LISA's
// structure under updates (Section II). As in the paper's
// implementation, using an FFN for the shard function breaks its
// monotonicity, making window queries approximate (Section VII-B1).
//
// Because the column boundaries are the data's own quantiles, building
// methods that synthesize points not in the data set (CL, RL) do not
// apply to LISA (Section VII-A).
package lisa

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/parallel"
	"elsi/internal/rmi"
	"elsi/internal/store"
	"elsi/internal/zm"
)

// Config controls index construction.
type Config struct {
	Space geo.Rect
	// Builder builds the shard-prediction model.
	Builder base.ModelBuilder
	// Columns is the number of x-quantile columns; 0 derives it from
	// the cardinality as sqrt(n/B).
	Columns int
	// Workers bounds the parallel build stages — the x-quantile sort,
	// key mapping, and the key/point sort (0 = GOMAXPROCS, 1 = serial).
	// Builds are bit-identical across worker counts.
	Workers int
	// BuildTimeout, when positive, bounds each Build call: BuildCtx
	// runs under a context that expires after it, and the build
	// returns the context error. Zero means unbounded.
	BuildTimeout time.Duration
}

// Index is the LISA index.
type Index struct {
	cfg         Config
	colBounds   []float64 // ascending x boundaries, len = columns-1
	model       *rmi.Bounded
	shards      [][]store.Entry // shard id -> key-sorted entries
	size        int
	stats       []base.BuildStats
	invocations atomic.Int64
	scanned     atomic.Int64
}

// New returns an unbuilt LISA index.
func New(cfg Config) *Index {
	return &Index{cfg: cfg}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "LISA" }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.size }

// columnOf returns the column index of x.
func (ix *Index) columnOf(x float64) int {
	return sort.SearchFloat64s(ix.colBounds, x)
}

// MapKey is LISA's grid mapping: column index plus the normalized y
// offset, so keys order column-major.
func (ix *Index) MapKey(p geo.Point) float64 {
	col := ix.columnOf(p.X)
	ny := (p.Y - ix.cfg.Space.MinY) / ix.cfg.Space.Height()
	if ny < 0 {
		ny = 0
	}
	if ny > 0.999999 {
		ny = 0.999999
	}
	return float64(col) + ny
}

// Build implements index.Index. It runs BuildCtx under a background
// context, bounded by Config.BuildTimeout when set.
func (ix *Index) Build(pts []geo.Point) error {
	return ix.BuildCtx(context.Background(), pts)
}

// BuildCtx is Build with cooperative cancellation: the build aborts
// between stages when ctx is done (or the per-build timeout expires)
// and returns the context's error. A failed build leaves the index
// unusable; callers must discard it or rebuild.
func (ix *Index) BuildCtx(ctx context.Context, pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	if ix.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ix.cfg.BuildTimeout)
		defer cancel()
	}
	ix.stats = ix.stats[:0]
	ix.size = len(pts)
	cols := ix.cfg.Columns
	if cols <= 0 {
		cols = sqrtInt(len(pts) / store.BlockSize)
		if cols < 1 {
			cols = 1
		}
	}
	// column boundaries = x-quantiles of the data
	xs := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
	}
	parallel.SortFloat64s(xs, ix.cfg.Workers)
	ix.colBounds = ix.colBounds[:0]
	for c := 1; c < cols; c++ {
		ix.colBounds = append(ix.colBounds, xs[c*len(xs)/cols])
	}
	d := base.PrepareWorkers(pts, ix.cfg.Space, ix.MapKey, ix.cfg.Workers)
	if d.Len() == 0 {
		ix.model = &rmi.Bounded{Model: rmi.ConstModel(0), N: 0}
		ix.shards = [][]store.Entry{nil}
		return nil
	}
	m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, d)
	if err != nil {
		return err
	}
	ix.model = m
	ix.stats = append(ix.stats, st)
	// shard-wise storage: rank i lands in shard i/B
	numShards := (d.Len() + store.BlockSize - 1) / store.BlockSize
	ix.shards = make([][]store.Entry, numShards)
	for i := 0; i < d.Len(); i++ {
		s := i / store.BlockSize
		ix.shards[s] = append(ix.shards[s], store.Entry{Key: d.Keys[i], Point: d.Pts[i]})
	}
	return nil
}

// shardSpan converts the model's rank window for key into a shard
// index window [sLo, sHi].
func (ix *Index) shardSpan(key float64) (int, int) {
	ix.invocations.Add(1)
	rLo, rHi := ix.model.SearchRange(key)
	if rHi > 0 {
		rHi--
	}
	sLo := rLo / store.BlockSize
	sHi := rHi / store.BlockSize
	if sLo < 0 {
		sLo = 0
	}
	if sHi >= len(ix.shards) {
		sHi = len(ix.shards) - 1
	}
	return sLo, sHi
}

// predictShard returns the single shard an insertion of key targets.
func (ix *Index) predictShard(key float64) int {
	ix.invocations.Add(1)
	s := ix.model.PredictRank(key) / store.BlockSize
	if s < 0 {
		s = 0
	}
	if s >= len(ix.shards) {
		s = len(ix.shards) - 1
	}
	return s
}

// scanShards visits the entries of shards [sLo, sHi], charging the
// scan counter.
func (ix *Index) scanShards(sLo, sHi int, fn func(store.Entry) bool) {
	for s := sLo; s <= sHi && s < len(ix.shards); s++ {
		for _, e := range ix.shards[s] {
			ix.scanned.Add(1)
			if !fn(e) {
				return
			}
		}
	}
}

// PointQuery implements index.Index (exact): a stored point's key
// always predicts into the shard window that holds it — bounds cover
// built keys, and inserted points were placed by the same prediction.
func (ix *Index) PointQuery(p geo.Point) bool {
	if ix.size == 0 || ix.model == nil {
		return false
	}
	key := ix.MapKey(p)
	sLo, sHi := ix.shardSpan(key)
	// inserted entries may sit in the single predicted shard even if
	// the bounds window is narrower
	ps := ix.predictShard(key)
	if ps < sLo {
		sLo = ps
	}
	if ps > sHi {
		sHi = ps
	}
	found := false
	ix.scanShards(sLo, sHi, func(e store.Entry) bool {
		if e.Point == p {
			found = true
			return false
		}
		return true
	})
	return found
}

// WindowQuery implements index.Index (approximate when the shard model
// is a non-monotone FFN): one key interval per overlapping column.
func (ix *Index) WindowQuery(win geo.Rect) []geo.Point {
	var out []geo.Point
	if ix.size == 0 || ix.model == nil {
		return out
	}
	cLo := ix.columnOf(win.MinX)
	cHi := ix.columnOf(win.MaxX)
	nyLo := (win.MinY - ix.cfg.Space.MinY) / ix.cfg.Space.Height()
	nyHi := (win.MaxY - ix.cfg.Space.MinY) / ix.cfg.Space.Height()
	if nyLo < 0 {
		nyLo = 0
	}
	if nyHi > 0.999999 {
		nyHi = 0.999999
	}
	if nyHi < nyLo {
		return out
	}
	for c := cLo; c <= cHi; c++ {
		loKey := float64(c) + nyLo
		hiKey := float64(c) + nyHi
		sLo, _ := ix.shardSpan(loKey)
		_, sHi := ix.shardSpan(hiKey)
		if sHi < sLo {
			sLo, sHi = sHi, sLo
		}
		ix.scanShards(sLo, sHi, func(e store.Entry) bool {
			if e.Key >= loKey && e.Key <= hiKey && win.Contains(e.Point) {
				out = append(out, e.Point)
			}
			return true
		})
	}
	return out
}

// KNN implements index.Index via expanding windows (approximate).
func (ix *Index) KNN(q geo.Point, k int) []geo.Point {
	return zm.WindowKNN(ix, ix.cfg.Space, ix.size, q, k)
}

// Insert implements index.Inserter: the point goes to its predicted
// shard (LISA's built-in insertion procedure); shards grow page by
// page, so skewed insertions bloat individual shards.
func (ix *Index) Insert(p geo.Point) {
	if ix.model == nil {
		ix.Build(nil)
	}
	key := ix.MapKey(p)
	s := ix.predictShard(key)
	shard := ix.shards[s]
	pos := sort.Search(len(shard), func(i int) bool { return shard[i].Key >= key })
	shard = append(shard, store.Entry{})
	copy(shard[pos+1:], shard[pos:])
	shard[pos] = store.Entry{Key: key, Point: p}
	ix.shards[s] = shard
	ix.size++
}

// Delete implements index.Deleter through the same prediction path as
// PointQuery.
func (ix *Index) Delete(p geo.Point) bool {
	if ix.size == 0 || ix.model == nil {
		return false
	}
	key := ix.MapKey(p)
	sLo, sHi := ix.shardSpan(key)
	ps := ix.predictShard(key)
	if ps < sLo {
		sLo = ps
	}
	if ps > sHi {
		sHi = ps
	}
	for s := sLo; s <= sHi && s < len(ix.shards); s++ {
		for i, e := range ix.shards[s] {
			if e.Point == p {
				shard := ix.shards[s]
				copy(shard[i:], shard[i+1:])
				ix.shards[s] = shard[:len(shard)-1]
				ix.size--
				return true
			}
		}
	}
	return false
}

// Stats returns per-model build statistics.
func (ix *Index) Stats() []base.BuildStats { return ix.stats }

// ModelInvocations returns the model-invocation counter.
func (ix *Index) ModelInvocations() int64 { return ix.invocations.Load() }

// Scanned returns the cumulative scanned entries.
func (ix *Index) Scanned() int64 { return ix.scanned.Load() }

// ResetCounters zeroes the counters.
func (ix *Index) ResetCounters() {
	ix.invocations.Store(0)
	ix.scanned.Store(0)
}

// Pages returns the total data-page count (ceil(len/B) per shard), the
// skew indicator the insertion experiments track.
func (ix *Index) Pages() int {
	pages := 0
	for _, s := range ix.shards {
		pages += (len(s) + store.BlockSize - 1) / store.BlockSize
	}
	return pages
}

// MaxShardLen returns the largest shard's entry count (skew metric).
func (ix *Index) MaxShardLen() int {
	max := 0
	for _, s := range ix.shards {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}

// sqrtInt returns the integer square root of v.
func sqrtInt(v int) int {
	if v <= 0 {
		return 0
	}
	x := v
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + v/x) / 2
	}
	return x
}
