package lisa

import (
	"math/rand"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/indextest"
	"elsi/internal/rmi"
)

func ffnBuilder() base.ModelBuilder {
	return &base.Direct{Trainer: rmi.FFNTrainer(rmi.FFNConfig{Hidden: 8, Epochs: 8, Seed: 1})}
}

func TestQueryAppendEquivalence(t *testing.T) {
	pts := dataset.UniformPoints(rand.New(rand.NewSource(41)), 3000)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	indextest.AppendEquivalence(t, ix, pts, 42)
}

func TestPointQueryZeroAlloc(t *testing.T) {
	pts := dataset.UniformPoints(rand.New(rand.NewSource(43)), 3000)
	ix := New(Config{Space: geo.UnitRect, Builder: ffnBuilder()})
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	i := 0
	indextest.AssertZeroAllocs(t, "LISA.PointQuery", func() {
		ix.PointQuery(pts[i%len(pts)])
		i++
	})
}
