package lisa

import (
	"math/rand"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/indextest"
	"elsi/internal/methods"
	"elsi/internal/rmi"
)

func ogBuilder() base.ModelBuilder {
	return &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
}

func TestConformance(t *testing.T) {
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
			indextest.Conformance(t, ix, pts, 42, 0.9, 0.85)
		})
	}
}

func TestConformanceReducedBuilder(t *testing.T) {
	// LISA supports the subset-producing methods (SP, RS); CL and RL
	// are excluded by the system configuration.
	pts := dataset.MustGenerate(dataset.TPCH, 4000, 2)
	b := &methods.SP{Rho: 0.02, Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
	ix := New(Config{Space: geo.UnitRect, Builder: b})
	indextest.Conformance(t, ix, pts, 43, 0.9, 0.85)
}

func TestMapKeyColumnStructure(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 5000, 3)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Columns: 8})
	ix.Build(pts)
	for _, p := range pts[:200] {
		k := ix.MapKey(p)
		col := int(k)
		if col < 0 || col >= 8 {
			t.Fatalf("key %v implies column %d", k, col)
		}
		frac := k - float64(col)
		if frac < 0 || frac >= 1 {
			t.Fatalf("fraction %v out of range", frac)
		}
	}
	// quantile columns: roughly equal population per column
	counts := make([]int, 8)
	for _, p := range pts {
		counts[int(ix.MapKey(p))]++
	}
	for c, got := range counts {
		if got < 5000/8-150 || got > 5000/8+150 {
			t.Errorf("column %d holds %d points, want ~%d", c, got, 5000/8)
		}
	}
}

func TestInsertSplitsPages(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 4)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	ix.Build(pts)
	pagesBefore := ix.Pages()
	rng := rand.New(rand.NewSource(5))
	var ins []geo.Point
	for i := 0; i < 1000; i++ {
		// skewed insertions into one corner (the Figure 15 workload)
		p := geo.Point{X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1}
		ix.Insert(p)
		ins = append(ins, p)
	}
	if ix.Pages() <= pagesBefore {
		t.Errorf("pages did not grow: %d -> %d", pagesBefore, ix.Pages())
	}
	if ix.Len() != 3000 {
		t.Errorf("Len = %d", ix.Len())
	}
	for _, p := range ins {
		if !ix.PointQuery(p) {
			t.Fatalf("inserted point %v lost", p)
		}
	}
	for _, p := range pts[:200] {
		if !ix.PointQuery(p) {
			t.Fatalf("original point %v lost", p)
		}
	}
}

func TestWindowAfterInserts(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM2, 3000, 6)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	ix.Build(pts)
	bf := index.NewBruteForce()
	bf.Build(pts)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		p := geo.Point{X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1}
		ix.Insert(p)
		bf.Insert(p)
	}
	sum, cnt := 0.0, 0
	for trial := 0; trial < 20; trial++ {
		c := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		win := geo.Rect{MinX: c.X - 0.05, MinY: c.Y - 0.05, MaxX: c.X + 0.05, MaxY: c.Y + 0.05}
		want := bf.WindowQuery(win)
		if len(want) == 0 {
			continue
		}
		sum += index.Recall(ix.WindowQuery(win), want)
		cnt++
	}
	if cnt > 0 && sum/float64(cnt) < 0.85 {
		t.Errorf("post-insert recall %.3f", sum/float64(cnt))
	}
}

func TestDelete(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 8)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	ix.Build(pts)
	if !ix.Delete(pts[10]) {
		t.Fatal("Delete of stored point failed")
	}
	if ix.PointQuery(pts[10]) {
		t.Error("deleted point still found")
	}
	if ix.Len() != 999 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Delete(geo.Point{X: 5, Y: 5}) {
		t.Error("Delete of absent point returned true")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	ix.Build(nil)
	if ix.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("phantom point")
	}
	if got := ix.KNN(geo.Point{}, 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
	ix.Insert(geo.Point{X: 0.5, Y: 0.5})
	if !ix.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("insert into empty index lost")
	}
}

func TestCounters(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 9)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	ix.Build(pts)
	ix.ResetCounters()
	ix.PointQuery(pts[0])
	if ix.ModelInvocations() == 0 {
		t.Error("no invocations")
	}
	if ix.Scanned() == 0 {
		t.Error("no scans")
	}
	if len(ix.Stats()) != 1 {
		t.Errorf("stats = %d", len(ix.Stats()))
	}
}

func BenchmarkPointQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	ix.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PointQuery(pts[i%len(pts)])
	}
}

func BenchmarkInsert(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	ix.Build(pts)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(geo.Point{X: rng.Float64(), Y: rng.Float64()})
	}
}
