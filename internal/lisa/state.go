package lisa

import (
	"fmt"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/rmi"
	"elsi/internal/snapshot"
)

// stateVersion is the on-disk version of the LISA state encoding.
const stateVersion = 1

// StateAppend implements snapshot.Stater: the column boundaries, the
// shard-prediction model, and the shard-wise key/point columns. Config
// is not serialized — construct with the same Config, then restore.
func (ix *Index) StateAppend(b []byte) ([]byte, error) {
	b = snapshot.AppendU8(b, stateVersion)
	b = snapshot.AppendInt(b, ix.size)
	b = snapshot.AppendF64s(b, ix.colBounds)
	var err error
	if b, err = rmi.AppendBounded(b, ix.model); err != nil {
		return nil, err
	}
	b = snapshot.AppendUvarint(b, uint64(len(ix.shardKeys)))
	for s := range ix.shardKeys {
		b = snapshot.AppendF64s(b, ix.shardKeys[s])
		b = snapshot.AppendPoints(b, ix.shardPts[s])
	}
	return base.AppendBuildStatsSlice(b, ix.stats), nil
}

// RestoreState implements snapshot.Stater, validating the shard-wise
// invariants (parallel columns, within-shard key order, size = sum of
// shard lengths) before mutating the index.
func (ix *Index) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("lisa: unsupported state version %d", v)
	}
	size := d.Int()
	colBounds := d.F64s()
	if err := d.Err(); err != nil {
		return fmt.Errorf("lisa: decode state: %w", err)
	}
	if size < 0 {
		return fmt.Errorf("lisa: negative size %d", size)
	}
	for i := 1; i < len(colBounds); i++ {
		if colBounds[i] < colBounds[i-1] {
			return fmt.Errorf("lisa: column bounds not sorted at %d", i)
		}
	}
	model, err := rmi.DecodeBounded(d)
	if err != nil {
		return fmt.Errorf("lisa: decode shard model: %w", err)
	}
	numShards := d.Count(8)
	if err := d.Err(); err != nil {
		return fmt.Errorf("lisa: decode state: %w", err)
	}
	shardKeys := make([][]float64, numShards)
	shardPts := make([][]geo.Point, numShards)
	total := 0
	for s := 0; s < numShards; s++ {
		ks := d.F64s()
		ps := d.Points()
		if err := d.Err(); err != nil {
			return fmt.Errorf("lisa: decode shard %d: %w", s, err)
		}
		if len(ks) != len(ps) {
			return fmt.Errorf("lisa: shard %d columns mismatch: %d vs %d", s, len(ks), len(ps))
		}
		for i := 1; i < len(ks); i++ {
			if ks[i] < ks[i-1] {
				return fmt.Errorf("lisa: shard %d keys not sorted at %d", s, i)
			}
		}
		shardKeys[s], shardPts[s] = ks, ps
		total += len(ks)
	}
	stats := base.DecodeBuildStatsSlice(d)
	if err := d.Close(); err != nil {
		return fmt.Errorf("lisa: decode state: %w", err)
	}
	if total != size {
		return fmt.Errorf("lisa: size %d does not match shard total %d", size, total)
	}
	if model == nil && size != 0 {
		return fmt.Errorf("lisa: %d entries without a shard model", size)
	}
	ix.size = size
	ix.colBounds = colBounds
	ix.model = model
	ix.shardKeys = shardKeys
	ix.shardPts = shardPts
	ix.stats = stats
	return nil
}
