package scorer

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"elsi/internal/nn"
)

// scorerWire is the gob wire form of a trained Scorer.
type scorerWire struct {
	Build []byte
	Query []byte
}

// MarshalBinary implements encoding.BinaryMarshaler so a trained
// scorer — the expensive offline preparation of Section VII-B2 — can
// be persisted and reused across runs and data sets, as the paper
// prescribes ("once learned, the ELSI method selector ... can be
// reused for different data sets").
func (s *Scorer) MarshalBinary() ([]byte, error) {
	b, err := s.buildNet.MarshalBinary()
	if err != nil {
		return nil, err
	}
	q, err := s.queryNet.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(scorerWire{Build: b, Query: q}); err != nil {
		return nil, fmt.Errorf("scorer: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Scorer) UnmarshalBinary(data []byte) error {
	var wire scorerWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("scorer: decode: %w", err)
	}
	s.buildNet = new(nn.Network)
	if err := s.buildNet.UnmarshalBinary(wire.Build); err != nil {
		return err
	}
	s.queryNet = new(nn.Network)
	return s.queryNet.UnmarshalBinary(wire.Query)
}

// Save writes the trained scorer to path.
func (s *Scorer) Save(path string) error {
	data, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a trained scorer from path.
func Load(path string) (*Scorer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := new(Scorer)
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveSamples persists ground-truth samples alongside a scorer so the
// comparator studies (Figure 6b) can rerun without regenerating them.
func SaveSamples(path string, samples []Sample) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(samples); err != nil {
		return fmt.Errorf("scorer: encode samples: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadSamples reads persisted ground-truth samples.
func LoadSamples(path string) ([]Sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var samples []Sample
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&samples); err != nil {
		return nil, fmt.Errorf("scorer: decode samples: %w", err)
	}
	return samples, nil
}
