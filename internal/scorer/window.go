package scorer

import (
	"context"
	"math/rand"
	"time"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/methods"
	"elsi/internal/nn"
	"elsi/internal/store"
)

// This file implements the scorer generalization the paper sketches in
// Section IV-B1: "We consider point query costs since point queries
// are building blocks for more complex queries. Costs of other query
// types, e.g., window queries, can also be considered." A third FFN
// head learns window-query speedups, and a mixed score blends the
// point and window terms by the workload's window share.

// WindowSample extends Sample with a measured window-query speedup.
type WindowSample struct {
	Sample
	WindowSpeedup float64
}

// WindowScorer is a Scorer with an additional window-cost head.
type WindowScorer struct {
	Scorer
	windowNet *nn.Network
}

// TrainWithWindow fits the three cost FFNs on window-annotated ground
// truth.
func TrainWithWindow(samples []WindowSample, cfg Config) (*WindowScorer, error) {
	basic := make([]Sample, len(samples))
	for i, s := range samples {
		basic[i] = s.Sample
	}
	sc, err := Train(basic, cfg)
	if err != nil {
		return nil, err
	}
	ws := &WindowScorer{Scorer: *sc}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	ws.windowNet = nn.New(rng, featureDim, cfg.Hidden, 1)
	xs := make([][]float64, len(samples))
	ys := make([][]float64, len(samples))
	for i, s := range samples {
		xs[i] = features(s.Method, s.N, s.Dist)
		ys[i] = []float64{logSpeedup(s.WindowSpeedup)}
	}
	nnCfg := nn.Config{LearningRate: 0.01, Epochs: cfg.Epochs, BatchSize: 32, Seed: cfg.Seed}
	if _, err := ws.windowNet.Train(xs, ys, nnCfg); err != nil {
		return nil, err
	}
	return ws, nil
}

// PredictWindowSpeedup returns the predicted log10 window-query
// speedup of method.
func (s *WindowScorer) PredictWindowSpeedup(method string, n int, dist float64) float64 {
	return s.windowNet.Forward1(features(method, n, dist))
}

// ScoreMixed generalizes Equation 2 to a workload whose query mix is
// windowFrac window queries and (1-windowFrac) point queries:
//
//	C = lambda*C_B + (1-lambda)*wQ*((1-f)*C_Qpoint + f*C_Qwindow)
func (s *WindowScorer) ScoreMixed(method string, n int, dist, lambda, wQ, windowFrac float64) float64 {
	if windowFrac < 0 {
		windowFrac = 0
	}
	if windowFrac > 1 {
		windowFrac = 1
	}
	b, q := s.PredictSpeedups(method, n, dist)
	w := s.PredictWindowSpeedup(method, n, dist)
	return lambda*b + (1-lambda)*wQ*((1-windowFrac)*q+windowFrac*w)
}

// SelectMixed returns the best method for a mixed workload.
func (s *WindowScorer) SelectMixed(pool []string, n int, dist, lambda, wQ, windowFrac float64) string {
	if len(pool) == 0 {
		pool = methods.PoolNames()
	}
	best, bestScore := pool[0], -1e308
	for _, m := range pool {
		if sc := s.ScoreMixed(m, n, dist, lambda, wQ, windowFrac); sc > bestScore {
			best, bestScore = m, sc
		}
	}
	return best
}

// GenerateWindowSamples is GenerateSamples with an additional window-
// query measurement per build: windows following the data distribution
// covering areaFrac of the space are answered with Z-range
// decomposition over the single-model predict-and-scan store.
// GenerateWindowSamplesCtx is the cancellable form.
func GenerateWindowSamples(cfg GenConfig, areaFrac float64) []WindowSample {
	return GenerateWindowSamplesCtx(context.Background(), cfg, areaFrac)
}

// GenerateWindowSamplesCtx is GenerateWindowSamples with build
// cancellation: ctx is threaded into every pool-method build.
func GenerateWindowSamplesCtx(ctx context.Context, cfg GenConfig, areaFrac float64) []WindowSample {
	if cfg.Queries <= 0 {
		cfg.Queries = 200
	}
	pool := cfg.Pool
	if len(pool) == 0 {
		pool = methods.PoolNames()
	}
	builders := PoolBuilders(cfg.Trainer, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []WindowSample
	for _, n := range cfg.Cardinalities {
		for _, dist := range cfg.Dists {
			pts := dataset.PointsWithUniformDistance(rng, n, dist)
			d := prepareZOrder(pts)
			st := storeOf(d)
			wins := dataset.WindowsFromData(rng, pts, geo.UnitRect, cfg.Queries/4+1, areaFrac)
			// a failed OG reference build voids the whole grid cell
			ogBuild, ogQuery, err := measure(ctx, builders[methods.NameOG], d, st, pts, cfg.Queries, rng)
			if err != nil {
				continue
			}
			ogModel, _, err := base.BuildModelCtx(ctx, builders[methods.NameOG], d)
			if err != nil {
				continue
			}
			ogWindow := measureWindows(ogModel, st, wins)
			for _, name := range pool {
				s := WindowSample{}
				s.Method, s.N, s.Dist = name, n, dist
				if name == methods.NameOG {
					s.BuildSpeedup, s.QuerySpeedup, s.WindowSpeedup = 1, 1, 1
				} else {
					b, q, err := measure(ctx, builders[name], d, st, pts, cfg.Queries, rng)
					if err != nil {
						continue
					}
					m, _, err := base.BuildModelCtx(ctx, builders[name], d)
					if err != nil {
						continue
					}
					w := measureWindows(m, st, wins)
					s.BuildSpeedup = ogBuild / maxF(b, 1e-9)
					s.QuerySpeedup = ogQuery / maxF(q, 1e-12)
					s.WindowSpeedup = ogWindow / maxF(w, 1e-12)
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// measureWindows times window queries over a single bounded model: the
// window is cut into Z-ranges, each range's positions predicted and
// scanned with the model's error bounds.
func measureWindows(m boundedModel, st *store.Sorted, wins []geo.Rect) float64 {
	if len(wins) == 0 {
		return 0
	}
	t0 := time.Now()
	for _, win := range wins {
		for _, r := range curve.ZRanges(win, geo.UnitRect, 8) {
			lo, _ := m.SearchRange(float64(r.Lo))
			_, hi := m.SearchRange(float64(r.Hi))
			if hi < lo {
				lo, hi = hi, lo
			}
			st.CollectWindow(lo, hi, win, nil)
		}
	}
	return time.Since(t0).Seconds() / float64(len(wins))
}

// boundedModel is the slice of rmi.Bounded measureWindows needs.
type boundedModel interface {
	SearchRange(key float64) (int, int)
}
