package scorer

import (
	"math/rand"
	"testing"

	"elsi/internal/methods"
	"elsi/internal/rmi"
)

// syntheticSamples fabricates a ground truth with a crisp pattern: MR
// is always the build-fastest (speedup 100), OG always the
// query-fastest, RS the best compromise on skewed data.
func syntheticSamples(rng *rand.Rand) []Sample {
	var out []Sample
	for _, n := range []int{1000, 10000, 100000} {
		for d := 0.0; d < 1.0; d += 0.1 {
			for _, m := range methods.PoolNames() {
				s := Sample{Method: m, N: n, Dist: d}
				switch m {
				case methods.NameMR:
					s.BuildSpeedup, s.QuerySpeedup = 100, 0.7
				case methods.NameSP:
					s.BuildSpeedup, s.QuerySpeedup = 30, 0.8
				case methods.NameRS:
					s.BuildSpeedup, s.QuerySpeedup = 10, 1.1
				case methods.NameRL:
					s.BuildSpeedup, s.QuerySpeedup = 8, 1.0
				case methods.NameCL:
					s.BuildSpeedup, s.QuerySpeedup = 2, 1.0
				default: // OG
					s.BuildSpeedup, s.QuerySpeedup = 1, 1.2
				}
				// mild noise so the nets see variation
				s.BuildSpeedup *= 1 + 0.05*rng.Float64()
				s.QuerySpeedup *= 1 + 0.05*rng.Float64()
				out = append(out, s)
			}
		}
	}
	return out
}

func TestTrainAndSelectExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := syntheticSamples(rng)
	sc, err := Train(samples, Config{Hidden: 16, Epochs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// lambda = 1: pure build-time preference -> MR
	sel := &Selector{Scorer: sc, Lambda: 1, WQ: 1}
	if got := sel.Select(10000, 0.5); got != methods.NameMR {
		t.Errorf("lambda=1 Select = %s, want MR", got)
	}
	// lambda = 0: pure query preference -> OG
	sel.Lambda = 0
	if got := sel.Select(10000, 0.5); got != methods.NameOG {
		t.Errorf("lambda=0 Select = %s, want OG", got)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("expected error for empty samples")
	}
}

func TestSelectorPoolRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc, err := Train(syntheticSamples(rng), Config{Hidden: 16, Epochs: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// LISA pool: exclude CL and RL; the selector must never pick them.
	sel := &Selector{Scorer: sc, Lambda: 0.8, WQ: 1, Pool: []string{"SP", "MR", "RS", "OG"}}
	for d := 0.0; d < 1.0; d += 0.1 {
		got := sel.Select(50000, d)
		if got == methods.NameCL || got == methods.NameRL {
			t.Fatalf("restricted pool selected %s", got)
		}
	}
}

func TestTrueBest(t *testing.T) {
	group := []Sample{
		{Method: "MR", BuildSpeedup: 100, QuerySpeedup: 0.5},
		{Method: "OG", BuildSpeedup: 1, QuerySpeedup: 1.5},
	}
	if got := TrueBest(group, 1, 1); got != "MR" {
		t.Errorf("lambda=1 TrueBest = %s", got)
	}
	if got := TrueBest(group, 0, 1); got != "OG" {
		t.Errorf("lambda=0 TrueBest = %s", got)
	}
}

func TestAccuracyHighOnCleanGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := syntheticSamples(rng)
	sc, err := Train(samples, Config{Hidden: 16, Epochs: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0.9, 1.0} {
		sel := &Selector{Scorer: sc, Lambda: lambda, WQ: 1}
		acc := Accuracy(sel, samples, lambda, 1)
		if acc < 0.8 {
			t.Errorf("lambda=%.1f accuracy %.2f < 0.8", lambda, acc)
		}
	}
}

func TestComparatorsTrainAndSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := syntheticSamples(rng)
	for _, fam := range []Family{FamilyDTR, FamilyDTC, FamilyRFR, FamilyRFC} {
		sel := TrainComparator(fam, samples, 1.0, 1, 5)
		if got := sel.Select(10000, 0.5); got != methods.NameMR {
			t.Errorf("%s lambda=1 Select = %s, want MR", fam, got)
		}
		acc := Accuracy(sel, samples, 1.0, 1)
		if acc < 0.8 {
			t.Errorf("%s accuracy %.2f", fam, acc)
		}
	}
}

func TestGenerateSamplesSmall(t *testing.T) {
	cfg := GenConfig{
		Cardinalities: []int{500, 2000},
		Dists:         []float64{0, 0.5},
		Trainer:       rmi.PiecewiseTrainer(1.0 / 128),
		Queries:       20,
		Seed:          1,
		Pool:          []string{"SP", "RS", "OG"},
	}
	samples := GenerateSamples(cfg)
	want := 2 * 2 * 3
	if len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s.BuildSpeedup <= 0 || s.QuerySpeedup <= 0 {
			t.Errorf("non-positive speedup in %+v", s)
		}
		if s.Method == methods.NameOG && (s.BuildSpeedup != 1 || s.QuerySpeedup != 1) {
			t.Errorf("OG speedups should be exactly 1: %+v", s)
		}
	}
	groups := GroupSamples(samples)
	if len(groups) != 4 {
		t.Errorf("got %d groups, want 4", len(groups))
	}
}

func TestFeatures(t *testing.T) {
	x := features(methods.NameCL, 1000000, 0.3)
	if len(x) != featureDim {
		t.Fatalf("feature dim %d", len(x))
	}
	ones := 0
	for i := 0; i < 6; i++ {
		if x[i] == 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Errorf("one-hot has %d ones", ones)
	}
	if x[7] != 0.3 {
		t.Errorf("dist feature = %v", x[7])
	}
}

func TestScorerSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc, err := Train(syntheticSamples(rng), Config{Hidden: 8, Epochs: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/scorer.gob"
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range methods.PoolNames() {
		b1, q1 := sc.PredictSpeedups(m, 10000, 0.5)
		b2, q2 := loaded.PredictSpeedups(m, 10000, 0.5)
		if b1 != b2 || q1 != q2 {
			t.Fatalf("%s: predictions differ after reload", m)
		}
	}
	if _, err := Load(t.TempDir() + "/missing.gob"); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestSplitSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	samples := syntheticSamples(rng)
	train, test := SplitSamples(samples, 0.3, 1)
	if len(train)+len(test) != len(samples) {
		t.Fatalf("split lost samples: %d + %d != %d", len(train), len(test), len(samples))
	}
	if len(test) == 0 || len(train) == 0 {
		t.Fatal("degenerate split")
	}
	// no group straddles the split
	trainGroups := GroupSamples(train)
	for k := range GroupSamples(test) {
		if _, ok := trainGroups[k]; ok {
			t.Fatalf("group %+v leaked across the split", k)
		}
	}
	// deterministic
	tr2, te2 := SplitSamples(samples, 0.3, 1)
	if len(tr2) != len(train) || len(te2) != len(test) {
		t.Error("split not deterministic")
	}
}

func TestWindowScorer(t *testing.T) {
	cfg := GenConfig{
		Cardinalities: []int{500, 2000},
		Dists:         []float64{0, 0.5},
		Trainer:       rmi.PiecewiseTrainer(1.0 / 128),
		Queries:       20,
		Seed:          1,
	}
	samples := GenerateWindowSamples(cfg, 0.0001)
	if len(samples) != 2*2*6 {
		t.Fatalf("got %d window samples", len(samples))
	}
	for _, s := range samples {
		if s.WindowSpeedup <= 0 {
			t.Fatalf("non-positive window speedup: %+v", s)
		}
	}
	ws, err := TrainWithWindow(samples, Config{Hidden: 12, Epochs: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// the mixed score at windowFrac=0 must equal the plain Eq. 2 score
	for _, m := range methods.PoolNames() {
		plain := ws.Score(m, 2000, 0.5, 0.5, 1)
		mixed := ws.ScoreMixed(m, 2000, 0.5, 0.5, 1, 0)
		if plain != mixed {
			t.Fatalf("%s: windowFrac=0 mixed score %v != plain %v", m, mixed, plain)
		}
	}
	// selection over the full mix range never leaves the pool
	for _, f := range []float64{-1, 0, 0.5, 1, 2} {
		got := ws.SelectMixed(nil, 2000, 0.5, 0.8, 1, f)
		found := false
		for _, m := range methods.PoolNames() {
			if m == got {
				found = true
			}
		}
		if !found {
			t.Fatalf("SelectMixed returned %q", got)
		}
	}
}
