// Package scorer implements ELSI's index building method scorer and
// selector (Section IV-B1, Figure 4): two FFNs estimate, for a method
// P and a data set described by its cardinality and its distance to
// the uniform distribution, the build-cost and query-cost speedups P
// yields over the base index's original build. Equation 2 combines the
// two estimates with the preference factor lambda and query-frequency
// weight wQ; the method with the maximum combined score is selected.
//
// The package also provides the comparator selectors of Figure 6(b):
// regression and classification variants backed by decision trees and
// random forests (DTR, DTC, RFR, RFC).
package scorer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"elsi/internal/methods"
	"elsi/internal/mltree"
	"elsi/internal/nn"
	"elsi/internal/parallel"
)

// Sample is one ground-truth measurement: building a data set of
// cardinality N and uniform-distance Dist with Method yielded the
// given speedups over OG (speedup = OG cost / method cost, > 1 means
// the method is faster).
type Sample struct {
	Method       string
	N            int
	Dist         float64
	BuildSpeedup float64
	QuerySpeedup float64
}

// featureDim is one-hot method id (6) + log-cardinality + distance.
const featureDim = 8

// features encodes a (method, cardinality, dist) triple for the FFNs
// (Component 1 of Figure 4).
func features(method string, n int, dist float64) []float64 {
	x := make([]float64, featureDim)
	for i, name := range methods.PoolNames() {
		if name == method {
			x[i] = 1
			break
		}
	}
	x[6] = math.Log10(float64(maxInt(n, 1))) / 9 // normalized by the paper's 10^9 scale
	x[7] = dist
	return x
}

// Scorer is the FFN-based method scorer.
type Scorer struct {
	buildNet *nn.Network
	queryNet *nn.Network
}

// Config controls scorer training.
type Config struct {
	Hidden int
	Epochs int
	Seed   int64
}

// DefaultConfig returns the training configuration used by the
// experiments.
func DefaultConfig() Config {
	return Config{Hidden: 24, Epochs: 400, Seed: 1}
}

// Train fits the two cost FFNs on ground-truth samples. Speedups are
// learned in log10 space, which linearizes the orders-of-magnitude
// spread of Table II.
func Train(samples []Sample, cfg Config) (*Scorer, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("scorer: no training samples")
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 24
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 400
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Scorer{
		buildNet: nn.New(rng, featureDim, cfg.Hidden, 1),
		queryNet: nn.New(rng, featureDim, cfg.Hidden, 1),
	}
	xs := make([][]float64, len(samples))
	yb := make([][]float64, len(samples))
	yq := make([][]float64, len(samples))
	for i, sm := range samples {
		xs[i] = features(sm.Method, sm.N, sm.Dist)
		yb[i] = []float64{logSpeedup(sm.BuildSpeedup)}
		yq[i] = []float64{logSpeedup(sm.QuerySpeedup)}
	}
	nnCfg := nn.Config{LearningRate: 0.01, Epochs: cfg.Epochs, BatchSize: 32, Seed: cfg.Seed}
	// The two cost nets are independent (separate weights, own seeded
	// shuffles), so they train concurrently.
	var errB, errQ error
	parallel.Do(
		func() { _, errB = s.buildNet.Train(xs, yb, nnCfg) },
		func() { _, errQ = s.queryNet.Train(xs, yq, nnCfg) },
	)
	if errB != nil {
		return nil, errB
	}
	if errQ != nil {
		return nil, errQ
	}
	return s, nil
}

// logSpeedup clamps and logs a speedup factor.
func logSpeedup(v float64) float64 {
	if v < 1e-3 {
		v = 1e-3
	}
	return math.Log10(v)
}

// PredictSpeedups returns the predicted (log10) build and query
// speedups of method on a data set with the given cardinality and
// uniform distance (Component 3 of Figure 4).
func (s *Scorer) PredictSpeedups(method string, n int, dist float64) (build, query float64) {
	x := features(method, n, dist)
	return s.buildNet.Forward1(x), s.queryNet.Forward1(x)
}

// Score combines the predictions per Equation 2, in "higher is
// better" speedup form: lambda weighs build speedup, (1-lambda)*wQ
// weighs query speedup.
func (s *Scorer) Score(method string, n int, dist float64, lambda, wQ float64) float64 {
	b, q := s.PredictSpeedups(method, n, dist)
	return lambda*b + (1-lambda)*wQ*q
}

// Selector chooses a method from a pool with a trained scorer.
type Selector struct {
	Scorer *Scorer
	// Lambda is the preference factor of Equation 2 (default 0.8, the
	// experiments' build-time-optimizing setting).
	Lambda float64
	// WQ is the query frequency weight (the paper sets 1.0).
	WQ float64
	// Pool restricts the candidate methods (defaults to all six).
	Pool []string
}

// Select returns the highest-scoring applicable method for a data set
// summary.
func (sel *Selector) Select(n int, dist float64) string {
	pool := sel.Pool
	if len(pool) == 0 {
		pool = methods.PoolNames()
	}
	wq := sel.WQ
	if wq <= 0 {
		wq = 1
	}
	best, bestScore := pool[0], math.Inf(-1)
	for _, m := range pool {
		if score := sel.Scorer.Score(m, n, dist, sel.Lambda, wq); score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// Rank returns the pool ordered by descending score for a data set
// summary — the degradation ladder's fallback order. Ties keep the
// pool's own order (the sort is stable), so ranking is deterministic;
// Rank(n, dist)[0] always equals Select(n, dist).
func (sel *Selector) Rank(n int, dist float64) []string {
	pool := sel.Pool
	if len(pool) == 0 {
		pool = methods.PoolNames()
	}
	wq := sel.WQ
	if wq <= 0 {
		wq = 1
	}
	ranked := append([]string(nil), pool...)
	scores := make(map[string]float64, len(ranked))
	for _, m := range ranked {
		scores[m] = sel.Scorer.Score(m, n, dist, sel.Lambda, wq)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return scores[ranked[i]] > scores[ranked[j]]
	})
	return ranked
}

// --- ground truth & evaluation ----------------------------------------

// TrueBest returns the method with the best measured combined score
// among the samples of a single (N, Dist) group.
func TrueBest(group []Sample, lambda, wQ float64) string {
	best, bestScore := "", math.Inf(-1)
	for _, sm := range group {
		score := lambda*logSpeedup(sm.BuildSpeedup) + (1-lambda)*wQ*logSpeedup(sm.QuerySpeedup)
		if score > bestScore {
			best, bestScore = sm.Method, score
		}
	}
	return best
}

// GroupKey identifies a (N, Dist) measurement group.
type GroupKey struct {
	N    int
	Dist float64
}

// GroupSamples indexes samples by data set.
func GroupSamples(samples []Sample) map[GroupKey][]Sample {
	groups := map[GroupKey][]Sample{}
	for _, sm := range samples {
		k := GroupKey{sm.N, sm.Dist}
		groups[k] = append(groups[k], sm)
	}
	return groups
}

// MethodSelector abstracts the selector families compared in Figure
// 6(b).
type MethodSelector interface {
	Select(n int, dist float64) string
}

// Accuracy returns the fraction of sample groups where sel picks the
// measured-best method — the metric of Figure 6.
func Accuracy(sel MethodSelector, samples []Sample, lambda, wQ float64) float64 {
	groups := GroupSamples(samples)
	if len(groups) == 0 {
		return 0
	}
	correct := 0
	for key, group := range groups {
		if sel.Select(key.N, key.Dist) == TrueBest(group, lambda, wQ) {
			correct++
		}
	}
	return float64(correct) / float64(len(groups))
}

// --- comparator selectors (Figure 6(b)) --------------------------------

// Family identifies a comparator selector family.
type Family string

// The comparator families of Figure 6(b).
const (
	FamilyDTR Family = "DTR" // decision-tree regression
	FamilyDTC Family = "DTC" // decision-tree classification
	FamilyRFR Family = "RFR" // random-forest regression
	FamilyRFC Family = "RFC" // random-forest classification
)

// regressorSelector predicts build and query speedups with two
// regression models and combines them like the FFN scorer.
type regressorSelector struct {
	build, query interface{ Predict([]float64) float64 }
	lambda, wQ   float64
	pool         []string
}

func (r *regressorSelector) Select(n int, dist float64) string {
	best, bestScore := r.pool[0], math.Inf(-1)
	for _, m := range r.pool {
		x := features(m, n, dist)
		score := r.lambda*r.build.Predict(x) + (1-r.lambda)*r.wQ*r.query.Predict(x)
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// classifierSelector predicts the best method id directly; the class
// labels bake in a fixed lambda.
type classifierSelector struct {
	model interface{ Predict([]float64) float64 }
	pool  []string
}

func (c *classifierSelector) Select(n int, dist float64) string {
	x := dataFeatures(n, dist)
	id := int(c.model.Predict(x))
	if id < 0 || id >= len(c.pool) {
		id = 0
	}
	return c.pool[id]
}

// dataFeatures encodes only the data set summary (for classifiers,
// which output the method rather than taking it as input).
func dataFeatures(n int, dist float64) []float64 {
	return []float64{math.Log10(float64(maxInt(n, 1))) / 9, dist}
}

// TrainComparator builds a Figure 6(b) comparator selector of the
// given family from ground-truth samples at a fixed lambda and wQ.
func TrainComparator(family Family, samples []Sample, lambda, wQ float64, seed int64) MethodSelector {
	pool := methods.PoolNames()
	switch family {
	case FamilyDTR, FamilyRFR:
		var X [][]float64
		var yb, yq []float64
		for _, sm := range samples {
			X = append(X, features(sm.Method, sm.N, sm.Dist))
			yb = append(yb, logSpeedup(sm.BuildSpeedup))
			yq = append(yq, logSpeedup(sm.QuerySpeedup))
		}
		var build, query interface{ Predict([]float64) float64 }
		if family == FamilyDTR {
			build = mltree.TrainRegressor(X, yb, mltree.Config{MaxDepth: 10, Seed: seed})
			query = mltree.TrainRegressor(X, yq, mltree.Config{MaxDepth: 10, Seed: seed + 1})
		} else {
			build = mltree.TrainForestRegressor(X, yb, mltree.ForestConfig{Trees: 20, Tree: mltree.Config{MaxDepth: 10}, Seed: seed})
			query = mltree.TrainForestRegressor(X, yq, mltree.ForestConfig{Trees: 20, Tree: mltree.Config{MaxDepth: 10}, Seed: seed + 1})
		}
		return &regressorSelector{build: build, query: query, lambda: lambda, wQ: wQ, pool: pool}
	case FamilyDTC, FamilyRFC:
		var X [][]float64
		var y []float64
		for key, group := range GroupSamples(samples) {
			bestName := TrueBest(group, lambda, wQ)
			for id, name := range pool {
				if name == bestName {
					X = append(X, dataFeatures(key.N, key.Dist))
					y = append(y, float64(id))
					break
				}
			}
		}
		var model interface{ Predict([]float64) float64 }
		if family == FamilyDTC {
			model = mltree.TrainClassifier(X, y, mltree.Config{MaxDepth: 10, Seed: seed})
		} else {
			model = mltree.TrainForestClassifier(X, y, mltree.ForestConfig{Trees: 20, Tree: mltree.Config{MaxDepth: 10}, Seed: seed})
		}
		return &classifierSelector{model: model, pool: pool}
	}
	panic("scorer: unknown comparator family " + string(family))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SplitSamples partitions the sample groups into train and test sets
// (by whole (N, Dist) groups, so no data set leaks across the split).
// The Figure 6(b) comparison evaluates selectors on held-out groups;
// without the split, tree learners memorize the grid perfectly and the
// comparison is vacuous.
func SplitSamples(samples []Sample, testFrac float64, seed int64) (train, test []Sample) {
	groups := GroupSamples(samples)
	keys := make([]GroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sortGroupKeys(keys)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	nTest := int(testFrac * float64(len(keys)))
	if nTest < 1 && len(keys) > 1 {
		nTest = 1
	}
	for i, k := range keys {
		if i < nTest {
			test = append(test, groups[k]...)
		} else {
			train = append(train, groups[k]...)
		}
	}
	return train, test
}

// sortGroupKeys orders keys deterministically before shuffling (map
// iteration order is random).
func sortGroupKeys(keys []GroupKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a.N < b.N || (a.N == b.N && a.Dist <= b.Dist) {
				break
			}
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
}
