package scorer

import "elsi/internal/methods"

// HeuristicSamples fabricates a training set for the method scorer
// from closed-form speedup curves instead of measured sweeps. The
// curves encode the qualitative Table II regularities — the
// set-reduction methods (MR, SP) buy build time that grows with
// cardinality at a small query cost, the point-synthesizing methods
// (CL, RL) buy query time on skewed data at a build cost, RS sits in
// between, OG is the 1.0/1.0 baseline — so a scorer trained on them
// ranks the pool sensibly across (n, dist, λ) without the minutes-long
// measurement phase of GenerateSamples. Serving binaries (elsid) use
// it to stand up an adaptive selector at startup; experiments that
// need faithful constants still run the measured sweep.
//
// The grid matches DefaultGenConfig (5 cardinalities × 10 distances ×
// the 6 pool methods = 300 samples).
func HeuristicSamples() []Sample {
	cards := []int{1000, 3000, 10000, 30000, 100000}
	dists := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	var out []Sample
	for _, n := range cards {
		// log10(n) - 3 ∈ [0, 2] over the grid: the "scale" driver of
		// the build-side wins.
		scale := 0.0
		for v := n; v >= 10000; v /= 10 {
			scale++
		}
		switch { // smooth the steps of the integer log a little
		case n == 3000:
			scale = 0.5
		case n == 30000:
			scale = 1.5
		}
		for _, dist := range dists {
			out = append(out,
				// MR reuses pre-trained models: the biggest build win,
				// growing with n; reused models fit skewed data worse.
				Sample{Method: methods.NameMR, N: n, Dist: dist,
					BuildSpeedup: 2.0 + 1.2*scale, QuerySpeedup: 0.95 - 0.20*dist},
				// SP samples the sorted keys: build win grows with n,
				// query nearly neutral.
				Sample{Method: methods.NameSP, N: n, Dist: dist,
					BuildSpeedup: 1.4 + 0.8*scale, QuerySpeedup: 1.0 - 0.05*dist},
				// RS shards the range: moderate build win, mild query
				// win from smaller per-shard models.
				Sample{Method: methods.NameRS, N: n, Dist: dist,
					BuildSpeedup: 1.2 + 0.4*scale, QuerySpeedup: 1.0 + 0.05*dist},
				// CL trains on centroids: some build win, query win
				// that grows with skew (clusters follow density).
				Sample{Method: methods.NameCL, N: n, Dist: dist,
					BuildSpeedup: 1.1 + 0.2*scale, QuerySpeedup: 1.05 + 0.25*dist},
				// RL searches for a good reduced set: build cost, best
				// query accuracy on skewed data.
				Sample{Method: methods.NameRL, N: n, Dist: dist,
					BuildSpeedup: 0.6 + 0.05*scale, QuerySpeedup: 1.10 + 0.35*dist},
				// OG is the baseline by definition.
				Sample{Method: methods.NameOG, N: n, Dist: dist,
					BuildSpeedup: 1, QuerySpeedup: 1},
			)
		}
	}
	return out
}
