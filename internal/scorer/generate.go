package scorer

import (
	"context"
	"math/rand"
	"time"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/kstest"
	"elsi/internal/methods"
	"elsi/internal/rmi"
	"elsi/internal/store"
)

// GenConfig controls ground-truth generation (Section VII-B2, "method
// scorer training"): data sets are generated over a grid of
// cardinalities and uniform-distances, every pool method builds an
// index model for each, and the measured build and point-query
// speedups relative to OG become the training samples.
type GenConfig struct {
	// Cardinalities to sweep (the paper uses 10^4..10^u).
	Cardinalities []int
	// Dists are the dist(D_U, D) values to sweep (paper: 0.0..0.9).
	Dists []float64
	// Trainer is the base index's model family.
	Trainer rmi.Trainer
	// Queries is the number of point queries measured per build.
	Queries int
	// Seed drives data generation.
	Seed int64
	// Pool lists the methods to measure; empty means all six.
	Pool []string
}

// DefaultGenConfig returns a CPU-sized grid: five cardinalities and
// ten distances, as in the paper's 300-combination setup.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Cardinalities: []int{1000, 3000, 10000, 30000, 100000},
		Dists:         []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Trainer:       rmi.FFNTrainer(rmi.FFNConfig{Hidden: 8, Epochs: 20, Seed: 1}),
		Queries:       200,
		Seed:          1,
	}
}

// PoolBuilders returns the pool methods configured with the paper's
// default parameters around the given trainer. Seed derivations keep
// runs reproducible.
func PoolBuilders(trainer rmi.Trainer, seed int64) map[string]base.ModelBuilder {
	return PoolBuildersWorkers(trainer, seed, 0)
}

// PoolBuildersWorkers is PoolBuilders with an explicit worker count for
// the parallel build stages of every pool method (0 = GOMAXPROCS, 1 =
// serial). Builds are bit-identical across worker counts.
func PoolBuildersWorkers(trainer rmi.Trainer, seed int64, workers int) map[string]base.ModelBuilder {
	return map[string]base.ModelBuilder{
		// Paper parameter defaults (rho = 0.0001, C = 100, eps = 0.5,
		// beta = 10,000, eta = 8) with scale-relative floors so the
		// reduced sets stay meaningful below the paper's 10^8 scale.
		methods.NameSP: &methods.SP{Rho: 0.0001, MinKeys: 500, Trainer: trainer, Workers: workers},
		methods.NameCL: &methods.CL{C: 100, Iterations: 10, Trainer: trainer, Seed: seed, Workers: workers},
		methods.NameMR: &methods.MR{Epsilon: 0.5, SynthSize: 2000, Trainer: trainer, Seed: seed, Workers: workers},
		methods.NameRS: &methods.RS{Beta: 10000, TargetLeaves: 500, Trainer: trainer, Workers: workers},
		methods.NameRL: &methods.RLM{Eta: 8, Steps: 600, Trainer: trainer, Seed: seed, Workers: workers},
		methods.NameOG: &base.Direct{Trainer: trainer, Workers: workers},
	}
}

// GenerateSamples measures every pool method on every generated data
// set and returns the speedup samples. The OG rows are included (with
// speedup 1 by definition) so the scorer learns the baseline too.
// GenerateSamplesCtx is the cancellable form.
func GenerateSamples(cfg GenConfig) []Sample {
	return GenerateSamplesCtx(context.Background(), cfg)
}

// GenerateSamplesCtx is GenerateSamples with build cancellation: ctx is
// threaded into every pool-method build, so an expired deadline voids
// the remaining measurements instead of running the grid to the end.
func GenerateSamplesCtx(ctx context.Context, cfg GenConfig) []Sample {
	if cfg.Queries <= 0 {
		cfg.Queries = 200
	}
	pool := cfg.Pool
	if len(pool) == 0 {
		pool = methods.PoolNames()
	}
	builders := PoolBuilders(cfg.Trainer, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var samples []Sample
	for _, n := range cfg.Cardinalities {
		for _, dist := range cfg.Dists {
			pts := dataset.PointsWithUniformDistance(rng, n, dist)
			d := prepareZOrder(pts)
			st := storeOf(d)
			// OG reference first; a failed reference build (injected
			// fault, hostile data) voids the whole grid cell.
			ogBuild, ogQuery, err := measure(ctx, builders[methods.NameOG], d, st, pts, cfg.Queries, rng)
			if err != nil {
				continue
			}
			for _, name := range pool {
				var b, q float64
				if name == methods.NameOG {
					b, q = ogBuild, ogQuery
				} else {
					b, q, err = measure(ctx, builders[name], d, st, pts, cfg.Queries, rng)
					if err != nil {
						// no measurement, no sample — the scorer trains
						// on whatever the faults left standing
						continue
					}
				}
				samples = append(samples, Sample{
					Method:       name,
					N:            n,
					Dist:         dist,
					BuildSpeedup: ogBuild / maxF(b, 1e-9),
					QuerySpeedup: ogQuery / maxF(q, 1e-12),
				})
			}
		}
	}
	return samples
}

// prepareZOrder maps and sorts points by their Z-order keys — the ZM
// mapping the ground-truth harness measures against.
func prepareZOrder(pts []geo.Point) *base.SortedData {
	return base.Prepare(pts, geo.UnitRect, func(p geo.Point) float64 {
		return float64(curve.ZEncode(p, geo.UnitRect))
	})
}

func storeOf(d *base.SortedData) *store.Sorted {
	// The prepared columns are already sorted; adopt them directly
	// instead of materializing an entry copy.
	return store.NewSortedColumns(d.Keys, d.Pts)
}

// measure builds one model with b and times the build and the average
// point query over the resulting predict-and-scan index. The build
// runs through base.BuildModelCtx so a panicking or failing builder
// (fault injection, hostile data) voids the measurement instead of
// crashing ground-truth generation.
func measure(ctx context.Context, b base.ModelBuilder, d *base.SortedData, st *store.Sorted, pts []geo.Point, queries int, rng *rand.Rand) (buildSec, querySec float64, err error) {
	t0 := time.Now()
	m, _, err := base.BuildModelCtx(ctx, b, d)
	buildSec = time.Since(t0).Seconds()
	if err != nil {
		return 0, 0, err
	}
	if len(pts) == 0 {
		return buildSec, 0, nil
	}
	qs := make([]geo.Point, queries)
	for i := range qs {
		qs[i] = pts[rng.Intn(len(pts))]
	}
	t0 = time.Now()
	for _, q := range qs {
		key := d.Map(q)
		lo, hi := m.SearchRange(key)
		st.FindPoint(lo, hi, q)
	}
	querySec = time.Since(t0).Seconds() / float64(queries)
	return buildSec, querySec, nil
}

// MeasureDist computes dist(D_U, D) for a prepared data set — the
// distribution summary the selector consumes at build time.
func MeasureDist(d *base.SortedData) float64 {
	if d.Len() == 0 {
		return 0
	}
	return kstest.DistanceToUniform(d.Keys, d.Keys[0], d.Keys[d.Len()-1])
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// IndexMeasurer builds a full base index with the given model builder
// and reports its build time and average point-query time. The bench
// harness supplies one per base index so ground truth can be measured
// "when integrated with a base index" (Section VII-B2), rather than on
// the generic single-model surrogate.
type IndexMeasurer func(b base.ModelBuilder, pts []geo.Point, queries []geo.Point) (buildSec, querySec float64, err error)

// GenerateSamplesMeasured is GenerateSamples with a caller-supplied
// measurer: every applicable pool method builds the actual base index
// on every generated data set. pool lists the applicable methods
// (LISA excludes CL and RL).
func GenerateSamplesMeasured(cfg GenConfig, pool []string, measure IndexMeasurer) ([]Sample, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 200
	}
	if len(pool) == 0 {
		pool = methods.PoolNames()
	}
	builders := PoolBuilders(cfg.Trainer, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var samples []Sample
	for _, n := range cfg.Cardinalities {
		for _, dist := range cfg.Dists {
			pts := dataset.PointsWithUniformDistance(rng, n, dist)
			queries := dataset.QueriesFromData(rng, pts, cfg.Queries)
			ogBuild, ogQuery, err := measure(builders[methods.NameOG], pts, queries)
			if err != nil {
				return nil, err
			}
			for _, name := range pool {
				var b, q float64
				if name == methods.NameOG {
					b, q = ogBuild, ogQuery
				} else {
					b, q, err = measure(builders[name], pts, queries)
					if err != nil {
						return nil, err
					}
				}
				samples = append(samples, Sample{
					Method:       name,
					N:            n,
					Dist:         dist,
					BuildSpeedup: ogBuild / maxF(b, 1e-9),
					QuerySpeedup: ogQuery / maxF(q, 1e-12),
				})
			}
		}
	}
	return samples, nil
}
