// Package pqueue provides the two priority queues used by
// branch-and-bound kNN search: a min-heap of index nodes ordered by
// MINDIST and a bounded max-heap keeping the k best candidate points.
package pqueue

import (
	"sort"

	"elsi/internal/geo"
)

// Item is an opaque payload with a priority distance.
type Item struct {
	Value interface{}
	Dist  float64
}

// Min is a min-heap of Items by Dist. The zero value is ready to use.
type Min struct {
	items []Item
}

// Len returns the number of queued items.
func (q *Min) Len() int { return len(q.items) }

// Reset empties the queue, keeping its backing storage for reuse so a
// pooled queue serves repeated kNN searches without reallocating.
func (q *Min) Reset() { q.items = q.items[:0] }

// Push adds an item.
func (q *Min) Push(v interface{}, d float64) {
	q.items = append(q.items, Item{Value: v, Dist: d})
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Dist <= q.items[i].Dist {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// Pop removes and returns the item with the smallest Dist.
func (q *Min) Pop() Item {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	n := len(q.items)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].Dist < q.items[smallest].Dist {
			smallest = l
		}
		if r < n && q.items[r].Dist < q.items[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[smallest], q.items[i] = q.items[i], q.items[smallest]
		i = smallest
	}
	return top
}

// KBest keeps the k nearest points seen so far in a bounded max-heap.
type KBest struct {
	k    int
	pts  []geo.Point
	dist []float64
}

// NewKBest returns a KBest of capacity k.
func NewKBest(k int) *KBest { return &KBest{k: k} }

// Reset empties the heap and sets a new capacity, keeping the backing
// storage for reuse.
func (b *KBest) Reset(k int) {
	b.k = k
	b.pts = b.pts[:0]
	b.dist = b.dist[:0]
}

// Full reports whether k candidates are held.
func (b *KBest) Full() bool { return len(b.pts) >= b.k }

// Worst returns the distance of the current k-th best candidate, or
// +Inf semantics via 0 when empty (callers must check Full first).
func (b *KBest) Worst() float64 {
	if len(b.dist) == 0 {
		return 0
	}
	return b.dist[0]
}

// Offer considers point p at squared distance d.
func (b *KBest) Offer(p geo.Point, d float64) {
	if len(b.pts) < b.k {
		b.pts = append(b.pts, p)
		b.dist = append(b.dist, d)
		b.up(len(b.pts) - 1)
		return
	}
	if d >= b.dist[0] {
		return
	}
	b.pts[0], b.dist[0] = p, d
	b.down(0)
}

func (b *KBest) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.dist[parent] >= b.dist[i] {
			return
		}
		b.dist[parent], b.dist[i] = b.dist[i], b.dist[parent]
		b.pts[parent], b.pts[i] = b.pts[i], b.pts[parent]
		i = parent
	}
}

func (b *KBest) down(i int) {
	n := len(b.dist)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && b.dist[l] > b.dist[largest] {
			largest = l
		}
		if r < n && b.dist[r] > b.dist[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		b.dist[largest], b.dist[i] = b.dist[i], b.dist[largest]
		b.pts[largest], b.pts[i] = b.pts[i], b.pts[largest]
		i = largest
	}
}

// Points returns the candidates sorted by ascending distance. Like
// AppendPoints, it consumes the heap.
func (b *KBest) Points() []geo.Point {
	return b.AppendPoints(nil)
}

// AppendPoints appends the candidates to out sorted by ascending
// distance and returns the extended slice. It sorts the heap's own
// storage in place (no scratch allocation), so the heap order is
// consumed: Offer must not be called afterwards without a Reset.
func (b *KBest) AppendPoints(out []geo.Point) []geo.Point {
	sort.Sort(&byDist{b})
	return append(out, b.pts...)
}

// byDist sorts a KBest's parallel point/distance columns by distance.
type byDist struct{ b *KBest }

func (s *byDist) Len() int           { return len(s.b.pts) }
func (s *byDist) Less(i, j int) bool { return s.b.dist[i] < s.b.dist[j] }
func (s *byDist) Swap(i, j int) {
	s.b.pts[i], s.b.pts[j] = s.b.pts[j], s.b.pts[i]
	s.b.dist[i], s.b.dist[j] = s.b.dist[j], s.b.dist[i]
}
