// Package pqueue provides the two priority queues used by
// branch-and-bound kNN search: a min-heap of index nodes ordered by
// MINDIST and a bounded max-heap keeping the k best candidate points.
package pqueue

import (
	"sort"

	"elsi/internal/geo"
)

// Item is an opaque payload with a priority distance.
type Item struct {
	Value interface{}
	Dist  float64
}

// Min is a min-heap of Items by Dist. The zero value is ready to use.
type Min struct {
	items []Item
}

// Len returns the number of queued items.
func (q *Min) Len() int { return len(q.items) }

// Push adds an item.
func (q *Min) Push(v interface{}, d float64) {
	q.items = append(q.items, Item{Value: v, Dist: d})
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Dist <= q.items[i].Dist {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// Pop removes and returns the item with the smallest Dist.
func (q *Min) Pop() Item {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	n := len(q.items)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].Dist < q.items[smallest].Dist {
			smallest = l
		}
		if r < n && q.items[r].Dist < q.items[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[smallest], q.items[i] = q.items[i], q.items[smallest]
		i = smallest
	}
	return top
}

// KBest keeps the k nearest points seen so far in a bounded max-heap.
type KBest struct {
	k    int
	pts  []geo.Point
	dist []float64
}

// NewKBest returns a KBest of capacity k.
func NewKBest(k int) *KBest { return &KBest{k: k} }

// Full reports whether k candidates are held.
func (b *KBest) Full() bool { return len(b.pts) >= b.k }

// Worst returns the distance of the current k-th best candidate, or
// +Inf semantics via 0 when empty (callers must check Full first).
func (b *KBest) Worst() float64 {
	if len(b.dist) == 0 {
		return 0
	}
	return b.dist[0]
}

// Offer considers point p at squared distance d.
func (b *KBest) Offer(p geo.Point, d float64) {
	if len(b.pts) < b.k {
		b.pts = append(b.pts, p)
		b.dist = append(b.dist, d)
		b.up(len(b.pts) - 1)
		return
	}
	if d >= b.dist[0] {
		return
	}
	b.pts[0], b.dist[0] = p, d
	b.down(0)
}

func (b *KBest) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.dist[parent] >= b.dist[i] {
			return
		}
		b.dist[parent], b.dist[i] = b.dist[i], b.dist[parent]
		b.pts[parent], b.pts[i] = b.pts[i], b.pts[parent]
		i = parent
	}
}

func (b *KBest) down(i int) {
	n := len(b.dist)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && b.dist[l] > b.dist[largest] {
			largest = l
		}
		if r < n && b.dist[r] > b.dist[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		b.dist[largest], b.dist[i] = b.dist[i], b.dist[largest]
		b.pts[largest], b.pts[i] = b.pts[i], b.pts[largest]
		i = largest
	}
}

// Points returns the candidates sorted by ascending distance.
func (b *KBest) Points() []geo.Point {
	type pair struct {
		p geo.Point
		d float64
	}
	pairs := make([]pair, len(b.pts))
	for i := range b.pts {
		pairs[i] = pair{b.pts[i], b.dist[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
	out := make([]geo.Point, len(pairs))
	for i, pr := range pairs {
		out[i] = pr.p
	}
	return out
}
