// Package pqueue provides the two priority queues used by
// branch-and-bound kNN search: a min-heap of index nodes ordered by
// MINDIST and a bounded max-heap keeping the k best candidate points.
package pqueue

import (
	"elsi/internal/geo"
)

// Item is an opaque payload with a priority distance.
type Item struct {
	Value interface{}
	Dist  float64
}

// Min is a min-heap of Items by Dist. The zero value is ready to use.
type Min struct {
	items []Item
}

// Len returns the number of queued items.
//
//elsi:noalloc
func (q *Min) Len() int { return len(q.items) }

// Reset empties the queue, keeping its backing storage for reuse so a
// pooled queue serves repeated kNN searches without reallocating.
//
//elsi:noalloc
func (q *Min) Reset() { q.items = q.items[:0] }

// Push adds an item. Callers must pass pointer-shaped values (the
// traversal pushes *node) so the interface conversion does not heap-
// allocate.
//
//elsi:noalloc
func (q *Min) Push(v interface{}, d float64) {
	q.items = append(q.items, Item{Value: v, Dist: d})
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Dist <= q.items[i].Dist {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// Pop removes and returns the item with the smallest Dist.
//
//elsi:noalloc
func (q *Min) Pop() Item {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	n := len(q.items)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].Dist < q.items[smallest].Dist {
			smallest = l
		}
		if r < n && q.items[r].Dist < q.items[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[smallest], q.items[i] = q.items[i], q.items[smallest]
		i = smallest
	}
	return top
}

// KBest keeps the k nearest points seen so far in a bounded max-heap.
type KBest struct {
	k    int
	pts  []geo.Point
	dist []float64
}

// NewKBest returns a KBest of capacity k.
func NewKBest(k int) *KBest { return &KBest{k: k} }

// Reset empties the heap and sets a new capacity, keeping the backing
// storage for reuse.
//
//elsi:noalloc
func (b *KBest) Reset(k int) {
	b.k = k
	b.pts = b.pts[:0]
	b.dist = b.dist[:0]
}

// Full reports whether k candidates are held.
//
//elsi:noalloc
func (b *KBest) Full() bool { return len(b.pts) >= b.k }

// Worst returns the distance of the current k-th best candidate, or
// +Inf semantics via 0 when empty (callers must check Full first).
//
//elsi:noalloc
func (b *KBest) Worst() float64 {
	if len(b.dist) == 0 {
		return 0
	}
	return b.dist[0]
}

// Offer considers point p at squared distance d.
//
//elsi:noalloc
func (b *KBest) Offer(p geo.Point, d float64) {
	if len(b.pts) < b.k {
		b.pts = append(b.pts, p)
		b.dist = append(b.dist, d)
		b.up(len(b.pts) - 1)
		return
	}
	if d >= b.dist[0] {
		return
	}
	b.pts[0], b.dist[0] = p, d
	b.down(0)
}

//elsi:noalloc
func (b *KBest) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.dist[parent] >= b.dist[i] {
			return
		}
		b.dist[parent], b.dist[i] = b.dist[i], b.dist[parent]
		b.pts[parent], b.pts[i] = b.pts[i], b.pts[parent]
		i = parent
	}
}

//elsi:noalloc
func (b *KBest) down(i int) { b.downN(i, len(b.dist)) }

// downN sifts index i down within the heap prefix [0, n) — the bounded
// form heapsort needs to restore the shrinking heap.
//
//elsi:noalloc
func (b *KBest) downN(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && b.dist[l] > b.dist[largest] {
			largest = l
		}
		if r < n && b.dist[r] > b.dist[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		b.dist[largest], b.dist[i] = b.dist[i], b.dist[largest]
		b.pts[largest], b.pts[i] = b.pts[i], b.pts[largest]
		i = largest
	}
}

// MergeAppend offers every candidate held by o into b under b's
// k-bound. o is read, not consumed — its heap order is untouched, so a
// scatter-gather path can fill one scratch heap per shard in parallel
// and fold them into a global k-best serially, reusing every heap
// across queries. Merging is order-insensitive: the result holds the k
// smallest distances of the union, exactly as if every candidate had
// been Offered directly.
//
//elsi:noalloc
func (b *KBest) MergeAppend(o *KBest) {
	for i := range o.pts {
		b.Offer(o.pts[i], o.dist[i])
	}
}

// Points returns the candidates sorted by ascending distance. Like
// AppendPoints, it consumes the heap.
func (b *KBest) Points() []geo.Point {
	return b.AppendPoints(nil)
}

// AppendPoints appends the candidates to out sorted by ascending
// distance and returns the extended slice. It heapsorts the heap's own
// parallel columns in place (the max-heap invariant already holds, so
// no sort.Interface indirection and no scratch allocation), consuming
// the heap order: Offer must not be called afterwards without a Reset.
//
//elsi:noalloc
func (b *KBest) AppendPoints(out []geo.Point) []geo.Point {
	for end := len(b.dist) - 1; end > 0; end-- {
		b.dist[0], b.dist[end] = b.dist[end], b.dist[0]
		b.pts[0], b.pts[end] = b.pts[end], b.pts[0]
		b.downN(0, end)
	}
	return append(out, b.pts...)
}
