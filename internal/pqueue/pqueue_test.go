package pqueue

import (
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/geo"
)

func TestMinOrder(t *testing.T) {
	var q Min
	rng := rand.New(rand.NewSource(1))
	var want []float64
	for i := 0; i < 500; i++ {
		d := rng.Float64()
		q.Push(i, d)
		want = append(want, d)
	}
	sort.Float64s(want)
	for i := 0; i < 500; i++ {
		got := q.Pop()
		if got.Dist != want[i] {
			t.Fatalf("pop %d: dist %v, want %v", i, got.Dist, want[i])
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
}

func TestMinPayload(t *testing.T) {
	var q Min
	q.Push("far", 10)
	q.Push("near", 1)
	if got := q.Pop().Value.(string); got != "near" {
		t.Errorf("first pop = %q", got)
	}
	if got := q.Pop().Value.(string); got != "far" {
		t.Errorf("second pop = %q", got)
	}
}

func TestKBestKeepsNearest(t *testing.T) {
	b := NewKBest(3)
	pts := []geo.Point{{X: 5}, {X: 1}, {X: 4}, {X: 2}, {X: 3}}
	for _, p := range pts {
		b.Offer(p, p.X*p.X)
	}
	// Full and Worst must be read before Points, which sorts the heap's
	// own storage in place and so consumes the max-heap order.
	if !b.Full() {
		t.Error("Full = false with k candidates")
	}
	if b.Worst() != 9 {
		t.Errorf("Worst = %v, want 9", b.Worst())
	}
	got := b.Points()
	if len(got) != 3 {
		t.Fatalf("kept %d points", len(got))
	}
	for i, want := range []float64{1, 2, 3} {
		if got[i].X != want {
			t.Errorf("point %d = %v, want X=%v", i, got[i], want)
		}
	}
}

func TestKBestUnderfilled(t *testing.T) {
	b := NewKBest(10)
	b.Offer(geo.Point{X: 1}, 1)
	if b.Full() {
		t.Error("Full with 1 of 10")
	}
	if got := b.Points(); len(got) != 1 {
		t.Errorf("Points = %v", got)
	}
}

func TestKBestRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(20)
		n := 1 + rng.Intn(200)
		b := NewKBest(k)
		dists := make([]float64, n)
		for i := range dists {
			d := rng.Float64()
			dists[i] = d
			b.Offer(geo.Point{X: d}, d)
		}
		sort.Float64s(dists)
		got := b.Points()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("kept %d, want %d", len(got), wantLen)
		}
		for i := range got {
			if got[i].X != dists[i] {
				t.Fatalf("trial %d: rank %d = %v, want %v", trial, i, got[i].X, dists[i])
			}
		}
	}
}
