package pqueue

import (
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/geo"
)

func TestMinOrder(t *testing.T) {
	var q Min
	rng := rand.New(rand.NewSource(1))
	var want []float64
	for i := 0; i < 500; i++ {
		d := rng.Float64()
		q.Push(i, d)
		want = append(want, d)
	}
	sort.Float64s(want)
	for i := 0; i < 500; i++ {
		got := q.Pop()
		if got.Dist != want[i] {
			t.Fatalf("pop %d: dist %v, want %v", i, got.Dist, want[i])
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
}

func TestMinPayload(t *testing.T) {
	var q Min
	q.Push("far", 10)
	q.Push("near", 1)
	if got := q.Pop().Value.(string); got != "near" {
		t.Errorf("first pop = %q", got)
	}
	if got := q.Pop().Value.(string); got != "far" {
		t.Errorf("second pop = %q", got)
	}
}

func TestKBestKeepsNearest(t *testing.T) {
	b := NewKBest(3)
	pts := []geo.Point{{X: 5}, {X: 1}, {X: 4}, {X: 2}, {X: 3}}
	for _, p := range pts {
		b.Offer(p, p.X*p.X)
	}
	// Full and Worst must be read before Points, which sorts the heap's
	// own storage in place and so consumes the max-heap order.
	if !b.Full() {
		t.Error("Full = false with k candidates")
	}
	if b.Worst() != 9 {
		t.Errorf("Worst = %v, want 9", b.Worst())
	}
	got := b.Points()
	if len(got) != 3 {
		t.Fatalf("kept %d points", len(got))
	}
	for i, want := range []float64{1, 2, 3} {
		if got[i].X != want {
			t.Errorf("point %d = %v, want X=%v", i, got[i], want)
		}
	}
}

func TestKBestUnderfilled(t *testing.T) {
	b := NewKBest(10)
	b.Offer(geo.Point{X: 1}, 1)
	if b.Full() {
		t.Error("Full with 1 of 10")
	}
	if got := b.Points(); len(got) != 1 {
		t.Errorf("Points = %v", got)
	}
}

func TestKBestRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(20)
		n := 1 + rng.Intn(200)
		b := NewKBest(k)
		dists := make([]float64, n)
		for i := range dists {
			d := rng.Float64()
			dists[i] = d
			b.Offer(geo.Point{X: d}, d)
		}
		sort.Float64s(dists)
		got := b.Points()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("kept %d, want %d", len(got), wantLen)
		}
		for i := range got {
			if got[i].X != dists[i] {
				t.Fatalf("trial %d: rank %d = %v, want %v", trial, i, got[i].X, dists[i])
			}
		}
	}
}

// TestMergeAppendMatchesDirectOffer splits a candidate stream across
// several per-shard heaps, merges them into a global heap, and checks
// the result is identical to offering every candidate directly.
func TestMergeAppendMatchesDirectOffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(16)
		shards := 1 + rng.Intn(6)
		direct := NewKBest(k)
		parts := make([]*KBest, shards)
		for i := range parts {
			parts[i] = NewKBest(k)
		}
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			d := rng.Float64()
			p := geo.Point{X: d, Y: float64(i)}
			direct.Offer(p, d)
			parts[rng.Intn(shards)].Offer(p, d)
		}
		global := NewKBest(k)
		for _, part := range parts {
			before := len(part.pts)
			global.MergeAppend(part)
			if len(part.pts) != before {
				t.Fatalf("trial %d: MergeAppend consumed the source heap", trial)
			}
		}
		got := global.Points()
		want := direct.Points()
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d candidates, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].X != want[i].X {
				t.Fatalf("trial %d: rank %d dist %v, want %v", trial, i, got[i].X, want[i].X)
			}
		}
	}
}

// TestMergeAppendRespectsBound merges an overfull source into a small
// heap and checks the k-bound holds with the smallest distances kept.
func TestMergeAppendRespectsBound(t *testing.T) {
	src := NewKBest(10)
	for i := 0; i < 10; i++ {
		src.Offer(geo.Point{X: float64(i)}, float64(i))
	}
	dst := NewKBest(3)
	dst.Offer(geo.Point{X: 0.5}, 0.5)
	dst.MergeAppend(src)
	got := dst.Points()
	if len(got) != 3 {
		t.Fatalf("kept %d, want 3", len(got))
	}
	for i, want := range []float64{0, 0.5, 1} {
		if got[i].X != want {
			t.Errorf("rank %d = %v, want %v", i, got[i].X, want)
		}
	}
}

// TestMergeAppendZeroAlloc checks the gather path allocates nothing
// once both heaps' storage has warmed up.
func TestMergeAppendZeroAlloc(t *testing.T) {
	src := NewKBest(8)
	dst := NewKBest(8)
	fill := func() {
		src.Reset(8)
		dst.Reset(8)
		for i := 0; i < 12; i++ {
			src.Offer(geo.Point{X: float64(i)}, float64(i))
			dst.Offer(geo.Point{X: float64(i) + 0.5}, float64(i)+0.5)
		}
	}
	fill()
	dst.MergeAppend(src) // warm both backing arrays
	allocs := testing.AllocsPerRun(100, func() {
		fill()
		dst.MergeAppend(src)
	})
	if allocs != 0 {
		t.Errorf("MergeAppend allocates %.1f per run, want 0", allocs)
	}
}
