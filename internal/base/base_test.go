package base

import (
	"sort"
	"testing"
	"time"

	"elsi/internal/geo"
	"elsi/internal/rmi"
)

func xMap(p geo.Point) float64 { return p.X }

func TestPrepareSortsByKey(t *testing.T) {
	pts := []geo.Point{{X: 3, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 3}}
	d := Prepare(pts, geo.UnitRect, xMap)
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if !sort.Float64sAreSorted(d.Keys) {
		t.Fatal("keys not sorted")
	}
	for i, k := range d.Keys {
		if d.Pts[i].X != k {
			t.Fatalf("point %d not aligned with key %v", i, k)
		}
	}
	if d.Map(geo.Point{X: 7}) != 7 {
		t.Error("Map not preserved")
	}
	if d.Space != geo.UnitRect {
		t.Error("Space not preserved")
	}
}

func TestPrepareEmpty(t *testing.T) {
	d := Prepare(nil, geo.UnitRect, xMap)
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDirectBuildsAndBounds(t *testing.T) {
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) / 100}
	}
	d := Prepare(pts, geo.UnitRect, xMap)
	b := &Direct{Trainer: rmi.LinearTrainer()}
	if b.Name() != "OG" {
		t.Errorf("Name = %s", b.Name())
	}
	m, stats := b.BuildModel(d)
	if stats.Method != "OG" || stats.TrainSetSize != 100 {
		t.Errorf("stats = %+v", stats)
	}
	for i, k := range d.Keys {
		lo, hi := m.SearchRange(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d outside range", i)
		}
	}
}

func TestFromKeysStats(t *testing.T) {
	pts := make([]geo.Point, 50)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i)}
	}
	d := Prepare(pts, geo.UnitRect, xMap)
	train := []float64{0, 10, 20, 30, 40, 49}
	reduceTime := 5 * time.Millisecond
	m, stats := FromKeys("SP", rmi.LinearTrainer(), train, d, reduceTime)
	if stats.Method != "SP" {
		t.Errorf("Method = %s", stats.Method)
	}
	if stats.TrainSetSize != len(train) {
		t.Errorf("TrainSetSize = %d", stats.TrainSetSize)
	}
	if stats.ReduceTime != reduceTime {
		t.Errorf("ReduceTime = %v", stats.ReduceTime)
	}
	if stats.ErrWidth != m.ErrLo+m.ErrHi {
		t.Errorf("ErrWidth mismatch")
	}
	if got := stats.Total(); got < reduceTime {
		t.Errorf("Total = %v < reduce time", got)
	}
}
