package base

import (
	"errors"
	"fmt"
	"math"

	"elsi/internal/geo"
)

// ErrEmptyDataset reports a build entry point that requires a non-empty
// data set (e.g. rebuild.NewProcessor, which would otherwise serve an
// index over nothing while its delta overlay absorbs every update).
var ErrEmptyDataset = errors.New("base: empty dataset")

// InvalidPointError reports a point with a NaN or infinite coordinate.
// Such points have no position on a space-filling curve — they would
// silently poison the mapped keys, the sort order, and every NN
// training target downstream, so build entries reject them up front.
type InvalidPointError struct {
	// Index is the offending point's position in the input slice.
	Index int
	// Point is the offending point.
	Point geo.Point
}

// Error implements error.
func (e *InvalidPointError) Error() string {
	return fmt.Sprintf("base: invalid coordinate in point %d: %v", e.Index, e.Point)
}

// ValidPoint reports whether both coordinates are finite.
func ValidPoint(p geo.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// ValidatePoints returns an *InvalidPointError for the first point with
// a NaN or ±Inf coordinate, or nil if all points are finite. Every
// index Build entry runs it before mapping keys.
func ValidatePoints(pts []geo.Point) error {
	for i, p := range pts {
		if !ValidPoint(p) {
			return &InvalidPointError{Index: i, Point: p}
		}
	}
	return nil
}

// ValidateDataset is ValidatePoints plus an ErrEmptyDataset check, for
// entry points that additionally require data (core.NewSystem's
// training path, rebuild.NewProcessor).
func ValidateDataset(pts []geo.Point) error {
	if len(pts) == 0 {
		return ErrEmptyDataset
	}
	return ValidatePoints(pts)
}
