package base

import (
	"time"

	"elsi/internal/snapshot"
)

// BuildStats round-trips through snapshots so a recovered index's
// /stats report still shows how its models were built — the stats
// describe the persisted models, not the process that loaded them.

// AppendBuildStats serializes one BuildStats.
func AppendBuildStats(b []byte, s BuildStats) []byte {
	b = snapshot.AppendString(b, s.Method)
	b = snapshot.AppendInt(b, s.TrainSetSize)
	b = snapshot.AppendVarint(b, int64(s.ReduceTime))
	b = snapshot.AppendVarint(b, int64(s.TrainTime))
	b = snapshot.AppendVarint(b, int64(s.BoundsTime))
	b = snapshot.AppendInt(b, s.ErrWidth)
	b = snapshot.AppendString(b, s.Selected)
	return snapshot.AppendInt(b, s.Fallbacks)
}

// DecodeBuildStats reads one BuildStats off d.
func DecodeBuildStats(d *snapshot.Dec) BuildStats {
	return BuildStats{
		Method:       d.String(),
		TrainSetSize: d.Int(),
		ReduceTime:   time.Duration(d.Varint()),
		TrainTime:    time.Duration(d.Varint()),
		BoundsTime:   time.Duration(d.Varint()),
		ErrWidth:     d.Int(),
		Selected:     d.String(),
		Fallbacks:    d.Int(),
	}
}

// AppendBuildStatsSlice serializes a counted []BuildStats.
func AppendBuildStatsSlice(b []byte, ss []BuildStats) []byte {
	b = snapshot.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendBuildStats(b, s)
	}
	return b
}

// DecodeBuildStatsSlice reads a counted []BuildStats off d.
func DecodeBuildStatsSlice(d *snapshot.Dec) []BuildStats {
	n := d.Count(8)
	if d.Err() != nil || n == 0 {
		return nil
	}
	ss := make([]BuildStats, n)
	for i := range ss {
		ss[i] = DecodeBuildStats(d)
	}
	if d.Err() != nil {
		return nil
	}
	return ss
}
