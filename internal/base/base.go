// Package base defines the contract between ELSI and the learned
// spatial indices it accelerates. A base index following the
// map-and-sort paradigm prepares a SortedData (points sorted by their
// 1-D mapped keys) for every index model it needs, and asks a
// ModelBuilder to produce the model. The ModelBuilder is the plug-in
// point: the OG builder trains directly on the full data (the index's
// original behaviour), while the ELSI system selects an index building
// method that trains on a reduced set.
package base

import (
	"context"
	"time"

	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/parallel"
	"elsi/internal/rmi"
)

// SortedData is a data set (or partition) prepared for model building:
// points sorted ascending by their mapped keys.
type SortedData struct {
	// Pts are the data points, sorted by Keys.
	Pts []geo.Point
	// Keys are the mapped 1-D keys, sorted ascending, parallel to Pts.
	Keys []float64
	// Space is the data-space rectangle of the partition.
	Space geo.Rect
	// Map computes the mapped key of an arbitrary point. Building
	// methods that synthesize points not in the data set (CL, RL) use
	// it to place their synthetic training points in the key space.
	Map func(geo.Point) float64
}

// Len returns the partition cardinality.
func (d *SortedData) Len() int { return len(d.Keys) }

// BuildStats records the cost decomposition of one model build — the
// quantities of Table I.
type BuildStats struct {
	// Method is the index building method used ("SP", "CL", ..., "OG").
	Method string
	// TrainSetSize is |Ds|.
	TrainSetSize int
	// ReduceTime is the method-specific extra cost of computing Ds.
	ReduceTime time.Duration
	// TrainTime is T(|Ds|), the model training cost.
	TrainTime time.Duration
	// BoundsTime is M(n), the cost of predicting every point of D to
	// derive the empirical error bounds.
	BoundsTime time.Duration
	// ErrWidth is err_l + err_u.
	ErrWidth int
	// Selected is the method the selector originally picked for this
	// build. It equals Method unless the degradation ladder fell back;
	// empty when the build did not go through a selector.
	Selected string
	// Fallbacks counts the ladder rungs tried and abandoned before
	// Method succeeded (0 = the selected method built cleanly).
	Fallbacks int
}

// Total returns the summed model-build time (excluding the shared
// map-and-sort data preparation, which is identical across methods).
func (s BuildStats) Total() time.Duration {
	return s.ReduceTime + s.TrainTime + s.BoundsTime
}

// ModelBuilder builds a bounded rank model for a prepared partition.
type ModelBuilder interface {
	// Name identifies the builder ("OG", "ELSI", or a method name).
	Name() string
	// BuildModel trains a model for d and computes its empirical error
	// bounds over all of d.Keys.
	BuildModel(d *SortedData) (*rmi.Bounded, BuildStats)
}

// ContextModelBuilder is implemented by builders that support
// cooperative cancellation and in-band failure: the fault-tolerant
// build pipeline prefers this entry point. BuildModelCtx returns an
// error (instead of an index) when the build is cancelled, blows its
// budget, or fails; it must not return (nil, _, nil).
type ContextModelBuilder interface {
	ModelBuilder
	BuildModelCtx(ctx context.Context, d *SortedData) (*rmi.Bounded, BuildStats, error)
}

// BuildModelCtx builds through b's context-aware entry point when it
// has one; otherwise it runs the legacy BuildModel under panic
// isolation, so even a pre-context builder cannot crash the caller.
func BuildModelCtx(ctx context.Context, b ModelBuilder, d *SortedData) (m *rmi.Bounded, stats BuildStats, err error) {
	// Panic isolation covers both paths: a context-aware builder may
	// still panic (injected faults, hostile inputs) and must fail the
	// attempt, not the caller.
	defer func() {
		if pe := parallel.Recovered(recover()); pe != nil {
			m, stats, err = nil, BuildStats{}, pe
		}
	}()
	if cb, ok := b.(ContextModelBuilder); ok {
		return cb.BuildModelCtx(ctx, d)
	}
	if err := ctx.Err(); err != nil {
		return nil, BuildStats{}, err
	}
	m, stats = b.BuildModel(d)
	return m, stats, nil
}

// Direct is the OG builder: it trains on the full key set, which is
// what the base indices do without ELSI.
type Direct struct {
	Trainer rmi.Trainer
	// Workers bounds the parallel error-bound scan (0 = GOMAXPROCS).
	Workers int
}

// Name implements ModelBuilder.
func (b *Direct) Name() string { return "OG" }

// BuildModel implements ModelBuilder.
func (b *Direct) BuildModel(d *SortedData) (*rmi.Bounded, BuildStats) {
	stats := BuildStats{Method: "OG", TrainSetSize: d.Len()}
	t0 := time.Now()
	rmi.CountTraining()
	m := b.Trainer(d.Keys)
	stats.TrainTime = time.Since(t0)
	t0 = time.Now()
	lo, hi := rmi.ErrorBoundsWorkers(m, d.Keys, b.Workers)
	stats.BoundsTime = time.Since(t0)
	stats.ErrWidth = lo + hi
	return &rmi.Bounded{Model: m, N: d.Len(), ErrLo: lo, ErrHi: hi}, stats
}

// BuildModelCtx implements ContextModelBuilder. Injection point:
// "build/OG".
func (b *Direct) BuildModelCtx(ctx context.Context, d *SortedData) (*rmi.Bounded, BuildStats, error) {
	if err := faults.HitCtx(ctx, "build/OG"); err != nil {
		return nil, BuildStats{}, err
	}
	stats := BuildStats{Method: "OG", TrainSetSize: d.Len()}
	t0 := time.Now()
	m, err := rmi.SafeTrain(b.Trainer, d.Keys)
	stats.TrainTime = time.Since(t0)
	if err != nil {
		return nil, BuildStats{}, err
	}
	t0 = time.Now()
	lo, hi, err := rmi.ErrorBoundsCtx(ctx, m, d.Keys, b.Workers)
	stats.BoundsTime = time.Since(t0)
	if err != nil {
		return nil, BuildStats{}, err
	}
	stats.ErrWidth = lo + hi
	return &rmi.Bounded{Model: m, N: d.Len(), ErrLo: lo, ErrHi: hi}, stats, nil
}

// FromKeys finishes a model build given the reduced training keys:
// train on trainKeys, bound against the full d.Keys. Building methods
// share this tail of the pipeline.
func FromKeys(method string, trainer rmi.Trainer, trainKeys []float64, d *SortedData, reduceTime time.Duration) (*rmi.Bounded, BuildStats) {
	return FromKeysWorkers(method, trainer, trainKeys, d, reduceTime, 0)
}

// FromKeysWorkers is FromKeys with an explicit worker count for the
// error-bound scan (0 = GOMAXPROCS). The scan is the pipeline's M(n)
// term, so this is where the pool methods spend most of their build
// time once |Ds| << n.
func FromKeysWorkers(method string, trainer rmi.Trainer, trainKeys []float64, d *SortedData, reduceTime time.Duration, workers int) (*rmi.Bounded, BuildStats) {
	stats := BuildStats{Method: method, TrainSetSize: len(trainKeys), ReduceTime: reduceTime}
	t0 := time.Now()
	rmi.CountTraining()
	m := trainer(trainKeys)
	stats.TrainTime = time.Since(t0)
	t0 = time.Now()
	lo, hi := rmi.ErrorBoundsWorkers(m, d.Keys, workers)
	stats.BoundsTime = time.Since(t0)
	stats.ErrWidth = lo + hi
	return &rmi.Bounded{Model: m, N: d.Len(), ErrLo: lo, ErrHi: hi}, stats
}

// FromKeysCtx is FromKeysWorkers with cancellation and panic
// isolation: training runs under rmi.SafeTrain and the error-bound
// scan checks ctx at block boundaries. The context-aware pool builders
// share this tail.
func FromKeysCtx(ctx context.Context, method string, trainer rmi.Trainer, trainKeys []float64, d *SortedData, reduceTime time.Duration, workers int) (*rmi.Bounded, BuildStats, error) {
	stats := BuildStats{Method: method, TrainSetSize: len(trainKeys), ReduceTime: reduceTime}
	t0 := time.Now()
	m, err := rmi.SafeTrain(trainer, trainKeys)
	stats.TrainTime = time.Since(t0)
	if err != nil {
		return nil, BuildStats{}, err
	}
	t0 = time.Now()
	lo, hi, err := rmi.ErrorBoundsCtx(ctx, m, d.Keys, workers)
	stats.BoundsTime = time.Since(t0)
	if err != nil {
		return nil, BuildStats{}, err
	}
	stats.ErrWidth = lo + hi
	return &rmi.Bounded{Model: m, N: d.Len(), ErrLo: lo, ErrHi: hi}, stats, nil
}

// Prepare maps and sorts pts into a SortedData using mapKey — the
// shared data-preparation step (lines 1-2 of Algorithm 1) — using the
// default worker count.
func Prepare(pts []geo.Point, space geo.Rect, mapKey func(geo.Point) float64) *SortedData {
	return PrepareWorkers(pts, space, mapKey, 0)
}

// PrepareWorkers is Prepare with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). Key mapping is chunked across workers and
// the key/point pairs are sorted with a deterministic stable parallel
// merge sort, so the resulting storage order — including the order of
// equal keys — is identical for any worker count. mapKey must be safe
// for concurrent calls (every mapping in the repo is a pure function
// of the point and read-only index state).
func PrepareWorkers(pts []geo.Point, space geo.Rect, mapKey func(geo.Point) float64, workers int) *SortedData {
	d := &SortedData{
		Pts:   make([]geo.Point, len(pts)),
		Keys:  make([]float64, len(pts)),
		Space: space,
		Map:   mapKey,
	}
	copy(d.Pts, pts)
	parallel.For(len(pts), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d.Keys[i] = mapKey(d.Pts[i])
		}
	})
	parallel.SortPairs(d.Keys, d.Pts, workers)
	return d
}
