// Package delta implements the ELSI update processor's side list
// (Section IV-B2): newly inserted points and deletions of existing
// points are kept out of the learned structure and consulted at query
// time; an AVL tree keyed by point ID keeps maintenance logarithmic,
// as the paper suggests ("a binary tree on the IDs of the updated
// points can be employed to reduce the query time").
package delta

import "elsi/internal/geo"

// Op is the kind of pending update.
type Op int8

const (
	// Inserted marks a point added after the last (re)build.
	Inserted Op = iota
	// Deleted marks an indexed point removed after the last (re)build.
	Deleted
)

// Record is one pending update.
type Record struct {
	ID    int64
	Point geo.Point
	Op    Op
}

type node struct {
	rec         Record
	left, right *node
	height      int
}

// List is the pending-update store. The zero value is ready to use.
// Alongside the ID-keyed AVL tree, point-keyed counters give O(1)
// membership checks for the point-query path.
type List struct {
	root *node
	size int
	dels int

	insCount map[geo.Point]int
	delCount map[geo.Point]int
	insIDs   map[geo.Point][]int64
}

// Len returns the number of pending updates.
//
//elsi:noalloc
func (l *List) Len() int { return l.size }

// Deletions returns the number of pending deletion records. Query
// paths that fetch candidates from the base index and filter deletions
// afterwards use it to widen the fetch so the filter cannot eat into
// the requested answer size.
//
//elsi:noalloc
func (l *List) Deletions() int { return l.dels }

// Insert records the insertion of point p with identifier id. If id is
// already pending as a deletion of the same point, the records cancel
// out. A pending deletion of a *different* point is replaced instead:
// cancelling it would silently drop p and resurrect the deleted point.
func (l *List) Insert(id int64, p geo.Point) {
	if n := l.find(id); n != nil && n.rec.Op == Deleted && n.rec.Point == p {
		l.remove(id)
		return
	}
	l.put(Record{ID: id, Point: p, Op: Inserted})
}

// Delete records the deletion of indexed point p with identifier id.
// Deleting a pending insertion of the same point simply drops it; a
// pending insertion of a different point is replaced by the deletion
// record (symmetric with Insert).
func (l *List) Delete(id int64, p geo.Point) {
	if n := l.find(id); n != nil && n.rec.Op == Inserted && n.rec.Point == p {
		l.remove(id)
		return
	}
	l.put(Record{ID: id, Point: p, Op: Deleted})
}

// Get returns the pending record for id, if any.
func (l *List) Get(id int64) (Record, bool) {
	if n := l.find(id); n != nil {
		return n.rec, true
	}
	return Record{}, false
}

// ForEach visits all pending records in ID order.
func (l *List) ForEach(fn func(Record)) {
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		fn(n.rec)
		walk(n.right)
	}
	walk(l.root)
}

// InsertedWithin appends to out the pending insertions inside win.
//
//elsi:noalloc
func (l *List) InsertedWithin(win geo.Rect, out []geo.Point) []geo.Point {
	return appendInsertedWithin(l.root, true, win, nil, out)
}

// AppendInserted appends every pending insertion's point to out, in ID
// order. It is the closure-free form of ForEach-with-filter for the
// query hot paths: the recursion carries the output slice instead of
// capturing it.
//
//elsi:noalloc
func (l *List) AppendInserted(out []geo.Point) []geo.Point {
	return appendInsertedWithin(l.root, false, geo.Rect{}, nil, out)
}

// InsertedNotDeletedIn appends the pending insertions that do not have
// a pending deletion in dels (the newer overlay layered above this
// frozen snapshot). A nil dels filters nothing.
//
//elsi:noalloc
func (l *List) InsertedNotDeletedIn(dels *List, out []geo.Point) []geo.Point {
	return appendInsertedWithin(l.root, false, geo.Rect{}, dels, out)
}

// InsertedWithinNotDeletedIn combines the window filter with the
// overlay-deletion filter.
//
//elsi:noalloc
func (l *List) InsertedWithinNotDeletedIn(win geo.Rect, dels *List, out []geo.Point) []geo.Point {
	return appendInsertedWithin(l.root, true, win, dels, out)
}

// appendInsertedWithin is the shared in-order recursion behind the
// Inserted* appenders: windowed reports whether win filters (a
// degenerate window is still a window, so a sentinel value cannot
// stand in for "unfiltered").
//
//elsi:noalloc
func appendInsertedWithin(n *node, windowed bool, win geo.Rect, dels *List, out []geo.Point) []geo.Point {
	if n == nil {
		return out
	}
	out = appendInsertedWithin(n.left, windowed, win, dels, out)
	if n.rec.Op == Inserted &&
		(!windowed || win.Contains(n.rec.Point)) &&
		(dels == nil || !dels.IsDeleted(n.rec.Point)) {
		out = append(out, n.rec.Point)
	}
	return appendInsertedWithin(n.right, windowed, win, dels, out)
}

// IsDeleted reports whether a point equal to p has a pending deletion.
//
//elsi:noalloc
func (l *List) IsDeleted(p geo.Point) bool {
	return l.delCount[p] > 0
}

// HasInserted reports whether a point equal to p has a pending
// insertion (used by point queries over the delta list).
//
//elsi:noalloc
func (l *List) HasInserted(p geo.Point) bool {
	return l.insCount[p] > 0
}

// Clear drops all pending updates (called after a rebuild folds them
// into the base index).
func (l *List) Clear() {
	l.root = nil
	l.size = 0
	l.dels = 0
	l.insCount = nil
	l.delCount = nil
	l.insIDs = nil
}

// RemoveInsertedPoint drops one pending insertion of a point equal to
// p, reporting whether one existed. Deleting a point that is itself a
// pending insertion must cancel that insertion rather than add a
// deletion record — otherwise the stale insertion resurrects the
// point in query results.
func (l *List) RemoveInsertedPoint(p geo.Point) bool {
	ids := l.insIDs[p]
	if len(ids) == 0 {
		return false
	}
	l.remove(ids[len(ids)-1])
	return true
}

// Freeze returns the current pending updates as a frozen snapshot and
// resets the receiver to empty in O(1). The update processor calls it
// at the start of a background rebuild: the returned list is the
// immutable view an in-flight rebuild (and queries racing with it)
// see, while the receiver becomes the fresh overlay collecting the
// updates that arrive during the rebuild. The snapshot must not be
// mutated afterwards.
func (l *List) Freeze() *List {
	snap := &List{
		root:     l.root,
		size:     l.size,
		dels:     l.dels,
		insCount: l.insCount,
		delCount: l.delCount,
		insIDs:   l.insIDs,
	}
	*l = List{}
	return snap
}

// Adopt stores rec as-is, without the cancellation logic of Insert and
// Delete. It is the primitive for replaying a frozen snapshot's
// records back into a live list when a background rebuild fails and
// its frozen view must be restored.
func (l *List) Adopt(rec Record) {
	l.put(rec)
}

// Records returns all pending records in ID order.
func (l *List) Records() []Record {
	out := make([]Record, 0, l.size)
	l.ForEach(func(r Record) { out = append(out, r) })
	return out
}

// --- AVL internals -----------------------------------------------------

func (l *List) find(id int64) *node {
	n := l.root
	for n != nil {
		switch {
		case id < n.rec.ID:
			n = n.left
		case id > n.rec.ID:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

func (l *List) put(rec Record) {
	if old := l.find(rec.ID); old != nil {
		l.countAdjust(old.rec, -1)
	}
	var added bool
	l.root, added = insert(l.root, rec)
	if added {
		l.size++
	}
	l.countAdjust(rec, +1)
}

func (l *List) remove(id int64) {
	old := l.find(id)
	if old == nil {
		return
	}
	// copy the record before the tree mutation: deleting a node with
	// two children overwrites it in place with its in-order successor
	// (del's n.rec = succ.rec), so reading old.rec afterwards would
	// adjust the successor's counters instead of the removed record's —
	// silently dropping a *different* point's pending state.
	rec := old.rec
	var removed bool
	l.root, removed = del(l.root, id)
	if removed {
		l.size--
		l.countAdjust(rec, -1)
	}
}

// countAdjust maintains the point-keyed membership counters and the
// inserted-point id lists.
func (l *List) countAdjust(rec Record, delta int) {
	var m map[geo.Point]int
	if rec.Op == Inserted {
		if l.insCount == nil {
			l.insCount = map[geo.Point]int{}
			l.insIDs = map[geo.Point][]int64{}
		}
		m = l.insCount
		if delta > 0 {
			l.insIDs[rec.Point] = append(l.insIDs[rec.Point], rec.ID)
		} else {
			ids := l.insIDs[rec.Point]
			for i, id := range ids {
				if id == rec.ID {
					ids[i] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
					break
				}
			}
			if len(ids) == 0 {
				delete(l.insIDs, rec.Point)
			} else {
				l.insIDs[rec.Point] = ids
			}
		}
	} else {
		if l.delCount == nil {
			l.delCount = map[geo.Point]int{}
		}
		m = l.delCount
		l.dels += delta
	}
	m[rec.Point] += delta
	if m[rec.Point] <= 0 {
		delete(m, rec.Point)
	}
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *node) *node {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func insert(n *node, rec Record) (*node, bool) {
	if n == nil {
		return &node{rec: rec, height: 1}, true
	}
	var added bool
	switch {
	case rec.ID < n.rec.ID:
		n.left, added = insert(n.left, rec)
	case rec.ID > n.rec.ID:
		n.right, added = insert(n.right, rec)
	default:
		n.rec = rec // overwrite in place
		return n, false
	}
	return fix(n), added
}

func del(n *node, id int64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case id < n.rec.ID:
		n.left, removed = del(n.left, id)
	case id > n.rec.ID:
		n.right, removed = del(n.right, id)
	default:
		removed = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// replace with in-order successor
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.rec = succ.rec
		n.right, _ = del(n.right, succ.rec.ID)
	}
	return fix(n), removed
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
