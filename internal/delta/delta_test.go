package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elsi/internal/geo"
)

func TestInsertGetLen(t *testing.T) {
	var l List
	l.Insert(5, geo.Point{X: 1, Y: 2})
	l.Insert(3, geo.Point{X: 3, Y: 4})
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	r, ok := l.Get(5)
	if !ok || r.Point != (geo.Point{X: 1, Y: 2}) || r.Op != Inserted {
		t.Errorf("Get(5) = %+v, %v", r, ok)
	}
	if _, ok := l.Get(99); ok {
		t.Error("Get(99) found a phantom record")
	}
}

func TestDeleteCancelsInsert(t *testing.T) {
	var l List
	p := geo.Point{X: 1, Y: 1}
	l.Insert(7, p)
	l.Delete(7, p)
	if l.Len() != 0 {
		t.Errorf("insert+delete should cancel, Len = %d", l.Len())
	}
}

func TestInsertCancelsDelete(t *testing.T) {
	var l List
	p := geo.Point{X: 2, Y: 2}
	l.Delete(9, p) // delete of an indexed point
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.Insert(9, p) // re-insert: cancels
	if l.Len() != 0 {
		t.Errorf("delete+insert should cancel, Len = %d", l.Len())
	}
}

// Regression: re-inserting under an id whose pending deletion records
// a *different* point must not cancel — cancelling would both drop the
// incoming point and resurrect the deleted one. The records replace
// instead.
func TestInsertOverDeletionOfDifferentPoint(t *testing.T) {
	var l List
	deleted := geo.Point{X: 1, Y: 1}
	incoming := geo.Point{X: 2, Y: 2}
	l.Delete(4, deleted)
	l.Insert(4, incoming)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want the replacing insertion", l.Len())
	}
	r, ok := l.Get(4)
	if !ok || r.Op != Inserted || r.Point != incoming {
		t.Errorf("Get(4) = %+v, want Inserted %v", r, incoming)
	}
	if !l.HasInserted(incoming) {
		t.Error("incoming point lost")
	}
	if l.IsDeleted(deleted) {
		t.Error("stale deletion record survived the replace")
	}
}

// Regression (symmetric): deleting under an id whose pending insertion
// records a different point replaces rather than silently dropping the
// deletion.
func TestDeleteOverInsertionOfDifferentPoint(t *testing.T) {
	var l List
	inserted := geo.Point{X: 3, Y: 3}
	victim := geo.Point{X: 4, Y: 4}
	l.Insert(6, inserted)
	l.Delete(6, victim)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want the replacing deletion", l.Len())
	}
	r, ok := l.Get(6)
	if !ok || r.Op != Deleted || r.Point != victim {
		t.Errorf("Get(6) = %+v, want Deleted %v", r, victim)
	}
	if !l.IsDeleted(victim) {
		t.Error("deletion lost")
	}
	if l.HasInserted(inserted) {
		t.Error("stale insertion record survived the replace")
	}
}

func TestFreezeSnapshotsAndResets(t *testing.T) {
	var l List
	pi := geo.Point{X: 0.1, Y: 0.2}
	pd := geo.Point{X: 0.3, Y: 0.4}
	l.Insert(1, pi)
	l.Delete(2, pd)
	snap := l.Freeze()
	if l.Len() != 0 {
		t.Fatalf("receiver Len after Freeze = %d", l.Len())
	}
	if snap.Len() != 2 || !snap.HasInserted(pi) || !snap.IsDeleted(pd) {
		t.Errorf("snapshot lost records: Len=%d", snap.Len())
	}
	// the overlay (receiver) keeps working independently
	l.Insert(3, geo.Point{X: 0.5})
	if snap.Len() != 2 || l.Len() != 1 {
		t.Errorf("Freeze layers not independent: snap=%d overlay=%d", snap.Len(), l.Len())
	}
}

func TestAdoptReplays(t *testing.T) {
	var l List
	l.Insert(1, geo.Point{X: 1})
	l.Delete(2, geo.Point{X: 2})
	snap := l.Freeze()
	var restored List
	for _, r := range snap.Records() {
		restored.Adopt(r)
	}
	if restored.Len() != 2 || !restored.HasInserted(geo.Point{X: 1}) || !restored.IsDeleted(geo.Point{X: 2}) {
		t.Errorf("Adopt replay lost records: Len=%d", restored.Len())
	}
}

func TestForEachOrdered(t *testing.T) {
	var l List
	ids := []int64{5, 1, 9, 3, 7, 2, 8}
	for _, id := range ids {
		l.Insert(id, geo.Point{X: float64(id)})
	}
	var got []int64
	l.ForEach(func(r Record) { got = append(got, r.ID) })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ForEach out of order: %v", got)
		}
	}
	if len(got) != len(ids) {
		t.Errorf("visited %d records", len(got))
	}
}

func TestInsertedWithin(t *testing.T) {
	var l List
	l.Insert(1, geo.Point{X: 0.1, Y: 0.1})
	l.Insert(2, geo.Point{X: 0.9, Y: 0.9})
	l.Delete(3, geo.Point{X: 0.15, Y: 0.15})
	win := geo.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5}
	got := l.InsertedWithin(win, nil)
	if len(got) != 1 || got[0] != (geo.Point{X: 0.1, Y: 0.1}) {
		t.Errorf("InsertedWithin = %v", got)
	}
}

func TestIsDeletedHasInserted(t *testing.T) {
	var l List
	pd := geo.Point{X: 0.3, Y: 0.3}
	pi := geo.Point{X: 0.6, Y: 0.6}
	l.Delete(1, pd)
	l.Insert(2, pi)
	if !l.IsDeleted(pd) {
		t.Error("IsDeleted missed the deleted point")
	}
	if l.IsDeleted(pi) {
		t.Error("IsDeleted flagged an inserted point")
	}
	if !l.HasInserted(pi) {
		t.Error("HasInserted missed the inserted point")
	}
	if l.HasInserted(pd) {
		t.Error("HasInserted flagged a deleted point")
	}
}

func TestClear(t *testing.T) {
	var l List
	for i := int64(0); i < 100; i++ {
		l.Insert(i, geo.Point{})
	}
	l.Clear()
	if l.Len() != 0 {
		t.Errorf("Len after Clear = %d", l.Len())
	}
	if len(l.Records()) != 0 {
		t.Error("Records after Clear not empty")
	}
}

func TestOverwrite(t *testing.T) {
	var l List
	l.Insert(1, geo.Point{X: 1})
	l.Insert(1, geo.Point{X: 2})
	if l.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", l.Len())
	}
	r, _ := l.Get(1)
	if r.Point.X != 2 {
		t.Errorf("overwrite kept old point: %v", r.Point)
	}
}

// Property: the AVL stays balanced and ordered under random
// insert/delete mixes; Len always matches the visited count. Points
// are drawn from a small discrete set so the point-matching
// cancellation rule actually fires.
func TestQuickAVLInvariants(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw)%200 + 1
		var l List
		shadow := map[int64]Record{}
		for i := 0; i < ops; i++ {
			id := int64(rng.Intn(50))
			p := geo.Point{X: float64(rng.Intn(3))}
			if rng.Intn(2) == 0 {
				if r, ok := shadow[id]; ok && r.Op == Deleted && r.Point == p {
					delete(shadow, id)
				} else {
					shadow[id] = Record{ID: id, Point: p, Op: Inserted}
				}
				l.Insert(id, p)
			} else {
				if r, ok := shadow[id]; ok && r.Op == Inserted && r.Point == p {
					delete(shadow, id)
				} else {
					shadow[id] = Record{ID: id, Point: p, Op: Deleted}
				}
				l.Delete(id, p)
			}
		}
		if l.Len() != len(shadow) {
			return false
		}
		count := 0
		ok := true
		var prev int64 = -1
		l.ForEach(func(r Record) {
			count++
			if r.ID <= prev {
				ok = false
			}
			prev = r.ID
			if sr, present := shadow[r.ID]; !present || sr.Op != r.Op {
				ok = false
			}
		})
		return ok && count == len(shadow) && balanced(l.root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func balanced(n *node) bool {
	if n == nil {
		return true
	}
	bf := height(n.left) - height(n.right)
	if bf < -1 || bf > 1 {
		return false
	}
	return balanced(n.left) && balanced(n.right)
}

func BenchmarkDeltaAVLInsert(b *testing.B) {
	var l List
	for i := 0; i < b.N; i++ {
		l.Insert(int64(i), geo.Point{X: float64(i)})
	}
}

// BenchmarkDeltaLinearInsert is the ablation baseline: an unindexed
// slice. Lookup-heavy workloads show why the paper suggests the tree.
func BenchmarkDeltaLinearLookup(b *testing.B) {
	var recs []Record
	for i := 0; i < 10000; i++ {
		recs = append(recs, Record{ID: int64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(i % 10000)
		for _, r := range recs {
			if r.ID == id {
				break
			}
		}
	}
}

func BenchmarkDeltaAVLLookup(b *testing.B) {
	var l List
	for i := 0; i < 10000; i++ {
		l.Insert(int64(i), geo.Point{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(int64(i % 10000))
	}
}

// Regression for the AVL counter-corruption bug: deleting a node with
// two children replaces it in place with its in-order successor, so
// remove() must capture the removed record *before* the tree mutation.
// It used to read it afterwards, decrementing the successor's counters
// instead — one RemoveInsertedPoint could silently erase a different
// point's pending deletion (resurrecting it in query answers).
func TestRemoveTwoChildrenAdjustsRightCounters(t *testing.T) {
	var l List
	a, b, c := geo.Point{X: 1}, geo.Point{X: 2}, geo.Point{X: 3}
	l.Insert(1, a)
	l.Insert(2, b) // root with two children after balancing
	l.Delete(3, c) // the in-order successor of id 2
	if !l.IsDeleted(c) || !l.HasInserted(b) {
		t.Fatal("setup: expected pending ins(b) and del(c)")
	}
	if !l.RemoveInsertedPoint(b) {
		t.Fatal("RemoveInsertedPoint(b) found nothing")
	}
	if l.HasInserted(b) {
		t.Error("b still has a pending insertion after removal")
	}
	if !l.IsDeleted(c) {
		t.Error("removing ins(b) erased the unrelated pending deletion of c")
	}
	if got := l.Deletions(); got != 1 {
		t.Errorf("Deletions() = %d, want 1", got)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

// TestDeletionsCounter pins the pending-deletion count across insert,
// delete, cancellation, Freeze, and Clear.
func TestDeletionsCounter(t *testing.T) {
	var l List
	a, b := geo.Point{X: 1}, geo.Point{X: 2}
	if l.Deletions() != 0 {
		t.Fatal("zero value must report 0 deletions")
	}
	l.Delete(1, a)
	l.Delete(2, b)
	l.Insert(3, a)
	if got := l.Deletions(); got != 2 {
		t.Fatalf("Deletions() = %d, want 2 (insert of a different id must not cancel)", got)
	}
	l.Insert(2, b) // same id + point: cancels the deletion record
	if got := l.Deletions(); got != 1 {
		t.Fatalf("Deletions() after cancel = %d, want 1", got)
	}
	snap := l.Freeze()
	if snap.Deletions() != 1 || l.Deletions() != 0 {
		t.Fatalf("Freeze: snap=%d live=%d, want 1/0", snap.Deletions(), l.Deletions())
	}
	snap.Clear()
	if snap.Deletions() != 0 {
		t.Fatalf("Clear left %d deletions", snap.Deletions())
	}
}
