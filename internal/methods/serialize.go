package methods

import (
	"fmt"

	"elsi/internal/rmi"
	"elsi/internal/snapshot"
)

// The MR method's remapModel is the one model kind defined outside
// package rmi that can end up inside a persisted index (a pool model
// remapped onto the data's key range), so it registers an extension
// codec with the model serializer. Tag 64 is on-disk format — never
// reuse it for a different kind.
const remapModelTag = rmi.ExtTagMin

func init() {
	rmi.RegisterModelCodec(remapModelTag, rmi.ModelCodec{
		Match: func(m rmi.Model) bool {
			_, ok := m.(*remapModel)
			return ok
		},
		Append: func(b []byte, m rmi.Model) ([]byte, error) {
			rm := m.(*remapModel)
			b = snapshot.AppendF64(b, rm.lo)
			b = snapshot.AppendF64(b, rm.span)
			return rmi.AppendModel(b, rm.inner)
		},
		Decode: func(d *snapshot.Dec) (rmi.Model, error) {
			lo := d.F64()
			span := d.F64()
			if err := d.Err(); err != nil {
				return nil, err
			}
			//lint:ignore floateq a serialized zero span is exactly zero; any nonzero span is usable
			if span == 0 {
				return nil, fmt.Errorf("methods: remap model with zero span")
			}
			inner, err := rmi.DecodeModel(d)
			if err != nil {
				return nil, err
			}
			return &remapModel{inner: inner, lo: lo, span: span}, nil
		},
	})
}
