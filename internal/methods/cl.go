package methods

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"elsi/internal/base"
	"elsi/internal/faults"
	"elsi/internal/floats"
	"elsi/internal/geo"
	"elsi/internal/rmi"
)

// CL is the clustering method (Section V-A2): k-means over the
// original space with C clusters; the cluster centroids form Ds. Its
// cost O(C*n*d*i) makes it the most expensive pool method, which is
// exactly the trade-off the Pareto study exposes.
type CL struct {
	C          int // number of clusters (paper default 100)
	Iterations int // Lloyd iterations (i in the cost analysis)
	Trainer    rmi.Trainer
	Seed       int64
	// Workers bounds the parallel error-bound scan (0 = GOMAXPROCS).
	Workers int
}

// Name implements base.ModelBuilder.
func (m *CL) Name() string { return NameCL }

// BuildModel implements base.ModelBuilder.
func (m *CL) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	return mustBuild(m.BuildModelCtx(context.Background(), d))
}

// BuildModelCtx implements base.ContextModelBuilder. Injection point:
// "build/CL". The Lloyd iterations — the pool's most expensive reduce
// step, O(C*n*i) — observe ctx at iteration boundaries.
func (m *CL) BuildModelCtx(ctx context.Context, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	if err := faults.HitCtx(ctx, "build/"+NameCL); err != nil {
		return nil, base.BuildStats{}, err
	}
	t0 := time.Now()
	iters := m.Iterations
	if iters <= 0 {
		iters = 10
	}
	centroids, err := KMeansCtx(ctx, d.Pts, m.C, iters, m.Seed)
	if err != nil {
		return nil, base.BuildStats{}, err
	}
	keys := make([]float64, len(centroids))
	for i, c := range centroids {
		keys[i] = d.Map(c)
	}
	sort.Float64s(keys)
	return base.FromKeysCtx(ctx, NameCL, m.Trainer, keys, d, time.Since(t0), m.Workers)
}

// KMeans runs Lloyd's algorithm with k-means++-style seeding and
// returns the cluster centroids. Empty clusters keep their previous
// centers. k is clamped to [minTrainSet, len(pts)].
func KMeans(pts []geo.Point, k, iterations int, seed int64) []geo.Point {
	centers, _ := KMeansCtx(context.Background(), pts, k, iterations, seed)
	return centers
}

// KMeansCtx is KMeans with cooperative cancellation at Lloyd iteration
// boundaries; a background context reproduces KMeans exactly.
func KMeansCtx(ctx context.Context, pts []geo.Point, k, iterations int, seed int64) ([]geo.Point, error) {
	n := len(pts)
	if n == 0 {
		return nil, nil
	}
	if k < minTrainSet {
		k = minTrainSet
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	centers := seedPlusPlus(pts, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed := false
		for i, p := range pts {
			best, bestD := 0, p.Dist2(centers[0])
			for c := 1; c < k; c++ {
				if d := p.Dist2(centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sumX := make([]float64, k)
		sumY := make([]float64, k)
		count := make([]int, k)
		for i, p := range pts {
			c := assign[i]
			sumX[c] += p.X
			sumY[c] += p.Y
			count[c]++
		}
		for c := 0; c < k; c++ {
			if count[c] > 0 {
				centers[c] = geo.Point{X: sumX[c] / float64(count[c]), Y: sumY[c] / float64(count[c])}
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	return centers, nil
}

// seedPlusPlus picks k initial centers with D^2 weighting (k-means++).
func seedPlusPlus(pts []geo.Point, k int, rng *rand.Rand) []geo.Point {
	n := len(pts)
	centers := make([]geo.Point, 0, k)
	centers = append(centers, pts[rng.Intn(n)])
	d2 := make([]float64, n)
	for i, p := range pts {
		d2[i] = p.Dist2(centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var next geo.Point
		if floats.Eq(total, 0) {
			next = pts[rng.Intn(n)]
		} else {
			r := rng.Float64() * total
			idx := n - 1
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= r {
					idx = i
					break
				}
			}
			next = pts[idx]
		}
		centers = append(centers, next)
		for i, p := range pts {
			if d := p.Dist2(next); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func sortFloat64s(v []float64) { sort.Float64s(v) }
