// Package methods implements ELSI's index building methods (Section
// V): each method computes a small training set Ds that preserves the
// key distribution of the input partition D, trains the base index's
// model family on Ds, and derives empirical error bounds over D. The
// adapted methods are SP (systematic sampling), RSP (random sampling,
// the baseline the paper compares SP against), CL (k-means
// clustering), and MR (model reuse); the proposed methods are RS
// (representative set via quadtree partitioning) and RL
// (reinforcement-learning grid search).
package methods

import (
	"context"
	"math/rand"
	"time"

	"elsi/internal/base"
	"elsi/internal/faults"
	"elsi/internal/floats"
	"elsi/internal/rmi"
)

// Method names as used throughout the experiments.
const (
	NameSP  = "SP"
	NameRSP = "RSP"
	NameCL  = "CL"
	NameMR  = "MR"
	NameRS  = "RS"
	NameRL  = "RL"
	NameOG  = "OG"
)

// PoolNames lists the six pool methods of Figure 4 (RSP is a
// comparison baseline, not a pool member).
func PoolNames() []string {
	return []string{NameSP, NameCL, NameMR, NameRS, NameRL, NameOG}
}

// SynthesizesPoints reports whether a method produces training points
// that are not members of the data set. Such methods (CL, MR, RL) are
// inapplicable to base indices that require Ds ⊆ D, e.g. LISA
// (Section VII-A notes CL and RL do not apply to LISA).
func SynthesizesPoints(name string) bool {
	switch name {
	case NameCL, NameMR, NameRL:
		return true
	}
	return false
}

// minTrainSet is the smallest reduced set any method will emit;
// training a model on fewer points is meaningless.
const minTrainSet = 2

// --- SP: systematic sampling ------------------------------------------

// SP is the systematic sampling method: every floor(1/rho)-th point of
// the sorted data set is selected. The pigeonhole argument in Section
// V-A1 makes it the rank-gap-optimal sampler.
type SP struct {
	Rho float64 // sampling rate (paper default 0.0001)
	// MinKeys floors the sample size: the paper's absolute rate was
	// tuned for 10^8-point data sets, so scaled-down runs raise the
	// effective rate until at least MinKeys keys are sampled.
	MinKeys int
	Trainer rmi.Trainer
	// Workers bounds the parallel error-bound scan (0 = GOMAXPROCS).
	Workers int
}

// Name implements base.ModelBuilder.
func (m *SP) Name() string { return NameSP }

// BuildModel implements base.ModelBuilder.
func (m *SP) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	return mustBuild(m.BuildModelCtx(context.Background(), d))
}

// BuildModelCtx implements base.ContextModelBuilder. Injection point:
// "build/SP".
func (m *SP) BuildModelCtx(ctx context.Context, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	if err := faults.HitCtx(ctx, "build/"+NameSP); err != nil {
		return nil, base.BuildStats{}, err
	}
	t0 := time.Now()
	keys := SystematicSampleMin(d.Keys, m.Rho, m.MinKeys)
	return base.FromKeysCtx(ctx, NameSP, m.Trainer, keys, d, time.Since(t0), m.Workers)
}

// mustBuild adapts a context-aware build result to the legacy
// BuildModel contract. With a background context and no armed faults
// the only possible error is a recovered trainer panic, which the
// legacy contract would have propagated as a panic anyway.
func mustBuild(b *rmi.Bounded, stats base.BuildStats, err error) (*rmi.Bounded, base.BuildStats) {
	if err != nil {
		panic(err)
	}
	return b, stats
}

// SystematicSample returns every stride-th key of sorted keys for a
// sampling rate rho, always keeping at least minTrainSet keys (and the
// last key, so the sampled CDF spans the full key range).
func SystematicSample(keys []float64, rho float64) []float64 {
	return SystematicSampleMin(keys, rho, 0)
}

// SystematicSampleMin is SystematicSample with a floor on the sample
// size.
func SystematicSampleMin(keys []float64, rho float64, minKeys int) []float64 {
	n := len(keys)
	if minKeys < minTrainSet {
		minKeys = minTrainSet
	}
	if n <= minKeys {
		return append([]float64(nil), keys...)
	}
	if rho <= 0 {
		rho = 1.0 / float64(n)
	}
	if rho > 1 {
		rho = 1
	}
	stride := int(1 / rho)
	if stride < 1 {
		stride = 1
	}
	if stride > n/minKeys {
		stride = n / minKeys
	}
	out := make([]float64, 0, n/stride+2)
	for i := 0; i < n; i += stride {
		out = append(out, keys[i])
	}
	if !floats.Eq(out[len(out)-1], keys[n-1]) {
		out = append(out, keys[n-1])
	}
	return out
}

// --- RSP: random sampling ---------------------------------------------

// RSP is the random-sampling baseline (Li et al. 2021) the paper
// compares SP against in Figure 7.
type RSP struct {
	Rho float64
	// MinKeys floors the sample size, as for SP.
	MinKeys int
	Trainer rmi.Trainer
	Seed    int64
	// Workers bounds the parallel error-bound scan (0 = GOMAXPROCS).
	Workers int
}

// Name implements base.ModelBuilder.
func (m *RSP) Name() string { return NameRSP }

// BuildModel implements base.ModelBuilder.
func (m *RSP) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	return mustBuild(m.BuildModelCtx(context.Background(), d))
}

// BuildModelCtx implements base.ContextModelBuilder. Injection point:
// "build/RSP".
func (m *RSP) BuildModelCtx(ctx context.Context, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	if err := faults.HitCtx(ctx, "build/"+NameRSP); err != nil {
		return nil, base.BuildStats{}, err
	}
	t0 := time.Now()
	n := d.Len()
	count := int(m.Rho * float64(n))
	if count < m.MinKeys {
		count = m.MinKeys
	}
	if count < minTrainSet {
		count = minTrainSet
	}
	if count > n {
		count = n
	}
	rng := rand.New(rand.NewSource(m.Seed))
	// sample ranks without replacement via partial Fisher-Yates
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	keys := make([]float64, count)
	for i := 0; i < count; i++ {
		j := i + rng.Intn(n-i)
		ranks[i], ranks[j] = ranks[j], ranks[i]
		keys[i] = d.Keys[ranks[i]]
	}
	sortFloat64s(keys)
	return base.FromKeysCtx(ctx, NameRSP, m.Trainer, keys, d, time.Since(t0), m.Workers)
}
