package methods

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"elsi/internal/base"
	"elsi/internal/faults"
	"elsi/internal/floats"
	"elsi/internal/kstest"
	"elsi/internal/parallel"
	"elsi/internal/rmi"
)

// MR is the model-reuse method (Section V-A3, after Liu et al. 2021):
// synthetic key sets whose CDFs heuristically cover the CDF space
// within a threshold epsilon are generated and models pre-trained on
// them offline; at build time the pre-trained model of the most
// similar synthetic set (by KS distance) indexes the data. MR runs no
// online training — only the M(n) bounds pass — making it the
// cheapest pool method.
type MR struct {
	// Epsilon is the coverage threshold; smaller values produce a
	// denser pool (paper default 0.5, swept down to 0.1 in Figure 7).
	Epsilon float64
	// SynthSize is the cardinality of each synthetic key set.
	SynthSize int
	Trainer   rmi.Trainer
	Seed      int64
	// Workers bounds both the parallel pre-training of the pool and
	// the parallel error-bound scan (0 = GOMAXPROCS).
	Workers int

	prepOnce sync.Once
	pool     []pretrained
	prepTime time.Duration
}

type pretrained struct {
	keys  []float64 // sorted synthetic keys in [0, 1]
	model rmi.Model // trained on keys
}

// Name implements base.ModelBuilder.
func (m *MR) Name() string { return NameMR }

// Prepare generates the synthetic pool and pre-trains its models. It
// is an offline, one-off step (Section VII-B2: "system preparation");
// BuildModel triggers it lazily if needed, but its time is reported
// separately via PrepareTime, not in the per-build stats.
func (m *MR) Prepare() {
	m.prepOnce.Do(func() {
		t0 := time.Now()
		eps := m.Epsilon
		if eps <= 0 || eps > 1 {
			eps = 0.5
		}
		size := m.SynthSize
		if size <= 0 {
			size = 2000
		}
		rng := rand.New(rand.NewSource(m.Seed))
		// Key-set generation stays serial (it consumes the shared rng);
		// the candidate models are independent of each other, so they
		// pre-train in parallel. Each Trainer call seeds its own rng, so
		// the pool is identical for any worker count.
		sets := SyntheticCDFPool(rng, eps, size)
		m.pool = make([]pretrained, len(sets))
		parallel.For(len(sets), m.Workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rmi.CountTraining()
				m.pool[i] = pretrained{keys: sets[i], model: m.Trainer(sets[i])}
			}
		})
		m.prepTime = time.Since(t0)
	})
}

// PrepareTime returns the offline pool preparation cost (zero before
// the first Prepare).
func (m *MR) PrepareTime() time.Duration {
	return m.prepTime
}

// PoolSize returns the number of pre-trained models.
func (m *MR) PoolSize() int {
	m.Prepare()
	return len(m.pool)
}

// BuildModel implements base.ModelBuilder: find the synthetic set most
// similar to d's (normalized) key CDF and reuse its model.
func (m *MR) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	return mustBuild(m.BuildModelCtx(context.Background(), d))
}

// BuildModelCtx implements base.ContextModelBuilder. Injection point:
// "build/MR". The pool similarity scan observes ctx between
// candidates.
func (m *MR) BuildModelCtx(ctx context.Context, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	if err := faults.HitCtx(ctx, "build/"+NameMR); err != nil {
		return nil, base.BuildStats{}, err
	}
	m.Prepare()
	t0 := time.Now()
	if d.Len() == 0 {
		return base.FromKeysCtx(ctx, NameMR, m.Trainer, d.Keys, d, time.Since(t0), m.Workers)
	}
	lo, hi := d.Keys[0], d.Keys[d.Len()-1]
	if floats.Eq(hi, lo) {
		return base.FromKeysCtx(ctx, NameMR, m.Trainer, d.Keys, d, time.Since(t0), m.Workers)
	}
	// Normalize the data keys once; similarity search then costs
	// O(n_mr * n_s * log n) using the binary-search KS distance.
	norm := make([]float64, d.Len())
	span := hi - lo
	for i, k := range d.Keys {
		norm[i] = (k - lo) / span
	}
	bestIdx, bestDist := 0, math.Inf(1)
	for i, pt := range m.pool {
		if err := ctx.Err(); err != nil {
			return nil, base.BuildStats{}, err
		}
		if dist := kstest.Distance(pt.keys, norm); dist < bestDist {
			bestIdx, bestDist = i, dist
		}
	}
	reduceTime := time.Since(t0)
	chosen := m.pool[bestIdx]
	model := &remapModel{inner: chosen.model, lo: lo, span: span}
	stats := base.BuildStats{
		Method:       NameMR,
		TrainSetSize: len(chosen.keys),
		ReduceTime:   reduceTime,
		TrainTime:    0, // reuse: no online training
	}
	t0 = time.Now()
	eLo, eHi, err := rmi.ErrorBoundsCtx(ctx, model, d.Keys, m.Workers)
	stats.BoundsTime = time.Since(t0)
	if err != nil {
		return nil, base.BuildStats{}, err
	}
	stats.ErrWidth = eLo + eHi
	return &rmi.Bounded{Model: model, N: d.Len(), ErrLo: eLo, ErrHi: eHi}, stats, nil
}

// remapModel adapts a model trained on [0,1]-normalized keys to the
// data's actual key range.
type remapModel struct {
	inner    rmi.Model
	lo, span float64
}

func (m *remapModel) PredictCDF(key float64) float64 {
	return m.inner.PredictCDF((key - m.lo) / m.span)
}

// Predictor implements rmi.ScratchModel, so the parallel bounds scan
// gets a per-worker allocation-free predictor when the inner model
// provides one (e.g. an FFN with reusable scratch).
func (m *remapModel) Predictor() func(key float64) float64 {
	inner := rmi.PredictorOf(m.inner)
	lo, span := m.lo, m.span
	return func(key float64) float64 {
		return inner((key - lo) / span)
	}
}

// SyntheticCDFPool generates sorted key sets in [0,1] whose CDFs
// heuristically cover the CDF space with granularity eps: power-law
// CDFs x^(1/a) in both skew directions with exponents spaced so
// neighbouring CDFs are about eps apart, plus mass-mixture CDFs with
// point masses of weight 0, eps, 2*eps, ... near zero.
func SyntheticCDFPool(rng *rand.Rand, eps float64, size int) [][]float64 {
	var pool [][]float64
	// Power family: keys = u^a gives CDF x^(1/a). The KS distance
	// between exponents a and a' grows with |log a - log a'|, so a
	// geometric ladder with ratio tied to eps covers the family.
	steps := int(math.Ceil(2 / eps))
	if steps < 1 {
		steps = 1
	}
	maxExp := 8.0
	for i := 0; i <= steps; i++ {
		a := math.Pow(maxExp, float64(i)/float64(steps)) // 1 .. maxExp
		pool = append(pool, powerKeys(size, a))
		if !floats.Eq(a, 1) {
			pool = append(pool, reversedKeys(powerKeys(size, a)))
		}
	}
	// Mass mixtures: a w-weighted point mass at 0 plus uniform rest;
	// KS distance to uniform is w.
	for w := eps; w < 0.95; w += eps {
		pool = append(pool, massKeys(rng, size, w))
	}
	return pool
}

// powerKeys returns size sorted keys u^a for a regular grid of u.
func powerKeys(size int, a float64) []float64 {
	keys := make([]float64, size)
	for i := range keys {
		u := (float64(i) + 0.5) / float64(size)
		keys[i] = math.Pow(u, a)
	}
	return keys
}

// reversedKeys mirrors keys around 0.5 (skew toward 1 instead of 0).
func reversedKeys(keys []float64) []float64 {
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[len(keys)-1-i] = 1 - k
	}
	return out
}

// massKeys returns a sorted mixture of a w point mass near zero and a
// uniform remainder.
func massKeys(rng *rand.Rand, size int, w float64) []float64 {
	keys := make([]float64, size)
	mass := int(w * float64(size))
	const delta = 1e-6
	for i := 0; i < mass; i++ {
		keys[i] = rng.Float64() * delta
	}
	for i := mass; i < size; i++ {
		keys[i] = delta + rng.Float64()*(1-delta)
	}
	sort.Float64s(keys)
	return keys
}
