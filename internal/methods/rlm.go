package methods

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"elsi/internal/base"
	"elsi/internal/faults"
	"elsi/internal/floats"
	"elsi/internal/geo"
	"elsi/internal/kstest"
	"elsi/internal/rl"
	"elsi/internal/rmi"
)

// RLM is the reinforcement-learning method proposed in Section V-B2:
// an eta x eta grid partitions the space, every cell starts filled
// with one synthetic point, and a DQN learns which cells to toggle so
// that the synthetic set's key CDF best approximates the data's. The
// search is the MDP of the paper: state = cell occupancy bits ordered
// by mapped rank, action = toggle a cell, reward = reduction in
// dist(Ds, D), gamma = 0.9, toggles applied with probability zeta =
// 0.8, DQN trained every five steps.
type RLM struct {
	Eta      int     // grid resolution per dimension (paper default 8)
	Steps    int     // search step budget e (paper: 50,000; CPU default 2,000)
	Patience int     // stop after this many steps without improvement
	Zeta     float64 // probability of applying the selected toggle
	Trainer  rmi.Trainer
	Seed     int64
	// Workers bounds the parallel error-bound scan (0 = GOMAXPROCS).
	Workers int
}

// Name implements base.ModelBuilder.
func (m *RLM) Name() string { return NameRL }

// BuildModel implements base.ModelBuilder.
func (m *RLM) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	return mustBuild(m.BuildModelCtx(context.Background(), d))
}

// BuildModelCtx implements base.ContextModelBuilder. Injection point:
// "build/RL". The DQN search loop observes ctx at step boundaries and
// finishes with the best synthetic set found so far.
func (m *RLM) BuildModelCtx(ctx context.Context, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	if err := faults.HitCtx(ctx, "build/"+NameRL); err != nil {
		return nil, base.BuildStats{}, err
	}
	t0 := time.Now()
	keys, err := m.searchKeys(ctx, d)
	if err != nil {
		return nil, base.BuildStats{}, err
	}
	return base.FromKeysCtx(ctx, NameRL, m.Trainer, keys, d, time.Since(t0), m.Workers)
}

// searchKeys runs the DQN-guided search and returns the best synthetic
// key set found.
func (m *RLM) searchKeys(ctx context.Context, d *base.SortedData) ([]float64, error) {
	eta := m.Eta
	if eta < 2 {
		eta = 2
	}
	steps := m.Steps
	if steps <= 0 {
		steps = 2000
	}
	patience := m.Patience
	if patience <= 0 {
		patience = steps / 4
	}
	zeta := m.Zeta
	if zeta <= 0 || zeta > 1 {
		zeta = 0.8
	}
	if d.Len() < minTrainSet {
		return append([]float64(nil), d.Keys...), nil
	}

	// Grid cells, each represented by its center's mapped key, ordered
	// by rank in the mapped space (the state ordering of the paper).
	dim := eta * eta
	cellKeys := make([]float64, 0, dim)
	w := d.Space.Width() / float64(eta)
	h := d.Space.Height() / float64(eta)
	for cy := 0; cy < eta; cy++ {
		for cx := 0; cx < eta; cx++ {
			center := geo.Point{
				X: d.Space.MinX + (float64(cx)+0.5)*w,
				Y: d.Space.MinY + (float64(cy)+0.5)*h,
			}
			cellKeys = append(cellKeys, d.Map(center))
		}
	}
	sort.Float64s(cellKeys)

	agentCfg := rl.DefaultConfig(dim)
	agentCfg.Seed = m.Seed
	agent := rl.NewAgent(agentCfg)
	rng := rand.New(rand.NewSource(m.Seed + 1))

	state := make([]float64, dim)
	for i := range state {
		state[i] = 1
	}
	dsKeys := func(s []float64) []float64 {
		keys := make([]float64, 0, dim)
		for i, bit := range s {
			if floats.Eq(bit, 1) {
				keys = append(keys, cellKeys[i])
			}
		}
		return keys
	}
	onesOf := func(s []float64) int {
		c := 0
		for _, bit := range s {
			if floats.Eq(bit, 1) {
				c++
			}
		}
		return c
	}
	dist := kstest.Distance(dsKeys(state), d.Keys)
	best := append([]float64(nil), state...)
	bestDist := dist
	sinceImprove := 0

	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		action := agent.Select(state)
		next := append([]float64(nil), state...)
		if rng.Float64() < zeta {
			next[action] = 1 - next[action]
		}
		if onesOf(next) < minTrainSet {
			// never empty the training set
			next[action] = 1
		}
		nextDist := kstest.Distance(dsKeys(next), d.Keys)
		reward := dist - nextDist
		agent.Observe(state, action, reward, next)
		state, dist = next, nextDist
		if dist < bestDist {
			bestDist = dist
			copy(best, state)
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= patience {
				break
			}
		}
	}
	return dsKeys(best), nil
}
