package methods

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/kstest"
	"elsi/internal/rmi"
)

// prepare builds a SortedData over a named data set using Z-order
// mapping, the setting of the Table I experiments.
func prepare(t testing.TB, name string, n int, seed int64) *base.SortedData {
	t.Helper()
	pts := dataset.MustGenerate(name, n, seed)
	mapKey := func(p geo.Point) float64 { return float64(curve.ZEncode(p, geo.UnitRect)) }
	return base.Prepare(pts, geo.UnitRect, mapKey)
}

func fastTrainer() rmi.Trainer { return rmi.PiecewiseTrainer(1.0 / 128) }

// allBuilders returns one instance of every pool method plus RSP,
// configured for small test data.
func allBuilders() []base.ModelBuilder {
	tr := fastTrainer()
	return []base.ModelBuilder{
		&SP{Rho: 0.01, Trainer: tr},
		&RSP{Rho: 0.01, Trainer: tr, Seed: 1},
		&CL{C: 32, Iterations: 5, Trainer: tr, Seed: 1},
		&MR{Epsilon: 0.5, SynthSize: 500, Trainer: tr, Seed: 1},
		&RS{Beta: 200, Trainer: tr},
		&RLM{Eta: 4, Steps: 200, Trainer: tr, Seed: 1},
		&base.Direct{Trainer: tr},
	}
}

func TestEveryBuilderProducesUsableModel(t *testing.T) {
	d := prepare(t, dataset.OSM1, 5000, 1)
	for _, b := range allBuilders() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			m, stats := b.BuildModel(d)
			if m == nil {
				t.Fatal("nil model")
			}
			if m.N != d.Len() {
				t.Fatalf("N = %d, want %d", m.N, d.Len())
			}
			if stats.Method != b.Name() {
				t.Errorf("stats.Method = %q, want %q", stats.Method, b.Name())
			}
			if stats.TrainSetSize < minTrainSet {
				t.Errorf("train set size %d below minimum", stats.TrainSetSize)
			}
			if stats.ErrWidth != m.ErrLo+m.ErrHi {
				t.Errorf("stats.ErrWidth %d != bounds %d", stats.ErrWidth, m.ErrLo+m.ErrHi)
			}
			// predict-and-scan correctness: every stored key must fall
			// inside its search range.
			for i, k := range d.Keys {
				lo, hi := m.SearchRange(k)
				if i < lo || i >= hi {
					t.Fatalf("key %d outside [%d,%d)", i, lo, hi)
				}
			}
		})
	}
}

func TestReducedSetsAreSmall(t *testing.T) {
	d := prepare(t, dataset.OSM1, 20000, 2)
	tr := fastTrainer()
	builders := []base.ModelBuilder{
		&SP{Rho: 0.001, Trainer: tr},
		&CL{C: 50, Iterations: 3, Trainer: tr, Seed: 1},
		&RS{Beta: 1000, Trainer: tr},
		&RLM{Eta: 4, Steps: 100, Trainer: tr, Seed: 1},
	}
	for _, b := range builders {
		_, stats := b.BuildModel(d)
		if stats.TrainSetSize >= d.Len()/10 {
			t.Errorf("%s: |Ds| = %d not << n = %d", b.Name(), stats.TrainSetSize, d.Len())
		}
	}
}

func TestSystematicSample(t *testing.T) {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i)
	}
	got := SystematicSample(keys, 0.01)
	if len(got) < 10 || len(got) > 12 {
		t.Errorf("sample size = %d, want ~10", len(got))
	}
	// stride is floor(1/rho): neighbouring sampled ranks differ by 100
	if got[1]-got[0] != 100 {
		t.Errorf("stride = %v, want 100", got[1]-got[0])
	}
	// rank-gap bound of Section V-A1: every key is within stride of a
	// sampled key's rank
	if got[len(got)-1] != 999 {
		t.Errorf("last key %v, want 999 (range coverage)", got[len(got)-1])
	}
}

func TestSystematicSampleEdges(t *testing.T) {
	if got := SystematicSample([]float64{1, 2}, 0.0001); len(got) != 2 {
		t.Errorf("tiny input: %v", got)
	}
	if got := SystematicSample(nil, 0.5); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
	got := SystematicSample([]float64{1, 2, 3, 4}, 0) // rho <= 0
	if len(got) < minTrainSet {
		t.Errorf("rho=0 sample too small: %v", got)
	}
	got = SystematicSample([]float64{1, 2, 3, 4}, 2) // rho > 1
	if len(got) != 4 {
		t.Errorf("rho>1 should keep all: %v", got)
	}
}

func TestSPBetterCDFThanRSP(t *testing.T) {
	// Figure 7 observation: RSP has larger CDF distance between Ds and
	// D than SP at the same rate.
	d := prepare(t, dataset.Skewed, 20000, 3)
	sp := SystematicSample(d.Keys, 0.005)
	rsp := &RSP{Rho: 0.005, Trainer: fastTrainer(), Seed: 7}
	// extract RSP's sampled keys by rebuilding its sampling logic via
	// BuildModel stats is indirect; instead sample directly here.
	rng := rand.New(rand.NewSource(7))
	var rspKeys []float64
	for i := 0; i < 100; i++ {
		rspKeys = append(rspKeys, d.Keys[rng.Intn(d.Len())])
	}
	sort.Float64s(rspKeys)
	dSP := kstest.Distance(sp, d.Keys)
	dRSP := kstest.Distance(rspKeys, d.Keys)
	if dSP > dRSP {
		t.Errorf("SP dist %v worse than RSP %v", dSP, dRSP)
	}
	_ = rsp
}

func TestKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// two tight blobs; k=2 must find centers near them
	var pts []geo.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, geo.Point{X: 0.2 + rng.NormFloat64()*0.01, Y: 0.2 + rng.NormFloat64()*0.01})
		pts = append(pts, geo.Point{X: 0.8 + rng.NormFloat64()*0.01, Y: 0.8 + rng.NormFloat64()*0.01})
	}
	centers := KMeans(pts, 2, 20, 1)
	if len(centers) != 2 {
		t.Fatalf("got %d centers", len(centers))
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i].X < centers[j].X })
	if centers[0].Dist(geo.Point{X: 0.2, Y: 0.2}) > 0.05 {
		t.Errorf("center 0 = %v", centers[0])
	}
	if centers[1].Dist(geo.Point{X: 0.8, Y: 0.8}) > 0.05 {
		t.Errorf("center 1 = %v", centers[1])
	}
}

func TestKMeansEdges(t *testing.T) {
	if got := KMeans(nil, 5, 3, 1); got != nil {
		t.Errorf("empty input: %v", got)
	}
	pts := []geo.Point{{X: 0.5, Y: 0.5}}
	got := KMeans(pts, 10, 3, 1)
	if len(got) != 1 {
		t.Errorf("k clamped to n: %d centers", len(got))
	}
}

func TestMRPoolCoverageGrowsWithSmallerEpsilon(t *testing.T) {
	tr := fastTrainer()
	big := &MR{Epsilon: 0.5, SynthSize: 200, Trainer: tr, Seed: 1}
	small := &MR{Epsilon: 0.1, SynthSize: 200, Trainer: tr, Seed: 1}
	if small.PoolSize() <= big.PoolSize() {
		t.Errorf("pool sizes: eps=0.1 -> %d, eps=0.5 -> %d", small.PoolSize(), big.PoolSize())
	}
	if big.PrepareTime() <= 0 {
		t.Error("PrepareTime not recorded")
	}
}

func TestMRPicksSimilarCDF(t *testing.T) {
	// On heavily skewed data, the reused model must beat the model a
	// uniform synthetic set would give: check the reduce step selects
	// something closer than uniform.
	d := prepare(t, dataset.Skewed, 10000, 5)
	mr := &MR{Epsilon: 0.2, SynthSize: 1000, Trainer: fastTrainer(), Seed: 1}
	m, stats := mr.BuildModel(d)
	if stats.TrainTime != 0 {
		t.Errorf("MR should not train online, TrainTime = %v", stats.TrainTime)
	}
	// A uniform-CDF model on these keys has huge bounds; the reused
	// model must do clearly better than predicting uniformly.
	uniform := rmi.LinearTrainer()(nil) // const 0 model is useless; build explicit uniform
	_ = uniform
	lo, hi := rmi.ErrorBounds(uniformModel{min: d.Keys[0], max: d.Keys[d.Len()-1]}, d.Keys)
	if m.ErrLo+m.ErrHi >= lo+hi {
		t.Errorf("MR bounds %d not better than uniform-CDF bounds %d", m.ErrLo+m.ErrHi, lo+hi)
	}
}

type uniformModel struct{ min, max float64 }

func (u uniformModel) PredictCDF(k float64) float64 {
	if u.max <= u.min {
		return 0
	}
	v := (k - u.min) / (u.max - u.min)
	return math.Max(0, math.Min(1, v))
}

func TestRSRepresentativeKeys(t *testing.T) {
	d := prepare(t, dataset.OSM1, 10000, 6)
	keys := RepresentativeKeys(d, 500)
	if !sort.Float64sAreSorted(keys) {
		t.Fatal("keys not sorted")
	}
	if len(keys) < 10000/500 {
		t.Errorf("too few representatives: %d", len(keys))
	}
	// representatives preserve the CDF well (much better than random
	// chance): KS distance below 0.2
	if dist := kstest.Distance(keys, d.Keys); dist > 0.2 {
		t.Errorf("RS CDF distance = %v", dist)
	}
}

func TestRSDegenerate(t *testing.T) {
	d := prepare(t, dataset.Uniform, 3, 7)
	keys := RepresentativeKeys(d, 100)
	if len(keys) < minTrainSet {
		t.Errorf("degenerate RS keys: %v", keys)
	}
}

func TestRLMImprovesOverFullGrid(t *testing.T) {
	// The DQN search must end with a Ds whose CDF distance to D is no
	// worse than the all-cells-on starting state.
	d := prepare(t, dataset.Skewed, 8000, 8)
	m := &RLM{Eta: 4, Steps: 400, Trainer: fastTrainer(), Seed: 2}
	keys, err := m.searchKeys(context.Background(), d)
	if err != nil {
		t.Fatalf("searchKeys: %v", err)
	}
	if len(keys) < minTrainSet {
		t.Fatalf("RL produced %d keys", len(keys))
	}
	// initial state: all 16 cells on
	full := m.fullGridKeys(d, 4)
	distFull := kstest.Distance(full, d.Keys)
	distBest := kstest.Distance(keys, d.Keys)
	if distBest > distFull+1e-9 {
		t.Errorf("RL dist %v worse than initial %v", distBest, distFull)
	}
}

// fullGridKeys reproduces the initial all-on state's key set.
func (m *RLM) fullGridKeys(d *base.SortedData, eta int) []float64 {
	var keys []float64
	w := d.Space.Width() / float64(eta)
	h := d.Space.Height() / float64(eta)
	for cy := 0; cy < eta; cy++ {
		for cx := 0; cx < eta; cx++ {
			keys = append(keys, d.Map(geo.Point{
				X: d.Space.MinX + (float64(cx)+0.5)*w,
				Y: d.Space.MinY + (float64(cy)+0.5)*h,
			}))
		}
	}
	sort.Float64s(keys)
	return keys
}

func TestSynthesizesPoints(t *testing.T) {
	cases := map[string]bool{
		NameSP: false, NameRSP: false, NameRS: false, NameOG: false,
		NameCL: true, NameMR: true, NameRL: true,
	}
	for name, want := range cases {
		if got := SynthesizesPoints(name); got != want {
			t.Errorf("SynthesizesPoints(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestPoolNames(t *testing.T) {
	names := PoolNames()
	if len(names) != 6 {
		t.Fatalf("pool has %d methods, want 6", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{NameSP, NameCL, NameMR, NameRS, NameRL, NameOG} {
		if !seen[want] {
			t.Errorf("pool missing %s", want)
		}
	}
}

// TestBuildTimeOrdering verifies the central claim of Table I at test
// scale: reduced-set methods build much faster than OG when the
// trainer cost scales with the training-set size.
func TestBuildTimeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	d := prepare(t, dataset.OSM1, 30000, 9)
	ffn := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 8, Epochs: 25, Seed: 1})
	sp := &SP{Rho: 0.001, Trainer: ffn}
	og := &base.Direct{Trainer: ffn}
	_, sStats := sp.BuildModel(d)
	_, oStats := og.BuildModel(d)
	if sStats.TrainTime*2 >= oStats.TrainTime {
		t.Errorf("SP train %v not clearly faster than OG %v", sStats.TrainTime, oStats.TrainTime)
	}
}
