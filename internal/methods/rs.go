package methods

import (
	"context"
	"sort"
	"time"

	"elsi/internal/base"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/quadtree"
	"elsi/internal/rmi"
)

// RS is the representative-set method proposed in Section V-B1
// (Algorithm 2): the original space is recursively partitioned into
// 2^d cells until every cell holds at most Beta points; the median
// point (in the mapped space) of each non-empty cell joins Ds. RS
// approximates the distribution in both the original and the mapped
// space, which is what gives it the strong query times of Figure 7.
type RS struct {
	Beta int // leaf capacity (paper default 10,000, swept to 100)
	// TargetLeaves, when positive, derives beta from the partition
	// size as n/TargetLeaves — the scale-relative form of the paper's
	// absolute default, which was tuned for 10^8-point data sets.
	TargetLeaves int
	Trainer      rmi.Trainer
	// Workers bounds the parallel error-bound scan (0 = GOMAXPROCS).
	Workers int
}

// Name implements base.ModelBuilder.
func (m *RS) Name() string { return NameRS }

// BuildModel implements base.ModelBuilder.
func (m *RS) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	return mustBuild(m.BuildModelCtx(context.Background(), d))
}

// BuildModelCtx implements base.ContextModelBuilder. Injection point:
// "build/RS".
func (m *RS) BuildModelCtx(ctx context.Context, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	if err := faults.HitCtx(ctx, "build/"+NameRS); err != nil {
		return nil, base.BuildStats{}, err
	}
	t0 := time.Now()
	beta := m.Beta
	if m.TargetLeaves > 0 {
		beta = d.Len() / m.TargetLeaves
		if beta < 1 {
			beta = 1
		}
		if m.Beta > 0 && beta > m.Beta {
			beta = m.Beta
		}
	}
	keys := RepresentativeKeys(d, beta)
	return base.FromKeysCtx(ctx, NameRS, m.Trainer, keys, d, time.Since(t0), m.Workers)
}

// RepresentativeKeys runs the get_RS partitioning and returns the
// sorted mapped keys of the representatives.
func RepresentativeKeys(d *base.SortedData, beta int) []float64 {
	if beta < 1 {
		beta = 1
	}
	if d.Len() <= minTrainSet {
		return append([]float64(nil), d.Keys...)
	}
	qt := quadtree.New(d.Pts, d.Space, beta)
	var keys []float64
	qt.Leaves(func(_ geo.Rect, pts []geo.Point) {
		if len(pts) == 0 {
			return
		}
		keys = append(keys, medianKey(pts, d.Map))
	})
	sort.Float64s(keys)
	if len(keys) < minTrainSet {
		// degenerate partitioning (e.g. beta >= n): fall back to the
		// extreme keys so the model sees the full range
		keys = []float64{d.Keys[0], d.Keys[d.Len()-1]}
	}
	return keys
}

// medianKey returns the median mapped key of pts.
func medianKey(pts []geo.Point, mapKey func(geo.Point) float64) float64 {
	keys := make([]float64, len(pts))
	for i, p := range pts {
		keys[i] = mapKey(p)
	}
	sort.Float64s(keys)
	return keys[len(keys)/2]
}
