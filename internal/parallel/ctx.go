package parallel

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a panic recovered from a worker (or any other build
// stage) and converted into an error, carrying the panicking
// goroutine's stack. The fault-tolerant build pipeline turns worker
// panics into PanicErrors instead of crashing the process: a panicking
// model build falls down the degradation ladder, and a panicking
// background rebuild keeps the old index serving.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Unwrap exposes the panic value when it is itself an error, so
// errors.Is/As see through the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Recovered converts a recover() result into a *PanicError (nil for a
// nil recovery). Build stages that must not crash the process share
// this conversion:
//
//	defer func() {
//		if pe := parallel.Recovered(recover()); pe != nil {
//			err = pe
//		}
//	}()
func Recovered(r any) *PanicError {
	if r == nil {
		return nil
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// errSink collects the first error produced by a set of workers.
// Panics outrank cancellations: a recovered panic replaces a
// previously recorded context error, never the other way around.
type errSink struct {
	mu  sync.Mutex
	err error
}

func (s *errSink) record(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
		return
	}
	if _, isPanic := s.err.(*PanicError); !isPanic {
		if _, ok := err.(*PanicError); ok {
			s.err = err
		}
	}
}

func (s *errSink) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ErrSink collects the first error from a set of concurrent workers
// with the same precedence as the package's own kernels: panics
// outrank other errors, first wins otherwise. The zero value is ready
// to use; Record(nil) is a no-op. Exported for pipeline stages (staged
// leaf builds, background rebuilds) that run their own goroutines.
type ErrSink struct{ s errSink }

// Record stores err per the sink's precedence rules.
func (s *ErrSink) Record(err error) { s.s.record(err) }

// Get returns the recorded error, if any.
func (s *ErrSink) Get() error { return s.s.get() }

// ctxBlock is the cooperative cancellation granularity: workers check
// the context between blocks of this many indices. It matches
// minChunk, so the check overhead stays far below the work it gates.
const ctxBlock = minChunk

// forBlocks runs fn over [lo, hi) in blocks of ctxBlock, checking ctx
// between blocks and recovering panics into *PanicError. The block
// subdivision is invisible to element-wise fns (every For-style fn in
// this repo); the chunk boundaries passed to fn remain deterministic
// functions of the range.
func forBlocks(ctx context.Context, lo, hi int, fn func(lo, hi int)) (err error) {
	defer func() {
		if pe := Recovered(recover()); pe != nil {
			err = pe
		}
	}()
	for b := lo; b < hi; b += ctxBlock {
		if e := ctx.Err(); e != nil {
			return e
		}
		end := b + ctxBlock
		if end > hi {
			end = hi
		}
		fn(b, end)
	}
	return nil
}

// ForCtx is For with cooperative cancellation and panic isolation:
// workers check ctx at block boundaries (every ctxBlock indices) and
// stop early when it is done, and a panicking worker is recovered into
// a *PanicError instead of crashing the process. It returns the first
// worker panic, else ctx's error if the run was cut short, else nil.
// fn must tolerate being called on sub-ranges of a chunk (every
// element-wise loop does).
func ForCtx(ctx context.Context, n, workers int, fn func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	nc := chunks(n, workers)
	if nc == 1 {
		if n > 0 {
			return forBlocks(ctx, 0, n, fn)
		}
		return nil
	}
	var sink errSink
	var wg sync.WaitGroup
	wg.Add(nc)
	for c := 0; c < nc; c++ {
		lo, hi := c*n/nc, (c+1)*n/nc
		go func(lo, hi int) {
			defer wg.Done()
			sink.record(forBlocks(ctx, lo, hi, fn))
		}(lo, hi)
	}
	wg.Wait()
	return sink.get()
}

// DoCtx runs the given functions concurrently and waits for all of
// them, recovering panics into *PanicError and short-circuiting
// nothing: every function runs (each checks ctx itself if it wants
// cooperative cancellation). The first panic, else the first returned
// error, else ctx's error is returned.
func DoCtx(ctx context.Context, fns ...func() error) error {
	var sink errSink
	run := func(fn func() error) error {
		defer func() {
			if pe := Recovered(recover()); pe != nil {
				sink.record(pe)
			}
		}()
		return fn()
	}
	if len(fns) == 1 {
		sink.record(run(fns[0]))
	} else {
		var wg sync.WaitGroup
		wg.Add(len(fns))
		for _, fn := range fns {
			go func(fn func() error) {
				defer wg.Done()
				sink.record(run(fn))
			}(fn)
		}
		wg.Wait()
	}
	if err := sink.get(); err != nil {
		return err
	}
	return ctx.Err()
}

// MaxReduceCtx is MaxReduce with cooperative cancellation and panic
// isolation. On a nil error the maxima are identical to MaxReduce's
// (max is order- and split-independent); on a non-nil error the maxima
// are partial and must be discarded.
func MaxReduceCtx(ctx context.Context, n, workers int, chunk func(lo, hi int) (a, b int)) (maxA, maxB int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	nc := chunks(n, workers)
	reduce := func(lo, hi int) (int, int, error) {
		var a, b int
		e := forBlocks(ctx, lo, hi, func(blo, bhi int) {
			ca, cb := chunk(blo, bhi)
			if ca > a {
				a = ca
			}
			if cb > b {
				b = cb
			}
		})
		return a, b, e
	}
	if nc == 1 {
		if n > 0 {
			return reduce(0, n)
		}
		return 0, 0, nil
	}
	as := make([]int, nc)
	bs := make([]int, nc)
	var sink errSink
	var wg sync.WaitGroup
	wg.Add(nc)
	for c := 0; c < nc; c++ {
		lo, hi := c*n/nc, (c+1)*n/nc
		go func(c, lo, hi int) {
			defer wg.Done()
			var e error
			as[c], bs[c], e = reduce(lo, hi)
			sink.record(e)
		}(c, lo, hi)
	}
	wg.Wait()
	if err := sink.get(); err != nil {
		return 0, 0, err
	}
	maxA, maxB = as[0], bs[0]
	for c := 1; c < nc; c++ {
		if as[c] > maxA {
			maxA = as[c]
		}
		if bs[c] > maxB {
			maxB = bs[c]
		}
	}
	return maxA, maxB, nil
}
