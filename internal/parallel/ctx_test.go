package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForPanicIsolation(t *testing.T) {
	// A worker panic must surface as *PanicError on the caller, not
	// crash the process.
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recover() = %v (%T), want *PanicError", r, r)
		}
		if pe.Value != "boom" {
			t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError.Stack is empty")
		}
	}()
	For(8192, 4, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
	t.Fatal("For did not re-panic")
}

func TestDoPanicIsolation(t *testing.T) {
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("Do did not re-panic a *PanicError")
		}
	}()
	Do(
		func() {},
		func() { panic("boom") },
	)
	t.Fatal("Do did not re-panic")
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	pe := Recovered(sentinel)
	if !errors.Is(pe, sentinel) {
		t.Fatal("PanicError does not unwrap an error panic value")
	}
	if pe2 := Recovered("not an error"); pe2.Unwrap() != nil {
		t.Fatal("non-error panic value should unwrap to nil")
	}
	if Recovered(nil) != nil {
		t.Fatal("Recovered(nil) should be nil")
	}
}

func TestForCtxCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 10000
		seen := make([]atomic.Int32, n)
		err := ForCtx(context.Background(), n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: ForCtx = %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int64
	n := 1 << 20
	err := ForCtx(ctx, n, 2, func(lo, hi int) {
		visited.Add(int64(hi - lo))
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx = %v, want context.Canceled", err)
	}
	if v := visited.Load(); v >= int64(n) {
		t.Fatalf("ForCtx visited the whole range (%d) despite cancellation", v)
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForCtx(ctx, 10, 1, func(lo, hi int) { ran = true })
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("pre-cancelled ForCtx = %v (ran=%v)", err, ran)
	}
}

func TestForCtxPanicOutranksCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForCtx(ctx, 8192, 4, func(lo, hi int) {
		if lo == 0 {
			cancel()
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ForCtx = %v, want *PanicError to outrank cancellation", err)
	}
}

func TestDoCtx(t *testing.T) {
	boom := errors.New("boom")
	err := DoCtx(context.Background(),
		func() error { return nil },
		func() error { return boom },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("DoCtx = %v, want boom", err)
	}
	err = DoCtx(context.Background(), func() error { panic("pow") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("DoCtx = %v, want *PanicError", err)
	}
	if err := DoCtx(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("DoCtx success = %v", err)
	}
}

func TestMaxReduceCtxMatchesMaxReduce(t *testing.T) {
	n := 50000
	vals := make([]int, n)
	for i := range vals {
		vals[i] = (i * 2654435761) % 100003
	}
	chunk := func(lo, hi int) (int, int) {
		var a, b int
		for i := lo; i < hi; i++ {
			if vals[i] > a {
				a = vals[i]
			}
			if n-vals[i] > b {
				b = n - vals[i]
			}
		}
		return a, b
	}
	wantA, wantB := MaxReduce(n, 4, chunk)
	for _, workers := range []int{1, 2, 7} {
		a, b, err := MaxReduceCtx(context.Background(), n, workers, chunk)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if a != wantA || b != wantB {
			t.Fatalf("workers=%d: got (%d, %d), want (%d, %d)", workers, a, b, wantA, wantB)
		}
	}
}

func TestMaxReduceCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := MaxReduceCtx(ctx, 10000, 4, func(lo, hi int) (int, int) { return 0, 0 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MaxReduceCtx = %v, want context.Canceled", err)
	}
}

func TestErrSinkPanicPriority(t *testing.T) {
	var s errSink
	s.record(context.Canceled)
	s.record(&PanicError{Value: "boom"})
	var pe *PanicError
	if !errors.As(s.get(), &pe) {
		t.Fatalf("sink = %v, want panic to replace cancellation", s.get())
	}
	// But a later non-panic error never replaces anything.
	s.record(fmt.Errorf("other"))
	if !errors.As(s.get(), &pe) {
		t.Fatal("non-panic error replaced the recorded panic")
	}
}
