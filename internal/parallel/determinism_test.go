package parallel_test

import (
	"math/rand"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/lisa"
	"elsi/internal/mlindex"
	"elsi/internal/ndim"
	"elsi/internal/rmi"
	"elsi/internal/rsmi"
	"elsi/internal/zm"
)

// builtIndex is the query-and-counters surface the determinism check
// compares across worker counts.
type builtIndex interface {
	Build(pts []geo.Point) error
	PointQuery(p geo.Point) bool
	WindowQuery(win geo.Rect) []geo.Point
	Scanned() int64
	Stats() []base.BuildStats
}

func ffnBuilder(workers int) base.ModelBuilder {
	return &base.Direct{
		Trainer: rmi.FFNTrainer(rmi.FFNConfig{Hidden: 8, Epochs: 5, Seed: 1}),
		Workers: workers,
	}
}

// TestParallelBuildsAreDeterministic is the integration check of the
// parallel build pipeline: every base index built with Workers=1 and
// Workers=8 must produce bit-identical error bounds and, under an
// identical query workload, identical results and scan counters. The
// FFN trainer is used on purpose — it exercises the per-worker scratch
// predictors in the bounds scan.
func TestParallelBuildsAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := dataset.PointsWithUniformDistance(rng, 4000, 0.4)
	queries := dataset.QueriesFromData(rng, pts, 50)
	wins := make([]geo.Rect, 20)
	for i := range wins {
		p := pts[rng.Intn(len(pts))]
		w, h := 0.02+rng.Float64()*0.1, 0.02+rng.Float64()*0.1
		wins[i] = geo.Rect{MinX: p.X - w, MinY: p.Y - h, MaxX: p.X + w, MaxY: p.Y + h}
	}

	cases := []struct {
		name string
		mk   func(workers int) builtIndex
	}{
		{"ZM", func(workers int) builtIndex {
			return zm.New(zm.Config{Space: geo.UnitRect, Builder: ffnBuilder(workers), Fanout: 4, Workers: workers})
		}},
		{"LISA", func(workers int) builtIndex {
			return lisa.New(lisa.Config{Space: geo.UnitRect, Builder: ffnBuilder(workers), Workers: workers})
		}},
		{"ML", func(workers int) builtIndex {
			return mlindex.New(mlindex.Config{Space: geo.UnitRect, Builder: ffnBuilder(workers), Refs: 4, Fanout: 2, Seed: 7, Workers: workers})
		}},
		{"RSMI", func(workers int) builtIndex {
			return rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: ffnBuilder(workers), LeafCap: 1500, Workers: workers})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, parallel := tc.mk(1), tc.mk(8)
			if err := serial.Build(pts); err != nil {
				t.Fatal(err)
			}
			if err := parallel.Build(pts); err != nil {
				t.Fatal(err)
			}
			compareIndices(t, serial, parallel, queries, wins)
		})
	}
}

// compareIndices asserts that two builds of the same data behave
// identically: same per-model stats, same query answers, and the same
// number of entries scanned for the same workload.
func compareIndices(t *testing.T, a, b builtIndex, queries []geo.Point, wins []geo.Rect) {
	t.Helper()
	sa, sb := a.Stats(), b.Stats()
	if len(sa) != len(sb) {
		t.Fatalf("stats count: %d (serial) vs %d (parallel)", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Method != sb[i].Method || sa[i].TrainSetSize != sb[i].TrainSetSize || sa[i].ErrWidth != sb[i].ErrWidth {
			t.Fatalf("stats[%d]: serial {%s |Ds|=%d err=%d} vs parallel {%s |Ds|=%d err=%d}",
				i, sa[i].Method, sa[i].TrainSetSize, sa[i].ErrWidth,
				sb[i].Method, sb[i].TrainSetSize, sb[i].ErrWidth)
		}
	}
	for i, q := range queries {
		if ra, rb := a.PointQuery(q), b.PointQuery(q); ra != rb {
			t.Fatalf("point query %d: serial %v vs parallel %v", i, ra, rb)
		}
	}
	for i, win := range wins {
		ra, rb := a.WindowQuery(win), b.WindowQuery(win)
		if len(ra) != len(rb) {
			t.Fatalf("window query %d: serial %d points vs parallel %d", i, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("window query %d result %d: serial %v vs parallel %v", i, j, ra[j], rb[j])
			}
		}
	}
	if ca, cb := a.Scanned(), b.Scanned(); ca != cb {
		t.Fatalf("scan counters diverge: serial %d vs parallel %d", ca, cb)
	}
}

// TestNDimBuildDeterministic covers the d-dimensional index, whose
// build has its own key-mapping and sorting path.
func TestNDimBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const d = 3
	pts := make([]ndim.Point, 3000)
	for i := range pts {
		p := make(ndim.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	space := ndim.UnitCube(d)
	trainer := rmi.FFNTrainer(rmi.FFNConfig{Hidden: 8, Epochs: 5, Seed: 1})
	serial := ndim.NewIndexWorkers(space, trainer, 100, 1)
	par := ndim.NewIndexWorkers(space, trainer, 100, 8)
	if err := serial.Build(pts); err != nil {
		t.Fatal(err)
	}
	if err := par.Build(pts); err != nil {
		t.Fatal(err)
	}
	if serial.ErrWidth() != par.ErrWidth() {
		t.Fatalf("error width: serial %d vs parallel %d", serial.ErrWidth(), par.ErrWidth())
	}
	if serial.TrainSetSize() != par.TrainSetSize() {
		t.Fatalf("train set size: serial %d vs parallel %d", serial.TrainSetSize(), par.TrainSetSize())
	}
	for i := 0; i < 100; i++ {
		q := pts[rng.Intn(len(pts))]
		if !par.PointQuery(q) {
			t.Fatalf("parallel build lost point %v", q)
		}
		win := ndim.Rect{Min: make(ndim.Point, d), Max: make(ndim.Point, d)}
		for j := 0; j < d; j++ {
			win.Min[j] = q[j] - 0.05
			win.Max[j] = q[j] + 0.05
		}
		ra, rb := serial.WindowQuery(win), par.WindowQuery(win)
		if len(ra) != len(rb) {
			t.Fatalf("window query %d: serial %d points vs parallel %d", i, len(ra), len(rb))
		}
	}
}
