package parallel

// Deterministic parallel merge sort. The recursion splits at fixed
// midpoints and the merge is stable (ties taken from the left half),
// so the output permutation is a pure function of the input — the
// worker count only decides how many of the independent half-sorts
// run concurrently. That is the property the build pipeline needs:
// sorting the key/point pairs of a data set must place equal keys in
// the same storage order whether the build ran on 1 core or 16.

// sortRunCutoff is the run length below which insertion sort (stable)
// beats the merge machinery.
const sortRunCutoff = 48

// SortFloat64s sorts xs ascending with up to workers concurrent
// half-sorts. The result equals sort.Float64s for any worker count
// (float64 values that compare equal are indistinguishable).
func SortFloat64s(xs []float64, workers int) {
	n := len(xs)
	if n < 2 {
		return
	}
	scratch := make([]float64, n)
	msFloats(xs, scratch, budget(n, workers))
}

// budget converts a worker count into a parallel fork budget for the
// sort recursion.
func budget(n, workers int) int {
	return chunks(n, workers)
}

func msFloats(a, scratch []float64, par int) {
	n := len(a)
	if n <= sortRunCutoff {
		insertionFloats(a)
		return
	}
	mid := n / 2
	if par > 1 && n >= 2*minChunk {
		Do(
			func() { msFloats(a[:mid], scratch[:mid], par/2) },
			func() { msFloats(a[mid:], scratch[mid:], par-par/2) },
		)
	} else {
		msFloats(a[:mid], scratch[:mid], 1)
		msFloats(a[mid:], scratch[mid:], 1)
	}
	if a[mid-1] <= a[mid] { // already ordered across the split
		return
	}
	copy(scratch, a)
	mergeFloats(scratch[:mid], scratch[mid:], a)
}

func insertionFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// mergeFloats merges sorted left and right into dst (stable: ties
// drain the left half first).
func mergeFloats(left, right, dst []float64) {
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if left[i] <= right[j] {
			dst[k] = left[i]
			i++
		} else {
			dst[k] = right[j]
			j++
		}
		k++
	}
	for i < len(left) {
		dst[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		dst[k] = right[j]
		j++
		k++
	}
}

// SortPairs co-sorts vals by keys, ascending and stable: entries with
// equal keys keep their input order, for any worker count. This is
// the sort stage of every map-and-sort build (keys = curve values,
// vals = points).
func SortPairs[V any](keys []float64, vals []V, workers int) {
	n := len(keys)
	if len(vals) != n {
		panic("parallel: SortPairs length mismatch")
	}
	if n < 2 {
		return
	}
	sk := make([]float64, n)
	sv := make([]V, n)
	msPairs(keys, vals, sk, sv, budget(n, workers))
}

func msPairs[V any](k []float64, v []V, sk []float64, sv []V, par int) {
	n := len(k)
	if n <= sortRunCutoff {
		insertionPairs(k, v)
		return
	}
	mid := n / 2
	if par > 1 && n >= 2*minChunk {
		Do(
			func() { msPairs(k[:mid], v[:mid], sk[:mid], sv[:mid], par/2) },
			func() { msPairs(k[mid:], v[mid:], sk[mid:], sv[mid:], par-par/2) },
		)
	} else {
		msPairs(k[:mid], v[:mid], sk[:mid], sv[:mid], 1)
		msPairs(k[mid:], v[mid:], sk[mid:], sv[mid:], 1)
	}
	if k[mid-1] <= k[mid] {
		return
	}
	copy(sk, k)
	copy(sv, v)
	i, j, o := 0, mid, 0
	for i < mid && j < n {
		if sk[i] <= sk[j] {
			k[o], v[o] = sk[i], sv[i]
			i++
		} else {
			k[o], v[o] = sk[j], sv[j]
			j++
		}
		o++
	}
	for i < mid {
		k[o], v[o] = sk[i], sv[i]
		i++
		o++
	}
	for j < n {
		k[o], v[o] = sk[j], sv[j]
		j++
		o++
	}
}

func insertionPairs[V any](k []float64, v []V) {
	for i := 1; i < len(k); i++ {
		kv, vv := k[i], v[i]
		j := i - 1
		for j >= 0 && k[j] > kv {
			k[j+1], v[j+1] = k[j], v[j]
			j--
		}
		k[j+1], v[j+1] = kv, vv
	}
}
