// Package parallel provides the small, stdlib-only concurrency
// kernels the build pipeline runs on: a chunked parallel for,
// order-independent reductions, and a deterministic parallel merge
// sort. Every primitive is bit-deterministic — the result is
// identical for any worker count, including 1 — because the chunk
// boundaries are fixed functions of the input length and every
// combine step is either order-independent (max) or performed in
// chunk order (merge). That property is what lets the parallel build
// pipeline produce indices bit-identical to a serial build (same
// error bounds, same storage order, same query answers), which the
// determinism tests assert.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultWorkers returns the default worker count for the build
// stages: GOMAXPROCS. Callers override it per call site by passing an
// explicit positive worker count (core.Config.Workers threads one
// through the ELSI build pipeline).
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a configured worker count to an effective one:
// non-positive values select the default.
func Resolve(workers int) int {
	if workers <= 0 {
		return DefaultWorkers()
	}
	return workers
}

// minChunk is the smallest per-worker chunk worth a goroutine; below
// it the dispatch overhead dominates any speedup.
const minChunk = 1024

// chunks returns the number of contiguous chunks [0, n) is split
// into for the given worker count. Boundaries depend only on n and
// the returned count, never on scheduling.
func chunks(n, workers int) int {
	workers = Resolve(workers)
	if workers > n/minChunk {
		workers = n / minChunk
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn over the contiguous chunks of [0, n), one goroutine per
// chunk, and waits for all of them. fn must be safe for concurrent
// use across disjoint chunks. With workers <= 1 (or n too small to
// split) fn runs inline over the whole range.
//
// A panic in a worker goroutine does not crash the process: it is
// recovered and re-raised as a *PanicError on the calling goroutine
// after all workers finish, so callers with their own recovery (the
// degradation ladder, the background rebuild) can contain it.
func For(n, workers int, fn func(lo, hi int)) {
	nc := chunks(n, workers)
	if nc == 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var sink errSink
	var wg sync.WaitGroup
	wg.Add(nc)
	for c := 0; c < nc; c++ {
		lo, hi := c*n/nc, (c+1)*n/nc
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if pe := Recovered(recover()); pe != nil {
					sink.record(pe)
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if err := sink.get(); err != nil {
		panic(err)
	}
}

// Do runs the given functions concurrently and waits for all of them
// — the fork/join for a handful of independent tasks (e.g. training
// the scorer's build-cost and query-cost nets). As with For, a worker
// panic is re-raised as a *PanicError on the calling goroutine rather
// than crashing the process.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var sink errSink
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(fn func()) {
			defer wg.Done()
			defer func() {
				if pe := Recovered(recover()); pe != nil {
					sink.record(pe)
				}
			}()
			fn()
		}(fn)
	}
	wg.Wait()
	if err := sink.get(); err != nil {
		panic(err)
	}
}

// MaxReduce evaluates chunk over the contiguous chunks of [0, n) in
// parallel and returns the element-wise maxima of the (a, b) pairs.
// Max is commutative and associative, so the result is independent of
// chunk completion order — the reduction the empirical error-bound
// scan (Algorithm 1, line 6) runs over the full data set.
func MaxReduce(n, workers int, chunk func(lo, hi int) (a, b int)) (maxA, maxB int) {
	nc := chunks(n, workers)
	if nc == 1 {
		if n > 0 {
			return chunk(0, n)
		}
		return 0, 0
	}
	as := make([]int, nc)
	bs := make([]int, nc)
	var wg sync.WaitGroup
	wg.Add(nc)
	for c := 0; c < nc; c++ {
		lo, hi := c*n/nc, (c+1)*n/nc
		go func(c, lo, hi int) {
			defer wg.Done()
			as[c], bs[c] = chunk(lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	maxA, maxB = as[0], bs[0]
	for c := 1; c < nc; c++ {
		if as[c] > maxA {
			maxA = as[c]
		}
		if bs[c] > maxB {
			maxB = bs[c]
		}
	}
	return maxA, maxB
}
