package parallel

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1023, 1024, 4096, 100001} {
		for _, workers := range []int{1, 2, 3, 8} {
			counts := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d workers=%d: bad chunk [%d, %d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForSmallRunsInline(t *testing.T) {
	ran := false
	For(3, 8, func(lo, hi int) {
		if lo != 0 || hi != 3 {
			t.Fatalf("small range split: [%d, %d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not called")
	}
}

func TestDo(t *testing.T) {
	var n atomic.Int64
	Do(
		func() { n.Add(1) },
		func() { n.Add(10) },
		func() { n.Add(100) },
	)
	if n.Load() != 111 {
		t.Fatalf("Do total = %d, want 111", n.Load())
	}
}

func TestMaxReduceMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 100, 5000, 70000} {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(1 << 20)
		}
		wantA, wantB := 0, 0
		for i, v := range vals {
			if d := v - i; d > wantA {
				wantA = d
			}
			if d := i - v; d > wantB {
				wantB = d
			}
		}
		for _, workers := range []int{1, 2, 8} {
			a, b := MaxReduce(n, workers, func(lo, hi int) (int, int) {
				ca, cb := 0, 0
				for i := lo; i < hi; i++ {
					if d := vals[i] - i; d > ca {
						ca = d
					}
					if d := i - vals[i]; d > cb {
						cb = d
					}
				}
				return ca, cb
			})
			if a != wantA || b != wantB {
				t.Fatalf("n=%d workers=%d: MaxReduce = (%d, %d), want (%d, %d)", n, workers, a, b, wantA, wantB)
			}
		}
	}
}

func TestSortFloat64sMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 47, 48, 49, 1000, 4096, 50000} {
		base := make([]float64, n)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		// heavy duplicates too
		for i := 0; i < n/4; i++ {
			base[rng.Intn(maxi(n, 1))] = 0.5
		}
		want := append([]float64(nil), base...)
		sort.Float64s(want)
		for _, workers := range []int{1, 2, 8} {
			got := append([]float64(nil), base...)
			SortFloat64s(got, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: got[%d]=%v want %v", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSortPairsStableAndWorkerIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, 100, 5000, 60000} {
		keys := make([]float64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = float64(rng.Intn(50)) // many ties
			vals[i] = i
		}
		// reference: stable sort by key, ties keep input order
		type kv struct {
			k float64
			v int
		}
		ref := make([]kv, n)
		for i := range ref {
			ref[i] = kv{keys[i], vals[i]}
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].k < ref[j].k })
		for _, workers := range []int{1, 2, 8} {
			k := append([]float64(nil), keys...)
			v := append([]int(nil), vals...)
			SortPairs(k, v, workers)
			for i := range ref {
				if k[i] != ref[i].k || v[i] != ref[i].v {
					t.Fatalf("n=%d workers=%d: pos %d got (%v, %d) want (%v, %d)",
						n, workers, i, k[i], v[i], ref[i].k, ref[i].v)
				}
			}
		}
	}
}

func TestResolve(t *testing.T) {
	if Resolve(0) != DefaultWorkers() {
		t.Fatalf("Resolve(0) = %d, want DefaultWorkers %d", Resolve(0), DefaultWorkers())
	}
	if Resolve(-1) != DefaultWorkers() {
		t.Fatal("Resolve(-1) should fall back to default")
	}
	if Resolve(5) != 5 {
		t.Fatalf("Resolve(5) = %d", Resolve(5))
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkSortFloat64s1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, 1<<20)
	for i := range base {
		base[i] = rng.Float64()
	}
	buf := make([]float64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		SortFloat64s(buf, 0)
	}
}

func BenchmarkMaxReduce1M(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxReduce(n, 0, func(lo, hi int) (int, int) {
			a, c := 0, 0
			for j := lo; j < hi; j++ {
				if j&1 == 0 && j > a {
					a = j
				}
				if j&1 == 1 && j > c {
					c = j
				}
			}
			return a, c
		})
	}
}
