package index

import (
	"fmt"

	"elsi/internal/snapshot"
)

// bruteStateVersion is the on-disk version of the BruteForce state.
const bruteStateVersion = 1

// StateAppend implements snapshot.Stater: the raw point set.
func (b *BruteForce) StateAppend(buf []byte) ([]byte, error) {
	buf = snapshot.AppendU8(buf, bruteStateVersion)
	return snapshot.AppendPoints(buf, b.pts), nil
}

// RestoreState implements snapshot.Stater.
func (b *BruteForce) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != bruteStateVersion {
		return fmt.Errorf("index: unsupported brute-force state version %d", v)
	}
	pts := d.Points()
	if err := d.Close(); err != nil {
		return fmt.Errorf("index: decode brute-force state: %w", err)
	}
	b.pts = pts
	return nil
}
