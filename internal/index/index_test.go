package index

import (
	"math/rand"
	"testing"

	"elsi/internal/geo"
)

func TestBruteForceBasics(t *testing.T) {
	b := NewBruteForce()
	pts := []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.5, Y: 0.5}, {X: 0.9, Y: 0.9}}
	if err := b.Build(pts); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.Name() == "" {
		t.Error("empty name")
	}
	if !b.PointQuery(pts[1]) {
		t.Error("stored point not found")
	}
	if b.PointQuery(geo.Point{X: 0.2, Y: 0.2}) {
		t.Error("absent point found")
	}
	got := b.WindowQuery(geo.Rect{MinX: 0, MinY: 0, MaxX: 0.6, MaxY: 0.6})
	if len(got) != 2 {
		t.Errorf("WindowQuery returned %d points", len(got))
	}
}

func TestBruteForceInsertDelete(t *testing.T) {
	b := NewBruteForce()
	b.Build(nil)
	p := geo.Point{X: 0.4, Y: 0.4}
	b.Insert(p)
	if !b.PointQuery(p) {
		t.Error("inserted point missing")
	}
	if !b.Delete(p) {
		t.Error("Delete returned false for stored point")
	}
	if b.PointQuery(p) {
		t.Error("deleted point still present")
	}
	if b.Delete(p) {
		t.Error("Delete returned true for absent point")
	}
}

func TestKNNScan(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	got := KNNScan(pts, geo.Point{X: 0.1, Y: 0}, 2)
	if len(got) != 2 {
		t.Fatalf("KNN returned %d points", len(got))
	}
	if got[0] != pts[0] || got[1] != pts[1] {
		t.Errorf("KNN = %v", got)
	}
	if KNNScan(pts, geo.Point{}, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if got := KNNScan(pts, geo.Point{}, 100); len(got) != len(pts) {
		t.Errorf("k>n returned %d points", len(got))
	}
}

func TestRecall(t *testing.T) {
	want := []geo.Point{{X: 1}, {X: 2}, {X: 3}, {X: 4}}
	if got := Recall(want, want); got != 1 {
		t.Errorf("perfect recall = %v", got)
	}
	if got := Recall(want[:2], want); got != 0.5 {
		t.Errorf("half recall = %v", got)
	}
	if got := Recall(nil, want); got != 0 {
		t.Errorf("empty-answer recall = %v", got)
	}
	if got := Recall(nil, nil); got != 1 {
		t.Errorf("empty-truth recall = %v", got)
	}
	// duplicates are matched as a multiset
	dwant := []geo.Point{{X: 1}, {X: 1}}
	if got := Recall([]geo.Point{{X: 1}}, dwant); got != 0.5 {
		t.Errorf("multiset recall = %v", got)
	}
}

func TestKNNRecall(t *testing.T) {
	q := geo.Point{}
	want := []geo.Point{{X: 1}, {X: 2}}
	// an equidistant substitute still counts
	got := KNNRecall([]geo.Point{{X: -1}, {X: 2}}, want, q)
	if got != 1 {
		t.Errorf("tie-tolerant recall = %v, want 1", got)
	}
	got = KNNRecall([]geo.Point{{X: 5}, {X: 6}}, want, q)
	if got != 0 {
		t.Errorf("far-answer recall = %v, want 0", got)
	}
	if got := KNNRecall(nil, nil, q); got != 1 {
		t.Errorf("empty recall = %v", got)
	}
}

func TestBruteForceKNNMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 200)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	b := NewBruteForce()
	b.Build(pts)
	q := geo.Point{X: 0.5, Y: 0.5}
	got := b.KNN(q, 10)
	want := KNNScan(pts, q, 10)
	if KNNRecall(got, want, q) != 1 {
		t.Error("BruteForce KNN mismatch with KNNScan")
	}
}
