// Package index defines the common query interface implemented by
// every spatial index in the repository — learned and traditional —
// plus a brute-force reference implementation used to verify results
// and compute the recall figures the paper reports for approximate
// indices (RSMI, LISA with FFN shard functions).
package index

import (
	"sort"
	"sync"

	"elsi/internal/base"
	"elsi/internal/geo"
)

// Index is the query interface shared by all spatial indices.
type Index interface {
	// Name returns a short identifier ("ZM", "RSMI", "RR*", ...).
	Name() string
	// Build bulk-loads the index with pts. Build must be called once
	// before querying.
	Build(pts []geo.Point) error
	// PointQuery reports whether p is stored in the index.
	PointQuery(p geo.Point) bool
	// WindowQuery returns the stored points inside win. Approximate
	// indices may miss points (recall < 1) but never return points
	// outside win.
	WindowQuery(win geo.Rect) []geo.Point
	// KNN returns the k stored points nearest to q (approximate for
	// indices whose window query is approximate).
	KNN(q geo.Point, k int) []geo.Point
	// Len returns the number of stored points.
	Len() int
}

// WindowAppender is the zero-allocation window-query entry point:
// matches are appended to out (which may be a reused buffer) and the
// extended slice is returned. Implementations return exactly the same
// points in the same order as WindowQuery.
type WindowAppender interface {
	WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point
}

// KNNAppender is the zero-allocation kNN entry point, mirroring
// WindowAppender: the k nearest points are appended to out in the same
// order KNN returns them.
type KNNAppender interface {
	KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point
}

// AppendWindow routes a window query through ix's WindowQueryAppend
// when it has one, falling back to WindowQuery plus a copy into out.
// Batched query engines use it so reusable result buffers work with
// every index, not just the ones with native append paths.
//
//elsi:noalloc
func AppendWindow(ix Index, win geo.Rect, out []geo.Point) []geo.Point {
	if wa, ok := ix.(WindowAppender); ok {
		return wa.WindowQueryAppend(win, out)
	}
	return append(out, ix.WindowQuery(win)...)
}

// AppendKNN is AppendWindow's kNN counterpart.
//
//elsi:noalloc
func AppendKNN(ix Index, q geo.Point, k int, out []geo.Point) []geo.Point {
	if ka, ok := ix.(KNNAppender); ok {
		return ka.KNNAppend(q, k, out)
	}
	return append(out, ix.KNN(q, k)...)
}

// Inserter is implemented by indices supporting point insertion.
type Inserter interface {
	Insert(p geo.Point)
}

// Deleter is implemented by indices supporting point deletion.
type Deleter interface {
	Delete(p geo.Point) bool
}

// BruteForce is the reference index: exact, O(n) per query. It backs
// correctness tests and recall computation.
type BruteForce struct {
	pts []geo.Point
}

// NewBruteForce returns an empty reference index.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Name implements Index.
func (b *BruteForce) Name() string { return "BruteForce" }

// Build implements Index.
func (b *BruteForce) Build(pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	b.pts = append([]geo.Point(nil), pts...)
	return nil
}

// Len implements Index.
func (b *BruteForce) Len() int { return len(b.pts) }

// PointQuery implements Index.
//
//elsi:noalloc
func (b *BruteForce) PointQuery(p geo.Point) bool {
	for _, q := range b.pts {
		if q == p {
			return true
		}
	}
	return false
}

// WindowQuery implements Index. A first pass counts the matches so the
// result is allocated exactly once — the baseline is the measuring
// stick in every experiment, so its cost should be scan-dominated, not
// a chain of append regrowths.
func (b *BruteForce) WindowQuery(win geo.Rect) []geo.Point {
	count := 0
	for _, p := range b.pts {
		if win.Contains(p) {
			count++
		}
	}
	if count == 0 {
		return nil
	}
	return b.WindowQueryAppend(win, make([]geo.Point, 0, count))
}

// WindowQueryAppend implements WindowAppender.
//
//elsi:noalloc
func (b *BruteForce) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	for _, p := range b.pts {
		if win.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// KNN implements Index.
func (b *BruteForce) KNN(q geo.Point, k int) []geo.Point {
	return KNNScan(b.pts, q, k)
}

// KNNAppend implements KNNAppender.
//
//elsi:noalloc
func (b *BruteForce) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	return KNNScanAppend(b.pts, q, k, out)
}

// Insert implements Inserter.
func (b *BruteForce) Insert(p geo.Point) { b.pts = append(b.pts, p) }

// Delete implements Deleter.
func (b *BruteForce) Delete(p geo.Point) bool {
	for i, q := range b.pts {
		if q == p {
			b.pts[i] = b.pts[len(b.pts)-1]
			b.pts = b.pts[:len(b.pts)-1]
			return true
		}
	}
	return false
}

// KNNScan returns the k points of pts nearest to q by full scan.
func KNNScan(pts []geo.Point, q geo.Point, k int) []geo.Point {
	if k <= 0 || len(pts) == 0 {
		return nil
	}
	if k > len(pts) {
		k = len(pts)
	}
	return KNNScanAppend(pts, q, k, make([]geo.Point, 0, k))
}

// knnSorter sorts parallel candidate point/distance columns by
// ascending distance. Pooled so repeated kNN scans reuse one scratch.
type knnSorter struct {
	pts  []geo.Point
	dist []float64
}

func (s *knnSorter) Len() int           { return len(s.pts) }
func (s *knnSorter) Less(i, j int) bool { return s.dist[i] < s.dist[j] }
func (s *knnSorter) Swap(i, j int) {
	s.pts[i], s.pts[j] = s.pts[j], s.pts[i]
	s.dist[i], s.dist[j] = s.dist[j], s.dist[i]
}

var knnSorterPool = sync.Pool{New: func() interface{} { return new(knnSorter) }}

// KNNScanAppend is KNNScan appending the k nearest points to out and
// returning the extended slice; its sort scratch is pooled, so the only
// allocation in steady state is out's own growth.
//
//elsi:noalloc
func KNNScanAppend(pts []geo.Point, q geo.Point, k int, out []geo.Point) []geo.Point {
	if k <= 0 || len(pts) == 0 {
		return out
	}
	s := knnSorterPool.Get().(*knnSorter)
	s.pts = append(s.pts[:0], pts...)
	s.dist = s.dist[:0]
	for _, p := range pts {
		s.dist = append(s.dist, p.Dist2(q))
	}
	sort.Sort(s)
	if k > len(s.pts) {
		k = len(s.pts)
	}
	out = append(out, s.pts[:k]...)
	knnSorterPool.Put(s)
	return out
}

// Recall returns |got ∩ want| / |want| treating both as multisets of
// points; it is the query-recall metric of Figures 12, 14, and 16.
// Recall of an empty want set is 1.
func Recall(got, want []geo.Point) float64 {
	if len(want) == 0 {
		return 1
	}
	counts := make(map[geo.Point]int, len(want))
	for _, p := range want {
		counts[p]++
	}
	hit := 0
	for _, p := range got {
		if counts[p] > 0 {
			counts[p]--
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// KNNRecall compares kNN answers by distance, not identity: an answer
// point counts as correct if its distance to q does not exceed the
// true k-th nearest distance (ties make identity comparison unfair).
func KNNRecall(got, want []geo.Point, q geo.Point) float64 {
	if len(want) == 0 {
		return 1
	}
	maxD := 0.0
	for _, p := range want {
		if d := p.Dist2(q); d > maxD {
			maxD = d
		}
	}
	hit := 0
	for _, p := range got {
		if p.Dist2(q) <= maxD+1e-15 {
			hit++
		}
	}
	if hit > len(want) {
		hit = len(want)
	}
	return float64(hit) / float64(len(want))
}
