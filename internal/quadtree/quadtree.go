// Package quadtree implements the recursive 2^d space partitioning of
// Algorithm 2 (get_RS): the data space is split into four quadrants
// until every leaf holds at most beta points. The RS index-building
// method selects one representative per non-empty leaf; the package
// also serves as a standalone query structure for tests.
package quadtree

import (
	"elsi/internal/geo"
)

// Tree is a point quadtree over a fixed data space.
type Tree struct {
	root *node
	beta int
	size int
}

type node struct {
	bounds   geo.Rect
	pts      []geo.Point // leaf payload; nil for internal nodes
	children *[4]*node   // nil for leaves
}

// New builds a quadtree over space containing pts, splitting any node
// holding more than beta points (beta >= 1).
func New(pts []geo.Point, space geo.Rect, beta int) *Tree {
	if beta < 1 {
		beta = 1
	}
	t := &Tree{beta: beta, size: len(pts)}
	buf := append([]geo.Point(nil), pts...)
	t.root = build(buf, space, beta)
	return t
}

// build constructs the subtree for pts within bounds. It reuses the
// pts slice for leaf storage.
func build(pts []geo.Point, bounds geo.Rect, beta int) *node {
	n := &node{bounds: bounds}
	if len(pts) <= beta || !canSplit(bounds) {
		n.pts = pts
		return n
	}
	mx := (bounds.MinX + bounds.MaxX) / 2
	my := (bounds.MinY + bounds.MaxY) / 2
	var quads [4][]geo.Point
	for _, p := range pts {
		quads[quadrant(p, mx, my)] = append(quads[quadrant(p, mx, my)], p)
	}
	n.children = &[4]*node{}
	for i := 0; i < 4; i++ {
		n.children[i] = build(quads[i], childBounds(bounds, mx, my, i), beta)
	}
	return n
}

// canSplit guards against infinite recursion on duplicate points: once
// the cell is at floating-point resolution, stop splitting.
func canSplit(b geo.Rect) bool {
	mx := (b.MinX + b.MaxX) / 2
	my := (b.MinY + b.MaxY) / 2
	return mx > b.MinX && mx < b.MaxX && my > b.MinY && my < b.MaxY
}

// quadrant returns the child slot of p: 0=SW, 1=SE, 2=NW, 3=NE.
func quadrant(p geo.Point, mx, my float64) int {
	q := 0
	if p.X >= mx {
		q |= 1
	}
	if p.Y >= my {
		q |= 2
	}
	return q
}

func childBounds(b geo.Rect, mx, my float64, quad int) geo.Rect {
	out := b
	if quad&1 == 0 {
		out.MaxX = mx
	} else {
		out.MinX = mx
	}
	if quad&2 == 0 {
		out.MaxY = my
	} else {
		out.MinY = my
	}
	return out
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Beta returns the leaf capacity.
func (t *Tree) Beta() int { return t.beta }

// Leaves visits every leaf, passing its bounds and points (possibly
// empty). The RS build method uses this to collect one representative
// per non-empty leaf.
func (t *Tree) Leaves(fn func(bounds geo.Rect, pts []geo.Point)) {
	var walk func(*node)
	walk = func(n *node) {
		if n.children == nil {
			fn(n.bounds, n.pts)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// NonEmptyLeafCount returns the number of leaves holding at least one
// point — the size of the RS training set.
func (t *Tree) NonEmptyLeafCount() int {
	count := 0
	t.Leaves(func(_ geo.Rect, pts []geo.Point) {
		if len(pts) > 0 {
			count++
		}
	})
	return count
}

// Depth returns the height of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n.children == nil {
			return 1
		}
		d := 0
		for _, c := range n.children {
			if cd := walk(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	return walk(t.root)
}

// WindowQuery returns all stored points inside win.
func (t *Tree) WindowQuery(win geo.Rect) []geo.Point {
	var out []geo.Point
	var walk func(*node)
	walk = func(n *node) {
		if !win.Intersects(n.bounds) {
			return
		}
		if n.children == nil {
			for _, p := range n.pts {
				if win.Contains(p) {
					out = append(out, p)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Contains reports whether p is stored.
func (t *Tree) Contains(p geo.Point) bool {
	n := t.root
	for n.children != nil {
		mx := (n.bounds.MinX + n.bounds.MaxX) / 2
		my := (n.bounds.MinY + n.bounds.MaxY) / 2
		n = n.children[quadrant(p, mx, my)]
	}
	for _, q := range n.pts {
		if q == p {
			return true
		}
	}
	return false
}
