package quadtree

import (
	"math/rand"
	"testing"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
)

func TestLeafCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := dataset.UniformPoints(rng, 2000)
	beta := 32
	tr := New(pts, geo.UnitRect, beta)
	total := 0
	tr.Leaves(func(_ geo.Rect, lp []geo.Point) {
		if len(lp) > beta {
			t.Fatalf("leaf holds %d > beta %d points", len(lp), beta)
		}
		total += len(lp)
	})
	if total != 2000 {
		t.Errorf("leaves hold %d points, want 2000", total)
	}
	if tr.Len() != 2000 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Beta() != beta {
		t.Errorf("Beta = %d", tr.Beta())
	}
}

func TestLeavesPartitionSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := dataset.SkewedPoints(rng, 1000, 4)
	tr := New(pts, geo.UnitRect, 16)
	var area float64
	tr.Leaves(func(b geo.Rect, lp []geo.Point) {
		area += b.Area()
		for _, p := range lp {
			if !b.Contains(p) {
				t.Fatalf("point %v outside its leaf %v", p, b)
			}
		}
	})
	if area < 0.999 || area > 1.001 {
		t.Errorf("leaf areas sum to %v, want 1", area)
	}
}

func TestWindowQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := dataset.MustGenerate(dataset.OSM1, 3000, 3)
	tr := New(pts, geo.UnitRect, 20)
	bf := index.NewBruteForce()
	bf.Build(pts)
	for i := 0; i < 30; i++ {
		c := pts[rng.Intn(len(pts))]
		win := geo.Rect{MinX: c.X - 0.03, MinY: c.Y - 0.03, MaxX: c.X + 0.03, MaxY: c.Y + 0.03}
		got := tr.WindowQuery(win)
		want := bf.WindowQuery(win)
		if index.Recall(got, want) != 1 || len(got) != len(want) {
			t.Fatalf("window %v: got %d want %d", win, len(got), len(want))
		}
	}
}

func TestContains(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := dataset.UniformPoints(rng, 500)
	tr := New(pts, geo.UnitRect, 8)
	for _, p := range pts[:50] {
		if !tr.Contains(p) {
			t.Fatalf("stored point %v not found", p)
		}
	}
	if tr.Contains(geo.Point{X: -1, Y: -1}) {
		t.Error("phantom point found")
	}
}

func TestDuplicatePointsTerminate(t *testing.T) {
	// 100 identical points with beta=2 must not recurse forever.
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Point{X: 0.5, Y: 0.5}
	}
	tr := New(pts, geo.UnitRect, 2)
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Contains(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("duplicate point not found")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil, geo.UnitRect, 4)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.WindowQuery(geo.UnitRect); len(got) != 0 {
		t.Errorf("empty tree window query returned %d points", len(got))
	}
	if tr.NonEmptyLeafCount() != 0 {
		t.Errorf("NonEmptyLeafCount = %d", tr.NonEmptyLeafCount())
	}
	if tr.Depth() != 1 {
		t.Errorf("Depth = %d", tr.Depth())
	}
}

func TestNonEmptyLeafCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := dataset.UniformPoints(rng, 5000)
	beta := 100
	tr := New(pts, geo.UnitRect, beta)
	leaves := tr.NonEmptyLeafCount()
	// At least n/beta leaves are needed; the 2^d fanout means at most
	// ~4n/beta non-empty leaves for uniform data.
	if leaves < 5000/beta {
		t.Errorf("too few leaves: %d", leaves)
	}
	if leaves > 4*5000/beta+4 {
		t.Errorf("too many leaves for uniform data: %d", leaves)
	}
}

func TestDepthGrowsWithSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	uni := New(dataset.UniformPoints(rng, 2000), geo.UnitRect, 16)
	nyc := New(dataset.MustGenerate(dataset.NYC, 2000, 6), geo.UnitRect, 16)
	if nyc.Depth() <= uni.Depth() {
		t.Errorf("skewed depth %d not deeper than uniform %d", nyc.Depth(), uni.Depth())
	}
}

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := dataset.UniformPoints(rng, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(pts, geo.UnitRect, 100)
	}
}
