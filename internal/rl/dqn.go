// Package rl implements the deep Q-network used by ELSI's
// reinforcement-learning index building method (Section V-B2): the
// agent learns which grid cells of the synthetic training set to
// toggle so that the set's CDF best approximates the data's. The DQN
// follows Mnih et al.: an epsilon-greedy policy over Q-values, a
// replay memory of recent transitions, and periodic training (every
// five steps in the paper) against a target network.
package rl

import (
	"math/rand"

	"elsi/internal/nn"
)

// Config holds the DQN hyper-parameters. Paper values: gamma = 0.9,
// training every 5 steps.
type Config struct {
	StateDim     int     // length of the binary state vector (eta^d)
	Hidden       int     // hidden layer width
	Gamma        float64 // discount factor
	Epsilon      float64 // exploration rate for epsilon-greedy
	LearningRate float64
	ReplayCap    int // replay memory capacity (alpha)
	BatchSize    int // minibatch size per training step
	TrainEvery   int // steps between training rounds (paper: 5)
	SyncEvery    int // steps between target-network syncs
	Seed         int64
}

// DefaultConfig returns the paper's settings with CPU-sized defaults
// for the unspecified knobs.
func DefaultConfig(stateDim int) Config {
	return Config{
		StateDim:     stateDim,
		Hidden:       64,
		Gamma:        0.9,
		Epsilon:      0.2,
		LearningRate: 0.005,
		ReplayCap:    10000,
		BatchSize:    32,
		TrainEvery:   5,
		SyncEvery:    50,
		Seed:         1,
	}
}

type transition struct {
	state  []float64
	action int
	reward float64
	next   []float64
}

// Agent is a DQN agent over a fixed-size binary state space with one
// action per state bit (toggle that bit).
type Agent struct {
	cfg    Config
	net    *nn.Network
	target *nn.Network
	replay []transition
	rng    *rand.Rand
	steps  int
}

// NewAgent creates a DQN agent.
func NewAgent(cfg Config) *Agent {
	if cfg.StateDim <= 0 {
		panic("rl: StateDim must be positive")
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.TrainEvery <= 0 {
		cfg.TrainEvery = 5
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 50
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.ReplayCap <= 0 {
		cfg.ReplayCap = 10000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.New(rng, cfg.StateDim, cfg.Hidden, cfg.StateDim)
	return &Agent{cfg: cfg, net: net, target: net.Clone(), rng: rng}
}

// Select returns the next action (cell index to toggle) for state,
// using epsilon-greedy over the Q-network.
func (a *Agent) Select(state []float64) int {
	if a.rng.Float64() < a.cfg.Epsilon {
		return a.rng.Intn(a.cfg.StateDim)
	}
	q := a.net.Forward(state)
	best, bestQ := 0, q[0]
	for i, v := range q[1:] {
		if v > bestQ {
			best, bestQ = i+1, v
		}
	}
	return best
}

// Observe records a transition and trains the network every
// TrainEvery observations.
func (a *Agent) Observe(state []float64, action int, reward float64, next []float64) {
	tr := transition{
		state:  append([]float64(nil), state...),
		action: action,
		reward: reward,
		next:   append([]float64(nil), next...),
	}
	if len(a.replay) < a.cfg.ReplayCap {
		a.replay = append(a.replay, tr)
	} else {
		a.replay[a.steps%a.cfg.ReplayCap] = tr
	}
	a.steps++
	if a.steps%a.cfg.TrainEvery == 0 {
		a.train()
	}
	if a.steps%a.cfg.SyncEvery == 0 {
		a.target.CopyWeightsFrom(a.net)
	}
}

// Steps returns the number of observed transitions.
func (a *Agent) Steps() int { return a.steps }

// train performs one minibatch Q-learning update: the target for the
// taken action is r + gamma * max_a' Q_target(s', a'); other outputs
// are masked out.
func (a *Agent) train() {
	n := len(a.replay)
	if n == 0 {
		return
	}
	batch := a.cfg.BatchSize
	if batch > n {
		batch = n
	}
	xs := make([][]float64, batch)
	ys := make([][]float64, batch)
	masks := make([][]bool, batch)
	for i := 0; i < batch; i++ {
		tr := a.replay[a.rng.Intn(n)]
		qNext := a.target.Forward(tr.next)
		maxQ := qNext[0]
		for _, v := range qNext[1:] {
			if v > maxQ {
				maxQ = v
			}
		}
		target := tr.reward + a.cfg.Gamma*maxQ
		y := make([]float64, a.cfg.StateDim)
		mask := make([]bool, a.cfg.StateDim)
		y[tr.action] = target
		mask[tr.action] = true
		xs[i] = tr.state
		ys[i] = y
		masks[i] = mask
	}
	a.net.TrainStepMasked(xs, ys, masks, a.cfg.LearningRate)
}
