package rl

import (
	"math/rand"
	"testing"
)

func TestNewAgentDefaults(t *testing.T) {
	a := NewAgent(Config{StateDim: 4, Seed: 1})
	if a.cfg.TrainEvery != 5 || a.cfg.SyncEvery != 50 || a.cfg.BatchSize != 32 {
		t.Errorf("defaults not applied: %+v", a.cfg)
	}
	if a.Steps() != 0 {
		t.Errorf("Steps = %d", a.Steps())
	}
}

func TestNewAgentPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for StateDim <= 0")
		}
	}()
	NewAgent(Config{StateDim: 0})
}

func TestSelectInRange(t *testing.T) {
	cfg := DefaultConfig(8)
	a := NewAgent(cfg)
	state := make([]float64, 8)
	for i := 0; i < 100; i++ {
		act := a.Select(state)
		if act < 0 || act >= 8 {
			t.Fatalf("action %d out of range", act)
		}
	}
}

func TestSelectGreedyWhenEpsilonZero(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Epsilon = 0
	a := NewAgent(cfg)
	state := []float64{1, 0, 1, 0}
	first := a.Select(state)
	for i := 0; i < 10; i++ {
		if got := a.Select(state); got != first {
			t.Fatal("greedy selection not deterministic")
		}
	}
}

func TestObserveTrainsPeriodically(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Epsilon = 0
	a := NewAgent(cfg)
	state := []float64{0, 0, 0, 0}
	before := a.net.Forward(state)[0]
	for i := 0; i < 20; i++ {
		a.Observe(state, i%4, 1.0, state)
	}
	after := a.net.Forward(state)[0]
	if before == after {
		t.Error("network unchanged after 20 observations (training never ran)")
	}
	if a.Steps() != 20 {
		t.Errorf("Steps = %d", a.Steps())
	}
}

// TestLearnsBanditPreference checks the agent learns a trivial
// contextual bandit: action 2 always pays 1, everything else pays 0.
func TestLearnsBanditPreference(t *testing.T) {
	cfg := Config{
		StateDim: 4, Hidden: 16, Gamma: 0, Epsilon: 1.0,
		LearningRate: 0.01, ReplayCap: 500, BatchSize: 16,
		TrainEvery: 5, SyncEvery: 20, Seed: 3,
	}
	a := NewAgent(cfg)
	state := []float64{1, 1, 1, 1}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 600; i++ {
		act := rng.Intn(4)
		r := 0.0
		if act == 2 {
			r = 1
		}
		a.Observe(state, act, r, state)
	}
	a.cfg.Epsilon = 0
	if got := a.Select(state); got != 2 {
		q := a.net.Forward(state)
		t.Errorf("greedy action = %d (q=%v), want 2", got, q)
	}
}

func TestReplayCapacityWraps(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ReplayCap = 8
	a := NewAgent(cfg)
	s := []float64{0, 0}
	for i := 0; i < 100; i++ {
		a.Observe(s, 0, 0, s)
	}
	if len(a.replay) != 8 {
		t.Errorf("replay grew to %d, cap 8", len(a.replay))
	}
}
