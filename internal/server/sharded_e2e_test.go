package server_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"elsi/internal/client"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rebuild"
	"elsi/internal/server"
	"elsi/internal/shard"
)

// canon sorts a window result into the router's canonical (X, Y)
// order so unsharded answers compare against sharded ones.
func canon(pts []geo.Point) []geo.Point {
	out := append([]geo.Point(nil), pts...)
	shard.SortPointsXY(out)
	return out
}

// TestShardedServerE2E serves a 4-shard router over both transports
// and checks every answer against an unsharded reference processor
// holding the same points: queries while clients also write through
// the server (mirrored into the reference), a settled full-space
// sweep, and the /stats per-shard breakdown.
func TestShardedServerE2E(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 3000, 71)
	mk := func(sub []geo.Point) (*rebuild.Processor, error) {
		proc, err := rebuild.NewProcessor(index.NewBruteForce(), nil, sub, xKey, 1<<30)
		if err != nil {
			return nil, err
		}
		proc.Factory = func() rebuild.Rebuildable { return index.NewBruteForce() }
		return proc, nil
	}
	r, err := shard.New(pts, geo.UnitRect, shard.Config{Shards: 4}, mk)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rebuild.NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	eng := engine.NewWithBackend(r, nil, engine.Config{MaxBatch: 8, FlushInterval: 500 * time.Microsecond})
	srv := server.New(eng)
	if err := srv.Start(context.Background(), "127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	hc := &client.HTTP{Base: "http://" + srv.HTTPAddr()}
	tc, err := client.DialTCP(srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	// --- phase A: read-only equivalence across transports ---
	type queryClient interface {
		PointQuery(pt geo.Point) (bool, error)
		WindowQuery(win geo.Rect) ([]geo.Point, error)
		KNN(q geo.Point, k int) ([]geo.Point, error)
	}
	var wg sync.WaitGroup
	for ci, qc := range []queryClient{hc, tc} {
		ci, qc := ci, qc
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + ci)))
			for i := 0; i < 40; i++ {
				q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
				switch rng.Intn(3) {
				case 0:
					want := ref.PointQuery(q)
					if got, err := qc.PointQuery(q); err != nil {
						t.Errorf("client %d: PointQuery: %v", ci, err)
					} else if got != want {
						t.Errorf("client %d: PointQuery(%v) = %v, want %v", ci, q, got, want)
					}
				case 1:
					win := geo.Rect{MinX: q.X, MinY: q.Y, MaxX: q.X + 0.15, MaxY: q.Y + 0.15}
					want := canon(ref.WindowQuery(win))
					if got, err := qc.WindowQuery(win); err != nil {
						t.Errorf("client %d: WindowQuery: %v", ci, err)
					} else if !samePoints(got, want) {
						t.Errorf("client %d: WindowQuery(%v) returned %d pts, want %d", ci, win, len(got), len(want))
					}
				default:
					k := 1 + rng.Intn(15)
					want := ref.KNN(q, k)
					if got, err := qc.KNN(q, k); err != nil {
						t.Errorf("client %d: KNN: %v", ci, err)
					} else if !samePoints(got, want) {
						t.Errorf("client %d: KNN(%v, %d) returned %d pts, want %d", ci, q, k, len(got), len(want))
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// --- phase B: writes through both transports, mirrored into the
	// reference, then a settled full-space sweep must agree ---
	rng := rand.New(rand.NewSource(81))
	type updateClient interface {
		Insert(pt geo.Point) (bool, error)
		Delete(pt geo.Point) (bool, error)
	}
	for _, uc := range []updateClient{hc, tc} {
		for i := 0; i < 30; i++ {
			if rng.Intn(2) == 0 {
				p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
				if _, err := uc.Insert(p); err != nil {
					t.Fatalf("Insert: %v", err)
				}
				ref.Insert(p)
			} else {
				p := pts[rng.Intn(len(pts))]
				if _, err := uc.Delete(p); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				ref.Delete(p)
			}
		}
	}
	want := canon(ref.WindowQuery(geo.UnitRect))
	gotHTTP, err := hc.WindowQuery(geo.UnitRect)
	if err != nil {
		t.Fatal(err)
	}
	gotTCP, err := tc.WindowQuery(geo.UnitRect)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(gotHTTP, want) || !samePoints(gotTCP, want) {
		t.Errorf("settled sweep diverged: HTTP %d pts, TCP %d pts, reference %d pts",
			len(gotHTTP), len(gotTCP), len(want))
	}

	// --- phase C: the per-shard breakdown flows over both transports ---
	stHTTP, err := hc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	stTCP, err := tc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]engine.Stats{"HTTP": stHTTP, "TCP": stTCP} {
		if len(st.Shards) != r.NumShards() {
			t.Fatalf("%s stats: %d shard entries, want %d", name, len(st.Shards), r.NumShards())
		}
		if st.Len != ref.Len() {
			t.Errorf("%s stats: Len = %d, want %d", name, st.Len, ref.Len())
		}
		sum, lo := 0, uint64(0)
		var points, inserts int64
		for i, ss := range st.Shards {
			if ss.KeyLo != lo {
				t.Errorf("%s stats: shard %d KeyLo = %d, want %d (contiguous coverage)", name, i, ss.KeyLo, lo)
			}
			lo = ss.KeyHi + 1
			sum += ss.Len
			points += ss.PointQueries
			inserts += ss.Inserts
		}
		if st.Shards[len(st.Shards)-1].KeyHi != curve.MaxKey {
			t.Errorf("%s stats: last shard KeyHi = %d, want MaxKey", name, st.Shards[len(st.Shards)-1].KeyHi)
		}
		if sum != st.Len {
			t.Errorf("%s stats: shard Lens sum to %d, want %d", name, sum, st.Len)
		}
		if points == 0 || inserts == 0 {
			t.Errorf("%s stats: per-shard counters did not move: points=%d inserts=%d", name, points, inserts)
		}
	}
}
