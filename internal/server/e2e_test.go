package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"elsi/internal/client"
	"elsi/internal/dataset"
	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rebuild"
	"elsi/internal/server"
)

func xKey(p geo.Point) float64 { return p.X }

// gatedBuild blocks Build on a gate, holding a background rebuild in
// flight while the test drives traffic through the server.
type gatedBuild struct {
	*index.BruteForce
	gate chan struct{}
}

func (g *gatedBuild) Build(pts []geo.Point) error {
	<-g.gate
	return g.BruteForce.Build(pts)
}

// gatedQuery blocks point queries on a gate, pinning requests inside
// the engine for the overload test.
type gatedQuery struct {
	*index.BruteForce
	gate chan struct{}
}

func (g *gatedQuery) PointQuery(p geo.Point) bool {
	<-g.gate
	return g.BruteForce.PointQuery(p)
}

// startServer stands up a full stack on ephemeral localhost ports.
func startServer(t *testing.T, proc *rebuild.Processor, cfg engine.Config) (*server.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(proc, nil, cfg)
	srv := server.New(eng)
	if err := srv.Start(context.Background(), "127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, eng
}

func newProcessor(t *testing.T, n int, seed int64) (*rebuild.Processor, []geo.Point) {
	t.Helper()
	pts := dataset.MustGenerate(dataset.Uniform, n, seed)
	proc, err := rebuild.NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return proc, pts
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func samePoints(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMixedTransportsE2E is the end-to-end serving test: HTTP and TCP
// clients hammer one server concurrently — first against a static
// store (answers checked against the in-process engine), then with
// concurrent inserts/deletes while a background rebuild is held in
// flight, and finally a settled-state sweep must agree across both
// transports and the in-process view.
func TestMixedTransportsE2E(t *testing.T) {
	proc, pts := newProcessor(t, 2000, 53)
	gate := make(chan struct{})
	proc.Factory = func() rebuild.Rebuildable {
		return &gatedBuild{BruteForce: index.NewBruteForce(), gate: gate}
	}
	srv, eng := startServer(t, proc, engine.Config{MaxBatch: 8, FlushInterval: 500 * time.Microsecond})

	hc := &client.HTTP{Base: "http://" + srv.HTTPAddr()}
	tc, err := client.DialTCP(srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	// --- phase A: static equivalence across transports ---
	type queryClient interface {
		PointQuery(pt geo.Point) (bool, error)
		WindowQuery(win geo.Rect) ([]geo.Point, error)
		KNN(q geo.Point, k int) ([]geo.Point, error)
	}
	tc2, err := client.DialTCP(srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc2.Close()
	clients := []queryClient{hc, tc, hc, tc2}

	var wg sync.WaitGroup
	for ci, qc := range clients {
		ci, qc := ci, qc
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + ci)))
			for i := 0; i < 40; i++ {
				q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
				switch rng.Intn(3) {
				case 0:
					want := proc.PointQuery(q)
					got, err := qc.PointQuery(q)
					if err != nil {
						t.Errorf("client %d: PointQuery: %v", ci, err)
					} else if got != want {
						t.Errorf("client %d: PointQuery(%v) = %v, want %v", ci, q, got, want)
					}
				case 1:
					win := geo.Rect{MinX: q.X, MinY: q.Y, MaxX: q.X + 0.2, MaxY: q.Y + 0.2}
					want := proc.WindowQuery(win)
					got, err := qc.WindowQuery(win)
					if err != nil {
						t.Errorf("client %d: WindowQuery: %v", ci, err)
					} else if !samePoints(got, want) {
						t.Errorf("client %d: WindowQuery(%v) returned %d pts, want %d", ci, win, len(got), len(want))
					}
				default:
					k := rng.Intn(15)
					want := proc.KNN(q, k)
					got, err := qc.KNN(q, k)
					if err != nil {
						t.Errorf("client %d: KNN: %v", ci, err)
					} else if !samePoints(got, want) {
						t.Errorf("client %d: KNN(%v, %d) returned %d pts, want %d", ci, q, k, len(got), len(want))
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		close(gate)
		t.FailNow()
	}

	// --- phase B: updates through both transports with a rebuild in
	// flight ---
	proc.Rebuild()
	waitUntil(t, "rebuild in flight", proc.Rebuilding)

	type updateClient interface {
		queryClient
		Insert(pt geo.Point) (bool, error)
		Delete(pt geo.Point) (bool, error)
	}
	writers := []updateClient{hc, tc}
	for ci, uc := range writers {
		ci, uc := ci, uc
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + ci)))
			for i := 0; i < 60; i++ {
				q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
				switch rng.Intn(4) {
				case 0:
					if _, err := uc.Insert(q); err != nil {
						t.Errorf("writer %d: Insert: %v", ci, err)
						return
					}
				case 1:
					if _, err := uc.Delete(pts[rng.Intn(len(pts))]); err != nil {
						t.Errorf("writer %d: Delete: %v", ci, err)
						return
					}
				case 2:
					if _, err := uc.PointQuery(q); err != nil {
						t.Errorf("writer %d: PointQuery: %v", ci, err)
						return
					}
				default:
					if _, err := uc.KNN(q, 5); err != nil {
						t.Errorf("writer %d: KNN: %v", ci, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if !proc.Rebuilding() {
		t.Error("rebuild finished before the churn did; the gate is broken")
	}
	close(gate)
	proc.WaitRebuild()

	// --- phase C: settled state must agree everywhere ---
	want := proc.WindowQuery(geo.UnitRect)
	gotHTTP, err := hc.WindowQuery(geo.UnitRect)
	if err != nil {
		t.Fatal(err)
	}
	gotTCP, err := tc.WindowQuery(geo.UnitRect)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(gotHTTP, want) || !samePoints(gotTCP, want) {
		t.Errorf("settled sweep diverged: HTTP %d pts, TCP %d pts, in-process %d pts",
			len(gotHTTP), len(gotTCP), len(want))
	}

	// stats flow over both transports and reflect the run
	stHTTP, err := hc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	stTCP, err := tc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]engine.Stats{"HTTP": stHTTP, "TCP": stTCP} {
		if st.Len != proc.Len() {
			t.Errorf("%s stats: Len = %d, want %d", name, st.Len, proc.Len())
		}
		if st.Rebuilds < 1 {
			t.Errorf("%s stats: Rebuilds = %d, want >= 1", name, st.Rebuilds)
		}
		if st.Inserts == 0 || st.Deletes == 0 || st.PointQueries == 0 {
			t.Errorf("%s stats: counters did not move: %+v", name, st)
		}
	}
	_ = eng
}

// TestServerDegenerateInputs drives the hostile inputs of the
// degenerate-hardening checklist through real network handlers:
// inverted and zero-area windows, k <= 0 and k beyond the
// cardinality, infinite coordinates on the binary path, malformed
// JSON, unknown binary ops, and a frame with an oversize length
// prefix — none may panic the server, and well-formed degenerate
// queries must answer exactly like the in-process engine.
func TestServerDegenerateInputs(t *testing.T) {
	proc, _ := newProcessor(t, 800, 59)
	srv, _ := startServer(t, proc, engine.Config{})

	hc := &client.HTTP{Base: "http://" + srv.HTTPAddr()}
	tc, err := client.DialTCP(srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	wins := []geo.Rect{
		{MinX: 0.8, MinY: 0.8, MaxX: 0.2, MaxY: 0.2},     // fully inverted
		{MinX: 0.2, MinY: 0.8, MaxX: 0.8, MaxY: 0.2},     // inverted on y
		{MinX: 0.5, MinY: 0.1, MaxX: 0.5, MaxY: 0.9},     // zero width
		{MinX: 0.25, MinY: 0.25, MaxX: 0.25, MaxY: 0.25}, // zero area
		{MinX: 3, MinY: 3, MaxX: 4, MaxY: 4},             // outside the space
	}
	for _, win := range wins {
		want := proc.WindowQuery(win)
		for name, got := range map[string]func() ([]geo.Point, error){
			"HTTP": func() ([]geo.Point, error) { return hc.WindowQuery(win) },
			"TCP":  func() ([]geo.Point, error) { return tc.WindowQuery(win) },
		} {
			pts, err := got()
			if err != nil {
				t.Errorf("%s WindowQuery(%v): %v", name, win, err)
			} else if !samePoints(pts, want) {
				t.Errorf("%s WindowQuery(%v) returned %d pts, want %d", name, win, len(pts), len(want))
			}
		}
	}
	// the JSON transport cannot carry ±Inf; the binary one can, and
	// the server must answer it like the in-process engine
	infWin := geo.Rect{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)}
	wantInf := proc.WindowQuery(infWin)
	if pts, err := tc.WindowQuery(infWin); err != nil {
		t.Errorf("TCP WindowQuery(inf): %v", err)
	} else if !samePoints(pts, wantInf) {
		t.Errorf("TCP WindowQuery(inf) returned %d pts, want %d", len(pts), len(wantInf))
	}

	q := geo.Point{X: 0.5, Y: 0.5}
	for _, k := range []int{-7, 0, 1, 800, 5000} {
		want := proc.KNN(q, k)
		for name, got := range map[string]func() ([]geo.Point, error){
			"HTTP": func() ([]geo.Point, error) { return hc.KNN(q, k) },
			"TCP":  func() ([]geo.Point, error) { return tc.KNN(q, k) },
		} {
			pts, err := got()
			if err != nil {
				t.Errorf("%s KNN(k=%d): %v", name, k, err)
			} else if !samePoints(pts, want) {
				t.Errorf("%s KNN(k=%d) returned %d pts, want %d", name, k, len(pts), len(want))
			}
		}
	}

	// malformed JSON -> 400, wrong method -> 405
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/query/point", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/query/point")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status = %d, want 405", resp.StatusCode)
	}

	// unknown binary op -> error frame on a still-usable connection;
	// oversize length prefix -> connection closed, server unharmed
	raw, err := net.Dial("tcp", srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0, 0, 0, 1, 0xee}); err != nil { // 1-byte body, unknown op
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	hdr := make([]byte, 4)
	if _, err := readFull(raw, hdr); err != nil {
		t.Fatalf("reading error-frame header: %v", err)
	}
	if _, err := raw.Write([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		// read the rest of the error frame, then expect EOF after the
		// hostile prefix
		body := make([]byte, int(uint32(hdr[0])<<24|uint32(hdr[1])<<16|uint32(hdr[2])<<8|uint32(hdr[3])))
		if _, err := readFull(raw, body); err != nil {
			t.Fatalf("reading error-frame body: %v", err)
		}
		if body[0] != 1 { // protocol.StatusError
			t.Errorf("unknown op: status byte = %d, want StatusError", body[0])
		}
		one := make([]byte, 1)
		if _, err := raw.Read(one); err == nil {
			t.Error("server kept the connection open after an oversize length prefix")
		}
	}

	// the server survived all of it: a fresh connection still works
	tc2, err := client.DialTCP(srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc2.Close()
	if _, err := tc2.PointQuery(q); err != nil {
		t.Errorf("fresh connection after hostile traffic: %v", err)
	}
	var st engine.Stats
	if err := getJSON("http://"+srv.HTTPAddr()+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Len != proc.Len() {
		t.Errorf("/stats Len = %d, want %d", st.Len, proc.Len())
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestServerOverloadBackpressure pins the admission control end to
// end: with the single in-flight slot held by a gated request, both
// transports must shed load with their typed signal — HTTP 429 and
// the protocol's overloaded status, both mapping back to
// engine.ErrOverloaded in the clients.
func TestServerOverloadBackpressure(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 200, 61)
	gate := make(chan struct{})
	gq := &gatedQuery{BruteForce: index.NewBruteForce(), gate: gate}
	proc, err := rebuild.NewProcessor(gq, nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	srv, eng := startServer(t, proc, engine.Config{MaxBatch: 1, MaxInFlight: 1})

	hc := &client.HTTP{Base: "http://" + srv.HTTPAddr()}
	tc, err := client.DialTCP(srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := tc.PointQuery(geo.Point{X: 0.5, Y: 0.5}); err != nil {
			t.Errorf("gated PointQuery: %v", err)
		}
	}()
	waitUntil(t, "slot occupied", func() bool { return eng.Stats().InFlight == 1 })

	if _, err := hc.PointQuery(geo.Point{X: 0.1, Y: 0.1}); !errors.Is(err, engine.ErrOverloaded) {
		t.Errorf("HTTP under overload: err = %v, want engine.ErrOverloaded", err)
	}
	tc2, err := client.DialTCP(srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc2.Close()
	if _, err := tc2.PointQuery(geo.Point{X: 0.1, Y: 0.1}); !errors.Is(err, engine.ErrOverloaded) {
		t.Errorf("TCP under overload: err = %v, want engine.ErrOverloaded", err)
	}

	close(gate)
	wg.Wait()
	if st := eng.Stats(); st.Overloads < 2 {
		t.Errorf("Overloads = %d, want >= 2", st.Overloads)
	}
}

// TestGracefulShutdownDrains parks requests from both transports in
// the engine's accumulator with a far-off flush deadline, then closes
// the server: every parked request must receive its correct answer
// via the shutdown flush (not the timer), and the ports must be dead
// afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	proc, _ := newProcessor(t, 500, 67)
	srv, eng := startServer(t, proc, engine.Config{MaxBatch: 100, FlushInterval: time.Minute})

	hc := &client.HTTP{Base: "http://" + srv.HTTPAddr()}
	win := geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.6, MaxY: 0.6}
	want := proc.WindowQuery(win)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := hc.WindowQuery(win)
			if err != nil {
				t.Errorf("parked HTTP WindowQuery: %v", err)
			} else if !samePoints(got, want) {
				t.Errorf("parked HTTP WindowQuery returned %d pts, want %d", len(got), len(want))
			}
		}()
		tci, err := client.DialTCP(srv.TCPAddr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tci.Close()
			got, err := tci.WindowQuery(win)
			if err != nil {
				t.Errorf("parked TCP WindowQuery: %v", err)
			} else if !samePoints(got, want) {
				t.Errorf("parked TCP WindowQuery returned %d pts, want %d", len(got), len(want))
			}
		}()
	}
	waitUntil(t, "4 queries parked", func() bool { return eng.Stats().Queued == 4 })

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("drain took %v; the shutdown flush did not fire", elapsed)
	}

	st := eng.Stats()
	if st.FlushByClose < 1 {
		t.Errorf("FlushByClose = %d, want >= 1", st.FlushByClose)
	}
	if st.FlushByTimer != 0 {
		t.Errorf("FlushByTimer = %d, want 0 (the drain must not ride the timer)", st.FlushByTimer)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("after drain: InFlight = %d, Queued = %d, want 0, 0", st.InFlight, st.Queued)
	}

	// both ports are dead
	if _, err := hc.PointQuery(geo.Point{}); err == nil {
		t.Error("HTTP port still answering after Close")
	}
	if c, err := client.DialTCP(srv.TCPAddr()); err == nil {
		if _, qerr := c.PointQuery(geo.Point{}); qerr == nil {
			t.Error("TCP port still answering after Close")
		}
		c.Close()
	}
}
