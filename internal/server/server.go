// Package server serves an engine.Engine over two transports sharing
// one request path: an HTTP+JSON API for interoperability and a
// length-prefixed binary TCP protocol (internal/protocol) for
// throughput. Both funnel into the engine, so concurrently arriving
// queries from either transport end up in the same qserve batches and
// the same admission control applies: an overloaded engine turns into
// HTTP 429 or the protocol's overloaded status, never an unbounded
// queue.
//
// Close is graceful: listeners stop accepting, the HTTP server drains
// its active requests, the engine flushes its accumulated batches and
// waits for every admitted request, and only then are idle TCP
// connections unblocked and reaped. A request that was admitted
// before Close began always receives its response.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/protocol"
)

// JSON wire bodies, shared with internal/client.

// PointBody is a point payload ({"x":..,"y":..}).
type PointBody struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// WindowBody is a window-query payload.
type WindowBody struct {
	MinX float64 `json:"minx"`
	MinY float64 `json:"miny"`
	MaxX float64 `json:"maxx"`
	MaxY float64 `json:"maxy"`
}

// KNNBody is a kNN-query payload.
type KNNBody struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	K int     `json:"k"`
}

// FoundBody answers a point query.
type FoundBody struct {
	Found bool `json:"found"`
}

// RebuildBody answers an update: whether it triggered a rebuild.
type RebuildBody struct {
	Rebuild bool `json:"rebuild"`
}

// PointsBody answers a window or kNN query.
type PointsBody struct {
	Points []PointBody `json:"points"`
}

// ErrorBody carries a handler error.
type ErrorBody struct {
	Error string `json:"error"`
}

// maxPointsPerFrame is the largest point count a binary response
// frame can carry within protocol.MaxFrame.
const maxPointsPerFrame = (protocol.MaxFrame - 2) / 16

// Server serves one engine over HTTP and/or TCP.
type Server struct {
	eng     *engine.Engine
	httpSrv *http.Server
	httpLn  net.Listener
	tcpLn   net.Listener

	// mu guards closed and conns. It is a leaf lock: nothing blocks
	// while holding it — Shutdown drains the engine and waits for
	// handlers only after releasing it (see the ordering comment
	// there), which is exactly what the lockorder analyzer checks.
	//elsi:lockorder
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	wg sync.WaitGroup // accept loops + TCP connection handlers
}

// New wraps eng. Call Start (or wire Handler/ServeTCP yourself), then
// Close to drain.
func New(eng *engine.Engine) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{})}
}

// Start listens and serves on the given addresses (":0" picks an
// ephemeral port; "" disables that transport). It returns once both
// listeners are up; serving continues until Shutdown/Close. The
// context bounds listener setup and becomes the base context of every
// HTTP request, so cancelling it after Start reaches in-flight
// handlers; it does not by itself stop the server — call Shutdown.
func (s *Server) Start(ctx context.Context, httpAddr, tcpAddr string) error {
	var lc net.ListenConfig
	if httpAddr != "" {
		ln, err := lc.Listen(ctx, "tcp", httpAddr)
		if err != nil {
			return err
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{
			Handler:     s.Handler(),
			BaseContext: func(net.Listener) context.Context { return ctx },
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				_ = err // listener torn down; nothing to surface
			}
		}()
	}
	if tcpAddr != "" {
		ln, err := lc.Listen(ctx, "tcp", tcpAddr)
		if err != nil {
			if s.httpLn != nil {
				s.httpLn.Close()
			}
			return err
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop(ln)
	}
	return nil
}

// HTTPAddr returns the bound HTTP address ("" when disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TCPAddr returns the bound binary-protocol address ("" when disabled).
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// Shutdown drains and shuts down: stop accepting, drain the engine,
// wait for HTTP handlers, then unblock idle TCP connections and wait
// for every handler to exit. The context bounds only the HTTP
// response-drain phase — admitted work is always flushed through the
// engine. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		s.wg.Wait()
		return nil
	}
	// 1. stop accepting on both transports
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.httpLn != nil {
		s.httpLn.Close()
	}
	// 2. drain the engine FIRST: it flushes the accumulated batches and
	// waits for every admitted request, releasing the HTTP and TCP
	// handlers parked inside it. (The reverse order would deadlock:
	// http.Server.Shutdown waits for handlers that are waiting for an
	// engine flush.) Handlers that reach the engine from here on get
	// ErrClosed and answer 503 / an error frame.
	s.eng.Close()
	// 3. wait for the HTTP handlers to finish writing their responses
	if s.httpSrv != nil {
		_ = s.httpSrv.Shutdown(ctx)
	}
	// 4. in-flight TCP requests have finished inside the engine; their
	// handlers may still be writing responses. An expired read
	// deadline unblocks only the idle readers — a handler mid-write
	// completes its frame before the next read fails.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Close is the io.Closer form of Shutdown with a 30-second bound on
// the HTTP response drain.
func (s *Server) Close() error {
	//lint:ignore ctxprop io.Closer compatibility wrapper; Shutdown is the context-aware form
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// --- HTTP transport -----------------------------------------------------

// Handler returns the HTTP API:
//
//	POST /query/point   {"x","y"}         -> {"found"}
//	POST /query/window  {"minx",...}      -> {"points":[{"x","y"},...]}
//	POST /query/knn     {"x","y","k"}     -> {"points":[...]}
//	POST /insert        {"x","y"}         -> {"rebuild"}
//	POST /delete        {"x","y"}         -> {"rebuild"}
//	GET  /stats                           -> engine.Stats
//
// Engine backpressure maps to 429, a closed engine to 503, malformed
// bodies to 400.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/point", s.handlePoint)
	mux.HandleFunc("POST /query/window", s.handleWindow)
	mux.HandleFunc("POST /query/knn", s.handleKNN)
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("POST /delete", s.handleDelete)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var in PointBody
	if !decodeJSON(w, r, &in) {
		return
	}
	found, err := s.eng.PointQuery(geo.Point{X: in.X, Y: in.Y})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FoundBody{Found: found})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	var in WindowBody
	if !decodeJSON(w, r, &in) {
		return
	}
	pts, err := s.eng.WindowQuery(geo.Rect{MinX: in.MinX, MinY: in.MinY, MaxX: in.MaxX, MaxY: in.MaxY})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toPointsBody(pts))
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var in KNNBody
	if !decodeJSON(w, r, &in) {
		return
	}
	pts, err := s.eng.KNN(geo.Point{X: in.X, Y: in.Y}, in.K)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toPointsBody(pts))
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var in PointBody
	if !decodeJSON(w, r, &in) {
		return
	}
	trig, err := s.eng.Insert(geo.Point{X: in.X, Y: in.Y})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RebuildBody{Rebuild: trig})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var in PointBody
	if !decodeJSON(w, r, &in) {
		return
	}
	trig, err := s.eng.Delete(geo.Point{X: in.X, Y: in.Y})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RebuildBody{Rebuild: trig})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func toPointsBody(pts []geo.Point) PointsBody {
	out := PointsBody{Points: make([]PointBody, len(pts))}
	for i, pt := range pts {
		out.Points[i] = PointBody{X: pt.X, Y: pt.Y}
	}
	return out
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, protocol.MaxFrame)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrOverloaded):
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: err.Error()})
	case errors.Is(err, engine.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorBody{Error: err.Error()})
	}
}

// --- binary TCP transport -----------------------------------------------

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// handleConn answers one frame at a time. A malformed request body
// gets an error response (the stream is still in sync); a framing
// violation — truncated stream, oversize length prefix — closes the
// connection, since resynchronization is impossible.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var respBuf []byte
	for {
		body, err := protocol.ReadFrame(br)
		if err != nil {
			return
		}
		var resp protocol.Response
		if req, err := protocol.DecodeRequest(body); err != nil {
			resp = protocol.Response{Status: protocol.StatusError, Kind: protocol.KindText, Text: err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		respBuf = protocol.AppendResponse(respBuf[:0], resp)
		if err := protocol.WriteFrame(bw, respBuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req protocol.Request) protocol.Response {
	switch req.Op {
	case protocol.OpPoint:
		found, err := s.eng.PointQuery(req.Pt)
		if err != nil {
			return errorResponse(err)
		}
		return protocol.Response{Status: protocol.StatusOK, Kind: protocol.KindBool, Bool: found}
	case protocol.OpWindow:
		pts, err := s.eng.WindowQuery(req.Win)
		if err != nil {
			return errorResponse(err)
		}
		return pointsResponse(pts)
	case protocol.OpKNN:
		pts, err := s.eng.KNN(req.Pt, req.K)
		if err != nil {
			return errorResponse(err)
		}
		return pointsResponse(pts)
	case protocol.OpInsert:
		trig, err := s.eng.Insert(req.Pt)
		if err != nil {
			return errorResponse(err)
		}
		return protocol.Response{Status: protocol.StatusOK, Kind: protocol.KindBool, Bool: trig}
	case protocol.OpDelete:
		trig, err := s.eng.Delete(req.Pt)
		if err != nil {
			return errorResponse(err)
		}
		return protocol.Response{Status: protocol.StatusOK, Kind: protocol.KindBool, Bool: trig}
	case protocol.OpStats:
		data, err := json.Marshal(s.eng.Stats())
		if err != nil {
			return errorResponse(err)
		}
		return protocol.Response{Status: protocol.StatusOK, Kind: protocol.KindText, Text: string(data)}
	default:
		return protocol.Response{Status: protocol.StatusError, Kind: protocol.KindText, Text: protocol.ErrBadOp.Error()}
	}
}

func pointsResponse(pts []geo.Point) protocol.Response {
	if len(pts) > maxPointsPerFrame {
		return protocol.Response{Status: protocol.StatusError, Kind: protocol.KindText, Text: "result exceeds the protocol frame cap; narrow the query"}
	}
	return protocol.Response{Status: protocol.StatusOK, Kind: protocol.KindPoints, Points: pts}
}

func errorResponse(err error) protocol.Response {
	if errors.Is(err, engine.ErrOverloaded) {
		return protocol.Response{Status: protocol.StatusOverloaded, Kind: protocol.KindNone}
	}
	return protocol.Response{Status: protocol.StatusError, Kind: protocol.KindText, Text: err.Error()}
}
