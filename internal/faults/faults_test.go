package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestUnarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("build/SP"); err != nil {
		t.Fatalf("unarmed Hit = %v, want nil", err)
	}
	if err := HitCtx(context.Background(), "build/SP"); err != nil {
		t.Fatalf("unarmed HitCtx = %v, want nil", err)
	}
	if got := Hits("build/SP"); got != 0 {
		t.Fatalf("Hits on unarmed point = %d, want 0", got)
	}
}

func TestErrorModeAndTimes(t *testing.T) {
	Reset()
	defer Reset()
	Enable("build/SP", Fault{Mode: ModeError, Times: 2})
	for i := 0; i < 2; i++ {
		err := Hit("build/SP")
		var inj *InjectedError
		if !errors.As(err, &inj) || inj.Point != "build/SP" {
			t.Fatalf("hit %d = %v, want InjectedError at build/SP", i, err)
		}
	}
	if err := Hit("build/SP"); err != nil {
		t.Fatalf("hit beyond Times = %v, want nil", err)
	}
	if got := Hits("build/SP"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	Enable("build/CL", Fault{Mode: ModePanic})
	defer func() {
		r := recover()
		p, ok := r.(*InjectedPanic)
		if !ok || p.Point != "build/CL" {
			t.Fatalf("recover() = %v, want InjectedPanic at build/CL", r)
		}
	}()
	Hit("build/CL")
	t.Fatal("Hit did not panic")
}

func TestBudgetModeBlocksUntilCancel(t *testing.T) {
	Reset()
	defer Reset()
	Enable("build/MR", Fault{Mode: ModeBudget})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := HitCtx(ctx, "build/MR")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget HitCtx = %v, want deadline exceeded", err)
	}
}

func TestBudgetModeWithoutContext(t *testing.T) {
	Reset()
	defer Reset()
	Enable("rebuild/background", Fault{Mode: ModeBudget, Delay: time.Millisecond})
	err := Hit("rebuild/background")
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("context-less budget Hit = %v, want InjectedError", err)
	}
}

func TestDelayModeProceeds(t *testing.T) {
	Reset()
	defer Reset()
	Enable("bounds/scan", Fault{Mode: ModeDelay, Delay: time.Millisecond})
	start := time.Now()
	if err := Hit("bounds/scan"); err != nil {
		t.Fatalf("delay Hit = %v, want nil", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay Hit returned before the configured delay")
	}
}

func TestDisableAndArmed(t *testing.T) {
	Reset()
	defer Reset()
	Enable("b", Fault{Mode: ModeError})
	Enable("a", Fault{Mode: ModeError})
	got := Armed()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Armed() = %v, want [a b]", got)
	}
	Disable("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("disabled Hit = %v, want nil", err)
	}
	Disable("b")
	if err := Hit("b"); err != nil {
		t.Fatalf("Hit after all disabled = %v, want nil", err)
	}
}

func TestParseSpec(t *testing.T) {
	Reset()
	defer Reset()
	err := ParseSpec("build/SP:error; build/CL:panic:2 ;bounds/scan:delay=2ms;build/MR:budget")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	got := Armed()
	want := []string{"bounds/scan", "build/CL", "build/MR", "build/SP"}
	if len(got) != len(want) {
		t.Fatalf("Armed() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Armed() = %v, want %v", got, want)
		}
	}
	var inj *InjectedError
	if err := Hit("build/SP"); !errors.As(err, &inj) {
		t.Fatalf("spec-armed error point = %v", err)
	}
}

func TestParseSpecRejectsBadEntries(t *testing.T) {
	Reset()
	defer Reset()
	for _, spec := range []string{
		"no-colon",
		"p:zap",
		"p:error:0",
		"p:error:x",
		"p:delay=nope",
		":error",
		"p:error:1:extra",
	} {
		if err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", spec)
		}
	}
}

func TestDeterministicTriggering(t *testing.T) {
	// The same arm + hit sequence produces the same trigger pattern
	// every time: no randomness is involved.
	for run := 0; run < 3; run++ {
		Reset()
		Enable("p", Fault{Mode: ModeError, Times: 3})
		var pattern []bool
		for i := 0; i < 6; i++ {
			pattern = append(pattern, Hit("p") != nil)
		}
		for i, fired := range pattern {
			want := i < 3
			if fired != want {
				t.Fatalf("run %d hit %d fired=%v, want %v", run, i, fired, want)
			}
		}
	}
	Reset()
}

func TestBudgetModeNeverExpiringContext(t *testing.T) {
	// A budget fault under context.Background() (nil Done channel)
	// cannot block forever: it degrades to sleep-and-error.
	defer Reset()
	Enable("p", Fault{Mode: ModeBudget, Delay: time.Millisecond})
	done := make(chan error, 1)
	go func() { done <- HitCtx(context.Background(), "p") }()
	select {
	case err := <-done:
		var ie *InjectedError
		if !errors.As(err, &ie) {
			t.Fatalf("err = %v, want *InjectedError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("budget fault hung on a never-expiring context")
	}
}
