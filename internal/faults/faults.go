// Package faults is a deterministic fault-injection registry for the
// build pipeline's robustness tests and for chaos runs of elsibench.
//
// Injection points are plain named call sites: a build stage calls
// faults.Hit("build/SP") (or HitCtx when it has a context) at its
// entry or inside its hot loop. With no faults armed the call is a
// single atomic load and returns nil, so the points stay compiled into
// production builds at negligible cost. Tests arm a point with Enable
// (or a whole spec string with ParseSpec) and the next hits trigger the
// configured failure mode:
//
//	error  — return a typed *InjectedError
//	panic  — panic with *InjectedPanic (exercises panic isolation)
//	delay  — sleep a fixed duration, then proceed
//	budget — block until the context is cancelled (exercises budgets);
//	         without a context, sleep Delay and return the typed error
//
// Triggering is fully deterministic: a fault fires on its first Times
// hits (Times == 0 means every hit), counted per point under a lock.
// There is no randomness anywhere in this package, so runs are
// reproducible by construction.
//
// Injection-point names form a small namespace, documented in
// DESIGN.md §9: "build/<METHOD>" at pool-builder entry (SP, CL, MR,
// RS, RL, RSP, OG), "bounds/scan" in the empirical error-bound scan,
// and "rebuild/background" in the background rebuild goroutine.
package faults

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a failure mode an armed injection point produces.
type Mode int

const (
	// ModeError returns an *InjectedError from the hit.
	ModeError Mode = iota
	// ModePanic panics with an *InjectedPanic value.
	ModePanic
	// ModeDelay sleeps Fault.Delay, then lets the hit proceed.
	ModeDelay
	// ModeBudget blocks until the hit's context is cancelled and
	// returns the context's error, simulating a stage that blows its
	// build budget. Without a context it sleeps Fault.Delay and
	// returns an *InjectedError.
	ModeBudget
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeBudget:
		return "budget"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Fault configures one armed injection point.
type Fault struct {
	// Mode selects the failure mode.
	Mode Mode
	// Times limits the fault to the first Times hits of the point;
	// 0 means every hit triggers.
	Times int
	// Delay is the sleep for ModeDelay and for ModeBudget hits that
	// have no context. Zero defaults to 10ms for those modes.
	Delay time.Duration
}

// InjectedError is the typed error returned by ModeError (and
// context-less ModeBudget) hits.
type InjectedError struct {
	// Point is the injection-point name that fired.
	Point string
}

// Error implements error.
func (e *InjectedError) Error() string {
	return "faults: injected error at " + e.Point
}

// InjectedPanic is the value ModePanic hits panic with.
type InjectedPanic struct {
	// Point is the injection-point name that fired.
	Point string
}

// String implements fmt.Stringer so recovered panic values print
// readably inside PanicError messages.
func (p *InjectedPanic) String() string {
	return "faults: injected panic at " + p.Point
}

type armed struct {
	fault Fault
	hits  int
}

var (
	// active is the lock-free fast path: zero armed faults means every
	// Hit returns nil after one atomic load.
	active atomic.Bool

	mu    sync.Mutex
	table map[string]*armed
)

// Enable arms the named injection point. Re-enabling a point replaces
// its fault and resets its hit counter.
func Enable(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[string]*armed)
	}
	table[name] = &armed{fault: f}
	active.Store(true)
}

// Disable disarms the named injection point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(table, name)
	if len(table) == 0 {
		active.Store(false)
	}
}

// Reset disarms every injection point. Tests defer it after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	table = nil
	active.Store(false)
}

// Hits reports how many times the named point has been hit since it
// was armed (triggering or not). Zero for unarmed points.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if a, ok := table[name]; ok {
		return a.hits
	}
	return 0
}

// Armed lists the currently armed point names, sorted.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(table))
	for name := range table {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// trigger checks the named point and, if it should fire, returns its
// fault. The hit counter advances under the lock, so first-N-hits
// semantics hold even with concurrent hits.
func trigger(name string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	a, ok := table[name]
	if !ok {
		return Fault{}, false
	}
	a.hits++
	if a.fault.Times > 0 && a.hits > a.fault.Times {
		return Fault{}, false
	}
	return a.fault, true
}

func (f Fault) delay() time.Duration {
	if f.Delay > 0 {
		return f.Delay
	}
	return 10 * time.Millisecond
}

// Hit is the context-less injection point. It returns nil unless the
// point is armed and fires, in which case it errors, panics, or
// delays per the armed fault.
func Hit(name string) error {
	if !active.Load() {
		return nil
	}
	f, fire := trigger(name)
	if !fire {
		return nil
	}
	switch f.Mode {
	case ModePanic:
		panic(&InjectedPanic{Point: name})
	case ModeDelay:
		time.Sleep(f.delay())
		return nil
	case ModeBudget:
		time.Sleep(f.delay())
		return &InjectedError{Point: name}
	default:
		return &InjectedError{Point: name}
	}
}

// HitCtx is the injection point for call sites that carry a context.
// ModeBudget blocks until ctx is done and returns its error — unless
// ctx can never be done (context.Background()), in which case it
// degrades to Hit's sleep-and-error so it cannot hang the caller. The
// other modes behave as in Hit.
func HitCtx(ctx context.Context, name string) error {
	if !active.Load() {
		return nil
	}
	f, fire := trigger(name)
	if !fire {
		return nil
	}
	switch f.Mode {
	case ModePanic:
		panic(&InjectedPanic{Point: name})
	case ModeDelay:
		t := time.NewTimer(f.delay())
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	case ModeBudget:
		if ctx.Done() == nil {
			// the context can never expire (context.Background());
			// blocking would hang forever, so degrade to Hit's
			// behaviour: burn the delay and fail the attempt
			time.Sleep(f.delay())
			return &InjectedError{Point: name}
		}
		<-ctx.Done()
		return ctx.Err()
	default:
		return &InjectedError{Point: name}
	}
}

// ParseSpec arms every fault in a ';'-separated chaos spec, the format
// of elsibench's -faults flag. Each entry is
//
//	<point>:<mode>[:<times>]
//
// where mode is error, panic, budget, or delay=<duration> (Go duration
// syntax), and the optional times bounds the fault to the first N hits:
//
//	build/SP:error
//	build/CL:panic:2;rebuild/background:error:3
//	bounds/scan:delay=50ms
func ParseSpec(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return fmt.Errorf("faults: bad spec entry %q (want point:mode[:times])", entry)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return fmt.Errorf("faults: empty point name in %q", entry)
		}
		var f Fault
		modeStr := strings.TrimSpace(parts[1])
		switch {
		case modeStr == "error":
			f.Mode = ModeError
		case modeStr == "panic":
			f.Mode = ModePanic
		case modeStr == "budget":
			f.Mode = ModeBudget
		case strings.HasPrefix(modeStr, "delay="):
			d, err := time.ParseDuration(strings.TrimPrefix(modeStr, "delay="))
			if err != nil {
				return fmt.Errorf("faults: bad delay in %q: %v", entry, err)
			}
			f.Mode = ModeDelay
			f.Delay = d
		default:
			return fmt.Errorf("faults: unknown mode %q in %q", modeStr, entry)
		}
		if len(parts) == 3 {
			times, err := strconv.Atoi(strings.TrimSpace(parts[2]))
			if err != nil || times < 1 {
				return fmt.Errorf("faults: bad times in %q (want positive integer)", entry)
			}
			f.Times = times
		}
		Enable(name, f)
	}
	return nil
}
