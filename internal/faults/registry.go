package faults

// Point registry: every injection point in the tree self-registers a
// name and a one-line description, so tools (elsibench -faults list)
// can enumerate the namespace instead of making callers guess strings.
// Registration is init-time only in practice, but the table is locked
// so late registrations (tests) stay safe.

import (
	"sort"
	"sync"
)

// PointInfo describes one registered injection point.
type PointInfo struct {
	// Name is the injection-point name passed to Hit/HitCtx/Enable.
	Name string
	// Desc is a one-line human-readable description of the call site.
	Desc string
}

var (
	regMu  sync.Mutex
	regTab map[string]string
)

// Register records an injection-point name with a one-line description.
// Packages that own a point call it from init. Re-registering a name
// replaces its description.
func Register(name, desc string) {
	regMu.Lock()
	defer regMu.Unlock()
	if regTab == nil {
		regTab = make(map[string]string)
	}
	regTab[name] = desc
}

// Points lists every registered injection point, sorted by name.
func Points() []PointInfo {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]PointInfo, 0, len(regTab))
	for name, desc := range regTab {
		out = append(out, PointInfo{Name: name, Desc: desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// The build-pipeline points predate the registry and live in packages
// that faults cannot import (the injection sites call into this
// package), so they are registered here, next to the namespace doc in
// this package's comment.
func init() {
	Register("build/SP", "sort-predict pool builder entry")
	Register("build/CL", "cluster pool builder entry")
	Register("build/MR", "map-reduce pool builder entry")
	Register("build/RS", "range-shard pool builder entry")
	Register("build/RL", "reinforcement pool builder entry")
	Register("build/RSP", "radix-spline pool builder entry")
	Register("build/OG", "original (direct) builder entry")
	Register("bounds/scan", "empirical error-bound scan loop")
	Register("rebuild/background", "background rebuild goroutine, pre-swap")
}
