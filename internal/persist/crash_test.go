package persist

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"elsi/internal/base"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/snapshot"
	"elsi/internal/wal"
	"elsi/internal/zm"
)

// crashConfig builds a store config over the ZM family under
// SyncAlways, so "Append returned nil" and "durable" coincide and the
// golden reference is exact.
func crashConfig(dir string, shards int) Config {
	factory := func() rebuild.Rebuildable {
		return zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 64)},
			Fanout:  4,
		})
	}
	return Config{
		Dir:     dir,
		WAL:     wal.Options{Policy: wal.SyncAlways, SegmentBytes: 1 << 12},
		Shards:  shards,
		Space:   geo.UnitRect,
		Factory: factory,
		MapKey:  factory().(*zm.Index).MapKey,
	}
}

// golden is the never-crashed in-memory reference: the exact live
// point set, updated only by acknowledged updates.
type golden struct {
	live map[geo.Point]bool
}

func newGolden(pts []geo.Point) *golden {
	g := &golden{live: make(map[geo.Point]bool, len(pts))}
	for _, p := range pts {
		g.live[p] = true
	}
	return g
}

func (g *golden) insert(p geo.Point) { g.live[p] = true }
func (g *golden) delete(p geo.Point) { delete(g.live, p) }

func (g *golden) window(w geo.Rect) []geo.Point {
	var out []geo.Point
	for p := range g.live {
		if w.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

func (g *golden) knn(q geo.Point, k int) []geo.Point {
	type cand struct {
		p geo.Point
		d float64
	}
	cands := make([]cand, 0, len(g.live))
	for p := range g.live {
		dx, dy := p.X-q.X, p.Y-q.Y
		cands = append(cands, cand{p, dx*dx + dy*dy})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		if cands[i].p.X != cands[j].p.X {
			return cands[i].p.X < cands[j].p.X
		}
		return cands[i].p.Y < cands[j].p.Y
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]geo.Point, k)
	for i := range out {
		out[i] = cands[i].p
	}
	return out
}

// crashQueries is the fixed query workload both sides answer.
type crashQueries struct {
	probes []geo.Point // point queries: mix of live and absent
	wins   []geo.Rect
	knnQ   []geo.Point
	knnK   []int
}

func makeQueries(seed int64, sample []geo.Point) crashQueries {
	rng := rand.New(rand.NewSource(seed))
	q := crashQueries{}
	q.probes = append(q.probes, sample[:min(200, len(sample))]...)
	for i := 0; i < 50; i++ {
		q.probes = append(q.probes, geo.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	for i := 0; i < 25; i++ {
		x, y := rng.Float64()*0.85, rng.Float64()*0.85
		q.wins = append(q.wins, geo.Rect{MinX: x, MinY: y, MaxX: x + 0.12, MaxY: y + 0.12})
	}
	for i := 0; i < 25; i++ {
		q.knnQ = append(q.knnQ, geo.Point{X: rng.Float64(), Y: rng.Float64()})
		q.knnK = append(q.knnK, 1+rng.Intn(16))
	}
	return q
}

func appendCanonPts(b []byte, pts []geo.Point) []byte {
	cp := append([]geo.Point(nil), pts...)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].X != cp[j].X {
			return cp[i].X < cp[j].X
		}
		return cp[i].Y < cp[j].Y
	})
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cp)))
	for _, p := range cp {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Y))
	}
	return b
}

// canonStore serializes the store's answers to q into canonical bytes
// (windows sorted; kNN reduced to the sorted result set).
func canonStore(s *Store, q crashQueries) []byte {
	var b []byte
	outB := s.PointBatch(q.probes, make([]bool, len(q.probes)))
	for _, v := range outB {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for _, res := range s.WindowBatch(q.wins, make([][]geo.Point, len(q.wins))) {
		b = appendCanonPts(b, res)
	}
	for _, res := range s.KNNVarBatch(q.knnQ, q.knnK, make([][]geo.Point, len(q.knnQ))) {
		b = appendCanonPts(b, res)
	}
	return b
}

// canonGolden serializes the golden reference's answers to the same
// byte form.
func canonGolden(g *golden, q crashQueries) []byte {
	var b []byte
	for _, p := range q.probes {
		if g.live[p] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for _, w := range q.wins {
		b = appendCanonPts(b, g.window(w))
	}
	for i, qp := range q.knnQ {
		b = appendCanonPts(b, g.knn(qp, q.knnK[i]))
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func basePoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// runUpdates drives nUp mixed updates through the store, mirroring
// every acknowledged one into the golden reference. midHook runs
// after half the updates (the crash harness arms its fault there).
func runUpdates(t *testing.T, s *Store, g *golden, seed int64, nUp int, midHook func()) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var live []geo.Point
	for p := range g.live {
		live = append(live, p)
	}
	sortPts(live) // map order is random; fix it for determinism
	for i := 0; i < nUp; i++ {
		if i == nUp/2 && midHook != nil {
			midHook()
		}
		if rng.Float64() < 0.6 || len(live) == 0 {
			p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			sh := s.Router().ShardIndexOf(p)
			s.Insert(p)
			if s.ShardDead(sh) == nil {
				g.insert(p)
				live = append(live, p)
			}
		} else {
			j := rng.Intn(len(live))
			p := live[j]
			sh := s.Router().ShardIndexOf(p)
			s.Delete(p)
			if s.ShardDead(sh) == nil {
				g.delete(p)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}
}

// TestCrashMatrix is the acceptance property: for every registered
// crash point and for both shard layouts, kill-then-recover yields
// query answers byte-identical to the golden never-crashed reference,
// and recovery trains zero models.
func TestCrashMatrix(t *testing.T) {
	points := []string{
		"wal/append",
		"wal/fsync",
		"snapshot/write",
		"snapshot/rename",
		"recover/replay",
	}
	for _, shards := range []int{1, 4} {
		for _, point := range points {
			point := point
			t.Run(point+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				defer faults.Reset()
				dir := t.TempDir()
				base := basePoints(2000, 1)
				s, err := Create(crashConfig(dir, shards), base)
				if err != nil {
					t.Fatal(err)
				}
				g := newGolden(base)

				switch point {
				case "wal/append", "wal/fsync":
					// The crash fires on one mid-run update; that
					// update and every later one on its shard is
					// unacknowledged and stays out of the golden.
					runUpdates(t, s, g, 2, 600, func() {
						faults.Enable(point, faults.Fault{Mode: faults.ModeError, Times: 1})
					})
					if s.Err() == nil {
						t.Fatal("crash point never fired")
					}
				default:
					// Clean updates with a mid-run snapshot+trim, then
					// the crash fires at the next snapshot attempt
					// (write or rename) or during the next recovery.
					runUpdates(t, s, g, 2, 600, func() {
						if err := s.Snapshot(); err != nil {
							t.Errorf("mid-run snapshot: %v", err)
						}
					})
					if point != "recover/replay" {
						faults.Enable(point, faults.Fault{Mode: faults.ModeError, Times: 1})
						if err := s.Snapshot(); err == nil {
							t.Fatal("snapshot survived injected crash")
						}
					}
				}
				s.Kill()

				if point == "recover/replay" {
					faults.Enable(point, faults.Fault{Mode: faults.ModeError, Times: 1})
					if _, err := Open(crashConfig(dir, shards)); err == nil {
						t.Fatal("open survived injected replay crash")
					}
				}
				faults.Reset()

				trainings := rmi.Trainings()
				s2, err := Open(crashConfig(dir, shards))
				if err != nil {
					t.Fatal(err)
				}
				defer s2.Close()
				if got := rmi.Trainings(); got != trainings {
					t.Fatalf("recovery trained %d models", got-trainings)
				}
				if s2.NumShards() != s.NumShards() {
					t.Fatalf("recovered %d shards, want %d", s2.NumShards(), s.NumShards())
				}

				q := makeQueries(3, base)
				want := canonGolden(g, q)
				got := canonStore(s2, q)
				if string(got) != string(want) {
					t.Fatal("recovered store diverges from golden reference")
				}

				// The recovered store is live: more updates and another
				// recovery cycle keep matching.
				runUpdates(t, s2, g, 4, 100, nil)
				if err := s2.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				s3, err := Open(crashConfig(dir, shards))
				if err != nil {
					t.Fatal(err)
				}
				defer s3.Close()
				if string(canonStore(s3, q)) != string(canonGolden(g, q)) {
					t.Fatal("second recovery diverges from golden reference")
				}
			})
		}
	}
}

// TestRecoveryCorruptWALFailsLoudly flips a bit in a non-tail WAL
// record: recovery must fail with the typed *wal.CorruptError, never
// silently drop the damaged suffix.
func TestRecoveryCorruptWALFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(crashConfig(dir, 1), basePoints(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	g := newGolden(basePoints(500, 1))
	runUpdates(t, s, g, 2, 50, nil)
	s.Kill()

	walDir := filepath.Join(dir, shardDirName(0), walSubdir)
	ents, err := os.ReadDir(walDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("wal dir: %v (%d entries)", err, len(ents))
	}
	path := filepath.Join(walDir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0x01 // payload byte of the first record: mid-log damage
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(crashConfig(dir, 1))
	var ce *wal.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *wal.CorruptError, got %v", err)
	}
}

// TestRecoveryCorruptSnapshotFailsLoudly mirrors it for the snapshot:
// a flipped bit must surface as a typed *snapshot.FormatError.
func TestRecoveryCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(crashConfig(dir, 1), basePoints(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	name, _, err := snapshot.Latest(filepath.Join(dir, shardDirName(0)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(crashConfig(dir, 1))
	var fe *snapshot.FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("want *snapshot.FormatError, got %v", err)
	}
}
