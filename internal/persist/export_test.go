package persist

// ShardDead exposes shard i's sticky WAL error to the crash harness:
// an update is acknowledged (and belongs in the golden reference) iff
// its shard's log is alive right after the call.
func (s *Store) ShardDead(i int) error { return s.mgrs[i].log.Dead() }

// NumShards reports the store's shard count.
func (s *Store) NumShards() int { return len(s.mgrs) }
