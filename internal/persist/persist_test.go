package persist

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rebuild"
	"elsi/internal/snapshot"
)

func TestCreateOpenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	base := basePoints(1500, 1)
	cfg := crashConfig(dir, 2)
	s, err := Create(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists false after Create")
	}
	if _, err := Create(cfg, base); err == nil {
		t.Fatal("Create over an existing store succeeded")
	}
	g := newGolden(base)
	runUpdates(t, s, g, 2, 200, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if len(rec.Shards) != s2.NumShards() {
		t.Fatalf("recovery info covers %d shards", len(rec.Shards))
	}
	for _, sr := range rec.Shards {
		// Close snapshots every shard, so recovery replays nothing.
		if sr.WALRecords != 0 || sr.TornTail {
			t.Fatalf("shard %d replayed %d records after clean close", sr.Shard, sr.WALRecords)
		}
		if sr.SnapshotBytes == 0 {
			t.Fatalf("shard %d recovered from an empty snapshot", sr.Shard)
		}
	}
	q := makeQueries(3, base)
	if string(canonStore(s2, q)) != string(canonGolden(g, q)) {
		t.Fatal("reopened store diverges")
	}
}

func TestOpenWrongFamilyRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(crashConfig(dir, 1), basePoints(300, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	cfg := crashConfig(dir, 1)
	cfg.Factory = func() rebuild.Rebuildable { return index.NewBruteForce() }
	cfg.MapKey = func(p geo.Point) float64 { return p.X }
	_, err = Open(cfg)
	if err == nil || !strings.Contains(err.Error(), "family") {
		t.Fatalf("family mismatch not rejected: %v", err)
	}
}

func TestOpenMissingStore(t *testing.T) {
	if _, err := Open(crashConfig(t.TempDir(), 1)); err == nil {
		t.Fatal("open of an empty directory succeeded")
	}
}

// TestSnapshotOnSwap is the tentpole wiring property: a background
// rebuild swap triggers a snapshot, after which the WAL prefix it
// covers is trimmed, so recovery replays (at most) the post-swap tail.
func TestSnapshotOnSwap(t *testing.T) {
	dir := t.TempDir()
	cfg := crashConfig(dir, 1)
	// Tiny segments so covered segments actually become trimmable.
	cfg.WAL.SegmentBytes = 8 * 33
	base := basePoints(1000, 1)
	s, err := Create(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := newGolden(base)
	runUpdates(t, s, g, 2, 120, nil)

	snapDir := filepath.Join(dir, shardDirName(0))
	_, before, err := snapshot.Latest(snapDir)
	if err != nil {
		t.Fatal(err)
	}

	proc := s.Router().Processor(0)
	proc.Rebuild() // background: swap fires OnSwap
	proc.WaitRebuild()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, lsn, err := snapshot.Latest(snapDir)
		if err == nil && lsn > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot after rebuild swap (still at LSN %d)", before)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays only what arrived after the swap: nothing.
	s.Kill()
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); rec.Shards[0].WALRecords != 0 {
		t.Fatalf("replayed %d records despite post-swap snapshot", rec.Shards[0].WALRecords)
	}
	q := makeQueries(3, base)
	if string(canonStore(s2, q)) != string(canonGolden(g, q)) {
		t.Fatal("recovered store diverges after swap snapshot")
	}
}

// TestConcurrentUpdatesAndQueries exercises the store's locking under
// the race detector: parallel writers on all shards, batch queries,
// and a forced snapshot in the middle.
func TestConcurrentUpdatesAndQueries(t *testing.T) {
	dir := t.TempDir()
	base := basePoints(1000, 1)
	s, err := Create(crashConfig(dir, 4), base)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pts := basePoints(300, int64(10+w))
			for i, p := range pts {
				s.Insert(p)
				if i%3 == 0 {
					s.Delete(p)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := makeQueries(3, base)
		for i := 0; i < 20; i++ {
			canonStore(s, q)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Snapshot(); err != nil {
			t.Errorf("snapshot during load: %v", err)
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acknowledged under SyncAlways survives.
	s2, err := Open(crashConfig(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Router().Len() != s.Router().Len() {
		t.Fatalf("recovered %d points, want %d", s2.Router().Len(), s.Router().Len())
	}
}

// TestTornTailReportedInRecovery checks the RecoveryInfo plumbing end
// to end: an injected append crash leaves a torn tail, and Open
// reports it for the damaged shard.
func TestTornTailReportedInRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(crashConfig(dir, 1), basePoints(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer faults.Reset()
	g := newGolden(basePoints(500, 1))
	runUpdates(t, s, g, 2, 40, func() {
		faults.Enable("wal/append", faults.Fault{Mode: faults.ModeError, Times: 1})
	})
	if s.Err() == nil {
		t.Fatal("crash never fired")
	}
	s.Kill()

	s2, err := Open(crashConfig(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovery().Shards[0].TornTail {
		t.Fatal("torn tail not reported in recovery info")
	}
	q := makeQueries(3, basePoints(500, 1))
	if string(canonStore(s2, q)) != string(canonGolden(g, q)) {
		t.Fatal("recovered store diverges after torn tail")
	}
}

// TestUnacknowledgedUpdateIsInvisible pins the acknowledgement
// contract: an update whose WAL append crashed was never applied, so
// it must not surface after recovery.
func TestUnacknowledgedUpdateIsInvisible(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	s, err := Create(crashConfig(dir, 1), basePoints(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable("wal/append", faults.Fault{Mode: faults.ModeError, Times: 1})
	p := geo.Point{X: 0.123456, Y: 0.654321}
	s.Insert(p)
	if s.ShardDead(0) == nil {
		t.Fatal("crash never fired")
	}
	s.Kill()
	faults.Reset()

	s2, err := Open(crashConfig(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.PointBatch([]geo.Point{p}, make([]bool, 1)); got[0] {
		t.Fatal("unacknowledged insert visible after recovery")
	}
}
