package persist

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/grid"
	"elsi/internal/index"
	"elsi/internal/kdb"
	"elsi/internal/lisa"
	"elsi/internal/mlindex"
	"elsi/internal/rmi"
	"elsi/internal/rsmi"
	"elsi/internal/rtree"
	"elsi/internal/snapshot"
	"elsi/internal/zm"
)

// stateFamilies enumerates every 2-D index family with a constructor
// closure, so the roundtrip property below runs against all of them
// with one body. Each call returns a fresh, unbuilt instance of the
// same configuration — exactly how recovery constructs the index it
// overlays the persisted state onto.
func stateFamilies() map[string]func() index.Index {
	builder := func() base.ModelBuilder {
		return &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 64)}
	}
	return map[string]func() index.Index{
		"zm": func() index.Index {
			return zm.New(zm.Config{Space: geo.UnitRect, Builder: builder(), Fanout: 4})
		},
		"mlindex": func() index.Index {
			return mlindex.New(mlindex.Config{Space: geo.UnitRect, Builder: builder(), Refs: 8, Fanout: 4, Seed: 1})
		},
		"lisa": func() index.Index {
			return lisa.New(lisa.Config{Space: geo.UnitRect, Builder: builder()})
		},
		"rsmi": func() index.Index {
			return rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: builder(), Fanout: 4, LeafCap: 500})
		},
		"grid":   func() index.Index { return grid.New(geo.UnitRect) },
		"kdb":    func() index.Index { return kdb.New(geo.UnitRect) },
		"hrr":    func() index.Index { return rtree.NewHRR(geo.UnitRect) },
		"rrstar": func() index.Index { return rtree.NewRRStar(geo.UnitRect) },
		"brute":  func() index.Index { return index.NewBruteForce() },
	}
}

func statePoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func sortPts(ps []geo.Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

func samePts(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	sortPts(a)
	sortPts(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStaterRoundtripAllFamilies is the central persistence property:
// for every family, build → serialize → restore onto a fresh instance
// yields an index whose serialized state and query answers are
// identical to the original's, with zero model training on restore.
func TestStaterRoundtripAllFamilies(t *testing.T) {
	pts := statePoints(3000, 42)
	qrng := rand.New(rand.NewSource(7))
	wins := make([]geo.Rect, 20)
	for i := range wins {
		x, y := qrng.Float64()*0.9, qrng.Float64()*0.9
		wins[i] = geo.Rect{MinX: x, MinY: y, MaxX: x + 0.08, MaxY: y + 0.08}
	}
	qpts := statePoints(30, 99)

	for name, mk := range stateFamilies() {
		t.Run(name, func(t *testing.T) {
			orig := mk()
			if err := orig.Build(pts); err != nil {
				t.Fatal(err)
			}
			st, ok := orig.(snapshot.Stater)
			if !ok {
				t.Fatalf("%s does not implement snapshot.Stater", name)
			}
			blob, err := st.StateAppend(nil)
			if err != nil {
				t.Fatal(err)
			}

			restored := mk()
			before := rmi.Trainings()
			if err := restored.(snapshot.Stater).RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			if got := rmi.Trainings(); got != before {
				t.Fatalf("restore trained %d models", got-before)
			}

			if restored.Len() != orig.Len() {
				t.Fatalf("Len %d, want %d", restored.Len(), orig.Len())
			}
			// Re-serializing the restored index must reproduce the
			// exact bytes: nothing was lost or reordered.
			blob2, err := restored.(snapshot.Stater).StateAppend(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("re-encoded state differs: %d vs %d bytes", len(blob), len(blob2))
			}

			for i, p := range pts[:200] {
				if !restored.PointQuery(p) {
					t.Fatalf("stored point %d missing after restore", i)
				}
			}
			for i, w := range wins {
				if !samePts(orig.WindowQuery(w), restored.WindowQuery(w)) {
					t.Fatalf("window %d differs after restore", i)
				}
			}
			for i, q := range qpts {
				a, b := orig.KNN(q, 10), restored.KNN(q, 10)
				if !samePts(a, b) {
					t.Fatalf("kNN %d differs after restore", i)
				}
			}
		})
	}
}

// TestStaterHostileInput feeds damaged state blobs to every family's
// RestoreState: truncations must fail with an error and bit flips must
// never panic (they may decode to a valid different state, but any
// structural inconsistency — unsorted keys, dangling counts — must be
// rejected, not trusted).
func TestStaterHostileInput(t *testing.T) {
	pts := statePoints(800, 11)
	for name, mk := range stateFamilies() {
		t.Run(name, func(t *testing.T) {
			orig := mk()
			if err := orig.Build(pts); err != nil {
				t.Fatal(err)
			}
			blob, err := orig.(snapshot.Stater).StateAppend(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
				cut := int(float64(len(blob)) * frac)
				if cut >= len(blob) {
					cut = len(blob) - 1
				}
				if err := mk().(snapshot.Stater).RestoreState(blob[:cut]); err == nil {
					t.Fatalf("truncation to %d/%d bytes accepted", cut, len(blob))
				}
			}
			// Trailing garbage must be rejected too.
			if err := mk().(snapshot.Stater).RestoreState(append(append([]byte(nil), blob...), 0xEE)); err == nil {
				t.Fatal("trailing garbage accepted")
			}
			// Bit flips: every outcome except a panic is acceptable.
			step := len(blob)/97 + 1
			for off := 0; off < len(blob); off += step {
				mut := append([]byte(nil), blob...)
				mut[off] ^= 0x20
				_ = mk().(snapshot.Stater).RestoreState(mut)
			}
		})
	}
}
