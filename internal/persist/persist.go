// Package persist is the durability layer: it wraps the sharded
// router (internal/shard) with one write-ahead log and one snapshot
// chain per shard, so an engine restart is an IO problem instead of a
// retraining problem. Updates are logged before they are applied —
// under wal.SyncAlways an acknowledged update is a durable update —
// and every background rebuild swap triggers a snapshot of the
// freshly trained index, after which the covered WAL prefix is
// trimmed. Recovery loads the latest snapshot per shard and replays
// the WAL tail through the processor's replay path, which never
// trains a model.
//
// On disk a store is
//
//	dir/
//	  MANIFEST            versioned container: family, space, ranges
//	  shard-0000/
//	    snap-<lsn>.snap   index state + processor state at cut LSN
//	    wal/wal-*.seg     updates after the cut
//	  shard-0001/
//	    ...
//
// The MANIFEST pins the Hilbert key-range partition so a recovered
// router scatters queries exactly as the original did; shard
// directories are independent, so recovery is parallel and a torn
// shard fails without corrupting its neighbours.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"elsi/internal/curve"
	"elsi/internal/engine"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/rebuild"
	"elsi/internal/shard"
	"elsi/internal/snapshot"
	"elsi/internal/wal"
)

func init() {
	faults.Register("recover/replay", "WAL replay during recovery: crash mid-replay before the engine is live")
}

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	payloadVersion  = 1
	walSubdir       = "wal"
)

func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// Config describes a persistent store. Everything that holds code —
// the index factory, the key map, the predictor — comes from the
// caller on every open, exactly like snapshot.Stater restores: only
// trained state lives on disk.
type Config struct {
	// Dir is the store's root directory.
	Dir string
	// WAL configures the per-shard logs (fsync policy, group-commit
	// interval, segment size).
	WAL wal.Options
	// Shards is the desired shard count for Create; Open recovers
	// however many shards the manifest records.
	Shards int
	// Space is the data space; must match the manifest on Open.
	Space geo.Rect
	// Router sizes the recovered/created router (workers, pruning
	// depths). Its Shards field is ignored in favour of Config.Shards.
	Router shard.Config
	// Factory constructs an unbuilt index of the persisted family.
	Factory func() rebuild.Rebuildable
	// MapKey is the processor's 1-D key map (same as at create time).
	MapKey func(geo.Point) float64
	// Pred is the rebuild predictor; nil disables learned triggering.
	Pred *rebuild.Predictor
	// Fu is the per-shard predictor check frequency (0 = default).
	Fu int
	// UseBuiltin routes updates through the index's own
	// Inserter/Deleter instead of the delta list, as at create time.
	UseBuiltin bool
	// Configure, when non-nil, runs on every processor after
	// construction or recovery (install Retry policies etc.).
	Configure func(p *rebuild.Processor)
}

// Exists reports whether dir already holds a store (a MANIFEST).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// ShardRecovery is one shard's recovery timeline.
type ShardRecovery struct {
	Shard         int
	SnapshotLSN   uint64        // cut LSN of the snapshot loaded
	SnapshotBytes int           // payload size of that snapshot
	WALRecords    int           // records replayed from the WAL tail
	TornTail      bool          // WAL ended in a truncated torn frame
	Load          time.Duration // snapshot read + state restore
	Replay        time.Duration // WAL scan + replay
}

// RecoveryInfo reports what Open did.
type RecoveryInfo struct {
	Shards []ShardRecovery
	Total  time.Duration
}

// mgr owns one shard's durability: its WAL, its snapshot directory,
// and the worker goroutine that snapshots after every rebuild swap.
type mgr struct {
	shardID int
	dir     string // shard directory; snapshots live here
	family  string

	// mu orders WAL appends with their application to the processor:
	// every update holds it across Append+apply, and the snapshot cut
	// reads NextLSN and captures the processor under it, so a
	// snapshot's cut LSN exactly covers the applied prefix.
	// Lock order: snapMu > mu > (wal.Log.mu | Processor.mu).
	//
	//elsi:lockorder
	mu   sync.Mutex
	log  *wal.Log
	proc *rebuild.Processor

	// snapMu serializes snapshot attempts (worker, forced, close).
	//
	//elsi:lockorder
	snapMu sync.Mutex

	snapReq chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup

	// errMu guards err, the first asynchronous snapshot failure.
	//
	//elsi:lockorder
	errMu sync.Mutex
	err   error
}

func (m *mgr) noteErr(err error) {
	m.errMu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.errMu.Unlock()
}

func (m *mgr) firstErr() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// encodeIndex serializes the wrapped index through its Stater
// implementation; called with the processor lock held so the bytes
// match the captured processor state.
func encodeIndex(idx rebuild.Rebuildable) ([]byte, error) {
	st, ok := idx.(snapshot.Stater)
	if !ok {
		return nil, fmt.Errorf("persist: index family %q does not implement snapshot.Stater", idx.Name())
	}
	return st.StateAppend(nil)
}

// takeSnapshot writes a snapshot covering every applied record, then
// trims the WAL prefix it covers. The capture runs under mu (no
// update can slip between the cut LSN and the state); the write and
// trim run outside it so fsyncs never block the update path.
func (m *mgr) takeSnapshot() error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	m.mu.Lock()
	cut := m.log.NextLSN() - 1
	st, idxBytes, err := m.proc.CaptureState(encodeIndex)
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("persist: shard %d capture: %w", m.shardID, err)
	}

	payload := snapshot.AppendU8(nil, payloadVersion)
	payload = snapshot.AppendString(payload, m.family)
	payload = snapshot.AppendU64(payload, cut)
	payload = snapshot.AppendBytes(payload, idxBytes)
	payload = rebuild.AppendState(payload, st)

	path := filepath.Join(m.dir, snapshot.Name(cut))
	if err := snapshot.Write(path, payload); err != nil {
		return fmt.Errorf("persist: shard %d snapshot: %w", m.shardID, err)
	}
	// Only now — with the covering snapshot durable — may older
	// snapshots and covered WAL segments go.
	if err := snapshot.GC(m.dir, cut); err != nil {
		return fmt.Errorf("persist: shard %d snapshot GC: %w", m.shardID, err)
	}
	if err := m.log.TrimThrough(cut); err != nil && !errors.Is(err, wal.ErrClosed) {
		return fmt.Errorf("persist: shard %d wal trim: %w", m.shardID, err)
	}
	return nil
}

// run is the shard's snapshot worker: each rebuild swap enqueues one
// request; failures are sticky in m.err and surfaced by Store.Err and
// Store.Close.
func (m *mgr) run() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case <-m.snapReq:
			if err := m.takeSnapshot(); err != nil {
				m.noteErr(err)
			}
		}
	}
}

// Store is a durable engine backend: the sharded router for queries,
// WAL-first updates, snapshot-on-swap, and crash recovery via Open.
type Store struct {
	router *shard.Router
	mgrs   []*mgr
	rec    RecoveryInfo

	closeOnce sync.Once
	closeErr  error
}

var _ engine.Backend = (*Store)(nil)

// decodeManifest parses and validates a MANIFEST payload.
func decodeManifest(payload []byte) (family string, space geo.Rect, ranges []curve.KeyRange, err error) {
	d := snapshot.NewDec(payload)
	if v := d.U8(); d.Err() == nil && v != manifestVersion {
		return "", geo.Rect{}, nil, fmt.Errorf("persist: unsupported manifest version %d", v)
	}
	family = d.String()
	space = d.Rect()
	n := d.Count(16)
	if err := d.Err(); err != nil {
		return "", geo.Rect{}, nil, fmt.Errorf("persist: decode manifest: %w", err)
	}
	ranges = make([]curve.KeyRange, n)
	for i := range ranges {
		ranges[i] = curve.KeyRange{Lo: d.U64(), Hi: d.U64()}
	}
	if err := d.Close(); err != nil {
		return "", geo.Rect{}, nil, fmt.Errorf("persist: decode manifest: %w", err)
	}
	return family, space, ranges, nil
}

func writeManifest(dir, family string, space geo.Rect, ranges []curve.KeyRange) error {
	payload := snapshot.AppendU8(nil, manifestVersion)
	payload = snapshot.AppendString(payload, family)
	payload = snapshot.AppendRect(payload, space)
	payload = snapshot.AppendUvarint(payload, uint64(len(ranges)))
	for _, rng := range ranges {
		payload = snapshot.AppendU64(payload, rng.Lo)
		payload = snapshot.AppendU64(payload, rng.Hi)
	}
	return snapshot.Write(filepath.Join(dir, manifestName), payload)
}

// newMgr assembles one shard's manager around an open WAL and a live
// processor, and installs the snapshot-on-swap trigger.
func newMgr(shardID int, dir, family string, log *wal.Log, proc *rebuild.Processor) *mgr {
	m := &mgr{
		shardID: shardID,
		dir:     dir,
		family:  family,
		log:     log,
		proc:    proc,
		snapReq: make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	// OnSwap runs outside the processor lock, so the non-blocking
	// enqueue can never deadlock against a snapshot capture; a request
	// already queued covers this swap too.
	proc.OnSwap = func() {
		select {
		case m.snapReq <- struct{}{}:
		default:
		}
	}
	return m
}

func (s *Store) startWorkers() {
	for _, m := range s.mgrs {
		m.wg.Add(1)
		go m.run()
	}
}

// Create builds a fresh store in cfg.Dir from pts: partition + train
// via shard.New, write the manifest, open empty WALs, and take the
// initial snapshot of every shard synchronously, so a crash any time
// after Create returns recovers the full data set.
func Create(cfg Config, pts []geo.Point) (*Store, error) {
	if cfg.Factory == nil || cfg.MapKey == nil {
		return nil, errors.New("persist: Config.Factory and Config.MapKey are required")
	}
	if Exists(cfg.Dir) {
		return nil, fmt.Errorf("persist: %s already holds a store (use Open)", cfg.Dir)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	family := cfg.Factory().Name()
	mk := func(sub []geo.Point) (*rebuild.Processor, error) {
		proc, err := rebuild.NewProcessor(cfg.Factory(), cfg.Pred, sub, cfg.MapKey, cfg.Fu)
		if err != nil {
			return nil, err
		}
		proc.Factory = cfg.Factory
		proc.UseBuiltin = cfg.UseBuiltin
		if cfg.Configure != nil {
			cfg.Configure(proc)
		}
		return proc, nil
	}
	scfg := cfg.Router
	scfg.Shards = cfg.Shards
	router, err := shard.New(pts, cfg.Space, scfg, mk)
	if err != nil {
		return nil, err
	}

	ranges := router.Ranges()
	if err := writeManifest(cfg.Dir, family, cfg.Space, ranges); err != nil {
		return nil, err
	}

	s := &Store{router: router, mgrs: make([]*mgr, len(ranges))}
	for i := range ranges {
		dir := filepath.Join(cfg.Dir, shardDirName(i))
		log, _, err := wal.Open(filepath.Join(dir, walSubdir), cfg.WAL, 1, 1, nil)
		if err != nil {
			s.abandon()
			return nil, err
		}
		s.mgrs[i] = newMgr(i, dir, family, log, router.Processor(i))
		if err := s.mgrs[i].takeSnapshot(); err != nil {
			s.abandon()
			return nil, err
		}
	}
	s.startWorkers()
	return s, nil
}

// Open recovers the store in cfg.Dir: manifest, then per shard — in
// parallel — latest snapshot, index + processor state restore, and
// WAL tail replay through the no-training replay path.
func Open(cfg Config) (*Store, error) {
	if cfg.Factory == nil || cfg.MapKey == nil {
		return nil, errors.New("persist: Config.Factory and Config.MapKey are required")
	}
	begin := time.Now()
	payload, err := snapshot.Read(filepath.Join(cfg.Dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("persist: manifest: %w", err)
	}
	family, space, ranges, err := decodeManifest(payload)
	if err != nil {
		return nil, err
	}
	if want := cfg.Factory().Name(); want != family {
		return nil, fmt.Errorf("persist: store holds family %q, config builds %q", family, want)
	}
	if cfg.Space != (geo.Rect{}) && cfg.Space != space {
		return nil, fmt.Errorf("persist: store space %+v does not match configured space %+v", space, cfg.Space)
	}

	procs := make([]*rebuild.Processor, len(ranges))
	logs := make([]*wal.Log, len(ranges))
	recs := make([]ShardRecovery, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i := range ranges {
		wg.Add(1)
		//lint:ignore ctxprop recovery goroutines are joined before Open returns; nothing outlives the call
		go func(i int) {
			defer wg.Done()
			procs[i], logs[i], recs[i], errs[i] = recoverShard(cfg, i, family)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, l := range logs {
				if l != nil {
					l.Close()
				}
			}
			return nil, fmt.Errorf("persist: shard %d: %w", i, err)
		}
	}

	router, err := shard.NewFromShards(procs, ranges, space, cfg.Router)
	if err != nil {
		for _, l := range logs {
			l.Close()
		}
		return nil, err
	}
	s := &Store{router: router, mgrs: make([]*mgr, len(ranges))}
	for i := range ranges {
		s.mgrs[i] = newMgr(i, filepath.Join(cfg.Dir, shardDirName(i)), family, logs[i], procs[i])
	}
	s.rec = RecoveryInfo{Shards: recs, Total: time.Since(begin)}
	s.startWorkers()
	return s, nil
}

// recoverShard rebuilds one shard's processor from its snapshot and
// WAL tail. No model trains here: the index state comes off disk and
// replay uses the processor's replay path.
func recoverShard(cfg Config, i int, family string) (*rebuild.Processor, *wal.Log, ShardRecovery, error) {
	rec := ShardRecovery{Shard: i}
	dir := filepath.Join(cfg.Dir, shardDirName(i))

	loadStart := time.Now()
	name, cut, err := snapshot.Latest(dir)
	if err != nil {
		return nil, nil, rec, err
	}
	payload, err := snapshot.Read(name)
	if err != nil {
		return nil, nil, rec, err
	}
	rec.SnapshotLSN = cut
	rec.SnapshotBytes = len(payload)

	d := snapshot.NewDec(payload)
	if v := d.U8(); d.Err() == nil && v != payloadVersion {
		return nil, nil, rec, fmt.Errorf("unsupported shard snapshot version %d", v)
	}
	if fam := d.String(); d.Err() == nil && fam != family {
		return nil, nil, rec, fmt.Errorf("shard snapshot holds family %q, manifest says %q", fam, family)
	}
	if snapCut := d.U64(); d.Err() == nil && snapCut != cut {
		return nil, nil, rec, fmt.Errorf("snapshot %s encodes cut LSN %d", name, snapCut)
	}
	idxBytes := d.Bytes()
	if err := d.Err(); err != nil {
		return nil, nil, rec, fmt.Errorf("decode shard snapshot: %w", err)
	}
	st, err := rebuild.DecodeState(d)
	if err != nil {
		return nil, nil, rec, err
	}
	if err := d.Close(); err != nil {
		return nil, nil, rec, fmt.Errorf("decode shard snapshot: %w", err)
	}

	idx := cfg.Factory()
	stater, ok := idx.(snapshot.Stater)
	if !ok {
		return nil, nil, rec, fmt.Errorf("index family %q does not implement snapshot.Stater", idx.Name())
	}
	if err := stater.RestoreState(idxBytes); err != nil {
		return nil, nil, rec, err
	}
	proc := rebuild.RestoreProcessor(idx, cfg.Pred, cfg.MapKey, cfg.Fu, st)
	proc.Factory = cfg.Factory
	proc.UseBuiltin = cfg.UseBuiltin
	if cfg.Configure != nil {
		cfg.Configure(proc)
	}
	rec.Load = time.Since(loadStart)

	replayStart := time.Now()
	log, stats, err := wal.Open(filepath.Join(dir, walSubdir), cfg.WAL, cut+1, cut+1, func(r wal.Record) error {
		if err := faults.Hit("recover/replay"); err != nil {
			return err
		}
		switch r.Op {
		case wal.OpInsert:
			proc.ReplayInsert(r.Pt)
		case wal.OpDelete:
			proc.ReplayDelete(r.Pt)
		}
		return nil
	})
	if err != nil {
		return nil, nil, rec, err
	}
	rec.WALRecords = stats.Replayed
	rec.TornTail = stats.TornTail != nil
	rec.Replay = time.Since(replayStart)
	return proc, log, rec, nil
}

// Router exposes the underlying sharded router (tests, stats).
func (s *Store) Router() *shard.Router { return s.router }

// Recovery reports what Open replayed; zero after Create.
func (s *Store) Recovery() RecoveryInfo { return s.rec }

// Err returns the first asynchronous snapshot failure, nil if none.
func (s *Store) Err() error {
	for _, m := range s.mgrs {
		if err := m.firstErr(); err != nil {
			return err
		}
	}
	return nil
}

// --- engine.Backend ----------------------------------------------------

func (s *Store) PointBatch(pts []geo.Point, out []bool) []bool {
	return s.router.PointBatch(pts, out)
}

func (s *Store) WindowBatch(wins []geo.Rect, out [][]geo.Point) [][]geo.Point {
	return s.router.WindowBatch(wins, out)
}

func (s *Store) KNNVarBatch(qs []geo.Point, ks []int, out [][]geo.Point) [][]geo.Point {
	return s.router.KNNVarBatch(qs, ks, out)
}

// Insert logs the update, then applies it, all under the shard's
// manager lock so WAL order is application order. A failed append —
// including an injected crash — leaves the update unapplied and
// unacknowledged: the caller's false is the truth on disk.
func (s *Store) Insert(p geo.Point) bool {
	m := s.mgrs[s.router.ShardIndexOf(p)]
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.log.Append(wal.OpInsert, p); err != nil {
		m.noteErr(err)
		return false
	}
	return s.router.Insert(p)
}

// Delete mirrors Insert: WAL first, apply second, one lock.
func (s *Store) Delete(p geo.Point) bool {
	m := s.mgrs[s.router.ShardIndexOf(p)]
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.log.Append(wal.OpDelete, p); err != nil {
		m.noteErr(err)
		return false
	}
	return s.router.Delete(p)
}

// PointGen and GlobalGen delegate to the router: durability does not
// change visible state, so the WAL layer adds no generations of its
// own.
//
//elsi:noalloc
func (s *Store) PointGen(p geo.Point) uint64 { return s.router.PointGen(p) }

//elsi:noalloc
func (s *Store) GlobalGen() uint64 { return s.router.GlobalGen() }

func (s *Store) BackendStats() engine.BackendStats {
	return s.router.BackendStats()
}

// --- lifecycle ---------------------------------------------------------

// Snapshot forces a snapshot of every shard now (drain, tests).
func (s *Store) Snapshot() error {
	var first error
	for _, m := range s.mgrs {
		if err := m.takeSnapshot(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// stopWorkers shuts down the snapshot workers and waits them out.
func (s *Store) stopWorkers() {
	for _, m := range s.mgrs {
		close(m.stop)
	}
	for _, m := range s.mgrs {
		m.wg.Wait()
	}
}

// Close shuts down cleanly: stop the snapshot workers, settle
// in-flight rebuilds, take a final snapshot per shard (so the next
// Open replays an empty tail), and close the WALs. Safe to call once.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.stopWorkers()
		s.router.Quiesce()
		for _, m := range s.mgrs {
			if err := m.takeSnapshot(); err != nil {
				m.noteErr(err)
			}
			if err := m.log.Close(); err != nil && !errors.Is(err, wal.ErrClosed) {
				m.noteErr(err)
			}
		}
		s.closeErr = s.Err()
	})
	return s.closeErr
}

// Kill abandons the store the way a crash would: workers stop, but no
// final snapshot is taken and nothing is flushed beyond what already
// reached disk. The crash harness uses it to reopen the directory
// while this process keeps running.
func (s *Store) Kill() {
	s.closeOnce.Do(func() {
		s.stopWorkers()
		s.router.Quiesce()
		for _, m := range s.mgrs {
			m.log.Close()
		}
		s.closeErr = s.Err()
	})
}

// abandon tears down a half-constructed store (Create failure path).
func (s *Store) abandon() {
	for _, m := range s.mgrs {
		if m != nil && m.log != nil {
			m.log.Close()
		}
	}
}
