package store

import (
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/geo"
)

func makeSorted(t *testing.T, n int, seed int64) *Sorted {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	pts := make([]geo.Point, n)
	for i := range keys {
		keys[i] = rng.Float64()
		pts[i] = geo.Point{X: keys[i], Y: rng.Float64()}
	}
	return NewSorted(keys, pts)
}

func TestNewSortedSortsByKey(t *testing.T) {
	s := makeSorted(t, 500, 1)
	keys := s.Keys()
	if !sort.Float64sAreSorted(keys) {
		t.Fatal("keys not sorted")
	}
	if s.Len() != 500 {
		t.Errorf("Len = %d", s.Len())
	}
	// keys and points stay parallel through the co-sort
	for i := 0; i < s.Len(); i++ {
		if s.PointAt(i).X != s.KeyAt(i) {
			t.Fatalf("entry %d: key %v detached from point %v", i, s.KeyAt(i), s.PointAt(i))
		}
	}
}

func TestNewSortedLeavesInputsUntouched(t *testing.T) {
	keys := []float64{3, 1, 2}
	pts := []geo.Point{{X: 3}, {X: 1}, {X: 2}}
	s := NewSorted(keys, pts)
	if keys[0] != 3 || pts[0].X != 3 {
		t.Error("NewSorted mutated its inputs")
	}
	if s.KeyAt(0) != 1 || s.PointAt(2).X != 3 {
		t.Error("NewSorted did not sort its copy")
	}
}

func TestNewSortedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	NewSorted([]float64{1}, nil)
}

func TestNewSortedColumnsAliases(t *testing.T) {
	keys := []float64{1, 2, 3}
	pts := []geo.Point{{X: 1}, {X: 2}, {X: 3}}
	s := NewSortedColumns(keys, pts)
	if &s.Keys()[0] != &keys[0] {
		t.Error("NewSortedColumns copied the key column")
	}
	if &s.Points()[0] != &pts[0] {
		t.Error("NewSortedColumns copied the point column")
	}
}

func TestNewSortedColumnsUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unsorted keys")
		}
	}()
	NewSortedColumns([]float64{2, 1}, make([]geo.Point, 2))
}

func TestKeysIsView(t *testing.T) {
	s := makeSorted(t, 64, 9)
	if &s.Keys()[0] != &s.Keys()[0] {
		t.Error("Keys() is not a stable view")
	}
}

func TestFindPoint(t *testing.T) {
	s := makeSorted(t, 200, 4)
	target := s.At(57).Point
	if !s.FindPoint(0, s.Len(), target) {
		t.Error("stored point not found")
	}
	if s.FindPoint(0, s.Len(), geo.Point{X: -1, Y: -1}) {
		t.Error("absent point reported found")
	}
	if s.FindPoint(58, s.Len(), target) {
		t.Error("point found outside scan range")
	}
}

func TestFindPointAccounting(t *testing.T) {
	s := makeSorted(t, 100, 13)
	s.ResetScanned()
	s.FindPoint(-5, 1000, geo.Point{X: -1, Y: -1})
	if s.Scanned() != 100 {
		t.Errorf("miss scanned %d entries, want 100", s.Scanned())
	}
	s.ResetScanned()
	s.FindPoint(0, s.Len(), s.At(9).Point)
	if s.Scanned() != 10 {
		t.Errorf("hit at position 9 charged %d, want 10", s.Scanned())
	}
}

func TestCollectWindow(t *testing.T) {
	s := makeSorted(t, 300, 5)
	win := geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.5, MaxY: 0.5}
	got := s.CollectWindow(0, s.Len(), win, nil)
	want := 0
	for i := 0; i < s.Len(); i++ {
		if win.Contains(s.At(i).Point) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("CollectWindow found %d, want %d", len(got), want)
	}
	for _, p := range got {
		if !win.Contains(p) {
			t.Errorf("collected point %v outside window", p)
		}
	}
	if s.Scanned() != 300 {
		t.Errorf("Scanned = %d, want 300", s.Scanned())
	}
}

func TestCollectRange(t *testing.T) {
	s := makeSorted(t, 50, 8)
	out := s.CollectRange(10, 20, nil)
	if len(out) != 10 {
		t.Fatalf("CollectRange returned %d points, want 10", len(out))
	}
	for i, p := range out {
		if p != s.PointAt(10+i) {
			t.Errorf("out[%d] = %v, want %v", i, p, s.PointAt(10+i))
		}
	}
	if s.Scanned() != 10 {
		t.Errorf("Scanned = %d, want 10", s.Scanned())
	}
	// clamped and appending to a prefix
	out = s.CollectRange(45, 99, out)
	if len(out) != 15 {
		t.Errorf("appended CollectRange len = %d, want 15", len(out))
	}
}

func TestSearchKey(t *testing.T) {
	s := NewSorted([]float64{1, 3, 5}, []geo.Point{{X: 1}, {X: 3}, {X: 5}})
	cases := []struct {
		k    float64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {5, 2}, {6, 3}}
	for _, c := range cases {
		if got := s.SearchKey(c.k); got != c.want {
			t.Errorf("SearchKey(%v) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestBlocks(t *testing.T) {
	s := makeSorted(t, 250, 6)
	if got := s.Blocks(); got != 3 {
		t.Errorf("Blocks = %d, want 3 (B=%d)", got, BlockSize)
	}
}

func TestPageListBuild(t *testing.T) {
	s := makeSorted(t, 550, 7)
	entries := make([]Entry, s.Len())
	for i := range entries {
		entries[i] = s.At(i)
	}
	pl := NewPageList(entries)
	if pl.NumPages() != 6 {
		t.Errorf("NumPages = %d, want 6", pl.NumPages())
	}
	if pl.Len() != 550 {
		t.Errorf("Len = %d", pl.Len())
	}
	// pages hold contiguous sorted runs with parallel columns
	var prev float64 = -1
	for i := 0; i < pl.NumPages(); i++ {
		ks, ps := pl.PageKeys(i), pl.PagePoints(i)
		if len(ks) != len(ps) {
			t.Fatalf("page %d: column lengths diverge", i)
		}
		for _, k := range ks {
			if k < prev {
				t.Fatal("page entries out of order")
			}
			prev = k
		}
	}
}

func TestPageInsertAndSplit(t *testing.T) {
	entries := make([]Entry, BlockSize)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), Point: geo.Point{X: float64(i)}}
	}
	pl := NewPageList(entries)
	if pl.NumPages() != 1 {
		t.Fatalf("NumPages = %d", pl.NumPages())
	}
	pl.Insert(0, Entry{Key: 50.5, Point: geo.Point{X: 50.5}})
	if pl.NumPages() != 2 {
		t.Fatalf("expected split, NumPages = %d", pl.NumPages())
	}
	if pl.Len() != BlockSize+1 {
		t.Errorf("Len = %d", pl.Len())
	}
	// keys still globally ordered across pages, points still parallel
	var prev float64 = -1
	for i := 0; i < pl.NumPages(); i++ {
		ks, ps := pl.PageKeys(i), pl.PagePoints(i)
		for j, k := range ks {
			if k < prev {
				t.Fatal("split broke ordering")
			}
			if ps[j].X != k {
				t.Fatalf("split detached point %v from key %v", ps[j], k)
			}
			prev = k
		}
	}
}

func TestPageInsertEmpty(t *testing.T) {
	pl := NewPageList(nil)
	pl.Insert(0, Entry{Key: 1})
	if pl.Len() != 1 || pl.NumPages() != 1 {
		t.Errorf("insert into empty list: pages=%d len=%d", pl.NumPages(), pl.Len())
	}
}

func TestPageFor(t *testing.T) {
	var entries []Entry
	for i := 0; i < 3*BlockSize; i++ {
		entries = append(entries, Entry{Key: float64(i)})
	}
	pl := NewPageList(entries)
	if got := pl.PageFor(-1); got != 0 {
		t.Errorf("PageFor(-1) = %d", got)
	}
	if got := pl.PageFor(float64(BlockSize) + 0.5); got != 1 {
		t.Errorf("PageFor(mid) = %d", got)
	}
	if got := pl.PageFor(1e9); got != 2 {
		t.Errorf("PageFor(huge) = %d", got)
	}
}

func TestPageListKernels(t *testing.T) {
	var entries []Entry
	for i := 0; i < 250; i++ {
		entries = append(entries, Entry{Key: float64(i), Point: geo.Point{X: float64(i)}})
	}
	pl := NewPageList(entries)
	if !pl.FindPointPages(0, pl.NumPages(), geo.Point{X: 120}) {
		t.Error("stored point not found")
	}
	if pl.FindPointPages(0, 1, geo.Point{X: 120}) {
		t.Error("point found outside page range")
	}
	pl.ResetScanned()
	win := geo.Rect{MinX: 99.5, MinY: -1, MaxX: 130.5, MaxY: 1}
	got := pl.CollectWindowPages(1, 2, win, nil)
	if len(got) != 31 {
		t.Errorf("CollectWindowPages found %d points, want 31", len(got))
	}
	if pl.Scanned() != int64(BlockSize) {
		t.Errorf("Scanned = %d, want %d", pl.Scanned(), BlockSize)
	}
	pl.ResetScanned()
	if pl.Scanned() != 0 {
		t.Error("ResetScanned failed")
	}
}

func TestFirstGEMatchesSearchKey(t *testing.T) {
	s := makeSorted(t, 1000, 11)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		var k float64
		if trial%3 == 0 {
			k = s.At(rng.Intn(s.Len())).Key // exact stored key
		} else {
			k = rng.Float64() * 1.2
		}
		hint := rng.Intn(s.Len())
		want := s.SearchKey(k)
		if got := s.FirstGE(k, hint); got != want {
			t.Fatalf("FirstGE(%v, hint=%d) = %d, want %d", k, hint, got, want)
		}
	}
}

func TestFirstGEHintEdges(t *testing.T) {
	s := NewSorted([]float64{1, 2, 2, 3}, make([]geo.Point, 4))
	if got := s.FirstGE(2, -10); got != 1 {
		t.Errorf("negative hint: %d", got)
	}
	if got := s.FirstGE(2, 100); got != 1 {
		t.Errorf("huge hint: %d", got)
	}
	if got := s.FirstGE(0, 3); got != 0 {
		t.Errorf("below-min: %d", got)
	}
	if got := s.FirstGE(10, 0); got != 4 {
		t.Errorf("above-max: %d", got)
	}
	empty := NewSorted(nil, nil)
	if got := empty.FirstGE(1, 0); got != 0 {
		t.Errorf("empty store: %d", got)
	}
}

func TestFirstGT(t *testing.T) {
	s := NewSorted([]float64{1, 2, 2, 2, 3}, make([]geo.Point, 5))
	if got := s.FirstGT(2, 0); got != 4 {
		t.Errorf("FirstGT(2) = %d, want 4", got)
	}
	if got := s.FirstGT(3, 4); got != 5 {
		t.Errorf("FirstGT(3) = %d, want 5", got)
	}
	if got := s.FirstGT(0.5, 2); got != 0 {
		t.Errorf("FirstGT(0.5) = %d, want 0", got)
	}
	empty := NewSorted(nil, nil)
	if got := empty.FirstGT(1, 0); got != 0 {
		t.Errorf("empty store: %d", got)
	}
}

// TestFirstGTDuplicateRuns pins the galloping FirstGT against the
// brute-force definition on duplicate-heavy keys for every hint.
func TestFirstGTDuplicateRuns(t *testing.T) {
	keys := make([]float64, 0, 600)
	for run := 0; run < 6; run++ {
		for i := 0; i < 100; i++ {
			keys = append(keys, float64(run))
		}
	}
	s := NewSorted(keys, make([]geo.Point, len(keys)))
	probes := []float64{-1, 0, 0.5, 1, 2.5, 3, 5, 6}
	for _, k := range probes {
		want := 0
		for want < len(keys) && keys[want] <= k {
			want++
		}
		for hint := -1; hint <= len(keys); hint += 37 {
			if got := s.FirstGT(k, hint); got != want {
				t.Fatalf("FirstGT(%v, hint=%d) = %d, want %d", k, hint, got, want)
			}
		}
	}
}

// TestFirstGTMatchesFirstGE cross-checks FirstGT against
// FirstGE(nextafter(k)) on random data.
func TestFirstGTMatchesFirstGE(t *testing.T) {
	s := makeSorted(t, 1000, 21)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 500; trial++ {
		var k float64
		if trial%2 == 0 {
			k = s.At(rng.Intn(s.Len())).Key
		} else {
			k = rng.Float64() * 1.2
		}
		hint := rng.Intn(s.Len())
		want := s.SearchKey(k)
		for want < s.Len() && s.KeyAt(want) <= k {
			want++
		}
		if got := s.FirstGT(k, hint); got != want {
			t.Fatalf("FirstGT(%v, hint=%d) = %d, want %d", k, hint, got, want)
		}
	}
}
