package store

import (
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/geo"
)

func makeSorted(t *testing.T, n int, seed int64) *Sorted {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	pts := make([]geo.Point, n)
	for i := range keys {
		keys[i] = rng.Float64()
		pts[i] = geo.Point{X: keys[i], Y: rng.Float64()}
	}
	return NewSorted(keys, pts)
}

func TestNewSortedSortsByKey(t *testing.T) {
	s := makeSorted(t, 500, 1)
	keys := s.Keys()
	if !sort.Float64sAreSorted(keys) {
		t.Fatal("keys not sorted")
	}
	if s.Len() != 500 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestNewSortedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	NewSorted([]float64{1}, nil)
}

func TestScanRangeCountsAndClamps(t *testing.T) {
	s := makeSorted(t, 100, 2)
	count := 0
	s.ScanRange(-5, 1000, func(Entry) bool { count++; return true })
	if count != 100 {
		t.Errorf("visited %d entries, want 100", count)
	}
	if s.Scanned() != 100 {
		t.Errorf("Scanned = %d", s.Scanned())
	}
	s.ResetScanned()
	if s.Scanned() != 0 {
		t.Errorf("after reset Scanned = %d", s.Scanned())
	}
}

func TestScanRangeEarlyStop(t *testing.T) {
	s := makeSorted(t, 100, 3)
	count := 0
	s.ScanRange(0, 100, func(Entry) bool { count++; return count < 10 })
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
	if s.Scanned() != 10 {
		t.Errorf("Scanned = %d", s.Scanned())
	}
}

func TestFindPoint(t *testing.T) {
	s := makeSorted(t, 200, 4)
	target := s.At(57).Point
	if !s.FindPoint(0, s.Len(), target) {
		t.Error("stored point not found")
	}
	if s.FindPoint(0, s.Len(), geo.Point{X: -1, Y: -1}) {
		t.Error("absent point reported found")
	}
	if s.FindPoint(58, s.Len(), target) {
		t.Error("point found outside scan range")
	}
}

func TestCollectWindow(t *testing.T) {
	s := makeSorted(t, 300, 5)
	win := geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.5, MaxY: 0.5}
	got := s.CollectWindow(0, s.Len(), win, nil)
	want := 0
	for i := 0; i < s.Len(); i++ {
		if win.Contains(s.At(i).Point) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("CollectWindow found %d, want %d", len(got), want)
	}
	for _, p := range got {
		if !win.Contains(p) {
			t.Errorf("collected point %v outside window", p)
		}
	}
}

func TestSearchKey(t *testing.T) {
	s := NewSorted([]float64{1, 3, 5}, []geo.Point{{X: 1}, {X: 3}, {X: 5}})
	cases := []struct {
		k    float64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {5, 2}, {6, 3}}
	for _, c := range cases {
		if got := s.SearchKey(c.k); got != c.want {
			t.Errorf("SearchKey(%v) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestBlocks(t *testing.T) {
	s := makeSorted(t, 250, 6)
	if got := s.Blocks(); got != 3 {
		t.Errorf("Blocks = %d, want 3 (B=%d)", got, BlockSize)
	}
}

func TestPageListBuild(t *testing.T) {
	s := makeSorted(t, 550, 7)
	entries := make([]Entry, s.Len())
	for i := range entries {
		entries[i] = s.At(i)
	}
	pl := NewPageList(entries)
	if pl.NumPages() != 6 {
		t.Errorf("NumPages = %d, want 6", pl.NumPages())
	}
	if pl.Len() != 550 {
		t.Errorf("Len = %d", pl.Len())
	}
	// pages hold contiguous sorted runs
	var prev float64 = -1
	for i := 0; i < pl.NumPages(); i++ {
		for _, e := range pl.Page(i) {
			if e.Key < prev {
				t.Fatal("page entries out of order")
			}
			prev = e.Key
		}
	}
}

func TestPageInsertAndSplit(t *testing.T) {
	entries := make([]Entry, BlockSize)
	for i := range entries {
		entries[i] = Entry{Key: float64(i)}
	}
	pl := NewPageList(entries)
	if pl.NumPages() != 1 {
		t.Fatalf("NumPages = %d", pl.NumPages())
	}
	pl.Insert(0, Entry{Key: 50.5})
	if pl.NumPages() != 2 {
		t.Fatalf("expected split, NumPages = %d", pl.NumPages())
	}
	if pl.Len() != BlockSize+1 {
		t.Errorf("Len = %d", pl.Len())
	}
	// keys still globally ordered across pages
	var prev float64 = -1
	for i := 0; i < pl.NumPages(); i++ {
		for _, e := range pl.Page(i) {
			if e.Key < prev {
				t.Fatal("split broke ordering")
			}
			prev = e.Key
		}
	}
}

func TestPageInsertEmpty(t *testing.T) {
	pl := NewPageList(nil)
	pl.Insert(0, Entry{Key: 1})
	if pl.Len() != 1 || pl.NumPages() != 1 {
		t.Errorf("insert into empty list: pages=%d len=%d", pl.NumPages(), pl.Len())
	}
}

func TestPageFor(t *testing.T) {
	var entries []Entry
	for i := 0; i < 3*BlockSize; i++ {
		entries = append(entries, Entry{Key: float64(i)})
	}
	pl := NewPageList(entries)
	if got := pl.PageFor(-1); got != 0 {
		t.Errorf("PageFor(-1) = %d", got)
	}
	if got := pl.PageFor(float64(BlockSize) + 0.5); got != 1 {
		t.Errorf("PageFor(mid) = %d", got)
	}
	if got := pl.PageFor(1e9); got != 2 {
		t.Errorf("PageFor(huge) = %d", got)
	}
}

func TestPageListScan(t *testing.T) {
	var entries []Entry
	for i := 0; i < 250; i++ {
		entries = append(entries, Entry{Key: float64(i)})
	}
	pl := NewPageList(entries)
	count := 0
	pl.ScanPages(1, 2, func(Entry) bool { count++; return true })
	if count != BlockSize {
		t.Errorf("scanned %d entries in one page", count)
	}
	if pl.Scanned() != int64(BlockSize) {
		t.Errorf("Scanned = %d", pl.Scanned())
	}
	pl.ResetScanned()
	if pl.Scanned() != 0 {
		t.Error("ResetScanned failed")
	}
}

func TestFirstGEMatchesSearchKey(t *testing.T) {
	s := makeSorted(t, 1000, 11)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		var k float64
		if trial%3 == 0 {
			k = s.At(rng.Intn(s.Len())).Key // exact stored key
		} else {
			k = rng.Float64() * 1.2
		}
		hint := rng.Intn(s.Len())
		want := s.SearchKey(k)
		if got := s.FirstGE(k, hint); got != want {
			t.Fatalf("FirstGE(%v, hint=%d) = %d, want %d", k, hint, got, want)
		}
	}
}

func TestFirstGEHintEdges(t *testing.T) {
	s := NewSorted([]float64{1, 2, 2, 3}, make([]geo.Point, 4))
	if got := s.FirstGE(2, -10); got != 1 {
		t.Errorf("negative hint: %d", got)
	}
	if got := s.FirstGE(2, 100); got != 1 {
		t.Errorf("huge hint: %d", got)
	}
	if got := s.FirstGE(0, 3); got != 0 {
		t.Errorf("below-min: %d", got)
	}
	if got := s.FirstGE(10, 0); got != 4 {
		t.Errorf("above-max: %d", got)
	}
	empty := NewSorted(nil, nil)
	if got := empty.FirstGE(1, 0); got != 0 {
		t.Errorf("empty store: %d", got)
	}
}

func TestFirstGT(t *testing.T) {
	s := NewSorted([]float64{1, 2, 2, 2, 3}, make([]geo.Point, 5))
	if got := s.FirstGT(2, 0); got != 4 {
		t.Errorf("FirstGT(2) = %d, want 4", got)
	}
	if got := s.FirstGT(3, 4); got != 5 {
		t.Errorf("FirstGT(3) = %d, want 5", got)
	}
	if got := s.FirstGT(0.5, 2); got != 0 {
		t.Errorf("FirstGT(0.5) = %d, want 0", got)
	}
}
