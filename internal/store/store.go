// Package store provides the storage substrate shared by the indices:
// a sorted structure-of-arrays of (key, point) columns with block-
// granular cost accounting for the predict-and-scan learned indices,
// and fixed-capacity data pages for LISA-style page storage. The paper
// stores data in blocks of B = 100 points (Section VII-B1); the
// counters here let the benchmark harness report scan work in the same
// units.
//
// The layout is deliberately columnar: binary searches touch only the
// dense key column ([]float64, 8 bytes/entry) and bounded scans stream
// through it without pulling the 16-byte points into cache, mirroring
// the cache-conscious layouts of the RMI/PGM line of learned indices.
// The scan kernels (FindPoint, CollectWindow, CollectRange) are
// specialized loops rather than per-entry callbacks, and charge the
// scan counter once per scan instead of once per entry.
package store

import (
	"sort"
	"sync/atomic"

	"elsi/internal/geo"
)

// BlockSize is the paper's block size B.
const BlockSize = 100

// Entry is one stored point with its 1-D mapped key.
type Entry struct {
	Key   float64
	Point geo.Point
}

// Sorted is an immutable pair of parallel columns sorted by key — the
// storage layout of a map-and-sort index. It counts scanned entries so
// experiments can report scan costs; the counter is atomic so that
// concurrent readers (queries racing with a background rebuild) do
// not race on the accounting.
type Sorted struct {
	keys    []float64
	pts     []geo.Point
	scanned atomic.Int64
}

// NewSorted builds a Sorted store from keys and points (parallel
// slices), copying and sorting them together by key. The inputs are
// left untouched.
func NewSorted(keys []float64, pts []geo.Point) *Sorted {
	if len(keys) != len(pts) {
		panic("store: keys and points length mismatch")
	}
	ks := make([]float64, len(keys))
	ps := make([]geo.Point, len(pts))
	copy(ks, keys)
	copy(ps, pts)
	sort.Sort(&pairSorter{keys: ks, pts: ps})
	return &Sorted{keys: ks, pts: ps}
}

// NewSortedColumns takes ownership of already-sorted parallel columns
// without copying or re-sorting — the zero-copy build path. The
// map-and-sort preparation (base.PrepareWorkers) already emits sorted
// columns, so index builds hand them straight to the store. Panics if
// the columns mismatch in length or the keys are not ascending.
func NewSortedColumns(keys []float64, pts []geo.Point) *Sorted {
	if len(keys) != len(pts) {
		panic("store: keys and points length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic("store: NewSortedColumns keys not sorted")
		}
	}
	return &Sorted{keys: keys, pts: pts}
}

// NewSortedFromEntries takes ownership of entries, sorting them by key
// and splitting them into columns.
func NewSortedFromEntries(es []Entry) *Sorted {
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	ks := make([]float64, len(es))
	ps := make([]geo.Point, len(es))
	for i, e := range es {
		ks[i] = e.Key
		ps[i] = e.Point
	}
	return &Sorted{keys: ks, pts: ps}
}

type pairSorter struct {
	keys []float64
	pts  []geo.Point
}

func (s *pairSorter) Len() int           { return len(s.keys) }
func (s *pairSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *pairSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.pts[i], s.pts[j] = s.pts[j], s.pts[i]
}

// Len returns the number of stored entries.
//
//elsi:noalloc
func (s *Sorted) Len() int { return len(s.keys) }

// Keys returns the sorted key column as a view, not a copy. Callers
// must treat it as read-only; the store is immutable after build, so
// the view stays valid for the store's lifetime.
func (s *Sorted) Keys() []float64 { return s.keys }

// Points returns the point column (parallel to Keys) as a read-only
// view.
func (s *Sorted) Points() []geo.Point { return s.pts }

// At returns the i-th entry in key order.
func (s *Sorted) At(i int) Entry { return Entry{Key: s.keys[i], Point: s.pts[i]} }

// KeyAt returns the i-th key in key order.
//
//elsi:noalloc
func (s *Sorted) KeyAt(i int) float64 { return s.keys[i] }

// PointAt returns the i-th point in key order.
//
//elsi:noalloc
func (s *Sorted) PointAt(i int) geo.Point { return s.pts[i] }

//elsi:noalloc
func (s *Sorted) clamp(lo, hi int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.keys) {
		hi = len(s.keys)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// FindPoint scans positions [lo, hi) for a point equal to p and
// reports whether it was found (the predict-and-scan point query).
// Visited entries are charged to the scan counter with one atomic add.
//
//elsi:noalloc
func (s *Sorted) FindPoint(lo, hi int, p geo.Point) bool {
	lo, hi = s.clamp(lo, hi)
	pts := s.pts
	for i := lo; i < hi; i++ {
		if pts[i] == p {
			s.scanned.Add(int64(i - lo + 1))
			return true
		}
	}
	s.scanned.Add(int64(hi - lo))
	return false
}

// CollectWindow appends to out the points in positions [lo, hi) that
// fall inside win and returns the extended slice. The whole span is
// charged with one atomic add.
//
//elsi:noalloc
func (s *Sorted) CollectWindow(lo, hi int, win geo.Rect, out []geo.Point) []geo.Point {
	lo, hi = s.clamp(lo, hi)
	for _, p := range s.pts[lo:hi] {
		if win.Contains(p) {
			out = append(out, p)
		}
	}
	s.scanned.Add(int64(hi - lo))
	return out
}

// CollectRange appends every point in positions [lo, hi) to out and
// returns the extended slice (the unfiltered scan kernel used by
// KNN candidate collection). The span is charged with one atomic add.
//
//elsi:noalloc
func (s *Sorted) CollectRange(lo, hi int, out []geo.Point) []geo.Point {
	lo, hi = s.clamp(lo, hi)
	out = append(out, s.pts[lo:hi]...)
	s.scanned.Add(int64(hi - lo))
	return out
}

// searchGE returns the first position in keys[lo:hi) holding a key
// >= k, as an absolute index. The loop is the branch-light midpoint
// form the compiler turns into conditional moves over the dense
// []float64 column.
//
//elsi:noalloc
func searchGE(keys []float64, lo, hi int, k float64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchGT is searchGE for the strict predicate key > k.
//
//elsi:noalloc
func searchGT(keys []float64, lo, hi int, k float64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SearchKey returns the position of the first entry with key >= k.
//
//elsi:noalloc
func (s *Sorted) SearchKey(k float64) int {
	return searchGE(s.keys, 0, len(s.keys), k)
}

// FirstGE returns the position of the first entry with key >= k using
// hint as a starting guess: it gallops outward from hint and finishes
// with a binary search inside the bracket, so the cost is logarithmic
// in the prediction error rather than in n. Learned indices use it to
// turn a model prediction into an exact boundary.
//
//elsi:noalloc
func (s *Sorted) FirstGE(k float64, hint int) int {
	keys := s.keys
	n := len(keys)
	if n == 0 {
		return 0
	}
	if hint < 0 {
		hint = 0
	}
	if hint >= n {
		hint = n - 1
	}
	var lo, hi int
	if keys[hint] >= k {
		// answer is at or before hint: gallop left until a key < k
		hi = hint + 1
		step := 1
		i := hint
		for i >= 0 && keys[i] >= k {
			i -= step
			step *= 2
		}
		if i < 0 {
			lo = 0
		} else {
			lo = i
		}
	} else {
		// answer is after hint: gallop right until a key >= k
		lo = hint
		step := 1
		i := hint
		for i < n && keys[i] < k {
			lo = i
			i += step
			step *= 2
		}
		if i >= n {
			hi = n
		} else {
			hi = i + 1
		}
	}
	return searchGE(keys, lo, hi, k)
}

// FirstGT returns the position of the first entry with key > k, with
// the same galloping strategy as FirstGE but the strict predicate —
// a second galloping binary search rather than a linear walk over the
// duplicate run, so duplicate-heavy keys stay logarithmic.
//
//elsi:noalloc
func (s *Sorted) FirstGT(k float64, hint int) int {
	keys := s.keys
	n := len(keys)
	if n == 0 {
		return 0
	}
	if hint < 0 {
		hint = 0
	}
	if hint >= n {
		hint = n - 1
	}
	var lo, hi int
	if keys[hint] > k {
		// answer is at or before hint: gallop left until a key <= k
		hi = hint + 1
		step := 1
		i := hint
		for i >= 0 && keys[i] > k {
			i -= step
			step *= 2
		}
		if i < 0 {
			lo = 0
		} else {
			lo = i
		}
	} else {
		// answer is after hint: gallop right until a key > k
		lo = hint
		step := 1
		i := hint
		for i < n && keys[i] <= k {
			lo = i
			i += step
			step *= 2
		}
		if i >= n {
			hi = n
		} else {
			hi = i + 1
		}
	}
	return searchGT(keys, lo, hi, k)
}

// Scanned returns the cumulative number of entries visited by scans.
func (s *Sorted) Scanned() int64 { return s.scanned.Load() }

// ResetScanned zeroes the scan counter (called between experiment
// phases).
func (s *Sorted) ResetScanned() { s.scanned.Store(0) }

// Blocks returns the number of B-sized blocks the store occupies.
func (s *Sorted) Blocks() int {
	return (len(s.keys) + BlockSize - 1) / BlockSize
}

// --- Pages (LISA-style) -----------------------------------------------

// PageList is an ordered list of fixed-capacity pages covering
// contiguous key ranges, stored as parallel key/point columns per
// page. The scan counter is atomic for the same reason as Sorted's;
// the page structure itself is only mutated by Insert/Truncate, which
// callers must serialize against scans.
type PageList struct {
	keys    [][]float64
	pts     [][]geo.Point
	scanned atomic.Int64
}

// NewPageList packs sorted entries into pages of BlockSize.
func NewPageList(sorted []Entry) *PageList {
	pl := &PageList{}
	for start := 0; start < len(sorted); start += BlockSize {
		end := start + BlockSize
		if end > len(sorted) {
			end = len(sorted)
		}
		ks := make([]float64, end-start, BlockSize+1)
		ps := make([]geo.Point, end-start, BlockSize+1)
		for i, e := range sorted[start:end] {
			ks[i] = e.Key
			ps[i] = e.Point
		}
		pl.keys = append(pl.keys, ks)
		pl.pts = append(pl.pts, ps)
	}
	return pl
}

// NumPages returns the page count.
func (pl *PageList) NumPages() int { return len(pl.keys) }

// Len returns the total number of stored entries.
func (pl *PageList) Len() int {
	total := 0
	for _, ks := range pl.keys {
		total += len(ks)
	}
	return total
}

// PageKeys returns the i-th page's key column as a read-only view.
func (pl *PageList) PageKeys(i int) []float64 { return pl.keys[i] }

// PagePoints returns the i-th page's point column as a read-only view.
func (pl *PageList) PagePoints(i int) []geo.Point { return pl.pts[i] }

//elsi:noalloc
func (pl *PageList) clampPages(lo, hi int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(pl.keys) {
		hi = len(pl.keys)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// FindPointPages scans pages [lo, hi) for a point equal to p,
// charging every entry visited with one atomic add per page scanned.
//
//elsi:noalloc
func (pl *PageList) FindPointPages(lo, hi int, p geo.Point) bool {
	lo, hi = pl.clampPages(lo, hi)
	visited := int64(0)
	for i := lo; i < hi; i++ {
		for j, q := range pl.pts[i] {
			if q == p {
				pl.scanned.Add(visited + int64(j+1))
				return true
			}
		}
		visited += int64(len(pl.pts[i]))
	}
	pl.scanned.Add(visited)
	return false
}

// CollectWindowPages appends to out the points in pages [lo, hi) that
// fall inside win, charging every entry visited with one atomic add.
//
//elsi:noalloc
func (pl *PageList) CollectWindowPages(lo, hi int, win geo.Rect, out []geo.Point) []geo.Point {
	lo, hi = pl.clampPages(lo, hi)
	visited := int64(0)
	for i := lo; i < hi; i++ {
		for _, q := range pl.pts[i] {
			if win.Contains(q) {
				out = append(out, q)
			}
		}
		visited += int64(len(pl.pts[i]))
	}
	pl.scanned.Add(visited)
	return out
}

// Insert adds e to page i, keeping the page's key order, and splits the
// page when it overflows. It returns the number of pages after the
// insert (splits shift subsequent page indices).
func (pl *PageList) Insert(i int, e Entry) int {
	if len(pl.keys) == 0 {
		pl.keys = [][]float64{{e.Key}}
		pl.pts = [][]geo.Point{{e.Point}}
		return 1
	}
	if i < 0 {
		i = 0
	}
	if i >= len(pl.keys) {
		i = len(pl.keys) - 1
	}
	ks, ps := pl.keys[i], pl.pts[i]
	pos := searchGE(ks, 0, len(ks), e.Key)
	ks = append(ks, 0)
	ps = append(ps, geo.Point{})
	copy(ks[pos+1:], ks[pos:])
	copy(ps[pos+1:], ps[pos:])
	ks[pos] = e.Key
	ps[pos] = e.Point
	if len(ks) > BlockSize {
		mid := len(ks) / 2
		rightK := make([]float64, len(ks)-mid, BlockSize+1)
		rightP := make([]geo.Point, len(ps)-mid, BlockSize+1)
		copy(rightK, ks[mid:])
		copy(rightP, ps[mid:])
		pl.keys[i] = ks[:mid]
		pl.pts[i] = ps[:mid]
		pl.keys = append(pl.keys, nil)
		pl.pts = append(pl.pts, nil)
		copy(pl.keys[i+2:], pl.keys[i+1:])
		copy(pl.pts[i+2:], pl.pts[i+1:])
		pl.keys[i+1] = rightK
		pl.pts[i+1] = rightP
	} else {
		pl.keys[i] = ks
		pl.pts[i] = ps
	}
	return len(pl.keys)
}

// Truncate shrinks page i to its first n entries.
func (pl *PageList) Truncate(i, n int) {
	if i < 0 || i >= len(pl.keys) {
		return
	}
	if n < 0 {
		n = 0
	}
	if n > len(pl.keys[i]) {
		n = len(pl.keys[i])
	}
	pl.keys[i] = pl.keys[i][:n]
	pl.pts[i] = pl.pts[i][:n]
}

// PageFor returns the index of the page whose key range should hold k
// (the last page whose first key is <= k). The binary search is spelled
// out rather than phrased through sort.Search, whose predicate closure
// would capture pl and k and escape to the heap on every lookup.
//
//elsi:noalloc
func (pl *PageList) PageFor(k float64) int {
	lo, hi := 0, len(pl.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if len(pl.keys[mid]) > 0 && pl.keys[mid][0] > k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Scanned returns the cumulative entries visited.
func (pl *PageList) Scanned() int64 { return pl.scanned.Load() }

// ResetScanned zeroes the counter.
func (pl *PageList) ResetScanned() { pl.scanned.Store(0) }
