// Package store provides the storage substrate shared by the indices:
// a sorted array of (key, point) pairs with block-granular cost
// accounting for the predict-and-scan learned indices, and fixed-
// capacity data pages for LISA-style page storage. The paper stores
// data in blocks of B = 100 points (Section VII-B1); the counters here
// let the benchmark harness report scan work in the same units.
package store

import (
	"sort"
	"sync/atomic"

	"elsi/internal/floats"
	"elsi/internal/geo"
)

// BlockSize is the paper's block size B.
const BlockSize = 100

// Entry is one stored point with its 1-D mapped key.
type Entry struct {
	Key   float64
	Point geo.Point
}

// Sorted is an immutable array of entries sorted by key — the storage
// layout of a map-and-sort index. It counts scanned entries so
// experiments can report scan costs; the counter is atomic so that
// concurrent readers (queries racing with a background rebuild) do
// not race on the accounting.
type Sorted struct {
	entries []Entry
	scanned atomic.Int64
}

// NewSorted builds a Sorted store from keys and points (parallel
// slices), sorting them together by key.
func NewSorted(keys []float64, pts []geo.Point) *Sorted {
	if len(keys) != len(pts) {
		panic("store: keys and points length mismatch")
	}
	es := make([]Entry, len(keys))
	for i := range keys {
		es[i] = Entry{Key: keys[i], Point: pts[i]}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	return &Sorted{entries: es}
}

// NewSortedFromEntries takes ownership of entries, sorting them by key.
func NewSortedFromEntries(es []Entry) *Sorted {
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	return &Sorted{entries: es}
}

// Len returns the number of stored entries.
func (s *Sorted) Len() int { return len(s.entries) }

// Keys returns the sorted key column as a fresh slice.
func (s *Sorted) Keys() []float64 {
	keys := make([]float64, len(s.entries))
	for i, e := range s.entries {
		keys[i] = e.Key
	}
	return keys
}

// At returns the i-th entry in key order.
func (s *Sorted) At(i int) Entry { return s.entries[i] }

// ScanRange visits entries in positions [lo, hi), invoking fn for each;
// fn returning false stops the scan. Visited entries are charged to the
// scan counter.
func (s *Sorted) ScanRange(lo, hi int, fn func(Entry) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.entries) {
		hi = len(s.entries)
	}
	visited := int64(0)
	for i := lo; i < hi; i++ {
		visited++
		if !fn(s.entries[i]) {
			break
		}
	}
	s.scanned.Add(visited) // one atomic op per scan, not per entry
}

// FindPoint scans positions [lo, hi) for a point equal to p and
// reports whether it was found (the predict-and-scan point query).
func (s *Sorted) FindPoint(lo, hi int, p geo.Point) bool {
	found := false
	s.ScanRange(lo, hi, func(e Entry) bool {
		if e.Point == p {
			found = true
			return false
		}
		return true
	})
	return found
}

// CollectWindow appends to out the points in positions [lo, hi) that
// fall inside win and returns the extended slice.
func (s *Sorted) CollectWindow(lo, hi int, win geo.Rect, out []geo.Point) []geo.Point {
	s.ScanRange(lo, hi, func(e Entry) bool {
		if win.Contains(e.Point) {
			out = append(out, e.Point)
		}
		return true
	})
	return out
}

// SearchKey returns the position of the first entry with key >= k.
func (s *Sorted) SearchKey(k float64) int {
	return sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Key >= k })
}

// FirstGE returns the position of the first entry with key >= k using
// hint as a starting guess: it gallops outward from hint and finishes
// with a binary search inside the bracket, so the cost is logarithmic
// in the prediction error rather than in n. Learned indices use it to
// turn a model prediction into an exact boundary.
func (s *Sorted) FirstGE(k float64, hint int) int {
	n := len(s.entries)
	if n == 0 {
		return 0
	}
	if hint < 0 {
		hint = 0
	}
	if hint >= n {
		hint = n - 1
	}
	var lo, hi int
	if s.entries[hint].Key >= k {
		// answer is at or before hint: gallop left until a key < k
		hi = hint + 1
		step := 1
		i := hint
		for i >= 0 && s.entries[i].Key >= k {
			i -= step
			step *= 2
		}
		if i < 0 {
			lo = 0
		} else {
			lo = i
		}
	} else {
		// answer is after hint: gallop right until a key >= k
		lo = hint
		step := 1
		i := hint
		for i < n && s.entries[i].Key < k {
			lo = i
			i += step
			step *= 2
		}
		if i >= n {
			hi = n
		} else {
			hi = i + 1
		}
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return s.entries[lo+i].Key >= k })
}

// FirstGT returns the position of the first entry with key > k, with
// the same galloping strategy as FirstGE.
func (s *Sorted) FirstGT(k float64, hint int) int {
	i := s.FirstGE(k, hint)
	for i < len(s.entries) && floats.Eq(s.entries[i].Key, k) {
		i++
	}
	return i
}

// Scanned returns the cumulative number of entries visited by scans.
func (s *Sorted) Scanned() int64 { return s.scanned.Load() }

// ResetScanned zeroes the scan counter (called between experiment
// phases).
func (s *Sorted) ResetScanned() { s.scanned.Store(0) }

// Blocks returns the number of B-sized blocks the store occupies.
func (s *Sorted) Blocks() int {
	return (len(s.entries) + BlockSize - 1) / BlockSize
}

// --- Pages (LISA-style) -----------------------------------------------

// Page is a fixed-capacity data page. LISA appends inserted points to
// the page their shard maps to and splits full pages.
type Page struct {
	Entries []Entry
}

// Full reports whether the page has reached BlockSize entries.
func (p *Page) Full() bool { return len(p.Entries) >= BlockSize }

// PageList is an ordered list of pages covering contiguous key ranges.
// The scan counter is atomic for the same reason as Sorted's; the page
// structure itself is only mutated by Insert/Truncate, which callers
// must serialize against scans.
type PageList struct {
	pages   [][]Entry
	scanned atomic.Int64
}

// NewPageList packs sorted entries into pages of BlockSize.
func NewPageList(sorted []Entry) *PageList {
	pl := &PageList{}
	for start := 0; start < len(sorted); start += BlockSize {
		end := start + BlockSize
		if end > len(sorted) {
			end = len(sorted)
		}
		page := make([]Entry, end-start, BlockSize+1)
		copy(page, sorted[start:end])
		pl.pages = append(pl.pages, page)
	}
	return pl
}

// NumPages returns the page count.
func (pl *PageList) NumPages() int { return len(pl.pages) }

// Len returns the total number of stored entries.
func (pl *PageList) Len() int {
	total := 0
	for _, p := range pl.pages {
		total += len(p)
	}
	return total
}

// Page returns the i-th page's entries.
func (pl *PageList) Page(i int) []Entry { return pl.pages[i] }

// ScanPages visits pages [lo, hi), charging every entry visited.
func (pl *PageList) ScanPages(lo, hi int, fn func(Entry) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(pl.pages) {
		hi = len(pl.pages)
	}
	visited := int64(0)
	defer func() { pl.scanned.Add(visited) }()
	for i := lo; i < hi; i++ {
		for _, e := range pl.pages[i] {
			visited++
			if !fn(e) {
				return
			}
		}
	}
}

// Insert adds e to page i, keeping the page's key order, and splits the
// page when it overflows. It returns the number of pages after the
// insert (splits shift subsequent page indices).
func (pl *PageList) Insert(i int, e Entry) int {
	if len(pl.pages) == 0 {
		pl.pages = [][]Entry{{e}}
		return 1
	}
	if i < 0 {
		i = 0
	}
	if i >= len(pl.pages) {
		i = len(pl.pages) - 1
	}
	page := pl.pages[i]
	pos := sort.Search(len(page), func(j int) bool { return page[j].Key >= e.Key })
	page = append(page, Entry{})
	copy(page[pos+1:], page[pos:])
	page[pos] = e
	if len(page) > BlockSize {
		mid := len(page) / 2
		left := page[:mid]
		right := make([]Entry, len(page)-mid, BlockSize+1)
		copy(right, page[mid:])
		pl.pages[i] = left
		pl.pages = append(pl.pages, nil)
		copy(pl.pages[i+2:], pl.pages[i+1:])
		pl.pages[i+1] = right
	} else {
		pl.pages[i] = page
	}
	return len(pl.pages)
}

// Truncate shrinks page i to its first n entries.
func (pl *PageList) Truncate(i, n int) {
	if i < 0 || i >= len(pl.pages) {
		return
	}
	if n < 0 {
		n = 0
	}
	if n > len(pl.pages[i]) {
		n = len(pl.pages[i])
	}
	pl.pages[i] = pl.pages[i][:n]
}

// PageFor returns the index of the page whose key range should hold k
// (the last page whose first key is <= k).
func (pl *PageList) PageFor(k float64) int {
	if len(pl.pages) == 0 {
		return 0
	}
	i := sort.Search(len(pl.pages), func(j int) bool {
		return len(pl.pages[j]) > 0 && pl.pages[j][0].Key > k
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// Scanned returns the cumulative entries visited.
func (pl *PageList) Scanned() int64 { return pl.scanned.Load() }

// ResetScanned zeroes the counter.
func (pl *PageList) ResetScanned() { pl.scanned.Store(0) }
