package rmi

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedKeys(rng *rand.Rand, n int, skew float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Pow(rng.Float64(), skew)
	}
	sort.Float64s(v)
	return v
}

func testTrainers() map[string]Trainer {
	return map[string]Trainer{
		"linear":    LinearTrainer(),
		"piecewise": PiecewiseTrainer(1.0 / 128),
		"ffn":       FFNTrainer(FFNConfig{Hidden: 12, Epochs: 80, Seed: 1}),
	}
}

func TestTrainersPredictUniformCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 2000, 1)
	for name, tr := range testTrainers() {
		m := tr(keys)
		// for uniform keys, CDF(k) ~ k
		for _, k := range []float64{0.1, 0.5, 0.9} {
			got := m.PredictCDF(k)
			if math.Abs(got-k) > 0.1 {
				t.Errorf("%s: PredictCDF(%v) = %v, want ~%v", name, k, got, k)
			}
		}
	}
}

func TestTrainersDegenerate(t *testing.T) {
	for name, tr := range testTrainers() {
		m := tr(nil)
		if v := m.PredictCDF(0.5); v < 0 || v > 1 {
			t.Errorf("%s: empty-set prediction %v out of range", name, v)
		}
		m = tr([]float64{3, 3, 3})
		if v := m.PredictCDF(3); v < 0 || v > 1 {
			t.Errorf("%s: constant-set prediction %v out of range", name, v)
		}
	}
}

func TestPredictCDFClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := sortedKeys(rng, 500, 2)
	for name, tr := range testTrainers() {
		m := tr(keys)
		for _, k := range []float64{-100, 0, 0.5, 1, 100} {
			v := m.PredictCDF(k)
			if v < 0 || v > 1 {
				t.Errorf("%s: PredictCDF(%v) = %v outside [0,1]", name, k, v)
			}
		}
	}
}

func TestErrorBoundsGuaranteeContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := sortedKeys(rng, 3000, 3)
	for name, tr := range testTrainers() {
		b := NewBounded(tr, keys, keys)
		for i, k := range keys {
			lo, hi := b.SearchRange(k)
			if i < lo || i >= hi {
				t.Fatalf("%s: key %d (%v) outside search range [%d,%d)", name, i, k, lo, hi)
			}
		}
	}
}

func TestErrorBoundsOnReducedTrainingSet(t *testing.T) {
	// ELSI's core invariant: train on a small subset, compute error
	// bounds on the full set, and predict-and-scan must still find
	// every point.
	rng := rand.New(rand.NewSource(4))
	full := sortedKeys(rng, 5000, 4)
	small := make([]float64, 0, 100)
	for i := 0; i < len(full); i += 50 {
		small = append(small, full[i])
	}
	b := NewBounded(LinearTrainer(), small, full)
	for i, k := range full {
		lo, hi := b.SearchRange(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d outside range [%d,%d)", i, lo, hi)
		}
	}
}

func TestPiecewiseRespectsEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := sortedKeys(rng, 2000, 2)
	eps := 1.0 / 64
	m := PiecewiseTrainer(eps)(keys).(*PiecewiseModel)
	n := len(keys)
	for i, k := range keys {
		want := float64(i) / float64(n)
		got := m.PredictCDF(k)
		if math.Abs(got-want) > eps+1e-9 {
			t.Fatalf("piecewise error %v at key %d exceeds eps %v", got-want, i, eps)
		}
	}
	if m.Segments() == 0 {
		t.Error("no segments built")
	}
	if m.Segments() >= n {
		t.Errorf("degenerate segmentation: %d segments for %d keys", m.Segments(), n)
	}
}

func TestPiecewiseDuplicateKeys(t *testing.T) {
	keys := []float64{1, 1, 1, 1, 2, 2, 3}
	m := PiecewiseTrainer(0.05)(keys)
	if v := m.PredictCDF(1); v < 0 || v > 1 {
		t.Errorf("PredictCDF(1) = %v", v)
	}
	lo, hi := ErrorBounds(m, keys)
	if lo < 0 || hi < 0 {
		t.Errorf("bounds %d/%d negative", lo, hi)
	}
	b := &Bounded{Model: m, N: len(keys), ErrLo: lo, ErrHi: hi}
	for i, k := range keys {
		rlo, rhi := b.SearchRange(k)
		if i < rlo || i >= rhi {
			t.Fatalf("dup key %d outside [%d,%d)", i, rlo, rhi)
		}
	}
}

func TestBoundedPredictRankEdges(t *testing.T) {
	b := &Bounded{Model: ConstModel(1.0), N: 10}
	if got := b.PredictRank(99); got != 9 {
		t.Errorf("PredictRank clamps to N-1: got %d", got)
	}
	b2 := &Bounded{Model: ConstModel(0), N: 0}
	if got := b2.PredictRank(1); got != 0 {
		t.Errorf("empty PredictRank = %d", got)
	}
	lo, hi := b2.SearchRange(1)
	if lo != 0 || hi != 0 {
		t.Errorf("empty SearchRange = [%d,%d)", lo, hi)
	}
}

func TestErrBoundsWidth(t *testing.T) {
	b := &Bounded{ErrLo: 3, ErrHi: 4}
	if b.ErrBoundsWidth() != 7 {
		t.Errorf("ErrBoundsWidth = %d", b.ErrBoundsWidth())
	}
}

func TestStagedFindsAllKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := sortedKeys(rng, 4000, 4)
	s := NewStaged(keys, 8, LinearTrainer(), PiecewiseTrainer(1.0/128))
	for i, k := range keys {
		lo, hi := s.SearchRangeWide(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d (%v) outside staged range [%d,%d)", i, k, lo, hi)
		}
	}
	if s.N() != len(keys) {
		t.Errorf("N = %d", s.N())
	}
	if len(s.Leaves()) != 8 {
		t.Errorf("leaves = %d", len(s.Leaves()))
	}
}

func TestStagedWithLeafBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := sortedKeys(rng, 1000, 2)
	builds := 0
	s := NewStagedWithLeafBuilder(keys, 4, LinearTrainer(), func(start int, part []float64) *Bounded {
		builds++
		if start < 0 || start+len(part) > len(keys) {
			t.Fatalf("bad start %d for part of %d", start, len(part))
		}
		return NewBounded(LinearTrainer(), part, part)
	})
	if builds != 4 {
		t.Errorf("leaf builder called %d times, want 4", builds)
	}
	for i, k := range keys {
		lo, hi := s.SearchRangeWide(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d outside range", i)
		}
	}
}

func TestStagedDegenerate(t *testing.T) {
	s := NewStaged(nil, 4, LinearTrainer(), LinearTrainer())
	lo, hi := s.SearchRange(1)
	if lo != 0 || hi != 0 {
		t.Errorf("empty staged SearchRange = [%d,%d)", lo, hi)
	}
	lo, hi = s.SearchRangeWide(1)
	if lo != 0 || hi != 0 {
		t.Errorf("empty staged SearchRangeWide = [%d,%d)", lo, hi)
	}
	// fanout below 1 is clamped
	s2 := NewStaged([]float64{1, 2, 3}, 0, LinearTrainer(), LinearTrainer())
	if len(s2.Leaves()) != 1 {
		t.Errorf("clamped fanout leaves = %d", len(s2.Leaves()))
	}
}

func TestQuickSearchRangeAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	keys := sortedKeys(rng, 1000, 3)
	b := NewBounded(PiecewiseTrainer(1.0/64), keys, keys)
	f := func(raw float64) bool {
		k := math.Mod(math.Abs(raw), 2) // may lie outside key domain
		lo, hi := b.SearchRange(k)
		return lo >= 0 && hi <= b.N && lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFFNBeatsTrivialOnSkew(t *testing.T) {
	// On heavily skewed keys the trained FFN must have much tighter
	// bounds than a constant-prediction model, demonstrating it really
	// learned the CDF.
	rng := rand.New(rand.NewSource(9))
	keys := sortedKeys(rng, 3000, 5)
	ffn := NewBounded(FFNTrainer(FFNConfig{Hidden: 16, Epochs: 150, Seed: 1}), keys, keys)
	trivial := NewBounded(func([]float64) Model { return ConstModel(0.5) }, keys, keys)
	if ffn.ErrBoundsWidth() >= trivial.ErrBoundsWidth()/2 {
		t.Errorf("FFN width %d not better than trivial %d", ffn.ErrBoundsWidth(), trivial.ErrBoundsWidth())
	}
}

func BenchmarkFFNPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 1000, 2)
	m := FFNTrainer(FFNConfig{Hidden: 16, Epochs: 30, Seed: 1})(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictCDF(0.37)
	}
}

func BenchmarkPiecewisePredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 100000, 2)
	m := PiecewiseTrainer(1.0 / 256)(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictCDF(0.37)
	}
}

// BenchmarkModelFamily* are the ablation benches for the model-family
// design choice (FFN as in the paper vs piecewise-linear).
func BenchmarkModelFamilyFFNTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 10000, 3)
	tr := FFNTrainer(FFNConfig{Hidden: 16, Epochs: 60, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr(keys)
	}
}

func BenchmarkModelFamilyPiecewiseTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 10000, 3)
	tr := PiecewiseTrainer(1.0 / 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr(keys)
	}
}

func TestTheoreticalBoundsHold(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	keys := sortedKeys(rng, 5000, 4)
	for _, eps := range []float64{1.0 / 32, 1.0 / 128, 1.0 / 512} {
		b := NewBoundedTheoretical(keys, eps)
		// the theoretical bound must contain every key with no scan
		for i, k := range keys {
			lo, hi := b.SearchRange(k)
			if i < lo || i >= hi {
				t.Fatalf("eps=%v: key %d outside [%d,%d)", eps, i, lo, hi)
			}
		}
		// and it must not be wider than the guarantee promises
		want := int(eps*float64(len(keys)))*2 + 2
		if b.ErrBoundsWidth() > want {
			t.Errorf("eps=%v: width %d > %d", eps, b.ErrBoundsWidth(), want)
		}
	}
}

func TestTheoreticalVsEmpiricalWidth(t *testing.T) {
	// the empirical bound is data-dependent and usually tighter than
	// the worst-case theoretical one for the same model
	rng := rand.New(rand.NewSource(11))
	keys := sortedKeys(rng, 5000, 3)
	eps := 1.0 / 64
	theo := NewBoundedTheoretical(keys, eps)
	emp := NewBounded(PiecewiseTrainer(eps), keys, keys)
	if emp.ErrBoundsWidth() > theo.ErrBoundsWidth()+2 {
		t.Errorf("empirical width %d exceeds theoretical %d", emp.ErrBoundsWidth(), theo.ErrBoundsWidth())
	}
}

func TestRadixSplineBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, skew := range []float64{1, 4} {
		keys := sortedKeys(rng, 4000, skew)
		for _, bits := range []int{0, 8, 12} {
			m := RadixSplineTrainer(1.0/128, bits)(keys).(*RadixSplineModel)
			if m.Knots() < 2 {
				t.Fatalf("skew=%v bits=%d: %d knots", skew, bits, m.Knots())
			}
			// predictions clamped and roughly correct
			n := len(keys)
			worst := 0.0
			for i, k := range keys {
				got := m.PredictCDF(k)
				if got < 0 || got > 1 {
					t.Fatalf("PredictCDF out of range: %v", got)
				}
				if d := math.Abs(got - float64(i)/float64(n)); d > worst {
					worst = d
				}
			}
			if worst > 3.0/128 {
				t.Errorf("skew=%v bits=%d: worst CDF error %v", skew, bits, worst)
			}
		}
	}
}

func TestRadixSplineMatchesNoTable(t *testing.T) {
	// the radix table is a pure accelerator: predictions must be
	// identical with and without it
	rng := rand.New(rand.NewSource(13))
	keys := sortedKeys(rng, 3000, 3)
	with := RadixSplineTrainer(1.0/256, 10)(keys)
	without := RadixSplineTrainer(1.0/256, 0)(keys)
	for trial := 0; trial < 2000; trial++ {
		k := rng.Float64() * 1.2
		a, b := with.PredictCDF(k), without.PredictCDF(k)
		if a != b {
			t.Fatalf("radix table changes prediction at %v: %v vs %v", k, a, b)
		}
	}
}

func TestRadixSplineContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	keys := sortedKeys(rng, 5000, 4)
	b := NewBounded(RadixSplineTrainer(1.0/128, 10), keys, keys)
	for i, k := range keys {
		lo, hi := b.SearchRange(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d outside [%d,%d)", i, lo, hi)
		}
	}
}

func TestRadixSplineDegenerate(t *testing.T) {
	tr := RadixSplineTrainer(1.0/64, 8)
	m := tr(nil)
	if v := m.PredictCDF(1); v != 0 {
		t.Errorf("empty model PredictCDF = %v", v)
	}
	m = tr([]float64{5, 5, 5, 5})
	if v := m.PredictCDF(5); v < 0 || v > 1 {
		t.Errorf("constant keys PredictCDF = %v", v)
	}
	m = tr([]float64{1, 2})
	if v := m.PredictCDF(1.5); v < 0 || v > 1 {
		t.Errorf("two keys PredictCDF = %v", v)
	}
}

func BenchmarkModelFamilyRadixSplineTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 10000, 3)
	tr := RadixSplineTrainer(1.0/256, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr(keys)
	}
}

func BenchmarkRadixSplinePredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 100000, 2)
	m := RadixSplineTrainer(1.0/256, 12)(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictCDF(0.37)
	}
}

// TestStagedTinyInputsRouting pins the n < fanout regression: with
// integer split boundaries the rank-to-leaf mapping must follow the
// actual splits, not the equi-count arithmetic (which lands single-key
// builds on an empty leaf and returns an empty search range).
func TestStagedTinyInputsRouting(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for fanout := 1; fanout <= 8; fanout++ {
			keys := make([]float64, n)
			for i := range keys {
				keys[i] = float64(i+1) / float64(n+1)
			}
			s := NewStaged(keys, fanout, LinearTrainer(), LinearTrainer())
			for i, k := range keys {
				lo, hi := s.SearchRangeWide(k)
				if i < lo || i >= hi {
					t.Fatalf("n=%d fanout=%d: key %d outside range [%d,%d)", n, fanout, i, lo, hi)
				}
			}
		}
	}
}
