package rmi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"elsi/internal/nn"
	"elsi/internal/snapshot"
)

// Model serialization for the persistence layer: every trained model a
// snapshot can contain round-trips through AppendModel/DecodeModel
// bit-exactly, so a recovered index predicts exactly what the
// snapshotted one predicted — the foundation of the byte-identical
// recovery guarantee — and recovery performs zero training (counted by
// Trainings; the crash harness asserts the counter does not move).
//
// Models are tagged: rmi's own model kinds use tags below 64; models
// defined in other packages (methods' remapped pool models) register a
// codec with RegisterModelCodec using tags 64 and up.

// Model tags. On-disk values — never renumber.
const (
	tagConst       = 1
	tagLinear      = 2
	tagPiecewise   = 3
	tagFFN         = 4
	tagRadixSpline = 5

	// ExtTagMin is the first tag available to RegisterModelCodec.
	ExtTagMin = 64
)

// --- training counter -----------------------------------------------

var trainings atomic.Int64

// Trainings returns the number of model-training invocations since
// process start, across every trainer path (direct, safe, bounded,
// staged, pool pretraining). Recovery-from-snapshot must not move it.
func Trainings() int64 { return trainings.Load() }

// CountTraining records one model-training invocation. Call sites are
// the funnels that invoke a Trainer; packages that call a Trainer
// directly (base, methods) count through this hook.
func CountTraining() { trainings.Add(1) }

// --- extension registry ----------------------------------------------

// ModelCodec serializes one externally defined model kind.
type ModelCodec struct {
	// Match reports whether m is this codec's kind.
	Match func(m Model) bool
	// Append serializes m onto b.
	Append func(b []byte, m Model) ([]byte, error)
	// Decode reads one model off d.
	Decode func(d *snapshot.Dec) (Model, error)
}

var (
	extMu     sync.RWMutex
	extCodecs map[uint8]ModelCodec
)

// RegisterModelCodec registers a codec for an externally defined model
// kind under tag (>= ExtTagMin). Packages register from init; the tag
// is part of the on-disk format and must never be reused for a
// different kind.
func RegisterModelCodec(tag uint8, c ModelCodec) {
	if tag < ExtTagMin {
		panic(fmt.Sprintf("rmi: model codec tag %d reserved for built-in models", tag))
	}
	extMu.Lock()
	defer extMu.Unlock()
	if extCodecs == nil {
		extCodecs = make(map[uint8]ModelCodec)
	}
	if _, dup := extCodecs[tag]; dup {
		panic(fmt.Sprintf("rmi: duplicate model codec tag %d", tag))
	}
	extCodecs[tag] = c
}

func extCodecFor(m Model) (uint8, ModelCodec, bool) {
	extMu.RLock()
	defer extMu.RUnlock()
	for tag, c := range extCodecs {
		if c.Match(m) {
			return tag, c, true
		}
	}
	return 0, ModelCodec{}, false
}

func extCodecByTag(tag uint8) (ModelCodec, bool) {
	extMu.RLock()
	defer extMu.RUnlock()
	c, ok := extCodecs[tag]
	return c, ok
}

// --- model codec ------------------------------------------------------

// AppendModel serializes m onto b. Unknown model kinds (no built-in
// tag, no registered codec) error rather than silently dropping the
// model.
func AppendModel(b []byte, m Model) ([]byte, error) {
	switch v := m.(type) {
	case constModel:
		b = snapshot.AppendU8(b, tagConst)
		return snapshot.AppendF64(b, float64(v)), nil
	case *LinearModel:
		b = snapshot.AppendU8(b, tagLinear)
		b = snapshot.AppendF64(b, v.Slope)
		return snapshot.AppendF64(b, v.Intercept), nil
	case *PiecewiseModel:
		b = snapshot.AppendU8(b, tagPiecewise)
		b = snapshot.AppendUvarint(b, uint64(len(v.segs)))
		for _, s := range v.segs {
			b = snapshot.AppendF64(b, s.startKey)
			b = snapshot.AppendF64(b, s.slope)
			b = snapshot.AppendF64(b, s.intercept)
		}
		return b, nil
	case *FFNModel:
		netBytes, err := v.net.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("rmi: serialize FFN model: %w", err)
		}
		b = snapshot.AppendU8(b, tagFFN)
		b = snapshot.AppendF64(b, v.min)
		b = snapshot.AppendF64(b, v.max)
		return snapshot.AppendBytes(b, netBytes), nil
	case *RadixSplineModel:
		b = snapshot.AppendU8(b, tagRadixSpline)
		b = snapshot.AppendF64s(b, v.knotX)
		b = snapshot.AppendF64s(b, v.knotY)
		b = snapshot.AppendInt(b, v.radixBits)
		b = snapshot.AppendUvarint(b, uint64(len(v.table)))
		for _, t := range v.table {
			b = snapshot.AppendVarint(b, int64(t))
		}
		b = snapshot.AppendF64(b, v.min)
		return snapshot.AppendF64(b, v.max), nil
	}
	if tag, c, ok := extCodecFor(m); ok {
		b = snapshot.AppendU8(b, tag)
		return c.Append(b, m)
	}
	return nil, fmt.Errorf("rmi: no serializer for model type %T", m)
}

// DecodeModel reads one model off d, validating structure as it goes.
func DecodeModel(d *snapshot.Dec) (Model, error) {
	tag := d.U8()
	if err := d.Err(); err != nil {
		return nil, err
	}
	switch tag {
	case tagConst:
		v := d.F64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return constModel(v), nil
	case tagLinear:
		m := &LinearModel{Slope: d.F64(), Intercept: d.F64()}
		if err := d.Err(); err != nil {
			return nil, err
		}
		return m, nil
	case tagPiecewise:
		n := d.Count(24)
		segs := make([]segment, n)
		for i := range segs {
			segs[i] = segment{startKey: d.F64(), slope: d.F64(), intercept: d.F64()}
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].startKey < segs[i-1].startKey {
				return nil, fmt.Errorf("rmi: piecewise segments not sorted at %d", i)
			}
		}
		return &PiecewiseModel{segs: segs}, nil
	case tagFFN:
		min := d.F64()
		max := d.F64()
		netBytes := d.Bytes()
		if err := d.Err(); err != nil {
			return nil, err
		}
		net := &nn.Network{}
		if err := net.UnmarshalBinary(netBytes); err != nil {
			return nil, fmt.Errorf("rmi: decode FFN network: %w", err)
		}
		return &FFNModel{net: net, min: min, max: max}, nil
	case tagRadixSpline:
		knotX := d.F64s()
		knotY := d.F64s()
		radixBits := d.Int()
		tn := d.Count(1)
		table := make([]int32, tn)
		for i := range table {
			v := d.Varint()
			table[i] = int32(v)
			if d.Err() == nil && int64(table[i]) != v {
				return nil, fmt.Errorf("rmi: radix table entry %d overflows int32", v)
			}
		}
		lo := d.F64()
		hi := d.F64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(knotX) != len(knotY) {
			return nil, fmt.Errorf("rmi: radix spline knot columns mismatch: %d vs %d", len(knotX), len(knotY))
		}
		if radixBits < 0 || radixBits > 30 {
			return nil, fmt.Errorf("rmi: radix bits %d out of range", radixBits)
		}
		for _, t := range table {
			if int(t) < 0 || (len(knotX) > 0 && int(t) >= len(knotX)) || (len(knotX) == 0 && t != 0) {
				return nil, fmt.Errorf("rmi: radix table entry %d out of knot range", t)
			}
		}
		return &RadixSplineModel{knotX: knotX, knotY: knotY, radixBits: radixBits, table: table, min: lo, max: hi}, nil
	}
	if c, ok := extCodecByTag(tag); ok {
		return c.Decode(d)
	}
	return nil, fmt.Errorf("rmi: unknown model tag %d", tag)
}

// AppendBounded serializes a Bounded (model + cardinality + empirical
// error bounds). A nil Bounded encodes as absent.
func AppendBounded(b []byte, bd *Bounded) ([]byte, error) {
	if bd == nil {
		return snapshot.AppendBool(b, false), nil
	}
	b = snapshot.AppendBool(b, true)
	b = snapshot.AppendInt(b, bd.N)
	b = snapshot.AppendInt(b, bd.ErrLo)
	b = snapshot.AppendInt(b, bd.ErrHi)
	return AppendModel(b, bd.Model)
}

// DecodeBounded reads a Bounded written by AppendBounded; nil when it
// was encoded as absent.
func DecodeBounded(d *snapshot.Dec) (*Bounded, error) {
	present := d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	n := d.Int()
	lo := d.Int()
	hi := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || lo < 0 || hi < 0 {
		return nil, fmt.Errorf("rmi: negative bounded fields (n=%d lo=%d hi=%d)", n, lo, hi)
	}
	m, err := DecodeModel(d)
	if err != nil {
		return nil, err
	}
	return &Bounded{Model: m, N: n, ErrLo: lo, ErrHi: hi}, nil
}

// AppendStaged serializes a Staged (root + leaves + splits). A nil
// Staged encodes as absent.
func AppendStaged(b []byte, s *Staged) ([]byte, error) {
	if s == nil {
		return snapshot.AppendBool(b, false), nil
	}
	b = snapshot.AppendBool(b, true)
	b = snapshot.AppendInt(b, s.n)
	b = snapshot.AppendInts(b, s.splits)
	var err error
	b, err = AppendBounded(b, s.root)
	if err != nil {
		return nil, err
	}
	b = snapshot.AppendUvarint(b, uint64(len(s.leaves)))
	for _, leaf := range s.leaves {
		b, err = AppendBounded(b, leaf)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeStaged reads a Staged written by AppendStaged; nil when it was
// encoded as absent. The splits table is validated against n and the
// leaf count so a corrupted snapshot cannot produce out-of-range leaf
// dispatch.
func DecodeStaged(d *snapshot.Dec) (*Staged, error) {
	present := d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	n := d.Int()
	splits := d.Ints()
	if err := d.Err(); err != nil {
		return nil, err
	}
	root, err := DecodeBounded(d)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("rmi: staged model missing root")
	}
	leafN := d.Count(1)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || len(splits) != leafN+1 {
		return nil, fmt.Errorf("rmi: staged splits length %d does not match %d leaves", len(splits), leafN)
	}
	for i, sp := range splits {
		if sp < 0 || sp > n || (i > 0 && sp < splits[i-1]) {
			return nil, fmt.Errorf("rmi: staged split %d invalid", sp)
		}
	}
	if len(splits) > 0 && (splits[0] != 0 || splits[len(splits)-1] != n) {
		return nil, fmt.Errorf("rmi: staged splits do not cover [0, %d]", n)
	}
	leaves := make([]*Bounded, leafN)
	for i := range leaves {
		leaf, err := DecodeBounded(d)
		if err != nil {
			return nil, err
		}
		if leaf == nil {
			return nil, fmt.Errorf("rmi: staged model missing leaf %d", i)
		}
		leaves[i] = leaf
	}
	return &Staged{root: root, leaves: leaves, splits: splits, n: n}, nil
}
