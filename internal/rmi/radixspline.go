package rmi

import (
	"math"
	"sort"

	"elsi/internal/floats"
)

// This file implements a RadixSpline-style rank model (Kipf et al.
// 2020, reference [7] of the paper): a single-pass greedy spline over
// the key CDF with a guaranteed per-key error, plus a radix table over
// the top bits of the key that narrows the spline-segment search to a
// handful of candidates. It is a third model family next to the FFN
// (the paper's choice) and the shrinking-cone piecewise model —
// single-pass construction makes it the cheapest trainer of the three.

// RadixSplineModel approximates the CDF with spline knots and a radix
// lookup table.
type RadixSplineModel struct {
	knotX []float64 // knot key values, ascending
	knotY []float64 // CDF at each knot
	// radix table: prefix -> first knot index whose key has that prefix
	radixBits int
	table     []int32
	min, max  float64
}

// PredictCDF implements Model: locate the spline segment via the radix
// table plus a short local search, then interpolate.
func (m *RadixSplineModel) PredictCDF(key float64) float64 {
	n := len(m.knotX)
	if n == 0 {
		return 0
	}
	if key <= m.knotX[0] {
		return clamp01f(m.knotY[0])
	}
	if key >= m.knotX[n-1] {
		return clamp01f(m.knotY[n-1])
	}
	// The radix table narrows the search: keys with prefix p can only
	// be bracketed by knots in [table[p], table[p+1]] (prefixes are
	// monotone in the key).
	lo, hi := 0, n
	if m.radixBits > 0 {
		p := m.prefix(key)
		lo = int(m.table[p])
		if p+1 < len(m.table) {
			hi = int(m.table[p+1]) + 1
		}
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
	}
	// binary search within the bucket for the first knot beyond key
	i := lo + sort.Search(hi-lo, func(i int) bool { return m.knotX[lo+i] > key })
	if i == 0 {
		i = 1
	}
	x0, x1 := m.knotX[i-1], m.knotX[i]
	y0, y1 := m.knotY[i-1], m.knotY[i]
	if floats.Eq(x1, x0) {
		return clamp01f(y1)
	}
	return clamp01f(y0 + (y1-y0)*(key-x0)/(x1-x0))
}

// Knots returns the number of spline knots.
func (m *RadixSplineModel) Knots() int { return len(m.knotX) }

// prefix extracts the radixBits top bits of the key's position within
// [min, max].
func (m *RadixSplineModel) prefix(key float64) int {
	f := (key - m.min) / (m.max - m.min)
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		return (1 << m.radixBits) - 1
	}
	return int(f * float64(int(1)<<m.radixBits))
}

func clamp01f(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// RadixSplineTrainer returns a Trainer building RadixSplineModels with
// the given CDF-space error tolerance eps and radix table width (bits;
// 0 disables the table, <0 picks a default).
func RadixSplineTrainer(eps float64, radixBits int) Trainer {
	if eps <= 0 {
		eps = 1.0 / 256
	}
	if radixBits < 0 {
		radixBits = 12
	}
	return func(keys []float64) Model {
		m := &RadixSplineModel{radixBits: radixBits}
		n := len(keys)
		if n == 0 {
			return m
		}
		m.min, m.max = keys[0], keys[n-1]
		buildSpline(m, keys, eps)
		if floats.Eq(m.max, m.min) {
			m.radixBits = 0
		}
		if m.radixBits > 0 {
			buildRadixTable(m)
		} else {
			m.radixBits = 0
		}
		return m
	}
}

// buildSpline runs the single-pass greedy spline construction: extend
// the current segment while every intermediate point stays within eps
// of the interpolation (the shrinking error corridor of RadixSpline).
func buildSpline(m *RadixSplineModel, keys []float64, eps float64) {
	n := len(keys)
	addKnot := func(x, y float64) {
		// collapse duplicate x (tied keys): keep the larger CDF
		if k := len(m.knotX); k > 0 && floats.Eq(m.knotX[k-1], x) {
			if y > m.knotY[k-1] {
				m.knotY[k-1] = y
			}
			return
		}
		m.knotX = append(m.knotX, x)
		m.knotY = append(m.knotY, y)
	}
	addKnot(keys[0], 0)
	baseX, baseY := keys[0], 0.0
	// slope corridor to the candidate end point
	loSlope, hiSlope := math.Inf(-1), math.Inf(1)
	lastX, lastY := baseX, baseY
	for i := 1; i < n; i++ {
		x := keys[i]
		y := float64(i) / float64(n)
		if floats.Eq(x, baseX) {
			lastX, lastY = x, y
			continue
		}
		lo := (y - eps - baseY) / (x - baseX)
		hi := (y + eps - baseY) / (x - baseX)
		newLo, newHi := math.Max(loSlope, lo), math.Min(hiSlope, hi)
		if newLo > newHi {
			// close the segment at the previous point
			addKnot(lastX, lastY)
			baseX, baseY = lastX, lastY
			loSlope, hiSlope = math.Inf(-1), math.Inf(1)
			if !floats.Eq(x, baseX) {
				loSlope = (y - eps - baseY) / (x - baseX)
				hiSlope = (y + eps - baseY) / (x - baseX)
			}
		} else {
			loSlope, hiSlope = newLo, newHi
		}
		lastX, lastY = x, y
	}
	addKnot(keys[n-1], 1)
}

// buildRadixTable fills table[p] with the index of the first knot
// whose key prefix is >= p, computed in one sweep over the knots.
func buildRadixTable(m *RadixSplineModel) {
	size := 1 << m.radixBits
	m.table = make([]int32, size)
	ki := 0
	for p := 0; p < size; p++ {
		for ki < len(m.knotX) && m.prefix(m.knotX[ki]) < p {
			ki++
		}
		m.table[p] = int32(ki)
	}
}
