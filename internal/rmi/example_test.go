package rmi_test

import (
	"fmt"

	"elsi/internal/rmi"
)

// The heart of predict-and-scan: a rank model trained on a REDUCED key
// set still answers exactly, because the error bounds are computed
// over the full set.
func ExampleNewBounded() {
	full := make([]float64, 10000)
	for i := range full {
		u := float64(i) / 10000
		full[i] = u * u // skewed CDF
	}
	// train on every 100th key only (the SP method's output)
	var reduced []float64
	for i := 0; i < len(full); i += 100 {
		reduced = append(reduced, full[i])
	}
	m := rmi.NewBounded(rmi.PiecewiseTrainer(1.0/64), reduced, full)

	// every stored key is inside its predicted scan range
	misses := 0
	for i, k := range full {
		lo, hi := m.SearchRange(k)
		if i < lo || i >= hi {
			misses++
		}
	}
	fmt.Printf("trained on %d of %d keys, misses: %d\n", len(reduced), len(full), misses)
	// Output:
	// trained on 100 of 10000 keys, misses: 0
}

func ExamplePiecewiseTrainer() {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i) / 1000
	}
	m := rmi.PiecewiseTrainer(1.0 / 32)(keys).(*rmi.PiecewiseModel)
	// uniform keys need a single linear piece
	fmt.Println("segments:", m.Segments())
	fmt.Printf("cdf(0.25) ~ %.2f\n", m.PredictCDF(0.25))
	// Output:
	// segments: 1
	// cdf(0.25) ~ 0.25
}
