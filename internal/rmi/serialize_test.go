package rmi

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/snapshot"
)

func trainKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	sort.Float64s(keys)
	return keys
}

// roundtripModel encodes m, decodes it back, and checks the two
// predict identically over probe keys (byte-identical re-encoding is
// checked too — the decode must lose nothing).
func roundtripModel(t *testing.T, m Model) {
	t.Helper()
	b, err := AppendModel(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	d := snapshot.NewDec(b)
	got, err := DecodeModel(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := AppendModel(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-encoded model differs: %d vs %d bytes", len(b), len(b2))
	}
	for k := -0.25; k <= 1.25; k += 0.01 {
		a, bb := m.PredictCDF(k), got.PredictCDF(k)
		if a != bb && !(math.IsNaN(a) && math.IsNaN(bb)) {
			t.Fatalf("PredictCDF(%g): %g vs %g", k, a, bb)
		}
	}
}

func TestModelCodecRoundtrip(t *testing.T) {
	keys := trainKeys(2000, 1)
	trainers := map[string]Trainer{
		"linear":      LinearTrainer(),
		"piecewise":   PiecewiseTrainer(1.0 / 128),
		"ffn":         FFNTrainer(DefaultFFNConfig()),
		"radixspline": RadixSplineTrainer(1.0/128, 8),
	}
	for name, tr := range trainers {
		t.Run(name, func(t *testing.T) {
			roundtripModel(t, tr(keys))
		})
	}
	t.Run("const", func(t *testing.T) {
		// Degenerate input trains the constant fallback model.
		roundtripModel(t, LinearTrainer()([]float64{0.5, 0.5, 0.5}))
	})
}

func TestBoundedCodecRoundtrip(t *testing.T) {
	keys := trainKeys(3000, 2)
	b := NewBounded(PiecewiseTrainer(1.0/64), keys, keys)
	enc, err := AppendBounded(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	d := snapshot.NewDec(enc)
	got, err := DecodeBounded(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got.ErrLo != b.ErrLo || got.ErrHi != b.ErrHi {
		t.Fatalf("bounds %d/%d, want %d/%d", got.ErrLo, got.ErrHi, b.ErrLo, b.ErrHi)
	}
	for _, k := range trainKeys(100, 3) {
		alo, ahi := b.SearchRange(k)
		blo, bhi := got.SearchRange(k)
		if alo != blo || ahi != bhi {
			t.Fatalf("SearchRange(%g): [%d,%d] vs [%d,%d]", k, alo, ahi, blo, bhi)
		}
	}

	// nil Bounded roundtrips to nil (absent optional model).
	encNil, err := AppendBounded(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dn := snapshot.NewDec(encNil)
	gotNil, err := DecodeBounded(dn)
	if err != nil || gotNil != nil {
		t.Fatalf("nil roundtrip: %v %v", gotNil, err)
	}
}

func TestStagedCodecRoundtrip(t *testing.T) {
	keys := trainKeys(5000, 4)
	st := NewStaged(keys, 8, LinearTrainer(), PiecewiseTrainer(1.0/64))
	enc, err := AppendStaged(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	d := snapshot.NewDec(enc)
	got, err := DecodeStaged(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, k := range trainKeys(200, 5) {
		alo, ahi := st.SearchRange(k)
		blo, bhi := got.SearchRange(k)
		if alo != blo || ahi != bhi {
			t.Fatalf("SearchRange(%g): [%d,%d] vs [%d,%d]", k, alo, ahi, blo, bhi)
		}
	}
}

func TestModelCodecHostileInput(t *testing.T) {
	keys := trainKeys(500, 6)
	enc, err := AppendModel(nil, PiecewiseTrainer(1.0/64)(keys))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		d := snapshot.NewDec(enc[:cut])
		if _, err := DecodeModel(d); err == nil {
			if err := d.Close(); err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
		}
	}
	// An unregistered tag must be rejected, not misdecoded.
	bogus := append([]byte(nil), enc...)
	bogus[0] = 0xFD
	d := snapshot.NewDec(bogus)
	if _, err := DecodeModel(d); err == nil {
		t.Fatal("unknown model tag accepted")
	}
}
