package rmi

import (
	"context"
	"sync"

	"elsi/internal/faults"
	"elsi/internal/parallel"
)

// SafeTrain runs trainer on trainKeys with panic isolation: a panic
// inside the trainer (NaN-poisoned weights, a degenerate slice bound)
// comes back as a *parallel.PanicError instead of crashing the
// process, which is what lets the degradation ladder move on to the
// next method.
func SafeTrain(trainer Trainer, trainKeys []float64) (m Model, err error) {
	defer func() {
		if pe := parallel.Recovered(recover()); pe != nil {
			m, err = nil, pe
		}
	}()
	CountTraining()
	return trainer(trainKeys), nil
}

// ErrorBoundsCtx is ErrorBoundsWorkers with cooperative cancellation
// and panic isolation: the scan checks ctx at block boundaries and
// aborts early when the build budget is spent. On success the bounds
// are identical to ErrorBoundsWorkers for any worker count. Injection
// point: "bounds/scan".
func ErrorBoundsCtx(ctx context.Context, m Model, sortedKeys []float64, workers int) (errLo, errHi int, err error) {
	if err := faults.HitCtx(ctx, "bounds/scan"); err != nil {
		return 0, 0, err
	}
	n := len(sortedKeys)
	// One predictor per worker goroutine, pooled so the block-granular
	// callback does not allocate scratch per block.
	pool := sync.Pool{New: func() any {
		p := PredictorOf(m)
		return &p
	}}
	return parallel.MaxReduceCtx(ctx, n, workers, func(lo, hi int) (int, int) {
		pp := pool.Get().(*func(key float64) float64)
		defer pool.Put(pp)
		predict := *pp
		cLo, cHi := 0, 0
		for i := lo; i < hi; i++ {
			pred := int(predict(sortedKeys[i]) * float64(n))
			if pred < 0 {
				pred = 0
			}
			if pred >= n {
				pred = n - 1
			}
			if d := pred - i; d > cLo {
				cLo = d
			}
			if d := i - pred; d > cHi {
				cHi = d
			}
		}
		return cLo, cHi
	})
}

// NewBoundedCtx is NewBoundedWorkers with cancellation and panic
// isolation across both stages: the training call is wrapped by
// SafeTrain and the error-bound scan by ErrorBoundsCtx. On error the
// returned Bounded is nil.
func NewBoundedCtx(ctx context.Context, trainer Trainer, trainKeys, fullKeys []float64, workers int) (*Bounded, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := SafeTrain(trainer, trainKeys)
	if err != nil {
		return nil, err
	}
	lo, hi, err := ErrorBoundsCtx(ctx, m, fullKeys, workers)
	if err != nil {
		return nil, err
	}
	return &Bounded{Model: m, N: len(fullKeys), ErrLo: lo, ErrHi: hi}, nil
}

// NewStagedParallelCtx is NewStagedParallel for fallible leaf builders:
// buildLeaf may return an error (a cancelled or failed per-leaf build),
// leaf builder panics are recovered into *parallel.PanicError, and no
// new leaves start once ctx is done. On any error the partial Staged is
// discarded and the first error (panics outranking cancellations) is
// returned.
func NewStagedParallelCtx(ctx context.Context, sortedKeys []float64, fanout int, rootTrainer Trainer, buildLeaf func(start int, part []float64) (*Bounded, error), workers int) (*Staged, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(sortedKeys)
	if fanout < 1 {
		fanout = 1
	}
	workers = parallel.Resolve(workers)
	root, err := NewBoundedCtx(ctx, rootTrainer, sortedKeys, sortedKeys, workers)
	if err != nil {
		return nil, err
	}
	s := &Staged{root: root, n: n}
	s.splits = make([]int, fanout+1)
	for i := 0; i <= fanout; i++ {
		s.splits[i] = i * n / fanout
	}
	s.leaves = make([]*Bounded, fanout)
	var sink parallel.ErrSink
	build := func(i int) (err error) {
		defer func() {
			if pe := parallel.Recovered(recover()); pe != nil {
				err = pe
			}
		}()
		part := sortedKeys[s.splits[i]:s.splits[i+1]]
		if len(part) == 0 {
			s.leaves[i] = &Bounded{Model: constModel(0), N: 0}
			return nil
		}
		b, err := buildLeaf(s.splits[i], part)
		if err != nil {
			return err
		}
		s.leaves[i] = b
		return nil
	}
	if workers == 1 {
		for i := 0; i < fanout; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := build(i); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < fanout; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			sink.Record(build(i))
		}(i)
	}
	wg.Wait()
	if err := sink.Get(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
