// Package rmi provides the learned rank models at the heart of every
// map-and-sort index: functions that approximate the CDF of a sorted
// key set, so that rank(key) ~ n * model(key). It offers the FFN model
// family the paper uses for all prediction models, plus linear and
// piecewise-linear alternatives used as ablation baselines, staged
// (RMI-style) composition, and the empirical error-bound computation of
// Algorithm 1 line 6.
package rmi

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"elsi/internal/floats"
	"elsi/internal/nn"
	"elsi/internal/parallel"
)

// Model approximates the empirical CDF of a key set: PredictCDF returns
// the estimated fraction of keys that are <= key, in [0, 1].
type Model interface {
	PredictCDF(key float64) float64
}

// Trainer builds a Model from a sorted, ascending key slice. The slice
// is the training set — under ELSI that is the reduced set Ds, while
// the error bounds are later computed against the full set D.
type Trainer func(sortedKeys []float64) Model

// Bounded pairs a model with the empirical error bounds required by the
// predict-and-scan query paradigm. N is the cardinality of the data set
// the model indexes (the full D, not the training set).
type Bounded struct {
	Model
	N     int
	ErrLo int // max units the prediction exceeds the true rank
	ErrHi int // max units the prediction falls short of the true rank
}

// PredictRank returns the estimated storage position of key in [0, N-1].
//
//elsi:noalloc
func (b *Bounded) PredictRank(key float64) int {
	if b.N == 0 {
		return 0
	}
	r := int(b.PredictCDF(key) * float64(b.N))
	if r < 0 {
		r = 0
	}
	if r >= b.N {
		r = b.N - 1
	}
	return r
}

// SearchRange returns the inclusive-exclusive position range
// [lo, hi) guaranteed to contain key if it is stored.
//
//elsi:noalloc
func (b *Bounded) SearchRange(key float64) (lo, hi int) {
	r := b.PredictRank(key)
	lo = r - b.ErrLo
	hi = r + b.ErrHi + 1
	if lo < 0 {
		lo = 0
	}
	if hi > b.N {
		hi = b.N
	}
	return lo, hi
}

// ErrBoundsWidth returns the total scan window size err_l + err_u,
// the |Error| column of Table I.
func (b *Bounded) ErrBoundsWidth() int { return b.ErrLo + b.ErrHi }

// ScratchModel is implemented by models that can hand out
// allocation-free single-goroutine CDF predictors (FFNModel does: its
// predictor owns reusable network scratch buffers). The parallel
// error-bound scan gives each worker its own predictor; callers
// without one fall back to PredictCDF, which must then be safe for
// concurrent read-only use.
type ScratchModel interface {
	Predictor() func(key float64) float64
}

// PredictorOf returns a single-goroutine CDF predictor for m:
// m.Predictor() when available, else m.PredictCDF itself.
func PredictorOf(m Model) func(key float64) float64 {
	if sm, ok := m.(ScratchModel); ok {
		return sm.Predictor()
	}
	return m.PredictCDF
}

// ErrorBounds evaluates m on every key of the sorted full set and
// returns the maximum over- and under-prediction in rank units
// (Algorithm 1, line 6: get_error_bound). The scan — the M(n) term
// that dominates ELSI builds once training is reduced to |Ds| — runs
// chunked over GOMAXPROCS workers; max is order-independent, so the
// bounds are identical to a serial scan.
func ErrorBounds(m Model, sortedKeys []float64) (errLo, errHi int) {
	return ErrorBoundsWorkers(m, sortedKeys, 0)
}

// ErrorBoundsWorkers is ErrorBounds with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). Results are identical for any count.
func ErrorBoundsWorkers(m Model, sortedKeys []float64, workers int) (errLo, errHi int) {
	n := len(sortedKeys)
	return parallel.MaxReduce(n, workers, func(lo, hi int) (int, int) {
		predict := PredictorOf(m)
		cLo, cHi := 0, 0
		for i := lo; i < hi; i++ {
			pred := int(predict(sortedKeys[i]) * float64(n))
			if pred < 0 {
				pred = 0
			}
			if pred >= n {
				pred = n - 1
			}
			if d := pred - i; d > cLo {
				cLo = d
			}
			if d := i - pred; d > cHi {
				cHi = d
			}
		}
		return cLo, cHi
	})
}

// NewBounded trains a model on trainKeys with the given trainer and
// computes error bounds against fullKeys (both sorted ascending).
func NewBounded(trainer Trainer, trainKeys, fullKeys []float64) *Bounded {
	return NewBoundedWorkers(trainer, trainKeys, fullKeys, 0)
}

// NewBoundedWorkers is NewBounded with an explicit worker count for the
// error-bound scan (0 = GOMAXPROCS, 1 = serial).
func NewBoundedWorkers(trainer Trainer, trainKeys, fullKeys []float64, workers int) *Bounded {
	CountTraining()
	m := trainer(trainKeys)
	lo, hi := ErrorBoundsWorkers(m, fullKeys, workers)
	return &Bounded{Model: m, N: len(fullKeys), ErrLo: lo, ErrHi: hi}
}

// --- FFN model ------------------------------------------------------

// FFNModel is the paper's model family: a feed-forward network with one
// ReLU hidden layer mapping a min-max normalized key to a CDF estimate.
// It is always handled by pointer (the embedded scratch pool must not
// be copied).
type FFNModel struct {
	net      *nn.Network
	min, max float64
	// scratch pools per-goroutine forward buffers so PredictCDF is both
	// concurrent-safe and allocation-free in steady state — the network
	// forward pass was the last per-query allocation on the predict-
	// and-scan hot path.
	scratch sync.Pool
}

// ffnScratch is one pooled forward workspace: the 1-element input
// vector plus the network's activation scratch.
type ffnScratch struct {
	x []float64
	s *nn.Scratch
}

// PredictCDF implements Model. It is safe for concurrent use and does
// not allocate once the scratch pool is warm.
func (m *FFNModel) PredictCDF(key float64) float64 {
	sc, _ := m.scratch.Get().(*ffnScratch)
	if sc == nil {
		sc = &ffnScratch{x: make([]float64, 1), s: m.net.NewScratch()}
	}
	x := 0.0
	if m.max > m.min {
		x = (key - m.min) / (m.max - m.min)
	}
	sc.x[0] = x
	v := m.net.ForwardScratch(sc.s, sc.x)[0]
	m.scratch.Put(sc)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Predictor implements ScratchModel: the returned closure owns its
// input buffer and network scratch, making repeated predictions (the
// error-bound scan, batched query replays) allocation-free. Not safe
// for concurrent use — one Predictor per goroutine.
func (m *FFNModel) Predictor() func(key float64) float64 {
	forward := m.net.Predictor()
	x := make([]float64, 1)
	return func(key float64) float64 {
		x[0] = 0
		if m.max > m.min {
			x[0] = (key - m.min) / (m.max - m.min)
		}
		v := forward(x)[0]
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}

// FFNConfig controls FFN model training.
type FFNConfig struct {
	Hidden int   // hidden layer width
	Epochs int   // training epochs
	Seed   int64 // RNG seed

	// Cancel, when non-nil, is polled at epoch boundaries during
	// training (see nn.Config.Cancel); a true return stops the run
	// early and the trainer returns the partially trained model. Bind
	// it to a build context's Err to make FFN training observe build
	// budgets: func() bool { return ctx.Err() != nil }.
	Cancel func() bool
}

// DefaultFFNConfig returns the configuration used throughout the
// experiments: one hidden layer of 16 units. Epochs are reduced from
// the paper's 500 (GPU) to a CPU-friendly count; see DESIGN.md.
func DefaultFFNConfig() FFNConfig {
	return FFNConfig{Hidden: 16, Epochs: 120, Seed: 1}
}

// FFNTrainer returns a Trainer producing FFN models with cfg.
func FFNTrainer(cfg FFNConfig) Trainer {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 120
	}
	return func(keys []float64) Model {
		if len(keys) == 0 {
			return constModel(0)
		}
		min, max := keys[0], keys[len(keys)-1]
		if floats.Eq(min, max) {
			return constModel(0.5)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		net := nn.New(rng, 1, cfg.Hidden, 1)
		n := len(keys)
		// Cap the number of training rows: the CDF of a huge sorted set
		// is fully described by a dense sample of it, and the cap keeps
		// OG training cost proportional to the paper's T(n) regime
		// without pathological epochs*n blowup on CPU.
		stride := 1
		const maxRows = 50000
		if n > maxRows {
			stride = n / maxRows
		}
		// Training rows share two flat backing arrays instead of one
		// 1-element allocation per row per column.
		xflat := make([]float64, 0, n/stride+1)
		yflat := make([]float64, 0, n/stride+1)
		for i := 0; i < n; i += stride {
			xflat = append(xflat, (keys[i]-min)/(max-min))
			yflat = append(yflat, float64(i)/float64(n))
		}
		xs := make([][]float64, len(xflat))
		ys := make([][]float64, len(yflat))
		for i := range xflat {
			xs[i] = xflat[i : i+1 : i+1]
			ys[i] = yflat[i : i+1 : i+1]
		}
		net.Train(xs, ys, nn.Config{LearningRate: 0.01, Epochs: cfg.Epochs, BatchSize: 256, Seed: cfg.Seed, Cancel: cfg.Cancel})
		return &FFNModel{net: net, min: min, max: max}
	}
}

// --- Linear model ----------------------------------------------------

// LinearModel is a least-squares straight-line CDF fit; the cheapest
// possible rank model, used as an ablation baseline.
type LinearModel struct {
	Slope, Intercept float64
}

// PredictCDF implements Model.
//
//elsi:noalloc
func (m *LinearModel) PredictCDF(key float64) float64 {
	v := m.Slope*key + m.Intercept
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// LinearTrainer returns a Trainer fitting a LinearModel by least
// squares over (key, rank/n).
func LinearTrainer() Trainer {
	return func(keys []float64) Model {
		n := len(keys)
		if n == 0 {
			return constModel(0)
		}
		if floats.Eq(keys[0], keys[n-1]) {
			return constModel(0.5)
		}
		var sx, sy, sxx, sxy float64
		for i, k := range keys {
			y := float64(i) / float64(n)
			sx += k
			sy += y
			sxx += k * k
			sxy += k * y
		}
		fn := float64(n)
		den := fn*sxx - sx*sx
		if floats.Eq(den, 0) {
			return constModel(0.5)
		}
		slope := (fn*sxy - sx*sy) / den
		return &LinearModel{Slope: slope, Intercept: (sy - slope*sx) / fn}
	}
}

// --- Piecewise-linear model -----------------------------------------

// segment is one piece of a piecewise-linear CDF approximation.
type segment struct {
	startKey  float64
	slope     float64
	intercept float64
}

// PiecewiseModel approximates the CDF with greedy shrinking-cone
// segments guaranteeing |model(k) - cdf(k)| <= eps on the training
// keys, in the spirit of the PGM index the paper cites for theoretical
// bounds.
type PiecewiseModel struct {
	segs []segment
}

// PredictCDF implements Model.
//
//elsi:noalloc
func (m *PiecewiseModel) PredictCDF(key float64) float64 {
	if len(m.segs) == 0 {
		return 0
	}
	// find the last segment with startKey <= key; inlined binary search
	// (first index with startKey > key) keeps the query path free of
	// sort.Search's indirect predicate calls
	segs := m.segs
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if segs[mid].startKey > key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	if i == 0 {
		i = 1
	}
	s := m.segs[i-1]
	v := s.slope*key + s.intercept
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Segments returns the number of linear pieces in the model.
func (m *PiecewiseModel) Segments() int { return len(m.segs) }

// PiecewiseTrainer returns a Trainer building PiecewiseModels with the
// given CDF-space error tolerance eps (e.g. 1/256).
func PiecewiseTrainer(eps float64) Trainer {
	if eps <= 0 {
		eps = 1.0 / 256
	}
	return func(keys []float64) Model {
		n := len(keys)
		m := &PiecewiseModel{}
		if n == 0 {
			return m
		}
		i := 0
		for i < n {
			x0 := keys[i]
			y0 := float64(i) / float64(n)
			loSlope := math.Inf(-1)
			hiSlope := math.Inf(1)
			j := i + 1
			for ; j < n; j++ {
				dx := keys[j] - x0
				y := float64(j) / float64(n)
				if floats.Eq(dx, 0) {
					// Duplicate keys: the prediction at x0 is pinned to
					// y0, so the whole tied block must fit within eps.
					if y-y0 > eps {
						break
					}
					continue
				}
				lo := (y - eps - y0) / dx
				hi := (y + eps - y0) / dx
				newLo, newHi := loSlope, hiSlope
				if lo > newLo {
					newLo = lo
				}
				if hi < newHi {
					newHi = hi
				}
				if newLo > newHi {
					// Point j does not fit; close the segment at j-1
					// without committing j's constraints.
					break
				}
				loSlope, hiSlope = newLo, newHi
			}
			slope := 0.0
			switch {
			case math.IsInf(loSlope, -1) && math.IsInf(hiSlope, 1):
				slope = 0
			case math.IsInf(loSlope, -1):
				slope = hiSlope
			case math.IsInf(hiSlope, 1):
				slope = loSlope
			default:
				slope = (loSlope + hiSlope) / 2
			}
			m.segs = append(m.segs, segment{startKey: x0, slope: slope, intercept: y0 - slope*x0})
			i = j
		}
		return m
	}
}

// --- Staged (RMI) composition ---------------------------------------

// Staged is a two-stage recursive model index: a root model dispatches
// a key to one of the leaf models, each trained on its share of the key
// space, exactly as ZM layers RMI over Z-values. Each leaf may itself
// be built through ELSI.
type Staged struct {
	root   *Bounded // dispatch model with empirical error bounds
	leaves []*Bounded
	splits []int // leaves[i] covers global ranks [splits[i], splits[i+1])
	n      int
}

// NewStaged builds a staged model over sortedKeys with fanout leaves.
// rootTrainer builds the dispatch model (trained on the full key set,
// typically with a cheap trainer); leafTrainer builds each leaf model
// (this is where an ELSI-wrapped trainer plugs in).
func NewStaged(sortedKeys []float64, fanout int, rootTrainer, leafTrainer Trainer) *Staged {
	n := len(sortedKeys)
	if fanout < 1 {
		fanout = 1
	}
	s := &Staged{root: NewBounded(rootTrainer, sortedKeys, sortedKeys), n: n}
	s.splits = make([]int, fanout+1)
	for i := 0; i <= fanout; i++ {
		s.splits[i] = i * n / fanout
	}
	for i := 0; i < fanout; i++ {
		part := sortedKeys[s.splits[i]:s.splits[i+1]]
		var b *Bounded
		if len(part) == 0 {
			b = &Bounded{Model: constModel(0), N: 0}
		} else {
			b = NewBounded(leafTrainer, part, part)
		}
		s.leaves = append(s.leaves, b)
	}
	return s
}

// NewStagedWithLeafBuilder is NewStaged but lets the caller build each
// leaf Bounded directly — ELSI uses this to run its full per-model
// pipeline (method selection, reduced set, error bounds) on every leaf.
// buildLeaf receives the partition's global start rank and its keys.
func NewStagedWithLeafBuilder(sortedKeys []float64, fanout int, rootTrainer Trainer, buildLeaf func(start int, part []float64) *Bounded) *Staged {
	return newStaged(sortedKeys, fanout, rootTrainer, buildLeaf, 1)
}

// NewStagedParallel is NewStagedWithLeafBuilder with leaves built by up
// to workers goroutines (0 = GOMAXPROCS, 1 = serial). The index models
// of different partitions are independent, which is what makes
// learned-index bulk loading parallelizable; buildLeaf must be safe for
// concurrent use. The partition boundaries and each leaf's training
// input depend only on the keys and the fanout, so the resulting index
// is identical for any worker count.
func NewStagedParallel(sortedKeys []float64, fanout int, rootTrainer Trainer, buildLeaf func(start int, part []float64) *Bounded, workers int) *Staged {
	return newStaged(sortedKeys, fanout, rootTrainer, buildLeaf, parallel.Resolve(workers))
}

func newStaged(sortedKeys []float64, fanout int, rootTrainer Trainer, buildLeaf func(start int, part []float64) *Bounded, workers int) *Staged {
	n := len(sortedKeys)
	if fanout < 1 {
		fanout = 1
	}
	if workers < 1 {
		workers = 1
	}
	s := &Staged{root: NewBounded(rootTrainer, sortedKeys, sortedKeys), n: n}
	s.splits = make([]int, fanout+1)
	for i := 0; i <= fanout; i++ {
		s.splits[i] = i * n / fanout
	}
	s.leaves = make([]*Bounded, fanout)
	build := func(i int) {
		part := sortedKeys[s.splits[i]:s.splits[i+1]]
		if len(part) == 0 {
			s.leaves[i] = &Bounded{Model: constModel(0), N: 0}
			return
		}
		s.leaves[i] = buildLeaf(s.splits[i], part)
	}
	if workers == 1 {
		for i := 0; i < fanout; i++ {
			build(i)
		}
		return s
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < fanout; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			build(i)
		}(i)
	}
	wg.Wait()
	return s
}

// leafIndex returns the leaf whose rank range contains global rank r:
// the largest i with splits[i] <= r. The arithmetic shortcut
// r*fanout/n disagrees with the floored split boundaries (and lands on
// empty leaves when n < fanout), so the index is found on the actual
// splits.
//
//elsi:noalloc
func (s *Staged) leafIndex(r int) int {
	li := sort.SearchInts(s.splits, r+1) - 1
	if li < 0 {
		li = 0
	}
	if li >= len(s.leaves) {
		li = len(s.leaves) - 1
	}
	return li
}

// leafFor returns the leaf index the root model predicts for key.
//
//elsi:noalloc
func (s *Staged) leafFor(key float64) int {
	if s.n == 0 {
		return 0
	}
	return s.leafIndex(s.root.PredictRank(key))
}

// leafSpan returns the inclusive range of leaf indices the root model's
// error bounds allow key to land in.
//
//elsi:noalloc
func (s *Staged) leafSpan(key float64) (liLo, liHi int) {
	rLo, rHi := s.root.SearchRange(key)
	if rHi > 0 {
		rHi--
	}
	return s.leafIndex(rLo), s.leafIndex(rHi)
}

// SearchRange returns the global position range [lo, hi) the root's
// best-guess leaf would scan for key. It is not guaranteed to contain
// the key when the root misdispatches; use SearchRangeWide for the
// guaranteed window.
//
//elsi:noalloc
func (s *Staged) SearchRange(key float64) (lo, hi int) {
	if s.n == 0 {
		return 0, 0
	}
	li := s.leafFor(key)
	leaf := s.leaves[li]
	base := s.splits[li]
	llo, lhi := leaf.SearchRange(key)
	return base + llo, base + lhi
}

// SearchRangeWide returns the global position range guaranteed to
// contain key if it is stored: it consults every leaf the root's
// empirical error bounds allow and unions their windows.
//
//elsi:noalloc
func (s *Staged) SearchRangeWide(key float64) (lo, hi int) {
	if s.n == 0 {
		return 0, 0
	}
	liLo, liHi := s.leafSpan(key)
	lo, hi = s.n, 0
	for j := liLo; j <= liHi; j++ {
		if s.leaves[j].N == 0 {
			continue
		}
		jlo, jhi := s.leaves[j].SearchRange(key)
		jlo += s.splits[j]
		jhi += s.splits[j]
		if jlo < lo {
			lo = jlo
		}
		if jhi > hi {
			hi = jhi
		}
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

// Leaves exposes the per-leaf bounded models (for cost accounting).
func (s *Staged) Leaves() []*Bounded { return s.leaves }

// N returns the number of keys indexed.
func (s *Staged) N() int { return s.n }

// --- helpers ----------------------------------------------------------

type constModel float64

func (c constModel) PredictCDF(float64) float64 { return float64(c) }

// ConstModel returns a model that always predicts v.
func ConstModel(v float64) Model { return constModel(v) }

// NewBoundedTheoretical trains a piecewise-linear model on the FULL
// sorted key set and derives its error bounds from the trainer's eps
// guarantee instead of the M(n) prediction pass of Algorithm 1 — the
// PGM-style theoretical bound the paper notes as future work for
// learned spatial indices ("Query error bounds", Section IV-A). The
// guarantee |model(k) - rank(k)/n| <= eps on every training key makes
// ceil(eps*n)+1 a valid rank bound, so the bounds pass is free.
//
// Unlike the empirical path, this construction requires training on
// the full set (the guarantee does not transfer from a reduced set),
// so it trades ELSI's training-set reduction for a cheaper bounds
// stage — an alternative point in the build-cost space that the
// ablation benches compare.
func NewBoundedTheoretical(sortedKeys []float64, eps float64) *Bounded {
	if eps <= 0 {
		eps = 1.0 / 256
	}
	CountTraining()
	m := PiecewiseTrainer(eps)(sortedKeys)
	n := len(sortedKeys)
	bound := int(eps*float64(n)) + 1
	return &Bounded{Model: m, N: n, ErrLo: bound, ErrHi: bound}
}
