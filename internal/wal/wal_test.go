package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"elsi/internal/faults"
	"elsi/internal/geo"
)

func pt(i int) geo.Point { return geo.Point{X: float64(i), Y: float64(-i)} }

// appendN appends n alternating insert/delete records and returns the
// assigned LSNs.
func appendN(t *testing.T, l *Log, n int) []uint64 {
	t.Helper()
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		op := OpInsert
		if i%3 == 2 {
			op = OpDelete
		}
		lsn, err := l.Append(op, pt(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

func collect(recs *[]Record) func(Record) error {
	return func(r Record) error {
		*recs = append(*recs, r)
		return nil
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, stats, err := Open(dir, Options{}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("fresh log scanned %+v", stats)
	}
	lsns := appendN(t, l, 10)
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("LSN %d assigned to record %d", lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []Record
	l2, stats, err := Open(dir, Options{}, 1, 1, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.Records != 10 || stats.Replayed != 10 || stats.FirstLSN != 1 || stats.LastLSN != 10 {
		t.Fatalf("replay stats %+v", stats)
	}
	if stats.TornTail != nil {
		t.Fatalf("unexpected torn tail %v", stats.TornTail)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Pt != pt(i) {
			t.Fatalf("record %d: %+v", i, r)
		}
		wantOp := OpInsert
		if i%3 == 2 {
			wantOp = OpDelete
		}
		if r.Op != wantOp {
			t.Fatalf("record %d op %d, want %d", i, r.Op, wantOp)
		}
	}
	if next := l2.NextLSN(); next != 11 {
		t.Fatalf("NextLSN after reopen = %d", next)
	}
}

func TestReplayFromSkipsCoveredPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8)
	l.Close()

	var recs []Record
	l2, stats, err := Open(dir, Options{}, 1, 6, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.Records != 8 || stats.Replayed != 3 {
		t.Fatalf("stats %+v", stats)
	}
	if len(recs) != 3 || recs[0].LSN != 6 {
		t.Fatalf("replayed %+v", recs)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Three frames per segment.
	opt := Options{SegmentBytes: 3 * frameSize}
	l, _, err := Open(dir, opt, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10)
	l.Close()

	starts, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 3 {
		t.Fatalf("expected rotation, got segments %v", starts)
	}
	var recs []Record
	l2, stats, err := Open(dir, opt, 1, 1, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 10 || len(recs) != 10 {
		t.Fatalf("stats %+v, %d records", stats, len(recs))
	}
	// Appends continue the sequence across the reopen.
	if lsn, err := l2.Append(OpInsert, pt(99)); err != nil || lsn != 11 {
		t.Fatalf("append after reopen: lsn %d err %v", lsn, err)
	}
	l2.Close()
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()

	// Simulate a crash mid-append: a prefix of a valid frame at the end.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(nil, Record{LSN: 6, Op: OpInsert, Pt: pt(6)})
	if _, err := f.Write(frame[:frameSize/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var recs []Record
	l2, stats, err := Open(dir, Options{}, 1, 1, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.TornTail == nil {
		t.Fatal("torn tail not reported")
	}
	if stats.Records != 5 || len(recs) != 5 {
		t.Fatalf("lost records: stats %+v", stats)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 5*frameSize {
		t.Fatalf("tail not truncated: size %d err %v", fi.Size(), err)
	}
	// The truncated slot is reused by the next append.
	if lsn, err := l2.Append(OpInsert, pt(6)); err != nil || lsn != 6 {
		t.Fatalf("append after torn tail: lsn %d err %v", lsn, err)
	}
}

func TestMidLogBitFlipIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameSize+frameHeader+3] ^= 0x40 // payload byte of record 2
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{}, 1, 1, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Offset != frameSize {
		t.Fatalf("corruption located at %d, want %d", ce.Offset, frameSize)
	}
}

func TestShortNonFinalSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 2 * frameSize}
	l, _, err := Open(dir, opt, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 6)
	l.Close()

	// A short frame in a non-final segment is NOT a torn tail.
	path := filepath.Join(dir, segName(1))
	if err := os.Truncate(path, frameSize+4); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, opt, 1, 1, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
}

func TestMissingFrameIsLSNGap(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	l.Close()

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Excise the complete second frame: LSNs jump 1 -> 3.
	cut := append(data[:frameSize:frameSize], data[2*frameSize:]...)
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{}, 1, 1, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
}

func TestTrimThrough(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 2 * frameSize}
	l, _, err := Open(dir, opt, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 7) // segments starting at LSN 1, 3, 5, 7
	if err := l.TrimThrough(4); err != nil {
		t.Fatal(err)
	}
	starts, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) == 0 || starts[0] != 5 {
		t.Fatalf("segments after trim: %v", starts)
	}
	l.Close()

	// Replay finds only the surviving tail; numbering continues.
	var recs []Record
	l2, stats, err := Open(dir, opt, 1, 5, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.FirstLSN != 5 || stats.LastLSN != 7 || len(recs) != 3 {
		t.Fatalf("stats %+v", stats)
	}
	if next := l2.NextLSN(); next != 8 {
		t.Fatalf("NextLSN %d", next)
	}
}

func TestFreshLogStartsAtMinNext(t *testing.T) {
	dir := t.TempDir()
	// A fully trimmed log restarts numbering after the snapshot cut.
	l, _, err := Open(dir, Options{}, 101, 101, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if lsn, err := l.Append(OpInsert, pt(0)); err != nil || lsn != 101 {
		t.Fatalf("lsn %d err %v", lsn, err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		pol  SyncPolicy
		dur  time.Duration
		fail bool
	}{
		{in: "always", pol: SyncAlways},
		{in: "none", pol: SyncNone},
		{in: "5ms", pol: SyncInterval, dur: 5 * time.Millisecond},
		{in: "bogus", fail: true},
		{in: "-1s", fail: true},
		{in: "0s", fail: true},
	}
	for _, c := range cases {
		pol, dur, err := ParsePolicy(c.in)
		if c.fail != (err != nil) {
			t.Fatalf("%q: err %v", c.in, err)
		}
		if err == nil && (pol != c.pol || dur != c.dur) {
			t.Fatalf("%q: got %v/%v", c.in, pol, dur)
		}
	}
}

func TestSyncIntervalGroupCommit(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Policy: SyncInterval, Interval: time.Millisecond}
	l, _, err := Open(dir, opt, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20)
	// The group-commit goroutine catches up without an explicit Sync.
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		synced := l.synced == l.written
		l.mu.Unlock()
		if synced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group commit never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(OpInsert, pt(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCrashPointAppendLeavesTornTail(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	faults.Enable("wal/append", faults.Fault{Mode: faults.ModeError})
	if _, err := l.Append(OpInsert, pt(3)); err == nil {
		t.Fatal("append survived injected crash")
	}
	if l.Dead() == nil {
		t.Fatal("log not dead after crash")
	}
	// The log is sticky-dead: no writes after the hole.
	if _, err := l.Append(OpInsert, pt(4)); err == nil {
		t.Fatal("dead log accepted an append")
	}
	l.Close()
	faults.Reset()

	var recs []Record
	l2, stats, err := Open(dir, Options{}, 1, 1, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.TornTail == nil || stats.Records != 3 {
		t.Fatalf("recovery stats %+v", stats)
	}
}

func TestCrashPointFsyncLosesUnsynced(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	// SyncNone: appends accumulate unsynced.
	l, _, err := Open(dir, Options{Policy: SyncNone}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN2 := func() {
		if _, err := l.Append(OpInsert, pt(100)); err != nil {
			t.Fatal(err)
		}
	}
	appendN2()
	appendN2()
	faults.Enable("wal/fsync", faults.Fault{Mode: faults.ModeError})
	if err := l.Sync(); err == nil {
		t.Fatal("fsync survived injected crash")
	}
	l.Close()
	faults.Reset()

	// Everything after the last good sync is gone, like a power cut.
	var recs []Record
	l2, stats, err := Open(dir, Options{Policy: SyncNone}, 1, 1, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.Records != 4 || stats.LastLSN != 4 {
		t.Fatalf("recovery stats %+v", stats)
	}
}
