// Package wal is the engine's write-ahead log: a segmented,
// length-prefixed, CRC32C-checksummed record log for the delta
// inserts and deletes that arrive between snapshots. The durability
// story mirrors the LSM split the rest of the engine is built on —
// the delta list is the memtable, the built index is the learned run,
// and this log is what makes the memtable survive a crash.
//
// On disk a log is a directory of segment files named by the LSN of
// their first record ("wal-%016x.seg"). Each record is framed as
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// with a fixed 25-byte payload (u64 LSN, u8 op, 2×u64 float bits), all
// little-endian. CRC32C (Castagnoli) comes from hash/crc32; LSNs are
// assigned contiguously starting at 1 so replay can verify that no
// record went missing.
//
// Opening a log replays it. Damage is classified, not papered over:
// an incomplete final frame of the final segment is a torn tail — the
// expected leftover of a crash mid-append — and is truncated away and
// reported in ReplayStats; any other damage (a checksum mismatch, a
// bad length, a gap in the LSN sequence, a short frame that is *not*
// at the end of the log) is mid-log corruption and fails loudly with
// a typed *CorruptError rather than silently dropping records.
//
// Fsync policy is configurable per log: SyncAlways fsyncs before
// acknowledging every append (an acknowledged record is durable),
// SyncInterval group-commits on a timer, SyncNone leaves flushing to
// the OS. Crash points "wal/append" and "wal/fsync" (internal/faults)
// simulate a kill at the two interesting instants: mid-frame-write
// (leaving a torn tail on disk) and at fsync (losing everything since
// the last sync, as a real power cut would lose the page cache).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"elsi/internal/faults"
	"elsi/internal/geo"
)

func init() {
	faults.Register("wal/append", "WAL frame write: crash leaves a torn half-written frame")
	faults.Register("wal/fsync", "WAL fsync: crash loses everything after the last sync")
}

// Op is the kind of update a WAL record carries.
type Op uint8

const (
	// OpInsert records a point insert.
	OpInsert Op = 1
	// OpDelete records a point delete.
	OpDelete Op = 2
)

// Record is one logged update.
type Record struct {
	// LSN is the record's log sequence number; contiguous from 1.
	LSN uint64
	// Op is the update kind.
	Op Op
	// Pt is the point inserted or deleted.
	Pt geo.Point
}

// SyncPolicy selects when appends are made durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append returns: an acknowledged
	// update is a durable update. The crash-matrix tests run under
	// this policy so "acknowledged" and "in the golden reference"
	// coincide.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: a background goroutine fsyncs every
	// Options.Interval. Appends return before their record is durable.
	SyncInterval
	// SyncNone never fsyncs; durability is left to the OS page cache.
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag grammar: "always", "none", or a
// Go duration ("5ms") meaning group-commit at that interval.
func ParsePolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return SyncAlways, 0, nil
	case "none":
		return SyncNone, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: bad fsync policy %q (want always, none, or a positive duration)", s)
	}
	return SyncInterval, d, nil
}

// Options configures a log.
type Options struct {
	// Policy is the fsync policy; zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the group-commit period for SyncInterval; zero
	// defaults to 5ms.
	Interval time.Duration
	// SegmentBytes caps a segment file's size; appends rotate to a new
	// segment at the cap. Zero defaults to 4 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

const (
	frameHeader = 8          // u32 length + u32 crc
	payloadSize = 8 + 1 + 16 // LSN + op + X/Y float bits
	frameSize   = frameHeader + payloadSize
	segPrefix   = "wal-"
	segSuffix   = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// CorruptError reports mid-log corruption: a damaged record that is
// not the torn final record of the final segment. Replay fails loudly
// with it instead of dropping data.
type CorruptError struct {
	// Segment is the damaged segment file path.
	Segment string
	// Offset is the byte offset of the damaged frame.
	Offset int64
	// Reason says what check failed.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record in %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// TornTailError describes an incomplete final record of the final
// segment — the expected leftover of a crash mid-append. It is not
// returned as an error: Open truncates the tail and records it in
// ReplayStats.
type TornTailError struct {
	// Segment is the segment file that was truncated.
	Segment string
	// Offset is the offset the segment was truncated to.
	Offset int64
}

// Error implements error so callers can %w-wrap it if they surface it.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("wal: torn tail in %s truncated at offset %d", e.Segment, e.Offset)
}

// ReplayStats reports what Open found on disk.
type ReplayStats struct {
	// Segments is the number of segment files scanned.
	Segments int
	// Records is the number of valid records scanned (all segments).
	Records int
	// Replayed is the number of records passed to the replay callback.
	Replayed int
	// FirstLSN and LastLSN bound the scanned records; zero when empty.
	FirstLSN, LastLSN uint64
	// TornTail is non-nil when an incomplete final record was
	// truncated away.
	TornTail *TornTailError
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is an append-only write-ahead log over a directory of segments.
type Log struct {
	dir string
	opt Options

	// mu serializes appends, rotation, fsync, and trim against each
	// other and the group-commit goroutine.
	//
	//elsi:lockorder
	mu       sync.Mutex
	f        *os.File
	segPath  string
	segStart uint64 // LSN of the current segment's first record
	written  int64  // bytes written to the current segment
	synced   int64  // bytes of the current segment known durable
	next     uint64 // next LSN to assign
	dead     error  // sticky fatal error (IO failure or injected crash)
	closed   bool

	stop   chan struct{}
	syncWG sync.WaitGroup
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func encodeFrame(dst []byte, r Record) []byte {
	var payload [payloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:8], r.LSN)
	payload[8] = byte(r.Op)
	binary.LittleEndian.PutUint64(payload[9:17], floatBits(r.Pt.X))
	binary.LittleEndian.PutUint64(payload[17:25], floatBits(r.Pt.Y))
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], payloadSize)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload[:], castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload[:]...)
}

func decodePayload(p []byte) Record {
	return Record{
		LSN: binary.LittleEndian.Uint64(p[0:8]),
		Op:  Op(p[8]),
		Pt: geo.Point{
			X: bitsFloat(binary.LittleEndian.Uint64(p[9:17])),
			Y: bitsFloat(binary.LittleEndian.Uint64(p[17:25])),
		},
	}
}

// Open opens (creating if needed) the log in dir, replaying what is on
// disk. Records with LSN >= replayFrom are passed to fn in order; a
// non-nil fn error aborts the open and is returned wrapped. When the
// directory holds no segments — a fresh log, or one fully trimmed
// after a snapshot — numbering starts at minNext (use snapshotLSN+1;
// 0 is treated as 1).
//
// Damage handling: an incomplete final frame of the final segment is
// truncated (reported in ReplayStats.TornTail); everything else fails
// with a typed *CorruptError.
func Open(dir string, opt Options, minNext uint64, replayFrom uint64, fn func(Record) error) (*Log, ReplayStats, error) {
	opt = opt.withDefaults()
	var stats ReplayStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}
	starts, err := listSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	if minNext == 0 {
		minNext = 1
	}

	l := &Log{dir: dir, opt: opt, next: minNext}

	for i, start := range starts {
		last := i == len(starts)-1
		path := filepath.Join(dir, segName(start))
		if err := l.scanSegment(path, start, last, replayFrom, fn, &stats); err != nil {
			return nil, stats, err
		}
		stats.Segments++
	}
	if stats.LastLSN >= l.next {
		l.next = stats.LastLSN + 1
	}

	// Append into the last existing segment, or start fresh.
	if len(starts) > 0 {
		path := filepath.Join(dir, segName(starts[len(starts)-1]))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, stats, err
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, stats, err
		}
		l.f = f
		l.segPath = path
		l.segStart = starts[len(starts)-1]
		l.written = size
		l.synced = size // scan read it back from disk; treat as durable
	} else {
		l.mu.Lock()
		err := l.newSegmentLocked()
		l.mu.Unlock()
		if err != nil {
			return nil, stats, err
		}
	}

	if opt.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.syncWG.Add(1)
		//lint:ignore ctxprop the group-commit loop is bounded by Close via the stop channel, not a context
		go l.syncLoop()
	}
	return l, stats, nil
}

func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if start, ok := parseSegName(e.Name()); ok {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// scanSegment validates one segment and feeds its records to fn. In
// the last segment a frame cut short by EOF is a torn tail and the
// file is truncated at the frame boundary; a complete frame that fails
// its checks is corruption regardless of position.
func (l *Log) scanSegment(path string, start uint64, last bool, replayFrom uint64, fn func(Record) error, stats *ReplayStats) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := int64(0)
	torn := func() error {
		if !last {
			return &CorruptError{Segment: path, Offset: off, Reason: "short frame in non-final segment"}
		}
		if err := os.Truncate(path, off); err != nil {
			return err
		}
		stats.TornTail = &TornTailError{Segment: path, Offset: off}
		return nil
	}
	for int64(len(data))-off > 0 {
		rest := data[off:]
		if len(rest) < frameHeader {
			return torn()
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		if length != payloadSize {
			return &CorruptError{Segment: path, Offset: off, Reason: fmt.Sprintf("bad payload length %d (want %d)", length, payloadSize)}
		}
		if len(rest) < frameSize {
			return torn()
		}
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		payload := rest[frameHeader:frameSize]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return &CorruptError{Segment: path, Offset: off, Reason: "checksum mismatch"}
		}
		rec := decodePayload(payload)
		if rec.Op != OpInsert && rec.Op != OpDelete {
			return &CorruptError{Segment: path, Offset: off, Reason: fmt.Sprintf("unknown op %d", rec.Op)}
		}
		if stats.Records == 0 {
			if rec.LSN != start {
				return &CorruptError{Segment: path, Offset: off, Reason: fmt.Sprintf("first LSN %d does not match segment name %d", rec.LSN, start)}
			}
			stats.FirstLSN = rec.LSN
		} else if rec.LSN != stats.LastLSN+1 {
			return &CorruptError{Segment: path, Offset: off, Reason: fmt.Sprintf("LSN gap: %d after %d", rec.LSN, stats.LastLSN)}
		} else if off == 0 && rec.LSN != start {
			return &CorruptError{Segment: path, Offset: off, Reason: fmt.Sprintf("first LSN %d does not match segment name %d", rec.LSN, start)}
		}
		stats.LastLSN = rec.LSN
		stats.Records++
		if fn != nil && rec.LSN >= replayFrom {
			if err := fn(rec); err != nil {
				return fmt.Errorf("wal: replay callback at LSN %d: %w", rec.LSN, err)
			}
			stats.Replayed++
		}
		off += frameSize
	}
	return nil
}

// newSegmentLocked rotates to a fresh segment whose first record will
// carry l.next. Caller holds mu (or is still constructing l).
func (l *Log) newSegmentLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(l.next))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segPath = path
	l.segStart = l.next
	l.written = 0
	l.synced = 0
	return syncDir(l.dir)
}

// Append logs one record, assigning and returning its LSN. Under
// SyncAlways the record is durable when Append returns nil; under the
// other policies durability lags. Any error is fatal to the log: the
// on-disk tail may be torn, and the log refuses further appends so the
// caller recovers through Open instead of writing after a hole.
func (l *Log) Append(op Op, pt geo.Point) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead != nil {
		return 0, l.dead
	}
	if l.closed {
		return 0, ErrClosed
	}
	if l.written >= l.opt.SegmentBytes {
		if err := l.newSegmentLocked(); err != nil {
			l.dead = err
			return 0, err
		}
	}
	lsn := l.next
	frame := encodeFrame(make([]byte, 0, frameSize), Record{LSN: lsn, Op: op, Pt: pt})
	if err := faults.Hit("wal/append"); err != nil {
		// Simulate a kill mid-write: half the frame reaches the file,
		// then the process dies. The log goes dead; recovery will find
		// a torn tail.
		l.f.Write(frame[:frameSize/2])
		l.dead = fmt.Errorf("wal: crashed appending LSN %d: %w", lsn, err)
		return 0, l.dead
	}
	if _, err := l.f.Write(frame); err != nil {
		l.dead = err
		return 0, err
	}
	l.written += frameSize
	l.next++
	if l.opt.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// syncLocked makes the current segment durable. Caller holds mu.
func (l *Log) syncLocked() error {
	if l.dead != nil {
		return l.dead
	}
	if l.synced == l.written {
		return nil
	}
	if err := faults.Hit("wal/fsync"); err != nil {
		// Simulate a power cut at fsync: the page cache — everything
		// since the last successful sync — is lost. Truncating to the
		// synced offset models that loss deterministically.
		l.f.Truncate(l.synced)
		l.dead = fmt.Errorf("wal: crashed at fsync: %w", err)
		return l.dead
	}
	if err := l.f.Sync(); err != nil {
		l.dead = err
		return err
	}
	l.synced = l.written
	return nil
}

// Sync forces an fsync of the current segment (used by Close and by
// group commit; exported for callers that need a durability barrier).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dead == nil {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// NextLSN returns the LSN the next append will be assigned. The
// snapshot cut point is NextLSN()-1: every record at or below it is in
// the log already.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// TrimThrough deletes whole segments whose every record has LSN <=
// lsn. Called only after a snapshot covering lsn is durable; the
// current segment is never deleted.
func (l *Log) TrimThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	starts, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, start := range starts {
		// A segment's records end where the next segment starts. The
		// live segment (and anything after a gap we cannot bound) stays.
		if start == l.segStart || i == len(starts)-1 {
			break
		}
		if starts[i+1] > lsn+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(start))); err != nil {
			return err
		}
	}
	return syncDir(l.dir)
}

// Close syncs and closes the log. A dead (crashed) log closes without
// further writes.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()

	if stop != nil {
		close(stop)
		l.syncWG.Wait()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.dead == nil {
		err = l.syncLocked()
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil && cerr != nil && l.dead == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// Dead reports the sticky fatal error, nil if the log is healthy. A
// dead log must be reopened (recovered) before further use.
func (l *Log) Dead() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
