// Package grid implements the traditional Grid index used as a
// baseline (Nievergelt et al.'s grid file, simplified as in the
// paper's experiments): a regular sqrt(n/B) x sqrt(n/B) grid where
// each cell stores an array of MBR-tagged data blocks of capacity B.
// Insertions choose the block whose MBR grows least and split full
// blocks, which is what makes Grid builds expensive on skewed data
// (Section VII-F).
package grid

import (
	"math"
	"sort"
	"sync"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/store"
)

// Grid is the two-level grid index.
type Grid struct {
	space  geo.Rect
	nx, ny int
	cells  [][]*block
	size   int
}

type block struct {
	mbr geo.Rect
	pts []geo.Point
}

// New returns an empty Grid over space. The grid resolution is chosen
// at Build time from the data cardinality.
func New(space geo.Rect) *Grid {
	return &Grid{space: space}
}

// Name implements index.Index.
func (g *Grid) Name() string { return "Grid" }

// Len implements index.Index.
func (g *Grid) Len() int { return g.size }

// Build implements index.Index: it sizes the grid to sqrt(n/B) cells
// per dimension and inserts every point.
func (g *Grid) Build(pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	n := len(pts)
	side := int(math.Sqrt(float64(n) / float64(store.BlockSize)))
	if side < 1 {
		side = 1
	}
	g.nx, g.ny = side, side
	g.cells = make([][]*block, g.nx*g.ny)
	g.size = 0
	for _, p := range pts {
		g.Insert(p)
	}
	return nil
}

// cellOf returns the cell index for p, clamped into the grid.
//
//elsi:noalloc
func (g *Grid) cellOf(p geo.Point) int {
	cx := int((p.X - g.space.MinX) / g.space.Width() * float64(g.nx))
	cy := int((p.Y - g.space.MinY) / g.space.Height() * float64(g.ny))
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Insert implements index.Inserter. The point goes to the block in its
// cell whose MBR needs the least enlargement; a full block is split by
// its longer MBR dimension.
func (g *Grid) Insert(p geo.Point) {
	if g.cells == nil {
		// allow insert-before-build usage with a minimal grid
		g.nx, g.ny = 1, 1
		g.cells = make([][]*block, 1)
	}
	ci := g.cellOf(p)
	blocks := g.cells[ci]
	var best *block
	bestCost := math.Inf(1)
	pr := geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	for _, b := range blocks {
		if len(b.pts) >= store.BlockSize {
			continue
		}
		cost := b.mbr.EnlargementArea(pr)
		if cost < bestCost {
			bestCost = cost
			best = b
		}
	}
	if best == nil {
		best = &block{mbr: geo.EmptyRect()}
		g.cells[ci] = append(g.cells[ci], best)
	}
	best.pts = append(best.pts, p)
	best.mbr = best.mbr.Extend(p)
	g.size++
	if len(best.pts) >= store.BlockSize {
		g.splitBlock(ci, best)
	}
}

// splitBlock splits b along the longer dimension of its MBR into two
// half-full blocks with recomputed (minimized) MBRs.
func (g *Grid) splitBlock(ci int, b *block) {
	pts := b.pts
	if b.mbr.Width() >= b.mbr.Height() {
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	} else {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
	}
	mid := len(pts) / 2
	right := &block{pts: append([]geo.Point(nil), pts[mid:]...)}
	b.pts = pts[:mid]
	b.mbr = geo.BoundingRect(b.pts)
	right.mbr = geo.BoundingRect(right.pts)
	g.cells[ci] = append(g.cells[ci], right)
}

// PointQuery implements index.Index.
//
//elsi:noalloc
func (g *Grid) PointQuery(p geo.Point) bool {
	if g.cells == nil {
		return false
	}
	for _, b := range g.cells[g.cellOf(p)] {
		if !b.mbr.Contains(p) {
			continue
		}
		for _, q := range b.pts {
			if q == p {
				return true
			}
		}
	}
	return false
}

// Delete implements index.Deleter.
func (g *Grid) Delete(p geo.Point) bool {
	if g.cells == nil {
		return false
	}
	for _, b := range g.cells[g.cellOf(p)] {
		if !b.mbr.Contains(p) {
			continue
		}
		for i, q := range b.pts {
			if q == p {
				b.pts[i] = b.pts[len(b.pts)-1]
				b.pts = b.pts[:len(b.pts)-1]
				b.mbr = geo.BoundingRect(b.pts)
				g.size--
				return true
			}
		}
	}
	return false
}

// WindowQuery implements index.Index (exact).
func (g *Grid) WindowQuery(win geo.Rect) []geo.Point {
	return g.WindowQueryAppend(win, nil)
}

// WindowQueryAppend implements index.WindowAppender.
//
//elsi:noalloc
func (g *Grid) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if g.cells == nil {
		return out
	}
	cx0, cy0 := g.cellCoords(geo.Point{X: win.MinX, Y: win.MinY})
	cx1, cy1 := g.cellCoords(geo.Point{X: win.MaxX, Y: win.MaxY})
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, b := range g.cells[cy*g.nx+cx] {
				if !b.mbr.Intersects(win) {
					continue
				}
				for _, p := range b.pts {
					if win.Contains(p) {
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

//elsi:noalloc
func (g *Grid) cellCoords(p geo.Point) (int, int) {
	ci := g.cellOf(p)
	return ci % g.nx, ci / g.nx
}

// KNN implements index.Index with an expanding ring search over cells:
// rings of cells are visited outward until every unvisited cell is
// provably farther than the current k-th nearest candidate.
func (g *Grid) KNN(q geo.Point, k int) []geo.Point {
	return g.KNNAppend(q, k, nil)
}

// knnScratch holds the ring candidate set and the per-ring selection;
// pooled so repeated kNN queries reuse one working set.
type knnScratch struct {
	cand []geo.Point
	sel  []geo.Point
}

var knnScratchPool = sync.Pool{New: func() interface{} { return new(knnScratch) }}

// KNNAppend implements index.KNNAppender; KNN delegates here, so both
// entry points return identical answers.
//
//elsi:noalloc
func (g *Grid) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	if g.cells == nil || k <= 0 || g.size == 0 {
		return out
	}
	s := knnScratchPool.Get().(*knnScratch)
	defer knnScratchPool.Put(s)
	s.cand = s.cand[:0]
	qcx, qcy := g.cellCoords(q)
	maxRing := g.nx + g.ny
	minSide := math.Min(g.space.Width()/float64(g.nx), g.space.Height()/float64(g.ny))
	for ring := 0; ring <= maxRing; ring++ {
		s.cand = g.collectRing(qcx, qcy, ring, s.cand)
		if len(s.cand) < k {
			continue
		}
		// Any cell at Chebyshev distance ring+1 lies at least
		// ring*minSide away from q (q may sit on its own cell's edge).
		s.sel = index.KNNScanAppend(s.cand, q, k, s.sel[:0])
		dk := math.Sqrt(s.sel[len(s.sel)-1].Dist2(q))
		if float64(ring)*minSide > dk {
			return append(out, s.sel...)
		}
	}
	s.sel = index.KNNScanAppend(s.cand, q, k, s.sel[:0])
	return append(out, s.sel...)
}

// collectRing appends all points in cells at Chebyshev distance ring
// from (qcx, qcy) to cand and returns the extended slice. The cell
// visits go through appendCell rather than a visit closure so the
// per-ring walk carries its state on the call stack.
//
//elsi:noalloc
func (g *Grid) collectRing(qcx, qcy, ring int, cand []geo.Point) []geo.Point {
	if ring == 0 {
		return g.appendCell(qcx, qcy, cand)
	}
	for d := -ring; d <= ring; d++ {
		cand = g.appendCell(qcx+d, qcy-ring, cand)
		cand = g.appendCell(qcx+d, qcy+ring, cand)
	}
	for d := -ring + 1; d < ring; d++ {
		cand = g.appendCell(qcx-ring, qcy+d, cand)
		cand = g.appendCell(qcx+ring, qcy+d, cand)
	}
	return cand
}

// appendCell appends the points of cell (cx, cy) to cand, ignoring
// out-of-range coordinates (ring walks run past the grid edges).
//
//elsi:noalloc
func (g *Grid) appendCell(cx, cy int, cand []geo.Point) []geo.Point {
	if cx < 0 || cx >= g.nx || cy < 0 || cy >= g.ny {
		return cand
	}
	for _, b := range g.cells[cy*g.nx+cx] {
		cand = append(cand, b.pts...)
	}
	return cand
}

// Blocks returns the total number of data blocks (for size accounting).
func (g *Grid) Blocks() int {
	total := 0
	for _, cell := range g.cells {
		total += len(cell)
	}
	return total
}
