package grid

import (
	"fmt"

	"elsi/internal/snapshot"
)

// stateVersion is the on-disk version of the Grid state encoding.
const stateVersion = 1

// StateAppend implements snapshot.Stater: the grid resolution and
// every cell's blocks. The space comes from the constructor.
func (g *Grid) StateAppend(b []byte) ([]byte, error) {
	b = snapshot.AppendU8(b, stateVersion)
	b = snapshot.AppendInt(b, g.nx)
	b = snapshot.AppendInt(b, g.ny)
	b = snapshot.AppendInt(b, g.size)
	b = snapshot.AppendBool(b, g.cells != nil)
	if g.cells == nil {
		return b, nil
	}
	for _, blocks := range g.cells {
		b = snapshot.AppendUvarint(b, uint64(len(blocks)))
		for _, blk := range blocks {
			b = snapshot.AppendRect(b, blk.mbr)
			b = snapshot.AppendPoints(b, blk.pts)
		}
	}
	return b, nil
}

// RestoreState implements snapshot.Stater; the cell count must match
// nx*ny and the block totals must match the recorded size.
func (g *Grid) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("grid: unsupported state version %d", v)
	}
	nx := d.Int()
	ny := d.Int()
	size := d.Int()
	hasCells := d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("grid: decode state: %w", err)
	}
	if size < 0 {
		return fmt.Errorf("grid: negative size %d", size)
	}
	if !hasCells {
		if err := d.Close(); err != nil {
			return fmt.Errorf("grid: decode state: %w", err)
		}
		if size != 0 {
			return fmt.Errorf("grid: %d entries without cells", size)
		}
		g.nx, g.ny, g.size, g.cells = nx, ny, 0, nil
		return nil
	}
	if nx < 1 || ny < 1 || nx*ny > len(data) {
		return fmt.Errorf("grid: implausible resolution %dx%d", nx, ny)
	}
	cells := make([][]*block, nx*ny)
	total := 0
	for ci := range cells {
		blockN := d.Count(20)
		if err := d.Err(); err != nil {
			return fmt.Errorf("grid: decode cell %d: %w", ci, err)
		}
		if blockN == 0 {
			continue
		}
		blocks := make([]*block, blockN)
		for bi := range blocks {
			mbr := d.Rect()
			pts := d.Points()
			if err := d.Err(); err != nil {
				return fmt.Errorf("grid: decode cell %d block %d: %w", ci, bi, err)
			}
			blocks[bi] = &block{mbr: mbr, pts: pts}
			total += len(pts)
		}
		cells[ci] = blocks
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("grid: decode state: %w", err)
	}
	if total != size {
		return fmt.Errorf("grid: size %d does not match block total %d", size, total)
	}
	g.nx, g.ny = nx, ny
	g.size = size
	g.cells = cells
	return nil
}
