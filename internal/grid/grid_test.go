package grid

import (
	"testing"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/indextest"
)

func TestConformance(t *testing.T) {
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			indextest.Conformance(t, New(geo.UnitRect), pts, 42, 1.0, 1.0)
		})
	}
}

func TestInsertDelete(t *testing.T) {
	g := New(geo.UnitRect)
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 2)
	g.Build(pts)
	p := geo.Point{X: 0.123, Y: 0.456}
	g.Insert(p)
	if !g.PointQuery(p) {
		t.Error("inserted point not found")
	}
	if g.Len() != 1001 {
		t.Errorf("Len = %d", g.Len())
	}
	if !g.Delete(p) {
		t.Error("Delete failed")
	}
	if g.PointQuery(p) {
		t.Error("deleted point still found")
	}
	if g.Delete(p) {
		t.Error("double delete returned true")
	}
}

func TestBlockSplitsOnSkew(t *testing.T) {
	// The paper observes Grid builds degrade on NYC because dense
	// cells force frequent block splits: skewed data must allocate
	// more blocks per non-empty cell than uniform data.
	uni := New(geo.UnitRect)
	uni.Build(dataset.MustGenerate(dataset.Uniform, 20000, 3))
	nyc := New(geo.UnitRect)
	nyc.Build(dataset.MustGenerate(dataset.NYC, 20000, 3))
	if nyc.Blocks() <= 0 || uni.Blocks() <= 0 {
		t.Fatal("no blocks")
	}
	// NYC data concentrates in few cells, so blocks-per-used-cell is
	// far higher; total block count may differ but the structure must
	// hold all points.
	if nyc.Len() != 20000 || uni.Len() != 20000 {
		t.Error("size mismatch")
	}
}

func TestEmptyGrid(t *testing.T) {
	g := New(geo.UnitRect)
	g.Build(nil)
	if g.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("phantom point in empty grid")
	}
	if got := g.WindowQuery(geo.UnitRect); len(got) != 0 {
		t.Errorf("empty grid window returned %d", len(got))
	}
	if got := g.KNN(geo.Point{}, 5); got != nil {
		t.Errorf("empty grid KNN returned %v", got)
	}
}

func TestInsertBeforeBuild(t *testing.T) {
	g := New(geo.UnitRect)
	g.Insert(geo.Point{X: 0.5, Y: 0.5})
	if !g.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("insert-before-build point missing")
	}
}

func BenchmarkBuild100k(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(geo.UnitRect)
		g.Build(pts)
	}
}

func BenchmarkPointQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	g := New(geo.UnitRect)
	g.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PointQuery(pts[i%len(pts)])
	}
}
