package rsmi

import (
	"math/rand"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/indextest"
	"elsi/internal/methods"
	"elsi/internal/rmi"
)

func ogBuilder() base.ModelBuilder {
	return &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
}

func newRSMI(b base.ModelBuilder) *Index {
	return New(Config{Space: geo.UnitRect, Builder: b, Fanout: 4, LeafCap: 500})
}

func TestConformance(t *testing.T) {
	// RSMI point queries are exact; window and kNN are approximate but
	// with monotone (piecewise) models the recall stays at 1 in
	// practice — we assert the paper's floor of 0.9.
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			indextest.Conformance(t, newRSMI(ogBuilder()), pts, 42, 0.9, 0.85)
		})
	}
}

func TestConformanceReducedBuilder(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM1, 4000, 2)
	b := &methods.RS{Beta: 100, Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
	indextest.Conformance(t, newRSMI(b), pts, 43, 0.9, 0.85)
}

func TestHierarchyShape(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM1, 8000, 3)
	ix := newRSMI(ogBuilder())
	ix.Build(pts)
	if ix.Depth() < 2 {
		t.Errorf("Depth = %d, want >= 2 for 8000 points with LeafCap 500", ix.Depth())
	}
	if ix.NumModels() < 5 {
		t.Errorf("NumModels = %d", ix.NumModels())
	}
	if len(ix.Stats()) != ix.NumModels() {
		t.Errorf("stats %d != models %d", len(ix.Stats()), ix.NumModels())
	}
}

func TestInsertAndLocalRebuild(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 4)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 4, LeafCap: 500, RetrainThreshold: 50})
	ix.Build(pts)
	// skewed insertions into one corner, as in Figure 1
	rng := rand.New(rand.NewSource(5))
	var inserted []geo.Point
	for i := 0; i < 500; i++ {
		p := geo.Point{X: rng.Float64() * 0.05, Y: rng.Float64() * 0.05}
		ix.Insert(p)
		inserted = append(inserted, p)
	}
	if ix.Len() != 2500 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.LocalRebuilds() == 0 {
		t.Error("no local rebuilds after 500 skewed insertions over threshold 50")
	}
	for _, p := range inserted {
		if !ix.PointQuery(p) {
			t.Fatalf("inserted point %v lost", p)
		}
	}
	// original points still findable
	for _, p := range pts[:200] {
		if !ix.PointQuery(p) {
			t.Fatalf("original point %v lost after inserts", p)
		}
	}
}

func TestInsertOutsideOriginalBounds(t *testing.T) {
	// Build over a sub-region, then insert far outside: the clamped
	// key routing must still store and find the point.
	rng := rand.New(rand.NewSource(6))
	var pts []geo.Point
	for i := 0; i < 1000; i++ {
		pts = append(pts, geo.Point{X: 0.4 + rng.Float64()*0.2, Y: 0.4 + rng.Float64()*0.2})
	}
	ix := newRSMI(ogBuilder())
	ix.Build(pts)
	outlier := geo.Point{X: 0.95, Y: 0.05}
	ix.Insert(outlier)
	if !ix.PointQuery(outlier) {
		t.Error("outlier insert lost")
	}
	got := ix.WindowQuery(geo.Rect{MinX: 0.9, MinY: 0, MaxX: 1, MaxY: 0.1})
	found := false
	for _, p := range got {
		if p == outlier {
			found = true
		}
	}
	if !found {
		t.Error("window query missed buffered outlier")
	}
}

func TestWindowAfterInsertsRecall(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM1, 3000, 7)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 4, LeafCap: 400, RetrainThreshold: 60})
	ix.Build(pts)
	bf := index.NewBruteForce()
	bf.Build(pts)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1500; i++ {
		p := geo.Point{X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1}
		ix.Insert(p)
		bf.Insert(p)
	}
	sum, cnt := 0.0, 0
	for trial := 0; trial < 20; trial++ {
		c := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		win := geo.Rect{MinX: c.X - 0.05, MinY: c.Y - 0.05, MaxX: c.X + 0.05, MaxY: c.Y + 0.05}
		want := bf.WindowQuery(win)
		if len(want) == 0 {
			continue
		}
		got := ix.WindowQuery(win)
		sum += index.Recall(got, want)
		cnt++
	}
	if cnt > 0 && sum/float64(cnt) < 0.9 {
		t.Errorf("post-insert window recall %.3f < 0.9", sum/float64(cnt))
	}
}

func TestDeleteBufferedOnly(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 500, 9)
	ix := newRSMI(ogBuilder())
	ix.Build(pts)
	p := geo.Point{X: 0.111, Y: 0.222}
	ix.Insert(p)
	if !ix.Delete(p) {
		t.Error("buffered delete failed")
	}
	if ix.PointQuery(p) {
		t.Error("deleted buffered point still found")
	}
	// indexed points are NOT deletable here (delta list handles them)
	if ix.Delete(pts[0]) {
		t.Error("indexed point delete should fail")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := newRSMI(ogBuilder())
	ix.Build(nil)
	if ix.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("phantom point")
	}
	if got := ix.WindowQuery(geo.UnitRect); len(got) != 0 {
		t.Errorf("empty window = %d", len(got))
	}
	if got := ix.KNN(geo.Point{}, 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
	ix.Insert(geo.Point{X: 0.5, Y: 0.5})
	if !ix.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("insert into empty index lost")
	}
}

func TestCounters(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 10)
	ix := newRSMI(ogBuilder())
	ix.Build(pts)
	ix.ResetCounters()
	ix.PointQuery(pts[0])
	if ix.ModelInvocations() == 0 {
		t.Error("no invocations counted")
	}
	if ix.Scanned() == 0 {
		t.Error("no scans counted")
	}
	ix.ResetCounters()
	if ix.ModelInvocations() != 0 || ix.Scanned() != 0 {
		t.Error("ResetCounters failed")
	}
}

func BenchmarkPointQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 8, LeafCap: 4000})
	ix.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PointQuery(pts[i%len(pts)])
	}
}

func TestNumModelsEmptyAndSingle(t *testing.T) {
	ix := newRSMI(ogBuilder())
	ix.Build(nil)
	if got := ix.NumModels(); got != 1 {
		t.Errorf("empty index NumModels = %d (one leaf node)", got)
	}
	ix.Build(dataset.MustGenerate(dataset.Uniform, 100, 11))
	if got := ix.NumModels(); got != 1 {
		t.Errorf("single-leaf NumModels = %d", got)
	}
	if ix.Depth() != 1 {
		t.Errorf("single-leaf Depth = %d", ix.Depth())
	}
}
