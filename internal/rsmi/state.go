package rsmi

import (
	"fmt"

	"elsi/internal/base"
	"elsi/internal/rmi"
	"elsi/internal/snapshot"
	"elsi/internal/store"
	"elsi/internal/zm"
)

// stateVersion is the on-disk version of the RSMI state encoding.
const stateVersion = 1

// maxDecodeDepth caps the recursive node decode so a hostile snapshot
// cannot drive unbounded recursion. Real trees are shallow (depth ~
// log_fanout(n/leafCap)); 64 is far beyond any buildable structure.
const maxDecodeDepth = 64

// StateAppend implements snapshot.Stater: the full node hierarchy with
// every node's trained model, leaf columns, and overflow buffers.
func (ix *Index) StateAppend(b []byte) ([]byte, error) {
	b = snapshot.AppendU8(b, stateVersion)
	b = snapshot.AppendInt(b, ix.size)
	b = snapshot.AppendInt(b, ix.localRebuilds)
	b = snapshot.AppendBool(b, ix.root != nil)
	if ix.root != nil {
		var err error
		if b, err = appendNode(b, ix.root); err != nil {
			return nil, err
		}
	}
	return base.AppendBuildStatsSlice(b, ix.stats), nil
}

func appendNode(b []byte, n *node) ([]byte, error) {
	b = snapshot.AppendRect(b, n.keyBounds)
	b = snapshot.AppendRect(b, n.mbr)
	b = snapshot.AppendBool(b, n.isLeaf())
	var err error
	if n.isLeaf() {
		b = snapshot.AppendF64s(b, n.st.Keys())
		b = snapshot.AppendPoints(b, n.st.Points())
		if b, err = rmi.AppendBounded(b, n.leafModel); err != nil {
			return nil, err
		}
		return snapshot.AppendPoints(b, n.extra), nil
	}
	if b, err = rmi.AppendBounded(b, n.model); err != nil {
		return nil, err
	}
	b = snapshot.AppendF64s(b, n.childMinKey)
	b = snapshot.AppendUvarint(b, uint64(len(n.children)))
	for _, c := range n.children {
		if b, err = appendNode(b, c); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// RestoreState implements snapshot.Stater. Beyond the per-node checks
// (column invariants, model presence, child routing table length), the
// decoded tree's total cardinality must match the recorded size.
func (ix *Index) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("rsmi: unsupported state version %d", v)
	}
	size := d.Int()
	localRebuilds := d.Int()
	hasRoot := d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("rsmi: decode state: %w", err)
	}
	if size < 0 || localRebuilds < 0 {
		return fmt.Errorf("rsmi: negative counters (size=%d rebuilds=%d)", size, localRebuilds)
	}
	var root *node
	total := 0
	if hasRoot {
		var err error
		root, err = decodeNode(d, 0, &total)
		if err != nil {
			return err
		}
	}
	stats := base.DecodeBuildStatsSlice(d)
	if err := d.Close(); err != nil {
		return fmt.Errorf("rsmi: decode state: %w", err)
	}
	if total != size {
		return fmt.Errorf("rsmi: size %d does not match tree total %d", size, total)
	}
	if size > 0 && root == nil {
		return fmt.Errorf("rsmi: %d entries without a root", size)
	}
	ix.root = root
	ix.size = size
	ix.localRebuilds = localRebuilds
	ix.stats = stats
	return nil
}

func decodeNode(d *snapshot.Dec, depth int, total *int) (*node, error) {
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("rsmi: node tree deeper than %d", maxDecodeDepth)
	}
	n := &node{keyBounds: d.Rect(), mbr: d.Rect()}
	leaf := d.Bool()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("rsmi: decode node: %w", err)
	}
	if leaf {
		keys := d.F64s()
		pts := d.Points()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("rsmi: decode leaf: %w", err)
		}
		if err := zm.ValidateColumns(keys, pts); err != nil {
			return nil, fmt.Errorf("rsmi: leaf %w", err)
		}
		lm, err := rmi.DecodeBounded(d)
		if err != nil {
			return nil, fmt.Errorf("rsmi: decode leaf model: %w", err)
		}
		if lm == nil {
			return nil, fmt.Errorf("rsmi: leaf without model")
		}
		extra := d.Points()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("rsmi: decode leaf overflow: %w", err)
		}
		n.st = store.NewSortedColumns(keys, pts)
		n.leafModel = lm
		n.extra = extra
		*total += len(keys) + len(extra)
		return n, nil
	}
	m, err := rmi.DecodeBounded(d)
	if err != nil {
		return nil, fmt.Errorf("rsmi: decode node model: %w", err)
	}
	if m == nil {
		return nil, fmt.Errorf("rsmi: internal node without model")
	}
	n.model = m
	n.childMinKey = d.F64s()
	childN := d.Count(1)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("rsmi: decode node: %w", err)
	}
	if childN == 0 {
		return nil, fmt.Errorf("rsmi: internal node without children")
	}
	if len(n.childMinKey) != childN {
		return nil, fmt.Errorf("rsmi: routing table length %d does not match %d children", len(n.childMinKey), childN)
	}
	n.children = make([]*node, childN)
	for i := range n.children {
		c, err := decodeNode(d, depth+1, total)
		if err != nil {
			return nil, err
		}
		n.children[i] = c
	}
	return n, nil
}
