// Package rsmi implements the Recursive Spatial Model Index (RSMI, Qi
// et al. 2020): a hierarchy of space partitions where each node learns
// a model over the rank-space Z-order keys of its own partition and
// dispatches queries to its children. Point queries are exact thanks
// to the per-model empirical error bounds; window (and hence kNN)
// queries are approximate by design — leaf scans rely on raw model
// predictions, as in the original index — so the recall experiments of
// Figures 12, 14, and 16 are reproducible. Insertions go to leaf-level
// overflow buffers and trigger local model rebuilds, the mechanism
// that produces the unbalanced structures of Figure 1.
package rsmi

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/geo"
	"elsi/internal/rmi"
	"elsi/internal/store"
	"elsi/internal/zm"
)

// Config controls index construction.
type Config struct {
	Space geo.Rect
	// Builder builds every node model (OG or ELSI), cf. Figure 3 where
	// ELSI builds M00, M10, and M11.
	Builder base.ModelBuilder
	// Fanout is the number of children per internal node (default 8).
	Fanout int
	// LeafCap is the maximum number of points a leaf holds before the
	// build recurses (default 2000).
	LeafCap int
	// MaxZDepth caps the leaf window-query Z-decomposition depth.
	MaxZDepth int
	// RetrainThreshold is the leaf overflow-buffer size that triggers a
	// local rebuild (default LeafCap/4).
	RetrainThreshold int
	// Workers bounds the parallel key mapping and sorting inside each
	// node build (0 = GOMAXPROCS, 1 = serial). Children are built
	// serially so the stats report stays in traversal order; the
	// per-node data preparation is where the work is.
	Workers int
	// BuildTimeout, when positive, bounds each Build call: BuildCtx
	// runs under a context that expires after it, and the build
	// returns the context error. Zero means unbounded.
	BuildTimeout time.Duration
}

// Index is the RSMI.
type Index struct {
	cfg           Config
	root          *node
	size          int
	stats         []base.BuildStats
	invocations   atomic.Int64
	localRebuilds int
}

type node struct {
	// keyBounds is the rectangle the node's rank-space Z-keys were
	// computed against; it is FIXED at build time (changing it would
	// invalidate every stored key).
	keyBounds geo.Rect
	// mbr is the bounding rectangle of the subtree's points, extended
	// by insertions; queries prune against it.
	mbr geo.Rect
	// internal
	model       *rmi.Bounded
	children    []*node
	childMinKey []float64 // first local key of each child (routing)
	// leaf
	st        *store.Sorted
	leafModel *rmi.Bounded
	extra     []geo.Point
}

//elsi:noalloc
func (n *node) isLeaf() bool { return n.children == nil }

// New returns an unbuilt RSMI.
func New(cfg Config) *Index {
	if cfg.Fanout < 2 {
		cfg.Fanout = 8
	}
	if cfg.LeafCap <= 0 {
		cfg.LeafCap = 2000
	}
	if cfg.MaxZDepth <= 0 {
		cfg.MaxZDepth = 6
	}
	if cfg.RetrainThreshold <= 0 {
		cfg.RetrainThreshold = cfg.LeafCap / 4
	}
	return &Index{cfg: cfg}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "RSMI" }

// Len implements index.Index.
func (ix *Index) Len() int { return ix.size }

// Build implements index.Index. It runs BuildCtx under a background
// context, bounded by Config.BuildTimeout when set.
func (ix *Index) Build(pts []geo.Point) error {
	return ix.BuildCtx(context.Background(), pts)
}

// BuildCtx is Build with cooperative cancellation: the recursive node
// build aborts between model builds when ctx is done (or the per-build
// timeout expires) and returns the context's error. A failed build
// leaves the index unusable; callers must discard it or rebuild.
func (ix *Index) BuildCtx(ctx context.Context, pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	if ix.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ix.cfg.BuildTimeout)
		defer cancel()
	}
	ix.stats = ix.stats[:0]
	ix.size = len(pts)
	ix.localRebuilds = 0
	root, err := ix.buildNodeCtx(ctx, pts, ix.cfg.Space)
	if err != nil {
		return err
	}
	ix.root = root
	return nil
}

// localKey maps p into the node's rank space: the Z-order value
// relative to the node's own bounds.
//
//elsi:noalloc
func localKey(p geo.Point, bounds geo.Rect) float64 {
	return float64(curve.ZEncode(p, bounds))
}

// buildNode builds the subtree for pts with the given spatial bounds,
// panicking on model-build failure. It is the legacy entry used by
// insert-triggered local rebuilds, which run without a context.
func (ix *Index) buildNode(pts []geo.Point, bounds geo.Rect) *node {
	n, err := ix.buildNodeCtx(context.Background(), pts, bounds)
	if err != nil {
		panic(err)
	}
	return n
}

// buildNodeCtx builds the subtree for pts with the given spatial
// bounds, checking ctx between model builds.
func (ix *Index) buildNodeCtx(ctx context.Context, pts []geo.Point, bounds geo.Rect) (*node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dataBounds := geo.BoundingRect(pts)
	if dataBounds.IsEmpty() {
		dataBounds = bounds
	}
	n := &node{keyBounds: dataBounds, mbr: dataBounds}
	mapKey := func(p geo.Point) float64 { return localKey(p, dataBounds) }
	d := base.PrepareWorkers(pts, dataBounds, mapKey, ix.cfg.Workers)
	if len(pts) <= ix.cfg.LeafCap {
		// The prepared columns are sorted and owned by this build; the
		// leaf store adopts them without the former entry copy.
		n.st = store.NewSortedColumns(d.Keys, d.Pts)
		if d.Len() > 0 {
			m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, d)
			if err != nil {
				return nil, err
			}
			n.leafModel = m
			ix.stats = append(ix.stats, st)
		} else {
			n.leafModel = &rmi.Bounded{Model: rmi.ConstModel(0), N: 0}
		}
		return n, nil
	}
	m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, d)
	if err != nil {
		return nil, err
	}
	n.model = m
	ix.stats = append(ix.stats, st)
	f := ix.cfg.Fanout
	total := d.Len()
	for i := 0; i < f; i++ {
		lo := i * total / f
		hi := (i + 1) * total / f
		if lo >= hi {
			continue
		}
		childPts := append([]geo.Point(nil), d.Pts[lo:hi]...)
		child, err := ix.buildNodeCtx(ctx, childPts, dataBounds)
		if err != nil {
			return nil, err
		}
		n.childMinKey = append(n.childMinKey, d.Keys[lo])
		n.children = append(n.children, child)
	}
	return n, nil
}

// childSpan returns the inclusive child index range the node model's
// error bounds allow key to land in.
//
//elsi:noalloc
func (n *node) childSpan(key float64) (int, int) {
	total := n.model.N
	f := len(n.children)
	rLo, rHi := n.model.SearchRange(key)
	if rHi > 0 {
		rHi--
	}
	liLo := rLo * f / total
	liHi := rHi * f / total
	if liLo < 0 {
		liLo = 0
	}
	if liHi >= f {
		liHi = f - 1
	}
	return liLo, liHi
}

// PointQuery implements index.Index (exact).
//
//elsi:noalloc
func (ix *Index) PointQuery(p geo.Point) bool {
	if ix.root == nil {
		return false
	}
	return ix.findPoint(ix.root, p)
}

//elsi:noalloc
func (ix *Index) findPoint(n *node, p geo.Point) bool {
	if n.isLeaf() {
		for _, q := range n.extra {
			if q == p {
				return true
			}
		}
		if n.st.Len() == 0 {
			return false
		}
		ix.invocations.Add(1)
		key := localKey(p, n.keyBounds)
		lo, hi := n.leafModel.SearchRange(key)
		found := n.st.FindPoint(lo, hi, p)
		return found
	}
	if !n.mbr.Contains(p) {
		return false
	}
	ix.invocations.Add(1)
	key := localKey(p, n.keyBounds)
	liLo, liHi := n.childSpan(key)
	// Insertions route by the children's key ranges, so always include
	// that child too: for keys unseen at build time the model span and
	// the key-range route can disagree.
	ci := sort.SearchFloat64s(n.childMinKey, key)
	if ci > 0 {
		ci--
	}
	if ci < liLo {
		liLo = ci
	}
	if ci > liHi {
		liHi = ci
	}
	for i := liLo; i <= liHi; i++ {
		if ix.findPoint(n.children[i], p) {
			return true
		}
	}
	return false
}

// WindowQuery implements index.Index (approximate, as in the paper).
func (ix *Index) WindowQuery(win geo.Rect) []geo.Point {
	return ix.WindowQueryAppend(win, nil)
}

// WindowQueryAppend implements index.WindowAppender; it returns the
// same points in the same order as WindowQuery.
//
//elsi:noalloc
func (ix *Index) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if ix.root == nil {
		return out
	}
	return ix.windowNode(ix.root, win, out)
}

// span is a half-open scan interval [lo, hi) over a leaf store.
type span struct{ lo, hi int }

// leafScratch holds the per-leaf window-query working set (Z-range
// decomposition and predicted scan spans); pooled so repeated queries
// allocate nothing once warm.
type leafScratch struct {
	ranges []curve.KeyRange
	spans  []span
}

var leafScratchPool = sync.Pool{New: func() interface{} { return new(leafScratch) }}

//elsi:noalloc
func (ix *Index) windowNode(n *node, win geo.Rect, out []geo.Point) []geo.Point {
	if !win.Intersects(n.mbr) {
		return out
	}
	if !n.isLeaf() {
		for _, c := range n.children {
			out = ix.windowNode(c, win, out)
		}
		return out
	}
	for _, q := range n.extra {
		if win.Contains(q) {
			out = append(out, q)
		}
	}
	if n.st.Len() == 0 {
		return out
	}
	clipped := win.Intersection(n.keyBounds)
	if clipped.IsEmpty() {
		return out
	}
	// Predict a scan interval per Z-range from raw model output widened
	// only by the empirical bounds — no exact boundary repair, which is
	// what keeps RSMI approximate. The error-widened intervals of
	// adjacent ranges overlap, so merge them before scanning to avoid
	// duplicate results.
	sc := leafScratchPool.Get().(*leafScratch)
	sc.ranges = curve.ZRangesAppend(clipped, n.keyBounds, ix.cfg.MaxZDepth, sc.ranges[:0])
	spans := sc.spans[:0]
	for _, r := range sc.ranges {
		ix.invocations.Add(2)
		lo := n.leafModel.PredictRank(float64(r.Lo)) - n.leafModel.ErrLo
		hi := n.leafModel.PredictRank(float64(r.Hi)) + n.leafModel.ErrHi + 1
		if lo < 0 {
			lo = 0
		}
		if hi > n.st.Len() {
			hi = n.st.Len()
		}
		if lo >= hi {
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	sc.spans = spans
	// Insertion sort by lo: the span count is bounded by the Z-range
	// decomposition (tens at most), and unlike sort.Slice this does not
	// allocate a closure.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].lo < spans[j-1].lo; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	merged := spans[:0]
	for _, s := range spans {
		if len(merged) > 0 && s.lo <= merged[len(merged)-1].hi {
			if s.hi > merged[len(merged)-1].hi {
				merged[len(merged)-1].hi = s.hi
			}
			continue
		}
		merged = append(merged, s)
	}
	for _, s := range merged {
		out = n.st.CollectWindow(s.lo, s.hi, win, out)
	}
	leafScratchPool.Put(sc)
	return out
}

// KNN implements index.Index via expanding windows (approximate).
func (ix *Index) KNN(q geo.Point, k int) []geo.Point {
	return zm.WindowKNN(ix, ix.cfg.Space, ix.size, q, k)
}

// KNNAppend implements index.KNNAppender.
//
//elsi:noalloc
func (ix *Index) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	return zm.WindowKNNAppend(ix, ix.cfg.Space, ix.size, q, k, out)
}

// Insert implements index.Inserter: the point is routed to its leaf's
// overflow buffer; a full buffer triggers a local rebuild of that leaf
// (possibly growing a deeper local subtree, as in Figure 1).
func (ix *Index) Insert(p geo.Point) {
	if ix.root == nil {
		ix.root = ix.buildNode(nil, ix.cfg.Space)
	}
	ix.size++
	ix.root = ix.insertNode(ix.root, p)
}

func (ix *Index) insertNode(n *node, p geo.Point) *node {
	n.mbr = n.mbr.Extend(p)
	if n.isLeaf() {
		n.extra = append(n.extra, p)
		if len(n.extra) > ix.cfg.RetrainThreshold {
			ix.localRebuilds++
			pts := make([]geo.Point, 0, n.st.Len()+len(n.extra))
			pts = append(pts, n.st.Points()...)
			pts = append(pts, n.extra...)
			return ix.buildNode(pts, n.mbr)
		}
		return n
	}
	// route with the FIXED key bounds (out-of-range coordinates clamp
	// to the edge cells, so far-away inserts land in a boundary child)
	key := localKey(p, n.keyBounds)
	ci := sort.SearchFloat64s(n.childMinKey, key)
	if ci > 0 {
		ci--
	}
	n.children[ci] = ix.insertNode(n.children[ci], p)
	return n
}

// Delete implements index.Deleter for buffered points only; deletions
// of indexed points are handled by the ELSI update processor's delta
// list.
func (ix *Index) Delete(p geo.Point) bool {
	if ix.root == nil {
		return false
	}
	if ix.deleteBuffered(ix.root, p) {
		ix.size--
		return true
	}
	return false
}

func (ix *Index) deleteBuffered(n *node, p geo.Point) bool {
	if !n.mbr.Contains(p) {
		return false
	}
	if n.isLeaf() {
		for i, q := range n.extra {
			if q == p {
				n.extra[i] = n.extra[len(n.extra)-1]
				n.extra = n.extra[:len(n.extra)-1]
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if ix.deleteBuffered(c, p) {
			return true
		}
	}
	return false
}

// Depth returns the height of the index (a feature of the rebuild
// predictor).
func (ix *Index) Depth() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n == nil || n.isLeaf() {
			return 1
		}
		d := 0
		for _, c := range n.children {
			if cd := walk(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	return walk(ix.root)
}

// LocalRebuilds returns the number of leaf-level rebuilds triggered by
// insertions since the last full Build.
func (ix *Index) LocalRebuilds() int { return ix.localRebuilds }

// Stats returns per-model build statistics.
func (ix *Index) Stats() []base.BuildStats { return ix.stats }

// ModelInvocations returns the model-invocation counter.
func (ix *Index) ModelInvocations() int64 { return ix.invocations.Load() }

// ResetCounters zeroes the invocation and scan counters.
func (ix *Index) ResetCounters() {
	ix.invocations.Store(0)
	ix.eachLeaf(func(n *node) { n.st.ResetScanned() })
}

// Scanned sums the scan counters of every leaf store.
func (ix *Index) Scanned() int64 {
	var total int64
	ix.eachLeaf(func(n *node) { total += n.st.Scanned() })
	return total
}

// eachLeaf visits every leaf node.
func (ix *Index) eachLeaf(fn func(*node)) {
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			if n.st != nil {
				fn(n)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
}

// NumModels returns the number of models in the hierarchy.
func (ix *Index) NumModels() int {
	count := 0
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		count++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
	return count
}
