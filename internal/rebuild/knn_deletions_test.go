package rebuild

import (
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/geo"
	"elsi/internal/index"
)

// sortByDist orders pts by squared distance to q (ties by coordinates)
// so kNN answers compare deterministically.
func sortByDist(pts []geo.Point, q geo.Point) {
	sort.Slice(pts, func(i, j int) bool {
		di, dj := pts[i].Dist2(q), pts[j].Dist2(q)
		if di != dj {
			return di < dj
		}
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}

// Regression for the kNN-under-deletions bug: KNNAppend used to fetch
// exactly k candidates from the base index and only then filter pending
// deletions, so deleting any of the k nearest silently dropped the true
// k-th neighbor (ranked k+1..k+d in the base index) from the answer.
func TestKNNEquivalenceUnderDeletions(t *testing.T) {
	// 100 points on a line; delete the three nearest to the query. The
	// correct 5-NN answer is pts[3..7]; the buggy path returned only
	// the two survivors of the base index's 5 candidates.
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 0.01, Y: 0}
	}
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	q := geo.Point{X: 0, Y: 0}
	for i := 0; i < 3; i++ {
		p.Delete(pts[i])
	}
	got := p.KNN(q, 5)
	want := []geo.Point{pts[3], pts[4], pts[5], pts[6], pts[7]}
	if len(got) != len(want) {
		t.Fatalf("KNN returned %d points, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KNN[%d] = %v, want %v (full answer %v)", i, got[i], want[i], got)
		}
	}
}

// TestKNNBruteForceEquivalenceRandomized cross-checks KNNAppend against
// a full scan of the live point set under a randomized mix of deletions
// (both of near and far neighbors) and insertions, for a sweep of k —
// including k larger than the number of survivors.
func TestKNNBruteForceEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(150)
		pts := make([]geo.Point, 0, n)
		seen := map[geo.Point]bool{}
		for len(pts) < n {
			pt := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			if !seen[pt] {
				seen[pt] = true
				pts = append(pts, pt)
			}
		}
		p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		live := append([]geo.Point(nil), pts...)
		// delete a random third of the base points
		for i := 0; i < n/3; i++ {
			j := rng.Intn(len(live))
			p.Delete(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// and insert a few fresh ones
		for i := 0; i < 10; i++ {
			pt := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			if seen[pt] {
				continue
			}
			seen[pt] = true
			p.Insert(pt)
			live = append(live, pt)
		}
		q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		for _, k := range []int{1, 3, 10, len(live), len(live) + 5} {
			got := p.KNN(q, k)
			want := append([]geo.Point(nil), live...)
			sortByDist(want, q)
			if k < len(want) {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: got %d points, want %d", trial, k, len(got), len(want))
			}
			sortByDist(got, q)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: answer[%d] = %v, want %v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestKNNDeletionsAcrossLayers pins the fix across both delta layers:
// deletions recorded before a background rebuild started live in the
// frozen snapshot, later ones in the overlay, and the candidate fetch
// must widen by the deletions pending in both.
func TestKNNDeletionsAcrossLayers(t *testing.T) {
	pts := make([]geo.Point, 60)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 0.01, Y: 0}
	}
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	// two deletions land in the live list, then freeze them under an
	// in-flight rebuild and delete two more into the overlay
	p.Delete(pts[0])
	p.Delete(pts[2])
	gate := make(chan struct{})
	p.Factory = func() Rebuildable { return &gatedIndex{gate: gate} }
	p.Rebuild() // frozen now holds the first two deletions
	p.Delete(pts[1])
	p.Delete(pts[3])

	q := geo.Point{X: 0, Y: 0}
	got := p.KNN(q, 4)
	want := []geo.Point{pts[4], pts[5], pts[6], pts[7]}
	if len(got) != len(want) {
		t.Fatalf("KNN during rebuild returned %d points, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KNN[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	close(gate)
	p.WaitRebuild()
	// after the swap the overlay deletions still filter the new index
	got = p.KNN(q, 4)
	want = []geo.Point{pts[4], pts[5], pts[6], pts[7]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-swap KNN[%d] = %v, want %v (answer %v)", i, got[i], want[i], got)
		}
	}
}
