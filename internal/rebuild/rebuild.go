// Package rebuild implements ELSI's update processor (Section IV-B2):
// pending updates are kept in a delta list consulted at query time,
// and an FFN rebuild predictor decides — from the data set summary,
// the index depth, the update ratio, and the CDF drift sim(D', D) —
// when a full rebuild pays off. A learning-based trigger replaces the
// empirical rules traditional systems use.
package rebuild

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"elsi/internal/delta"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/kstest"
	"elsi/internal/nn"
)

// --- rebuild predictor --------------------------------------------------

// Features summarizes the state the rebuild predictor judges.
type Features struct {
	// N is the cardinality at the last (re)build.
	N int
	// Dist is dist(D_U, D) of the built data set.
	Dist float64
	// Depth is the index depth.
	Depth int
	// UpdateRatio is |D'|/|D| - 1.
	UpdateRatio float64
	// Sim is sim(D', D), the CDF similarity between the updated and
	// the built data set.
	Sim float64
}

func (f Features) vector() []float64 {
	return []float64{
		math.Log10(float64(maxInt(f.N, 1))) / 9,
		f.Dist,
		float64(f.Depth) / 20,
		math.Min(f.UpdateRatio, 8) / 8,
		f.Sim,
	}
}

// Sample is one labelled training row: Rebuild is true when querying
// without a rebuild was at least 10% slower than with one (the
// labelling rule of Section VII-B2).
type Sample struct {
	Features
	Rebuild bool
}

// Predictor is the FFN rebuild predictor C_RB.
type Predictor struct {
	net *nn.Network
}

// PredictorConfig controls predictor training.
type PredictorConfig struct {
	Hidden int
	Epochs int
	Seed   int64
}

// TrainPredictor fits the binary FFN on labelled samples.
func TrainPredictor(samples []Sample, cfg PredictorConfig) (*Predictor, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("rebuild: no training samples")
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.New(rng, 5, cfg.Hidden, 1)
	xs := make([][]float64, len(samples))
	ys := make([][]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.vector()
		if s.Rebuild {
			ys[i] = []float64{1}
		} else {
			ys[i] = []float64{0}
		}
	}
	if _, err := net.Train(xs, ys, nn.Config{LearningRate: 0.01, Epochs: cfg.Epochs, BatchSize: 16, Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	return &Predictor{net: net}, nil
}

// ShouldRebuild runs the predictor (output thresholded at 0.5).
func (p *Predictor) ShouldRebuild(f Features) bool {
	return p.net.Forward1(f.vector()) > 0.5
}

// HeuristicSamples fabricates a labelled training set from the
// qualitative behaviour the paper measures: rebuilds pay off when the
// data set has drifted (low sim, high update ratio) and the index is
// deep; they do not when the distribution is stable. It lets the
// system run end-to-end without the hours-long measurement sweep; the
// bench harness can regenerate measured samples instead.
func HeuristicSamples(rng *rand.Rand, count int) []Sample {
	out := make([]Sample, count)
	for i := range out {
		f := Features{
			N:           int(math.Pow(10, 3+rng.Float64()*3)),
			Dist:        rng.Float64(),
			Depth:       1 + rng.Intn(12),
			UpdateRatio: rng.Float64() * 6,
			Sim:         rng.Float64(),
		}
		// the measured rule of thumb: heavy drift or heavy growth with
		// a deep index means queries degrade >10%
		degraded := (1-f.Sim)*2+f.UpdateRatio/3+float64(f.Depth)/24 > 1
		out[i] = Sample{Features: f, Rebuild: degraded}
	}
	return out
}

// --- update processor -----------------------------------------------------

// Rebuildable is the index-side contract of the update processor: a
// queryable index that can be fully rebuilt from a point slice.
type Rebuildable interface {
	index.Index
	Build(pts []geo.Point) error
}

// Depther is implemented by indices exposing their height.
type Depther interface {
	Depth() int
}

// Processor wraps a built index with the ELSI update path: a delta
// list for pending inserts/deletes plus the learned rebuild trigger.
type Processor struct {
	idx  Rebuildable
	pred *Predictor
	// UseBuiltin routes insertions to the index's own Insert (when
	// supported), as RSMI and LISA do; otherwise they stay in the
	// delta list until a rebuild folds them in.
	UseBuiltin bool
	// Fu is the check frequency: the predictor runs every Fu updates.
	Fu int
	// MapKey mirrors the index's mapping, for CDF maintenance.
	MapKey func(geo.Point) float64

	pts       []geo.Point // current data set (source of truth)
	deltaList delta.List
	nextID    int64

	builtKeys   []float64 // sorted keys at last (re)build
	builtN      int
	builtDist   float64
	updatesSeen int
	rebuilds    int
	insKeys     []float64 // keys inserted since last build (unsorted)
}

// NewProcessor builds idx on pts and wraps it.
func NewProcessor(idx Rebuildable, pred *Predictor, pts []geo.Point, mapKey func(geo.Point) float64, fu int) (*Processor, error) {
	p := &Processor{idx: idx, pred: pred, Fu: fu, MapKey: mapKey}
	if p.Fu <= 0 {
		p.Fu = 1024
	}
	p.pts = append([]geo.Point(nil), pts...)
	if err := idx.Build(p.pts); err != nil {
		return nil, err
	}
	p.snapshot()
	return p, nil
}

// snapshot records the built data set's CDF and summary.
func (p *Processor) snapshot() {
	p.builtKeys = make([]float64, len(p.pts))
	for i, pt := range p.pts {
		p.builtKeys[i] = p.MapKey(pt)
	}
	sort.Float64s(p.builtKeys)
	p.builtN = len(p.pts)
	if p.builtN > 0 {
		p.builtDist = kstest.DistanceToUniform(p.builtKeys, p.builtKeys[0], p.builtKeys[p.builtN-1])
	} else {
		p.builtDist = 0
	}
	p.insKeys = p.insKeys[:0]
	p.deltaList.Clear()
	p.updatesSeen = 0
}

// Insert adds a point through the update processor. It reports
// whether the insertion triggered a full rebuild.
func (p *Processor) Insert(pt geo.Point) bool {
	p.pts = append(p.pts, pt)
	p.insKeys = append(p.insKeys, p.MapKey(pt))
	if ins, ok := interface{}(p.idx).(index.Inserter); ok && p.UseBuiltin {
		ins.Insert(pt)
	} else {
		p.nextID++
		p.deltaList.Insert(p.nextID, pt)
	}
	p.updatesSeen++
	return p.maybeRebuild()
}

// Delete removes a point through the delta list. It reports whether a
// rebuild was triggered.
func (p *Processor) Delete(pt geo.Point) bool {
	for i := len(p.pts) - 1; i >= 0; i-- {
		if p.pts[i] == pt {
			p.pts[i] = p.pts[len(p.pts)-1]
			p.pts = p.pts[:len(p.pts)-1]
			// a pending insertion of this point cancels out; only
			// points living in the built index need a deletion record
			if !p.deltaList.RemoveInsertedPoint(pt) {
				if del, ok := interface{}(p.idx).(index.Deleter); ok && p.UseBuiltin && del.Delete(pt) {
					// removed through the index's own deletion path
				} else {
					p.nextID++
					p.deltaList.Delete(p.nextID, pt)
				}
			}
			p.updatesSeen++
			return p.maybeRebuild()
		}
	}
	return false
}

// maybeRebuild consults the predictor every Fu updates.
func (p *Processor) maybeRebuild() bool {
	if p.pred == nil || p.updatesSeen == 0 || p.updatesSeen%p.Fu != 0 {
		return false
	}
	if !p.pred.ShouldRebuild(p.CurrentFeatures()) {
		return false
	}
	p.Rebuild()
	return true
}

// CurrentFeatures assembles the predictor input for the present state.
func (p *Processor) CurrentFeatures() Features {
	depth := 1
	if d, ok := interface{}(p.idx).(Depther); ok {
		depth = d.Depth()
	}
	ratio := 0.0
	if p.builtN > 0 {
		ratio = math.Abs(float64(len(p.pts))/float64(p.builtN) - 1)
	}
	return Features{
		N:           p.builtN,
		Dist:        p.builtDist,
		Depth:       depth,
		UpdateRatio: ratio,
		Sim:         p.CurrentSim(),
	}
}

// CurrentSim computes sim(D', D) between the data set at the last
// build and the current one, comparing their key CDFs.
func (p *Processor) CurrentSim() float64 {
	if len(p.insKeys) == 0 {
		return 1
	}
	cur := make([]float64, 0, len(p.builtKeys)+len(p.insKeys))
	cur = append(cur, p.builtKeys...)
	cur = append(cur, p.insKeys...)
	sort.Float64s(cur)
	return 1 - kstest.DistanceMerge(p.builtKeys, cur)
}

// Rebuild forces a full index rebuild on the current data set.
func (p *Processor) Rebuild() {
	p.idx.Build(p.pts)
	p.rebuilds++
	p.snapshot()
}

// Rebuilds returns how many full rebuilds have run.
func (p *Processor) Rebuilds() int { return p.rebuilds }

// Len returns the current data set size.
func (p *Processor) Len() int { return len(p.pts) }

// PointQuery answers a point query through the index and the delta
// list (results combined/filtered per Section IV-B2).
func (p *Processor) PointQuery(pt geo.Point) bool {
	if p.deltaList.HasInserted(pt) {
		return true
	}
	if p.deltaList.IsDeleted(pt) {
		return false
	}
	return p.idx.PointQuery(pt)
}

// WindowQuery answers a window query, merging pending insertions and
// filtering pending deletions.
func (p *Processor) WindowQuery(win geo.Rect) []geo.Point {
	out := p.idx.WindowQuery(win)
	if p.deltaList.Len() == 0 {
		return out
	}
	filtered := out[:0]
	for _, pt := range out {
		if !p.deltaList.IsDeleted(pt) {
			filtered = append(filtered, pt)
		}
	}
	return p.deltaList.InsertedWithin(win, filtered)
}

// KNN answers a kNN query over the combined state.
func (p *Processor) KNN(q geo.Point, k int) []geo.Point {
	cand := p.idx.KNN(q, k)
	if p.deltaList.Len() == 0 {
		return cand
	}
	merged := make([]geo.Point, 0, len(cand)+p.deltaList.Len())
	for _, pt := range cand {
		if !p.deltaList.IsDeleted(pt) {
			merged = append(merged, pt)
		}
	}
	p.deltaList.ForEach(func(r delta.Record) {
		if r.Op == delta.Inserted {
			merged = append(merged, r.Point)
		}
	})
	return index.KNNScan(merged, q, k)
}

// Index exposes the wrapped index.
func (p *Processor) Index() Rebuildable { return p.idx }

// PendingUpdates returns the delta-list size.
func (p *Processor) PendingUpdates() int { return p.deltaList.Len() }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
