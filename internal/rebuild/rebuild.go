// Package rebuild implements ELSI's update processor (Section IV-B2):
// pending updates are kept in a delta list consulted at query time,
// and an FFN rebuild predictor decides — from the data set summary,
// the index depth, the update ratio, and the CDF drift sim(D', D) —
// when a full rebuild pays off. A learning-based trigger replaces the
// empirical rules traditional systems use.
//
// The Processor is safe for concurrent readers and writers, and — when
// given a Factory — runs rebuilds on a background goroutine with an
// atomic index swap, so queries are never blocked behind a build (see
// DESIGN.md, "Concurrent update processor").
package rebuild

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"elsi/internal/base"
	"elsi/internal/delta"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/kstest"
	"elsi/internal/monitor"
	"elsi/internal/nn"
	"elsi/internal/parallel"
)

// --- rebuild predictor --------------------------------------------------

// Features summarizes the state the rebuild predictor judges.
type Features struct {
	// N is the cardinality at the last (re)build.
	N int
	// Dist is dist(D_U, D) of the built data set.
	Dist float64
	// Depth is the index depth.
	Depth int
	// UpdateRatio is |D'|/|D| - 1.
	UpdateRatio float64
	// Sim is sim(D', D), the CDF similarity between the updated and
	// the built data set.
	Sim float64
}

func (f Features) vector() []float64 {
	return []float64{
		math.Log10(float64(maxInt(f.N, 1))) / 9,
		f.Dist,
		float64(f.Depth) / 20,
		math.Min(f.UpdateRatio, 8) / 8,
		f.Sim,
	}
}

// Sample is one labelled training row: Rebuild is true when querying
// without a rebuild was at least 10% slower than with one (the
// labelling rule of Section VII-B2).
type Sample struct {
	Features
	Rebuild bool
}

// Predictor is the FFN rebuild predictor C_RB.
type Predictor struct {
	net *nn.Network
}

// PredictorConfig controls predictor training.
type PredictorConfig struct {
	Hidden int
	Epochs int
	Seed   int64
}

// TrainPredictor fits the binary FFN on labelled samples.
func TrainPredictor(samples []Sample, cfg PredictorConfig) (*Predictor, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("rebuild: no training samples")
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.New(rng, 5, cfg.Hidden, 1)
	xs := make([][]float64, len(samples))
	ys := make([][]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.vector()
		if s.Rebuild {
			ys[i] = []float64{1}
		} else {
			ys[i] = []float64{0}
		}
	}
	if _, err := net.Train(xs, ys, nn.Config{LearningRate: 0.01, Epochs: cfg.Epochs, BatchSize: 16, Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	return &Predictor{net: net}, nil
}

// ShouldRebuild runs the predictor (output thresholded at 0.5).
func (p *Predictor) ShouldRebuild(f Features) bool {
	return p.net.Forward1(f.vector()) > 0.5
}

// HeuristicSamples fabricates a labelled training set from the
// qualitative behaviour the paper measures: rebuilds pay off when the
// data set has drifted (low sim, high update ratio) and the index is
// deep; they do not when the distribution is stable. It lets the
// system run end-to-end without the hours-long measurement sweep; the
// bench harness can regenerate measured samples instead.
func HeuristicSamples(rng *rand.Rand, count int) []Sample {
	out := make([]Sample, count)
	for i := range out {
		f := Features{
			N:           int(math.Pow(10, 3+rng.Float64()*3)),
			Dist:        rng.Float64(),
			Depth:       1 + rng.Intn(12),
			UpdateRatio: rng.Float64() * 6,
			Sim:         rng.Float64(),
		}
		// the measured rule of thumb: heavy drift or heavy growth with
		// a deep index means queries degrade >10%
		degraded := (1-f.Sim)*2+f.UpdateRatio/3+float64(f.Depth)/24 > 1
		out[i] = Sample{Features: f, Rebuild: degraded}
	}
	return out
}

// --- update processor -----------------------------------------------------

// Rebuildable is the index-side contract of the update processor: a
// queryable index that can be fully rebuilt from a point slice.
type Rebuildable interface {
	index.Index
	Build(pts []geo.Point) error
}

// Depther is implemented by indices exposing their height.
type Depther interface {
	Depth() int
}

// Processor wraps a built index with the ELSI update path: a delta
// list for pending inserts/deletes plus the learned rebuild trigger.
//
// All methods are safe for concurrent use. The configuration fields
// (UseBuiltin, Fu, MapKey, Factory) must be set before the processor
// is shared across goroutines and not mutated afterwards.
//
// Without a Factory, a triggered rebuild runs inline under the write
// lock: correct, but every reader stalls for the build's duration.
// With a Factory, the rebuild runs on a background goroutine against a
// frozen snapshot of the data set while queries keep being served from
// the old index plus the frozen delta view, and new updates land in a
// fresh delta overlay; when the build finishes, the new index is
// swapped in atomically and the overlay becomes the live delta list.
type Processor struct {
	pred *Predictor
	// UseBuiltin routes insertions to the index's own Insert (when
	// supported), as RSMI and LISA do; otherwise they stay in the
	// delta list until a rebuild folds them in. While a background
	// rebuild is in flight the builtin path is suspended: an update
	// applied to the outgoing index only would be lost at swap time,
	// so it is recorded in the overlay instead.
	UseBuiltin bool
	// Fu is the check frequency: the predictor runs every Fu updates.
	Fu int
	// MapKey mirrors the index's mapping, for CDF maintenance.
	MapKey func(geo.Point) float64
	// Factory creates a fresh, unbuilt index instance for each
	// background rebuild. When nil, rebuilds block.
	Factory func() Rebuildable
	// Retry, when non-nil, retries failed background rebuilds with
	// capped exponential backoff (see RetryPolicy). Nil disables
	// retries: a failed rebuild stays failed until the next trigger.
	Retry *RetryPolicy
	// BuildGate, when non-nil, is called by the background-rebuild
	// goroutine immediately before the build phase; the build starts
	// once it returns and the returned release function is called when
	// the build finishes (success, failure, or recovered panic). A
	// sharded deployment installs a shared semaphore here so at most a
	// fixed number of shards rebuild concurrently — a rebuild wave
	// across the fleet never saturates every core at once. While a
	// shard waits at the gate it keeps serving from its old index plus
	// the delta overlay, exactly as during the build itself. Inline
	// (blocking) rebuilds are not gated: they run under the write lock,
	// and waiting there on other shards' builds would stall this
	// shard's readers for unrelated work.
	BuildGate func() (release func())
	// OnSwap, when non-nil, is called after every successful background
	// rebuild swap, outside the processor lock. The persistence layer
	// installs its snapshot trigger here: a swap is the moment the
	// learned structure absorbed its pending deltas, so capturing right
	// after it keeps the WAL tail (and hence recovery time) short.
	OnSwap func()
	// Monitor, when non-nil, receives one Record* call per query and
	// update — padded atomics only, so the hot paths stay lock-free
	// and allocation-free. Set before the processor is shared.
	Monitor *monitor.Stats
	// Workload, when non-nil, is resampled at the start of every
	// rebuild (background and inline): the traffic observed since the
	// last sample becomes a core.WorkloadProfile offered to the build
	// system, so the method ranking of the build about to run reflects
	// the live mix. Set before the processor is shared.
	Workload *WorkloadAdapter
	// BreakerThreshold is the number of consecutive rebuild failures
	// that opens the circuit breaker (0 selects the default of 5,
	// negative disables the breaker). While open, automatic rebuilds
	// are suppressed — the processor serves from the last good index
	// plus the delta overlay — and an explicit Rebuild() runs inline
	// (blocking) instead of spawning another doomed background build.
	// The breaker closes on the next successful rebuild or ResetBreaker.
	BreakerThreshold int

	// mu guards everything below. Background builds run outside the
	// lock against a frozen snapshot; completion re-acquires it only
	// for the swap, so no channel wait ever happens while it is held.
	//
	//elsi:lockorder
	mu sync.RWMutex

	idx       Rebuildable
	pts       []geo.Point // current data set (source of truth)
	deltaList delta.List  // live overlay: updates since the last (started) rebuild
	nextID    int64

	builtKeys   []float64 // sorted keys at last (re)build
	builtN      int
	builtDist   float64
	updatesSeen int
	rebuilds    int

	// background-rebuild state machine: rebuilding is true while a
	// build goroutine is in flight; frozen is the delta view at the
	// moment the rebuild started (immutable; consulted by queries
	// between the overlay and the old index); generation detects
	// superseded completions; rebuildDone is closed at swap time.
	rebuilding  bool
	frozen      *delta.List
	generation  uint64
	rebuildDone chan struct{}
	rebuildErr  error

	// failure bookkeeping: a bounded ring of recent rebuild errors
	// (newest last) plus counters and the retry/breaker state.
	rebuildErrs  []error
	failures     int
	retries      int
	consecFail   int
	retryPending bool
	breakerOpen  bool
	retryRNG     *rand.Rand

	// retryWG joins the backoff-sleeper goroutines armed by
	// scheduleRetryLocked, so Quiesce can prove none outlive the
	// processor. It is not guarded by mu: Add happens before the
	// spawn under the write lock, Wait only in Quiesce.
	retryWG sync.WaitGroup

	// updateGen counts visible-state changes: it is bumped under the
	// write lock together with every applied insert, applied delete,
	// and index swap. Result caches stamp entries with it — a lookup
	// whose stamp matches the current generation is provably reading
	// unchanged state (the bump and the mutation are atomic under mu).
	// No-op updates (re-insert of a stored point, delete of a missing
	// one) leave it alone: answers did not change.
	updateGen atomic.Uint64
}

// UpdateGen returns the current update generation. Readers that cache
// query results read it BEFORE computing the answer and stamp the
// cache entry with that value; see qcache.
//
//elsi:noalloc
func (p *Processor) UpdateGen() uint64 {
	return p.updateGen.Load()
}

// NewProcessor builds idx on pts and wraps it. The data set must be
// non-empty and free of NaN/±Inf coordinates (base.ErrEmptyDataset,
// *base.InvalidPointError): a processor over nothing would serve an
// empty index while its overlay silently absorbed every update, and
// non-finite coordinates have no place on a space-filling curve.
func NewProcessor(idx Rebuildable, pred *Predictor, pts []geo.Point, mapKey func(geo.Point) float64, fu int) (*Processor, error) {
	if err := base.ValidateDataset(pts); err != nil {
		return nil, err
	}
	p := &Processor{idx: idx, pred: pred, Fu: fu, MapKey: mapKey}
	if p.Fu <= 0 {
		p.Fu = 1024
	}
	p.pts = append([]geo.Point(nil), pts...)
	if err := idx.Build(p.pts); err != nil {
		return nil, err
	}
	p.builtKeys, p.builtN, p.builtDist = summarize(p.pts, p.MapKey)
	return p, nil
}

// summarize computes the sorted key CDF and summary of a data set.
func summarize(pts []geo.Point, mapKey func(geo.Point) float64) (keys []float64, n int, dist float64) {
	keys = make([]float64, len(pts))
	for i, pt := range pts {
		keys[i] = mapKey(pt)
	}
	sort.Float64s(keys)
	n = len(pts)
	if n > 0 {
		dist = kstest.DistanceToUniform(keys, keys[0], keys[n-1])
	}
	return keys, n, dist
}

// Insert adds a point through the update processor. It reports
// whether the insertion triggered a full rebuild.
//
// The processor maintains set semantics over the updated points:
// inserting a point that is already stored — in the base index, the
// frozen view of an in-flight rebuild, or the live overlay — is a
// no-op. Without the guard a re-insert of a base-resident point put a
// second copy into the overlay and window/kNN answers emitted the
// point twice (and the duplicate pushed a true neighbor out of kNN
// answers).
func (p *Processor) Insert(pt geo.Point) bool {
	p.Monitor.RecordInsert(pt)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pointLiveLocked(pt) {
		return false
	}
	p.pts = append(p.pts, pt)
	p.updateGen.Add(1)
	if ins, ok := p.idx.(index.Inserter); ok && p.UseBuiltin && !p.rebuilding {
		ins.Insert(pt)
	} else {
		p.nextID++
		p.deltaList.Insert(p.nextID, pt)
	}
	p.updatesSeen++
	return p.maybeRebuildLocked()
}

// Delete removes a point through the delta list. It reports whether a
// rebuild was triggered.
//
// Deletion is by value and removes the point entirely (set semantics,
// matching the query-time deletion filter, which drops every answer
// copy equal to a deleted point): all copies leave the source-of-truth
// point set, so pre- and post-rebuild answers agree even if the
// initial build set contained duplicates.
func (p *Processor) Delete(pt geo.Point) bool {
	p.Monitor.RecordDelete(pt)
	p.mu.Lock()
	defer p.mu.Unlock()
	removed := false
	for i := len(p.pts) - 1; i >= 0; i-- {
		if p.pts[i] == pt {
			p.pts[i] = p.pts[len(p.pts)-1]
			p.pts = p.pts[:len(p.pts)-1]
			removed = true
		}
	}
	if !removed {
		return false
	}
	p.updateGen.Add(1)
	// a pending insertion of this point cancels out; only points
	// living in an index (or in the frozen view an in-flight rebuild
	// is folding in) need a deletion record
	if !p.deltaList.RemoveInsertedPoint(pt) {
		if del, ok := p.idx.(index.Deleter); ok && p.UseBuiltin && !p.rebuilding && del.Delete(pt) {
			// removed through the index's own deletion path
		} else {
			p.nextID++
			p.deltaList.Delete(p.nextID, pt)
		}
	}
	p.updatesSeen++
	return p.maybeRebuildLocked()
}

// maybeRebuildLocked consults the predictor every Fu updates. Called
// with the write lock held. With the circuit breaker open (or a retry
// already scheduled) automatic rebuilds are suppressed: the processor
// keeps serving from the last good index plus the delta overlay.
func (p *Processor) maybeRebuildLocked() bool {
	if p.pred == nil || p.rebuilding || p.retryPending || p.breakerOpen ||
		p.updatesSeen == 0 || p.updatesSeen%p.Fu != 0 {
		return false
	}
	if !p.pred.ShouldRebuild(p.currentFeaturesLocked()) {
		return false
	}
	if p.Factory != nil {
		p.startRebuildLocked()
	} else {
		p.rebuildBlockingLocked()
	}
	return true
}

// CurrentFeatures assembles the predictor input for the present state.
func (p *Processor) CurrentFeatures() Features {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.currentFeaturesLocked()
}

func (p *Processor) currentFeaturesLocked() Features {
	depth := 1
	if d, ok := p.idx.(Depther); ok {
		depth = d.Depth()
	}
	ratio := 0.0
	if p.builtN > 0 {
		ratio = math.Abs(float64(len(p.pts))/float64(p.builtN) - 1)
	}
	return Features{
		N:           p.builtN,
		Dist:        p.builtDist,
		Depth:       depth,
		UpdateRatio: ratio,
		Sim:         p.currentSimLocked(),
	}
}

// CurrentSim computes sim(D', D) between the data set at the last
// build and the current one, comparing their key CDFs. The current
// CDF is derived from the live point set, so both insertions and
// deletions move it — a workload that deletes half a region drives
// sim well below 1 even with no insertion at all.
func (p *Processor) CurrentSim() float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.currentSimLocked()
}

func (p *Processor) currentSimLocked() float64 {
	if p.updatesSeen == 0 {
		return 1
	}
	if len(p.builtKeys) == 0 || len(p.pts) == 0 {
		if len(p.builtKeys) == len(p.pts) {
			return 1
		}
		return 0
	}
	cur := make([]float64, len(p.pts))
	for i, pt := range p.pts {
		cur[i] = p.MapKey(pt)
	}
	sort.Float64s(cur)
	return 1 - kstest.DistanceMerge(p.builtKeys, cur)
}

// Rebuild forces a full index rebuild on the current data set. With a
// Factory it starts a background rebuild and returns immediately
// (WaitRebuild blocks until the swap); without one — or with the
// circuit breaker open — it rebuilds inline under the write lock.
// A Rebuild issued while one is already in flight is a no-op.
func (p *Processor) Rebuild() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rebuilding {
		return
	}
	if p.Factory != nil && !p.breakerOpen {
		p.startRebuildLocked()
	} else {
		p.rebuildBlockingLocked()
	}
}

// rebuildBlockingLocked is the inline path: build in place under the
// write lock, then reset the delta state. A failed or panicking build
// keeps the delta list — the pending updates are still pending, since
// nothing absorbed them — and is recorded like a background failure.
func (p *Processor) rebuildBlockingLocked() {
	p.Workload.Resample()
	if err := p.buildInlineSafe(); err != nil {
		p.recordFailureLocked(err)
		return
	}
	p.rebuilds++
	// The rebuilt index may answer window/kNN queries in a different
	// (equivalent) order than old-index-plus-delta did; invalidate.
	p.updateGen.Add(1)
	p.builtKeys, p.builtN, p.builtDist = summarize(p.pts, p.MapKey)
	p.deltaList.Clear()
	p.updatesSeen = 0
	p.recordSuccessLocked()
}

// buildInlineSafe runs the in-place build with panic isolation.
func (p *Processor) buildInlineSafe() (err error) {
	defer func() {
		if pe := parallel.Recovered(recover()); pe != nil {
			err = pe
		}
	}()
	if err := faults.Hit("rebuild/background"); err != nil {
		return err
	}
	return p.idx.Build(p.pts)
}

// startRebuildLocked launches the background rebuild: freeze the data
// set and the delta view, hand them to a build goroutine working on a
// fresh Factory instance, and let the overlay collect what arrives in
// the meantime. Called with the write lock held and no rebuild in
// flight.
func (p *Processor) startRebuildLocked() {
	p.rebuilding = true
	p.generation++
	gen := p.generation
	done := make(chan struct{})
	p.rebuildDone = done
	frozenPts := append([]geo.Point(nil), p.pts...)
	p.frozen = p.deltaList.Freeze() // deltaList is now the empty overlay
	seenAtStart := p.updatesSeen
	factory := p.Factory
	mapKey := p.MapKey
	gate := p.BuildGate

	adapter := p.Workload

	go func() {
		defer close(done)
		// Re-derive the workload profile from the traffic observed
		// since the last sample, so the build below ranks methods under
		// the live preference. Runs before the gate: waiting shards
		// should build with a profile from when they queued, not one
		// refreshed mid-wait by chance.
		adapter.Resample()
		// the expensive part — including the factory, which may set up
		// builders — runs without the lock: queries and updates proceed
		// against the old index + frozen + overlay. buildSafe recovers
		// panics, so a panicking factory or build never kills the
		// process or wedges the processor in the rebuilding state. The
		// gate (when installed) bounds how many such builds run at once
		// across a shard fleet; buildSafe never panics out, so release
		// always runs.
		newIdx, err := func() (Rebuildable, error) {
			if gate != nil {
				release := gate()
				defer release()
			}
			return buildSafe(factory, frozenPts)
		}()
		var keys []float64
		var n int
		var dist float64
		if err == nil {
			keys, n, dist = summarize(frozenPts, mapKey)
		}

		swapped := func() bool {
			p.mu.Lock()
			defer p.mu.Unlock()
			if p.generation != gen {
				return false // superseded; state belongs to a newer rebuild
			}
			p.rebuilding = false
			p.rebuildErr = err
			if err != nil {
				// keep serving the old index; fold the overlay back into
				// the frozen view, replaying chronologically so deletions
				// cancel the frozen insertions they could not reach while
				// the snapshot was immutable
				restored := p.frozen
				for _, r := range p.deltaList.Records() {
					if r.Op == delta.Deleted && restored.RemoveInsertedPoint(r.Point) {
						continue
					}
					restored.Adopt(r)
				}
				p.deltaList = *restored
				p.frozen = nil
				p.recordFailureLocked(err)
				p.scheduleRetryLocked(gen)
				return false
			}
			// atomic swap: the new index already contains everything the
			// frozen view described, so only the overlay stays pending
			p.idx = newIdx
			p.frozen = nil
			p.rebuilds++
			p.updateGen.Add(1)
			p.builtKeys, p.builtN, p.builtDist = keys, n, dist
			p.updatesSeen -= seenAtStart
			p.recordSuccessLocked()
			return true
		}()
		// the snapshot hook runs outside the lock: it may call back into
		// CaptureState, which takes the read lock
		if swapped && p.OnSwap != nil {
			p.OnSwap()
		}
	}()
}

// buildSafe runs one background build attempt with panic isolation.
// Injection point: "rebuild/background".
func buildSafe(factory func() Rebuildable, pts []geo.Point) (idx Rebuildable, err error) {
	defer func() {
		if pe := parallel.Recovered(recover()); pe != nil {
			idx, err = nil, pe
		}
	}()
	if err := faults.Hit("rebuild/background"); err != nil {
		return nil, err
	}
	newIdx := factory()
	if err := newIdx.Build(pts); err != nil {
		return nil, err
	}
	return newIdx, nil
}

// WaitRebuild blocks until no background rebuild is in flight. It
// returns immediately when none is.
func (p *Processor) WaitRebuild() {
	for {
		p.mu.RLock()
		rebuilding, done := p.rebuilding, p.rebuildDone
		p.mu.RUnlock()
		if !rebuilding {
			return
		}
		<-done
	}
}

// Rebuilding reports whether a background rebuild is in flight.
func (p *Processor) Rebuilding() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.rebuilding
}

// RebuildErr returns the error of the most recently completed
// background rebuild, if any (a failed rebuild keeps the old index
// serving and restores the frozen delta view).
func (p *Processor) RebuildErr() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.rebuildErr
}

// Rebuilds returns how many full rebuilds have completed.
func (p *Processor) Rebuilds() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.rebuilds
}

// Len returns the current data set size.
func (p *Processor) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pts)
}

// PointQuery answers a point query through the index and the delta
// view (results combined/filtered per Section IV-B2). During a
// background rebuild the overlay is newer than the frozen snapshot,
// so it is consulted first.
//
//elsi:noalloc
func (p *Processor) PointQuery(pt geo.Point) bool {
	p.Monitor.RecordPoint(pt)
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pointLiveLocked(pt)
}

// pointLiveLocked reports whether pt is currently stored, layering the
// live overlay over the frozen view over the base index. Called with
// either lock held; Insert uses it to keep the stored points a set.
//
//elsi:noalloc
func (p *Processor) pointLiveLocked(pt geo.Point) bool {
	if p.deltaList.HasInserted(pt) {
		return true
	}
	if p.deltaList.IsDeleted(pt) {
		return false
	}
	if p.frozen != nil {
		if p.frozen.HasInserted(pt) {
			return true
		}
		if p.frozen.IsDeleted(pt) {
			return false
		}
	}
	return p.idx.PointQuery(pt)
}

// isDeletedLocked reports a pending deletion in either delta layer.
//
//elsi:noalloc
func (p *Processor) isDeletedLocked(pt geo.Point) bool {
	if p.deltaList.IsDeleted(pt) {
		return true
	}
	return p.frozen != nil && p.frozen.IsDeleted(pt)
}

// WindowQuery answers a window query, merging pending insertions and
// filtering pending deletions from both delta layers.
func (p *Processor) WindowQuery(win geo.Rect) []geo.Point {
	return p.WindowQueryAppend(win, nil)
}

// WindowQueryAppend is WindowQuery appending the answer to out under
// the same snapshot-consistent read lock; WindowQuery delegates here,
// so both entry points return identical results. The index's matches
// are written after len(out) and the deletion filter compacts only
// that tail, so a caller's existing prefix is never touched.
//
//elsi:noalloc
func (p *Processor) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	p.Monitor.RecordWindow(win)
	p.mu.RLock()
	defer p.mu.RUnlock()
	base := len(out)
	out = index.AppendWindow(p.idx, win, out)
	if p.deltaList.Len() == 0 && p.frozen == nil {
		return out
	}
	filtered := out[:base]
	for _, pt := range out[base:] {
		if !p.isDeletedLocked(pt) {
			filtered = append(filtered, pt)
		}
	}
	out = filtered
	if p.frozen != nil {
		// frozen insertions may since have been deleted in the overlay
		out = p.frozen.InsertedWithinNotDeletedIn(win, &p.deltaList, out)
	}
	return p.deltaList.InsertedWithin(win, out)
}

// knnScratch holds the index candidate set and the delta-merged set of
// a kNN query; pooled so steady-state queries reuse one working set.
type knnScratch struct {
	cand   []geo.Point
	merged []geo.Point
}

var knnScratchPool = sync.Pool{New: func() interface{} { return new(knnScratch) }}

// KNN answers a kNN query over the combined state.
func (p *Processor) KNN(q geo.Point, k int) []geo.Point {
	return p.KNNAppend(q, k, nil)
}

// KNNAppend is KNN appending the answer to out; KNN delegates here, so
// both entry points return identical results.
//
// The candidate fetch from the base index is widened by the number of
// pending deletions in both delta layers: fetching exactly k and then
// filtering would silently drop the true k-th neighbor whenever any of
// the base index's k nearest is pending deletion (it ranks k+1..k+d in
// the base order). An escalation loop covers the residual case where
// even the widened fetch loses too many candidates (e.g. duplicate
// points sharing one deletion filter): it doubles the fetch until k
// survivors are found or the index is exhausted.
//
//elsi:noalloc
func (p *Processor) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	p.Monitor.RecordKNN(q, k)
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := knnScratchPool.Get().(*knnScratch)
	defer knnScratchPool.Put(s)
	if p.deltaList.Len() == 0 && p.frozen == nil {
		s.cand = index.AppendKNN(p.idx, q, k, s.cand[:0])
		return append(out, s.cand...)
	}
	need := k
	if k > 0 {
		need += p.deltaList.Deletions()
		if p.frozen != nil {
			need += p.frozen.Deletions()
		}
	}
	merged := s.merged[:0]
	for {
		s.cand = index.AppendKNN(p.idx, q, need, s.cand[:0])
		merged = merged[:0]
		for _, pt := range s.cand {
			if !p.isDeletedLocked(pt) {
				merged = append(merged, pt)
			}
		}
		// done when k base survivors were found or the index has no
		// further candidates to offer (it returned fewer than asked)
		if len(merged) >= k || len(s.cand) < need {
			break
		}
		need *= 2
	}
	if p.frozen != nil {
		merged = p.frozen.InsertedNotDeletedIn(&p.deltaList, merged)
	}
	merged = p.deltaList.AppendInserted(merged)
	s.merged = merged
	return index.KNNScanAppend(merged, q, k, out)
}

// Index exposes the wrapped index. During a background rebuild this is
// the old index still serving queries; the swapped-in index becomes
// visible once WaitRebuild returns.
func (p *Processor) Index() Rebuildable {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.idx
}

// PendingUpdates returns the delta size across both layers (the live
// overlay plus, during a rebuild, the frozen view being folded in).
func (p *Processor) PendingUpdates() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := p.deltaList.Len()
	if p.frozen != nil {
		n += p.frozen.Len()
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
