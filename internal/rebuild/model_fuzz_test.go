package rebuild

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/geo"
	"elsi/internal/index"
)

// The model-based fuzz drives the processor and a plain map reference
// model through the same randomized update/query stream and fails on
// the first divergence. Coordinates are drawn from a coarse grid so
// collisions — re-insert of a base-resident point, delete-then-insert,
// insert-then-delete across the frozen/overlay layers — happen
// constantly, and a gated background rebuild is held in flight for
// stretches of the stream (sometimes failing, to exercise the frozen
// restore/replay path). Run under -race, the in-flight build goroutine
// also checks the locking of every query path.

const fuzzGridSide = 24

func gridPoint(rng *rand.Rand) geo.Point {
	return geo.Point{
		X: float64(rng.Intn(fuzzGridSide)) / fuzzGridSide,
		Y: float64(rng.Intn(fuzzGridSide)) / fuzzGridSide,
	}
}

// modelPoints returns the reference set as a slice.
func modelPoints(model map[geo.Point]bool) []geo.Point {
	out := make([]geo.Point, 0, len(model))
	for pt := range model {
		out = append(out, pt)
	}
	return out
}

// sortPoints orders points lexicographically for multiset comparison.
func sortPoints(pts []geo.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}

func samePointSlices(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedDist2 returns the ascending squared distances of pts to q.
func sortedDist2(pts []geo.Point, q geo.Point) []float64 {
	out := make([]float64, len(pts))
	for i, pt := range pts {
		out[i] = pt.Dist2(q)
	}
	sort.Float64s(out)
	return out
}

func TestProcessorModelFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModelFuzz(t, seed)
		})
	}
}

func runModelFuzz(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	model := map[geo.Point]bool{}
	for len(model) < 120 {
		model[gridPoint(rng)] = true
	}
	initial := modelPoints(model)
	sortPoints(initial) // deterministic build order

	p, err := NewProcessor(index.NewBruteForce(), nil, initial, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected rebuild failure")
	var gate chan struct{}
	gateOpsLeft := 0
	failNext := false

	ops := 4000
	if testing.Short() {
		ops = 1200
	}
	for op := 0; op < ops; op++ {
		// rebuild scheduling: every ~300 ops start a gated background
		// rebuild and hold it in flight for ~120 ops; every other one
		// fails at the gate, exercising the frozen restore path.
		if gate == nil && op%300 == 150 {
			gate = make(chan struct{})
			g := &gatedIndex{gate: gate}
			if failNext {
				g.buildErr = boom
			}
			failNext = !failNext
			p.Factory = func() Rebuildable { return g }
			p.Rebuild()
			gateOpsLeft = 120
		}
		if gate != nil {
			if gateOpsLeft--; gateOpsLeft <= 0 {
				close(gate)
				p.WaitRebuild()
				gate = nil
			}
		}

		switch r := rng.Float64(); {
		case r < 0.25: // insert (frequently a collision with a live point)
			pt := gridPoint(rng)
			p.Insert(pt)
			model[pt] = true
		case r < 0.45: // delete (sometimes of an absent point)
			pt := gridPoint(rng)
			delete(model, pt)
			p.Delete(pt)
		case r < 0.65: // point query
			pt := gridPoint(rng)
			if got, want := p.PointQuery(pt), model[pt]; got != want {
				t.Fatalf("op %d: PointQuery(%v) = %v, want %v", op, pt, got, want)
			}
		case r < 0.85: // window query, including degenerate windows
			var win geo.Rect
			switch rng.Intn(8) {
			case 0: // zero-area (a grid line)
				x := float64(rng.Intn(fuzzGridSide)) / fuzzGridSide
				win = geo.Rect{MinX: x, MinY: 0, MaxX: x, MaxY: 1}
			case 1: // inverted
				win = geo.Rect{MinX: 0.8, MinY: 0.8, MaxX: 0.2, MaxY: 0.2}
			default:
				x0, y0 := rng.Float64(), rng.Float64()
				win = geo.Rect{MinX: x0, MinY: y0, MaxX: x0 + rng.Float64()*0.5, MaxY: y0 + rng.Float64()*0.5}
			}
			got := append([]geo.Point(nil), p.WindowQuery(win)...)
			var want []geo.Point
			for pt := range model {
				if win.Contains(pt) {
					want = append(want, pt)
				}
			}
			sortPoints(got)
			sortPoints(want)
			if !samePointSlices(got, want) {
				t.Fatalf("op %d: WindowQuery(%v) diverged\n got %v\nwant %v", op, win, got, want)
			}
		default: // kNN (compare the distance multiset: ties are legal)
			q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			k := rng.Intn(12)
			got := p.KNN(q, k)
			live := modelPoints(model)
			wantLen := k
			if wantLen > len(live) {
				wantLen = len(live)
			}
			if k <= 0 {
				wantLen = 0
			}
			if len(got) != wantLen {
				t.Fatalf("op %d: KNN(%v, %d) returned %d points, want %d", op, q, k, len(got), wantLen)
			}
			gd := sortedDist2(got, q)
			wd := sortedDist2(live, q)[:wantLen]
			for i := range wd {
				if gd[i] != wd[i] {
					t.Fatalf("op %d: KNN(%v, %d) distance[%d] = %v, want %v", op, q, k, i, gd[i], wd[i])
				}
			}
			// answers must come from the live set, without duplicates
			seen := map[geo.Point]bool{}
			for _, pt := range got {
				if !model[pt] {
					t.Fatalf("op %d: KNN returned dead point %v", op, pt)
				}
				if seen[pt] {
					t.Fatalf("op %d: KNN returned duplicate point %v", op, pt)
				}
				seen[pt] = true
			}
		}
	}
	if gate != nil {
		close(gate)
		p.WaitRebuild()
	}
	// final full-space sweep: the processor and the model must agree
	// exactly once all rebuilds have settled
	got := append([]geo.Point(nil), p.WindowQuery(geo.UnitRect)...)
	want := modelPoints(model)
	sortPoints(got)
	sortPoints(want)
	if !samePointSlices(got, want) {
		t.Fatalf("final sweep diverged: got %d points, want %d", len(got), len(want))
	}
	if p.Len() != len(model) {
		t.Fatalf("Len() = %d, model has %d", p.Len(), len(model))
	}
}
