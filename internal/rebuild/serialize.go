package rebuild

import (
	"os"

	"elsi/internal/nn"
)

// MarshalBinary implements encoding.BinaryMarshaler so the rebuild
// predictor — like the method scorer, an offline one-off training —
// can be persisted and reused.
func (p *Predictor) MarshalBinary() ([]byte, error) {
	return p.net.MarshalBinary()
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *Predictor) UnmarshalBinary(data []byte) error {
	p.net = new(nn.Network)
	return p.net.UnmarshalBinary(data)
}

// Save writes the predictor to path.
func (p *Predictor) Save(path string) error {
	data, err := p.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPredictor reads a predictor from path.
func LoadPredictor(path string) (*Predictor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := new(Predictor)
	if err := p.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return p, nil
}
