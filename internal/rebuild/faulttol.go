package rebuild

import (
	"math/rand"
	"time"
)

// errRingCap bounds the recent-error ring exposed by RebuildErrors.
const errRingCap = 16

// defaultBreakerThreshold is the consecutive-failure count that opens
// the circuit breaker when BreakerThreshold is left zero.
const defaultBreakerThreshold = 5

// RetryPolicy configures the capped exponential backoff applied to
// failed background rebuilds. All randomness is drawn from a dedicated
// generator seeded with Seed, so retry timing is reproducible.
type RetryPolicy struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the backoff growth (default 5s).
	Max time.Duration
	// Jitter is the fraction of each delay randomized around its
	// nominal value, in [0, 1]: delay *= 1 + Jitter*u for a seeded
	// u in [-1, 1). Zero disables jitter.
	Jitter float64
	// Seed seeds the jitter generator.
	Seed int64
	// MaxAttempts bounds the retries per failure streak; 0 means
	// retry until the circuit breaker opens.
	MaxAttempts int
	// Sleep overrides time.Sleep between failure and retry — the test
	// hook that makes backoff schedules observable without real time.
	Sleep func(time.Duration)
}

// backoff returns the delay before retry number attempt (1-based):
// Base doubled per prior attempt, jittered, capped at Max.
func (r *RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := r.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := r.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if r.Jitter > 0 && rng != nil {
		f := 1 + r.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
		if d > max {
			d = max
		}
		if d < 0 {
			d = 0
		}
	}
	return d
}

func (r *RetryPolicy) sleep(d time.Duration) {
	if r.Sleep != nil {
		r.Sleep(d)
		return
	}
	time.Sleep(d)
}

// breakerThreshold resolves the configured threshold: 0 selects the
// default, negative disables the breaker.
func (p *Processor) breakerThreshold() int {
	if p.BreakerThreshold == 0 {
		return defaultBreakerThreshold
	}
	return p.BreakerThreshold
}

// recordFailureLocked appends err to the bounded error ring, advances
// the failure counters, and opens the circuit breaker when the
// consecutive-failure streak reaches the threshold. Write lock held.
func (p *Processor) recordFailureLocked(err error) {
	p.rebuildErr = err
	p.rebuildErrs = append(p.rebuildErrs, err)
	if len(p.rebuildErrs) > errRingCap {
		p.rebuildErrs = p.rebuildErrs[len(p.rebuildErrs)-errRingCap:]
	}
	p.failures++
	p.consecFail++
	if t := p.breakerThreshold(); t > 0 && p.consecFail >= t {
		p.breakerOpen = true
	}
}

// recordSuccessLocked resets the failure streak and closes the
// breaker. Write lock held.
func (p *Processor) recordSuccessLocked() {
	p.rebuildErr = nil
	p.consecFail = 0
	p.breakerOpen = false
}

// scheduleRetryLocked arms a backoff-delayed retry of a failed
// background rebuild, if the retry policy allows another attempt and
// the breaker is closed. Write lock held; gen is the failed build's
// generation, used to drop retries superseded by newer activity.
func (p *Processor) scheduleRetryLocked(gen uint64) {
	r := p.Retry
	if r == nil || p.breakerOpen || p.Factory == nil {
		return
	}
	if r.MaxAttempts > 0 && p.consecFail > r.MaxAttempts {
		return
	}
	if p.retryRNG == nil {
		p.retryRNG = rand.New(rand.NewSource(r.Seed))
	}
	delay := r.backoff(p.consecFail, p.retryRNG)
	p.retryPending = true
	p.retryWG.Add(1)
	go func() {
		defer p.retryWG.Done()
		r.sleep(delay)
		p.mu.Lock()
		defer p.mu.Unlock()
		p.retryPending = false
		if p.generation != gen || p.rebuilding || p.breakerOpen {
			return
		}
		p.retries++
		p.startRebuildLocked()
	}()
}

// Quiesce blocks until every armed retry goroutine has run to
// completion and no background rebuild is in flight — the clean-
// shutdown join for the fault-tolerance machinery. A retry that fires
// during the wait starts a rebuild, which Quiesce then also waits out;
// callers who want a faster stop should open the breaker first (set
// BreakerThreshold negative or let failures trip it) so fired retries
// become no-ops.
func (p *Processor) Quiesce() {
	for {
		p.retryWG.Wait()
		p.WaitRebuild()
		p.mu.RLock()
		idle := !p.retryPending && !p.rebuilding
		p.mu.RUnlock()
		if idle {
			return
		}
	}
}

// RebuildErrors returns the ring of recent rebuild errors, oldest
// first (at most the last 16).
func (p *Processor) RebuildErrors() []error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]error(nil), p.rebuildErrs...)
}

// Failures returns the total number of failed rebuild attempts.
func (p *Processor) Failures() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.failures
}

// Retries returns how many backoff-scheduled retry attempts started.
func (p *Processor) Retries() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.retries
}

// ConsecutiveFailures returns the current failure streak (reset by
// any successful rebuild).
func (p *Processor) ConsecutiveFailures() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.consecFail
}

// RetryPending reports whether a backoff-delayed retry is armed.
func (p *Processor) RetryPending() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.retryPending
}

// BreakerOpen reports whether the circuit breaker is open. While open
// the processor does not start background rebuilds: queries are served
// from the last good index plus the delta overlay, and an explicit
// Rebuild() runs inline.
func (p *Processor) BreakerOpen() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.breakerOpen
}

// ResetBreaker closes the circuit breaker and clears the failure
// streak, re-enabling background rebuilds (e.g. after an operator
// fixed the underlying fault).
func (p *Processor) ResetBreaker() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.breakerOpen = false
	p.consecFail = 0
}
