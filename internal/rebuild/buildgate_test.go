package rebuild

import (
	"testing"
	"time"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
)

// signalIndex reports when its Build is entered and then blocks until
// released, so the gate test can observe exactly which builds are
// running at any moment.
type signalIndex struct {
	index.BruteForce
	entered chan struct{}
	release chan struct{}
}

func (s *signalIndex) Build(pts []geo.Point) error {
	s.entered <- struct{}{}
	<-s.release
	return s.BruteForce.Build(pts)
}

// TestBuildGateBoundsConcurrentBuilds shares a capacity-1 semaphore
// gate between two processors, exactly how the sharded router staggers
// per-shard rebuilds. While the first build holds the gate the second
// processor's build must not start; freeing the gate lets it through,
// and both rebuilds complete normally.
func TestBuildGateBoundsConcurrentBuilds(t *testing.T) {
	sem := make(chan struct{}, 1)
	gate := func() (release func()) {
		sem <- struct{}{}
		return func() { <-sem }
	}
	mk := func(seed int64) (*Processor, *signalIndex) {
		pts := dataset.MustGenerate(dataset.Uniform, 200, seed)
		p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		si := &signalIndex{entered: make(chan struct{}, 1), release: make(chan struct{})}
		p.Factory = func() Rebuildable { return si }
		p.BuildGate = gate
		return p, si
	}
	p1, s1 := mk(21)
	p2, s2 := mk(22)

	p1.Rebuild()
	select {
	case <-s1.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first gated build never entered")
	}
	p2.Rebuild()
	// The second build goroutine is parked inside the gate call; its
	// index Build must not be entered while the first holds the slot.
	select {
	case <-s2.entered:
		t.Fatal("second build entered while the first held the gate")
	case <-time.After(100 * time.Millisecond):
	}
	close(s1.release)
	select {
	case <-s2.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("second build never entered after the gate freed")
	}
	close(s2.release)
	p1.WaitRebuild()
	p2.WaitRebuild()
	if p1.Rebuilds() != 1 || p2.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d, %d, want 1, 1", p1.Rebuilds(), p2.Rebuilds())
	}
	if p1.Failures() != 0 || p2.Failures() != 0 {
		t.Fatalf("failures = %d, %d, want 0, 0", p1.Failures(), p2.Failures())
	}
}
