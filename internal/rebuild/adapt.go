package rebuild

import (
	"sync"

	"elsi/internal/core"
	"elsi/internal/faults"
	"elsi/internal/monitor"
)

func init() {
	faults.Register("monitor/sample", "workload resample at rebuild start (dropping it keeps the previous profile)")
}

// WorkloadAdapter closes the monitoring loop: it turns the traffic a
// monitor.Stats observed since the last sample into a
// core.WorkloadProfile and offers it to the build System, whose method
// ranking the next build then runs under. Install one per shard via
// Processor.Workload; the processor calls Resample at the start of
// every rebuild, the natural moment — re-scoring between builds would
// change nothing, since selection only runs inside a build.
//
// Dropping or delaying a resample (fault point "monitor/sample") is
// safe by design: the system simply builds with the previously adopted
// profile, and the skipped traffic is still in the monitor's counters
// for the next successful sample (Resample reads cumulative snapshots
// and diffs against the last one it consumed).
type WorkloadAdapter struct {
	// Mon is the traffic source (typically the same monitor.Stats
	// installed as Processor.Monitor).
	Mon *monitor.Stats
	// Sys is the build system whose preference the profile drives.
	Sys *core.System

	mu      sync.Mutex
	last    monitor.Snapshot
	sampled int
	applied int
}

// Resample derives a profile from the traffic since the previous
// Resample and offers it to the system (which applies its own sample
// and hysteresis gates). It reports whether the profile was adopted.
// Nil-safe: a nil adapter (or one missing its source or sink) is a
// no-op, so the processor can call it unconditionally.
func (a *WorkloadAdapter) Resample() bool {
	if a == nil || a.Mon == nil || a.Sys == nil {
		return false
	}
	if err := faults.Hit("monitor/sample"); err != nil {
		return false // dropped sample: build with the previous profile
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := a.Mon.Snapshot()
	d := snap.Sub(a.last)
	a.last = snap
	a.sampled++
	p := core.DeriveWorkload(d.Points, d.Windows, d.KNNs, d.Inserts, d.Deletes)
	if a.Sys.ApplyWorkload(p) {
		a.applied++
		return true
	}
	return false
}

// Counts reports how many resamples ran and how many of those were
// adopted by the system.
func (a *WorkloadAdapter) Counts() (sampled, applied int) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sampled, a.applied
}

// Current returns the system's active workload profile (zero value
// when none was ever adopted).
func (a *WorkloadAdapter) Current() core.WorkloadProfile {
	if a == nil || a.Sys == nil {
		return core.WorkloadProfile{}
	}
	return a.Sys.Workload()
}
