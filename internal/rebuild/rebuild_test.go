package rebuild

import (
	"math/rand"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

func testIndex() *zm.Index {
	return zm.New(zm.Config{
		Space:   geo.UnitRect,
		Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
		Fanout:  2,
	})
}

func zmMapKey(ix *zm.Index) func(geo.Point) float64 {
	return ix.MapKey
}

func TestPredictorLearnsHeuristicRule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := HeuristicSamples(rng, 800)
	pred, err := TrainPredictor(samples, PredictorConfig{Hidden: 16, Epochs: 250, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	test := HeuristicSamples(rand.New(rand.NewSource(2)), 300)
	for _, s := range test {
		if pred.ShouldRebuild(s.Features) == s.Rebuild {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.85 {
		t.Errorf("predictor accuracy %.2f < 0.85", acc)
	}
}

func TestPredictorExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pred, err := TrainPredictor(HeuristicSamples(rng, 800), PredictorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	calm := Features{N: 100000, Dist: 0.2, Depth: 2, UpdateRatio: 0.01, Sim: 0.999}
	if pred.ShouldRebuild(calm) {
		t.Error("predictor wants to rebuild an undisturbed index")
	}
	stormy := Features{N: 100000, Dist: 0.8, Depth: 12, UpdateRatio: 5, Sim: 0.2}
	if !pred.ShouldRebuild(stormy) {
		t.Error("predictor refuses to rebuild a heavily drifted index")
	}
}

func TestTrainPredictorEmpty(t *testing.T) {
	if _, err := TrainPredictor(nil, PredictorConfig{}); err == nil {
		t.Error("expected error on empty samples")
	}
}

func TestProcessorQueriesThroughDelta(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 1)
	ix := testIndex()
	p, err := NewProcessor(ix, nil, pts, zmMapKey(ix), 100000)
	if err != nil {
		t.Fatal(err)
	}
	np := geo.Point{X: 0.123, Y: 0.456}
	p.Insert(np)
	if !p.PointQuery(np) {
		t.Error("inserted point invisible")
	}
	if p.PendingUpdates() != 1 {
		t.Errorf("pending = %d", p.PendingUpdates())
	}
	// delete an indexed point: must disappear from all queries
	victim := pts[7]
	p.Delete(victim)
	if p.PointQuery(victim) {
		t.Error("deleted point still visible")
	}
	win := geo.Rect{MinX: victim.X - 1e-9, MinY: victim.Y - 1e-9, MaxX: victim.X + 1e-9, MaxY: victim.Y + 1e-9}
	for _, got := range p.WindowQuery(win) {
		if got == victim {
			t.Error("deleted point in window result")
		}
	}
	if p.Len() != 2000 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestProcessorWindowMergesInserts(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 2)
	ix := testIndex()
	p, _ := NewProcessor(ix, nil, pts, zmMapKey(ix), 100000)
	np := geo.Point{X: 0.501, Y: 0.502}
	p.Insert(np)
	win := geo.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.51, MaxY: 0.51}
	found := false
	for _, got := range p.WindowQuery(win) {
		if got == np {
			found = true
		}
	}
	if !found {
		t.Error("window query missed pending insert")
	}
	knn := p.KNN(np, 1)
	if len(knn) != 1 || knn[0] != np {
		t.Errorf("KNN = %v, want the pending insert itself", knn)
	}
}

func TestProcessorSimDropsUnderSkew(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 3000, 3)
	ix := testIndex()
	p, _ := NewProcessor(ix, nil, pts, zmMapKey(ix), 100000)
	if got := p.CurrentSim(); got != 1 {
		t.Errorf("initial sim = %v", got)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		p.Insert(geo.Point{X: rng.Float64() * 0.02, Y: rng.Float64() * 0.02})
	}
	if got := p.CurrentSim(); got > 0.8 {
		t.Errorf("sim after skewed doubling = %v, want clearly below 1", got)
	}
	f := p.CurrentFeatures()
	if f.UpdateRatio < 0.9 || f.UpdateRatio > 1.1 {
		t.Errorf("update ratio = %v, want ~1", f.UpdateRatio)
	}
}

func TestProcessorRebuildTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pred, err := TrainPredictor(HeuristicSamples(rng, 800), PredictorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 6)
	ix := testIndex()
	p, _ := NewProcessor(ix, pred, pts, zmMapKey(ix), 500)
	for i := 0; i < 8000; i++ {
		p.Insert(geo.Point{X: rng.Float64() * 0.01, Y: rng.Float64() * 0.01})
	}
	if p.Rebuilds() == 0 {
		t.Error("no rebuild after 4x skewed growth")
	}
	// each rebuild folds the pending updates in, so the delta holds
	// only the inserts that arrived after the last rebuild
	if p.PendingUpdates() >= 8000 {
		t.Errorf("rebuild never drained the delta list: %d pending", p.PendingUpdates())
	}
	// everything still queryable post-rebuild
	bf := index.NewBruteForce()
	bf.Build(pts)
	for _, q := range pts[:100] {
		if !p.PointQuery(q) {
			t.Fatalf("original point %v lost across rebuilds", q)
		}
	}
}

func TestProcessorManualRebuild(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 7)
	ix := testIndex()
	p, _ := NewProcessor(ix, nil, pts, zmMapKey(ix), 100000)
	np := geo.Point{X: 0.9, Y: 0.9}
	p.Insert(np)
	p.Rebuild()
	if p.Rebuilds() != 1 {
		t.Errorf("Rebuilds = %d", p.Rebuilds())
	}
	if p.PendingUpdates() != 0 {
		t.Error("delta not cleared by rebuild")
	}
	if !p.Index().PointQuery(np) {
		t.Error("rebuild did not fold pending insert into the index")
	}
}

func TestProcessorBuiltinInsertPath(t *testing.T) {
	// with UseBuiltin, insertions bypass the delta list (the RSMI/LISA
	// mode of Figure 15); the zm index has no Inserter, so construct a
	// processor over LISA-like built-in behaviour via the delta check.
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 8)
	ix := testIndex()
	p, _ := NewProcessor(ix, nil, pts, zmMapKey(ix), 100000)
	p.UseBuiltin = true // zm implements no Inserter: falls back to delta
	np := geo.Point{X: 0.31, Y: 0.41}
	p.Insert(np)
	if !p.PointQuery(np) {
		t.Error("insert lost in builtin mode without Inserter support")
	}
}

func TestPredictorSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pred, err := TrainPredictor(HeuristicSamples(rng, 300), PredictorConfig{Epochs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pred.gob"
	if err := pred.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range HeuristicSamples(rand.New(rand.NewSource(10)), 50) {
		if pred.ShouldRebuild(f.Features) != loaded.ShouldRebuild(f.Features) {
			t.Fatal("loaded predictor disagrees with original")
		}
	}
	if _, err := LoadPredictor(t.TempDir() + "/nope"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestProcessorMixedWorkloadConsistency(t *testing.T) {
	// interleaved inserts and deletes must keep the processor's view
	// consistent with a brute-force shadow at every step
	pts := dataset.MustGenerate(dataset.OSM2, 1500, 20)
	ix := testIndex()
	p, err := NewProcessor(ix, nil, pts, zmMapKey(ix), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	shadow := index.NewBruteForce()
	shadow.Build(pts)
	rng := rand.New(rand.NewSource(21))
	live := append([]geo.Point(nil), pts...)
	for step := 0; step < 600; step++ {
		if rng.Intn(3) == 0 && len(live) > 10 {
			i := rng.Intn(len(live))
			victim := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			p.Delete(victim)
			shadow.Delete(victim)
		} else {
			np := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			live = append(live, np)
			p.Insert(np)
			shadow.Insert(np)
		}
		if step%100 == 0 {
			q := live[rng.Intn(len(live))]
			if !p.PointQuery(q) {
				t.Fatalf("step %d: live point %v invisible", step, q)
			}
			win := geo.Rect{MinX: q.X - 0.03, MinY: q.Y - 0.03, MaxX: q.X + 0.03, MaxY: q.Y + 0.03}
			got := p.WindowQuery(win)
			want := shadow.WindowQuery(win)
			if len(got) != len(want) {
				t.Fatalf("step %d: window %d vs shadow %d", step, len(got), len(want))
			}
		}
	}
	if p.Len() != len(live) {
		t.Errorf("Len = %d, want %d", p.Len(), len(live))
	}
	// a manual rebuild folds everything and stays consistent
	p.Rebuild()
	for trial := 0; trial < 50; trial++ {
		q := live[rng.Intn(len(live))]
		if !p.PointQuery(q) {
			t.Fatalf("post-rebuild: live point %v invisible", q)
		}
	}
}
