package rebuild

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

// gatedIndex wraps a brute-force index whose Build blocks until the
// gate is released, so tests can hold a background rebuild in flight
// deterministically while they query the processor.
type gatedIndex struct {
	index.BruteForce
	gate     chan struct{}
	buildErr error
}

func (g *gatedIndex) Build(pts []geo.Point) error {
	if g.gate != nil {
		<-g.gate
	}
	if g.buildErr != nil {
		return g.buildErr
	}
	return g.BruteForce.Build(pts)
}

func xKey(p geo.Point) float64 { return p.X }

// Regression for the drift blind spot: CurrentSim used to be computed
// from builtKeys + inserted keys only, so a workload that deletes half
// the data set still reported sim = 1 and the rebuild predictor could
// never fire. Deleting one half of the key space must now drive sim
// far below 1 and satisfy the predictor.
func TestCurrentSimReflectsDeletions(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 3000, 11)
	ix := index.NewBruteForce()
	p, err := NewProcessor(ix, nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CurrentSim(); got != 1 {
		t.Fatalf("initial sim = %v", got)
	}
	// deletion-heavy workload: remove every point in the left half of
	// the space (~50% of the data), no insertion at all
	for _, pt := range pts {
		if pt.X < 0.5 {
			p.Delete(pt)
		}
	}
	sim := p.CurrentSim()
	if sim > 0.7 {
		t.Errorf("sim after deleting the left half = %v, want well below 1", sim)
	}
	f := p.CurrentFeatures()
	if f.Sim != sim {
		t.Errorf("features sim = %v, CurrentSim = %v", f.Sim, sim)
	}
	if f.UpdateRatio < 0.4 || f.UpdateRatio > 0.6 {
		t.Errorf("update ratio = %v, want ~0.5", f.UpdateRatio)
	}
	// the drift is strong enough to satisfy the trained predictor
	pred, err := TrainPredictor(HeuristicSamples(rand.New(rand.NewSource(12)), 800), PredictorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.ShouldRebuild(f) {
		t.Errorf("predictor refuses to rebuild after deletion-heavy drift (features %+v)", f)
	}
}

// TestDeletionsTriggerRebuild drives the full trigger path: with the
// predictor wired in and a deletion-only workload, the processor must
// now fire a rebuild on its own.
func TestDeletionsTriggerRebuild(t *testing.T) {
	pred, err := TrainPredictor(HeuristicSamples(rand.New(rand.NewSource(13)), 800), PredictorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 14)
	ix := index.NewBruteForce()
	p, err := NewProcessor(ix, pred, pts, xKey, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.X < 0.5 {
			p.Delete(pt)
		}
	}
	if p.Rebuilds() == 0 {
		t.Error("no rebuild triggered by a deletion-heavy workload")
	}
}

// TestBackgroundRebuildServesQueries holds a background rebuild in
// flight and asserts that point and window queries keep returning
// correct results — including updates that arrive mid-rebuild —
// without waiting for the build to finish.
func TestBackgroundRebuildServesQueries(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 800, 15)
	serving := index.NewBruteForce()
	p, err := NewProcessor(serving, nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	p.Factory = func() Rebuildable { return &gatedIndex{gate: gate} }

	// pre-rebuild updates land in the (soon frozen) delta list
	preIns := geo.Point{X: 0.111, Y: 0.222}
	preVictim := pts[3]
	p.Insert(preIns)
	p.Delete(preVictim)

	p.Rebuild() // returns immediately; build blocked on the gate
	if !p.Rebuilding() {
		t.Fatal("background rebuild not in flight")
	}

	// updates during the rebuild land in the overlay
	midIns := geo.Point{X: 0.333, Y: 0.444}
	midVictim := pts[5]
	p.Insert(midIns)
	p.Delete(midVictim)
	// delete a point whose insertion is frozen: the overlay records it
	p.Delete(preIns)

	if !p.Rebuilding() {
		t.Fatal("rebuild finished before the gate opened")
	}
	// all queries answered while the build is still blocked
	if p.PointQuery(preVictim) || p.PointQuery(midVictim) || p.PointQuery(preIns) {
		t.Error("deleted point visible during in-flight rebuild")
	}
	if !p.PointQuery(midIns) {
		t.Error("mid-rebuild insert invisible during in-flight rebuild")
	}
	if !p.PointQuery(pts[10]) {
		t.Error("base point invisible during in-flight rebuild")
	}
	win := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	got := map[geo.Point]bool{}
	for _, pt := range p.WindowQuery(win) {
		got[pt] = true
	}
	if got[preVictim] || got[midVictim] || got[preIns] {
		t.Error("deleted point in window result during in-flight rebuild")
	}
	if !got[midIns] || !got[pts[10]] {
		t.Error("window result missing live points during in-flight rebuild")
	}
	// 800 base + 2 inserts - 3 deletes
	if want := len(pts) - 1; p.Len() != want {
		t.Errorf("Len = %d, want %d", p.Len(), want)
	}

	close(gate)
	p.WaitRebuild()
	if p.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d", p.Rebuilds())
	}
	if err := p.RebuildErr(); err != nil {
		t.Fatalf("RebuildErr = %v", err)
	}
	// the swapped-in index holds the frozen state; the overlay stays
	// pending and keeps masking it
	if p.PointQuery(preVictim) || p.PointQuery(midVictim) || p.PointQuery(preIns) {
		t.Error("deleted point visible after swap")
	}
	if !p.PointQuery(midIns) || !p.PointQuery(pts[10]) {
		t.Error("live point invisible after swap")
	}
	// a second rebuild folds the overlay into the index
	p.Rebuild()
	p.WaitRebuild()
	if p.PendingUpdates() != 0 {
		t.Errorf("pending after second rebuild = %d", p.PendingUpdates())
	}
	if !p.Index().PointQuery(midIns) {
		t.Error("mid-rebuild insert not folded into the rebuilt index")
	}
	if p.Index().PointQuery(preIns) {
		t.Error("mid-rebuild deletion not folded into the rebuilt index")
	}
}

// TestBackgroundRebuildFailureRestores asserts that a failed build
// keeps the old index serving and folds the frozen delta view back so
// no pending update is lost.
func TestBackgroundRebuildFailureRestores(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 400, 16)
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	boom := errors.New("boom")
	p.Factory = func() Rebuildable { return &gatedIndex{gate: gate, buildErr: boom} }

	preIns := geo.Point{X: 0.123, Y: 0.456}
	victim := pts[1]
	p.Insert(preIns)
	p.Delete(victim)
	p.Rebuild()
	midIns := geo.Point{X: 0.654, Y: 0.321}
	p.Insert(midIns)
	p.Delete(preIns) // deletes a frozen insertion: replayed at restore
	close(gate)
	p.WaitRebuild()

	if !errors.Is(p.RebuildErr(), boom) {
		t.Fatalf("RebuildErr = %v, want boom", p.RebuildErr())
	}
	if p.Rebuilds() != 0 {
		t.Errorf("failed rebuild counted: %d", p.Rebuilds())
	}
	if p.PointQuery(victim) || p.PointQuery(preIns) {
		t.Error("deleted point visible after failed rebuild restore")
	}
	if !p.PointQuery(midIns) || !p.PointQuery(pts[10]) {
		t.Error("live point invisible after failed rebuild restore")
	}
	// a later successful rebuild still folds everything correctly
	p.Factory = nil
	p.Rebuild()
	if p.PendingUpdates() != 0 {
		t.Errorf("pending after recovery rebuild = %d", p.PendingUpdates())
	}
	if p.Index().PointQuery(preIns) || p.Index().PointQuery(victim) {
		t.Error("restore leaked a deleted point into the recovery rebuild")
	}
	if !p.Index().PointQuery(midIns) {
		t.Error("restore lost a pending insert")
	}
}

// TestConcurrentWorkloadRace exercises concurrent Insert/Delete/
// PointQuery/WindowQuery/KNN racing with background rebuilds over a
// real learned index; run under -race this is the locking-discipline
// check for the whole update path.
func TestConcurrentWorkloadRace(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 17)
	newZM := func() Rebuildable {
		return zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
			Fanout:  2,
		})
	}
	serving := newZM().(*zm.Index)
	p, err := NewProcessor(serving, nil, pts, serving.MapKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p.Factory = newZM

	const (
		writers      = 2
		readers      = 4
		opsPerWriter = 400
		opsPerReader = 400
	)
	var workWG, driverWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		workWG.Add(1)
		go func(seed int64) {
			defer workWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWriter; i++ {
				if rng.Intn(4) == 0 {
					p.Delete(pts[rng.Intn(len(pts))])
				} else {
					p.Insert(geo.Point{X: rng.Float64(), Y: rng.Float64()})
				}
			}
		}(int64(100 + w))
	}
	for r := 0; r < readers; r++ {
		workWG.Add(1)
		go func(seed int64) {
			defer workWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerReader; i++ {
				q := pts[rng.Intn(len(pts))]
				switch i % 4 {
				case 0:
					p.PointQuery(q)
				case 1:
					win := geo.Rect{MinX: q.X - 0.02, MinY: q.Y - 0.02, MaxX: q.X + 0.02, MaxY: q.Y + 0.02}
					p.WindowQuery(win)
				case 2:
					p.KNN(q, 5)
				default:
					p.CurrentSim()
					p.PendingUpdates()
					p.Len()
				}
			}
		}(int64(200 + r))
	}
	// rebuild driver: keep starting background rebuilds while the
	// workload runs
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Rebuild()
			p.WaitRebuild()
		}
	}()

	workWG.Wait()
	close(stop)
	driverWG.Wait()
	p.WaitRebuild()

	if err := p.RebuildErr(); err != nil {
		t.Fatalf("background rebuild failed: %v", err)
	}
	if p.Rebuilds() == 0 {
		t.Error("no background rebuild completed during the workload")
	}
	// final consistency: a draining rebuild folds everything pending
	p.Rebuild()
	p.WaitRebuild()
	if p.PendingUpdates() != 0 {
		t.Errorf("pending after drain = %d", p.PendingUpdates())
	}
}
