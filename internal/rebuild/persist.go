package rebuild

import (
	"fmt"

	"elsi/internal/delta"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/snapshot"
)

// State is a consistent cut of a Processor's update-path state: the
// source-of-truth point set, the build summary the rebuild predictor
// consults, and the pending delta records. Together with the wrapped
// index's own serialized state it is everything recovery needs to
// reconstruct the processor without retraining a single model.
type State struct {
	NextID      int64
	BuiltN      int
	BuiltDist   float64
	UpdatesSeen int
	Rebuilds    int
	BuiltKeys   []float64
	Pts         []geo.Point
	Delta       []delta.Record
}

// CaptureState snapshots the processor under the read lock and encodes
// the wrapped index through encodeIdx while the lock is held, so the
// index bytes and the delta records describe the same instant — even
// for UseBuiltin families, whose built-in inserts take the write lock.
//
// When a background rebuild is in flight the capture describes the
// serving state: the old index plus the frozen view merged with the
// live overlay (overlay deletions cancel the frozen insertions they
// target, mirroring the failed-rebuild restore path). A recovered
// processor starts with no rebuild in flight and all pending updates
// in its live delta list, which serves identical query answers.
func (p *Processor) CaptureState(encodeIdx func(idx Rebuildable) ([]byte, error)) (State, []byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	idxBytes, err := encodeIdx(p.idx)
	if err != nil {
		return State{}, nil, err
	}
	st := State{
		NextID:      p.nextID,
		BuiltN:      p.builtN,
		BuiltDist:   p.builtDist,
		UpdatesSeen: p.updatesSeen,
		Rebuilds:    p.rebuilds,
		BuiltKeys:   append([]float64(nil), p.builtKeys...),
		Pts:         append([]geo.Point(nil), p.pts...),
	}
	if p.frozen == nil {
		st.Delta = p.deltaList.Records()
		return st, idxBytes, nil
	}
	var merged delta.List
	for _, r := range p.frozen.Records() {
		merged.Adopt(r)
	}
	for _, r := range p.deltaList.Records() {
		if r.Op == delta.Deleted && merged.RemoveInsertedPoint(r.Point) {
			continue
		}
		merged.Adopt(r)
	}
	st.Delta = merged.Records()
	return st, idxBytes, nil
}

// RestoreProcessor reconstructs a Processor around an index that was
// already restored from its serialized state. No Build runs — that is
// the point of snapshot recovery — so idx must already hold the data
// the State describes.
func RestoreProcessor(idx Rebuildable, pred *Predictor, mapKey func(geo.Point) float64, fu int, st State) *Processor {
	p := &Processor{idx: idx, pred: pred, Fu: fu, MapKey: mapKey}
	if p.Fu <= 0 {
		p.Fu = 1024
	}
	p.nextID = st.NextID
	p.builtN = st.BuiltN
	p.builtDist = st.BuiltDist
	p.updatesSeen = st.UpdatesSeen
	p.rebuilds = st.Rebuilds
	p.builtKeys = st.BuiltKeys
	p.pts = st.Pts
	for _, r := range st.Delta {
		p.deltaList.Adopt(r)
	}
	return p
}

// ReplayInsert applies a WAL insert record during recovery: the same
// routing as Insert — including the UseBuiltin path — minus the
// rebuild trigger, so replay never trains a model. It reports whether
// the insert applied (false mirrors Insert's duplicate no-op).
func (p *Processor) ReplayInsert(pt geo.Point) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pointLiveLocked(pt) {
		return false
	}
	p.pts = append(p.pts, pt)
	if ins, ok := p.idx.(index.Inserter); ok && p.UseBuiltin {
		ins.Insert(pt)
	} else {
		p.nextID++
		p.deltaList.Insert(p.nextID, pt)
	}
	p.updatesSeen++
	return true
}

// ReplayDelete applies a WAL delete record during recovery, mirroring
// Delete minus the rebuild trigger.
func (p *Processor) ReplayDelete(pt geo.Point) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	removed := false
	for i := len(p.pts) - 1; i >= 0; i-- {
		if p.pts[i] == pt {
			p.pts[i] = p.pts[len(p.pts)-1]
			p.pts = p.pts[:len(p.pts)-1]
			removed = true
		}
	}
	if !removed {
		return false
	}
	if !p.deltaList.RemoveInsertedPoint(pt) {
		if del, ok := p.idx.(index.Deleter); ok && p.UseBuiltin && del.Delete(pt) {
			// removed through the index's own deletion path
		} else {
			p.nextID++
			p.deltaList.Delete(p.nextID, pt)
		}
	}
	p.updatesSeen++
	return true
}

// --- State codec ------------------------------------------------------

// stateVersion versions the processor-state encoding inside snapshots.
const stateVersion = 1

// AppendState serializes st.
func AppendState(b []byte, st State) []byte {
	b = snapshot.AppendU8(b, stateVersion)
	b = snapshot.AppendVarint(b, st.NextID)
	b = snapshot.AppendInt(b, st.BuiltN)
	b = snapshot.AppendF64(b, st.BuiltDist)
	b = snapshot.AppendInt(b, st.UpdatesSeen)
	b = snapshot.AppendInt(b, st.Rebuilds)
	b = snapshot.AppendF64s(b, st.BuiltKeys)
	b = snapshot.AppendPoints(b, st.Pts)
	b = snapshot.AppendUvarint(b, uint64(len(st.Delta)))
	for _, r := range st.Delta {
		b = snapshot.AppendVarint(b, r.ID)
		b = snapshot.AppendU8(b, uint8(r.Op))
		b = snapshot.AppendPoint(b, r.Point)
	}
	return b
}

// DecodeState reads a State off d, validating counters and record ops.
func DecodeState(d *snapshot.Dec) (State, error) {
	var st State
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return st, fmt.Errorf("rebuild: unsupported processor state version %d", v)
	}
	st.NextID = d.Varint()
	st.BuiltN = d.Int()
	st.BuiltDist = d.F64()
	st.UpdatesSeen = d.Int()
	st.Rebuilds = d.Int()
	st.BuiltKeys = d.F64s()
	st.Pts = d.Points()
	n := d.Count(18)
	if err := d.Err(); err != nil {
		return st, fmt.Errorf("rebuild: decode processor state: %w", err)
	}
	if st.BuiltN < 0 || st.UpdatesSeen < 0 || st.Rebuilds < 0 || st.NextID < 0 {
		return st, fmt.Errorf("rebuild: negative processor counters")
	}
	st.Delta = make([]delta.Record, n)
	for i := range st.Delta {
		id := d.Varint()
		op := d.U8()
		pt := d.Point()
		if err := d.Err(); err != nil {
			return st, fmt.Errorf("rebuild: decode delta record %d: %w", i, err)
		}
		if op > uint8(delta.Deleted) {
			return st, fmt.Errorf("rebuild: delta record %d has unknown op %d", i, op)
		}
		st.Delta[i] = delta.Record{ID: id, Op: delta.Op(op), Point: pt}
	}
	if err := d.Err(); err != nil {
		return st, fmt.Errorf("rebuild: decode processor state: %w", err)
	}
	return st, nil
}
