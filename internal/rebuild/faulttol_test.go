package rebuild

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elsi/internal/dataset"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/parallel"
)

// waitUntil polls cond to avoid sleeping for fixed durations in tests
// that wait on background goroutines.
func waitUntil(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout waiting for " + msg)
}

// failingFactory returns a Factory whose built indexes always fail,
// counting invocations.
func failingFactory(calls *atomic.Int64, err error) func() Rebuildable {
	return func() Rebuildable {
		calls.Add(1)
		return &gatedIndex{buildErr: err}
	}
}

// TestRetryBackoffDeterministic drives a permanently failing
// background rebuild through the retry loop until the circuit breaker
// opens, capturing every backoff delay through the Sleep hook. The
// delays must equal the schedule recomputed from the same seed: capped
// exponential growth with seeded jitter, fully reproducible.
func TestRetryBackoffDeterministic(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 300, 21)
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var calls atomic.Int64
	var mu sync.Mutex
	var delays []time.Duration
	p.Factory = failingFactory(&calls, boom)
	p.Retry = &RetryPolicy{
		Base:   10 * time.Millisecond,
		Max:    60 * time.Millisecond,
		Jitter: 0.5,
		Seed:   42,
		Sleep: func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
		},
	}

	p.Rebuild()
	waitUntil(t, p.BreakerOpen, "breaker to open")
	waitUntil(t, func() bool { return !p.Rebuilding() && !p.RetryPending() }, "retry chain to drain")

	// Default threshold 5: the initial attempt plus 4 retries fail,
	// the 5th failure opens the breaker and schedules nothing more.
	if got := p.Failures(); got != 5 {
		t.Errorf("Failures = %d, want 5", got)
	}
	if got := p.Retries(); got != 4 {
		t.Errorf("Retries = %d, want 4", got)
	}
	if got := p.ConsecutiveFailures(); got != 5 {
		t.Errorf("ConsecutiveFailures = %d, want 5", got)
	}
	if got := calls.Load(); got != 5 {
		t.Errorf("factory calls = %d, want 5", got)
	}
	if got := p.RebuildErrors(); len(got) != 5 {
		t.Errorf("error ring holds %d, want 5", len(got))
	} else {
		for _, e := range got {
			if !errors.Is(e, boom) {
				t.Errorf("ring error = %v, want boom", e)
			}
		}
	}

	// Recompute the expected schedule from the same policy and seed.
	ref := &RetryPolicy{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	var want []time.Duration
	for attempt := 1; attempt <= 4; attempt++ {
		want = append(want, ref.backoff(attempt, rng))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delays) != len(want) {
		t.Fatalf("recorded %d delays, want %d", len(delays), len(want))
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Errorf("delay[%d] = %v, want %v", i, delays[i], want[i])
		}
		if delays[i] > ref.Max {
			t.Errorf("delay[%d] = %v exceeds cap %v", i, delays[i], ref.Max)
		}
	}
}

// TestPanickingBackgroundRebuild injects a panic into the background
// rebuild: the process must not crash, the processor must not wedge in
// the rebuilding state, queries must keep being served from the old
// index, and a later rebuild (fault exhausted) must succeed and close
// the failure streak.
func TestPanickingBackgroundRebuild(t *testing.T) {
	defer faults.Reset()
	pts := dataset.MustGenerate(dataset.Uniform, 500, 23)
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p.Factory = func() Rebuildable { return index.NewBruteForce() }

	faults.Enable("rebuild/background", faults.Fault{Mode: faults.ModePanic, Times: 1})
	ins := geo.Point{X: 0.111, Y: 0.222}
	p.Insert(ins)
	p.Rebuild()
	p.WaitRebuild()

	var pe *parallel.PanicError
	if !errors.As(p.RebuildErr(), &pe) {
		t.Fatalf("RebuildErr = %v, want *parallel.PanicError", p.RebuildErr())
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	if p.Rebuilding() {
		t.Fatal("processor wedged in rebuilding state after panic")
	}
	// serving snapshot plus delta overlay stay live
	if !p.PointQuery(pts[0]) || !p.PointQuery(ins) {
		t.Fatal("query lost after panicking rebuild")
	}
	if p.Failures() != 1 || p.ConsecutiveFailures() != 1 {
		t.Errorf("failure counters = %d/%d, want 1/1", p.Failures(), p.ConsecutiveFailures())
	}

	// fault exhausted (Times: 1): the next rebuild succeeds and resets
	// the streak
	p.Rebuild()
	p.WaitRebuild()
	if p.RebuildErr() != nil {
		t.Fatalf("recovery rebuild failed: %v", p.RebuildErr())
	}
	if p.ConsecutiveFailures() != 0 {
		t.Errorf("success did not reset the streak: %d", p.ConsecutiveFailures())
	}
	if !p.Index().PointQuery(ins) {
		t.Error("recovery rebuild lost the pending insert")
	}
}

// TestBreakerPinsToInline proves the circuit-breaker contract: after
// the threshold of consecutive background failures the breaker opens,
// automatic rebuilds are suppressed, and an explicit Rebuild() runs
// inline on the serving index instead of spawning another doomed
// background build. The inline success closes the breaker.
func TestBreakerPinsToInline(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 300, 29)
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var calls atomic.Int64
	p.Factory = failingFactory(&calls, boom)
	p.BreakerThreshold = 3
	p.Retry = &RetryPolicy{Base: time.Millisecond, Seed: 1, Sleep: func(time.Duration) {}}

	p.Rebuild()
	waitUntil(t, p.BreakerOpen, "breaker to open")
	waitUntil(t, func() bool { return !p.Rebuilding() && !p.RetryPending() }, "retry chain to drain")
	if got := calls.Load(); got != 3 {
		t.Errorf("factory calls before open = %d, want 3", got)
	}

	// While open, updates keep landing in the overlay and queries work.
	ins := geo.Point{X: 0.777, Y: 0.888}
	p.Insert(ins)
	if !p.PointQuery(ins) || !p.PointQuery(pts[0]) {
		t.Fatal("query failed with breaker open")
	}

	// Explicit Rebuild runs inline on the healthy serving index: no new
	// factory call, immediate success, breaker closed.
	before := calls.Load()
	p.Rebuild()
	if calls.Load() != before {
		t.Errorf("open-breaker Rebuild used the factory (%d calls)", calls.Load()-before)
	}
	if p.BreakerOpen() {
		t.Fatal("successful inline rebuild left the breaker open")
	}
	if p.ConsecutiveFailures() != 0 {
		t.Errorf("streak = %d after success", p.ConsecutiveFailures())
	}
	if !p.Index().PointQuery(ins) {
		t.Error("inline rebuild lost the overlay insert")
	}
}

// TestResetBreaker re-enables background rebuilds after an operator
// reset.
func TestResetBreaker(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 300, 31)
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	p.Factory = failingFactory(&calls, errors.New("down"))
	p.BreakerThreshold = 2
	p.Retry = &RetryPolicy{Base: time.Millisecond, Seed: 1, Sleep: func(time.Duration) {}}

	p.Rebuild()
	waitUntil(t, p.BreakerOpen, "breaker to open")
	waitUntil(t, func() bool { return !p.Rebuilding() && !p.RetryPending() }, "retry chain to drain")

	p.ResetBreaker()
	if p.BreakerOpen() || p.ConsecutiveFailures() != 0 {
		t.Fatal("ResetBreaker did not clear the breaker state")
	}
	// background rebuilds run again (the fault is still there, so the
	// attempt fails — but it does run)
	before := calls.Load()
	p.Rebuild()
	p.WaitRebuild()
	waitUntil(t, func() bool { return !p.RetryPending() && !p.Rebuilding() }, "post-reset chain to drain")
	if calls.Load() == before {
		t.Error("ResetBreaker did not re-enable background rebuilds")
	}
}

// TestRetryMaxAttempts bounds the retry chain independently of the
// breaker.
func TestRetryMaxAttempts(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 300, 37)
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	p.Factory = failingFactory(&calls, errors.New("down"))
	p.BreakerThreshold = -1 // disabled: only MaxAttempts stops the chain
	p.Retry = &RetryPolicy{Base: time.Millisecond, Seed: 1, MaxAttempts: 2, Sleep: func(time.Duration) {}}

	p.Rebuild()
	waitUntil(t, func() bool { return p.Failures() == 3 }, "initial attempt plus 2 retries")
	waitUntil(t, func() bool { return !p.Rebuilding() && !p.RetryPending() }, "chain to stop")
	if p.BreakerOpen() {
		t.Error("disabled breaker opened")
	}
	if got := p.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("factory calls = %d, want 3", got)
	}
}

// TestErrorRingBounded overflows the recent-error ring with inline
// failures and checks it keeps only the newest errRingCap entries.
func TestErrorRingBounded(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 200, 41)
	ix := &gatedIndex{}
	p, err := NewProcessor(ix, nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p.BreakerThreshold = -1
	ix.buildErr = errors.New("down")
	for i := 0; i < errRingCap+9; i++ {
		p.Rebuild() // inline (no Factory): fails synchronously
	}
	if got := p.Failures(); got != errRingCap+9 {
		t.Errorf("Failures = %d, want %d", got, errRingCap+9)
	}
	if got := len(p.RebuildErrors()); got != errRingCap {
		t.Errorf("ring length = %d, want %d", got, errRingCap)
	}
}

// TestInlineRebuildFailureKeepsDelta: a failed inline rebuild must not
// clear the pending updates — nothing absorbed them.
func TestInlineRebuildFailureKeepsDelta(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 200, 43)
	ix := &gatedIndex{}
	p, err := NewProcessor(ix, nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ins := geo.Point{X: 0.123, Y: 0.321}
	p.Insert(ins)
	ix.buildErr = errors.New("down")
	p.Rebuild()
	if p.RebuildErr() == nil {
		t.Fatal("failed inline rebuild reported no error")
	}
	if p.PendingUpdates() != 1 {
		t.Fatalf("failed inline rebuild dropped the delta: %d pending", p.PendingUpdates())
	}
	if !p.PointQuery(ins) {
		t.Fatal("pending insert lost after failed inline rebuild")
	}
	ix.buildErr = nil
	p.Rebuild()
	if p.PendingUpdates() != 0 || p.RebuildErr() != nil {
		t.Fatal("recovery rebuild did not drain the delta")
	}
	if !p.Index().PointQuery(ins) {
		t.Error("recovery rebuild lost the pending insert")
	}
}

// TestChaosWorkloadRace runs a concurrent insert/query workload while
// the first background rebuilds fail via injection and the retry loop
// recovers them; run under -race this checks the whole failure path's
// locking discipline, and at the end every point must be queryable.
func TestChaosWorkloadRace(t *testing.T) {
	defer faults.Reset()
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 47)
	p, err := NewProcessor(index.NewBruteForce(), nil, pts, xKey, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p.Factory = func() Rebuildable { return index.NewBruteForce() }
	p.Retry = &RetryPolicy{Base: time.Millisecond, Jitter: 0.5, Seed: 7, Sleep: func(time.Duration) {}}
	faults.Enable("rebuild/background", faults.Fault{Mode: faults.ModeError, Times: 2})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := pts[rng.Intn(len(pts))]
				p.PointQuery(q)
				p.KNN(q, 4)
			}
		}(int64(w + 1))
	}
	inserted := make([]geo.Point, 0, 50)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		np := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		inserted = append(inserted, np)
		p.Insert(np)
		if i%10 == 0 {
			p.Rebuild()
		}
	}
	waitUntil(t, func() bool { return !p.Rebuilding() && !p.RetryPending() }, "chaos to settle")
	close(stop)
	wg.Wait()

	if p.Failures() != 2 {
		t.Errorf("Failures = %d, want 2 (Times: 2)", p.Failures())
	}
	if p.BreakerOpen() {
		t.Error("breaker opened below threshold")
	}
	for _, q := range inserted {
		if !p.PointQuery(q) {
			t.Fatalf("inserted point %v lost in chaos", q)
		}
	}
	for _, q := range pts[:100] {
		if !p.PointQuery(q) {
			t.Fatalf("original point %v lost in chaos", q)
		}
	}
}
