package rebuild

import (
	"math"
	"testing"

	"elsi/internal/core"
	"elsi/internal/dataset"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/monitor"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
	"elsi/internal/zm"
)

// adaptiveStack builds the full loop for one shard: a zm index whose
// models are built by an ELSI System (learned selection over the
// heuristic scorer), a monitor, and the adapter joining them.
func adaptiveStack(t *testing.T, n int) (*Processor, *core.System, *monitor.Stats) {
	t.Helper()
	sc, err := scorer.Train(scorer.HeuristicSamples(), scorer.Config{Seed: 1, Epochs: 150})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Trainer:  rmi.PiecewiseTrainer(1.0 / 256),
		Selector: core.SelectorLearned,
		Scorer:   sc,
		Lambda:   0, LambdaSet: true, // start pure-query-optimised
		WorkloadMinSamples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *zm.Index {
		return zm.New(zm.Config{Space: geo.UnitRect, Builder: sys, Fanout: 2})
	}
	ix := mk()
	pts := dataset.MustGenerate("uniform", n, 7)
	p, err := NewProcessor(ix, nil, pts, zmMapKey(ix), 1024)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(geo.UnitRect)
	p.Monitor = mon
	p.Workload = &WorkloadAdapter{Mon: mon, Sys: sys}
	p.Factory = func() Rebuildable { return mk() }
	return p, sys, mon
}

func TestAdapterResampleOnRebuild(t *testing.T) {
	p, sys, _ := adaptiveStack(t, 800)

	// A write-heavy burst: inserts dominate the observed mix.
	rng := dataset.MustGenerate("uniform", 600, 99)
	for _, pt := range rng {
		p.Insert(pt)
	}
	if got := sys.EffectiveLambda(); got != 0 {
		t.Fatalf("λ moved to %v before any rebuild sampled the traffic", got)
	}

	p.Rebuild()
	p.WaitRebuild()

	sampled, applied := p.Workload.Counts()
	if sampled != 1 || applied != 1 {
		t.Fatalf("adapter counts = %d sampled, %d applied; want 1, 1", sampled, applied)
	}
	lam := sys.EffectiveLambda()
	if lam < 0.8 {
		t.Fatalf("EffectiveLambda = %v after a write storm, want ≥ 0.8", lam)
	}
	w := sys.Workload()
	if !w.Derived || w.WriteFrac < 0.9 {
		t.Fatalf("adopted profile = %+v, want a write-dominated one", w)
	}

	// A second rebuild over quiet traffic must not flap the profile:
	// the delta since the last sample is below the sample gate.
	p.Rebuild()
	p.WaitRebuild()
	if _, applied = p.Workload.Counts(); applied != 1 {
		t.Fatalf("quiet rebuild re-applied a profile (applied = %d)", applied)
	}
}

// TestAdapterSwitchesSelection drives the loop end to end: the same
// system builds once under query-heavy traffic and once after a write
// storm, and the method the ELSI ladder selects must track the λ the
// traffic implied. Skipped if the heuristic scorer happens to rank one
// method best at both extremes.
func TestAdapterSwitchesSelection(t *testing.T) {
	p, sys, mon := adaptiveStack(t, 800)

	// Phase 1: pure reads, then rebuild → λ stays low.
	q := dataset.MustGenerate("uniform", 400, 11)
	for _, pt := range q {
		p.PointQuery(pt)
	}
	p.Rebuild()
	p.WaitRebuild()
	readLam := sys.EffectiveLambda()
	if math.Abs(readLam-0.2) > 1e-9 {
		t.Fatalf("λ after pure reads = %v, want 0.2", readLam)
	}
	sys.ResetSelections()

	// Phase 2: write storm, then rebuild → λ jumps, and the rebuild's
	// build ran its selection under the new preference.
	w := dataset.MustGenerate("uniform", 2000, 12)
	for _, pt := range w {
		p.Insert(pt)
	}
	p.Rebuild()
	p.WaitRebuild()
	writeLam := sys.EffectiveLambda()
	if writeLam <= readLam+0.3 {
		t.Fatalf("λ did not move with the mix: read %v, write %v", readLam, writeLam)
	}
	if len(sys.Selections()) == 0 {
		t.Fatal("write-phase rebuild recorded no selections")
	}
	if snap := mon.Snapshot(); snap.Inserts < 1000 {
		t.Fatalf("monitor lost inserts: %+v", snap)
	}
}

// TestAdapterSampleFault drops the resample at rebuild start and
// checks the build still runs with the previous profile — a delayed or
// lost monitoring signal must never affect correctness or progress.
func TestAdapterSampleFault(t *testing.T) {
	p, sys, _ := adaptiveStack(t, 800)

	for _, pt := range dataset.MustGenerate("uniform", 600, 42) {
		p.Insert(pt)
	}

	faults.Reset()
	defer faults.Reset()
	faults.Enable("monitor/sample", faults.Fault{Mode: faults.ModeError})
	p.Rebuild()
	p.WaitRebuild()
	if err := p.RebuildErr(); err != nil {
		t.Fatalf("rebuild failed under a monitoring fault: %v", err)
	}
	if sampled, _ := p.Workload.Counts(); sampled != 0 {
		t.Fatalf("sampled = %d with the fault armed, want 0", sampled)
	}
	if got := sys.EffectiveLambda(); got != 0 {
		t.Fatalf("λ = %v, want the configured 0 (sample was dropped)", got)
	}

	// Disarm: the traffic is still in the cumulative counters, so the
	// next rebuild picks it up — nothing was lost, only deferred.
	faults.Reset()
	p.Rebuild()
	p.WaitRebuild()
	if got := sys.EffectiveLambda(); got < 0.8 {
		t.Fatalf("λ = %v after disarming, want the deferred write-heavy profile", got)
	}
}

func TestUpdateGen(t *testing.T) {
	p, _, _ := adaptiveStack(t, 300)
	g0 := p.UpdateGen()

	pt := geo.Point{X: 0.123, Y: 0.456}
	p.Insert(pt)
	g1 := p.UpdateGen()
	if g1 != g0+1 {
		t.Fatalf("gen after insert = %d, want %d", g1, g0+1)
	}
	// Re-inserting a stored point changes nothing → no bump.
	p.Insert(pt)
	if got := p.UpdateGen(); got != g1 {
		t.Fatalf("gen after no-op insert = %d, want %d", got, g1)
	}
	// Deleting a missing point changes nothing → no bump.
	p.Delete(geo.Point{X: 0.9999, Y: 0.9999})
	if got := p.UpdateGen(); got != g1 {
		t.Fatalf("gen after no-op delete = %d, want %d", got, g1)
	}
	p.Delete(pt)
	g2 := p.UpdateGen()
	if g2 != g1+1 {
		t.Fatalf("gen after delete = %d, want %d", g2, g1+1)
	}
	// A swap bumps once.
	p.Rebuild()
	p.WaitRebuild()
	if got := p.UpdateGen(); got != g2+1 {
		t.Fatalf("gen after rebuild = %d, want %d", got, g2+1)
	}
}
