// Package floats holds the repository's sanctioned floating-point
// equality primitive. The floateq analyzer (internal/analysis/floateq)
// rejects bare == / != between floats because a bare comparison does
// not say whether the author wanted a tolerance or exact equality;
// routing intentional exact comparisons through Eq makes the choice
// explicit at the call site and keeps the lint gate clean without
// scattering ignore directives.
package floats

// Eq reports whether a and b are exactly equal as float64 values, with
// ordinary IEEE-754 comparison semantics: 0 == -0, and NaN is equal to
// nothing (including itself — use math.IsNaN to test for NaN). Use it
// for degenerate-range guards (hi == lo before dividing by hi-lo),
// duplicate-key detection over sorted data, and identity matching of
// coordinates that were never arithmetically transformed. For values
// that went through model evaluation or other arithmetic, compare
// against an epsilon instead.
func Eq(a, b float64) bool {
	//lint:ignore floateq Eq is the one sanctioned exact float comparison
	return a == b
}
