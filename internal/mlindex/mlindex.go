// Package mlindex implements the ML-Index (Davitkova et al. 2020): the
// iDistance technique maps each point to refID*C + dist(point, ref),
// where ref is the nearest of a set of reference points derived from
// the data, and a learned model indexes the mapped keys. Point,
// window, and kNN queries are exact ("By design, ML offers accurate
// results", Section VII-G2): window queries scan one key annulus per
// reference point, kNN queries grow a search radius iDistance-style.
package mlindex

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/methods"
	"elsi/internal/rmi"
	"elsi/internal/store"
	"elsi/internal/zm"
)

// stride (the iDistance constant C) separates the key intervals of the
// reference points; it must exceed any possible point-to-reference
// distance. The unit square's diameter is sqrt(2).
const stride = 4.0

// Config controls index construction.
type Config struct {
	Space geo.Rect
	// Builder builds each index model (OG or ELSI).
	Builder base.ModelBuilder
	// Refs is the number of iDistance reference points (default 16).
	Refs int
	// Fanout is the number of second-stage models (default 1).
	Fanout int
	// RootTrainer dispatches across leaf models when Fanout > 1.
	RootTrainer rmi.Trainer
	// Seed drives the reference-point clustering.
	Seed int64
	// SampleForRefs caps the sample used to derive reference points.
	SampleForRefs int
	// Workers bounds the parallel build stages — iDistance key mapping,
	// sorting, and concurrent leaf-model builds (0 = GOMAXPROCS, 1 =
	// serial). Builds are bit-identical across worker counts.
	Workers int
	// BuildTimeout, when positive, bounds each Build call: BuildCtx
	// runs under a context that expires after it, and the build
	// returns the context error. Zero means unbounded.
	BuildTimeout time.Duration
}

// Index is the ML-Index.
type Index struct {
	cfg         Config
	refs        []geo.Point
	st          *store.Sorted
	staged      *rmi.Staged
	single      *rmi.Bounded
	stats       []base.BuildStats
	invocations atomic.Int64
}

// New returns an unbuilt ML-Index.
func New(cfg Config) *Index {
	if cfg.Refs <= 0 {
		cfg.Refs = 16
	}
	if cfg.Fanout < 1 {
		cfg.Fanout = 1
	}
	if cfg.RootTrainer == nil {
		cfg.RootTrainer = rmi.PiecewiseTrainer(1.0 / 1024)
	}
	if cfg.SampleForRefs <= 0 {
		cfg.SampleForRefs = 5000
	}
	return &Index{cfg: cfg}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "ML" }

// Len implements index.Index.
func (ix *Index) Len() int {
	if ix.st == nil {
		return 0
	}
	return ix.st.Len()
}

// refFor returns the nearest reference point's id and distance.
//
//elsi:noalloc
func (ix *Index) refFor(p geo.Point) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for i, r := range ix.refs {
		if d := p.Dist2(r); d < bestD {
			best, bestD = i, d
		}
	}
	return best, math.Sqrt(bestD)
}

// MapKey is the iDistance mapping.
//
//elsi:noalloc
func (ix *Index) MapKey(p geo.Point) float64 {
	id, d := ix.refFor(p)
	return float64(id)*stride + d
}

// Build implements index.Index. It runs BuildCtx under a background
// context, bounded by Config.BuildTimeout when set.
func (ix *Index) Build(pts []geo.Point) error {
	return ix.BuildCtx(context.Background(), pts)
}

// BuildCtx is Build with cooperative cancellation: the build aborts
// between stages when ctx is done (or the per-build timeout expires)
// and returns the context's error. A failed build leaves the index
// unusable; callers must discard it or rebuild.
func (ix *Index) BuildCtx(ctx context.Context, pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	if ix.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ix.cfg.BuildTimeout)
		defer cancel()
	}
	ix.stats = ix.stats[:0]
	// reference points: k-means centers over a sample of the data
	sample := pts
	if len(sample) > ix.cfg.SampleForRefs {
		step := len(sample) / ix.cfg.SampleForRefs
		reduced := make([]geo.Point, 0, ix.cfg.SampleForRefs+1)
		for i := 0; i < len(sample); i += step {
			reduced = append(reduced, sample[i])
		}
		sample = reduced
	}
	if len(sample) == 0 {
		ix.refs = []geo.Point{ix.cfg.Space.Center()}
	} else {
		refs, err := methods.KMeansCtx(ctx, sample, ix.cfg.Refs, 10, ix.cfg.Seed)
		if err != nil {
			return err
		}
		ix.refs = refs
	}
	d := base.PrepareWorkers(pts, ix.cfg.Space, ix.MapKey, ix.cfg.Workers)
	// The prepared columns are already sorted and owned by this build;
	// the store adopts them without the former per-build entry copy.
	ix.st = store.NewSortedColumns(d.Keys, d.Pts)
	if len(pts) == 0 {
		ix.single = &rmi.Bounded{Model: rmi.ConstModel(0), N: 0}
		ix.staged = nil
		return nil
	}
	if ix.cfg.Fanout == 1 {
		m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, d)
		if err != nil {
			return err
		}
		ix.single = m
		ix.staged = nil
		ix.stats = append(ix.stats, st)
		return nil
	}
	ix.single = nil
	// As in zm: collect leaf stats keyed by partition start, re-emit in
	// partition order so the report is worker-count-independent.
	statsByStart := make(map[int]base.BuildStats, ix.cfg.Fanout)
	var mu sync.Mutex
	staged, err := rmi.NewStagedParallelCtx(ctx, d.Keys, ix.cfg.Fanout, ix.cfg.RootTrainer, func(start int, part []float64) (*rmi.Bounded, error) {
		sub := &base.SortedData{
			Pts:   d.Pts[start : start+len(part)],
			Keys:  part,
			Space: d.Space,
			Map:   d.Map,
		}
		m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, sub)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		statsByStart[start] = st
		mu.Unlock()
		return m, nil
	}, ix.cfg.Workers)
	if err != nil {
		return err
	}
	ix.staged = staged
	n := len(d.Keys)
	for i := 0; i < ix.cfg.Fanout; i++ {
		start, end := i*n/ix.cfg.Fanout, (i+1)*n/ix.cfg.Fanout
		if end > start {
			ix.stats = append(ix.stats, statsByStart[start])
		}
	}
	return nil
}

//elsi:noalloc
func (ix *Index) searchRange(key float64) (int, int) {
	ix.invocations.Add(1)
	if ix.staged != nil {
		return ix.staged.SearchRangeWide(key)
	}
	return ix.single.SearchRange(key)
}

//elsi:noalloc
func (ix *Index) predictRank(key float64) int {
	ix.invocations.Add(1)
	if ix.staged != nil {
		lo, hi := ix.staged.SearchRange(key)
		return (lo + hi) / 2
	}
	return ix.single.PredictRank(key)
}

// PointQuery implements index.Index.
//
//elsi:noalloc
func (ix *Index) PointQuery(p geo.Point) bool {
	if ix.st == nil || ix.st.Len() == 0 {
		return false
	}
	lo, hi := ix.searchRange(ix.MapKey(p))
	return ix.st.FindPoint(lo, hi, p)
}

// WindowQuery implements index.Index (exact). For each reference
// point, every point of its partition lying in win has a distance to
// the reference inside [minDist(ref, win), maxDist(ref, win)], so the
// corresponding key annulus is scanned and filtered.
func (ix *Index) WindowQuery(win geo.Rect) []geo.Point {
	return ix.WindowQueryAppend(win, nil)
}

// WindowQueryAppend implements index.WindowAppender.
//
//elsi:noalloc
func (ix *Index) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if ix.st == nil || ix.st.Len() == 0 {
		return out
	}
	for id, ref := range ix.refs {
		dMin := math.Sqrt(win.Dist2(ref))
		dMax := maxDistToRect(ref, win)
		loKey := float64(id)*stride + dMin
		hiKey := float64(id)*stride + dMax
		lo := ix.st.FirstGE(loKey, ix.predictRank(loKey))
		hi := ix.st.FirstGT(hiKey, ix.predictRank(hiKey))
		out = ix.st.CollectWindow(lo, hi, win, out)
	}
	return out
}

// maxDistToRect returns the maximum distance from p to any point of r
// (attained at a corner).
//
//elsi:noalloc
func maxDistToRect(p geo.Point, r geo.Rect) float64 {
	d2 := 0.0
	for _, c := range [4]geo.Point{
		{X: r.MinX, Y: r.MinY}, {X: r.MinX, Y: r.MaxY},
		{X: r.MaxX, Y: r.MinY}, {X: r.MaxX, Y: r.MaxY},
	} {
		if d := p.Dist2(c); d > d2 {
			d2 = d
		}
	}
	return math.Sqrt(d2)
}

// KNN implements index.Index with the iDistance radius search: grow r,
// scan the key annulus [d(q,ref)-r, d(q,ref)+r] of each reference
// partition, and stop once the k-th candidate lies within r.
func (ix *Index) KNN(q geo.Point, k int) []geo.Point {
	if ix.st == nil || k <= 0 || ix.st.Len() == 0 {
		return nil
	}
	return ix.KNNAppend(q, k, nil)
}

// knnScratch holds one radius search's reusable buffers.
type knnScratch struct {
	cand []geo.Point
	sel  []geo.Point
}

var knnScratchPool = sync.Pool{New: func() interface{} { return new(knnScratch) }}

// KNNAppend implements index.KNNAppender: the iDistance radius search
// with pooled candidate and selection buffers, appending the k results
// to out. Annulus candidates are gathered with the closure-free
// CollectRange kernel.
//
//elsi:noalloc
func (ix *Index) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	if ix.st == nil || k <= 0 || ix.st.Len() == 0 {
		return out
	}
	n := ix.st.Len()
	if k > n {
		k = n
	}
	s := knnScratchPool.Get().(*knnScratch)
	r := math.Sqrt(float64(4*k)/float64(n)*ix.cfg.Space.Area()) / 2
	if r <= 0 {
		r = 0.01
	}
	maxR := stride / 2
	for {
		s.cand = s.cand[:0]
		for id, ref := range ix.refs {
			dq := q.Dist(ref)
			loKey := float64(id)*stride + math.Max(0, dq-r)
			hiKey := float64(id)*stride + dq + r
			lo := ix.st.FirstGE(loKey, ix.predictRank(loKey))
			hi := ix.st.FirstGT(hiKey, ix.predictRank(hiKey))
			s.cand = ix.st.CollectRange(lo, hi, s.cand)
		}
		if len(s.cand) >= k {
			s.sel = zm.NearestKAppend(s.cand, q, k, s.sel[:0])
			if s.sel[k-1].Dist(q) <= r || r >= maxR {
				out = append(out, s.sel...)
				knnScratchPool.Put(s)
				return out
			}
		} else if r >= maxR {
			s.sel = zm.NearestKAppend(s.cand, q, len(s.cand), s.sel[:0])
			out = append(out, s.sel...)
			knnScratchPool.Put(s)
			return out
		}
		r *= 2
	}
}

// Stats returns per-model build statistics.
func (ix *Index) Stats() []base.BuildStats { return ix.stats }

// ModelInvocations returns the model-invocation count.
func (ix *Index) ModelInvocations() int64 { return ix.invocations.Load() }

// Scanned returns cumulative scanned entries.
func (ix *Index) Scanned() int64 {
	if ix.st == nil {
		return 0
	}
	return ix.st.Scanned()
}

// ResetCounters zeroes the counters.
func (ix *Index) ResetCounters() {
	ix.invocations.Store(0)
	if ix.st != nil {
		ix.st.ResetScanned()
	}
}

// Refs exposes the reference points (read-only; used by tests).
func (ix *Index) Refs() []geo.Point { return ix.refs }
