package mlindex

import (
	"math"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/indextest"
	"elsi/internal/methods"
	"elsi/internal/rmi"
)

func ogBuilder() base.ModelBuilder {
	return &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
}

func TestConformanceOG(t *testing.T) {
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Refs: 8, Seed: 1})
			indextest.Conformance(t, ix, pts, 42, 1.0, 1.0)
		})
	}
}

func TestConformanceReducedBuilder(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM2, 4000, 2)
	b := &methods.SP{Rho: 0.02, Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
	ix := New(Config{Space: geo.UnitRect, Builder: b, Refs: 8, Seed: 1})
	indextest.Conformance(t, ix, pts, 43, 1.0, 1.0)
}

func TestConformanceStaged(t *testing.T) {
	pts := dataset.MustGenerate(dataset.NYC, 3000, 3)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Refs: 8, Fanout: 4, Seed: 1})
	indextest.Conformance(t, ix, pts, 44, 1.0, 1.0)
}

func TestMapKeyStructure(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 4)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Refs: 4, Seed: 1})
	ix.Build(pts)
	if len(ix.Refs()) != 4 {
		t.Fatalf("got %d refs", len(ix.Refs()))
	}
	for _, p := range pts[:100] {
		k := ix.MapKey(p)
		id := int(k / stride)
		if id < 0 || id >= 4 {
			t.Fatalf("key %v implies ref %d", k, id)
		}
		d := k - float64(id)*stride
		if d < 0 || d > math.Sqrt2+1e-9 {
			t.Fatalf("distance component %v out of range", d)
		}
		// the distance component equals the distance to the claimed ref
		if got := p.Dist(ix.Refs()[id]); math.Abs(got-d) > 1e-9 {
			t.Fatalf("distance %v != %v", got, d)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	if err := ix.Build(nil); err != nil {
		t.Fatal(err)
	}
	if ix.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("phantom point")
	}
	if got := ix.KNN(geo.Point{}, 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
}

func TestCounters(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 5)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Refs: 4, Seed: 1})
	ix.Build(pts)
	ix.ResetCounters()
	ix.PointQuery(pts[0])
	if ix.ModelInvocations() != 1 {
		t.Errorf("invocations = %d", ix.ModelInvocations())
	}
	if ix.Scanned() == 0 {
		t.Error("no scanning recorded")
	}
	if len(ix.Stats()) == 0 {
		t.Error("no stats recorded")
	}
}

func BenchmarkPointQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Refs: 16, Seed: 1})
	ix.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PointQuery(pts[i%len(pts)])
	}
}

func TestMaxDistToRect(t *testing.T) {
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	// from the origin corner, the farthest point is (1,1)
	if got := maxDistToRect(geo.Point{X: 0, Y: 0}, r); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("corner maxDist = %v", got)
	}
	// from the center, any corner at sqrt(0.5)
	if got := maxDistToRect(geo.Point{X: 0.5, Y: 0.5}, r); math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("center maxDist = %v", got)
	}
	// from outside, the opposite corner
	if got := maxDistToRect(geo.Point{X: 2, Y: 2}, r); math.Abs(got-2*math.Sqrt2) > 1e-12 {
		t.Errorf("outside maxDist = %v", got)
	}
}
