package mlindex

import (
	"fmt"

	"elsi/internal/base"
	"elsi/internal/rmi"
	"elsi/internal/snapshot"
	"elsi/internal/store"
	"elsi/internal/zm"
)

// stateVersion is the on-disk version of the ML-Index state encoding.
const stateVersion = 1

// StateAppend implements snapshot.Stater: the reference points (which
// define the iDistance mapping), the sorted key/point columns, and the
// trained model(s). Config is not serialized — construct with the same
// Config, then restore.
func (ix *Index) StateAppend(b []byte) ([]byte, error) {
	b = snapshot.AppendU8(b, stateVersion)
	built := ix.st != nil
	b = snapshot.AppendBool(b, built)
	if !built {
		return b, nil
	}
	b = snapshot.AppendPoints(b, ix.refs)
	b = snapshot.AppendF64s(b, ix.st.Keys())
	b = snapshot.AppendPoints(b, ix.st.Points())
	var err error
	if b, err = rmi.AppendStaged(b, ix.staged); err != nil {
		return nil, err
	}
	if b, err = rmi.AppendBounded(b, ix.single); err != nil {
		return nil, err
	}
	return base.AppendBuildStatsSlice(b, ix.stats), nil
}

// RestoreState implements snapshot.Stater with the same hostile-input
// validation as zm: column invariants are checked before the sorted
// store adopts them, and a built state must carry exactly one model
// form plus at least one reference point (MapKey divides by nothing,
// but an empty reference set would make every key NaN-adjacent).
func (ix *Index) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("mlindex: unsupported state version %d", v)
	}
	built := d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("mlindex: decode state: %w", err)
	}
	if !built {
		if err := d.Close(); err != nil {
			return fmt.Errorf("mlindex: decode state: %w", err)
		}
		ix.refs, ix.st, ix.staged, ix.single, ix.stats = nil, nil, nil, nil, nil
		return nil
	}
	refs := d.Points()
	keys := d.F64s()
	pts := d.Points()
	if err := d.Err(); err != nil {
		return fmt.Errorf("mlindex: decode state: %w", err)
	}
	if len(refs) == 0 {
		return fmt.Errorf("mlindex: built state without reference points")
	}
	if err := zm.ValidateColumns(keys, pts); err != nil {
		return fmt.Errorf("mlindex: %w", err)
	}
	staged, err := rmi.DecodeStaged(d)
	if err != nil {
		return fmt.Errorf("mlindex: decode staged model: %w", err)
	}
	single, err := rmi.DecodeBounded(d)
	if err != nil {
		return fmt.Errorf("mlindex: decode single model: %w", err)
	}
	stats := base.DecodeBuildStatsSlice(d)
	if err := d.Close(); err != nil {
		return fmt.Errorf("mlindex: decode state: %w", err)
	}
	if (staged == nil) == (single == nil) {
		return fmt.Errorf("mlindex: built state needs exactly one of staged/single model")
	}
	ix.refs = refs
	ix.st = store.NewSortedColumns(keys, pts)
	ix.staged = staged
	ix.single = single
	ix.stats = stats
	return nil
}
