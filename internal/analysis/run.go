package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic after driver-level processing (position
// resolution, ignore filtering), ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes carries the messages of any suggested fixes.
	Fixes []string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
	for _, fix := range f.Fixes {
		s += fmt.Sprintf("\n\tsuggested fix: %s", fix)
	}
	return s
}

// Run applies every analyzer to every package and returns the
// surviving findings in file/line order. Diagnostics suppressed by a
// //lint:ignore directive are dropped; malformed directives are
// themselves reported under the pseudo-analyzer name "elsivet".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores, bad := ParseIgnores(pkg.Fset, pkg.Syntax)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.Ignored(a.Name, pos) {
					return
				}
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				for _, fix := range d.SuggestedFixes {
					f.Fixes = append(f.Fixes, fix.Message)
				}
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// IgnoreSet records which analyzers are suppressed on which lines.
type IgnoreSet struct {
	// byFile maps filename -> line -> analyzer names ignored there.
	byFile map[string]map[int][]string
}

// Ignored reports whether the named analyzer is suppressed at pos.
func (s *IgnoreSet) Ignored(analyzer string, pos token.Position) bool {
	if s == nil || s.byFile == nil {
		return false
	}
	for _, name := range s.byFile[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// ParseIgnores scans the files' comments for //lint:ignore directives.
// A directive has the form
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// and suppresses the named analyzers on its own line and on the line
// immediately below it, so it works both as a trailing comment on the
// flagged line and as a standalone comment above it. A directive with
// no analyzer name or no reason is malformed and reported as a
// finding.
func ParseIgnores(fset *token.FileSet, files []*ast.File) (*IgnoreSet, []Finding) {
	set := &IgnoreSet{byFile: make(map[string]map[int][]string)}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "elsivet",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore analyzer reason`",
					})
					continue
				}
				lines := set.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set.byFile[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					lines[pos.Line] = append(lines[pos.Line], name)
					lines[pos.Line+1] = append(lines[pos.Line+1], name)
				}
			}
		}
	}
	return set, bad
}
