package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic after driver-level processing (position
// resolution, ignore filtering), ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes carries the messages of any suggested fixes.
	Fixes []string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
	for _, fix := range f.Fixes {
		s += fmt.Sprintf("\n\tsuggested fix: %s", fix)
	}
	return s
}

// IgnoreStat records one (directive, analyzer) pair and whether it
// suppressed anything during the run. A pair naming an analyzer that
// ran but matched no diagnostic is a dead ignore — the code it excused
// no longer trips the check and the directive should be deleted.
type IgnoreStat struct {
	Pos      token.Position
	Analyzer string
	Used     bool
}

// Result is the outcome of one Run: the surviving findings plus the
// //lint:ignore usage ledger for the linted packages.
type Result struct {
	Findings []Finding
	Ignores  []IgnoreStat
}

// DeadIgnores returns the ignore directives that suppressed nothing,
// restricted to the analyzers that actually ran.
func (r *Result) DeadIgnores(ran []*Analyzer) []IgnoreStat {
	names := make(map[string]bool, len(ran))
	for _, a := range ran {
		names[a.Name] = true
	}
	var dead []IgnoreStat
	for _, ig := range r.Ignores {
		if names[ig.Analyzer] && !ig.Used {
			dead = append(dead, ig)
		}
	}
	return dead
}

// Run applies every analyzer to every non-dependency package and
// returns the surviving findings in file/line order. The fact store is
// built from ALL packages first (dependencies included) so directives
// on imported module code are visible to every pass. Diagnostics
// suppressed by a //lint:ignore directive are dropped; malformed
// //lint:ignore and //elsi: directives are themselves reported under
// the pseudo-analyzer name "elsivet".
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	facts := NewFacts()
	factBad := make(map[*Package][]Finding)
	for _, pkg := range pkgs {
		factBad[pkg] = facts.AddPackage(pkg.Fset, pkg.Syntax, pkg.TypesInfo)
	}

	res := &Result{}
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		ignores, bad := ParseIgnores(pkg.Fset, pkg.Syntax)
		res.Findings = append(res.Findings, bad...)
		res.Findings = append(res.Findings, factBad[pkg]...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.Ignored(a.Name, pos) {
					return
				}
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				for _, fix := range d.SuggestedFixes {
					f.Fixes = append(f.Fixes, fix.Message)
				}
				res.Findings = append(res.Findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		res.Ignores = append(res.Ignores, ignores.Stats()...)
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(res.Ignores, func(i, j int) bool {
		a, b := res.Ignores[i], res.Ignores[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// ignoreDirective is one //lint:ignore comment; the same directive is
// reachable from two lines (its own and the one below), so usage is
// tracked on the shared record.
type ignoreDirective struct {
	pos    token.Position
	name   string
	usedBy bool
}

// IgnoreSet records which analyzers are suppressed on which lines.
type IgnoreSet struct {
	// byFile maps filename -> line -> directives applying there.
	byFile map[string]map[int][]*ignoreDirective
}

// Ignored reports whether the named analyzer is suppressed at pos, and
// marks the matching directive as used.
func (s *IgnoreSet) Ignored(analyzer string, pos token.Position) bool {
	if s == nil || s.byFile == nil {
		return false
	}
	hit := false
	for _, d := range s.byFile[pos.Filename][pos.Line] {
		if d.name == analyzer {
			d.usedBy = true
			hit = true
		}
	}
	return hit
}

// Stats returns one IgnoreStat per (directive, analyzer) pair.
func (s *IgnoreSet) Stats() []IgnoreStat {
	if s == nil {
		return nil
	}
	seen := make(map[*ignoreDirective]bool)
	var out []IgnoreStat
	for _, lines := range s.byFile {
		for _, ds := range lines {
			for _, d := range ds {
				if seen[d] {
					continue
				}
				seen[d] = true
				out = append(out, IgnoreStat{Pos: d.pos, Analyzer: d.name, Used: d.usedBy})
			}
		}
	}
	return out
}

// ParseIgnores scans the files' comments for //lint:ignore directives.
// A directive has the form
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// and suppresses the named analyzers on its own line and on the line
// immediately below it, so it works both as a trailing comment on the
// flagged line and as a standalone comment above it. A directive with
// no analyzer name or no reason is malformed and reported as a
// finding.
func ParseIgnores(fset *token.FileSet, files []*ast.File) (*IgnoreSet, []Finding) {
	set := &IgnoreSet{byFile: make(map[string]map[int][]*ignoreDirective)}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "elsivet",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore analyzer reason`",
					})
					continue
				}
				lines := set.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreDirective)
					set.byFile[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					d := &ignoreDirective{pos: pos, name: name}
					lines[pos.Line] = append(lines[pos.Line], d)
					lines[pos.Line+1] = append(lines[pos.Line+1], d)
				}
			}
		}
	}
	return set, bad
}
