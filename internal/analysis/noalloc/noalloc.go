// Package noalloc is the compile-time face of the PR 5 zero-allocation
// guarantee: a function marked //elsi:noalloc may not contain
// allocation sites, and every statically-resolved call to module code
// must target a function carrying the same mark, so the promise holds
// transitively over the whole call chain the way AssertZeroAllocs
// checks it at runtime.
//
// Reported allocation sites:
//
//   - slice and map composite literals, and &T{} (escaping composite);
//   - make, new;
//   - function literals that capture variables from the enclosing
//     function (a capturing closure's context is heap-allocated);
//   - append whose result is not assigned back to its first argument
//     (x = append(x, ...) and return append(x, ...) are the sanctioned
//     amortized-growth forms; anything else grows an unhinted slice);
//   - converting a concrete non-pointer-shaped value to an interface
//     (boxing), at call arguments, assignments, returns and sends;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - calls into fmt, errors and log (allocation is their job);
//   - go statements (a goroutine is an allocation), defer inside a
//     loop (heap-allocated defer record);
//   - method values (x.M used as a value allocates a bound closure);
//   - static calls to module functions not marked //elsi:noalloc.
//
// Dynamic dispatch — interface method calls and func-typed values — is
// deliberately allowed: the mark is checked on every implementation a
// hot path names, not at the dispatch site, matching how the runtime
// guard exercises whatever the call resolves to. Standard-library
// calls outside the denylist are trusted (sync, atomic, sort, math);
// the runtime AssertZeroAllocs gates in CI keep that trust honest.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"elsi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions marked //elsi:noalloc must not contain allocation sites, and their module callees must carry the mark",
	Run:  run,
}

// denied are the stdlib packages whose entire purpose is building
// values on the heap.
var denied = map[string]bool{"fmt": true, "errors": true, "log": true, "reflect": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || !pass.Facts.NoAlloc(fn) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// checker carries the per-function state.
type checker struct {
	pass    *analysis.Pass
	fd      *ast.FuncDecl
	parents map[ast.Node]ast.Node
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, fd: fd, parents: make(map[ast.Node]ast.Node)}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			c.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.CallExpr:
			c.call(n)
		case *ast.FuncLit:
			c.funcLit(n)
		case *ast.BinaryExpr:
			c.binary(n)
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement in //elsi:noalloc function: spawning a goroutine allocates")
		case *ast.DeferStmt:
			if c.inLoop(n) {
				c.pass.Reportf(n.Pos(), "defer inside a loop in //elsi:noalloc function: each iteration heap-allocates a defer record")
			}
		case *ast.SelectorExpr:
			c.methodValue(n)
		case *ast.AssignStmt:
			c.boxingInAssign(n)
		case *ast.ReturnStmt:
			c.boxingInReturn(n)
		case *ast.SendStmt:
			c.boxingAt(n.Value, c.chanElem(n.Chan), "channel send")
		}
		return true
	})
}

func (c *checker) parent(n ast.Node) ast.Node { return c.parents[n] }

func (c *checker) inLoop(n ast.Node) bool {
	for p := c.parent(n); p != nil; p = c.parent(p) {
		switch p.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// compositeLit flags slice/map literals and escaping struct literals.
func (c *checker) compositeLit(n *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(n.Pos(), "slice literal allocates in //elsi:noalloc function")
	case *types.Map:
		c.pass.Reportf(n.Pos(), "map literal allocates in //elsi:noalloc function")
	default:
		if u, ok := c.parent(n).(*ast.UnaryExpr); ok && u.Op == token.AND {
			c.pass.Reportf(n.Pos(), "&composite literal escapes to the heap in //elsi:noalloc function")
		}
	}
}

func (c *checker) call(n *ast.CallExpr) {
	fun := ast.Unparen(n.Fun)

	// Type conversions.
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		c.conversion(n, tv.Type)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.pass.Reportf(n.Pos(), "make allocates in //elsi:noalloc function")
			case "new":
				c.pass.Reportf(n.Pos(), "new allocates in //elsi:noalloc function")
			case "append":
				if !c.sanctionedAppend(n) {
					c.pass.Reportf(n.Pos(), "append result is not reassigned to its first argument; growth escapes the amortized in-place idiom (use x = append(x, ...) or return append(x, ...))")
				}
			}
			return
		}
	}

	callee := analysis.StaticCallee(c.pass.TypesInfo, n)
	c.boxingInCall(n, callee)

	if callee == nil {
		return // func value: dynamic, checked at the implementations
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return // interface dispatch: checked at the implementations
		}
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	if denied[pkg.Path()] {
		c.pass.Reportf(n.Pos(), "call to %s.%s in //elsi:noalloc function: %s exists to allocate", pkg.Name(), callee.Name(), pkg.Path())
		return
	}
	if c.isModulePkg(pkg) && !c.pass.Facts.NoAlloc(callee) {
		c.pass.Reportf(n.Pos(), "call to %s, which is not marked //elsi:noalloc: the zero-alloc promise must hold down the chain", callee.Name())
	}
}

// isModulePkg reports whether p is part of this module (as opposed to
// the standard library).
func (c *checker) isModulePkg(p *types.Package) bool {
	if p == c.pass.Pkg {
		return true
	}
	return p.Path() == "elsi" || strings.HasPrefix(p.Path(), "elsi/")
}

// conversion flags string<->slice conversions and interface boxing via
// explicit conversion.
func (c *checker) conversion(n *ast.CallExpr, dst types.Type) {
	if len(n.Args) != 1 {
		return
	}
	src := c.pass.TypesInfo.TypeOf(n.Args[0])
	if src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if _, ok := du.(*types.Slice); ok {
		if isString(su) {
			c.pass.Reportf(n.Pos(), "string-to-slice conversion allocates in //elsi:noalloc function")
		}
		return
	}
	if isString(du) && !isString(su) {
		if _, ok := su.(*types.Basic); !ok {
			c.pass.Reportf(n.Pos(), "slice-to-string conversion allocates in //elsi:noalloc function")
		}
		return
	}
	if types.IsInterface(du) {
		c.boxingAt(n.Args[0], dst, "interface conversion")
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// funcLit flags literals that capture enclosing variables.
func (c *checker) funcLit(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal.
		if v.Pos() >= c.fd.Pos() && v.Pos() < lit.Pos() &&
			!(v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			captured = v.Name()
		}
		return true
	})
	if captured != "" {
		c.pass.Reportf(lit.Pos(), "func literal captures %s and allocates its closure context in //elsi:noalloc function (hoist the state or write a closure-free kernel)", captured)
	}
}

// sanctionedAppend reports whether an append call sits in one of the
// allocation-amortizing positions.
func (c *checker) sanctionedAppend(n *ast.CallExpr) bool {
	if len(n.Args) == 0 {
		return false
	}
	p := c.parent(n)
	for {
		if pp, ok := p.(*ast.ParenExpr); ok {
			p = c.parent(pp)
			continue
		}
		break
	}
	switch p := p.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) == n && i < len(p.Lhs) {
				return exprEq(p.Lhs[i], c.baseAppendArg(n))
			}
		}
	case *ast.CallExpr:
		// Nested first argument of another sanctioned append:
		// x = append(append(x, a), b).
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				return len(p.Args) > 0 && ast.Unparen(p.Args[0]) == n && c.sanctionedAppend(p)
			}
		}
	}
	return false
}

// baseAppendArg resolves an append chain to its ultimate first
// argument: for append(append(x, a), b) it returns x. Reslices are
// unwrapped to their operand so the buffer-reuse idiom
// x = append(x[:0], ...) counts as amortizing x.
func (c *checker) baseAppendArg(n *ast.CallExpr) ast.Expr {
	arg := ast.Unparen(n.Args[0])
	for {
		if sl, ok := arg.(*ast.SliceExpr); ok {
			arg = ast.Unparen(sl.X)
			continue
		}
		break
	}
	if inner, ok := arg.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(inner.Fun).(*ast.Ident); ok {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(inner.Args) > 0 {
				return c.baseAppendArg(inner)
			}
		}
	}
	return arg
}

// exprEq compares two expressions structurally (identifier and
// selector chains).
func exprEq(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && exprEq(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && exprEq(a.X, b.X) && exprEq(a.Index, b.Index)
	}
	return false
}

// binary flags string concatenation.
func (c *checker) binary(n *ast.BinaryExpr) {
	if n.Op != token.ADD {
		return
	}
	if t := c.pass.TypesInfo.TypeOf(n); t != nil && isString(t.Underlying()) {
		c.pass.Reportf(n.Pos(), "string concatenation allocates in //elsi:noalloc function")
	}
}

// methodValue flags x.M used as a value rather than called.
func (c *checker) methodValue(sel *ast.SelectorExpr) {
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return
	}
	if call, ok := c.parent(sel).(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
		return
	}
	c.pass.Reportf(sel.Pos(), "method value %s.%s allocates a bound closure in //elsi:noalloc function", exprString(sel.X), sel.Sel.Name)
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "expr"
}

// boxingInCall checks every argument against its parameter type.
func (c *checker) boxingInCall(n *ast.CallExpr, callee *types.Func) {
	sigT := c.pass.TypesInfo.TypeOf(n.Fun)
	sig, _ := sigT.(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if n.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // slice passed whole
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxingAt(arg, pt, "argument")
	}
}

func (c *checker) boxingInAssign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Rhs {
		lt := c.pass.TypesInfo.TypeOf(n.Lhs[i])
		c.boxingAt(n.Rhs[i], lt, "assignment")
	}
}

func (c *checker) boxingInReturn(n *ast.ReturnStmt) {
	sig, _ := c.pass.TypesInfo.TypeOf(c.fd.Name).(*types.Signature)
	if sig == nil || len(n.Results) != sig.Results().Len() {
		return
	}
	for i, r := range n.Results {
		c.boxingAt(r, sig.Results().At(i).Type(), "return")
	}
}

func (c *checker) chanElem(ch ast.Expr) types.Type {
	t := c.pass.TypesInfo.TypeOf(ch)
	if t == nil {
		return nil
	}
	cc, _ := t.Underlying().(*types.Chan)
	if cc == nil {
		return nil
	}
	return cc.Elem()
}

// boxingAt reports when expr (of concrete, non-pointer-shaped type) is
// converted to an interface-typed destination.
func (c *checker) boxingAt(expr ast.Expr, dst types.Type, where string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	st := c.pass.TypesInfo.TypeOf(expr)
	if st == nil || types.IsInterface(st) {
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(st) {
		return
	}
	c.pass.Reportf(expr.Pos(), "%s boxes %s into an interface and allocates in //elsi:noalloc function (pass a pointer-shaped value instead)", where, st.String())
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}
